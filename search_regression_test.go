package nova_test

// Searcher-regression guard: a pinned, fully serial, traced iexact
// encode of each suite machine must stay within a committed
// search.backtracks ceiling. The searcher is deterministic at
// Parallelism 1 with a fixed seed and budget — and memo replays restore
// the original run's counters, so a warm failed-embedding memo does not
// change the totals. A ceiling breach means a change made the pruned
// search meaningfully dumber; raise the ceiling only with a measured
// justification (see docs/BENCHMARKS.md for the current baselines).

import (
	"errors"
	"testing"

	"nova"
	"nova/internal/bench"
)

// backtrackCeiling is ~1.5x the measured search.backtracks of the
// pruned searcher (symmetry breaking + preprocessing + memo on) per
// machine, leaving headroom for benign drift while still failing well
// before the unpruned counts (2-16x higher: bbtas 1334, dk27 11302,
// lion 26, train11 6482, beecount 545 with DisableSearchPruning).
var backtrackCeiling = map[string]int64{
	"bbtas":    130,  // measured 84
	"dk27":     1250, // measured 813
	"lion":     15,   // measured 8
	"shiftreg": 5,    // measured 0
	"train11":  8800, // measured 5815
	"beecount": 480,  // measured 317
}

func TestSearchBacktrackCeiling(t *testing.T) {
	for _, name := range parallelSuite {
		t.Run(name, func(t *testing.T) {
			ceiling, ok := backtrackCeiling[name]
			if !ok {
				t.Fatalf("no committed ceiling for %s", name)
			}
			f := bench.Get(name)
			tracer := nova.NewTracer()
			_, err := nova.Encode(f, nova.Options{
				Algorithm:   nova.IExact,
				Seed:        7,
				MaxWork:     200_000,
				Parallelism: 1,
				Tracer:      tracer,
			})
			if err != nil && !errors.Is(err, nova.ErrGaveUp) {
				t.Fatalf("encode: %v", err)
			}
			got := tracer.Metrics().Counters()["search.backtracks"]
			t.Logf("%s: search.backtracks=%d (ceiling %d)", name, got, ceiling)
			if got > ceiling {
				t.Errorf("%s: search.backtracks=%d exceeds committed ceiling %d — the pruned search regressed",
					name, got, ceiling)
			}
		})
	}
}
