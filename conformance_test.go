package nova_test

// Metamorphic conformance harness: the encode cost (PLA area and cube
// count) is a function of the machine, not of its spelling. Two source
// transformations provably preserve the machine up to relabeling —
// renaming every state (keeping the first-appearance order that fixes
// the parsed state indices) and permuting the proper input columns — so
// for every suite machine and algorithm the transformed source must
// encode to the same cost, and every emitted cover must implement its
// (transformed) machine.
//
// Both comparisons are parse-to-parse: the baseline is the encode of the
// re-parsed canonical text, not of the in-memory suite machine, because
// re-parsing itself reassigns state indices by first appearance. Row
// permutations are deliberately not tested: the minimizer's cube
// ordering is part of the search schedule, so reordering rows genuinely
// changes which minimum the searches find.

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"nova"
	"nova/internal/bench"
)

// conformanceAlgs is the algorithm axis of the matrix. iexact runs under
// the same bounded budget as the determinism tests; a give-up skips the
// combo (consistently on both sides, see below).
var conformanceAlgs = []nova.Algorithm{
	nova.IExact, nova.IHybrid, nova.IGreedy, nova.IOHybrid, nova.IOVariant, nova.Best,
}

// shortConformanceAlgs is the -short axis.
var shortConformanceAlgs = []nova.Algorithm{nova.IHybrid, nova.IOHybrid, nova.IGreedy}

// conformanceMachines returns the machine axis: every suite machine
// whose full algorithm sweep stays under ~2s (measured; the excluded
// machines — dk16, donfile, ex2, bbsse, dk512, cse, keyb, planet, s1,
// sand, scud, styr, ex1 and the huge pair — cost 6s to minutes per
// sweep, and the harness encodes each sweep three times per spelling),
// or the parallel-test cross-section under -short. The set still spans
// every machine shape: symbolic inputs (dk*), wide proper inputs
// (physrec, tav), single-input chains (shiftreg, modulo12) and both
// fan-out joins.
func conformanceMachines(t *testing.T) []string {
	if testing.Short() {
		return parallelSuite
	}
	return []string{
		"bbara", "bbtas", "beecount", "dk14", "dk15", "dk17", "dk27",
		"ex3", "ex5", "ex6", "iofsm", "mark1", "physrec", "shiftreg",
		"train11", "lion", "lion9", "modulo12", "tav", "do1",
	}
}

// isTransition reports whether a KISS2 source line is a transition row
// (as opposed to a directive, comment, or blank line).
func isTransition(line string) bool {
	s := strings.TrimSpace(line)
	return s != "" && !strings.HasPrefix(s, ".") && !strings.HasPrefix(s, "#")
}

// relabelStates renames every state of the KISS2 source to a fresh
// random name, in place. Rows keep their order, so states keep their
// first-appearance order and the re-parse assigns identical indices —
// the machine is unchanged up to the names.
func relabelStates(t *testing.T, src string, rng *rand.Rand) string {
	t.Helper()
	mapping := map[string]string{}
	fresh := func(old string) string {
		if n, ok := mapping[old]; ok {
			return n
		}
		n := fmt.Sprintf("zz%x_%d", rng.Uint32(), len(mapping))
		mapping[old] = n
		return n
	}
	lines := strings.Split(src, "\n")
	for i, line := range lines {
		if f := strings.Fields(line); len(f) == 2 && f[0] == ".r" {
			lines[i] = ".r " + fresh(f[1])
			continue
		}
		if !isTransition(line) {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			t.Fatalf("unexpected transition row %q", line)
		}
		// A row is: input bits, one field per symbolic input, current
		// state, next state, outputs — states sit at len-3 and len-2.
		f[len(f)-3] = fresh(f[len(f)-3])
		f[len(f)-2] = fresh(f[len(f)-2])
		lines[i] = strings.Join(f, " ")
	}
	return strings.Join(lines, "\n")
}

// permuteInputColumns applies one random permutation to the proper input
// columns of every transition row. Column order carries no meaning —
// each column is an independent input wire — so the machine is the same.
func permuteInputColumns(t *testing.T, src string, ni int, rng *rand.Rand) string {
	t.Helper()
	if ni < 2 {
		return src
	}
	perm := rng.Perm(ni)
	lines := strings.Split(src, "\n")
	for i, line := range lines {
		if !isTransition(line) {
			continue
		}
		f := strings.Fields(line)
		if len(f[0]) != ni {
			t.Fatalf("input field %q is not %d columns in row %q", f[0], ni, line)
		}
		in := []byte(f[0])
		out := make([]byte, ni)
		for j, p := range perm {
			out[j] = in[p]
		}
		f[0] = string(out)
		lines[i] = strings.Join(f, " ")
	}
	return strings.Join(lines, "\n")
}

// encodeSource parses and encodes one KISS2 spelling, verifying the
// cover against the machine it was parsed from. A gave-up bounded search
// is reported as ok=false, not a failure.
func encodeSource(t *testing.T, src string, alg nova.Algorithm) (area, cubes int, ok bool) {
	t.Helper()
	f, err := nova.ParseKISSString(src)
	if err != nil {
		t.Fatalf("transformed source no longer parses: %v", err)
	}
	res, err := nova.Encode(f, nova.Options{Algorithm: alg, Seed: 7, MaxWork: 200_000})
	if errors.Is(err, nova.ErrGaveUp) {
		return 0, 0, false
	}
	if err != nil {
		t.Fatalf("%s: %v", alg, err)
	}
	if err := nova.Verify(f, res.Assignment); err != nil {
		t.Fatalf("%s: emitted cover does not implement the machine: %v", alg, err)
	}
	return res.Area, res.Cubes, true
}

func TestMetamorphicConformance(t *testing.T) {
	algs := conformanceAlgs
	if testing.Short() {
		algs = shortConformanceAlgs
	}
	for mi, name := range conformanceMachines(t) {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			f := bench.Get(name)
			src := f.String()
			rng := rand.New(rand.NewSource(int64(1000 + mi)))
			variants := map[string]string{
				"relabel": relabelStates(t, src, rng),
				"columns": permuteInputColumns(t, src, f.NI, rng),
			}
			for _, alg := range algs {
				base, baseCubes, baseOK := encodeSource(t, src, alg)
				for vname, vsrc := range variants {
					t.Run(string(alg)+"/"+vname, func(t *testing.T) {
						got, gotCubes, ok := encodeSource(t, vsrc, alg)
						if ok != baseOK {
							t.Fatalf("give-up differs across the transform: base %t, variant %t", baseOK, ok)
						}
						if !ok {
							t.Skip("bounded search gave up on both spellings")
						}
						if got != base || gotCubes != baseCubes {
							t.Errorf("cost not invariant: base area %d cubes %d, %s area %d cubes %d",
								base, baseCubes, vname, got, gotCubes)
						}
					})
				}
			}
		})
	}
}

// TestMetamorphicTransformsChangeSource guards the harness itself: the
// transforms must actually rewrite the text (an identity transform would
// pass the invariance check vacuously). Column permutation is exercised
// on a machine with enough input columns to permute.
func TestMetamorphicTransformsChangeSource(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := bench.Get("dk27").String()
	if relabelStates(t, src, rng) == src {
		t.Error("relabelStates left the source unchanged")
	}
	tav := bench.Get("tav")
	perm := permuteInputColumns(t, tav.String(), tav.NI, rand.New(rand.NewSource(3)))
	if perm == tav.String() {
		t.Error("permuteInputColumns left the source unchanged")
	}
	// The transformed sources still describe machines of the same shape.
	pf, err := nova.ParseKISSString(perm)
	if err != nil {
		t.Fatal(err)
	}
	if pf.NI != tav.NI || pf.NumStates() != tav.NumStates() {
		t.Errorf("permutation changed the machine shape: %d/%d inputs, %d/%d states",
			pf.NI, tav.NI, pf.NumStates(), tav.NumStates())
	}
}
