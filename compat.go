package nova

import "context"

// This file is the single home of the context-free convenience wrappers.
// The context-first functions (ConstraintsContext, EncodeContext,
// EncodeAll, VerifyContext) are the canonical public API — everything
// here is a one-line delegation with context.Background(), kept for
// callers that have no cancellation story. docs/API.md states the
// stability policy for both surfaces.

// Constraints is ConstraintsContext with context.Background().
func Constraints(f *FSM) (states []Constraint, symIns [][]Constraint, err error) {
	return ConstraintsContext(context.Background(), f)
}

// Encode is EncodeContext with context.Background().
func Encode(f *FSM, opt Options) (*Result, error) {
	return EncodeContext(context.Background(), f, opt)
}

// Verify is VerifyContext with context.Background().
func Verify(f *FSM, asg Assignment) error {
	return VerifyContext(context.Background(), f, asg)
}
