package nova_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus the ablation benches for the design choices
// called out in DESIGN.md and micro-benchmarks of the core algorithms.
//
// The per-table benches regenerate the experiment on a small/fast subset
// of the suite by default so `go test -bench=.` completes in minutes; run
// cmd/novabench for the full-suite tables.

import (
	"context"
	"testing"

	"nova"
	"nova/internal/bench"
	"nova/internal/cube"
	"nova/internal/encode"
	"nova/internal/espresso"
	"nova/internal/experiments"
	"nova/internal/mvmin"
	"nova/internal/sched"
	"nova/internal/symbolic"
)

// fastSubset keeps the per-iteration cost of the table benches bounded.
var fastSubset = []string{"bbtas", "dk27", "shiftreg", "train11", "ex3", "beecount", "dk15", "lion"}

func runnerOpts() experiments.RunOpts {
	return experiments.RunOpts{Only: fastSubset, Seed: 1}
}

// skipShort keeps `go test -short -bench=.` in the seconds range: the
// experiment regenerations take minutes of CPU, which the short tier
// (pre-commit, CI smoke) does not pay. The full tier (`make bench`,
// nightly) runs everything.
func skipShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("heavy experiment benchmark skipped in -short mode")
	}
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(runnerOpts())
		if rows := r.TableI(); len(rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	skipShort(b)
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(runnerOpts())
		if _, err := r.TableII(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	skipShort(b)
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(runnerOpts())
		if _, err := r.TableIII(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIV(b *testing.B) {
	skipShort(b)
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(runnerOpts())
		if _, err := r.TableIV(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableV(b *testing.B) {
	skipShort(b)
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(runnerOpts())
		if _, err := r.TableV(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVI(b *testing.B) {
	skipShort(b)
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(runnerOpts())
		if _, err := r.TableVI(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableVII(b *testing.B) {
	skipShort(b)
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(runnerOpts())
		if _, err := r.TableVII(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigureVIII(b *testing.B) {
	skipShort(b)
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(runnerOpts())
		if _, err := r.FigureVIII(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigureIX(b *testing.B) {
	skipShort(b)
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(runnerOpts())
		if _, err := r.FigureIX(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigureX(b *testing.B) {
	skipShort(b)
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(runnerOpts())
		if _, err := r.FigureX(); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------------- ablations

// BenchmarkAblationWeightOrder measures ihybrid's decreasing-weight
// acceptance order against the reversed order (DESIGN.md §5).
func BenchmarkAblationWeightOrder(b *testing.B) {
	skipShort(b)
	f := bench.Get("ex3")
	totalDesc, totalAsc := 0, 0
	for i := 0; i < b.N; i++ {
		d, a, err := experiments.AblationWeightOrder(f)
		if err != nil {
			b.Fatal(err)
		}
		totalDesc += d
		totalAsc += a
	}
	b.ReportMetric(float64(totalDesc)/float64(b.N), "wsat-desc")
	b.ReportMetric(float64(totalAsc)/float64(b.N), "wsat-asc")
}

// BenchmarkAblationMaxWork sweeps the semiexact max_work bound.
func BenchmarkAblationMaxWork(b *testing.B) {
	skipShort(b)
	f := bench.Get("ex2")
	p, err := mvmin.Build(f)
	if err != nil {
		b.Fatal(err)
	}
	ics := p.Constraints(p.Minimize(espresso.Options{})).States
	for _, work := range []int{500, 5000, 40000} {
		b.Run(itoa(work), func(b *testing.B) {
			sat := 0
			for i := 0; i < b.N; i++ {
				r := encode.IHybrid(f.NumStates(), ics, 0, encode.HybridOptions{MaxWork: work})
				sat += r.WSat
			}
			b.ReportMetric(float64(sat)/float64(b.N), "wsat")
		})
	}
}

// BenchmarkAblationIOVariant compares iohybrid against iovariant (the
// paper reports iohybrid wins; Section 6.2.2).
func BenchmarkAblationIOVariant(b *testing.B) {
	skipShort(b)
	f := bench.Get("train11")
	for _, alg := range []nova.Algorithm{nova.IOHybrid, nova.IOVariant} {
		b.Run(string(alg), func(b *testing.B) {
			area := 0
			for i := 0; i < b.N; i++ {
				res, err := nova.Encode(f, nova.Options{Algorithm: alg})
				if err != nil {
					b.Fatal(err)
				}
				area += res.Area
			}
			b.ReportMetric(float64(area)/float64(b.N), "area")
		})
	}
}

// BenchmarkAblationCodeLength sweeps the code length for ihybrid,
// reproducing the paper's observation that longer codes satisfying more
// constraints do not pay off in area (Table II discussion).
func BenchmarkAblationCodeLength(b *testing.B) {
	skipShort(b)
	f := bench.Get("ex5")
	min := nova.MinLength(f.NumStates())
	for bits := min; bits <= min+2; bits++ {
		b.Run(itoa(bits), func(b *testing.B) {
			area := 0
			for i := 0; i < b.N; i++ {
				res, err := nova.Encode(f, nova.Options{Algorithm: nova.IHybrid, Bits: bits})
				if err != nil {
					b.Fatal(err)
				}
				area += res.Area
			}
			b.ReportMetric(float64(area)/float64(b.N), "area")
		})
	}
}

// BenchmarkAblationSymbolicOrder compares the two next-state selection
// orders of the symbolic minimization loop (step 4 of Section 6.1).
func BenchmarkAblationSymbolicOrder(b *testing.B) {
	skipShort(b)
	f := bench.Get("ex3")
	for _, small := range []bool{false, true} {
		name := "big-first"
		if small {
			name = "small-first"
		}
		b.Run(name, func(b *testing.B) {
			cubes := 0
			for i := 0; i < b.N; i++ {
				out, err := symbolic.Analyze(f, symbolic.Options{SelectSmallFirst: small})
				if err != nil {
					b.Fatal(err)
				}
				cubes += out.FinalCubes
			}
			b.ReportMetric(float64(cubes)/float64(b.N), "finalP-cubes")
		})
	}
}

// ------------------------------------------------- concurrency benchmarks

// BenchmarkEncodeAllBest measures the batch API over the fast subset at
// increasing pool widths; the serial/parallel speedup is only visible on
// multi-core machines, the results stay bit-identical everywhere.
func BenchmarkEncodeAllBest(b *testing.B) {
	skipShort(b)
	var fsms []*nova.FSM
	for _, name := range fastSubset {
		fsms = append(fsms, bench.Get(name))
	}
	for _, par := range []int{1, 4} {
		b.Run("parallelism-"+itoa(par), func(b *testing.B) {
			opt := nova.Options{Algorithm: nova.Best, Seed: 1, Parallelism: par}
			for i := 0; i < b.N; i++ {
				if _, err := nova.EncodeAll(context.Background(), fsms, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEncodeBestParallelism measures a single Best encode (the
// three-candidate fan-out) serially and with a four-worker pool.
func BenchmarkEncodeBestParallelism(b *testing.B) {
	skipShort(b)
	f := bench.Get("bbara")
	for _, par := range []int{1, 4} {
		b.Run("parallelism-"+itoa(par), func(b *testing.B) {
			opt := nova.Options{Algorithm: nova.Best, Seed: 1, Parallelism: par}
			for i := 0; i < b.N; i++ {
				if _, err := nova.Encode(f, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Coarse fan-out plus intra-problem parallelism: forked unate
	// recursion and speculative search on the same 4-worker pool.
	b.Run("intra-4", func(b *testing.B) {
		opt := nova.Options{Algorithm: nova.Best, Seed: 1, Parallelism: 4, IntraParallelism: 4}
		for i := 0; i < b.N; i++ {
			if _, err := nova.Encode(f, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --------------------------------------------------------- micro benches

func BenchmarkMVMinimizePlanet(b *testing.B) {
	skipShort(b)
	f := bench.Get("planet")
	p, err := mvmin.Build(f)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Minimize(espresso.Options{})
	}
}

// benchSink defeats dead-code elimination in the micro benches.
var benchSink int

// mvProblem builds the symbolic cover of a suite machine for the
// core-algorithm micro benches.
func mvProblem(b *testing.B, name string) *mvmin.Problem {
	b.Helper()
	p, err := mvmin.Build(bench.Get(name))
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkTautology measures the unate-recursion kernel through the
// question IRREDUNDANT asks for every cube: "does the rest of the cover,
// plus the don't-care set, cover this cube?" — i.e. tautology of the
// cofactored cover. The rest-covers are prebuilt so the timed region is
// the recursion itself. The serial/intra pair compares the plain
// recursion against the forked one (8-worker pool); outputs are
// identical, and on a multi-core host the intra variant shows the
// speedup. Steady state is memo-hit heavy either way — the shared
// tautology memo answers repeats — so the pair also bounds the fork's
// overhead on the cached path.
func BenchmarkTautology(b *testing.B) {
	p := mvProblem(b, "planet")
	on, dc := p.On, p.Dc
	n := len(on.Cubes)
	if n > 24 {
		n = 24
	}
	rests := make([]*cube.Cover, n)
	for j := 0; j < n; j++ {
		rest := cube.NewCover(p.S)
		for k, c := range on.Cubes {
			if k != j {
				rest.Add(c)
			}
		}
		for _, c := range dc.Cubes {
			rest.Add(c)
		}
		rests[j] = rest
	}
	run := func(b *testing.B, fk *cube.Fork) {
		b.ReportAllocs()
		a := cube.GetArena(p.S)
		defer cube.PutArena(a)
		if fk != nil {
			a.SetFork(fk, context.Background())
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			covered := 0
			for j := 0; j < n; j++ {
				if rests[j].CoversCubeWith(a, on.Cubes[j]) {
					covered++
				}
			}
			benchSink = covered
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, nil) })
	b.Run("intra", func(b *testing.B) { run(b, cube.NewFork(sched.New(8), 8)) })
}

// BenchmarkComplement measures complementation of a real symbolic cover
// (the operation mvmin.Build runs to derive the global don't-care set).
// Complement results are not memoized, so the serial/intra pair is a
// clean recursion-throughput comparison.
func BenchmarkComplement(b *testing.B) {
	p := mvProblem(b, "keyb")
	run := func(b *testing.B, fk *cube.Fork) {
		b.ReportAllocs()
		a := cube.GetArena(p.S)
		defer cube.PutArena(a)
		if fk != nil {
			a.SetFork(fk, context.Background())
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchSink = p.On.ComplementWith(a).Len()
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, nil) })
	b.Run("intra", func(b *testing.B) { run(b, cube.NewFork(sched.New(8), 8)) })
}

// BenchmarkExpand measures the EXPAND step in isolation on a fresh copy of
// the on-set each iteration (EXPAND mutates its argument).
func BenchmarkExpand(b *testing.B) {
	p := mvProblem(b, "planet")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f := p.On.Copy()
		b.StartTimer()
		espresso.Expand(f, p.Dc)
		benchSink = f.Len()
	}
}

func BenchmarkIHybridKeyb(b *testing.B) {
	skipShort(b)
	f := bench.Get("keyb")
	p, err := mvmin.Build(f)
	if err != nil {
		b.Fatal(err)
	}
	ics := p.Constraints(p.Minimize(espresso.Options{})).States
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encode.IHybrid(f.NumStates(), ics, 0, encode.HybridOptions{})
	}
}

func BenchmarkIGreedyPlanet(b *testing.B) {
	skipShort(b)
	f := bench.Get("planet")
	p, err := mvmin.Build(f)
	if err != nil {
		b.Fatal(err)
	}
	ics := p.Constraints(p.Minimize(espresso.Options{})).States
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encode.IGreedy(f.NumStates(), ics, 0)
	}
}

func BenchmarkEncodePipelineBbara(b *testing.B) {
	skipShort(b)
	f := bench.Get("bbara")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nova.Encode(f, nova.Options{Algorithm: nova.IHybrid}); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
