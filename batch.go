package nova

import (
	"context"
	"fmt"

	"nova/internal/sched"
)

// EncodeAll encodes a batch of machines concurrently over one shared
// bounded worker pool of opt.Parallelism workers (0 selects GOMAXPROCS).
// The same Options apply to every machine; results[i] corresponds to
// fsms[i]. The first error aborts the batch: the remaining runs are
// canceled, the error (wrapped with the machine's name) is returned, and
// the results slice is nil. Cancellation of ctx likewise aborts the
// batch with an error matching errors.Is(err, ErrCanceled).
//
// Every run is deterministic under a fixed Options.Seed: each machine's
// random trials and candidate joins are independent of scheduling, so a
// batch produces the same Results as encoding the machines one at a
// time. Nil entries in fsms are rejected.
func EncodeAll(ctx context.Context, fsms []*FSM, opt Options) ([]*Result, error) {
	for i, f := range fsms {
		if f == nil {
			return nil, fmt.Errorf("nova: EncodeAll: fsms[%d] is nil", i)
		}
	}
	pool := sched.New(opt.workers())
	results := make([]*Result, len(fsms))
	g := pool.Group(ctx)
	for i, f := range fsms {
		g.Go(func(ctx context.Context) error {
			r, err := encodeWith(ctx, pool, f, opt)
			if err != nil {
				if f.Name != "" {
					return fmt.Errorf("%s: %w", f.Name, err)
				}
				return err
			}
			results[i] = r
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return results, nil
}
