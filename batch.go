package nova

import (
	"context"
	"errors"
	"fmt"

	"nova/internal/obs"
)

// EncodeAll encodes a batch of machines concurrently over one shared
// bounded worker pool of opt.Parallelism workers (0 selects GOMAXPROCS).
// The same Options apply to every machine; results[i] corresponds to
// fsms[i]. Invalid Options (or a nil fsms entry) reject the whole batch
// up front with an error matching errors.Is(err, ErrBadOptions) — no
// machine runs.
//
// Partial-results contract: a per-machine failure does NOT abort the
// batch. The remaining machines still run; the failed machine's slot is
// nil (or, for an ErrGaveUp run, the partial Result the searcher
// produced), and EncodeAll returns the non-nil results slice together
// with every per-machine error joined into one (match the causes with
// errors.Is — ErrUnencodable, ErrGaveUp — and split them with
// errors.Join's Unwrap() []error if per-machine attribution is needed;
// each branch is wrapped with its machine's name). Cancellation is the
// exception: when ctx is canceled or its deadline expires the remaining
// runs stop, the results slice is nil, and the error matches
// errors.Is(err, ErrCanceled).
//
// Every run is deterministic under a fixed Options.Seed: each machine's
// random trials and candidate joins are independent of scheduling, so a
// batch produces the same Results as encoding the machines one at a
// time.
//
// With Options.Tracer set, the whole batch records under one
// "nova.batch" root span with a per-machine "nova.encode" child each,
// and every returned Result carries the shared batch snapshot in
// Result.Telemetry (per-machine attribution comes from the span
// attributes; use one tracer per EncodeContext call for fully separate
// snapshots).
func EncodeAll(ctx context.Context, fsms []*FSM, opt Options) ([]*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	for i, f := range fsms {
		if f == nil {
			return nil, fmt.Errorf("%w: EncodeAll: fsms[%d] is nil", ErrBadOptions, i)
		}
	}
	eng := newEngine(opt)
	results := make([]*Result, len(fsms))
	errs := make([]error, len(fsms))
	t := opt.Tracer
	ctx = obs.With(ctx, t) // no-op when t is nil
	bctx, bsp := obs.Span(ctx, "nova.batch")
	bsp.SetInt("machines", int64(len(fsms)))
	g := eng.pool.Group(bctx)
	for i, f := range fsms {
		g.Go(func(ctx context.Context) error {
			r, err := encodeObserved(ctx, eng, f, opt, t)
			results[i] = r // partial Result on ErrGaveUp, nil on other failures
			if err != nil {
				if f.Name != "" {
					err = fmt.Errorf("%s: %w", f.Name, err)
				}
				if isCanceled(err) {
					// Cancellation aborts the batch: returning the error
					// cancels the group so sibling machines stop early.
					return err
				}
				errs[i] = err
			}
			return nil
		})
	}
	werr := g.Wait()
	bsp.End()
	if t != nil {
		flushPoolStats(t.Metrics(), eng.pool)
		flushForkStats(t.Metrics(), eng.fork)
	}
	if werr != nil {
		return nil, werr
	}
	if t != nil {
		snap := t.Snapshot()
		for _, r := range results {
			if r != nil {
				r.Telemetry = snap
			}
		}
	}
	return results, errors.Join(errs...)
}
