package nova

import (
	"context"
	"fmt"

	"nova/internal/obs"
)

// EncodeAll encodes a batch of machines concurrently over one shared
// bounded worker pool of opt.Parallelism workers (0 selects GOMAXPROCS).
// The same Options apply to every machine; results[i] corresponds to
// fsms[i]. The first error aborts the batch: the remaining runs are
// canceled, the error (wrapped with the machine's name) is returned, and
// the results slice is nil. Cancellation of ctx likewise aborts the
// batch with an error matching errors.Is(err, ErrCanceled).
//
// Every run is deterministic under a fixed Options.Seed: each machine's
// random trials and candidate joins are independent of scheduling, so a
// batch produces the same Results as encoding the machines one at a
// time. Nil entries in fsms are rejected.
//
// With Options.Tracer set, the whole batch records under one
// "nova.batch" root span with a per-machine "nova.encode" child each,
// and every Result carries the shared batch snapshot in Result.Telemetry
// (per-machine attribution comes from the span attributes; use one
// tracer per EncodeContext call for fully separate snapshots).
func EncodeAll(ctx context.Context, fsms []*FSM, opt Options) ([]*Result, error) {
	for i, f := range fsms {
		if f == nil {
			return nil, fmt.Errorf("nova: EncodeAll: fsms[%d] is nil", i)
		}
	}
	eng := newEngine(opt)
	results := make([]*Result, len(fsms))
	t := opt.Tracer
	ctx = obs.With(ctx, t) // no-op when t is nil
	bctx, bsp := obs.Span(ctx, "nova.batch")
	bsp.SetInt("machines", int64(len(fsms)))
	g := eng.pool.Group(bctx)
	for i, f := range fsms {
		g.Go(func(ctx context.Context) error {
			sctx, sp := obs.Span(ctx, "nova.encode")
			sp.SetStr("machine", f.Name)
			defer sp.End()
			r, err := encodeWith(sctx, eng, f, opt)
			if t != nil {
				outcome := outcomeOf(err)
				sp.SetStr("outcome", outcome)
				t.Metrics().Add("algo."+outcome+"."+string(r2alg(opt)), 1)
			}
			if err != nil {
				if f.Name != "" {
					return fmt.Errorf("%s: %w", f.Name, err)
				}
				return err
			}
			results[i] = r
			return nil
		})
	}
	err := g.Wait()
	bsp.End()
	if t != nil {
		flushPoolStats(t.Metrics(), eng.pool)
		flushForkStats(t.Metrics(), eng.fork)
	}
	if err != nil {
		return nil, err
	}
	if t != nil {
		snap := t.Snapshot()
		for _, r := range results {
			r.Telemetry = snap
		}
	}
	return results, nil
}

// r2alg resolves the effective algorithm of an Options value.
func r2alg(opt Options) Algorithm {
	if opt.Algorithm == "" {
		return Best
	}
	return opt.Algorithm
}
