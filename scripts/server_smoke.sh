#!/usr/bin/env bash
# End-to-end smoke test of the novad serving layer:
#
#   1. build and start novad on a free port
#   2. POST the same encode request twice
#   3. assert the two response bodies are byte-identical
#   4. assert /debug/vars reports a cache hit and exactly one engine run
#   5. SIGTERM the daemon and assert it drains and exits cleanly
#
# Requires: go, curl, python3 (JSON field extraction). No external Go deps.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="127.0.0.1:${NOVAD_SMOKE_PORT:-8089}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"; [ -n "${NOVAD_PID:-}" ] && kill -9 "$NOVAD_PID" 2>/dev/null || true' EXIT

echo "==> building novad"
go build -o "$WORKDIR/novad" ./cmd/novad

echo "==> starting novad on $ADDR"
"$WORKDIR/novad" -addr "$ADDR" -grace 10s >"$WORKDIR/novad.log" 2>&1 &
NOVAD_PID=$!

for i in $(seq 1 50); do
    if curl -fsS "http://$ADDR/v1/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$NOVAD_PID" 2>/dev/null; then
        echo "novad died during startup:" >&2
        cat "$WORKDIR/novad.log" >&2
        exit 1
    fi
    sleep 0.1
done
curl -fsS "http://$ADDR/v1/healthz" >/dev/null

echo "==> posting the same encode request twice"
python3 - "$WORKDIR/request.json" <<'EOF'
import json, sys
kiss2 = open("testdata/quick4.kiss2").read()
req = {"kiss2": kiss2, "name": "quick4", "algorithm": "ihybrid"}
with open(sys.argv[1], "w") as f:
    json.dump(req, f)
EOF

curl -fsS -X POST -H 'Content-Type: application/json' \
    --data-binary @"$WORKDIR/request.json" \
    "http://$ADDR/v1/encode" -o "$WORKDIR/resp1.json" -D "$WORKDIR/head1.txt"
curl -fsS -X POST -H 'Content-Type: application/json' \
    --data-binary @"$WORKDIR/request.json" \
    "http://$ADDR/v1/encode" -o "$WORKDIR/resp2.json" -D "$WORKDIR/head2.txt"

echo "==> checking byte-identical responses"
cmp "$WORKDIR/resp1.json" "$WORKDIR/resp2.json"
grep -qi '^x-cache: MISS' "$WORKDIR/head1.txt"
grep -qi '^x-cache: HIT' "$WORKDIR/head2.txt"

echo "==> checking /debug/vars counters"
curl -fsS "http://$ADDR/debug/vars" -o "$WORKDIR/vars.json"
python3 - "$WORKDIR/vars.json" <<'EOF'
import json, sys
v = json.load(open(sys.argv[1]))["nova"]
assert v.get("cache.hits", 0) >= 1, f"no cache hit recorded: {v}"
assert v.get("engine.encodes", 0) == 1, f"engine ran {v.get('engine.encodes')} times, want 1"
assert v.get("http.requests", 0) >= 2, f"request counter wrong: {v}"
print(f"    cache.hits={v['cache.hits']} engine.encodes={v['engine.encodes']}")
EOF

echo "==> checking the served response verifies"
python3 - "$WORKDIR/resp1.json" "$WORKDIR/verify.json" <<'EOF'
import json, sys
resp = json.load(open(sys.argv[1]))
assert resp.get("area", 0) > 0 and not resp.get("error"), f"bad encode response: {resp}"
req = {"kiss2": open("testdata/quick4.kiss2").read(), "states": resp["states"]}
with open(sys.argv[2], "w") as f:
    json.dump(req, f)
EOF
curl -fsS -X POST --data-binary @"$WORKDIR/verify.json" \
    "http://$ADDR/v1/verify" -o "$WORKDIR/verified.json"
python3 -c 'import json,sys; v=json.load(open(sys.argv[1])); assert v["ok"], v' "$WORKDIR/verified.json"

echo "==> SIGTERM drain"
kill -TERM "$NOVAD_PID"
for i in $(seq 1 100); do
    if ! kill -0 "$NOVAD_PID" 2>/dev/null; then
        break
    fi
    sleep 0.1
done
if kill -0 "$NOVAD_PID" 2>/dev/null; then
    echo "novad did not exit within 10s of SIGTERM" >&2
    cat "$WORKDIR/novad.log" >&2
    exit 1
fi
wait "$NOVAD_PID" 2>/dev/null || EXIT_CODE=$?
if [ "${EXIT_CODE:-0}" -ne 0 ]; then
    echo "novad exited with $EXIT_CODE after SIGTERM" >&2
    cat "$WORKDIR/novad.log" >&2
    exit 1
fi
NOVAD_PID=""
grep -q 'final telemetry snapshot' "$WORKDIR/novad.log" || {
    echo "drain did not flush the telemetry snapshot" >&2
    cat "$WORKDIR/novad.log" >&2
    exit 1
}

echo "server smoke: OK"
