#!/usr/bin/env bash
# End-to-end smoke test of the novad serving layer:
#
#   1. build and start novad on a free port (access log + flight recorder on)
#   2. POST the same encode request twice
#   3. assert the two response bodies are byte-identical
#   4. assert /debug/vars reports a cache hit and exactly one engine run
#   5. assert request IDs echo and ?trace=1 returns a phase table header
#   6. assert /metrics is well-formed Prometheus exposition (every # TYPE
#      precedes its series) covering the RED families
#   7. assert /debug/requests holds the traced slow request (with phases)
#      and a deliberate failure
#   8. SIGTERM the daemon and assert it drains, exits cleanly, and the
#      final snapshot satisfies admitted == completed + failed + canceled
#
# Requires: go, curl, python3 (JSON field extraction). No external Go deps.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="127.0.0.1:${NOVAD_SMOKE_PORT:-8089}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"; [ -n "${NOVAD_PID:-}" ] && kill -9 "$NOVAD_PID" 2>/dev/null || true' EXIT

echo "==> building novad"
go build -o "$WORKDIR/novad" ./cmd/novad

echo "==> starting novad on $ADDR"
"$WORKDIR/novad" -addr "$ADDR" -grace 10s -access-log -recorder 16 >"$WORKDIR/novad.log" 2>&1 &
NOVAD_PID=$!

for i in $(seq 1 50); do
    if curl -fsS "http://$ADDR/v1/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$NOVAD_PID" 2>/dev/null; then
        echo "novad died during startup:" >&2
        cat "$WORKDIR/novad.log" >&2
        exit 1
    fi
    sleep 0.1
done
curl -fsS "http://$ADDR/v1/healthz" >/dev/null

echo "==> posting the same encode request twice"
python3 - "$WORKDIR/request.json" <<'EOF'
import json, sys
kiss2 = open("testdata/quick4.kiss2").read()
req = {"kiss2": kiss2, "name": "quick4", "algorithm": "ihybrid"}
with open(sys.argv[1], "w") as f:
    json.dump(req, f)
EOF

curl -fsS -X POST -H 'Content-Type: application/json' \
    --data-binary @"$WORKDIR/request.json" \
    "http://$ADDR/v1/encode" -o "$WORKDIR/resp1.json" -D "$WORKDIR/head1.txt"
curl -fsS -X POST -H 'Content-Type: application/json' \
    --data-binary @"$WORKDIR/request.json" \
    "http://$ADDR/v1/encode" -o "$WORKDIR/resp2.json" -D "$WORKDIR/head2.txt"

echo "==> checking byte-identical responses"
cmp "$WORKDIR/resp1.json" "$WORKDIR/resp2.json"
grep -qi '^x-cache: MISS' "$WORKDIR/head1.txt"
grep -qi '^x-cache: HIT' "$WORKDIR/head2.txt"

echo "==> checking /debug/vars counters"
curl -fsS "http://$ADDR/debug/vars" -o "$WORKDIR/vars.json"
python3 - "$WORKDIR/vars.json" <<'EOF'
import json, sys
v = json.load(open(sys.argv[1]))["nova"]
assert v.get("cache.hits", 0) >= 1, f"no cache hit recorded: {v}"
assert v.get("engine.encodes", 0) == 1, f"engine ran {v.get('engine.encodes')} times, want 1"
assert v.get("http.requests", 0) >= 2, f"request counter wrong: {v}"
print(f"    cache.hits={v['cache.hits']} engine.encodes={v['engine.encodes']}")
EOF

echo "==> checking request IDs and the trace opt-in"
# A caller-supplied X-Request-ID echoes back, and ?trace=1 on a cache hit
# must not change the cached bytes.
curl -fsS -X POST -H 'Content-Type: application/json' -H 'X-Request-ID: smoke-hit-1' \
    --data-binary @"$WORKDIR/request.json" \
    "http://$ADDR/v1/encode?trace=1" -o "$WORKDIR/resp3.json" -D "$WORKDIR/head3.txt"
grep -qi '^x-request-id: smoke-hit-1' "$WORKDIR/head3.txt"
cmp "$WORKDIR/resp1.json" "$WORKDIR/resp3.json"

# A traced cache miss (fresh machine name, deliberately slow: the whole
# engine runs) returns its phase table in the X-Nova-Phases header.
python3 - "$WORKDIR/request-traced.json" <<'EOF'
import json, sys
kiss2 = open("testdata/quick4.kiss2").read()
req = {"kiss2": kiss2, "name": "quick4-traced", "algorithm": "ihybrid"}
with open(sys.argv[1], "w") as f:
    json.dump(req, f)
EOF
curl -fsS -X POST -H 'Content-Type: application/json' -H 'X-Request-ID: smoke-traced' \
    --data-binary @"$WORKDIR/request-traced.json" \
    "http://$ADDR/v1/encode?trace=1" -o "$WORKDIR/resp4.json" -D "$WORKDIR/head4.txt"
grep -qi '^x-request-id: smoke-traced' "$WORKDIR/head4.txt"
grep -qi '^x-nova-phases:' "$WORKDIR/head4.txt"
grep -qi '^x-cache: MISS' "$WORKDIR/head4.txt"
# The traced body carries no telemetry (the trace travels by header only).
python3 -c 'import json,sys; r=json.load(open(sys.argv[1])); assert "telemetry" not in r, r.keys()' "$WORKDIR/resp4.json"

echo "==> checking /metrics exposition"
# A deliberate failure first, so the error families have data.
curl -sS -X POST --data-binary 'not json' "http://$ADDR/v1/encode" \
    -o /dev/null -D "$WORKDIR/headfail.txt"
grep -q '^HTTP/1.1 400' "$WORKDIR/headfail.txt"
curl -fsS "http://$ADDR/metrics" -o "$WORKDIR/metrics.txt" -D "$WORKDIR/methead.txt"
grep -qi '^content-type: text/plain; version=0.0.4' "$WORKDIR/methead.txt"
python3 - "$WORKDIR/metrics.txt" <<'EOF'
import sys
typed, samples = {}, {}
for line in open(sys.argv[1]):
    line = line.rstrip("\n")
    if not line:
        continue
    if line.startswith("# HELP "):
        continue
    if line.startswith("# TYPE "):
        name, typ = line[len("# TYPE "):].split(" ", 1)
        assert name not in typed, f"family {name} declared twice"
        typed[name] = typ
        continue
    assert not line.startswith("#"), f"unexpected comment {line!r}"
    series, val = line.rsplit(" ", 1)
    name = series.split("{", 1)[0]
    family = name
    for suf in ("_bucket", "_sum", "_count"):
        if name.endswith(suf) and typed.get(name[: -len(suf)]) == "histogram":
            family = name[: -len(suf)]
    # every # TYPE precedes its series
    assert family in typed, f"series {series} emitted before its # TYPE"
    samples[series] = int(val)
for family in [
    "nova_http_requests_total",
    "nova_http_endpoint_requests_total",
    "nova_http_responses_total",
    "nova_http_request_errors_total",
    "nova_http_request_duration_microseconds",
    "nova_cache_hits_total",
    "nova_singleflight_requests_total",
    "nova_http_admitted_outcomes_total",
]:
    assert family in typed, f"family {family} missing from /metrics"
assert samples.get("nova_cache_hits_total", 0) >= 1, "no cache hit on /metrics"
assert samples.get('nova_http_responses_total{code="400"}', 0) >= 1, "400 not counted"
q = 'nova_http_request_duration_microseconds_count{endpoint="/v1/encode",stage="queue"}'
assert samples.get(q, 0) >= 2, f"queue-wait histogram missing: {q}"
print(f"    {len(typed)} families, {len(samples)} series: well-formed")
EOF

echo "==> checking the /debug/requests flight recorder"
curl -fsS "http://$ADDR/debug/requests" -o "$WORKDIR/requests.json"
python3 - "$WORKDIR/requests.json" <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
slow = snap["slowest"]
assert slow, "flight recorder has no slowest entries after a slow request"
traced = [r for r in slow if r.get("id") == "smoke-traced"]
assert traced, f"traced request missing from slowest: {[r.get('id') for r in slow]}"
rec = traced[0]
assert rec.get("phases"), f"traced record lost its phase table: {rec}"
assert rec.get("total_us", 0) > 0 and rec.get("cache") == "miss", rec
fails = snap["recent_failures"]
assert fails, "deliberate failure missing from recent_failures"
assert fails[0].get("error_kind") == "bad_request", fails[0]
print(f"    slowest={len(slow)} failures={len(fails)} traced phases={len(rec['phases'])}")
EOF
grep -q 'msg=request' "$WORKDIR/novad.log" || {
    echo "access log produced no request lines" >&2
    exit 1
}

echo "==> checking the served response verifies"
python3 - "$WORKDIR/resp1.json" "$WORKDIR/verify.json" <<'EOF'
import json, sys
resp = json.load(open(sys.argv[1]))
assert resp.get("area", 0) > 0 and not resp.get("error"), f"bad encode response: {resp}"
req = {"kiss2": open("testdata/quick4.kiss2").read(), "states": resp["states"]}
with open(sys.argv[2], "w") as f:
    json.dump(req, f)
EOF
curl -fsS -X POST --data-binary @"$WORKDIR/verify.json" \
    "http://$ADDR/v1/verify" -o "$WORKDIR/verified.json"
python3 -c 'import json,sys; v=json.load(open(sys.argv[1])); assert v["ok"], v' "$WORKDIR/verified.json"

echo "==> SIGTERM drain"
kill -TERM "$NOVAD_PID"
for i in $(seq 1 100); do
    if ! kill -0 "$NOVAD_PID" 2>/dev/null; then
        break
    fi
    sleep 0.1
done
if kill -0 "$NOVAD_PID" 2>/dev/null; then
    echo "novad did not exit within 10s of SIGTERM" >&2
    cat "$WORKDIR/novad.log" >&2
    exit 1
fi
wait "$NOVAD_PID" 2>/dev/null || EXIT_CODE=$?
if [ "${EXIT_CODE:-0}" -ne 0 ]; then
    echo "novad exited with $EXIT_CODE after SIGTERM" >&2
    cat "$WORKDIR/novad.log" >&2
    exit 1
fi
NOVAD_PID=""
grep -q 'final telemetry snapshot' "$WORKDIR/novad.log" || {
    echo "drain did not flush the telemetry snapshot" >&2
    cat "$WORKDIR/novad.log" >&2
    exit 1
}

echo "==> checking the drained snapshot's accounting identity"
python3 - "$WORKDIR/novad.log" <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
snap = text.split("final telemetry snapshot:", 1)[1]
vals = {}
for line in snap.splitlines():
    m = re.match(r"\s+(\S+)\s+(-?\d+)$", line)
    if m:
        vals[m.group(1)] = int(m.group(2))
adm = vals.get("serve.admitted", 0)
com = vals.get("serve.completed", 0)
fld = vals.get("serve.failed", 0)
can = vals.get("serve.canceled", 0)
assert adm > 0, f"nothing admitted: {vals}"
assert adm == com + fld + can, \
    f"admitted {adm} != completed {com} + failed {fld} + canceled {can}"
print(f"    admitted={adm} completed={com} failed={fld} canceled={can}")
EOF

echo "server smoke: OK"
