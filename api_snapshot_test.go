package nova_test

// Public-API snapshot gate. The exported Go surface of package nova and
// nova/client is rendered to a stable textual form (one declaration per
// block, sorted, comments stripped, unexported struct fields and
// interface methods pruned) and diffed against the committed goldens in
// testdata/api/. Any change to an exported name, signature, field or
// constant value fails this test until the golden is regenerated
// deliberately:
//
//	go test -run TestAPISnapshot -update-api .
//
// The gate is syntax-only (go/parser, no type checking), so it is fast,
// needs no build cache, and pins exactly what a reader of the source
// sees — including struct tags, which are wire contract here.

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update-api", false, "rewrite the public-API goldens in testdata/api")

func TestAPISnapshot(t *testing.T) {
	for _, pkg := range []struct {
		dir    string
		golden string
	}{
		{".", "nova.golden"},
		{"client", "client.golden"},
	} {
		pkg := pkg
		t.Run(pkg.golden, func(t *testing.T) {
			got := exportedSurface(t, pkg.dir)
			path := filepath.Join("testdata", "api", pkg.golden)
			if *updateAPI {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden %s (run `go test -run TestAPISnapshot -update-api .`): %v", path, err)
			}
			if got != string(want) {
				t.Errorf("exported API of %s changed:\n%s\n"+
					"If the change is deliberate, regenerate with `go test -run TestAPISnapshot -update-api .` "+
					"and note it in CHANGES.md per docs/API.md.", pkg.dir, surfaceDiff(string(want), got))
			}
		})
	}
}

// exportedSurface parses every non-test file of the package in dir and
// renders its exported declarations, sorted, one blank line apart.
func exportedSurface(t *testing.T, dir string) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	var decls []string
	var pkgName string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		pkgName = name
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				decls = append(decls, renderDecl(t, fset, decl)...)
			}
		}
	}
	if pkgName == "" {
		t.Fatalf("no non-test package found in %s", dir)
	}
	sort.Strings(decls)
	var b strings.Builder
	fmt.Fprintf(&b, "package %s\n", pkgName)
	for _, d := range decls {
		b.WriteString("\n")
		b.WriteString(d)
		b.WriteString("\n")
	}
	return b.String()
}

// renderDecl returns the exported declarations within decl, pruned and
// printed in canonical gofmt form. A declaration with nothing exported
// renders to nothing.
func renderDecl(t *testing.T, fset *token.FileSet, decl ast.Decl) []string {
	t.Helper()
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedRecv(d.Recv) {
			return nil
		}
		fn := *d
		fn.Body = nil
		fn.Doc = nil
		return []string{printNode(t, fset, &fn)}
	case *ast.GenDecl:
		if d.Tok == token.IMPORT {
			return nil
		}
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				ts := *s
				ts.Doc, ts.Comment = nil, nil
				pruneType(&ts)
				out = append(out, printNode(t, fset, &ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{&ts}}))
			case *ast.ValueSpec:
				if !anyExported(s.Names) {
					continue
				}
				vs := *s
				vs.Doc, vs.Comment = nil, nil
				out = append(out, printNode(t, fset, &ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{&vs}}))
			}
		}
		return out
	}
	return nil
}

// pruneType drops unexported struct fields and interface methods from a
// type spec, in place on the (copied) spec's shared type node — so it
// rebuilds the field lists rather than mutating the original AST.
func pruneType(ts *ast.TypeSpec) {
	switch typ := ts.Type.(type) {
	case *ast.StructType:
		st := *typ
		st.Fields = pruneFields(typ.Fields)
		ts.Type = &st
	case *ast.InterfaceType:
		it := *typ
		it.Methods = pruneFields(typ.Methods)
		ts.Type = &it
	}
}

func pruneFields(fl *ast.FieldList) *ast.FieldList {
	if fl == nil {
		return nil
	}
	kept := &ast.FieldList{Opening: fl.Opening, Closing: fl.Closing}
	for _, f := range fl.List {
		nf := *f
		nf.Doc, nf.Comment = nil, nil
		if len(f.Names) == 0 { // embedded field / embedded interface
			if exportedTypeName(f.Type) {
				kept.List = append(kept.List, &nf)
			}
			continue
		}
		var names []*ast.Ident
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(names) == 0 {
			continue
		}
		nf.Names = names
		kept.List = append(kept.List, &nf)
	}
	return kept
}

// exportedRecv reports whether a method receiver (nil for plain
// functions) names an exported type.
func exportedRecv(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return true
	}
	return exportedTypeName(recv.List[0].Type)
}

// exportedTypeName reports whether the leaf identifier of a type
// expression (unwrapping pointers, generics and package selectors) is
// exported.
func exportedTypeName(expr ast.Expr) bool {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e.IsExported()
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.IndexListExpr:
			expr = e.X
		case *ast.SelectorExpr:
			return e.Sel.IsExported()
		default:
			return false
		}
	}
}

func anyExported(names []*ast.Ident) bool {
	for _, n := range names {
		if n.IsExported() {
			return true
		}
	}
	return false
}

func printNode(t *testing.T, fset *token.FileSet, node any) string {
	t.Helper()
	var b strings.Builder
	cfg := printer.Config{Mode: printer.TabIndent, Tabwidth: 8}
	if err := cfg.Fprint(&b, fset, node); err != nil {
		t.Fatalf("print: %v", err)
	}
	return b.String()
}

// surfaceDiff renders a minimal line diff: declarations only in the
// golden (-) and only in the current surface (+).
func surfaceDiff(want, got string) string {
	wantSet := declSet(want)
	gotSet := declSet(got)
	var b strings.Builder
	for _, d := range sortedKeys(wantSet) {
		if !gotSet[d] {
			fmt.Fprintf(&b, "- %s\n", strings.ReplaceAll(d, "\n", "\n- "))
		}
	}
	for _, d := range sortedKeys(gotSet) {
		if !wantSet[d] {
			fmt.Fprintf(&b, "+ %s\n", strings.ReplaceAll(d, "\n", "\n+ "))
		}
	}
	if b.Len() == 0 {
		return "(declarations identical but ordering or formatting differs)"
	}
	return b.String()
}

// declSet splits a rendered surface into its blank-line-separated
// declaration blocks.
func declSet(s string) map[string]bool {
	set := map[string]bool{}
	for _, block := range strings.Split(s, "\n\n") {
		block = strings.TrimRight(block, "\n")
		if block != "" {
			set[block] = true
		}
	}
	return set
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
