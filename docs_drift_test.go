package nova_test

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"nova"
)

// glossaryKeys parses the "Counter glossary" table of
// docs/OBSERVABILITY.md into counter keys. Shorthand and placeholders
// follow the doc's conventions:
//
//   - `a.b` / `.c` means a.b and a.c (the leading-dot span replaces the
//     last field of the previous full key);
//   - `a.b` / `a.c` lists two full keys;
//   - a `<placeholder>` truncates the key to its literal prefix, matched
//     by prefix against the traced run.
func glossaryKeys(t *testing.T) (exact map[string]bool, prefixes []string) {
	t.Helper()
	data, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	_, sec, ok := strings.Cut(string(data), "## Counter glossary")
	if !ok {
		t.Fatal("docs/OBSERVABILITY.md lost its Counter glossary section")
	}
	if i := strings.Index(sec, "\n## "); i >= 0 {
		sec = sec[:i]
	}
	span := regexp.MustCompile("`([^`]+)`")
	exact = make(map[string]bool)
	addKey := func(key string) {
		if i := strings.IndexByte(key, '<'); i >= 0 {
			p := key[:i]
			if p == "" {
				t.Fatalf("glossary key %q is all placeholder", key)
			}
			prefixes = append(prefixes, p)
			return
		}
		exact[key] = true
	}
	for _, line := range strings.Split(sec, "\n") {
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		cell, _, ok := strings.Cut(strings.TrimPrefix(line, "| "), " |")
		if !ok {
			continue
		}
		var prev string
		for _, m := range span.FindAllStringSubmatch(cell, -1) {
			key := m[1]
			if strings.HasPrefix(key, ".") {
				if prev == "" {
					t.Fatalf("glossary row %q: leading-dot shorthand without a previous key", line)
				}
				base := prev[:strings.LastIndexByte(prev, '.')]
				key = base + key
			} else {
				prev = key
			}
			addKey(key)
		}
	}
	if len(exact)+len(prefixes) == 0 {
		t.Fatal("no keys parsed from the glossary")
	}
	return exact, prefixes
}

// driftFSM is big enough to exercise the searcher (backtracks, failed
// face checks) without slowing the test down.
const driftFSM = `
.i 2
.o 2
.s 7
.r st0
00 st0 st1 01
01 st0 st2 10
10 st0 st3 00
11 st0 st0 11
00 st1 st2 01
01 st1 st4 10
1- st1 st0 00
00 st2 st5 11
01 st2 st3 00
10 st2 st1 01
11 st2 st6 10
0- st3 st4 01
10 st3 st0 10
11 st3 st5 00
00 st4 st6 11
01 st4 st0 01
1- st4 st2 10
00 st5 st0 00
01 st5 st6 01
1- st5 st3 11
0- st6 st1 10
1- st6 st5 01
.e
`

// scheduleExempt lists glossary counters that legitimately may not fire
// in a small deterministic run: they depend on scheduler timing (a spare
// worker existing at the right instant) or on a race being close enough
// to prune. The guard still fails if the doc names a counter that is
// neither produced nor exempted — the doc-drift this test exists to
// catch.
var scheduleExempt = map[string]bool{
	"pool.inline":           true, // needs a saturated pool
	"fork.taut_forks":       true, // intra fork points need an idle worker at the instant
	"fork.comp_forks":       true,
	"fork.taut_branches":    true,
	"fork.comp_branches":    true,
	"search.spec_branches":  true, // speculative fan-out is opportunistic by design
	"search.spec_skipped":   true,
	"search.spec_adopted":   true,
	"search.spec_truncated": true,
	"search.bound_pruned":   true,
	"portfolio.pruned":      true, // needs a candidate provably beaten mid-run
	"portfolio.canceled":    true, // needs a candidate still running when the race ends
	// Needs an input constraint with more states than any proper face of
	// the minimum-length cube holds; the drift machine's constraints all
	// fit, as do most real machines'.
	"search.constraints.infeasible": true,
}

// TestGlossaryCountersAppearInTracedRun is the doc-drift guard for the
// counter glossary: every key docs/OBSERVABILITY.md documents must be
// produced by a real traced run (or carry a scheduling exemption above),
// and — the reverse direction — every counter the run produces must be
// documented.
func TestGlossaryCountersAppearInTracedRun(t *testing.T) {
	exact, prefixes := glossaryKeys(t)

	f, err := nova.ParseKISSString(driftFSM)
	if err != nil {
		t.Fatal(err)
	}
	f.Name = "drift"
	tracer := nova.NewTracer()

	// One portfolio race (algo.*, portfolio.won, portfolio.winner.*),
	// then a parallel ihybrid encode on the same tracer twice (espresso,
	// tautology memo including hits, arenas including reuses, searcher
	// work/backtracks/checks, pool tasks/depths), all intra-enabled so
	// the fork counters can fire where the scheduler allows.
	if _, err := nova.Encode(f, nova.Options{Algorithm: nova.Portfolio, Tracer: tracer}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := nova.Encode(f, nova.Options{
			Algorithm: nova.IHybrid, Parallelism: 4, IntraParallelism: 4, Tracer: tracer,
		}); err != nil {
			t.Fatal(err)
		}
	}
	got := tracer.Metrics().Counters()

	hasPrefix := func(key string) bool {
		for _, p := range prefixes {
			if strings.HasPrefix(key, p) {
				return true
			}
		}
		return false
	}

	// Forward: documented => produced (or exempt).
	var missing []string
	for key := range exact {
		if _, ok := got[key]; !ok && !scheduleExempt[key] {
			missing = append(missing, key)
		}
	}
	for _, p := range prefixes {
		found := false
		for key := range got {
			if strings.HasPrefix(key, p) {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, p+"<...>")
		}
	}
	if len(missing) > 0 {
		t.Errorf("glossary documents counters the traced run never produced: %v\n"+
			"(either the counter was removed — update docs/OBSERVABILITY.md — or add a justified scheduleExempt entry)", missing)
	}

	// Reverse: produced => documented.
	var undocumented []string
	for key := range got {
		if !exact[key] && !hasPrefix(key) {
			undocumented = append(undocumented, key)
		}
	}
	if len(undocumented) > 0 {
		t.Errorf("traced run produced counters missing from the docs/OBSERVABILITY.md glossary: %v", undocumented)
	}

	// Exemptions must stay real glossary keys (a stale exemption is doc
	// drift too).
	for key := range scheduleExempt {
		if !exact[key] {
			t.Errorf("scheduleExempt entry %q is not in the glossary", key)
		}
	}
}
