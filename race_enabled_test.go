//go:build race

package nova_test

// raceEnabled reports whether the test binary was built with the race
// detector. The allocation-count guards skip themselves under race: the
// race runtime allocates on its own schedule, so AllocsPerRun numbers
// are noise there. The guards stay enforced by the non-race test runs
// (and the CI telemetry job runs them explicitly).
const raceEnabled = true
