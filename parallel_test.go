package nova_test

// Tests of the concurrent encoding engine: determinism of the parallel
// fan-outs against serial runs, context cancellation, and the batch API.

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"nova"
	"nova/internal/bench"
)

// parallelSuite is the cross-section of suite machines the determinism
// tests sweep: small enough to run in seconds, varied enough to exercise
// symbolic inputs, multiple constraint shapes and both fan-out joins.
var parallelSuite = []string{"bbtas", "dk27", "lion", "shiftreg", "train11", "beecount"}

// TestSerialParallelIdentical checks the tentpole determinism guarantee:
// for a fixed Seed, the parallel Best and Random fan-outs return Results
// byte-identical to a serial run.
func TestSerialParallelIdentical(t *testing.T) {
	for _, name := range parallelSuite {
		for _, alg := range []nova.Algorithm{nova.Best, nova.Random} {
			t.Run(name+"/"+string(alg), func(t *testing.T) {
				f := bench.Get(name)
				opt := nova.Options{Algorithm: alg, Seed: 7}
				opt.Parallelism = 1
				serial, err := nova.Encode(f, opt)
				if err != nil {
					t.Fatalf("serial: %v", err)
				}
				opt.Parallelism = 4
				par, err := nova.Encode(f, opt)
				if err != nil {
					t.Fatalf("parallel: %v", err)
				}
				if !reflect.DeepEqual(serial, par) {
					t.Fatalf("parallel result differs from serial:\nserial:   %+v\nparallel: %+v", serial, par)
				}
			})
		}
	}
}

// TestSerialIntraParallelIdentical checks the intra-problem determinism
// guarantee: with IntraParallelism on — forked unate recursion in the
// minimizer plus speculative fan-out in the searches — every Result,
// including the minimized PLA bytes, is identical to a strictly serial
// run. IntraForkCubes is dropped to 2 so even the small suite machines
// actually fork, and MaxWork is fixed on both sides so the searches walk
// the same budgeted schedule.
func TestSerialIntraParallelIdentical(t *testing.T) {
	for _, name := range parallelSuite {
		for _, alg := range []nova.Algorithm{nova.Best, nova.IExact, nova.IHybrid, nova.IOHybrid} {
			t.Run(name+"/"+string(alg), func(t *testing.T) {
				f := bench.Get(name)
				opt := nova.Options{Algorithm: alg, Seed: 7, MaxWork: 200_000, KeepPLA: true}
				opt.Parallelism = 1
				serial, err := nova.Encode(f, opt)
				if err != nil {
					t.Fatalf("serial: %v", err)
				}
				opt.Parallelism = 4
				opt.IntraParallelism = 4
				opt.IntraForkCubes = 2
				par, err := nova.Encode(f, opt)
				if err != nil {
					t.Fatalf("intra-parallel: %v", err)
				}
				if !reflect.DeepEqual(serial, par) {
					t.Fatalf("intra-parallel result differs from serial:\nserial:   %+v\nparallel: %+v", serial, par)
				}
			})
		}
	}
}

// TestSerialParallelIdenticalAcrossSeeds widens the Random check: the
// per-trial seed split must make every trial independent of scheduling.
func TestSerialParallelIdenticalAcrossSeeds(t *testing.T) {
	f := bench.Get("dk15")
	for seed := int64(1); seed <= 3; seed++ {
		opt := nova.Options{Algorithm: nova.Random, Seed: seed, RandomTrials: 13, Parallelism: 1}
		serial, err := nova.Encode(f, opt)
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		opt.Parallelism = 3
		par, err := nova.Encode(f, opt)
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("seed %d: parallel Random differs from serial", seed)
		}
	}
}

// TestEncodeContextCancellation cancels a hopeless iexact search on a
// large random machine and requires EncodeContext to return promptly
// with an error matching both ErrCanceled and the context sentinel.
func TestEncodeContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := randomFSM(rng, 2, 2, 32)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := nova.EncodeContext(ctx, f, nova.Options{Algorithm: nova.IExact, MaxWork: 1 << 30})
	elapsed := time.Since(start)
	if !errors.Is(err, nova.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded joined in", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("EncodeContext took %v after a 50ms deadline", elapsed)
	}
}

// TestEncodeContextPreCanceled returns immediately on an already-dead
// context, before any minimization work.
func TestEncodeContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := nova.EncodeContext(ctx, bench.Get("bbtas"), nova.Options{})
	if !errors.Is(err, nova.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
}

// TestEncodeAllMatchesIndividual checks that the batch API returns the
// same Results as encoding the machines one at a time.
func TestEncodeAllMatchesIndividual(t *testing.T) {
	var fsms []*nova.FSM
	for _, name := range parallelSuite {
		fsms = append(fsms, bench.Get(name))
	}
	opt := nova.Options{Algorithm: nova.IHybrid, Seed: 3}
	batch, err := nova.EncodeAll(context.Background(), fsms, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(fsms) {
		t.Fatalf("EncodeAll returned %d results for %d machines", len(batch), len(fsms))
	}
	for i, f := range fsms {
		one, err := nova.Encode(f, opt)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if !reflect.DeepEqual(one, batch[i]) {
			t.Fatalf("%s: batch result differs from individual encode", f.Name)
		}
	}
}

// TestEncodeAllRejectsNil checks the batch input validation.
func TestEncodeAllRejectsNil(t *testing.T) {
	_, err := nova.EncodeAll(context.Background(), []*nova.FSM{bench.Get("lion"), nil}, nova.Options{})
	if err == nil {
		t.Fatal("EncodeAll accepted a nil machine")
	}
}

// TestEncodeAllPartialResults pins the batch partial-results contract: a
// per-machine failure lands in the joined error and leaves its slot nil,
// while every sibling's result still comes back.
func TestEncodeAllPartialResults(t *testing.T) {
	// One-hot on a 70-state machine needs 70 state bits — more than a
	// 64-bit code word holds — so that machine alone is unencodable.
	rng := rand.New(rand.NewSource(4))
	big := randomFSM(rng, 1, 1, 70)
	big.Name = "toobig"
	fsms := []*nova.FSM{bench.Get("lion"), big, bench.Get("bbtas")}
	results, err := nova.EncodeAll(context.Background(), fsms, nova.Options{Algorithm: nova.OneHot})
	if !errors.Is(err, nova.ErrUnencodable) {
		t.Fatalf("err = %v, want ErrUnencodable joined in", err)
	}
	if err == nil || !strings.Contains(err.Error(), "toobig") {
		t.Fatalf("err %q does not name the failed machine", err)
	}
	if len(results) != len(fsms) {
		t.Fatalf("EncodeAll returned %d slots for %d machines", len(results), len(fsms))
	}
	if results[1] != nil {
		t.Fatalf("failed machine's slot is %+v, want nil", results[1])
	}
	for _, i := range []int{0, 2} {
		if results[i] == nil {
			t.Fatalf("%s: sibling result lost to the partial failure", fsms[i].Name)
		}
		if verr := nova.Verify(fsms[i], results[i].Assignment); verr != nil {
			t.Fatalf("%s: %v", fsms[i].Name, verr)
		}
	}
}

// TestEncodeAllErrorOrderIsInputOrder pins the shape of the joined batch
// error: per-machine failures appear in input order, not completion
// order. Workers finish in whatever order scheduling allows, so the join
// must come from the indexed error slots; a batch with several failures
// across repeated parallel runs would expose any ordering drift.
func TestEncodeAllErrorOrderIsInputOrder(t *testing.T) {
	// One-hot on a >64-state machine is unencodable (the code word is a
	// uint64), so every "big" machine fails deterministically.
	rng := rand.New(rand.NewSource(8))
	big := func(name string) *nova.FSM {
		f := randomFSM(rng, 1, 1, 70)
		f.Name = name
		return f
	}
	fsms := []*nova.FSM{
		big("fails-a"), bench.Get("lion"), big("fails-b"), bench.Get("bbtas"), big("fails-c"),
	}
	wantOrder := []string{"fails-a", "fails-b", "fails-c"}
	for trial := 0; trial < 5; trial++ {
		_, err := nova.EncodeAll(context.Background(), fsms, nova.Options{Algorithm: nova.OneHot, Parallelism: 4})
		if !errors.Is(err, nova.ErrUnencodable) {
			t.Fatalf("trial %d: err = %v, want ErrUnencodable joined in", trial, err)
		}
		joined, ok := err.(interface{ Unwrap() []error })
		if !ok {
			t.Fatalf("trial %d: batch error is not a join: %T", trial, err)
		}
		branches := joined.Unwrap()
		if len(branches) != len(wantOrder) {
			t.Fatalf("trial %d: %d error branches, want %d: %v", trial, len(branches), len(wantOrder), err)
		}
		for i, b := range branches {
			if !strings.HasPrefix(b.Error(), wantOrder[i]+":") {
				t.Fatalf("trial %d: branch %d is %q, want machine %q (input order)", trial, i, b, wantOrder[i])
			}
		}
	}
}

// TestEncodeAllCanceled checks that batch cancellation aborts with the
// machine name wrapped around the canceled error.
func TestEncodeAllCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := nova.EncodeAll(ctx, []*nova.FSM{bench.Get("lion")}, nova.Options{})
	if !errors.Is(err, nova.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestVerifyContextCanceled checks the context variant of Verify.
func TestVerifyContextCanceled(t *testing.T) {
	f := bench.Get("lion")
	res, err := nova.Encode(f, nova.Options{Algorithm: nova.IGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if err := nova.VerifyContext(context.Background(), f, res.Assignment); err != nil {
		t.Fatalf("live context: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := nova.VerifyContext(ctx, f, res.Assignment); !errors.Is(err, nova.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}
