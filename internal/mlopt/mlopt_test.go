package mlopt

import (
	"math/rand"
	"sort"
	"testing"

	"nova/internal/cube"
)

func mkCover(nin, nout int, rows [][2]string) *cube.Cover {
	sizes := make([]int, nin+1)
	for i := 0; i < nin; i++ {
		sizes[i] = 2
	}
	sizes[nin] = nout
	s := cube.NewStructure(sizes...)
	f := cube.NewCover(s)
	for _, r := range rows {
		c := s.NewCube()
		for i, ch := range r[0] {
			switch ch {
			case '0':
				s.Set(c, i, 0)
			case '1':
				s.Set(c, i, 1)
			default:
				s.SetAll(c, i)
			}
		}
		for o, ch := range r[1] {
			if ch == '1' {
				s.Set(c, nin, o)
			}
		}
		f.Add(c)
	}
	return f
}

func TestFromCoverLiterals(t *testing.T) {
	// f0 = ab, f1 = ab + c': literals = 2 + (2+1) = 5.
	f := mkCover(3, 2, [][2]string{
		{"11-", "11"},
		{"--0", "01"},
	})
	n := FromCover(f, 3)
	if got := n.Literals(); got != 5 {
		t.Fatalf("Literals = %d, want 5", got)
	}
	if len(n.Outputs) != 2 {
		t.Fatalf("outputs = %d", len(n.Outputs))
	}
}

func TestCubeOps(t *testing.T) {
	a := Cube{0, 2, 5}
	b := Cube{2, 5}
	if !contains(a, b) || contains(b, a) {
		t.Fatal("contains wrong")
	}
	if got := minus(a, b); len(got) != 1 || got[0] != 0 {
		t.Fatalf("minus = %v", got)
	}
	if got := intersect(a, Cube{2, 3, 5}); len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("intersect = %v", got)
	}
}

func TestCommonCubeExtraction(t *testing.T) {
	// Three cubes sharing abc: extracting it saves 3*(3-1) - 3 = 3.
	f := mkCover(5, 1, [][2]string{
		{"111-1", "1"},
		{"1111-", "1"},
		{"11101", "1"},
	})
	n := FromCover(f, 5)
	before := n.Literals()
	n.Optimize(Options{DisableKernels: true})
	after := n.Literals()
	if after >= before {
		t.Fatalf("no improvement: %d -> %d", before, after)
	}
	if before-after < 3 {
		t.Fatalf("gain = %d, want >= 3", before-after)
	}
}

func TestKernelExtraction(t *testing.T) {
	// f0 = ad + bd, f1 = ae + be: kernel (a+b) shared by both.
	f := mkCover(5, 2, [][2]string{
		{"1--1-", "10"},
		{"-1-1-", "10"},
		{"1---1", "01"},
		{"-1--1", "01"},
	})
	n := FromCover(f, 5)
	before := n.Literals() // 8
	n.Optimize(Options{})
	after := n.Literals()
	if after >= before {
		t.Fatalf("kernel not extracted: %d -> %d", before, after)
	}
}

func TestDivide(t *testing.T) {
	// f = ad + bd + ae + be + c; d = a + b -> quotient {d, e}.
	nd := &Node{Cubes: []Cube{{0, 6}, {2, 6}, {0, 8}, {2, 8}, {4}}}
	q := divide(nd, []Cube{{0}, {2}})
	if len(q) != 2 {
		t.Fatalf("quotient = %v", q)
	}
	var got []int
	for _, c := range q {
		if len(c) != 1 {
			t.Fatalf("quotient cube %v", c)
		}
		got = append(got, c[0])
	}
	sort.Ints(got)
	if got[0] != 6 || got[1] != 8 {
		t.Fatalf("quotient literals = %v", got)
	}
	if q2 := divide(nd, []Cube{{0}, {10}}); q2 != nil {
		t.Fatalf("non-divisor should give empty quotient, got %v", q2)
	}
}

func TestKernels(t *testing.T) {
	// f = ab + ac: kernel for co-kernel a is (b + c).
	nd := &Node{Cubes: []Cube{{0, 2}, {0, 4}}}
	ks := kernels(nd)
	if len(ks) == 0 {
		t.Fatal("no kernels found")
	}
	found := false
	for _, k := range ks {
		if len(k) == 2 && len(k[0]) == 1 && len(k[1]) == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("kernel (b+c) not found: %v", ks)
	}
}

// evalNetwork evaluates the network at an input assignment.
func evalNetwork(n *Network, in []bool) []bool {
	val := map[int]bool{}
	for v := 0; v < n.NumIn; v++ {
		val[v] = in[v]
	}
	var nodeOf = map[int]*Node{}
	for _, nd := range n.Nodes {
		nodeOf[nd.Var] = nd
	}
	var eval func(v int) bool
	eval = func(v int) bool {
		if x, ok := val[v]; ok {
			return x
		}
		nd := nodeOf[v]
		res := false
		for _, c := range nd.Cubes {
			all := true
			for _, l := range c {
				b := eval(l / 2)
				if l%2 == 1 {
					b = !b
				}
				if !b {
					all = false
					break
				}
			}
			if all {
				res = true
				break
			}
		}
		val[v] = res
		return res
	}
	out := make([]bool, len(n.Outputs))
	for i, oi := range n.Outputs {
		out[i] = eval(n.Nodes[oi].Var)
	}
	return out
}

// Property: optimization preserves functionality on random covers.
func TestOptimizePreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		nin := 4 + rng.Intn(3)
		nout := 1 + rng.Intn(3)
		var rows [][2]string
		for r := 0; r < 3+rng.Intn(8); r++ {
			in := make([]byte, nin)
			for i := range in {
				in[i] = "01-"[rng.Intn(3)]
			}
			out := make([]byte, nout)
			any := false
			for i := range out {
				if rng.Intn(2) == 0 {
					out[i] = '1'
					any = true
				} else {
					out[i] = '0'
				}
			}
			if !any {
				out[0] = '1'
			}
			rows = append(rows, [2]string{string(in), string(out)})
		}
		f := mkCover(nin, nout, rows)
		ref := FromCover(f, nin)
		opt := FromCover(f, nin)
		opt.Optimize(Options{})
		for v := 0; v < 1<<uint(nin); v++ {
			in := make([]bool, nin)
			for i := range in {
				in[i] = v&(1<<uint(i)) != 0
			}
			a := evalNetwork(ref, in)
			b := evalNetwork(opt, in)
			for o := range a {
				if a[o] != b[o] {
					t.Fatalf("trial %d: output %d differs at input %b", trial, o, v)
				}
			}
		}
	}
}

// Property: optimization never increases the literal count.
func TestOptimizeMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		var rows [][2]string
		for r := 0; r < 10; r++ {
			in := make([]byte, 6)
			for i := range in {
				in[i] = "01-"[rng.Intn(3)]
			}
			rows = append(rows, [2]string{string(in), "1"})
		}
		f := mkCover(6, 1, rows)
		n := FromCover(f, 6)
		before := n.Literals()
		n.Optimize(Options{})
		if n.Literals() > before {
			t.Fatalf("trial %d: literals grew %d -> %d", trial, before, n.Literals())
		}
	}
}

func TestNetworkString(t *testing.T) {
	f := mkCover(3, 1, [][2]string{{"11-", "1"}, {"--0", "1"}})
	n := FromCover(f, 3)
	s := n.String()
	if s == "" || len(s) < 5 {
		t.Fatalf("String = %q", s)
	}
	// d is the first output node (inputs a,b,c): "d = a·b + c'".
	if s != "d = a·b + c'\n" {
		t.Fatalf("rendering = %q", s)
	}
}
