// Package mlopt is the multilevel logic optimization stand-in used to
// reproduce Table VII (the paper ran MIS-II's standard script). It builds
// a Boolean network from a minimized two-level cover and applies greedy
// algebraic restructuring — shared-term extraction, common-cube (single-
// cube divisor) extraction and level-0 kernel (multi-cube divisor)
// extraction — and reports the resulting literal count, the paper's
// multilevel cost metric. The optimizer is deterministic, so encoding
// comparisons (NOVA vs MUSTANG vs random) are consistent.
package mlopt

import (
	"sort"

	"nova/internal/cube"
)

// A literal is an integer: 2*v for variable v in positive phase, 2*v+1 in
// negative phase. Intermediate nodes introduce fresh variables, always
// referenced in positive phase.

// Cube is a sorted set of literals (an AND term).
type Cube []int

// Node is one function of the network: an OR of cubes.
type Node struct {
	Var   int // the variable this node drives
	Cubes []Cube
}

// Network is a combinational Boolean network.
type Network struct {
	NumIn   int // primary input variables 0..NumIn-1
	nextVar int
	Nodes   []*Node
	Outputs []int // indexes into Nodes of the primary outputs
}

// FromCover builds the initial network from a two-level cover over nin
// binary variables and one output variable: one node per output whose
// cubes are the input parts of the rows asserting it.
func FromCover(f *cube.Cover, nin int) *Network {
	s := f.S
	nout := s.Size(nin)
	n := &Network{NumIn: nin, nextVar: nin}
	for o := 0; o < nout; o++ {
		nd := &Node{Var: n.nextVar}
		n.nextVar++
		for _, c := range f.Cubes {
			if !s.Test(c, nin, o) {
				continue
			}
			var k Cube
			for v := 0; v < nin; v++ {
				zero, one := s.Test(c, v, 0), s.Test(c, v, 1)
				switch {
				case zero && one:
				case one:
					k = append(k, 2*v)
				case zero:
					k = append(k, 2*v+1)
				}
			}
			sort.Ints(k)
			nd.Cubes = append(nd.Cubes, k)
		}
		n.Outputs = append(n.Outputs, len(n.Nodes))
		n.Nodes = append(n.Nodes, nd)
	}
	return n
}

// Literals returns the network's literal count: the sum over nodes of the
// literals of their sum-of-products forms (constant terms count zero).
func (n *Network) Literals() int {
	t := 0
	for _, nd := range n.Nodes {
		for _, c := range nd.Cubes {
			t += len(c)
		}
	}
	return t
}

func key(c Cube) string {
	b := make([]byte, 0, len(c)*3)
	for _, l := range c {
		b = append(b, byte(l), byte(l>>8), ',')
	}
	return string(b)
}

// contains reports whether sorted cube a contains all literals of sorted
// cube b.
func contains(a, b Cube) bool {
	i := 0
	for _, l := range b {
		for i < len(a) && a[i] < l {
			i++
		}
		if i >= len(a) || a[i] != l {
			return false
		}
		i++
	}
	return true
}

// minus returns a \ b for sorted cubes.
func minus(a, b Cube) Cube {
	var out Cube
	i := 0
	for _, l := range a {
		for i < len(b) && b[i] < l {
			i++
		}
		if i < len(b) && b[i] == l {
			continue
		}
		out = append(out, l)
	}
	return out
}

// intersect returns a ∩ b for sorted cubes.
func intersect(a, b Cube) Cube {
	var out Cube
	i := 0
	for _, l := range a {
		for i < len(b) && b[i] < l {
			i++
		}
		if i < len(b) && b[i] == l {
			out = append(out, l)
		}
	}
	return out
}

// Options tunes the optimizer.
type Options struct {
	// MaxExtractions bounds the number of divisor extractions (0 = 1000).
	MaxExtractions int
	// DisableKernels restricts the optimizer to common-cube extraction
	// (ablation hook).
	DisableKernels bool
}

// Optimize greedily extracts the best divisor (common cube or kernel)
// until no extraction saves literals.
func (n *Network) Optimize(opt Options) {
	max := opt.MaxExtractions
	if max <= 0 {
		max = 1000
	}
	for i := 0; i < max; i++ {
		gc, cc := n.bestCommonCube()
		gk, kd := 0, []Cube(nil)
		if !opt.DisableKernels {
			gk, kd = n.bestKernel()
		}
		switch {
		case gc <= 0 && gk <= 0:
			return
		case gc >= gk:
			n.extractCube(cc)
		default:
			n.extractKernel(kd)
		}
	}
}

// bestCommonCube finds the single-cube divisor with the best literal gain:
// candidates are pairwise intersections of cubes; a divisor of size s
// occurring in k cubes saves k*(s-1) - s literals.
func (n *Network) bestCommonCube() (gain int, best Cube) {
	// Collect all cubes.
	var all []Cube
	for _, nd := range n.Nodes {
		all = append(all, nd.Cubes...)
	}
	seen := map[string]bool{}
	gain = 0
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			cand := intersect(all[i], all[j])
			if len(cand) < 2 {
				continue
			}
			k := key(cand)
			if seen[k] {
				continue
			}
			seen[k] = true
			occ := 0
			for _, c := range all {
				if contains(c, cand) {
					occ++
				}
			}
			g := occ*(len(cand)-1) - len(cand)
			if g > gain {
				gain, best = g, cand
			}
		}
	}
	return gain, best
}

// extractCube introduces a new node for divisor d and rewrites every cube
// containing d to use the new literal.
func (n *Network) extractCube(d Cube) {
	v := n.nextVar
	n.nextVar++
	lit := 2 * v
	for _, nd := range n.Nodes {
		for ci, c := range nd.Cubes {
			if contains(c, d) {
				r := minus(c, d)
				r = append(r, lit)
				sort.Ints(r)
				nd.Cubes[ci] = r
			}
		}
	}
	n.Nodes = append(n.Nodes, &Node{Var: v, Cubes: []Cube{append(Cube(nil), d...)}})
}

// kernels returns the level-0 kernels of a node: for each literal in two
// or more cubes, the cube-free quotient with at least two cubes.
func kernels(nd *Node) [][]Cube {
	count := map[int]int{}
	for _, c := range nd.Cubes {
		for _, l := range c {
			count[l]++
		}
	}
	var out [][]Cube
	for l, k := range count {
		if k < 2 {
			continue
		}
		var q []Cube
		for _, c := range nd.Cubes {
			if idx := sort.SearchInts(c, l); idx < len(c) && c[idx] == l {
				q = append(q, minus(c, Cube{l}))
			}
		}
		// Make cube-free: strip the largest common cube.
		common := append(Cube(nil), q[0]...)
		for _, c := range q[1:] {
			common = intersect(common, c)
		}
		if len(common) > 0 {
			for i := range q {
				q[i] = minus(q[i], common)
			}
		}
		if len(q) >= 2 {
			ok := true
			for _, c := range q {
				if len(c) == 0 {
					ok = false // degenerate (a + ab style): skip
				}
			}
			if ok {
				out = append(out, q)
			}
		}
	}
	return out
}

// divide performs weak algebraic division of a node by divisor d,
// returning the quotient cubes (empty when d does not divide the node).
func divide(nd *Node, d []Cube) []Cube {
	var q []Cube
	for qi, di := range d {
		var cand []Cube
		for _, c := range nd.Cubes {
			if contains(c, di) {
				cand = append(cand, minus(c, di))
			}
		}
		if qi == 0 {
			q = cand
			continue
		}
		// Intersect cube sets.
		have := map[string]bool{}
		for _, c := range cand {
			have[key(c)] = true
		}
		var kept []Cube
		for _, c := range q {
			if have[key(c)] {
				kept = append(kept, c)
			}
		}
		q = kept
		if len(q) == 0 {
			return nil
		}
	}
	// Deduplicate the quotient (identical cubes would double-substitute).
	seen := map[string]bool{}
	var out []Cube
	for _, c := range q {
		k := key(c)
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}

// bestKernel evaluates every level-0 kernel of every node as a candidate
// multi-cube divisor and returns the best literal gain.
func (n *Network) bestKernel() (gain int, best []Cube) {
	seen := map[string]bool{}
	for _, nd := range n.Nodes {
		for _, kd := range kernels(nd) {
			sig := ""
			ks := make([]string, len(kd))
			for i, c := range kd {
				ks[i] = key(c)
			}
			sort.Strings(ks)
			for _, s := range ks {
				sig += s + ";"
			}
			if seen[sig] {
				continue
			}
			seen[sig] = true
			g := n.kernelGain(kd)
			if g > gain {
				gain, best = g, kd
			}
		}
	}
	return gain, best
}

// kernelGain computes the literal saving of extracting divisor d.
func (n *Network) kernelGain(d []Cube) int {
	ld := 0
	for _, c := range d {
		ld += len(c)
	}
	m := len(d)
	save := 0
	for _, nd := range n.Nodes {
		q := divide(nd, d)
		for _, x := range q {
			save += (m-1)*len(x) + ld - 1
		}
	}
	return save - ld
}

// extractKernel introduces a node for divisor d and substitutes it in
// every node it divides.
func (n *Network) extractKernel(d []Cube) {
	v := n.nextVar
	n.nextVar++
	lit := 2 * v
	for _, nd := range n.Nodes {
		q := divide(nd, d)
		if len(q) == 0 {
			continue
		}
		// Remove the q×d cubes, add q cubes extended with the new literal.
		remove := map[string]bool{}
		for _, x := range q {
			for _, di := range d {
				merged := append(append(Cube(nil), x...), di...)
				sort.Ints(merged)
				remove[key(merged)] = true
			}
		}
		var kept []Cube
		for _, c := range nd.Cubes {
			if !remove[key(c)] {
				kept = append(kept, c)
			}
		}
		for _, x := range q {
			r := append(append(Cube(nil), x...), lit)
			sort.Ints(r)
			kept = append(kept, r)
		}
		nd.Cubes = kept
	}
	dn := &Node{Var: v}
	for _, c := range d {
		dn.Cubes = append(dn.Cubes, append(Cube(nil), c...))
	}
	n.Nodes = append(n.Nodes, dn)
}

// String renders the network one node per line as factored SOPs, inputs
// named a,b,c,… (then v<N>), negation marked with a trailing apostrophe.
func (n *Network) String() string {
	name := func(v int) string {
		if v < 26 {
			return string(rune('a' + v))
		}
		return "v" + itoa(v)
	}
	lit := func(l int) string {
		s := name(l / 2)
		if l%2 == 1 {
			s += "'"
		}
		return s
	}
	var b []byte
	for _, nd := range n.Nodes {
		b = append(b, name(nd.Var)...)
		b = append(b, " = "...)
		for ci, c := range nd.Cubes {
			if ci > 0 {
				b = append(b, " + "...)
			}
			if len(c) == 0 {
				b = append(b, '1')
			}
			for li, l := range c {
				if li > 0 {
					b = append(b, "·"...)
				}
				b = append(b, lit(l)...)
			}
		}
		b = append(b, '\n')
	}
	return string(b)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// OptimizedLiterals is the one-call helper used by the Table VII harness.
func OptimizedLiterals(f *cube.Cover, nin int, opt Options) int {
	n := FromCover(f, nin)
	n.Optimize(opt)
	return n.Literals()
}
