package cube

import (
	"math/rand"
	"testing"
)

// mintermSet enumerates a cover's minterms as a key set.
func mintermSet(f *Cover) map[string]bool {
	out := map[string]bool{}
	f.Minterms(func(m Cube) { out[m.Key()] = true })
	return out
}

func TestSharpCubeBasic(t *testing.T) {
	s := NewStructure(2, 2)
	a := s.FullCube()
	b := parse(s, "01", "01") // one minterm
	diff := s.SharpCube(a, b)
	got := mintermSet(diff)
	if len(got) != 3 {
		t.Fatalf("sharp covers %d minterms, want 3", len(got))
	}
	if got[b.Key()] {
		t.Fatal("sharp still covers the removed minterm")
	}
}

func TestSharpCubeDisjointOperands(t *testing.T) {
	s := NewStructure(2, 2)
	a := parse(s, "01", "11")
	b := parse(s, "10", "11")
	diff := s.SharpCube(a, b)
	if diff.Len() != 1 || !diff.Cubes[0].Equal(a) {
		t.Fatalf("sharp of disjoint cubes must return a unchanged:\n%s", diff)
	}
}

func TestDisjointSharpPairwiseDisjoint(t *testing.T) {
	s := NewStructure(2, 3, 2)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		a, b := randomCube(s, rng), randomCube(s, rng)
		d := s.DisjointSharpCube(a, b)
		for i := 0; i < d.Len(); i++ {
			for j := i + 1; j < d.Len(); j++ {
				if s.Intersects(d.Cubes[i], d.Cubes[j]) {
					t.Fatalf("trial %d: disjoint sharp produced overlapping cubes", trial)
				}
			}
		}
		// Semantics: d = a \ b exactly.
		inA, inB := mintermSet(coverOf(s, a)), mintermSet(coverOf(s, b))
		got := mintermSet(d)
		for k := range inA {
			want := !inB[k]
			if got[k] != want {
				t.Fatalf("trial %d: minterm coverage wrong", trial)
			}
		}
		for k := range got {
			if !inA[k] || inB[k] {
				t.Fatalf("trial %d: sharp covers a foreign minterm", trial)
			}
		}
	}
}

func coverOf(s *Structure, cs ...Cube) *Cover {
	f := NewCover(s)
	for _, c := range cs {
		f.Add(c)
	}
	return f
}

func TestCoverSharpSemantics(t *testing.T) {
	s := NewStructure(2, 2, 2)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		f := coverOf(s, randomCube(s, rng), randomCube(s, rng))
		g := coverOf(s, randomCube(s, rng), randomCube(s, rng))
		diff := f.Sharp(g)
		inF, inG, got := mintermSet(f), mintermSet(g), mintermSet(diff)
		for k := range inF {
			want := !inG[k]
			if got[k] != want {
				t.Fatalf("trial %d: sharp wrong at minterm", trial)
			}
		}
		for k := range got {
			if !inF[k] || inG[k] {
				t.Fatalf("trial %d: sharp covers foreign minterm", trial)
			}
		}
	}
}

func TestDisjointCoverEquivalent(t *testing.T) {
	s := NewStructure(2, 2, 3)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		f := coverOf(s, randomCube(s, rng), randomCube(s, rng), randomCube(s, rng))
		d := f.Disjoint()
		if !sameSet(mintermSet(f), mintermSet(d)) {
			t.Fatalf("trial %d: Disjoint changed the function", trial)
		}
		for i := 0; i < d.Len(); i++ {
			for j := i + 1; j < d.Len(); j++ {
				if s.Intersects(d.Cubes[i], d.Cubes[j]) {
					t.Fatalf("trial %d: cubes %d,%d overlap", trial, i, j)
				}
			}
		}
	}
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestMintermCount(t *testing.T) {
	s := NewStructure(2, 2)
	f := coverOf(s, parse(s, "01", "11"), parse(s, "11", "01"))
	// a' covers 2 minterms, b' covers 2, overlap 1 -> 3.
	if got := f.MintermCount(); got != 3 {
		t.Fatalf("MintermCount = %d, want 3", got)
	}
	if got := NewCover(s).MintermCount(); got != 0 {
		t.Fatalf("empty cover counts %d", got)
	}
}

func TestSharpAgainstComplement(t *testing.T) {
	// Universe \ f must equal Complement(f) as a set of minterms.
	s := NewStructure(2, 3)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		f := coverOf(s, randomCube(s, rng), randomCube(s, rng))
		u := NewCover(s)
		u.Add(s.FullCube())
		viaSharp := u.Sharp(f)
		viaComp := f.Complement()
		if !sameSet(mintermSet(viaSharp), mintermSet(viaComp)) {
			t.Fatalf("trial %d: sharp and complement disagree", trial)
		}
	}
}
