package cube

import (
	"context"
	"sort"
)

// Arena is a scratch allocator for the unate-recursion hot path: a free
// list of cubes and cover containers tied to one Structure layout, plus a
// memo cache for tautology results. The recursion of Tautology /
// CoversCube / Complement allocates one cofactor cover per node; with an
// arena those buffers are recycled instead of handed to the garbage
// collector, which removes the dominant allocation cost of the ESPRESSO
// passes.
//
// An Arena is NOT safe for concurrent use. Obtain one with GetArena and
// return it with PutArena; the backing sync.Pool hands each worker its own
// arena, which is what keeps parallel encoding race-free.
type Arena struct {
	s      *Structure
	cubes  []Cube
	covers []*Cover

	// memoIdx/memoBuf are reusable scratch for building keys into the
	// layout's shared tautology memo (see memo.go); the memo itself lives
	// on the Structure so concurrent arenas share verdicts.
	memoIdx []int
	memoBuf []byte

	// fork, when non-nil, parallelizes the unate recursion's branches
	// (see fork.go); fctx is the cancellation context observed by the
	// recursion while forking is on, polled every 64 nodes via pollTick.
	fork     *Fork
	fctx     context.Context
	pollTick int

	// stat accumulates hot-loop telemetry in plain ints — the arena is
	// single-owner, so no atomics are needed here. Callers that trace
	// snapshot Stats() before and after a phase and flush the delta into
	// an obs.Metrics; untraced runs pay only the increments.
	stat   ArenaStats
	reused bool // true when GetArena served this arena from the pool
}

// ArenaStats counts arena and tautology-memo activity. Values are
// cumulative over the arena's lifetime (across pool reuses); use Sub to
// form per-phase deltas.
type ArenaStats struct {
	TautCalls       int64 // tautology / covering queries answered
	TautMemoLookups int64 // memo probes (covers >= memoMinCubes)
	TautMemoHits    int64
	CubesAlloc      int64 // NewCube calls that hit make()
	CubesReused     int64 // NewCube calls served from the free list
}

// Sub returns s - o, the activity between two snapshots.
func (s ArenaStats) Sub(o ArenaStats) ArenaStats {
	return ArenaStats{
		TautCalls:       s.TautCalls - o.TautCalls,
		TautMemoLookups: s.TautMemoLookups - o.TautMemoLookups,
		TautMemoHits:    s.TautMemoHits - o.TautMemoHits,
		CubesAlloc:      s.CubesAlloc - o.CubesAlloc,
		CubesReused:     s.CubesReused - o.CubesReused,
	}
}

// Stats returns the arena's cumulative activity counters.
func (a *Arena) Stats() ArenaStats { return a.stat }

// Reused reports whether this arena came out of the pool warm (with its
// free lists and memo from a previous owner) rather than freshly built.
func (a *Arena) Reused() bool { return a.reused }

// memoMinCubes is the smallest cover worth memoizing: below this the
// recursion is cheaper than the key construction.
const memoMinCubes = 4

// NewArena returns an empty arena for structure s.
func NewArena(s *Structure) *Arena { return &Arena{s: s} }

// GetArena checks an arena for s's layout out of the shared pool. The
// caller has exclusive use of it until PutArena.
func GetArena(s *Structure) *Arena {
	if v := s.pool.Get(); v != nil {
		a := v.(*Arena)
		a.s = s // equal layout: masks and widths are interchangeable
		a.reused = true
		return a
	}
	return NewArena(s)
}

// PutArena returns an arena to its layout's pool. Any fork attachment is
// dropped: the next owner decides its own parallelism.
func PutArena(a *Arena) {
	if a == nil {
		return
	}
	a.SetFork(nil, nil)
	a.s.pool.Put(a)
}

// SetFork attaches (or, with a nil fork, detaches) intra-problem branch
// parallelism to the arena: while attached, the unate-recursion
// procedures fork large branch sets onto the fork's pool and poll ctx
// for cancellation. The arena remains single-owner; the fork only
// governs where child branches run.
func (a *Arena) SetFork(fk *Fork, ctx context.Context) {
	a.fork = fk
	a.fctx = ctx
	a.pollTick = 0
}

// cancelPoll is the recursion-entry cancellation check, active only
// while a fork is attached. It polls the context once every 64 nodes;
// a true return tells the recursion to unwind with a conservative
// verdict (which is never memoized — see TautologyWith).
func (a *Arena) cancelPoll() bool {
	if a.fork == nil || a.fctx == nil {
		return false
	}
	a.pollTick++
	if a.pollTick&63 != 0 {
		return false
	}
	return a.fctx.Err() != nil
}

// canceled reports whether the arena's fork context (if any) is done —
// i.e. whether in-flight verdicts may be cancellation-tainted.
func (a *Arena) canceled() bool {
	return a.fctx != nil && a.fctx.Err() != nil
}

// NewCube returns a zeroed cube, recycled when possible.
func (a *Arena) NewCube() Cube {
	if n := len(a.cubes); n > 0 {
		c := a.cubes[n-1]
		a.cubes = a.cubes[:n-1]
		for i := range c {
			c[i] = 0
		}
		a.stat.CubesReused++
		return c
	}
	a.stat.CubesAlloc++
	return make(Cube, a.s.nwords)
}

// CopyCube returns an arena-backed copy of c.
func (a *Arena) CopyCube(c Cube) Cube {
	r := a.NewCube()
	copy(r, c)
	return r
}

// FreeCube recycles c. The caller must not retain references to it.
func (a *Arena) FreeCube(c Cube) {
	if len(c) == a.s.nwords {
		a.cubes = append(a.cubes, c)
	}
}

// NewCover returns an empty cover container over the arena's structure.
func (a *Arena) NewCover() *Cover {
	if n := len(a.covers); n > 0 {
		f := a.covers[n-1]
		a.covers = a.covers[:n-1]
		f.S = a.s
		f.Cubes = f.Cubes[:0]
		return f
	}
	return &Cover{S: a.s}
}

// FreeCover recycles the cover container only; its cubes are left alone
// (for covers whose cubes alias caller-owned data).
func (a *Arena) FreeCover(f *Cover) {
	f.Cubes = f.Cubes[:0]
	a.covers = append(a.covers, f)
}

// Release recycles the cover container and every cube in it. Only covers
// whose cubes were all allocated from this arena (cofactor covers built by
// the recursion) may be released.
func (a *Arena) Release(f *Cover) {
	for _, c := range f.Cubes {
		a.FreeCube(c)
	}
	a.FreeCover(f)
}

// coverKey builds the canonical content key of f: cube indices sorted
// lexicographically by words, then all words serialized little-endian.
// Two covers get the same key iff they contain the same multiset of
// cubes. The returned slice aliases arena scratch — it is valid only
// until the next coverKey call on this arena (the memo copies on
// insert and only reads during lookup).
func (a *Arena) coverKey(f *Cover) []byte {
	n := len(f.Cubes)
	if cap(a.memoIdx) < n {
		a.memoIdx = make([]int, n)
	}
	idx := a.memoIdx[:n]
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool {
		cx, cy := f.Cubes[idx[x]], f.Cubes[idx[y]]
		for w := range cx {
			if cx[w] != cy[w] {
				return cx[w] < cy[w]
			}
		}
		return false
	})
	need := n * a.s.nwords * 8
	if cap(a.memoBuf) < need {
		a.memoBuf = make([]byte, need)
	}
	buf := a.memoBuf[:0]
	for _, i := range idx {
		for _, w := range f.Cubes[i] {
			buf = append(buf, byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
				byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
		}
	}
	a.memoBuf = buf
	return buf
}

// memoGet looks up a tautology verdict in the layout's shared memo.
func (a *Arena) memoGet(key []byte) (bool, bool) {
	return a.s.memo.get(key)
}

// memoPut stores a tautology verdict in the layout's shared memo.
func (a *Arena) memoPut(key []byte, v bool) {
	a.s.memo.put(key, v)
}
