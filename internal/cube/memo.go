package cube

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// The tautology memo caches unate-recursion verdicts keyed by the
// canonical serialized content of a cover. Keys are content-exact, so a
// hit can never be wrong; entries stay valid forever, which is why one
// memo is shared by every Structure of a layout (and by every arena —
// under intra-parallel minimization many arenas probe it at once).
//
// The cache is bounded: a sharded LRU whose global capacity is set by
// SetTautMemoCap. Long EncodeAll sweeps over large covers therefore
// reach a steady state instead of growing without limit, trading re-runs
// of the cheapest (least recently useful) recursions for bounded memory.

// memoShards is the number of independently locked LRU shards. Sixteen
// keeps lock contention negligible at the pool sizes sched builds
// (bounded by GOMAXPROCS) while the per-shard LRU stays dense.
const memoShards = 16

// DefaultTautMemoCap is the default global entry bound — generous: at
// the benchmark suite's typical key sizes (tens to hundreds of bytes)
// the memo tops out in the tens of megabytes.
const DefaultTautMemoCap = 1 << 15

var tautMemoCap atomic.Int64

func init() { tautMemoCap.Store(DefaultTautMemoCap) }

// SetTautMemoCap bounds the process-wide tautology memo at n entries
// (spread evenly over the internal shards). n <= 0 restores the
// default. The bound applies lazily: shards evict on their next insert.
func SetTautMemoCap(n int) {
	if n <= 0 {
		n = DefaultTautMemoCap
	}
	tautMemoCap.Store(int64(n))
}

// shardCap is the per-shard entry bound (at least 1).
func shardCap() int {
	c := int(tautMemoCap.Load()) / memoShards
	if c < 1 {
		c = 1
	}
	return c
}

// memoSeed is the process-wide key hash seed.
var memoSeed = maphash.MakeSeed()

// tautMemos maps a layout key to the shared memo of that layout.
var tautMemos sync.Map

func memoForLayout(key string) *tautMemo {
	if m, ok := tautMemos.Load(key); ok {
		return m.(*tautMemo)
	}
	m, _ := tautMemos.LoadOrStore(key, newTautMemo())
	return m.(*tautMemo)
}

// tautMemo is a sharded, bounded, concurrency-safe verdict cache.
type tautMemo struct {
	shards [memoShards]memoShard
}

func newTautMemo() *tautMemo {
	m := &tautMemo{}
	for i := range m.shards {
		m.shards[i].init()
	}
	return m
}

// memoShard is one lock's worth of the cache: a key index over an
// entry arena threaded into an intrusive doubly-linked LRU list.
type memoShard struct {
	mu      sync.Mutex
	m       map[string]int32
	entries []memoEntry
	head    int32 // most recently used; -1 when empty
	tail    int32 // least recently used; -1 when empty
	free    int32 // free-list head (chained through next); -1 when empty
}

type memoEntry struct {
	key        string
	prev, next int32
	verdict    bool
}

func (sh *memoShard) init() {
	sh.m = make(map[string]int32)
	sh.head, sh.tail, sh.free = -1, -1, -1
}

// unlink removes entry i from the LRU list.
func (sh *memoShard) unlink(i int32) {
	e := &sh.entries[i]
	if e.prev >= 0 {
		sh.entries[e.prev].next = e.next
	} else {
		sh.head = e.next
	}
	if e.next >= 0 {
		sh.entries[e.next].prev = e.prev
	} else {
		sh.tail = e.prev
	}
}

// pushFront makes entry i the most recently used.
func (sh *memoShard) pushFront(i int32) {
	e := &sh.entries[i]
	e.prev, e.next = -1, sh.head
	if sh.head >= 0 {
		sh.entries[sh.head].prev = i
	}
	sh.head = i
	if sh.tail < 0 {
		sh.tail = i
	}
}

// get looks key up and, on a hit, refreshes its recency. The []byte key
// is only read during the call, so callers may reuse the buffer.
func (m *tautMemo) get(key []byte) (verdict, ok bool) {
	sh := &m.shards[maphash.Bytes(memoSeed, key)&(memoShards-1)]
	sh.mu.Lock()
	i, ok := sh.m[string(key)] // no-copy map probe
	if ok {
		verdict = sh.entries[i].verdict
		if sh.head != i {
			sh.unlink(i)
			sh.pushFront(i)
		}
	}
	sh.mu.Unlock()
	return verdict, ok
}

// put records a verdict, evicting the least recently used entry of the
// shard when it is at capacity. The key bytes are copied.
func (m *tautMemo) put(key []byte, verdict bool) {
	sh := &m.shards[maphash.Bytes(memoSeed, key)&(memoShards-1)]
	sh.mu.Lock()
	if i, ok := sh.m[string(key)]; ok {
		// Content-exact keys can never change verdict; just refresh.
		if sh.head != i {
			sh.unlink(i)
			sh.pushFront(i)
		}
		sh.mu.Unlock()
		return
	}
	cap := shardCap()
	for len(sh.m) >= cap && sh.tail >= 0 {
		victim := sh.tail
		sh.unlink(victim)
		delete(sh.m, sh.entries[victim].key)
		sh.entries[victim].key = ""
		sh.entries[victim].next = sh.free
		sh.free = victim
	}
	var i int32
	if sh.free >= 0 {
		i = sh.free
		sh.free = sh.entries[i].next
	} else {
		sh.entries = append(sh.entries, memoEntry{})
		i = int32(len(sh.entries) - 1)
	}
	sh.entries[i].key = string(key)
	sh.entries[i].verdict = verdict
	sh.m[sh.entries[i].key] = i
	sh.pushFront(i)
	sh.mu.Unlock()
}

// len returns the number of cached entries (for tests).
func (m *tautMemo) len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}
