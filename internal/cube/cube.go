// Package cube implements the multiple-valued cube and cover algebra that
// underlies two-level logic minimization in the positional-cube notation of
// ESPRESSO-MV.
//
// A logic function over multiple-valued variables X1..Xn (a binary variable
// is the special case of a 2-valued variable) is represented by a cover: a
// set of cubes. Each cube is a bit vector with one bit ("part") per value of
// each variable. Bit (v, p) set means the cube admits value p for variable
// v. A cube denotes the set of minterms whose value of every variable is
// admitted. A cube with an empty field for some variable denotes the empty
// set.
//
// Multi-output functions are represented, as in ESPRESSO, by treating the
// output part as one more multiple-valued variable whose values index the
// individual outputs: the cover then represents the characteristic function
// of the set of pairs (input-minterm, output-index) where the output is 1.
package cube

import (
	"fmt"
	"math/bits"
	"strings"
	"sync"
)

// Structure describes the variable layout shared by all cubes of a cover:
// how many variables there are and how many parts (values) each has.
// A Structure is immutable after creation.
//
// Alongside the layout it precomputes, per variable, a full-width word
// mask and the word span the variable's field occupies, so the semantic
// per-field operations (emptiness, fullness, counting, cofactor) run
// word-parallel instead of bit by bit.
type Structure struct {
	sizes   []int // parts per variable
	offsets []int // first bit index of each variable
	nbits   int   // total parts
	nwords  int   // words per cube

	full     Cube   // the universe cube
	vmask    []Cube // per-variable field mask, nwords wide
	vlo, vhi []int  // first/last word index of each variable's field

	pool *sync.Pool // shared Arena pool of this layout (see arena.go)
	memo *tautMemo  // shared tautology memo of this layout (see memo.go)
}

// NewStructure returns a Structure for variables with the given part counts.
// Every count must be at least 1 (a 1-valued variable is degenerate but
// legal; binary variables have 2 parts).
func NewStructure(sizes ...int) *Structure {
	s := &Structure{sizes: append([]int(nil), sizes...)}
	s.offsets = make([]int, len(sizes))
	for i, n := range sizes {
		if n < 1 {
			panic(fmt.Sprintf("cube: variable %d has invalid part count %d", i, n))
		}
		s.offsets[i] = s.nbits
		s.nbits += n
	}
	s.nwords = (s.nbits + 63) / 64
	if s.nwords == 0 {
		s.nwords = 1
	}
	s.full = make(Cube, s.nwords)
	s.vmask = make([]Cube, len(sizes))
	s.vlo = make([]int, len(sizes))
	s.vhi = make([]int, len(sizes))
	for v, n := range sizes {
		m := make(Cube, s.nwords)
		for p := 0; p < n; p++ {
			i := s.offsets[v] + p
			m[i>>6] |= 1 << uint(i&63)
		}
		s.vmask[v] = m
		s.vlo[v] = s.offsets[v] >> 6
		s.vhi[v] = (s.offsets[v] + n - 1) >> 6
	}
	for i := 0; i < s.nbits; i++ {
		s.full.setBit(i)
	}
	// Structures with the same layout share one arena pool, so scratch
	// buffers survive across calls (and across equal-layout Structure
	// values, as the per-candidate encoders create).
	key := layoutKey(s.sizes)
	p, _ := arenaPools.LoadOrStore(key, &sync.Pool{})
	s.pool = p.(*sync.Pool)
	s.memo = memoForLayout(key)
	return s
}

// layoutKey serializes a sizes vector for the arena-pool registry.
func layoutKey(sizes []int) string {
	var b strings.Builder
	for _, n := range sizes {
		fmt.Fprintf(&b, "%d.", n)
	}
	return b.String()
}

// arenaPools maps a layout key to the sync.Pool of Arenas for that layout.
var arenaPools sync.Map

// NumVars returns the number of variables.
func (s *Structure) NumVars() int { return len(s.sizes) }

// Size returns the number of parts of variable v.
func (s *Structure) Size(v int) int { return s.sizes[v] }

// Offset returns the index of the first part of variable v.
func (s *Structure) Offset(v int) int { return s.offsets[v] }

// Bits returns the total number of parts over all variables.
func (s *Structure) Bits() int { return s.nbits }

// Words returns the number of 64-bit words a cube occupies.
func (s *Structure) Words() int { return s.nwords }

// Equal reports whether two structures describe the same layout.
func (s *Structure) Equal(t *Structure) bool {
	if s == t {
		return true
	}
	if t == nil || len(s.sizes) != len(t.sizes) {
		return false
	}
	for i := range s.sizes {
		if s.sizes[i] != t.sizes[i] {
			return false
		}
	}
	return true
}

// Cube is a positional-notation cube laid out per a Structure. Cubes are
// plain word slices; all semantic operations take the owning Structure.
type Cube []uint64

// NewCube returns an all-zero (empty) cube for structure s.
func (s *Structure) NewCube() Cube { return make(Cube, s.nwords) }

// FullCube returns the universe cube: every part of every variable set.
func (s *Structure) FullCube() Cube {
	c := make(Cube, s.nwords)
	copy(c, s.full)
	return c
}

func (c Cube) setBit(i int)       { c[i>>6] |= 1 << uint(i&63) }
func (c Cube) clearBit(i int)     { c[i>>6] &^= 1 << uint(i&63) }
func (c Cube) testBit(i int) bool { return c[i>>6]&(1<<uint(i&63)) != 0 }

// Set sets part p of variable v in the cube.
func (s *Structure) Set(c Cube, v, p int) { c.setBit(s.offsets[v] + p) }

// Clear clears part p of variable v in the cube.
func (s *Structure) Clear(c Cube, v, p int) { c.clearBit(s.offsets[v] + p) }

// Test reports whether part p of variable v is set.
func (s *Structure) Test(c Cube, v, p int) bool { return c.testBit(s.offsets[v] + p) }

// SetAll sets every part of variable v.
func (s *Structure) SetAll(c Cube, v int) {
	m := s.vmask[v]
	for w := s.vlo[v]; w <= s.vhi[v]; w++ {
		c[w] |= m[w]
	}
}

// ClearAll clears every part of variable v.
func (s *Structure) ClearAll(c Cube, v int) {
	m := s.vmask[v]
	for w := s.vlo[v]; w <= s.vhi[v]; w++ {
		c[w] &^= m[w]
	}
}

// Copy returns an independent copy of c.
func (c Cube) Copy() Cube { return append(Cube(nil), c...) }

// Equal reports whether two cubes are bit-identical.
func (c Cube) Equal(d Cube) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// Key returns a string usable as a map key identifying the cube's bits.
func (c Cube) Key() string {
	var b strings.Builder
	for _, w := range c {
		fmt.Fprintf(&b, "%016x", w)
	}
	return b.String()
}

// VarCount returns the number of set parts of variable v in c.
func (s *Structure) VarCount(c Cube, v int) int {
	n := 0
	m := s.vmask[v]
	for w := s.vlo[v]; w <= s.vhi[v]; w++ {
		n += bits.OnesCount64(c[w] & m[w])
	}
	return n
}

// VarFull reports whether every part of variable v is set in c.
func (s *Structure) VarFull(c Cube, v int) bool {
	m := s.vmask[v]
	for w := s.vlo[v]; w <= s.vhi[v]; w++ {
		if c[w]&m[w] != m[w] {
			return false
		}
	}
	return true
}

// VarEmpty reports whether no part of variable v is set in c.
func (s *Structure) VarEmpty(c Cube, v int) bool {
	m := s.vmask[v]
	for w := s.vlo[v]; w <= s.vhi[v]; w++ {
		if c[w]&m[w] != 0 {
			return false
		}
	}
	return true
}

// IsEmpty reports whether c denotes the empty set: some variable field has
// no parts set.
func (s *Structure) IsEmpty(c Cube) bool {
	for v := range s.sizes {
		if s.VarEmpty(c, v) {
			return true
		}
	}
	return false
}

// IsFull reports whether c is the universe cube.
func (s *Structure) IsFull(c Cube) bool {
	for w, f := range s.full {
		if c[w]&f != f {
			return false
		}
	}
	return true
}

// And stores the bitwise intersection of a and b into dst and returns dst.
// dst may alias a or b. The result denotes set intersection; use IsEmpty to
// test emptiness.
func And(dst, a, b Cube) Cube {
	for i := range dst {
		dst[i] = a[i] & b[i]
	}
	return dst
}

// Or stores the bitwise union of a and b into dst and returns dst. The
// result is the supercube of cubes a and b when a and b are nonempty.
func Or(dst, a, b Cube) Cube {
	for i := range dst {
		dst[i] = a[i] | b[i]
	}
	return dst
}

// Contains reports whether cube a contains cube b (as sets: every part set
// in b is set in a). An empty b is contained in everything.
func Contains(a, b Cube) bool {
	for i := range a {
		if b[i]&^a[i] != 0 {
			return false
		}
	}
	return true
}

// varDisjoint reports whether a and b have an empty intersection on
// variable v's field.
func (s *Structure) varDisjoint(a, b Cube, v int) bool {
	m := s.vmask[v]
	for w := s.vlo[v]; w <= s.vhi[v]; w++ {
		if a[w]&b[w]&m[w] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether cubes a and b have a nonempty intersection
// under structure s.
func (s *Structure) Intersects(a, b Cube) bool {
	for v := range s.sizes {
		if s.varDisjoint(a, b, v) {
			return false
		}
	}
	return true
}

// Distance returns the number of variables in which a and b have an empty
// intersection. Distance 0 means the cubes intersect; distance 1 means
// consensus exists.
func (s *Structure) Distance(a, b Cube) int {
	d := 0
	for v := range s.sizes {
		if s.varDisjoint(a, b, v) {
			d++
		}
	}
	return d
}

// Consensus returns the consensus of cubes a and b, or nil if the distance
// between them is not exactly 1. The consensus is the largest cube contained
// in a∪b that spans both.
func (s *Structure) Consensus(a, b Cube) Cube {
	conflict := -1
	for v := range s.sizes {
		if s.varDisjoint(a, b, v) {
			if conflict >= 0 {
				return nil
			}
			conflict = v
		}
	}
	if conflict < 0 {
		return nil
	}
	r := s.NewCube()
	And(r, a, b)
	m := s.vmask[conflict]
	for w := s.vlo[conflict]; w <= s.vhi[conflict]; w++ {
		r[w] = (r[w] &^ m[w]) | ((a[w] | b[w]) & m[w])
	}
	return r
}

// ConsensusOn returns the consensus of a and b with respect to variable v:
// the intersection of the two cubes on every other variable and the union
// of their fields on v, or nil when that cube is empty. For cubes at
// distance one this is the classic consensus on the conflict variable; for
// already-intersecting cubes over a multiple-valued variable it can yield
// a strictly larger implicant of a∪b, which the distance-based Consensus
// never generates. A complete prime generator must take consensus with
// respect to every variable.
func (s *Structure) ConsensusOn(a, b Cube, v int) Cube {
	for u := range s.sizes {
		if u != v && s.varDisjoint(a, b, u) {
			return nil
		}
	}
	r := s.NewCube()
	And(r, a, b)
	m := s.vmask[v]
	for w := s.vlo[v]; w <= s.vhi[v]; w++ {
		r[w] = (r[w] &^ m[w]) | ((a[w] | b[w]) & m[w])
	}
	if s.VarEmpty(r, v) {
		return nil
	}
	return r
}

// Cofactor returns the cofactor of cube q with respect to cube c, or nil if
// q and c do not intersect. The cofactor has every variable field equal to
// q_v ∪ ¬c_v (within the field).
func (s *Structure) Cofactor(q, c Cube) Cube {
	if !s.Intersects(q, c) {
		return nil
	}
	r := q.Copy()
	s.cofactorInto(r, q, c)
	return r
}

// cofactorInto stores the cofactor of q with respect to c into r (callers
// must have established that q and c intersect). r may alias q.
func (s *Structure) cofactorInto(r, q, c Cube) {
	for w, f := range s.full {
		r[w] = q[w] | (f &^ c[w])
	}
}

// PopCount returns the total number of set parts in c.
func (c Cube) PopCount() int {
	n := 0
	for _, w := range c {
		n += bits.OnesCount64(w)
	}
	return n
}

// Minterms returns the number of minterms cube c spans: the product of the
// per-variable part counts. Returns 0 for an empty cube.
func (s *Structure) Minterms(c Cube) int {
	n := 1
	for v := range s.sizes {
		k := s.VarCount(c, v)
		if k == 0 {
			return 0
		}
		n *= k
	}
	return n
}

// VarParts returns the set part indexes of variable v in c.
func (s *Structure) VarParts(c Cube, v int) []int {
	var parts []int
	off, sz := s.offsets[v], s.sizes[v]
	for p := 0; p < sz; p++ {
		if c.testBit(off + p) {
			parts = append(parts, p)
		}
	}
	return parts
}

// String renders c per structure s: one character per part, variables
// separated by spaces, '1' for set and '0' for cleared parts.
func (s *Structure) String(c Cube) string {
	var b strings.Builder
	for v := range s.sizes {
		if v > 0 {
			b.WriteByte(' ')
		}
		off, sz := s.offsets[v], s.sizes[v]
		for p := 0; p < sz; p++ {
			if c.testBit(off + p) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
	}
	return b.String()
}

// BinaryString renders a cube over binary variables using the PLA alphabet:
// '0', '1', '-' per binary variable, '?' for an empty field. Variables with
// more than two parts are rendered positionally in braces.
func (s *Structure) BinaryString(c Cube) string {
	var b strings.Builder
	for v := range s.sizes {
		off, sz := s.offsets[v], s.sizes[v]
		if sz == 2 {
			zero, one := c.testBit(off), c.testBit(off+1)
			switch {
			case zero && one:
				b.WriteByte('-')
			case zero:
				b.WriteByte('0')
			case one:
				b.WriteByte('1')
			default:
				b.WriteByte('?')
			}
			continue
		}
		b.WriteByte('{')
		for p := 0; p < sz; p++ {
			if c.testBit(off + p) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		b.WriteByte('}')
	}
	return b.String()
}
