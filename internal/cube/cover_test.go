package cube

import (
	"math/rand"
	"testing"
)

// parse builds a cube from per-variable part strings like "01", "110".
func parse(s *Structure, fields ...string) Cube {
	c := s.NewCube()
	for v, f := range fields {
		for p, ch := range f {
			if ch == '1' {
				s.Set(c, v, p)
			}
		}
	}
	return c
}

func TestTautologySimple(t *testing.T) {
	s := NewStructure(2)
	f := NewCover(s)
	f.Add(parse(s, "01"))
	f.Add(parse(s, "10"))
	if !f.Tautology() {
		t.Fatal("x + x' is a tautology")
	}
	g := NewCover(s)
	g.Add(parse(s, "01"))
	if g.Tautology() {
		t.Fatal("a single literal is not a tautology")
	}
}

func TestTautologyEmptyCover(t *testing.T) {
	s := NewStructure(2, 2)
	if NewCover(s).Tautology() {
		t.Fatal("empty cover must not be a tautology")
	}
}

func TestTautologyMV(t *testing.T) {
	s := NewStructure(3, 2)
	f := NewCover(s)
	f.Add(parse(s, "110", "11"))
	f.Add(parse(s, "001", "10"))
	f.Add(parse(s, "001", "01"))
	if !f.Tautology() {
		t.Fatal("cover partitions the space: tautology expected")
	}
	g := NewCover(s)
	g.Add(parse(s, "110", "11"))
	g.Add(parse(s, "001", "10"))
	if g.Tautology() {
		t.Fatal("minterm (value2, 1) is uncovered")
	}
}

func TestCoversCube(t *testing.T) {
	s := NewStructure(2, 2)
	f := NewCover(s)
	f.Add(parse(s, "01", "11"))
	f.Add(parse(s, "10", "01"))
	if !f.CoversCube(parse(s, "01", "10")) {
		t.Fatal("cube inside first cube should be covered")
	}
	if f.CoversCube(parse(s, "10", "10")) {
		t.Fatal("minterm (1, 0) is not covered")
	}
	// The union covers (x=0, anything) ∪ (x=1, y=1): the cube (-, 1) is
	// covered by the union though by neither cube alone.
	if !f.CoversCube(parse(s, "11", "01")) {
		t.Fatal("cube covered by the union should be detected")
	}
}

func TestComplementSingleCube(t *testing.T) {
	s := NewStructure(2, 2)
	f := NewCover(s)
	f.Add(parse(s, "01", "01"))
	comp := f.Complement()
	// Complement of a single minterm in a 2x2 space covers 3 minterms.
	total := 0
	comp.Minterms(func(Cube) { total++ })
	if total != 3 {
		t.Fatalf("complement covers %d minterms, want 3", total)
	}
	// Complement and original must be disjoint and jointly exhaustive.
	if !f.Append(comp).Tautology() {
		t.Fatal("f + f' must be a tautology")
	}
	for _, c := range comp.Cubes {
		if s.Intersects(c, f.Cubes[0]) {
			t.Fatal("complement intersects the function")
		}
	}
}

func TestComplementUniverse(t *testing.T) {
	s := NewStructure(2, 3)
	f := NewCover(s)
	f.Add(s.FullCube())
	if comp := f.Complement(); comp.Len() != 0 {
		t.Fatalf("complement of universe has %d cubes, want 0", comp.Len())
	}
	empty := NewCover(s)
	comp := empty.Complement()
	if comp.Len() != 1 || !s.IsFull(comp.Cubes[0]) {
		t.Fatal("complement of empty cover must be the universe")
	}
}

func TestComplementRandomized(t *testing.T) {
	s := NewStructure(2, 2, 3)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		f := NewCover(s)
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			f.Add(randomCube(s, rng))
		}
		comp := f.Complement()
		if !f.Append(comp).Tautology() {
			t.Fatalf("trial %d: f + f' is not a tautology\nf:\n%scomp:\n%s", trial, f, comp)
		}
		for _, c := range comp.Cubes {
			for _, q := range f.Cubes {
				r := s.NewCube()
				And(r, c, q)
				if !s.IsEmpty(r) {
					t.Fatalf("trial %d: complement overlaps function", trial)
				}
			}
		}
	}
}

func TestSingleCubeContainment(t *testing.T) {
	s := NewStructure(2, 2)
	f := NewCover(s)
	f.Add(parse(s, "11", "11"))
	f.Add(parse(s, "01", "01"))
	f.Add(parse(s, "01", "01")) // duplicate
	f.SingleCubeContainment()
	if f.Len() != 1 {
		t.Fatalf("SCC left %d cubes, want 1", f.Len())
	}
	if !s.IsFull(f.Cubes[0]) {
		t.Fatal("SCC kept the wrong cube")
	}
}

func TestCofactorCoverTautologyRelation(t *testing.T) {
	// F covers cube c iff F/c is a tautology; cross-check on random data
	// against explicit minterm enumeration.
	s := NewStructure(2, 2, 2)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 80; trial++ {
		f := NewCover(s)
		for i := 0; i < 1+rng.Intn(4); i++ {
			f.Add(randomCube(s, rng))
		}
		c := randomCube(s, rng)
		covered := map[string]bool{}
		f.Minterms(func(m Cube) { covered[m.Key()] = true })
		want := true
		sel := NewCover(s)
		sel.Add(c)
		sel.Minterms(func(m Cube) {
			if !covered[m.Key()] {
				want = false
			}
		})
		if got := f.CoversCube(c); got != want {
			t.Fatalf("trial %d: CoversCube = %v, want %v\nF:\n%sc: %s", trial, got, want, f, s.String(c))
		}
	}
}

func TestWithout(t *testing.T) {
	s := NewStructure(2)
	f := NewCover(s)
	f.Add(parse(s, "01"))
	f.Add(parse(s, "10"))
	f.Add(parse(s, "11"))
	g := f.Without(1)
	if g.Len() != 2 || f.Len() != 3 {
		t.Fatalf("Without: got %d/%d cubes", g.Len(), f.Len())
	}
	if !g.Cubes[0].Equal(f.Cubes[0]) || !g.Cubes[1].Equal(f.Cubes[2]) {
		t.Fatal("Without removed the wrong cube")
	}
}
