package cube

import (
	"encoding/binary"
	"sync"
	"testing"
)

func memoKey(i uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], i)
	return b[:]
}

// TestTautMemoBasic checks put/get round trips and verdict fidelity.
func TestTautMemoBasic(t *testing.T) {
	m := newTautMemo()
	m.put(memoKey(1), true)
	m.put(memoKey(2), false)
	if v, ok := m.get(memoKey(1)); !ok || !v {
		t.Fatalf("get(1) = %v,%v, want true,true", v, ok)
	}
	if v, ok := m.get(memoKey(2)); !ok || v {
		t.Fatalf("get(2) = %v,%v, want false,true", v, ok)
	}
	if _, ok := m.get(memoKey(3)); ok {
		t.Fatal("get(3) hit on a key never inserted")
	}
	if m.len() != 2 {
		t.Fatalf("len = %d, want 2", m.len())
	}
}

// TestTautMemoKeyBufferReuse checks the no-copy probe contract: the
// caller may clobber the key buffer after get/put return.
func TestTautMemoKeyBufferReuse(t *testing.T) {
	m := newTautMemo()
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, 42)
	m.put(buf, true)
	binary.LittleEndian.PutUint64(buf, 43) // clobber after put
	m.put(buf, false)
	if v, ok := m.get(memoKey(42)); !ok || !v {
		t.Fatalf("key 42 = %v,%v after buffer reuse, want true,true", v, ok)
	}
	if v, ok := m.get(memoKey(43)); !ok || v {
		t.Fatalf("key 43 = %v,%v after buffer reuse, want false,true", v, ok)
	}
}

// TestTautMemoLRUBound checks the cap: after inserting far more entries
// than the configured capacity, the memo holds at most cap entries and
// the freshest insert of each shard is still resident.
func TestTautMemoLRUBound(t *testing.T) {
	defer SetTautMemoCap(0)
	SetTautMemoCap(64) // 4 per shard
	m := newTautMemo()
	const n = 4096
	for i := uint64(0); i < n; i++ {
		m.put(memoKey(i), i%2 == 0)
	}
	if got := m.len(); got > 64 {
		t.Fatalf("len = %d after %d inserts, cap 64", got, n)
	}
	// The last insert hashes into some shard and must have survived as
	// that shard's most recent entry.
	if v, ok := m.get(memoKey(n - 1)); !ok || v != ((n-1)%2 == 0) {
		t.Fatalf("freshest key evicted or wrong: %v,%v", v, ok)
	}
}

// TestTautMemoRefreshOnGet checks recency: with a single-entry shard
// budget, a key that is re-read survives a duplicate re-put (refresh, not
// duplicate insertion) and the memo never exceeds its bound.
func TestTautMemoRefreshOnGet(t *testing.T) {
	defer SetTautMemoCap(0)
	SetTautMemoCap(memoShards) // 1 entry per shard
	m := newTautMemo()
	m.put(memoKey(7), true)
	for i := 0; i < 100; i++ {
		m.put(memoKey(7), true) // refresh path, not growth
	}
	if got := m.len(); got != 1 {
		t.Fatalf("len = %d after re-puts of one key, want 1", got)
	}
	if v, ok := m.get(memoKey(7)); !ok || !v {
		t.Fatalf("refreshed key lost: %v,%v", v, ok)
	}
}

// TestSetTautMemoCapRestoresDefault checks n <= 0 restores the default.
func TestSetTautMemoCapRestoresDefault(t *testing.T) {
	SetTautMemoCap(128)
	if got := shardCap(); got != 128/memoShards {
		t.Fatalf("shardCap = %d, want %d", got, 128/memoShards)
	}
	SetTautMemoCap(0)
	if got := shardCap(); got != DefaultTautMemoCap/memoShards {
		t.Fatalf("shardCap = %d after restore, want %d", got, DefaultTautMemoCap/memoShards)
	}
	// A cap below the shard count still leaves one entry per shard.
	SetTautMemoCap(1)
	if got := shardCap(); got != 1 {
		t.Fatalf("shardCap = %d for cap 1, want 1", got)
	}
	SetTautMemoCap(0)
}

// TestTautMemoConcurrent hammers one memo from many goroutines (run
// under -race in CI): concurrent readers and writers against overlapping
// keys, with eviction pressure from a small cap.
func TestTautMemoConcurrent(t *testing.T) {
	defer SetTautMemoCap(0)
	SetTautMemoCap(256)
	m := newTautMemo()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(0); i < 2000; i++ {
				k := memoKey(i % 512)
				if v, ok := m.get(k); ok && v != (i%512%2 == 0) {
					t.Errorf("worker %d: wrong verdict for key %d", w, i%512)
					return
				}
				m.put(k, i%512%2 == 0)
			}
		}(w)
	}
	wg.Wait()
	if got := m.len(); got > 256 {
		t.Fatalf("len = %d under concurrency, cap 256", got)
	}
}

// TestTautologyMemoSharedAcrossArenas checks the end-to-end wiring: two
// arenas over structures of the same layout share verdicts through the
// layout memo.
func TestTautologyMemoSharedAcrossArenas(t *testing.T) {
	s := NewStructure(2, 2, 2)
	f := NewCover(s)
	// x + x' over the first variable, padded to memoMinCubes cubes.
	f.Add(parse(s, "01", "11", "11"))
	f.Add(parse(s, "10", "11", "11"))
	f.Add(parse(s, "01", "01", "11"))
	f.Add(parse(s, "10", "10", "11"))

	a1 := NewArena(s)
	if !f.TautologyWith(a1) {
		t.Fatal("cover is a tautology")
	}
	if a1.stat.TautMemoLookups == 0 {
		t.Fatal("large cover did not probe the memo")
	}

	a2 := NewArena(s)
	before := a2.stat.TautMemoHits
	if !f.TautologyWith(a2) {
		t.Fatal("cover is a tautology (second arena)")
	}
	if a2.stat.TautMemoHits == before {
		t.Fatal("second arena missed the shared layout memo")
	}
}
