package cube

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"nova/internal/sched"
)

// randomForkCover builds a random cover with enough cubes to trip the
// fork threshold.
func randomForkCover(s *Structure, rng *rand.Rand, ncubes int) *Cover {
	f := NewCover(s)
	for i := 0; i < ncubes; i++ {
		c := s.NewCube()
		for v := 0; v < s.NumVars(); v++ {
			any := false
			for p := 0; p < s.Size(v); p++ {
				if rng.Intn(2) == 1 {
					s.Set(c, v, p)
					any = true
				}
			}
			if !any {
				s.Set(c, v, rng.Intn(s.Size(v)))
			}
		}
		f.Add(c)
	}
	return f
}

// bruteTautology checks coverage of every minterm by direct enumeration:
// an oracle independent of the unate recursion and the shared memo.
func bruteTautology(f *Cover) bool {
	s := f.S
	parts := make([]int, s.NumVars())
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == s.NumVars() {
			for _, c := range f.Cubes {
				all := true
				for u, p := range parts {
					if !s.Test(c, u, p) {
						all = false
						break
					}
				}
				if all {
					return true
				}
			}
			return false
		}
		for p := 0; p < s.Size(v); p++ {
			parts[v] = p
			if !rec(v + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}

// TestForkTautologyMatchesSerial sweeps random covers and checks the
// forked recursion returns exactly the brute-force verdict (the forked
// run goes first, so the shared layout memo cannot pre-answer it).
func TestForkTautologyMatchesSerial(t *testing.T) {
	s := NewStructure(2, 3, 2, 2)
	pool := sched.New(4)
	fk := NewFork(pool, 2)
	if fk == nil {
		t.Fatal("NewFork returned nil for a 4-worker pool")
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		f := randomForkCover(s, rng, 4+rng.Intn(24))
		want := bruteTautology(f)

		a := NewArena(s)
		a.SetFork(fk, context.Background())
		par := f.TautologyWith(a)
		a.SetFork(nil, nil)
		if par != want {
			t.Fatalf("trial %d: forked verdict %v, brute force %v", trial, par, want)
		}
		if serial := f.TautologyWith(NewArena(s)); serial != want {
			t.Fatalf("trial %d: serial verdict %v, brute force %v", trial, serial, want)
		}
	}
	if fk.Stats().TautForks == 0 {
		t.Fatal("no tautology node ever forked: the test exercised only the serial path")
	}
	if got := pool.Stats().Depth; got != 0 {
		t.Fatalf("pool depth = %d after all forks joined, want 0", got)
	}
}

// TestForkComplementMatchesSerial checks the forked complement is
// byte-identical to the serial one (same cubes, same order).
func TestForkComplementMatchesSerial(t *testing.T) {
	s := NewStructure(3, 2, 2, 2)
	pool := sched.New(4)
	fk := NewFork(pool, 2)
	rng := rand.New(rand.NewSource(23))
	forked := false
	for trial := 0; trial < 40; trial++ {
		f := randomForkCover(s, rng, 4+rng.Intn(20))
		serial := f.ComplementWith(NewArena(s))

		base := fk.Stats().CompForks
		a := NewArena(s)
		a.SetFork(fk, context.Background())
		par := f.ComplementWith(a)
		a.SetFork(nil, nil)
		forked = forked || fk.Stats().CompForks > base

		if !reflect.DeepEqual(serial.Cubes, par.Cubes) {
			t.Fatalf("trial %d: forked complement differs from serial\nserial: %d cubes\nforked: %d cubes",
				trial, serial.Len(), par.Len())
		}
	}
	if !forked {
		t.Fatal("no complement node ever forked")
	}
	if got := pool.Stats().Depth; got != 0 {
		t.Fatalf("pool depth = %d after all forks joined, want 0", got)
	}
}

// TestForkCancellationUnwinds is the satellite cancellation test: a
// context canceled while the forked tautology recursion is in flight must
// unwind promptly, without leaking pool tasks (depth gauge and semaphore
// both drained) and without poisoning the shared memo with a
// cancellation-induced conservative false.
func TestForkCancellationUnwinds(t *testing.T) {
	// A dedicated layout so no other test's memo entries can satisfy the
	// queries before the fork engages.
	s := NewStructure(5, 3, 2)
	f := NewCover(s)
	// A minterm-column partition of var0 x var1: a tautology no terminal
	// case short-circuits (two active variables, not weakly unate), so
	// the root genuinely recurses — and forks.
	for p := 0; p < 5; p++ {
		for q := 0; q < 3; q++ {
			c := s.NewCube()
			s.Set(c, 0, p)
			s.Set(c, 1, q)
			s.SetAll(c, 2)
			f.Add(c)
		}
	}
	pool := sched.New(4)
	fk := NewFork(pool, 2)

	// Deterministic variant: the context is already dead when the forked
	// branches start, so every branch unwinds before doing work.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := NewArena(s)
	a.SetFork(fk, ctx)
	if f.TautologyWith(a) {
		t.Fatal("canceled recursion returned true; want conservative false")
	}
	a.SetFork(nil, nil)
	if got := pool.Stats().Depth; got != 0 {
		t.Fatalf("pool depth = %d after canceled recursion, want 0 (leaked tasks)", got)
	}
	if got, want := pool.SpareSlots(), pool.Workers()-1; got != want {
		t.Fatalf("spare slots = %d after canceled recursion, want %d (leaked semaphore tokens)", got, want)
	}

	// Mid-flight variant: cancellation races the recursion. Whatever the
	// timing, the call must return, the pool must drain, and a subsequent
	// serial run must still see the true verdict (no memo poisoning).
	for trial := 0; trial < 20; trial++ {
		mctx, mcancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(time.Duration(trial)*10*time.Microsecond, mcancel)
		ma := NewArena(s)
		ma.SetFork(fk, mctx)
		res := f.TautologyWith(ma)
		ma.SetFork(nil, nil)
		timer.Stop()
		mcancel()
		if res && mctx.Err() == nil {
			continue // completed before the cancel: fine
		}
		if got := pool.Stats().Depth; got != 0 {
			t.Fatalf("trial %d: pool depth = %d after return, want 0", trial, got)
		}
	}
	if got := pool.Stats().Depth; got != 0 {
		t.Fatalf("pool depth = %d after mid-flight trials, want 0", got)
	}

	// The memo must not have recorded any cancellation-tainted false:
	// a clean serial query sees the tautology.
	if !f.TautologyWith(NewArena(s)) {
		t.Fatal("serial verdict false after canceled runs: memo poisoned with a tainted verdict")
	}
}

// TestForkNilAndSerialPool checks the degraded constructions: NewFork
// refuses pools that cannot buy concurrency, and a nil fork leaves the
// recursion untouched.
func TestForkNilAndSerialPool(t *testing.T) {
	if NewFork(nil, 0) != nil {
		t.Fatal("NewFork(nil pool) must be nil")
	}
	if NewFork(sched.New(1), 0) != nil {
		t.Fatal("NewFork(1-worker pool) must be nil")
	}
	var fk *Fork
	if s := fk.Stats(); s != (ForkStats{}) {
		t.Fatalf("nil Fork stats = %+v, want zero", s)
	}
	// SetFork(nil, nil) on an arena is the serial recursion.
	s := NewStructure(2)
	f := NewCover(s)
	f.Add(parse(s, "01"))
	f.Add(parse(s, "10"))
	a := NewArena(s)
	a.SetFork(nil, nil)
	if !f.TautologyWith(a) {
		t.Fatal("serial recursion broken under nil fork")
	}
}
