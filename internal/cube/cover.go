package cube

import (
	"sort"
	"strings"
)

// Cover is a set of cubes sharing one Structure. The zero Cover with a nil
// Structure is not usable; create covers with NewCover.
type Cover struct {
	S     *Structure
	Cubes []Cube
}

// NewCover returns an empty cover over structure s.
func NewCover(s *Structure) *Cover { return &Cover{S: s} }

// Add appends cube c to the cover. The cube is not copied.
func (f *Cover) Add(c Cube) { f.Cubes = append(f.Cubes, c) }

// Len returns the number of cubes in the cover.
func (f *Cover) Len() int { return len(f.Cubes) }

// Copy returns a deep copy of the cover.
func (f *Cover) Copy() *Cover {
	g := NewCover(f.S)
	g.Cubes = make([]Cube, len(f.Cubes))
	for i, c := range f.Cubes {
		g.Cubes[i] = c.Copy()
	}
	return g
}

// Without returns a shallow cover containing every cube except index i.
func (f *Cover) Without(i int) *Cover {
	g := NewCover(f.S)
	g.Cubes = make([]Cube, 0, len(f.Cubes)-1)
	g.Cubes = append(g.Cubes, f.Cubes[:i]...)
	g.Cubes = append(g.Cubes, f.Cubes[i+1:]...)
	return g
}

// Append returns a shallow cover containing the cubes of f followed by the
// cubes of each g.
func (f *Cover) Append(gs ...*Cover) *Cover {
	out := NewCover(f.S)
	out.Cubes = append(out.Cubes, f.Cubes...)
	for _, g := range gs {
		out.Cubes = append(out.Cubes, g.Cubes...)
	}
	return out
}

// String renders the cover one cube per line.
func (f *Cover) String() string {
	var b strings.Builder
	for _, c := range f.Cubes {
		b.WriteString(f.S.String(c))
		b.WriteByte('\n')
	}
	return b.String()
}

// CofactorCube returns the cofactor cover F/c: the cofactor of every cube of
// f that intersects c.
func (f *Cover) CofactorCube(c Cube) *Cover {
	g := NewCover(f.S)
	for _, q := range f.Cubes {
		if r := f.S.Cofactor(q, c); r != nil {
			g.Add(r)
		}
	}
	return g
}

// cofactorCoverWith builds F/c from arena buffers. With prune set, cubes
// contained in another cube of the cofactor are dropped (row dominance on
// the personality matrix): sound for the tautology question, which only
// sees the union, but not used where the cover itself is the result.
func (f *Cover) cofactorCoverWith(a *Arena, c Cube, prune bool) *Cover {
	s := f.S
	g := a.NewCover()
	for _, q := range f.Cubes {
		if !s.Intersects(q, c) {
			continue
		}
		r := a.NewCube()
		s.cofactorInto(r, q, c)
		g.Cubes = append(g.Cubes, r)
	}
	if prune && len(g.Cubes) > 1 {
		g.pruneDominatedRows(a)
	}
	return g
}

// pruneDominatedRows drops every cube contained in another cube of the
// cover, recycling the dropped cubes. Of two equal cubes the first is kept.
func (g *Cover) pruneDominatedRows(a *Arena) {
	cs := g.Cubes
	kept := cs[:0]
	for i, ci := range cs {
		dominated := false
		for j, cj := range cs {
			if i == j || cj == nil {
				continue
			}
			if Contains(cj, ci) && (j < i || !Contains(ci, cj)) {
				dominated = true
				break
			}
		}
		if dominated {
			cs[i] = nil
			a.FreeCube(ci)
		} else {
			kept = append(kept, ci)
		}
	}
	g.Cubes = kept
}

// activeVar describes how constrained a variable is across a cover.
type activeVar struct {
	v       int
	active  int // cubes in which the variable field is not full
	missing int // parts never set across the cover (column-OR gap)
}

// pickSplitVar selects the branching variable for the unate-recursion
// procedures: the variable that is not full in the largest number of cubes
// (the "most binate"). Returns -1 when every cube is full in every variable.
func (f *Cover) pickSplitVar() int {
	s := f.S
	best, bestActive := -1, 0
	for v := 0; v < s.NumVars(); v++ {
		active := 0
		for _, c := range f.Cubes {
			if !s.VarFull(c, v) {
				active++
			}
		}
		if active > bestActive {
			best, bestActive = v, active
		}
	}
	return best
}

// columnOr returns the bitwise OR of all cubes of the cover.
func (f *Cover) columnOr() Cube {
	or := f.S.NewCube()
	for _, c := range f.Cubes {
		Or(or, or, c)
	}
	return or
}

// Tautology reports whether the cover covers the entire minterm space. The
// implementation is the Shannon/unate-recursion procedure: quick checks for
// a universe row and for a missing column, then branching on the most binate
// variable and recursing on every value cofactor. Scratch comes from a
// pooled arena; use TautologyWith when the caller already holds one.
func (f *Cover) Tautology() bool {
	a := GetArena(f.S)
	ok := f.TautologyWith(a)
	PutArena(a)
	return ok
}

// TautologyWith is Tautology with caller-provided scratch. The recursion
// allocates cofactor covers from the arena and recycles them per node, and
// consults the layout's shared memo cache for covers of at least
// memoMinCubes cubes. With a fork attached (see Arena.SetFork) the branch
// loop of large covers is evaluated in parallel, and cancellation of the
// fork context unwinds the recursion with a conservative false verdict —
// conservative verdicts are never memoized, so the memo stays exact.
func (f *Cover) TautologyWith(a *Arena) bool {
	a.stat.TautCalls++
	if a.cancelPoll() {
		return false // conservative; pre-memo, so never cached
	}
	if len(f.Cubes) == 0 {
		return false
	}
	s := f.S
	// Universe row: immediate tautology.
	for _, c := range f.Cubes {
		if s.IsFull(c) {
			return true
		}
	}
	// Missing column: some (variable, part) never admitted by any cube, so
	// the minterms with that value are uncovered.
	or := a.NewCube()
	for _, c := range f.Cubes {
		Or(or, or, c)
	}
	fullCols := s.IsFull(or)
	a.FreeCube(or)
	if !fullCols {
		return false
	}
	// Unate-leaf reject: no universe row, and in every variable all non-full
	// fields agree. Pick, per such variable, a part outside the shared field;
	// only a universe row could cover that minterm, so it is uncovered.
	if f.weaklyUnate() {
		return false
	}
	v := f.pickSplitVar()
	if v < 0 {
		// No cube is full (checked above) yet every cube is full in every
		// variable: impossible; covered for robustness.
		return true
	}
	// Special case: exactly one active variable. Every cube full elsewhere,
	// so tautology iff the column OR of v is full — already verified.
	if f.singleActiveVar(v) {
		return true
	}
	useMemo := len(f.Cubes) >= memoMinCubes
	if useMemo {
		a.stat.TautMemoLookups++
		if verdict, ok := a.memoGet(a.coverKey(f)); ok {
			a.stat.TautMemoHits++
			return verdict
		}
	}
	if a.shouldFork(f) {
		res, tainted := f.tautologyBranchesParallel(a, v)
		// A tainted verdict (external cancellation aborted a branch
		// before it produced a genuine counterexample) must not be
		// cached; the untainted ones are content-exact as ever.
		if useMemo && !tainted && !a.canceled() {
			a.memoPut(a.coverKey(f), res)
		}
		return res
	}
	res := true
	sel := a.CopyCube(s.full)
	for p := 0; p < s.Size(v); p++ {
		s.ClearAll(sel, v)
		s.Set(sel, v, p)
		g := f.cofactorCoverWith(a, sel, true)
		ok := g.TautologyWith(a)
		a.Release(g)
		if !ok {
			res = false
			break
		}
	}
	a.FreeCube(sel)
	// The child recursion reuses the arena's key scratch, so the key is
	// rebuilt here; skipped whenever a cancellation may have turned a
	// child's verdict into a conservative false.
	if useMemo && !a.canceled() {
		a.memoPut(a.coverKey(f), res)
	}
	return res
}

// weaklyUnate reports whether, in every variable, all cubes with a non-full
// field carry the same field. (A variable full in every cube is trivially
// weakly unate.) For a cover with no universe row this certifies
// non-tautology; see TautologyWith.
func (f *Cover) weaklyUnate() bool {
	s := f.S
	for v := 0; v < s.NumVars(); v++ {
		var ref Cube
		for _, c := range f.Cubes {
			if s.VarFull(c, v) {
				continue
			}
			if ref == nil {
				ref = c
				continue
			}
			m := s.vmask[v]
			for w := s.vlo[v]; w <= s.vhi[v]; w++ {
				if (ref[w]^c[w])&m[w] != 0 {
					return false
				}
			}
		}
	}
	return true
}

// singleActiveVar reports whether v is the only variable with a non-full
// field anywhere in the cover.
func (f *Cover) singleActiveVar(v int) bool {
	s := f.S
	for _, c := range f.Cubes {
		for u := 0; u < s.NumVars(); u++ {
			if u != v && !s.VarFull(c, u) {
				return false
			}
		}
	}
	return true
}

// CoversCube reports whether the cover contains cube c, i.e. every minterm
// of c is covered by some cube of f. Implemented as Tautology(F/c).
func (f *Cover) CoversCube(c Cube) bool {
	a := GetArena(f.S)
	ok := f.CoversCubeWith(a, c)
	PutArena(a)
	return ok
}

// CoversCubeWith is CoversCube with caller-provided scratch.
func (f *Cover) CoversCubeWith(a *Arena, c Cube) bool {
	if f.S.IsEmpty(c) {
		return true
	}
	g := f.cofactorCoverWith(a, c, true)
	ok := g.TautologyWith(a)
	a.Release(g)
	return ok
}

// ContainsCube reports whether some single cube of f contains c — the cheap
// word-parallel pre-check before the full covering recursion.
func (f *Cover) ContainsCube(c Cube) bool {
	for _, q := range f.Cubes {
		if Contains(q, c) {
			return true
		}
	}
	return false
}

// Complement returns a cover of the complement of f over the full minterm
// space, using Shannon expansion on the most binate variable with
// single-cube and unate-leaf terminal cases. The result is made minimal with
// single-cube containment only.
func (f *Cover) Complement() *Cover {
	a := GetArena(f.S)
	out := f.ComplementWith(a)
	PutArena(a)
	return out
}

// ComplementWith is Complement with caller-provided scratch. Cofactor covers
// come from the arena; result cubes are plain allocations, since they escape
// into the returned cover. Row-dominance pruning is deliberately NOT applied
// to the cofactors here — it would change which complement cubes are emitted,
// and Complement's output (unlike Tautology's verdict) is the result.
func (f *Cover) ComplementWith(a *Arena) *Cover {
	s := f.S
	out := NewCover(s)
	if len(f.Cubes) == 0 {
		out.Add(s.FullCube())
		return out
	}
	for _, c := range f.Cubes {
		if s.IsFull(c) {
			return out // complement of universe is empty
		}
	}
	if len(f.Cubes) == 1 {
		return s.complementCube(f.Cubes[0])
	}
	v := f.pickSplitVar()
	if v < 0 {
		return out
	}
	if a.shouldFork(f) {
		// Branches computed in parallel, merged in ascending part order:
		// byte-identical to the serial loop below. Under external
		// cancellation some slots are nil; the truncated result is
		// discarded by the run's own ctx check.
		for _, sub := range f.complementBranchesParallel(a, v) {
			if sub != nil {
				out.Cubes = append(out.Cubes, sub.Cubes...)
			}
		}
		out.mergeAdjacent(v)
		out.SingleCubeContainment()
		return out
	}
	sel := a.CopyCube(s.full)
	for p := 0; p < s.Size(v); p++ {
		if a.cancelPoll() {
			break // partial result; discarded by the caller's ctx check
		}
		s.ClearAll(sel, v)
		s.Set(sel, v, p)
		g := f.cofactorCoverWith(a, sel, false)
		sub := g.ComplementWith(a)
		a.Release(g)
		for _, c := range sub.Cubes {
			s.ClearAll(c, v)
			s.Set(c, v, p)
			out.Add(c)
		}
	}
	a.FreeCube(sel)
	out.mergeAdjacent(v)
	out.SingleCubeContainment()
	return out
}

// complementCube returns the complement of a single cube as a disjoint
// cover: for each variable with a non-full field, one cube admitting the
// missing parts of that variable and the full range of later variables,
// restricted to the cube's parts on earlier variables (disjoint sharp).
func (s *Structure) complementCube(c Cube) *Cover {
	out := NewCover(s)
	prefix := s.FullCube()
	for v := 0; v < s.NumVars(); v++ {
		m := s.vmask[v]
		if !s.VarFull(c, v) {
			r := prefix.Copy()
			// Variable v admits exactly the parts missing from c's field.
			for w := s.vlo[v]; w <= s.vhi[v]; w++ {
				r[w] = (r[w] &^ m[w]) | (m[w] &^ c[w])
			}
			out.Add(r)
		}
		// Restrict the prefix to the cube's field for subsequent entries.
		for w := s.vlo[v]; w <= s.vhi[v]; w++ {
			prefix[w] &^= m[w] &^ c[w]
		}
	}
	return out
}

// mergeAdjacent merges pairs of cubes that are identical except in variable
// v, OR-ing their v fields. It is the cheap "personality merge" applied
// after a Shannon split to curb complement growth.
func (f *Cover) mergeAdjacent(v int) {
	s := f.S
	index := make(map[string]int, len(f.Cubes))
	kept := f.Cubes[:0]
	buf := make([]byte, 0, s.nwords*8)
	for _, c := range f.Cubes {
		// Key: the cube's words with variable v's field masked out.
		buf = buf[:0]
		m := s.vmask[v]
		for w, word := range c {
			word &^= m[w]
			buf = append(buf, byte(word), byte(word>>8), byte(word>>16),
				byte(word>>24), byte(word>>32), byte(word>>40),
				byte(word>>48), byte(word>>56))
		}
		if i, ok := index[string(buf)]; ok {
			Or(kept[i], kept[i], c)
			continue
		}
		index[string(buf)] = len(kept)
		kept = append(kept, c)
	}
	f.Cubes = kept
}

// SingleCubeContainment removes every cube contained in another single cube
// of the cover (and duplicate cubes). Larger cubes are preferred.
func (f *Cover) SingleCubeContainment() {
	sort.Slice(f.Cubes, func(i, j int) bool {
		return f.Cubes[i].PopCount() > f.Cubes[j].PopCount()
	})
	var kept []Cube
	for _, c := range f.Cubes {
		contained := false
		for _, k := range kept {
			if Contains(k, c) {
				contained = true
				break
			}
		}
		if !contained {
			kept = append(kept, c)
		}
	}
	f.Cubes = kept
}

// Minterms enumerates every minterm covered by f exactly once and calls fn
// with a minterm cube (one part per variable). Enumeration is in
// lexicographic part order. Intended for small spaces (verification).
func (f *Cover) Minterms(fn func(Cube)) {
	s := f.S
	m := s.NewCube()
	var rec func(v int)
	rec = func(v int) {
		if v == s.NumVars() {
			for _, c := range f.Cubes {
				if Contains(c, m) {
					fn(m.Copy())
					return
				}
			}
			return
		}
		for p := 0; p < s.Size(v); p++ {
			s.Set(m, v, p)
			rec(v + 1)
			s.Clear(m, v, p)
		}
	}
	rec(0)
}
