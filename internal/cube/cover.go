package cube

import (
	"sort"
	"strings"
)

// Cover is a set of cubes sharing one Structure. The zero Cover with a nil
// Structure is not usable; create covers with NewCover.
type Cover struct {
	S     *Structure
	Cubes []Cube
}

// NewCover returns an empty cover over structure s.
func NewCover(s *Structure) *Cover { return &Cover{S: s} }

// Add appends cube c to the cover. The cube is not copied.
func (f *Cover) Add(c Cube) { f.Cubes = append(f.Cubes, c) }

// Len returns the number of cubes in the cover.
func (f *Cover) Len() int { return len(f.Cubes) }

// Copy returns a deep copy of the cover.
func (f *Cover) Copy() *Cover {
	g := NewCover(f.S)
	g.Cubes = make([]Cube, len(f.Cubes))
	for i, c := range f.Cubes {
		g.Cubes[i] = c.Copy()
	}
	return g
}

// Without returns a shallow cover containing every cube except index i.
func (f *Cover) Without(i int) *Cover {
	g := NewCover(f.S)
	g.Cubes = make([]Cube, 0, len(f.Cubes)-1)
	g.Cubes = append(g.Cubes, f.Cubes[:i]...)
	g.Cubes = append(g.Cubes, f.Cubes[i+1:]...)
	return g
}

// Append returns a shallow cover containing the cubes of f followed by the
// cubes of each g.
func (f *Cover) Append(gs ...*Cover) *Cover {
	out := NewCover(f.S)
	out.Cubes = append(out.Cubes, f.Cubes...)
	for _, g := range gs {
		out.Cubes = append(out.Cubes, g.Cubes...)
	}
	return out
}

// String renders the cover one cube per line.
func (f *Cover) String() string {
	var b strings.Builder
	for _, c := range f.Cubes {
		b.WriteString(f.S.String(c))
		b.WriteByte('\n')
	}
	return b.String()
}

// CofactorCube returns the cofactor cover F/c: the cofactor of every cube of
// f that intersects c.
func (f *Cover) CofactorCube(c Cube) *Cover {
	g := NewCover(f.S)
	for _, q := range f.Cubes {
		if r := f.S.Cofactor(q, c); r != nil {
			g.Add(r)
		}
	}
	return g
}

// activeVar describes how constrained a variable is across a cover.
type activeVar struct {
	v       int
	active  int // cubes in which the variable field is not full
	missing int // parts never set across the cover (column-OR gap)
}

// pickSplitVar selects the branching variable for the unate-recursion
// procedures: the variable that is not full in the largest number of cubes
// (the "most binate"). Returns -1 when every cube is full in every variable.
func (f *Cover) pickSplitVar() int {
	s := f.S
	best, bestActive := -1, 0
	for v := 0; v < s.NumVars(); v++ {
		active := 0
		for _, c := range f.Cubes {
			if !s.VarFull(c, v) {
				active++
			}
		}
		if active > bestActive {
			best, bestActive = v, active
		}
	}
	return best
}

// columnOr returns the bitwise OR of all cubes of the cover.
func (f *Cover) columnOr() Cube {
	or := f.S.NewCube()
	for _, c := range f.Cubes {
		Or(or, or, c)
	}
	return or
}

// Tautology reports whether the cover covers the entire minterm space. The
// implementation is the Shannon/unate-recursion procedure: quick checks for
// a universe row and for a missing column, then branching on the most binate
// variable and recursing on every value cofactor.
func (f *Cover) Tautology() bool {
	if len(f.Cubes) == 0 {
		return false
	}
	s := f.S
	// Universe row: immediate tautology.
	for _, c := range f.Cubes {
		if s.IsFull(c) {
			return true
		}
	}
	// Missing column: some (variable, part) never admitted by any cube, so
	// the minterms with that value are uncovered.
	or := f.columnOr()
	if !s.IsFull(or) {
		return false
	}
	v := f.pickSplitVar()
	if v < 0 {
		// No cube is full (checked above) yet every cube is full in every
		// variable: impossible; covered for robustness.
		return true
	}
	// Special case: exactly one active variable. Every cube full elsewhere,
	// so tautology iff the column OR of v is full — already verified.
	single := true
	for _, c := range f.Cubes {
		for u := 0; u < s.NumVars(); u++ {
			if u != v && !s.VarFull(c, u) {
				single = false
				break
			}
		}
		if !single {
			break
		}
	}
	if single {
		return true
	}
	sel := s.FullCube()
	for p := 0; p < s.Size(v); p++ {
		s.ClearAll(sel, v)
		s.Set(sel, v, p)
		if !f.CofactorCube(sel).Tautology() {
			return false
		}
	}
	return true
}

// CoversCube reports whether the cover contains cube c, i.e. every minterm
// of c is covered by some cube of f. Implemented as Tautology(F/c).
func (f *Cover) CoversCube(c Cube) bool {
	if f.S.IsEmpty(c) {
		return true
	}
	return f.CofactorCube(c).Tautology()
}

// Complement returns a cover of the complement of f over the full minterm
// space, using Shannon expansion on the most binate variable with
// single-cube and unate-leaf terminal cases. The result is made minimal with
// single-cube containment only.
func (f *Cover) Complement() *Cover {
	s := f.S
	out := NewCover(s)
	if len(f.Cubes) == 0 {
		out.Add(s.FullCube())
		return out
	}
	for _, c := range f.Cubes {
		if s.IsFull(c) {
			return out // complement of universe is empty
		}
	}
	if len(f.Cubes) == 1 {
		return s.complementCube(f.Cubes[0])
	}
	v := f.pickSplitVar()
	if v < 0 {
		return out
	}
	sel := s.FullCube()
	for p := 0; p < s.Size(v); p++ {
		s.ClearAll(sel, v)
		s.Set(sel, v, p)
		sub := f.CofactorCube(sel).Complement()
		for _, c := range sub.Cubes {
			r := c.Copy()
			s.ClearAll(r, v)
			s.Set(r, v, p)
			out.Add(r)
		}
	}
	out.mergeAdjacent(v)
	out.SingleCubeContainment()
	return out
}

// complementCube returns the complement of a single cube as a disjoint
// cover: for each variable with a non-full field, one cube admitting the
// missing parts of that variable and the full range of later variables,
// restricted to the cube's parts on earlier variables (disjoint sharp).
func (s *Structure) complementCube(c Cube) *Cover {
	out := NewCover(s)
	prefix := s.FullCube()
	for v := 0; v < s.NumVars(); v++ {
		if !s.VarFull(c, v) {
			r := prefix.Copy()
			s.ClearAll(r, v)
			for p := 0; p < s.Size(v); p++ {
				if !s.Test(c, v, p) {
					s.Set(r, v, p)
				}
			}
			out.Add(r)
		}
		// Restrict the prefix to the cube's field for subsequent entries.
		off := s.Offset(v)
		for p := 0; p < s.Size(v); p++ {
			if !s.Test(c, v, p) {
				prefix.clearBit(off + p)
			}
		}
	}
	return out
}

// mergeAdjacent merges pairs of cubes that are identical except in variable
// v, OR-ing their v fields. It is the cheap "personality merge" applied
// after a Shannon split to curb complement growth.
func (f *Cover) mergeAdjacent(v int) {
	s := f.S
	type key struct{ k string }
	index := make(map[string]int)
	var kept []Cube
	mask := s.NewCube()
	s.SetAll(mask, v)
	for _, c := range f.Cubes {
		rest := c.Copy()
		s.ClearAll(rest, v)
		k := rest.Key()
		if i, ok := index[k]; ok {
			Or(kept[i], kept[i], c)
			continue
		}
		index[k] = len(kept)
		kept = append(kept, c)
	}
	_ = key{}
	f.Cubes = kept
}

// SingleCubeContainment removes every cube contained in another single cube
// of the cover (and duplicate cubes). Larger cubes are preferred.
func (f *Cover) SingleCubeContainment() {
	sort.Slice(f.Cubes, func(i, j int) bool {
		return f.Cubes[i].PopCount() > f.Cubes[j].PopCount()
	})
	var kept []Cube
	for _, c := range f.Cubes {
		contained := false
		for _, k := range kept {
			if Contains(k, c) {
				contained = true
				break
			}
		}
		if !contained {
			kept = append(kept, c)
		}
	}
	f.Cubes = kept
}

// Minterms enumerates every minterm covered by f exactly once and calls fn
// with a minterm cube (one part per variable). Enumeration is in
// lexicographic part order. Intended for small spaces (verification).
func (f *Cover) Minterms(fn func(Cube)) {
	s := f.S
	m := s.NewCube()
	var rec func(v int)
	rec = func(v int) {
		if v == s.NumVars() {
			for _, c := range f.Cubes {
				if Contains(c, m) {
					fn(m.Copy())
					return
				}
			}
			return
		}
		for p := 0; p < s.Size(v); p++ {
			s.Set(m, v, p)
			rec(v + 1)
			s.Clear(m, v, p)
		}
	}
	rec(0)
}
