package cube

// Sharp operations: cube and cover difference in the multiple-valued
// positional notation. Sharp(a, b) covers exactly the minterms of a not in
// b; the disjoint variant produces pairwise-disjoint result cubes, which
// keeps downstream counting exact at the cost of more cubes.

// SharpCube returns a cover of a \ b (the minterms of cube a not in cube
// b). The result uses the non-disjoint sharp: one cube per variable where
// b lowers parts of a.
func (s *Structure) SharpCube(a, b Cube) *Cover {
	out := NewCover(s)
	if !s.Intersects(a, b) {
		out.Add(a.Copy())
		return out
	}
	for v := 0; v < s.NumVars(); v++ {
		// Parts of a's field not admitted by b.
		m := s.vmask[v]
		any := false
		for w := s.vlo[v]; w <= s.vhi[v]; w++ {
			if a[w]&^b[w]&m[w] != 0 {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		c := a.Copy()
		for w := s.vlo[v]; w <= s.vhi[v]; w++ {
			c[w] &^= a[w] & b[w] & m[w]
		}
		if !s.IsEmpty(c) {
			out.Add(c)
		}
	}
	return out
}

// DisjointSharpCube returns a cover of a \ b whose cubes are pairwise
// disjoint: variable v's contribution is restricted to a∩b on all earlier
// variables.
func (s *Structure) DisjointSharpCube(a, b Cube) *Cover {
	out := NewCover(s)
	if !s.Intersects(a, b) {
		out.Add(a.Copy())
		return out
	}
	prefix := a.Copy()
	for v := 0; v < s.NumVars(); v++ {
		m := s.vmask[v]
		any := false
		for w := s.vlo[v]; w <= s.vhi[v]; w++ {
			if a[w]&^b[w]&m[w] != 0 {
				any = true
				break
			}
		}
		if any {
			c := prefix.Copy()
			for w := s.vlo[v]; w <= s.vhi[v]; w++ {
				c[w] &^= a[w] & b[w] & m[w]
			}
			if !s.IsEmpty(c) {
				out.Add(c)
			}
		}
		// Restrict the prefix to a∩b on this variable for later cubes.
		for w := s.vlo[v]; w <= s.vhi[v]; w++ {
			prefix[w] &^= m[w] &^ b[w]
		}
	}
	return out
}

// Sharp returns a cover of f \ g (every minterm of f not covered by g),
// applying the disjoint sharp cube by cube with single-cube containment
// between rounds to curb growth.
func (f *Cover) Sharp(g *Cover) *Cover {
	cur := f.Copy()
	for _, b := range g.Cubes {
		next := NewCover(f.S)
		for _, a := range cur.Cubes {
			next.Cubes = append(next.Cubes, f.S.DisjointSharpCube(a, b).Cubes...)
		}
		next.SingleCubeContainment()
		cur = next
		if len(cur.Cubes) == 0 {
			break
		}
	}
	return cur
}

// Disjoint returns an equivalent cover with pairwise-disjoint cubes.
func (f *Cover) Disjoint() *Cover {
	out := NewCover(f.S)
	for _, c := range f.Cubes {
		frag := NewCover(f.S)
		frag.Add(c.Copy())
		for _, prev := range out.Cubes {
			next := NewCover(f.S)
			for _, a := range frag.Cubes {
				next.Cubes = append(next.Cubes, f.S.DisjointSharpCube(a, prev).Cubes...)
			}
			frag = next
			if len(frag.Cubes) == 0 {
				break
			}
		}
		out.Cubes = append(out.Cubes, frag.Cubes...)
	}
	return out
}

// MintermCount returns the exact number of minterms the cover spans,
// computed from a disjoint decomposition.
func (f *Cover) MintermCount() int {
	d := f.Disjoint()
	n := 0
	for _, c := range d.Cubes {
		n += f.S.Minterms(c)
	}
	return n
}
