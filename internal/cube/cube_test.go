package cube

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStructureLayout(t *testing.T) {
	s := NewStructure(2, 3, 5)
	if s.NumVars() != 3 {
		t.Fatalf("NumVars = %d, want 3", s.NumVars())
	}
	if s.Bits() != 10 {
		t.Fatalf("Bits = %d, want 10", s.Bits())
	}
	if s.Offset(0) != 0 || s.Offset(1) != 2 || s.Offset(2) != 5 {
		t.Fatalf("offsets = %d,%d,%d", s.Offset(0), s.Offset(1), s.Offset(2))
	}
	if s.Words() != 1 {
		t.Fatalf("Words = %d, want 1", s.Words())
	}
}

func TestStructureLargeLayout(t *testing.T) {
	s := NewStructure(2, 2, 121, 60)
	if s.Bits() != 185 {
		t.Fatalf("Bits = %d, want 185", s.Bits())
	}
	if s.Words() != 3 {
		t.Fatalf("Words = %d, want 3", s.Words())
	}
	c := s.NewCube()
	s.Set(c, 2, 120)
	if !s.Test(c, 2, 120) {
		t.Fatal("Set/Test round trip failed across word boundary")
	}
	if s.VarCount(c, 2) != 1 {
		t.Fatalf("VarCount = %d, want 1", s.VarCount(c, 2))
	}
}

func TestSetClearTest(t *testing.T) {
	s := NewStructure(2, 4)
	c := s.NewCube()
	s.Set(c, 1, 2)
	if !s.Test(c, 1, 2) || s.Test(c, 1, 1) {
		t.Fatal("Set/Test mismatch")
	}
	s.Clear(c, 1, 2)
	if s.Test(c, 1, 2) {
		t.Fatal("Clear failed")
	}
}

func TestFullAndEmpty(t *testing.T) {
	s := NewStructure(2, 3)
	full := s.FullCube()
	if !s.IsFull(full) || s.IsEmpty(full) {
		t.Fatal("FullCube is not full")
	}
	empty := s.NewCube()
	if !s.IsEmpty(empty) {
		t.Fatal("zero cube should be empty")
	}
	// A cube with one empty field is empty even if others are set.
	c := s.NewCube()
	s.SetAll(c, 0)
	if !s.IsEmpty(c) {
		t.Fatal("cube with an empty variable field must be empty")
	}
}

func TestIntersection(t *testing.T) {
	s := NewStructure(2, 2)
	a := s.NewCube()
	s.Set(a, 0, 0)
	s.SetAll(a, 1)
	b := s.NewCube()
	s.SetAll(b, 0)
	s.Set(b, 1, 1)
	if !s.Intersects(a, b) {
		t.Fatal("a and b should intersect")
	}
	r := s.NewCube()
	And(r, a, b)
	if !s.Test(r, 0, 0) || s.Test(r, 0, 1) || !s.Test(r, 1, 1) || s.Test(r, 1, 0) {
		t.Fatalf("intersection wrong: %s", s.String(r))
	}
	c := s.NewCube()
	s.Set(c, 0, 1)
	s.SetAll(c, 1)
	if s.Intersects(a, c) {
		t.Fatal("a and c are disjoint in variable 0")
	}
}

func TestContains(t *testing.T) {
	s := NewStructure(2, 3)
	big := s.FullCube()
	small := s.NewCube()
	s.Set(small, 0, 1)
	s.Set(small, 1, 0)
	if !Contains(big, small) {
		t.Fatal("universe contains everything")
	}
	if Contains(small, big) {
		t.Fatal("small does not contain universe")
	}
}

func TestDistanceAndConsensus(t *testing.T) {
	s := NewStructure(2, 2)
	a := s.NewCube() // 01 11
	s.Set(a, 0, 0)
	s.SetAll(a, 1)
	b := s.NewCube() // 10 11
	s.Set(b, 0, 1)
	s.SetAll(b, 1)
	if d := s.Distance(a, b); d != 1 {
		t.Fatalf("distance = %d, want 1", d)
	}
	cons := s.Consensus(a, b)
	if cons == nil {
		t.Fatal("consensus should exist at distance 1")
	}
	if !s.VarFull(cons, 0) || !s.VarFull(cons, 1) {
		t.Fatalf("consensus = %s, want full", s.String(cons))
	}
	if s.Consensus(a, a) != nil {
		t.Fatal("consensus at distance 0 must be nil")
	}
}

func TestCofactorCube(t *testing.T) {
	s := NewStructure(2, 2)
	q := s.NewCube()
	s.Set(q, 0, 0)
	s.SetAll(q, 1)
	c := s.NewCube()
	s.Set(c, 0, 0)
	s.Set(c, 1, 1)
	r := s.Cofactor(q, c)
	if r == nil {
		t.Fatal("cofactor should exist")
	}
	// q/c has variable fields q_v | ~c_v.
	if !s.VarFull(r, 1) {
		t.Fatalf("cofactor = %s", s.String(r))
	}
	d := s.NewCube()
	s.Set(d, 0, 1)
	s.SetAll(d, 1)
	if s.Cofactor(d, c) != nil {
		t.Fatal("cofactor of disjoint cubes must be nil")
	}
}

func TestMinterms(t *testing.T) {
	s := NewStructure(2, 3)
	c := s.FullCube()
	if m := s.Minterms(c); m != 6 {
		t.Fatalf("Minterms(full) = %d, want 6", m)
	}
	s.Clear(c, 1, 0)
	if m := s.Minterms(c); m != 4 {
		t.Fatalf("Minterms = %d, want 4", m)
	}
}

func TestStringRendering(t *testing.T) {
	s := NewStructure(2, 3)
	c := s.NewCube()
	s.Set(c, 0, 1)
	s.Set(c, 1, 0)
	s.Set(c, 1, 2)
	if got := s.String(c); got != "01 101" {
		t.Fatalf("String = %q", got)
	}
	if got := s.BinaryString(c); got != "1{101}" {
		t.Fatalf("BinaryString = %q", got)
	}
}

func randomCube(s *Structure, rng *rand.Rand) Cube {
	c := s.NewCube()
	for v := 0; v < s.NumVars(); v++ {
		for p := 0; p < s.Size(v); p++ {
			if rng.Intn(2) == 1 {
				s.Set(c, v, p)
			}
		}
		if s.VarEmpty(c, v) {
			s.Set(c, v, rng.Intn(s.Size(v)))
		}
	}
	return c
}

// Property: intersection is the largest cube contained in both operands.
func TestIntersectionProperty(t *testing.T) {
	s := NewStructure(2, 2, 3)
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := randomCube(s, rng), randomCube(s, rng)
		r := s.NewCube()
		And(r, a, b)
		if s.IsEmpty(r) {
			return !s.Intersects(a, b)
		}
		return Contains(a, r) && Contains(b, r) && s.Intersects(a, b)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func() bool { return f() }, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Contains agrees with minterm subset semantics on small spaces.
func TestContainsAgreesWithMinterms(t *testing.T) {
	s := NewStructure(2, 3)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a, b := randomCube(s, rng), randomCube(s, rng)
		cover := NewCover(s)
		cover.Add(a)
		inA := map[string]bool{}
		cover.Minterms(func(m Cube) { inA[m.Key()] = true })
		coverB := NewCover(s)
		coverB.Add(b)
		subset := true
		coverB.Minterms(func(m Cube) {
			if !inA[m.Key()] {
				subset = false
			}
		})
		if got := Contains(a, b); got != subset {
			t.Fatalf("Contains(%s, %s) = %v, minterm subset = %v", s.String(a), s.String(b), got, subset)
		}
	}
}
