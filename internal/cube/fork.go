package cube

import (
	"context"
	"errors"
	"sync/atomic"

	"nova/internal/sched"
)

// Fork enables intra-problem parallelism inside the unate recursion:
// when an arena carries a Fork, TautologyWith and ComplementWith
// evaluate the cofactor branches of sufficiently large covers as tasks
// on the shared sched.Pool instead of sequentially. Each branch gets its
// own pooled child arena (keeping the recursion race-free and the
// allocation wins of arena recycling intact), and results are merged in
// part order, so outputs are byte-identical to the serial recursion.
//
// A Fork is shared by every arena of one encoding run; its counters are
// atomics. Forking self-limits: a branch is parallelized only while the
// pool has spare slots, so a pool already saturated by coarser-grained
// work (other machines, other candidates) degrades to the plain serial
// recursion with one length check and one channel-len read of overhead
// per node.
type Fork struct {
	pool     *sched.Pool
	minCubes int

	// dispatch counters.
	tautForks    atomic.Int64 // tautology nodes whose branches were forked
	compForks    atomic.Int64 // complement nodes whose branches were forked
	tautBranches atomic.Int64 // tautology branch tasks executed
	compBranches atomic.Int64 // complement branch tasks executed

	// child-arena activity: branch tasks run in pooled child arenas whose
	// stat deltas would otherwise escape the parent-arena flush done by
	// espresso; they are accumulated here instead and flushed per run.
	childTautCalls   atomic.Int64
	childMemoLookups atomic.Int64
	childMemoHits    atomic.Int64
	childCubesAlloc  atomic.Int64
	childCubesReused atomic.Int64
}

// DefaultForkCubes is the default minimum cofactor-cover size (in cubes)
// for forking branches: below it the recursion is cheaper than the
// goroutine handoff.
const DefaultForkCubes = 24

// NewFork returns a Fork dispatching branch tasks on pool. minCubes is
// the smallest cover whose branches are worth forking; <= 0 selects
// DefaultForkCubes. A nil pool or a single-worker pool yields nil (the
// serial recursion), so callers can pass the result straight to
// Arena.SetFork.
func NewFork(pool *sched.Pool, minCubes int) *Fork {
	if pool == nil || pool.Workers() <= 1 {
		return nil
	}
	if minCubes <= 0 {
		minCubes = DefaultForkCubes
	}
	return &Fork{pool: pool, minCubes: minCubes}
}

// ForkStats is a snapshot of a Fork's counters.
type ForkStats struct {
	TautForks    int64 // tautology nodes forked
	CompForks    int64 // complement nodes forked
	TautBranches int64 // tautology branch tasks run
	CompBranches int64 // complement branch tasks run
	Child        ArenaStats
}

// Stats snapshots the fork's counters; safe to call concurrently.
func (fk *Fork) Stats() ForkStats {
	if fk == nil {
		return ForkStats{}
	}
	return ForkStats{
		TautForks:    fk.tautForks.Load(),
		CompForks:    fk.compForks.Load(),
		TautBranches: fk.tautBranches.Load(),
		CompBranches: fk.compBranches.Load(),
		Child: ArenaStats{
			TautCalls:       fk.childTautCalls.Load(),
			TautMemoLookups: fk.childMemoLookups.Load(),
			TautMemoHits:    fk.childMemoHits.Load(),
			CubesAlloc:      fk.childCubesAlloc.Load(),
			CubesReused:     fk.childCubesReused.Load(),
		},
	}
}

// Sub returns s - o, the activity between two snapshots.
func (s ForkStats) Sub(o ForkStats) ForkStats {
	return ForkStats{
		TautForks:    s.TautForks - o.TautForks,
		CompForks:    s.CompForks - o.CompForks,
		TautBranches: s.TautBranches - o.TautBranches,
		CompBranches: s.CompBranches - o.CompBranches,
		Child:        s.Child.Sub(o.Child),
	}
}

func (fk *Fork) addChildStats(d ArenaStats) {
	fk.childTautCalls.Add(d.TautCalls)
	fk.childMemoLookups.Add(d.TautMemoLookups)
	fk.childMemoHits.Add(d.TautMemoHits)
	fk.childCubesAlloc.Add(d.CubesAlloc)
	fk.childCubesReused.Add(d.CubesReused)
}

// shouldFork reports whether this recursion node's branches should be
// dispatched to the pool: a fork is attached, the cover is big enough to
// amortize the handoff, and at least one spare worker slot is free right
// now (a stale read at worst costs one inline-degraded fork).
func (a *Arena) shouldFork(f *Cover) bool {
	fk := a.fork
	return fk != nil && len(f.Cubes) >= fk.minCubes && fk.pool.SpareSlots() > 0
}

// errBranchFalse is the internal signal that a tautology branch found an
// uncovered minterm; it cancels the sibling branches through the group.
var errBranchFalse = errors.New("cube: cofactor branch not tautology")

// tautologyBranchesParallel evaluates the s.Size(v) cofactor branches of
// the tautology recursion as pool tasks. It returns the verdict and
// whether the verdict is tainted by external cancellation (tainted
// verdicts are conservative `false` and must not be memoized).
//
// Determinism: the verdict of each branch is a pure function of the
// cofactor's content, and the node verdict is the AND over branches, so
// scheduling order cannot change the result — only which branches were
// skipped after the first genuine false (exactly the work the serial
// early-exit skips too).
func (f *Cover) tautologyBranchesParallel(a *Arena, v int) (res, tainted bool) {
	fk := a.fork
	s := f.S
	n := s.Size(v)
	fk.tautForks.Add(1)
	g := fk.pool.Group(a.fctx)
	verdicts := make([]int8, n) // 0 = not evaluated, 1 = tautology, 2 = genuine false
	for p := 0; p < n; p++ {
		p := p
		g.Go(func(ctx context.Context) error {
			if ctx.Err() != nil {
				return nil // sibling found false, or external cancel
			}
			fk.tautBranches.Add(1)
			ca := GetArena(s)
			ca.SetFork(fk, ctx)
			base := ca.stat
			sel := ca.CopyCube(s.full)
			s.ClearAll(sel, v)
			s.Set(sel, v, p)
			sub := f.cofactorCoverWith(ca, sel, true)
			ok := sub.TautologyWith(ca)
			ca.Release(sub)
			ca.FreeCube(sel)
			fk.addChildStats(ca.stat.Sub(base))
			ca.SetFork(nil, nil)
			PutArena(ca)
			if ok {
				verdicts[p] = 1
				return nil
			}
			if ctx.Err() != nil {
				return nil // false may be cancellation-induced: discard
			}
			verdicts[p] = 2
			return errBranchFalse // first error cancels the siblings
		})
	}
	g.Wait() // errBranchFalse is expected, not propagated
	allTrue := true
	for _, verdict := range verdicts {
		switch verdict {
		case 2:
			return false, false // genuine counterexample: memoizable
		case 0:
			allTrue = false
		}
	}
	if allTrue {
		return true, false
	}
	// Some branch was skipped or discarded without any genuine false:
	// only external cancellation does that. Conservative false, tainted.
	return false, true
}

// complementBranchesParallel evaluates the s.Size(v) Shannon branches of
// the complement recursion as pool tasks, returning the per-part
// sub-complements already relabeled to their part. Entries are nil only
// under external cancellation (the caller's result is then discarded by
// the run's own ctx check). Appending the slices in part order makes the
// merged cover byte-identical to the serial recursion.
func (f *Cover) complementBranchesParallel(a *Arena, v int) []*Cover {
	fk := a.fork
	s := f.S
	n := s.Size(v)
	fk.compForks.Add(1)
	g := fk.pool.Group(a.fctx)
	subs := make([]*Cover, n)
	for p := 0; p < n; p++ {
		p := p
		g.Go(func(ctx context.Context) error {
			if ctx.Err() != nil {
				return nil
			}
			fk.compBranches.Add(1)
			ca := GetArena(s)
			ca.SetFork(fk, ctx)
			base := ca.stat
			sel := ca.CopyCube(s.full)
			s.ClearAll(sel, v)
			s.Set(sel, v, p)
			gcov := f.cofactorCoverWith(ca, sel, false)
			sub := gcov.ComplementWith(ca)
			ca.Release(gcov)
			ca.FreeCube(sel)
			fk.addChildStats(ca.stat.Sub(base))
			ca.SetFork(nil, nil)
			PutArena(ca)
			for _, c := range sub.Cubes {
				s.ClearAll(c, v)
				s.Set(c, v, p)
			}
			subs[p] = sub
			return nil
		})
	}
	g.Wait()
	return subs
}
