package mvmin

import (
	"fmt"

	"nova/internal/cube"
	"nova/internal/encoding"
	"nova/internal/espresso"
	"nova/internal/kiss"
	"nova/internal/obs"
)

// Encoded is the two-level Boolean representation of an FSM under a code
// assignment: binary inputs are the proper inputs, the encoded symbolic
// inputs, then the present-state bits; outputs are the next-state bits
// followed by the proper outputs.
type Encoded struct {
	F   *kiss.FSM
	Asg encoding.Assignment
	S   *cube.Structure
	On  *cube.Cover
	Dc  *cube.Cover
	// NIn is the number of binary input variables of the PLA
	// (proper + encoded symbolic + state bits); NOut the output count.
	NIn, NOut int
}

// EncodePLA translates the FSM and assignment into on/dc covers over the
// encoded binary space. Vertices of the state (and symbolic input) bit
// space that are not the code of any value are don't-cares, as are the
// (input, state) combinations left unspecified by the table.
func EncodePLA(f *kiss.FSM, asg encoding.Assignment) (*Encoded, error) {
	if err := asg.Validate(); err != nil {
		return nil, err
	}
	if len(asg.States.Codes) != f.NumStates() {
		return nil, fmt.Errorf("mvmin: %d state codes for %d states", len(asg.States.Codes), f.NumStates())
	}
	if len(asg.SymIns) != len(f.SymIns) {
		return nil, fmt.Errorf("mvmin: %d symbolic encodings for %d symbolic inputs", len(asg.SymIns), len(f.SymIns))
	}
	for i, e := range asg.SymIns {
		if len(e.Codes) != len(f.SymIns[i].Values) {
			return nil, fmt.Errorf("mvmin: symbolic input %d has %d codes for %d values", i, len(e.Codes), len(f.SymIns[i].Values))
		}
	}
	if len(asg.SymOuts) != len(f.SymOuts) {
		return nil, fmt.Errorf("mvmin: %d symbolic output encodings for %d symbolic outputs", len(asg.SymOuts), len(f.SymOuts))
	}
	for i, e := range asg.SymOuts {
		if len(e.Codes) != len(f.SymOuts[i].Values) {
			return nil, fmt.Errorf("mvmin: symbolic output %d has %d codes for %d values", i, len(e.Codes), len(f.SymOuts[i].Values))
		}
	}
	sb := asg.States.Bits
	nin := f.NI + asg.InputBits() + sb
	nout := sb + f.NO + asg.OutputBits()
	sizes := make([]int, nin+1)
	for i := range sizes[:nin] {
		sizes[i] = 2
	}
	sizes[nin] = nout
	s := cube.NewStructure(sizes...)
	e := &Encoded{F: f, Asg: asg, S: s, NIn: nin, NOut: nout}
	e.On = cube.NewCover(s)
	e.Dc = cube.NewCover(s)

	symBase := make([]int, len(f.SymIns)) // first bit var of each symbolic input
	base := f.NI
	for i, enc := range asg.SymIns {
		symBase[i] = base
		base += enc.Bits
	}
	stateBase := base // first state-bit variable

	setCode := func(c cube.Cube, baseVar, bits int, code uint64) {
		for b := 0; b < bits; b++ {
			if code&(1<<uint(b)) != 0 {
				s.Set(c, baseVar+b, 1)
			} else {
				s.Set(c, baseVar+b, 0)
			}
		}
	}

	for _, r := range f.Rows {
		c := s.NewCube()
		for i := 0; i < f.NI; i++ {
			switch r.In[i] {
			case '0':
				s.Set(c, i, 0)
			case '1':
				s.Set(c, i, 1)
			default:
				s.SetAll(c, i)
			}
		}
		for j, v := range r.SymIn {
			if v < 0 {
				for b := 0; b < asg.SymIns[j].Bits; b++ {
					s.SetAll(c, symBase[j]+b)
				}
			} else {
				setCode(c, symBase[j], asg.SymIns[j].Bits, asg.SymIns[j].Codes[v])
			}
		}
		if r.Present < 0 {
			// Any present state: one cube per state code (the face over
			// all codes may include non-code vertices, which are DC, so a
			// single spanning cube would be sound for the on-set but we
			// keep per-state cubes so row semantics stay exact).
			for st := range f.States {
				cc := c.Copy()
				setCode(cc, stateBase, sb, asg.States.Codes[st])
				rr := r
				rr.Present = st
				addOneFor(e, s, rr, cc, nin, sb, asg)
			}
			continue
		}
		setCode(c, stateBase, sb, asg.States.Codes[r.Present])
		addOneFor(e, s, r, c, nin, sb, asg)
	}

	// DC 1: state-bit patterns that are no state's code (similarly for
	// each symbolic input's bit field) are free for every output.
	addNonCodeDC(e, stateBase, asg.States)
	for j, enc := range asg.SymIns {
		addNonCodeDC(e, symBase[j], enc)
	}

	// DC 2: (input, state) combinations unspecified in the symbolic table.
	p, err := Build(f)
	if err != nil {
		return nil, err
	}
	for _, d := range p.Dc.Cubes {
		if !p.S.VarFull(d, p.OutVar) {
			continue // per-output DCs were added with the rows
		}
		e.addSymbolicDC(p, d, symBase, stateBase)
	}
	return e, nil
}

// addOneFor mirrors the addOne closure for the expanded any-state rows.
func addOneFor(e *Encoded, s *cube.Structure, r kiss.Row, c cube.Cube, nin, sb int, asg encoding.Assignment) {
	on := c.Copy()
	dc := c.Copy()
	onAny, dcAny := false, false
	if r.Next >= 0 {
		code := asg.States.Codes[r.Next]
		for b := 0; b < sb; b++ {
			if code&(1<<uint(b)) != 0 {
				s.Set(on, nin, b)
				onAny = true
			}
		}
	} else {
		for b := 0; b < sb; b++ {
			s.Set(dc, nin, b)
			dcAny = true
		}
	}
	for o := 0; o < e.F.NO; o++ {
		switch r.Out[o] {
		case '1':
			s.Set(on, nin, sb+o)
			onAny = true
		case '-':
			s.Set(dc, nin, sb+o)
			dcAny = true
		}
	}
	base := sb + e.F.NO
	for j, v := range r.SymOut {
		enc := asg.SymOuts[j]
		if v >= 0 {
			code := enc.Codes[v]
			for b := 0; b < enc.Bits; b++ {
				if code&(1<<uint(b)) != 0 {
					s.Set(on, nin, base+b)
					onAny = true
				}
			}
		} else {
			for b := 0; b < enc.Bits; b++ {
				s.Set(dc, nin, base+b)
				dcAny = true
			}
		}
		base += enc.Bits
	}
	if onAny {
		e.On.Add(on)
	}
	if dcAny {
		e.Dc.Add(dc)
	}
}

// addNonCodeDC adds the complement of the used code vertices of one bit
// field, crossed with everything else, to the don't-care cover.
func addNonCodeDC(e *Encoded, baseVar int, enc encoding.Encoding) {
	if enc.Bits == 0 {
		return
	}
	sizes := make([]int, enc.Bits)
	for i := range sizes {
		sizes[i] = 2
	}
	bs := cube.NewStructure(sizes...)
	codes := cube.NewCover(bs)
	for _, code := range enc.Codes {
		c := bs.NewCube()
		for b := 0; b < enc.Bits; b++ {
			if code&(1<<uint(b)) != 0 {
				bs.Set(c, b, 1)
			} else {
				bs.Set(c, b, 0)
			}
		}
		codes.Add(c)
	}
	arena := cube.GetArena(bs)
	comp := codes.ComplementWith(arena)
	cube.PutArena(arena)
	for _, c := range comp.Cubes {
		d := e.S.FullCube()
		for b := 0; b < enc.Bits; b++ {
			e.S.ClearAll(d, baseVar+b)
			for q := 0; q < 2; q++ {
				if bs.Test(c, b, q) {
					e.S.Set(d, baseVar+b, q)
				}
			}
		}
		e.Dc.Add(d)
	}
}

// addSymbolicDC translates one full-output symbolic don't-care cube into
// the encoded space, expanding multiple-valued literals over the member
// codes (full literals become full bit fields, covered jointly with the
// non-code DC).
func (e *Encoded) addSymbolicDC(p *Problem, d cube.Cube, symBase []int, stateBase int) {
	s := e.S
	f := e.F
	sb := e.Asg.States.Bits

	// Recursive expansion over the symbolic variables with partial
	// literals.
	type mvVar struct {
		pvar, bits, baseVar int
		enc                 encoding.Encoding
	}
	vars := []mvVar{{p.StateVar, sb, stateBase, e.Asg.States}}
	for j := range f.SymIns {
		vars = append(vars, mvVar{p.SymVars[j], e.Asg.SymIns[j].Bits, symBase[j], e.Asg.SymIns[j]})
	}

	base := s.NewCube()
	for i := 0; i < f.NI; i++ {
		for q := 0; q < 2; q++ {
			if p.S.Test(d, i, q) {
				s.Set(base, i, q)
			}
		}
	}
	s.SetAll(base, e.NIn) // all outputs DC

	var rec func(i int, c cube.Cube)
	rec = func(i int, c cube.Cube) {
		if i == len(vars) {
			e.Dc.Add(c.Copy())
			return
		}
		v := vars[i]
		parts := p.S.VarParts(d, v.pvar)
		if len(parts) == p.S.Size(v.pvar) {
			// Full literal: all bit patterns (codes and non-codes alike).
			cc := c.Copy()
			for b := 0; b < v.bits; b++ {
				s.SetAll(cc, v.baseVar+b)
			}
			rec(i+1, cc)
			return
		}
		for _, q := range parts {
			cc := c.Copy()
			code := v.enc.Codes[q]
			for b := 0; b < v.bits; b++ {
				if code&(1<<uint(b)) != 0 {
					s.Set(cc, v.baseVar+b, 1)
				} else {
					s.Set(cc, v.baseVar+b, 0)
				}
			}
			rec(i+1, cc)
		}
	}
	rec(0, base)
}

// Minimize returns the minimized encoded cover.
func (e *Encoded) Minimize(opt espresso.Options) *cube.Cover {
	return espresso.Minimize(e.On, e.Dc, opt)
}

// Metrics holds the paper's per-encoding measurements.
type Metrics struct {
	Bits  int // total encoding bits (states + symbolic inputs)
	Cubes int // product terms after espresso minimization
	Area  int // (2*(#in+#bits) + #bits + #outputs) * #cubes
}

// Measure minimizes the encoded FSM and reports the paper's metrics. The
// area model counts the encoded symbolic input bits among the PLA inputs.
func Measure(f *kiss.FSM, asg encoding.Assignment, opt espresso.Options) (Metrics, error) {
	sctx, sp := obs.Span(opt.Ctx, "mvmin.measure")
	opt.Ctx = sctx
	defer sp.End()
	e, err := EncodePLA(f, asg)
	if err != nil {
		return Metrics{}, err
	}
	min := e.Minimize(opt)
	inputs := f.NI + asg.InputBits()
	outputs := f.NO + asg.OutputBits()
	return Metrics{
		Bits:  asg.TotalBits(),
		Cubes: min.Len(),
		Area:  kiss.Area(inputs, asg.States.Bits, outputs, min.Len()),
	}, nil
}
