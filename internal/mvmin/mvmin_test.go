package mvmin

import (
	"testing"

	"nova/internal/encoding"
	"nova/internal/espresso"
	"nova/internal/kiss"
)

// counterFSM is a fully specified modulo-4 up/down counter: input 0 counts
// up, 1 counts down; output is the MSB of the count.
func counterFSM(t *testing.T) *kiss.FSM {
	t.Helper()
	f := kiss.New("mod4", 1, 1)
	names := []string{"c0", "c1", "c2", "c3"}
	out := []string{"0", "0", "1", "1"}
	for i := 0; i < 4; i++ {
		f.MustAddRow("0", names[i], names[(i+1)%4], out[(i+1)%4])
		f.MustAddRow("1", names[i], names[(i+3)%4], out[(i+3)%4])
	}
	f.SetReset("c0")
	return f
}

func TestBuildStructure(t *testing.T) {
	f := counterFSM(t)
	p, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	// 1 input var + state var + output var.
	if p.S.NumVars() != 3 {
		t.Fatalf("vars = %d, want 3", p.S.NumVars())
	}
	if p.S.Size(p.StateVar) != 4 {
		t.Fatalf("state var size = %d", p.S.Size(p.StateVar))
	}
	if p.S.Size(p.OutVar) != 4+1 {
		t.Fatalf("output var size = %d, want 5", p.S.Size(p.OutVar))
	}
	if p.On.Len() != 8 {
		t.Fatalf("on-set has %d cubes, want 8", p.On.Len())
	}
	// Fully specified machine: the input-space complement is empty, so no
	// full-output DC rows.
	for _, d := range p.Dc.Cubes {
		if p.S.VarFull(d, p.OutVar) {
			t.Fatal("fully-specified FSM should have no unspecified-space DC")
		}
	}
}

func TestBuildpartialDC(t *testing.T) {
	f := kiss.New("partial", 1, 1)
	f.MustAddRow("0", "a", "b", "1")
	f.MustAddRow("1", "b", "a", "0")
	// (1, a) and (0, b) unspecified.
	p, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	fullDC := 0
	for _, d := range p.Dc.Cubes {
		if p.S.VarFull(d, p.OutVar) {
			fullDC++
		}
	}
	if fullDC == 0 {
		t.Fatal("partially specified FSM must produce unspecified-space DC")
	}
}

func TestMinimizeGroupsStates(t *testing.T) {
	// Four states all going to the same next state with the same output
	// under input 0: minimization must merge them into one cube whose
	// present-state literal is the full set (hence no constraint).
	f := kiss.New("merge", 1, 1)
	for _, s := range []string{"a", "b", "c", "d"} {
		f.MustAddRow("0", s, "a", "1")
	}
	f.MustAddRow("1", "a", "b", "0")
	f.MustAddRow("1", "b", "c", "0")
	f.MustAddRow("1", "c", "d", "0")
	f.MustAddRow("1", "d", "a", "0")
	p, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	min := p.Minimize(espresso.Options{})
	if min.Len() >= p.On.Len() {
		t.Fatalf("minimization did not shrink: %d -> %d", p.On.Len(), min.Len())
	}
	// The input-0 group must have merged.
	found := false
	for _, c := range min.Cubes {
		if p.S.VarCount(c, p.StateVar) == 4 && p.S.Test(c, p.OutVar, 0) {
			found = true
		}
	}
	if !found {
		t.Fatal("expected a merged cube over all four states")
	}
}

func TestConstraintsExtraction(t *testing.T) {
	// Two states mapped by input 0 to the same next state and output form
	// an input constraint {a,b}.
	f := kiss.New("pair", 1, 1)
	f.MustAddRow("0", "a", "d", "1")
	f.MustAddRow("0", "b", "d", "1")
	f.MustAddRow("0", "c", "a", "0")
	f.MustAddRow("0", "d", "a", "0")
	f.MustAddRow("1", "a", "a", "0")
	f.MustAddRow("1", "b", "b", "0")
	f.MustAddRow("1", "c", "c", "1")
	f.MustAddRow("1", "d", "c", "1")
	p, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	min := p.Minimize(espresso.Options{})
	cs := p.Constraints(min)
	if len(cs.States) == 0 {
		t.Fatalf("no input constraints extracted from:\n%s", min)
	}
	// State indices follow first appearance: a=0, d=1, b=2, c=3, so the
	// merged groups {a,b} and {c,d} are the vectors 1010 and 0101.
	want := map[string]bool{"1010": true, "0101": true}
	seen := map[string]bool{}
	for _, c := range cs.States {
		seen[c.Set.String()] = true
		if c.Weight < 1 {
			t.Fatalf("constraint %s has weight %d", c.Set, c.Weight)
		}
	}
	for v, must := range want {
		if must && !seen[v] {
			t.Fatalf("expected constraint %s, got %v", v, seen)
		}
	}
}

func TestOneHotCubes(t *testing.T) {
	f := counterFSM(t)
	p, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	oh := p.OneHotCubes(espresso.Options{})
	if oh <= 0 || oh > f.NumTerms() {
		t.Fatalf("1-hot cubes = %d out of range (terms %d)", oh, f.NumTerms())
	}
}

func TestEncodePLAAndMeasure(t *testing.T) {
	f := counterFSM(t)
	asg := encoding.Assignment{States: encoding.Encoding{Bits: 2, Codes: []uint64{0, 1, 3, 2}}}
	m, err := Measure(f, asg, espresso.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Bits != 2 {
		t.Fatalf("bits = %d", m.Bits)
	}
	if m.Cubes <= 0 || m.Cubes > 8 {
		t.Fatalf("cubes = %d out of range", m.Cubes)
	}
	wantArea := (2*(1+2) + 2 + 1) * m.Cubes
	if m.Area != wantArea {
		t.Fatalf("area = %d, want %d", m.Area, wantArea)
	}
}

func TestEncodePLARejectsBadAssignment(t *testing.T) {
	f := counterFSM(t)
	// Duplicate codes.
	asg := encoding.Assignment{States: encoding.Encoding{Bits: 2, Codes: []uint64{0, 1, 1, 2}}}
	if _, err := EncodePLA(f, asg); err == nil {
		t.Fatal("want error for duplicate codes")
	}
	// Wrong number of codes.
	asg = encoding.Assignment{States: encoding.Encoding{Bits: 2, Codes: []uint64{0, 1}}}
	if _, err := EncodePLA(f, asg); err == nil {
		t.Fatal("want error for missing codes")
	}
}

func TestGrayVsBadEncodingCubes(t *testing.T) {
	// For the counter, a Gray-ish assignment should do no worse than an
	// adversarial one (weak sanity check that the encoding matters).
	f := counterFSM(t)
	gray, err := Measure(f, encoding.Assignment{States: encoding.Encoding{Bits: 2, Codes: []uint64{0, 1, 3, 2}}}, espresso.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nat, err := Measure(f, encoding.Assignment{States: encoding.Encoding{Bits: 2, Codes: []uint64{0, 3, 1, 2}}}, espresso.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gray.Cubes > nat.Cubes+2 {
		t.Fatalf("gray %d much worse than adversarial %d", gray.Cubes, nat.Cubes)
	}
}
