package mvmin

import (
	"testing"

	"nova/internal/encoding"
	"nova/internal/espresso"
	"nova/internal/kiss"
)

// symFSM exercises every translation path: symbolic input, symbolic
// output, any-state rows, unspecified next states, '-' outputs and an
// incompletely specified input space.
func symFSM(t *testing.T) *kiss.FSM {
	t.Helper()
	f := kiss.New("sym", 1, 2)
	f.AddSymbolicInput("cmd", "go", "halt", "skip")
	f.AddSymbolicOutput("mode", "m0", "m1")
	add := func(in string, si []string, ps, ns, out string, so []string) {
		t.Helper()
		if err := f.AddRowSym(in, si, ps, ns, out, so); err != nil {
			t.Fatal(err)
		}
	}
	add("0", []string{"go"}, "a", "b", "10", []string{"m0"})
	add("0", []string{"halt"}, "a", "a", "0-", []string{"m1"})
	add("1", []string{"-"}, "a", "*", "01", []string{"-"})
	add("-", []string{"skip"}, "b", "a", "1-", []string{"m0"})
	add("-", []string{"go"}, "b", "c", "00", []string{"m1"})
	// Any-state fallback for one input slice.
	add("1", []string{"halt"}, "-", "c", "11", []string{"m0"})
	return f
}

func symAssignment(f *kiss.FSM) encoding.Assignment {
	return encoding.Assignment{
		States:  encoding.Encoding{Bits: 2, Codes: []uint64{0, 1, 2}},
		SymIns:  []encoding.Encoding{{Bits: 2, Codes: []uint64{0, 1, 3}}},
		SymOuts: []encoding.Encoding{{Bits: 1, Codes: []uint64{0, 1}}},
	}
}

func TestEncodePLASymbolicPaths(t *testing.T) {
	f := symFSM(t)
	e, err := EncodePLA(f, symAssignment(f))
	if err != nil {
		t.Fatal(err)
	}
	// PLA inputs: 1 binary + 2 symbolic-input bits + 2 state bits.
	if e.NIn != 5 {
		t.Fatalf("NIn = %d, want 5", e.NIn)
	}
	// Outputs: 2 state bits + 2 binary + 1 symbolic-output bit.
	if e.NOut != 5 {
		t.Fatalf("NOut = %d, want 5", e.NOut)
	}
	if e.On.Len() == 0 || e.Dc.Len() == 0 {
		t.Fatalf("on=%d dc=%d", e.On.Len(), e.Dc.Len())
	}
	min := e.Minimize(espresso.Options{})
	if min.Len() == 0 || min.Len() > e.On.Len() {
		t.Fatalf("minimized to %d (on-set %d)", min.Len(), e.On.Len())
	}
}

func TestEncodePLASymbolicValidation(t *testing.T) {
	f := symFSM(t)
	a := symAssignment(f)
	a.SymOuts = nil
	if _, err := EncodePLA(f, a); err == nil {
		t.Fatal("missing symbolic output encoding must fail")
	}
	a = symAssignment(f)
	a.SymIns[0].Codes = a.SymIns[0].Codes[:2]
	if _, err := EncodePLA(f, a); err == nil {
		t.Fatal("short symbolic input encoding must fail")
	}
	a = symAssignment(f)
	a.SymOuts[0].Codes = []uint64{0, 1, 2}
	if _, err := EncodePLA(f, a); err == nil {
		t.Fatal("oversized symbolic output encoding must fail")
	}
}

func TestMeasureSymbolicAreaModel(t *testing.T) {
	f := symFSM(t)
	a := symAssignment(f)
	m, err := Measure(f, a, espresso.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// inputs = 1 + 2 symbolic bits; outputs = 2 + 1 symbolic bit.
	want := kiss.Area(3, 2, 3, m.Cubes)
	if m.Area != want {
		t.Fatalf("area %d, want %d", m.Area, want)
	}
	if m.Bits != 4 {
		t.Fatalf("bits %d, want 4 (states + symbolic inputs)", m.Bits)
	}
}

func TestBuildSymbolicStructure(t *testing.T) {
	f := symFSM(t)
	p, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	// Vars: 1 binary input + 1 symbolic input + state var + output var.
	if p.S.NumVars() != 4 {
		t.Fatalf("vars = %d", p.S.NumVars())
	}
	// Output var parts: 3 next-state + 2 binary + 2 symbolic-output.
	if p.S.Size(p.OutVar) != 7 {
		t.Fatalf("output parts = %d, want 7", p.S.Size(p.OutVar))
	}
	if len(p.SymOutBase) != 1 || p.SymOutBase[0] != 5 {
		t.Fatalf("SymOutBase = %v", p.SymOutBase)
	}
	// The partial specification must produce full-output DC cubes.
	full := 0
	for _, d := range p.Dc.Cubes {
		if p.S.VarFull(d, p.OutVar) {
			full++
		}
	}
	if full == 0 {
		t.Fatal("no unspecified-space DC emitted")
	}
	min := p.Minimize(espresso.Options{})
	cs := p.Constraints(min)
	if len(cs.SymIns) != 1 {
		t.Fatal("symbolic input constraints missing")
	}
}

func TestRowInputCubeAnyState(t *testing.T) {
	f := symFSM(t)
	p, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	// Row 5 has Present = -1: its cube must span the full state variable.
	c, err := p.rowInputCube(f.Rows[5])
	if err != nil {
		t.Fatal(err)
	}
	if !p.S.VarFull(c, p.StateVar) {
		t.Fatal("any-state row does not span the state variable")
	}
}
