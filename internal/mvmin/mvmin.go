// Package mvmin builds the multiple-valued symbolic cover of an FSM's
// combinational component, runs multiple-valued (output-disjoint)
// minimization on it, and extracts the weighted input constraints that
// drive NOVA's encoding algorithms (Section 2.2 of the paper). It also
// provides the reverse translation: given a code assignment, it constructs
// the encoded two-level cover whose minimized cardinality is the paper's
// "#cubes" metric.
package mvmin

import (
	"context"
	"fmt"

	"nova/internal/constraint"
	"nova/internal/cube"
	"nova/internal/espresso"
	"nova/internal/kiss"
	"nova/internal/obs"
)

// Problem is the multiple-valued representation of an FSM's combinational
// logic. The cube structure is:
//
//	variables 0..NI-1:            binary proper inputs (2 parts each)
//	variables NI..NI+#sym-1:      symbolic proper inputs (one per variable)
//	variable  StateVar:           the present-state variable (#states parts)
//	variable  OutVar:             the output part — #states parts for the
//	                              1-hot next state, NO parts for the binary
//	                              proper outputs, then one part per value
//	                              of each symbolic output variable
type Problem struct {
	F        *kiss.FSM
	S        *cube.Structure
	On       *cube.Cover
	Dc       *cube.Cover
	StateVar int
	OutVar   int
	SymVars  []int // structure variable index per symbolic input
	// SymOutBase holds, per symbolic output variable, the first part index
	// of its 1-hot group within the output variable.
	SymOutBase []int
}

// Build constructs the symbolic cover of the FSM. Unspecified
// (input, present-state) combinations contribute a full don't-care row;
// '-' output bits contribute per-output don't-cares.
func Build(f *kiss.FSM) (*Problem, error) {
	return BuildWithFork(f, nil, nil)
}

// BuildWithFork is Build with the input-space don't-care complement —
// the one unate recursion mvmin runs outside espresso — dispatched onto
// the fork's pool when fork is non-nil. ctx bounds the forked branches;
// a nil fork (or nil ctx) reproduces the serial Build exactly.
func BuildWithFork(f *kiss.FSM, ctx context.Context, fork *cube.Fork) (*Problem, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	ns := f.NumStates()
	sizes := make([]int, 0, f.NI+len(f.SymIns)+2)
	for i := 0; i < f.NI; i++ {
		sizes = append(sizes, 2)
	}
	symVars := make([]int, len(f.SymIns))
	for i, v := range f.SymIns {
		symVars[i] = len(sizes)
		sizes = append(sizes, len(v.Values))
	}
	stateVar := len(sizes)
	sizes = append(sizes, ns)
	outVar := len(sizes)
	outParts := ns + f.NO
	symOutBase := make([]int, len(f.SymOuts))
	for i, v := range f.SymOuts {
		symOutBase[i] = outParts
		outParts += len(v.Values)
	}
	sizes = append(sizes, outParts)
	s := cube.NewStructure(sizes...)

	p := &Problem{F: f, S: s, StateVar: stateVar, OutVar: outVar, SymVars: symVars, SymOutBase: symOutBase}
	p.On = cube.NewCover(s)
	p.Dc = cube.NewCover(s)

	for ri, r := range f.Rows {
		c, err := p.rowInputCube(r)
		if err != nil {
			return nil, fmt.Errorf("mvmin: row %d: %v", ri, err)
		}
		onOut, dcOut := false, false
		on := c.Copy()
		dc := c.Copy()
		if r.Next >= 0 {
			s.Set(on, outVar, r.Next)
			onOut = true
		} else {
			// Unspecified next state: every next-state part is DC.
			for j := 0; j < ns; j++ {
				s.Set(dc, outVar, j)
			}
			dcOut = true
		}
		for o := 0; o < f.NO; o++ {
			switch r.Out[o] {
			case '1':
				s.Set(on, outVar, ns+o)
				onOut = true
			case '-':
				s.Set(dc, outVar, ns+o)
				dcOut = true
			}
		}
		for j, v := range r.SymOut {
			if v >= 0 {
				s.Set(on, outVar, symOutBase[j]+v)
				onOut = true
			} else {
				for q := 0; q < len(f.SymOuts[j].Values); q++ {
					s.Set(dc, outVar, symOutBase[j]+q)
				}
				dcOut = true
			}
		}
		if onOut {
			p.On.Add(on)
		}
		if dcOut {
			p.Dc.Add(dc)
		}
	}

	// Input-space don't-cares: (input, state) combinations matched by no
	// row leave every output unspecified. They are the complement, over
	// the input variables, of the union of the row activation cubes.
	inSizes := append([]int(nil), sizes[:outVar]...)
	inS := cube.NewStructure(inSizes...)
	rowIn := cube.NewCover(inS)
	for _, r := range f.Rows {
		c, _ := p.rowInputCube(r)
		trim := inS.NewCube()
		for v := 0; v < inS.NumVars(); v++ {
			for q := 0; q < inS.Size(v); q++ {
				if s.Test(c, v, q) {
					inS.Set(trim, v, q)
				}
			}
		}
		rowIn.Add(trim)
	}
	arena := cube.GetArena(inS)
	if fork != nil {
		arena.SetFork(fork, ctx)
	}
	comp := rowIn.ComplementWith(arena)
	cube.PutArena(arena)
	for _, c := range comp.Cubes {
		d := s.NewCube()
		for v := 0; v < inS.NumVars(); v++ {
			for q := 0; q < inS.Size(v); q++ {
				if inS.Test(c, v, q) {
					s.Set(d, v, q)
				}
			}
		}
		s.SetAll(d, outVar)
		p.Dc.Add(d)
	}
	return p, nil
}

// rowInputCube builds the activation cube of a row over the full structure
// (output part left empty).
func (p *Problem) rowInputCube(r kiss.Row) (cube.Cube, error) {
	s := p.S
	c := s.NewCube()
	for i := 0; i < p.F.NI; i++ {
		switch r.In[i] {
		case '0':
			s.Set(c, i, 0)
		case '1':
			s.Set(c, i, 1)
		case '-':
			s.SetAll(c, i)
		default:
			return nil, fmt.Errorf("invalid input char %q", r.In[i])
		}
	}
	for j, v := range r.SymIn {
		if v < 0 {
			s.SetAll(c, p.SymVars[j])
		} else {
			s.Set(c, p.SymVars[j], v)
		}
	}
	if r.Present < 0 {
		s.SetAll(c, p.StateVar)
	} else {
		s.Set(c, p.StateVar, r.Present)
	}
	return c, nil
}

// Minimize runs multiple-valued minimization on the symbolic cover and
// returns the minimized cover. With the 1-hot next state in the output
// part, this is the output-disjoint minimization of KISS: product terms
// merge exactly when they share next state and asserted outputs.
func (p *Problem) Minimize(opt espresso.Options) *cube.Cover {
	sctx, sp := obs.Span(opt.Ctx, "mvmin.minimize")
	opt.Ctx = sctx
	min := espresso.Minimize(p.On, p.Dc, opt)
	sp.End()
	return min
}

// Constraints extracts the weighted input constraints from a minimized
// multiple-valued cover: for every cube, the present-state literal with
// two or more (but not all) states is an input constraint; the weight of a
// constraint is the number of cubes asserting it. When the FSM has
// symbolic inputs, per-variable constraints are extracted the same way.
func (p *Problem) Constraints(min *cube.Cover) ConstraintSets {
	cs := ConstraintSets{
		States: p.varConstraints(min, p.StateVar, p.F.NumStates()),
	}
	for i, v := range p.SymVars {
		cs.SymIns = append(cs.SymIns, p.varConstraints(min, v, len(p.F.SymIns[i].Values)))
	}
	return cs
}

// ConstraintSets holds the input constraints per encoded variable.
type ConstraintSets struct {
	States []constraint.Constraint
	SymIns [][]constraint.Constraint
}

func (p *Problem) varConstraints(min *cube.Cover, v, n int) []constraint.Constraint {
	var raw []constraint.Constraint
	for _, c := range min.Cubes {
		parts := p.S.VarParts(c, v)
		if len(parts) < 2 || len(parts) == n {
			continue
		}
		set := constraint.NewSet(n)
		for _, q := range parts {
			set.Add(q)
		}
		raw = append(raw, constraint.Constraint{Set: set, Weight: 1})
	}
	return constraint.Normalize(raw)
}

// OneHotCubes returns the product-term cardinality of the 1-hot encoded
// FSM: the cardinality of the minimized multiple-valued cover (the 1-hot
// column of Table II), since under 1-hot encoding every multiple-valued
// literal is realizable as a face.
func (p *Problem) OneHotCubes(opt espresso.Options) int {
	return p.Minimize(opt).Len()
}
