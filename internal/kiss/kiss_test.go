package kiss

import (
	"strings"
	"testing"
)

const lionKiss = `
# four-state monitor
.i 2
.o 1
.s 4
.p 11
.r st0
-0 st0 st0 0
11 st0 st0 0
01 st0 st1 0
-1 st1 st1 1
10 st1 st2 1
00 st2 st2 1
-1 st2 st3 1
01 st3 st3 1
10 st3 st2 1
10 st2 st1 1
11 st3 st3 1
.e
`

func TestParseBasic(t *testing.T) {
	f, err := ParseString(lionKiss)
	if err != nil {
		t.Fatal(err)
	}
	if f.NI != 2 || f.NO != 1 {
		t.Fatalf("NI=%d NO=%d", f.NI, f.NO)
	}
	if f.NumStates() != 4 {
		t.Fatalf("states = %d, want 4", f.NumStates())
	}
	if f.NumTerms() != 11 {
		t.Fatalf("terms = %d, want 11", f.NumTerms())
	}
	if f.Reset != f.StateIndex("st0") || f.Reset < 0 {
		t.Fatalf("reset = %d", f.Reset)
	}
}

func TestParseRejectsBadWidth(t *testing.T) {
	_, err := ParseString(".i 2\n.o 1\n0 a b 1\n")
	if err == nil {
		t.Fatal("want error for width mismatch")
	}
}

func TestParseRejectsBadP(t *testing.T) {
	_, err := ParseString(".i 1\n.o 1\n.p 5\n0 a b 1\n")
	if err == nil {
		t.Fatal("want error for .p mismatch")
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := ParseString(".i 1\n.o 1\n.e\n"); err == nil {
		t.Fatal("want error for empty table")
	}
}

func TestParseRejectsUnknownDirective(t *testing.T) {
	if _, err := ParseString(".i 1\n.o 1\n.bogus x\n0 a b 1\n"); err == nil {
		t.Fatal("want error for unknown directive")
	}
}

func TestParseRejectsUnknownResetState(t *testing.T) {
	if _, err := ParseString(".i 1\n.o 1\n.r nowhere\n0 a b 1\n"); err == nil {
		t.Fatal("want error for unknown reset state")
	}
}

func TestRoundTrip(t *testing.T) {
	f, err := ParseString(lionKiss)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ParseString(f.String())
	if err != nil {
		t.Fatalf("reparsing our own output: %v", err)
	}
	if g.NumStates() != f.NumStates() || g.NumTerms() != f.NumTerms() || g.Reset != f.Reset {
		t.Fatal("round trip changed the machine shape")
	}
	for i := range f.Rows {
		if f.Rows[i].In != g.Rows[i].In || f.Rows[i].Present != g.Rows[i].Present ||
			f.Rows[i].Next != g.Rows[i].Next || f.Rows[i].Out != g.Rows[i].Out {
			t.Fatalf("row %d differs after round trip", i)
		}
	}
}

func TestDontCareNextState(t *testing.T) {
	f, err := ParseString(".i 1\n.o 1\n0 a * 1\n1 a b 0\n- b a -\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.Rows[0].Next != -1 {
		t.Fatal("next '*' should parse as -1")
	}
	if f.Rows[2].Out != "-" {
		t.Fatal("output '-' lost")
	}
}

func TestSymbolicInputs(t *testing.T) {
	f := New("proto", 1, 1)
	f.AddSymbolicInput("cmd", "rd", "wr", "idle")
	f.MustAddRow("0", "s0", "s1", "1", "rd")
	f.MustAddRow("1", "s0", "s0", "0", "-")
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(f.SymIns) != 1 || f.SymIns[0].Index("wr") != 1 {
		t.Fatal("symbolic input registration wrong")
	}
	if f.Rows[0].SymIn[0] != 0 || f.Rows[1].SymIn[0] != -1 {
		t.Fatal("symbolic values wrong")
	}
	if err := f.AddRow("0", "s0", "s1", "1", "bogus"); err == nil {
		t.Fatal("want error for unknown symbolic value")
	}
}

func TestDeterministic(t *testing.T) {
	f, _ := ParseString(lionKiss)
	if ok, why := f.Deterministic(); !ok {
		t.Fatalf("lion should be deterministic: %s", why)
	}
	g := New("nd", 1, 1)
	g.MustAddRow("0", "a", "b", "1")
	g.MustAddRow("-", "a", "c", "1")
	if ok, _ := g.Deterministic(); ok {
		t.Fatal("overlapping rows with different next states must be flagged")
	}
}

func TestReachableStates(t *testing.T) {
	f := New("r", 1, 1)
	f.MustAddRow("0", "a", "b", "0")
	f.MustAddRow("1", "b", "a", "0")
	f.MustAddRow("0", "orphan", "orphan", "1")
	f.SetReset("a")
	got := f.ReachableStates()
	if len(got) != 2 {
		t.Fatalf("reachable = %v, want 2 states", got)
	}
}

func TestStats(t *testing.T) {
	f, _ := ParseString(lionKiss)
	f.Name = "lion"
	st := f.Stats()
	if st.Name != "lion" || st.Inputs != 2 || st.Outputs != 1 || st.States != 4 || st.Terms != 11 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNextStateUsage(t *testing.T) {
	f, _ := ParseString(lionKiss)
	use := f.NextStateUsage()
	total := 0
	for _, u := range use {
		total += u
	}
	if total != 11 {
		t.Fatalf("usage total = %d, want 11", total)
	}
}

func TestPLAWriteAndCover(t *testing.T) {
	p := &PLA{NI: 3, NO: 2}
	if err := p.AddRow("01-", "1-"); err != nil {
		t.Fatal(err)
	}
	if err := p.AddRow("1--", "-1"); err != nil {
		t.Fatal(err)
	}
	if err := p.AddRow("0", "1"); err == nil {
		t.Fatal("want width error")
	}
	text := p.String()
	if !strings.Contains(text, ".i 3") || !strings.Contains(text, "01- 1-") {
		t.Fatalf("PLA text wrong:\n%s", text)
	}
	on := p.OnSet()
	if on.Len() != 2 {
		t.Fatalf("on-set has %d cubes", on.Len())
	}
	back, err := FromCover(on, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 2 || back.Rows[0].In != "01-" || back.Rows[0].Out != "1-" {
		t.Fatalf("FromCover round trip wrong: %+v", back.Rows)
	}
}

func TestAreaModel(t *testing.T) {
	// dk14-like check of the paper's formula: inputs=3, bits=6, out=5,
	// cubes=26 -> (2*(3+6)+6+5)*26 = 754... the paper's dk14 row uses
	// inputs+bits differently per example; just check the arithmetic.
	if got := Area(3, 6, 5, 26); got != (2*(3+6)+6+5)*26 {
		t.Fatalf("Area = %d", got)
	}
	if got := Area(2, 3, 1, 8); got != (2*(2+3)+3+1)*8 {
		t.Fatalf("Area = %d", got)
	}
}
