package kiss

import (
	"strings"
	"testing"
)

func TestParsePLABasic(t *testing.T) {
	p, err := ParsePLAString(".i 3\n.o 2\n.p 2\n110 10\n--1 01\n.e\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.NI != 3 || p.NO != 2 || len(p.Rows) != 2 {
		t.Fatalf("shape %d/%d/%d", p.NI, p.NO, len(p.Rows))
	}
	if p.Rows[1].In != "--1" || p.Rows[1].Out != "01" {
		t.Fatalf("row %+v", p.Rows[1])
	}
}

func TestParsePLAFusedRow(t *testing.T) {
	p, err := ParsePLAString(".i 2\n.o 1\n011\n.e\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Rows[0].In != "01" || p.Rows[0].Out != "1" {
		t.Fatalf("row %+v", p.Rows[0])
	}
}

func TestParsePLADCOutput(t *testing.T) {
	p, err := ParsePLAString(".i 1\n.o 2\n.type fd\n0 14\n.e\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Rows[0].Out != "1-" {
		t.Fatalf("espresso '4' marker not normalized: %q", p.Rows[0].Out)
	}
}

func TestParsePLAErrors(t *testing.T) {
	cases := []string{
		"0 1\n",                      // rows before header
		".i 1\n.o 1\n.p 5\n0 1\n.e",  // wrong .p
		".i 1\n.o 1\n.bogus\n0 1\n",  // unknown directive
		".i 1\n.o 1\nz 1\n",          // bad input char
		".i 1\n.o 1\n0 z\n",          // bad output char
		".i 1\n.o 1\n.type xyz\n0 1", // bad type
		".i 2\n.o 1\n0 1\n",          // width mismatch
	}
	for _, c := range cases {
		if _, err := ParsePLAString(c); err == nil {
			t.Fatalf("want error for %q", c)
		}
	}
}

func TestParsePLARoundTrip(t *testing.T) {
	text := ".i 4\n.o 3\n.p 3\n1-01 1--\n0--- -1-\n---- --1\n.e\n"
	p, err := ParsePLAString(text)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParsePLAString(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != len(p.Rows) {
		t.Fatal("row count changed")
	}
	for i := range p.Rows {
		if p.Rows[i] != q.Rows[i] {
			t.Fatalf("row %d changed: %+v vs %+v", i, p.Rows[i], q.Rows[i])
		}
	}
}

func TestSplitTypeFD(t *testing.T) {
	p, err := ParsePLAString(".i 2\n.o 2\n01 1-\n10 -1\n11 00\n.e\n")
	if err != nil {
		t.Fatal(err)
	}
	on, dc := p.Split()
	if len(on.Rows) != 2 {
		t.Fatalf("on rows = %d, want 2", len(on.Rows))
	}
	if len(dc.Rows) != 2 {
		t.Fatalf("dc rows = %d, want 2", len(dc.Rows))
	}
	if on.Rows[0].Out != "1-" || dc.Rows[0].Out != "-1" {
		t.Fatalf("split outputs wrong: %+v %+v", on.Rows[0], dc.Rows[0])
	}
	// The all-zero output row contributes to neither cover.
	for _, r := range append(on.Rows, dc.Rows...) {
		if strings.Count(r.Out, "1") == 0 {
			t.Fatal("row with no asserted output leaked into a cover")
		}
	}
}
