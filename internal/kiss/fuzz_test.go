package kiss

import (
	"testing"
)

// Fuzz targets for the two text parsers. Both assert the same two
// properties: no input may panic the parser, and any input that parses
// must round-trip — writing the parsed value and parsing it again yields
// the same serialized form (Write output is the canonical form, so the
// first Write settles normalization and the second must reproduce it).

func FuzzParseKISS2(f *testing.F) {
	for _, seed := range []string{
		".i 2\n.o 1\n.s 2\n.r s0\n00 s0 s0 0\n01 s0 s1 1\n1- s1 s0 1\n.e\n",
		".i 0\n.o 1\n.symin cmd read write idle\n- read a b 1\n- write b a 0\n- idle a a 0\n.e\n",
		".i 1\n.o 0\n.symout uop load store\n0 x y - load\n1 y x - store\n.e\n",
		".i 2\n.o 2\n.p 2\n-- a a 00\n11 a b 11\n.end\n",
		"# comment\n.i 1\n.o 1\n.s 1\n0 only only 1 # trailing\n.e\n",
		".i 1\n.o 1\n0 s0 * 1\n- s0 s0 0\n.e\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data string) {
		fsm, err := ParseString(data)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		first := fsm.String()
		again, err := ParseString(first)
		if err != nil {
			t.Fatalf("re-parse of written FSM failed: %v\ninput:\n%s\nwritten:\n%s", err, data, first)
		}
		if second := again.String(); second != first {
			t.Fatalf("round-trip unstable:\nfirst:\n%s\nsecond:\n%s", first, second)
		}
	})
}

func FuzzParsePLA(f *testing.F) {
	for _, seed := range []string{
		".i 2\n.o 2\n.p 2\n0- 10\n11 01\n.e\n",
		".i 3\n.o 1\n.type fd\n--- 1\n010 0\n1-1 -\n.e\n",
		".i 1\n.o 4\n.ilb a\n.ob w x y z\n0 1401\n.end\n",
		".i 0\n.o 1\n 1\n.e\n",
		"# pla comment\n.i 2\n.o 1\n00 1\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data string) {
		p, err := ParsePLAString(data)
		if err != nil {
			return
		}
		first := p.String()
		again, err := ParsePLAString(first)
		if err != nil {
			t.Fatalf("re-parse of written PLA failed: %v\ninput:\n%s\nwritten:\n%s", err, data, first)
		}
		if second := again.String(); second != first {
			t.Fatalf("round-trip unstable:\nfirst:\n%s\nsecond:\n%s", first, second)
		}
	})
}
