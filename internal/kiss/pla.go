package kiss

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"nova/internal/cube"
)

// PLA is a two-level sum-of-products implementation with binary inputs and
// outputs, the result of encoding an FSM. Inputs are the proper inputs
// followed by the encoded symbolic inputs and the present-state code bits;
// outputs are the next-state code bits followed by the proper outputs (the
// ordering used by the paper's area model is immaterial, only the counts
// matter).
type PLA struct {
	NI, NO int
	Rows   []PLARow
}

// PLARow is one product term: In over {'0','1','-'}, Out over {'0','1','-'}
// ('-' in the output means the term does not drive that output; '~' is not
// used).
type PLARow struct {
	In, Out string
}

// AddRow appends a product term after width validation.
func (p *PLA) AddRow(in, out string) error {
	if len(in) != p.NI || len(out) != p.NO {
		return fmt.Errorf("pla: row %q/%q does not match %d inputs / %d outputs", in, out, p.NI, p.NO)
	}
	p.Rows = append(p.Rows, PLARow{In: in, Out: out})
	return nil
}

// Write emits the PLA in espresso .pla format (type fd).
func (p *PLA) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".i %d\n.o %d\n.p %d\n", p.NI, p.NO, len(p.Rows))
	for _, r := range p.Rows {
		fmt.Fprintf(bw, "%s %s\n", r.In, r.Out)
	}
	fmt.Fprintln(bw, ".e")
	return bw.Flush()
}

// String renders the PLA as .pla text.
func (p *PLA) String() string {
	var b strings.Builder
	_ = p.Write(&b)
	return b.String()
}

// Structure returns the cube structure of the PLA: one binary variable per
// input and a single multiple-valued output variable with NO parts.
func (p *PLA) Structure() *cube.Structure {
	sizes := make([]int, p.NI+1)
	for i := 0; i < p.NI; i++ {
		sizes[i] = 2
	}
	sizes[p.NI] = p.NO
	return cube.NewStructure(sizes...)
}

// OnSet translates the PLA rows into an on-set cover over Structure():
// '1' output entries contribute the corresponding output part.
func (p *PLA) OnSet() *cube.Cover {
	s := p.Structure()
	on := cube.NewCover(s)
	for _, r := range p.Rows {
		c := s.NewCube()
		for i := 0; i < p.NI; i++ {
			switch r.In[i] {
			case '0':
				s.Set(c, i, 0)
			case '1':
				s.Set(c, i, 1)
			default:
				s.Set(c, i, 0)
				s.Set(c, i, 1)
			}
		}
		any := false
		for o := 0; o < p.NO; o++ {
			if r.Out[o] == '1' {
				s.Set(c, p.NI, o)
				any = true
			}
		}
		if any {
			on.Add(c)
		}
	}
	return on
}

// FromCover converts a cover over a structure of ni binary variables plus
// one no-valued output variable back into PLA rows.
func FromCover(f *cube.Cover, ni, no int) (*PLA, error) {
	s := f.S
	if s.NumVars() != ni+1 || s.Size(ni) != no {
		return nil, fmt.Errorf("pla: cover structure does not match %d inputs / %d outputs", ni, no)
	}
	for v := 0; v < ni; v++ {
		if s.Size(v) != 2 {
			return nil, fmt.Errorf("pla: cover variable %d is not binary", v)
		}
	}
	p := &PLA{NI: ni, NO: no}
	for _, c := range f.Cubes {
		in := make([]byte, ni)
		for v := 0; v < ni; v++ {
			zero, one := s.Test(c, v, 0), s.Test(c, v, 1)
			switch {
			case zero && one:
				in[v] = '-'
			case zero:
				in[v] = '0'
			case one:
				in[v] = '1'
			default:
				return nil, fmt.Errorf("pla: empty input field in cube")
			}
		}
		out := make([]byte, no)
		for o := 0; o < no; o++ {
			if s.Test(c, ni, o) {
				out[o] = '1'
			} else {
				out[o] = '-'
			}
		}
		if err := p.AddRow(string(in), string(out)); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Area returns the PLA area per the paper's model for an FSM encoded with
// bits state bits: (2*(#inputs + #bits) + #bits + #outputs) * #cubes, where
// #inputs and #outputs are the FSM's proper binary input/output counts.
// For FSMs with symbolic inputs, the encoded symbolic-input bits are part
// of #inputs as seen by the PLA; callers pass the total PLA input width
// minus the state bits.
func Area(properInputs, bits, properOutputs, cubes int) int {
	return (2*(properInputs+bits) + bits + properOutputs) * cubes
}
