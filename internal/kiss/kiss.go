// Package kiss implements the FSM model used throughout the reproduction,
// together with a reader and writer for the KISS2 state-transition-table
// format used by the MCNC benchmarks, and a minimal PLA container for the
// encoded two-level result.
//
// Beyond standard KISS2, the model supports symbolic (multiple-valued)
// proper input variables, as NOVA does: symbolic inputs are encoded jointly
// with the states.
package kiss

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Var is a symbolic (multiple-valued) variable with named values.
type Var struct {
	Name   string
	Values []string
}

// Index returns the index of value name in v, or -1 if absent.
func (v *Var) Index(name string) int {
	for i, s := range v.Values {
		if s == name {
			return i
		}
	}
	return -1
}

// Row is one symbolic implicant of the state-transition table.
type Row struct {
	// In is the binary proper-input pattern: one of '0', '1', '-' per input.
	In string
	// SymIn holds one value index per symbolic input variable; -1 means the
	// row applies to every value of that variable.
	SymIn []int
	// Present is the present-state index, or -1 for "any state".
	Present int
	// Next is the next-state index, or -1 when the next state is
	// unspecified (written '*' in KISS2 extensions).
	Next int
	// Out is the binary output pattern: one of '0', '1', '-' per output.
	Out string
	// SymOut holds one value index per symbolic output variable; -1 means
	// the row leaves that output unspecified.
	SymOut []int
}

// FSM is a finite state machine given as a state transition table. Proper
// inputs and outputs may be binary or symbolic (multiple-valued); NOVA
// encodes symbolic inputs jointly with the states, and symbolic outputs by
// output-covering analysis (the extension announced as future work in the
// paper's Section VII).
type FSM struct {
	Name    string
	NI      int // number of binary proper inputs
	NO      int // number of binary proper outputs
	SymIns  []Var
	SymOuts []Var
	States  []string
	Reset   int // reset state index, or -1
	Rows    []Row
	nameIdx map[string]int
}

// New returns an empty FSM with the given name and numbers of binary
// inputs and outputs.
func New(name string, ni, no int) *FSM {
	return &FSM{Name: name, NI: ni, NO: no, Reset: -1, nameIdx: map[string]int{}}
}

// NumStates returns the number of distinct states.
func (f *FSM) NumStates() int { return len(f.States) }

// NumTerms returns the number of rows (symbolic implicants).
func (f *FSM) NumTerms() int { return len(f.Rows) }

// State returns the index of the named state, adding it if new.
func (f *FSM) State(name string) int {
	if f.nameIdx == nil {
		f.nameIdx = map[string]int{}
		for i, s := range f.States {
			f.nameIdx[s] = i
		}
	}
	if i, ok := f.nameIdx[name]; ok {
		return i
	}
	i := len(f.States)
	f.States = append(f.States, name)
	f.nameIdx[name] = i
	return i
}

// StateIndex returns the index of the named state, or -1 if absent.
func (f *FSM) StateIndex(name string) int {
	if f.nameIdx == nil {
		f.nameIdx = map[string]int{}
		for i, s := range f.States {
			f.nameIdx[s] = i
		}
	}
	if i, ok := f.nameIdx[name]; ok {
		return i
	}
	return -1
}

// AddSymbolicInput declares a symbolic input variable and returns its index.
func (f *FSM) AddSymbolicInput(name string, values ...string) int {
	f.SymIns = append(f.SymIns, Var{Name: name, Values: append([]string(nil), values...)})
	return len(f.SymIns) - 1
}

// AddSymbolicOutput declares a symbolic output variable and returns its
// index. Rows of an FSM with symbolic outputs are added with AddRowSym.
func (f *FSM) AddSymbolicOutput(name string, values ...string) int {
	f.SymOuts = append(f.SymOuts, Var{Name: name, Values: append([]string(nil), values...)})
	return len(f.SymOuts) - 1
}

// AddRow appends a transition. in and out use the characters 0/1/-; present
// and next are state names (next may be "*" for unspecified). symIn gives
// one value name per symbolic input ("-" for any); it may be nil when the
// FSM has no symbolic inputs. FSMs with symbolic outputs use AddRowSym.
func (f *FSM) AddRow(in string, present, next, out string, symIn ...string) error {
	if len(f.SymOuts) != 0 {
		return fmt.Errorf("kiss: FSM has symbolic outputs; use AddRowSym")
	}
	return f.AddRowSym(in, symIn, present, next, out, nil)
}

// AddRowSym appends a transition of a machine with symbolic inputs and/or
// outputs: symIn gives one value name per symbolic input ("-" for any),
// symOut one value name per symbolic output ("-" for unspecified).
func (f *FSM) AddRowSym(in string, symIn []string, present, next, out string, symOut []string) error {
	if len(in) != f.NI {
		return fmt.Errorf("kiss: row input %q has %d fields, FSM has %d inputs", in, len(in), f.NI)
	}
	if len(out) != f.NO {
		return fmt.Errorf("kiss: row output %q has %d fields, FSM has %d outputs", out, len(out), f.NO)
	}
	if len(symIn) != len(f.SymIns) {
		return fmt.Errorf("kiss: row has %d symbolic inputs, FSM has %d", len(symIn), len(f.SymIns))
	}
	if len(symOut) != len(f.SymOuts) {
		return fmt.Errorf("kiss: row has %d symbolic outputs, FSM has %d", len(symOut), len(f.SymOuts))
	}
	for _, c := range in {
		if c != '0' && c != '1' && c != '-' {
			return fmt.Errorf("kiss: invalid input character %q", c)
		}
	}
	for _, c := range out {
		if c != '0' && c != '1' && c != '-' {
			return fmt.Errorf("kiss: invalid output character %q", c)
		}
	}
	r := Row{In: in, Out: out}
	for i, v := range symIn {
		if v == "-" || v == "*" {
			r.SymIn = append(r.SymIn, -1)
			continue
		}
		idx := f.SymIns[i].Index(v)
		if idx < 0 {
			return fmt.Errorf("kiss: unknown value %q of symbolic input %s", v, f.SymIns[i].Name)
		}
		r.SymIn = append(r.SymIn, idx)
	}
	for i, v := range symOut {
		if v == "-" || v == "*" {
			r.SymOut = append(r.SymOut, -1)
			continue
		}
		idx := f.SymOuts[i].Index(v)
		if idx < 0 {
			return fmt.Errorf("kiss: unknown value %q of symbolic output %s", v, f.SymOuts[i].Name)
		}
		r.SymOut = append(r.SymOut, idx)
	}
	if present == "-" || present == "*" {
		r.Present = -1
	} else {
		r.Present = f.State(present)
	}
	if next == "*" {
		r.Next = -1
	} else {
		r.Next = f.State(next)
	}
	f.Rows = append(f.Rows, r)
	return nil
}

// MustAddRow is AddRow panicking on error, for table literals in tests and
// generators.
func (f *FSM) MustAddRow(in, present, next, out string, symIn ...string) {
	if err := f.AddRow(in, present, next, out, symIn...); err != nil {
		panic(err)
	}
}

// MustAddRowSym is AddRowSym panicking on error.
func (f *FSM) MustAddRowSym(in string, symIn []string, present, next, out string, symOut []string) {
	if err := f.AddRowSym(in, symIn, present, next, out, symOut); err != nil {
		panic(err)
	}
}

// SetReset sets the reset state by name (adding it if new).
func (f *FSM) SetReset(name string) { f.Reset = f.State(name) }

// Parse reads a KISS2 state transition table.
func Parse(r io.Reader) (*FSM, error) {
	f := New("", 0, 0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	declaredP := -1
	var resetName string
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if strings.HasPrefix(fields[0], ".") {
			switch fields[0] {
			case ".i", ".o", ".s", ".p":
				if len(fields) != 2 {
					return nil, fmt.Errorf("kiss: line %d: %s wants one argument", line, fields[0])
				}
				n, err := strconv.Atoi(fields[1])
				if err != nil {
					return nil, fmt.Errorf("kiss: line %d: %v", line, err)
				}
				switch fields[0] {
				case ".i":
					f.NI = n
				case ".o":
					f.NO = n
				case ".s":
					// advisory; checked at the end
				case ".p":
					declaredP = n
				}
			case ".r":
				if len(fields) != 2 {
					return nil, fmt.Errorf("kiss: line %d: .r wants one argument", line)
				}
				resetName = fields[1]
			case ".e", ".end":
				// terminator
			case ".symin", ".symout":
				// Extension: declare a symbolic input/output variable with
				// its value names. Rows then carry one extra field per
				// symbolic variable (inputs after the binary input field,
				// outputs after the binary output field).
				if len(fields) < 3 {
					return nil, fmt.Errorf("kiss: line %d: %s wants a name and at least one value", line, fields[0])
				}
				if fields[0] == ".symin" {
					f.AddSymbolicInput(fields[1], fields[2:]...)
				} else {
					f.AddSymbolicOutput(fields[1], fields[2:]...)
				}
			case ".ilb", ".ob", ".latch", ".type":
				// tolerated extensions; ignored
			default:
				return nil, fmt.Errorf("kiss: line %d: unknown directive %s", line, fields[0])
			}
			continue
		}
		want := 4 + len(f.SymIns) + len(f.SymOuts)
		if len(fields) != want {
			return nil, fmt.Errorf("kiss: line %d: want %d fields, got %d", line, want, len(fields))
		}
		nsi := len(f.SymIns)
		symIn := fields[1 : 1+nsi]
		present, next := fields[1+nsi], fields[2+nsi]
		out := fields[3+nsi]
		symOut := fields[4+nsi:]
		in := fields[0]
		if f.NI == 0 && in == "-" {
			in = ""
		}
		if err := f.AddRowSym(in, symIn, present, next, out, symOut); err != nil {
			return nil, fmt.Errorf("kiss: line %d: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if resetName != "" {
		if f.StateIndex(resetName) < 0 {
			return nil, fmt.Errorf("kiss: reset state %q not mentioned in any row", resetName)
		}
		f.Reset = f.StateIndex(resetName)
	}
	if declaredP >= 0 && declaredP != len(f.Rows) {
		return nil, fmt.Errorf("kiss: .p declares %d rows, table has %d", declaredP, len(f.Rows))
	}
	if len(f.Rows) == 0 {
		return nil, fmt.Errorf("kiss: empty state table")
	}
	return f, nil
}

// ParseString parses a KISS2 table held in a string.
func ParseString(s string) (*FSM, error) { return Parse(strings.NewReader(s)) }

// Write emits the FSM as KISS2. Symbolic inputs, if any, are emitted as
// extra columns after the binary input field (a documented extension).
func (f *FSM) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".i %d\n.o %d\n.p %d\n.s %d\n", f.NI, f.NO, len(f.Rows), len(f.States))
	for _, v := range f.SymIns {
		fmt.Fprintf(bw, ".symin %s %s", v.Name, strings.Join(v.Values, " "))
		fmt.Fprintln(bw)
	}
	for _, v := range f.SymOuts {
		fmt.Fprintf(bw, ".symout %s %s", v.Name, strings.Join(v.Values, " "))
		fmt.Fprintln(bw)
	}
	if f.Reset >= 0 {
		fmt.Fprintf(bw, ".r %s\n", f.States[f.Reset])
	}
	for _, r := range f.Rows {
		in := r.In
		if f.NI == 0 {
			in = "-"
		}
		fmt.Fprintf(bw, "%s", in)
		for i, v := range r.SymIn {
			if v < 0 {
				fmt.Fprintf(bw, " -")
			} else {
				fmt.Fprintf(bw, " %s", f.SymIns[i].Values[v])
			}
		}
		ps := "*"
		if r.Present >= 0 {
			ps = f.States[r.Present]
		}
		ns := "*"
		if r.Next >= 0 {
			ns = f.States[r.Next]
		}
		fmt.Fprintf(bw, " %s %s %s", ps, ns, r.Out)
		for i, v := range r.SymOut {
			if v < 0 {
				fmt.Fprintf(bw, " -")
			} else {
				fmt.Fprintf(bw, " %s", f.SymOuts[i].Values[v])
			}
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintln(bw, ".e")
	return bw.Flush()
}

// String renders the FSM as KISS2 text.
func (f *FSM) String() string {
	var b strings.Builder
	_ = f.Write(&b)
	return b.String()
}

// Stats summarizes an FSM for the benchmark tables.
type Stats struct {
	Name    string
	Inputs  int // binary inputs
	SymIns  int // symbolic input variables
	Outputs int
	SymOuts int // symbolic output variables
	States  int
	Terms   int
}

// Stats returns the benchmark statistics of the FSM.
func (f *FSM) Stats() Stats {
	return Stats{
		Name:    f.Name,
		Inputs:  f.NI,
		SymIns:  len(f.SymIns),
		Outputs: f.NO,
		SymOuts: len(f.SymOuts),
		States:  len(f.States),
		Terms:   len(f.Rows),
	}
}

// NextStateUsage returns, per state, how many rows have it as next state.
func (f *FSM) NextStateUsage() []int {
	use := make([]int, len(f.States))
	for _, r := range f.Rows {
		if r.Next >= 0 {
			use[r.Next]++
		}
	}
	return use
}

// SortedStateNames returns the state names in index order (a copy).
func (f *FSM) SortedStateNames() []string {
	out := append([]string(nil), f.States...)
	return out
}

// Validate performs structural sanity checks: state indexes in range,
// row field widths consistent.
func (f *FSM) Validate() error {
	for i, r := range f.Rows {
		if len(r.In) != f.NI {
			return fmt.Errorf("kiss: row %d: input width %d != %d", i, len(r.In), f.NI)
		}
		if len(r.Out) != f.NO {
			return fmt.Errorf("kiss: row %d: output width %d != %d", i, len(r.Out), f.NO)
		}
		if r.Present < -1 || r.Present >= len(f.States) {
			return fmt.Errorf("kiss: row %d: present state %d out of range", i, r.Present)
		}
		if r.Next < -1 || r.Next >= len(f.States) {
			return fmt.Errorf("kiss: row %d: next state %d out of range", i, r.Next)
		}
		if len(r.SymIn) != len(f.SymIns) {
			return fmt.Errorf("kiss: row %d: %d symbolic inputs, FSM has %d", i, len(r.SymIn), len(f.SymIns))
		}
		for j, v := range r.SymIn {
			if v < -1 || v >= len(f.SymIns[j].Values) {
				return fmt.Errorf("kiss: row %d: symbolic input %d value %d out of range", i, j, v)
			}
		}
		if len(r.SymOut) != len(f.SymOuts) {
			return fmt.Errorf("kiss: row %d: %d symbolic outputs, FSM has %d", i, len(r.SymOut), len(f.SymOuts))
		}
		for j, v := range r.SymOut {
			if v < -1 || v >= len(f.SymOuts[j].Values) {
				return fmt.Errorf("kiss: row %d: symbolic output %d value %d out of range", i, j, v)
			}
		}
	}
	return nil
}

// Deterministic reports whether no two rows with intersecting activation
// conditions (inputs, symbolic inputs and present state) disagree on next
// state or on a specified output bit. It returns a description of the first
// conflict found.
func (f *FSM) Deterministic() (bool, string) {
	inter := func(a, b Row) bool {
		for k := 0; k < f.NI; k++ {
			x, y := a.In[k], b.In[k]
			if x != '-' && y != '-' && x != y {
				return false
			}
		}
		for k := range a.SymIn {
			if a.SymIn[k] >= 0 && b.SymIn[k] >= 0 && a.SymIn[k] != b.SymIn[k] {
				return false
			}
		}
		if a.Present >= 0 && b.Present >= 0 && a.Present != b.Present {
			return false
		}
		return true
	}
	for i := 0; i < len(f.Rows); i++ {
		for j := i + 1; j < len(f.Rows); j++ {
			a, b := f.Rows[i], f.Rows[j]
			if !inter(a, b) {
				continue
			}
			if a.Next >= 0 && b.Next >= 0 && a.Next != b.Next {
				return false, fmt.Sprintf("rows %d and %d overlap with different next states", i, j)
			}
			for k := 0; k < f.NO; k++ {
				x, y := a.Out[k], b.Out[k]
				if x != '-' && y != '-' && x != y {
					return false, fmt.Sprintf("rows %d and %d overlap with conflicting output %d", i, j, k)
				}
			}
			for k := range a.SymOut {
				if a.SymOut[k] >= 0 && b.SymOut[k] >= 0 && a.SymOut[k] != b.SymOut[k] {
					return false, fmt.Sprintf("rows %d and %d overlap with conflicting symbolic output %d", i, j, k)
				}
			}
		}
	}
	return true, ""
}

// ReachableStates returns the states reachable from the reset state (or
// state 0 when no reset is declared) following rows as edges.
func (f *FSM) ReachableStates() []int {
	start := f.Reset
	if start < 0 {
		start = 0
	}
	seen := map[int]bool{start: true}
	queue := []int{start}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, r := range f.Rows {
			if (r.Present == s || r.Present < 0) && r.Next >= 0 && !seen[r.Next] {
				seen[r.Next] = true
				queue = append(queue, r.Next)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}
