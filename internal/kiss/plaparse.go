package kiss

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParsePLA reads a two-level cover in espresso's .pla format. Supported
// directives: .i, .o, .p (advisory), .ilb/.ob (ignored), .type (fd and f
// accepted), .e/.end. Output characters: 1 (on), 0 and - ('not driven');
// 4 (don't-care) is accepted and treated as '-'.
func ParsePLA(r io.Reader) (*PLA, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	p := &PLA{NI: -1, NO: -1}
	declaredP := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if strings.HasPrefix(fields[0], ".") {
			switch fields[0] {
			case ".i", ".o", ".p":
				if len(fields) != 2 {
					return nil, fmt.Errorf("pla: line %d: %s wants one argument", line, fields[0])
				}
				n, err := strconv.Atoi(fields[1])
				if err != nil {
					return nil, fmt.Errorf("pla: line %d: %v", line, err)
				}
				switch fields[0] {
				case ".i":
					p.NI = n
				case ".o":
					p.NO = n
				default:
					declaredP = n
				}
			case ".type":
				if len(fields) == 2 && fields[1] != "fd" && fields[1] != "f" && fields[1] != "fr" {
					return nil, fmt.Errorf("pla: line %d: unsupported type %s", line, fields[1])
				}
			case ".ilb", ".ob", ".lb":
				// names; ignored
			case ".e", ".end":
				// terminator
			default:
				return nil, fmt.Errorf("pla: line %d: unknown directive %s", line, fields[0])
			}
			continue
		}
		if p.NI < 0 || p.NO < 0 {
			return nil, fmt.Errorf("pla: line %d: product term before .i/.o", line)
		}
		// Input and output fields may be space-separated or fused.
		var in, out string
		switch len(fields) {
		case 2:
			in, out = fields[0], fields[1]
		case 1:
			if len(fields[0]) != p.NI+p.NO {
				return nil, fmt.Errorf("pla: line %d: row width %d != %d", line, len(fields[0]), p.NI+p.NO)
			}
			in, out = fields[0][:p.NI], fields[0][p.NI:]
		default:
			in = strings.Join(fields[:len(fields)-1], "")
			out = fields[len(fields)-1]
		}
		for _, c := range in {
			if c != '0' && c != '1' && c != '-' {
				return nil, fmt.Errorf("pla: line %d: bad input char %q", line, c)
			}
		}
		outB := []byte(out)
		for i, c := range outB {
			switch c {
			case '0', '1', '-':
			case '4', '2': // espresso dc markers
				outB[i] = '-'
			default:
				return nil, fmt.Errorf("pla: line %d: bad output char %q", line, c)
			}
		}
		if err := p.AddRow(in, string(outB)); err != nil {
			return nil, fmt.Errorf("pla: line %d: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p.NI < 0 || p.NO < 0 {
		return nil, fmt.Errorf("pla: missing .i/.o header")
	}
	if declaredP >= 0 && declaredP != len(p.Rows) {
		return nil, fmt.Errorf("pla: .p declares %d rows, file has %d", declaredP, len(p.Rows))
	}
	return p, nil
}

// ParsePLAString parses a .pla held in a string.
func ParsePLAString(s string) (*PLA, error) { return ParsePLA(strings.NewReader(s)) }

// Split separates the PLA into on-set and don't-care rows per espresso's
// type-fd semantics: '1' entries are on-set, '-' entries don't-care; each
// row may contribute to both covers.
func (p *PLA) Split() (on, dc *PLA) {
	on = &PLA{NI: p.NI, NO: p.NO}
	dc = &PLA{NI: p.NI, NO: p.NO}
	for _, r := range p.Rows {
		hasOn, hasDC := false, false
		onOut := make([]byte, p.NO)
		dcOut := make([]byte, p.NO)
		for i := 0; i < p.NO; i++ {
			onOut[i], dcOut[i] = '-', '-'
			switch r.Out[i] {
			case '1':
				onOut[i] = '1'
				hasOn = true
			case '-':
				dcOut[i] = '1'
				hasDC = true
			}
		}
		if hasOn {
			_ = on.AddRow(r.In, string(onOut))
		}
		if hasDC {
			_ = dc.AddRow(r.In, string(dcOut))
		}
	}
	return on, dc
}
