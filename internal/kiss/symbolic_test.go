package kiss

import (
	"strings"
	"testing"
)

func symbolicFSM(t *testing.T) *FSM {
	t.Helper()
	f := New("sym", 1, 1)
	f.AddSymbolicInput("cmd", "rd", "wr")
	f.AddSymbolicOutput("phase", "p0", "p1", "p2")
	add := func(in string, si []string, ps, ns, out string, so []string) {
		t.Helper()
		if err := f.AddRowSym(in, si, ps, ns, out, so); err != nil {
			t.Fatal(err)
		}
	}
	add("0", []string{"rd"}, "a", "b", "1", []string{"p0"})
	add("0", []string{"wr"}, "a", "a", "0", []string{"p1"})
	add("1", []string{"-"}, "a", "c", "0", []string{"p2"})
	add("-", []string{"-"}, "b", "a", "1", []string{"-"})
	add("-", []string{"rd"}, "c", "b", "0", []string{"p0"})
	add("-", []string{"wr"}, "c", "c", "1", []string{"p1"})
	f.SetReset("a")
	return f
}

func TestSymbolicRoundTrip(t *testing.T) {
	f := symbolicFSM(t)
	text := f.String()
	if !strings.Contains(text, ".symin cmd rd wr") || !strings.Contains(text, ".symout phase p0 p1 p2") {
		t.Fatalf("directives missing:\n%s", text)
	}
	g, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if len(g.SymIns) != 1 || len(g.SymOuts) != 1 {
		t.Fatal("symbolic variables lost")
	}
	if g.NumTerms() != f.NumTerms() || g.NumStates() != f.NumStates() {
		t.Fatal("shape changed")
	}
	for i := range f.Rows {
		a, b := f.Rows[i], g.Rows[i]
		if a.In != b.In || a.Present != b.Present || a.Next != b.Next || a.Out != b.Out {
			t.Fatalf("row %d basic fields differ", i)
		}
		if a.SymIn[0] != b.SymIn[0] || a.SymOut[0] != b.SymOut[0] {
			t.Fatalf("row %d symbolic fields differ", i)
		}
	}
}

func TestAddRowRejectsWithSymOuts(t *testing.T) {
	f := New("x", 1, 1)
	f.AddSymbolicOutput("o", "a", "b")
	if err := f.AddRow("0", "s", "s", "1"); err == nil {
		t.Fatal("AddRow must be rejected when symbolic outputs exist")
	}
}

func TestAddRowSymValidation(t *testing.T) {
	f := New("x", 1, 1)
	f.AddSymbolicOutput("o", "a", "b")
	if err := f.AddRowSym("0", nil, "s", "s", "1", []string{"zzz"}); err == nil {
		t.Fatal("unknown symbolic output value must fail")
	}
	if err := f.AddRowSym("0", nil, "s", "s", "1", nil); err == nil {
		t.Fatal("missing symbolic output field must fail")
	}
}

func TestDeterministicSymOutConflict(t *testing.T) {
	f := New("x", 1, 1)
	f.AddSymbolicOutput("o", "a", "b")
	if err := f.AddRowSym("-", nil, "s", "s", "1", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddRowSym("0", nil, "s", "s", "1", []string{"b"}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := f.Deterministic(); ok {
		t.Fatal("conflicting symbolic outputs not flagged")
	}
}

func TestValidateSymOutRange(t *testing.T) {
	f := symbolicFSM(t)
	f.Rows[0].SymOut[0] = 99
	if err := f.Validate(); err == nil {
		t.Fatal("out-of-range symbolic output not caught")
	}
}

func FuzzParse(f *testing.F) {
	f.Add(".i 1\n.o 1\n0 a b 1\n1 b a 0\n.e\n")
	f.Add(".i 2\n.o 2\n.s 2\n.r x\n-- x y 01\n01 y x 1-\n.e\n")
	f.Add(".i 1\n.o 1\n.symin c u v\n.symout o p q\n0 u a b 1 p\n1 - b a 0 -\n.e\n")
	f.Add(".i 0\n.o 1\n- a a 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		fsm, err := ParseString(input)
		if err != nil {
			return
		}
		// Whatever parses must validate and round-trip through Write.
		if verr := fsm.Validate(); verr != nil {
			t.Fatalf("parsed FSM fails validation: %v\ninput: %q", verr, input)
		}
		if _, rerr := ParseString(fsm.String()); rerr != nil {
			t.Fatalf("round trip failed: %v\noutput: %q", rerr, fsm.String())
		}
	})
}
