package verify

import (
	"testing"

	"nova/internal/encoding"
	"nova/internal/kiss"
)

func TestRandomWalkCounter(t *testing.T) {
	f := counterFSM(t)
	asg := encoding.Assignment{States: encoding.Encoding{Bits: 2, Codes: []uint64{0, 1, 3, 2}}}
	cov, err := buildCover(f, asg)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := RandomWalk(f, asg, cov, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 200 {
		t.Fatalf("trace has %d steps, want 200 (fully specified machine)", len(trace))
	}
}

func TestRandomWalkCatchesCorruption(t *testing.T) {
	f := counterFSM(t)
	asg := encoding.Assignment{States: encoding.Encoding{Bits: 2, Codes: []uint64{0, 1, 3, 2}}}
	cov, err := buildCover(f, asg)
	if err != nil {
		t.Fatal(err)
	}
	cov.Cubes = cov.Cubes[1:]
	if _, err := RandomWalk(f, asg, cov, 200, 1); err == nil {
		t.Fatal("walk over a corrupted cover should fail")
	}
}

func TestRunSequenceStopsAtUnspecified(t *testing.T) {
	// A two-state machine where the dead state has no outgoing rows: the
	// walk must stop after entering it.
	g := newPartial(t)
	asg := encoding.Assignment{States: encoding.Encoding{Bits: 1, Codes: []uint64{0, 1}}}
	cov, err := buildCover(g, asg)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := RunSequence(g, asg, cov, []uint64{1, 0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 1 {
		t.Fatalf("trace has %d steps, want 1 (stops at unspecified)", len(trace))
	}
}

func newPartial(t *testing.T) *kiss.FSM {
	t.Helper()
	g := kiss.New("partialwalk", 1, 1)
	g.MustAddRow("0", "live", "live", "0")
	g.MustAddRow("1", "live", "dead", "1")
	// "dead" has no outgoing rows at all.
	g.SetReset("live")
	return g
}
