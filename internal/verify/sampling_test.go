package verify

import (
	"fmt"
	"math/rand"
	"testing"

	"nova/internal/cube"
	"nova/internal/encoding"
	"nova/internal/espresso"
	"nova/internal/kiss"
	"nova/internal/mvmin"
)

// buildCover encodes and minimizes an FSM for the sampling tests.
func buildCover(f *kiss.FSM, asg encoding.Assignment) (*cube.Cover, error) {
	e, err := mvmin.EncodePLA(f, asg)
	if err != nil {
		return nil, err
	}
	return e.Minimize(espresso.Options{}), nil
}

// wideFSM has more inputs than the exhaustive threshold so Equivalent
// exercises the sampling path.
func wideFSM(t *testing.T) *kiss.FSM {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	f := kiss.New("wide", 4, 1)
	states := []string{"w0", "w1", "w2"}
	for _, s := range states {
		// Fully specified via four input cubes on the first two bits.
		for v := 0; v < 4; v++ {
			in := fmt.Sprintf("%d%d--", v&1, v>>1)
			f.MustAddRow(in, s, states[rng.Intn(3)], fmt.Sprintf("%d", rng.Intn(2)))
		}
	}
	return f
}

func TestEquivalentSamplingMode(t *testing.T) {
	f := wideFSM(t)
	asg := encoding.Assignment{States: encoding.Encoding{Bits: 2, Codes: []uint64{0, 1, 2}}}
	if err := EquivalentFSM(f, asg, Options{MaxExhaustiveInputs: 2, Samples: 32, Seed: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestEquivalentSamplingCatchesBadCover(t *testing.T) {
	f := wideFSM(t)
	asg := encoding.Assignment{States: encoding.Encoding{Bits: 2, Codes: []uint64{0, 1, 2}}}
	e, err := buildCover(f, asg)
	if err != nil {
		t.Fatal(err)
	}
	// Drop half the cover: sampling must notice.
	e.Cubes = e.Cubes[:len(e.Cubes)/2]
	if err := Equivalent(f, asg, e, Options{MaxExhaustiveInputs: 2, Samples: 64, Seed: 5}); err == nil {
		t.Fatal("sampling missed a gutted cover")
	}
}

func TestEquivalentStructureMismatch(t *testing.T) {
	f := wideFSM(t)
	asg := encoding.Assignment{States: encoding.Encoding{Bits: 2, Codes: []uint64{0, 1, 2}}}
	e, err := buildCover(f, asg)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong assignment shape vs cover.
	bad := encoding.Assignment{States: encoding.Encoding{Bits: 3, Codes: []uint64{0, 1, 2}}}
	if err := Equivalent(f, bad, e, Options{}); err == nil {
		t.Fatal("structure mismatch not reported")
	}
}

func TestEvalCover(t *testing.T) {
	f := wideFSM(t)
	asg := encoding.Assignment{States: encoding.Encoding{Bits: 2, Codes: []uint64{0, 1, 2}}}
	cov, err := buildCover(f, asg)
	if err != nil {
		t.Fatal(err)
	}
	nin := f.NI + asg.States.Bits
	out := EvalCover(cov, nin, 0)
	if len(out) != asg.States.Bits+f.NO {
		t.Fatalf("output width %d", len(out))
	}
}
