// Package verify checks encodings end-to-end: it simulates the symbolic
// FSM row-by-row, evaluates the encoded two-level cover, and confirms that
// the encoded machine computes the same next state and outputs on every
// (input, state) combination (exhaustively for small input spaces, by
// seeded sampling otherwise). It also provides checkers for constraint
// satisfaction used by the tests and the benchmark harness.
package verify

import (
	"context"
	"fmt"
	"math/rand"

	"nova/internal/cube"
	"nova/internal/encoding"
	"nova/internal/espresso"
	"nova/internal/kiss"
	"nova/internal/mvmin"
)

// Expected is the symbolic simulation outcome for one total input.
type Expected struct {
	Next   int    // next state, -1 when unspecified
	Out    []byte // per output: '0', '1' or '-' (unspecified)
	SymOut []int  // per symbolic output: value index, -1 when unspecified
}

// Simulate evaluates the FSM's table at a total input: in holds one bit
// per proper input, symVals one value index per symbolic input, state the
// present state. Overlapping rows are resolved by union of asserted
// outputs (the cover semantics of a PLA); conflicting next states make the
// result the first row's (deterministic tables never conflict).
func Simulate(f *kiss.FSM, in uint64, symVals []int, state int) Expected {
	exp := Expected{Next: -1, Out: make([]byte, f.NO), SymOut: make([]int, len(f.SymOuts))}
	for o := range exp.Out {
		exp.Out[o] = '-'
	}
	for j := range exp.SymOut {
		exp.SymOut[j] = -1
	}
	matched := false
	for _, r := range f.Rows {
		if r.Present >= 0 && r.Present != state {
			continue
		}
		ok := true
		for i := 0; i < f.NI; i++ {
			bit := byte('0')
			if in&(1<<uint(i)) != 0 {
				bit = '1'
			}
			if r.In[i] != '-' && r.In[i] != bit {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for j, v := range r.SymIn {
			if v >= 0 && v != symVals[j] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		matched = true
		if exp.Next < 0 {
			exp.Next = r.Next
		}
		for o := 0; o < f.NO; o++ {
			switch r.Out[o] {
			case '1':
				exp.Out[o] = '1'
			case '0':
				if exp.Out[o] == '-' {
					exp.Out[o] = '0'
				}
			}
		}
		for j, v := range r.SymOut {
			if v >= 0 && exp.SymOut[j] < 0 {
				exp.SymOut[j] = v
			}
		}
	}
	if matched {
		// Unasserted outputs of matched inputs are 0 in a PLA.
		for o := range exp.Out {
			if exp.Out[o] == '-' {
				exp.Out[o] = '0'
			}
		}
	}
	return exp
}

// EvalCover evaluates a multi-output cover (structure: nin binary
// variables plus one output variable) at the binary input point and
// returns the asserted output bits.
func EvalCover(cov *cube.Cover, nin int, point uint64) []bool {
	s := cov.S
	nout := s.Size(nin)
	out := make([]bool, nout)
	for _, c := range cov.Cubes {
		hit := true
		for i := 0; i < nin; i++ {
			bit := 0
			if point&(1<<uint(i)) != 0 {
				bit = 1
			}
			if !s.Test(c, i, bit) {
				hit = false
				break
			}
		}
		if !hit {
			continue
		}
		for o := 0; o < nout; o++ {
			if s.Test(c, nin, o) {
				out[o] = true
			}
		}
	}
	return out
}

// Options tunes the equivalence check.
type Options struct {
	// Ctx, when non-nil, is polled between states of the simulation sweep
	// and passed down into the minimization; on cancellation the check
	// returns the context error.
	Ctx context.Context
	// MaxExhaustiveInputs is the largest proper-input width checked
	// exhaustively; wider machines are sampled. Default 10.
	MaxExhaustiveInputs int
	// Samples is the number of random input vectors per state in sampling
	// mode. Default 64.
	Samples int
	// Seed drives sampling.
	Seed int64
}

// Equivalent checks that the minimized encoded cover implements the FSM
// under the assignment: for every (input, symbolic input, state) it
// compares next-state code and outputs against the symbolic simulation.
// It returns an error describing the first mismatch.
func Equivalent(f *kiss.FSM, asg encoding.Assignment, cov *cube.Cover, opt Options) error {
	if opt.MaxExhaustiveInputs <= 0 {
		opt.MaxExhaustiveInputs = 10
	}
	if opt.Samples <= 0 {
		opt.Samples = 64
	}
	nin := f.NI + asg.InputBits() + asg.States.Bits
	if cov.S.NumVars() != nin+1 {
		return fmt.Errorf("verify: cover has %d vars, want %d", cov.S.NumVars(), nin+1)
	}
	sb := asg.States.Bits

	symCount := 1
	for _, v := range f.SymIns {
		symCount *= len(v.Values)
	}

	check := func(in uint64, symVals []int, st int) error {
		exp := Simulate(f, in, symVals, st)
		// Build the encoded input point.
		point := in
		shift := uint(f.NI)
		for j, v := range symVals {
			point |= asg.SymIns[j].Codes[v] << shift
			shift += uint(asg.SymIns[j].Bits)
		}
		point |= asg.States.Codes[st] << shift
		got := EvalCover(cov, nin, point)
		if exp.Next >= 0 {
			want := asg.States.Codes[exp.Next]
			for b := 0; b < sb; b++ {
				if got[b] != (want&(1<<uint(b)) != 0) {
					return fmt.Errorf("verify: state %s input %0*b: next-state bit %d = %v, want state %s",
						f.States[st], f.NI, in, b, got[b], f.States[exp.Next])
				}
			}
		}
		for o := 0; o < f.NO; o++ {
			switch exp.Out[o] {
			case '1':
				if !got[sb+o] {
					return fmt.Errorf("verify: state %s input %0*b: output %d = 0, want 1", f.States[st], f.NI, in, o)
				}
			case '0':
				if got[sb+o] {
					return fmt.Errorf("verify: state %s input %0*b: output %d = 1, want 0", f.States[st], f.NI, in, o)
				}
			}
		}
		base := sb + f.NO
		for j, v := range exp.SymOut {
			enc := asg.SymOuts[j]
			if v >= 0 {
				want := enc.Codes[v]
				for b := 0; b < enc.Bits; b++ {
					if got[base+b] != (want&(1<<uint(b)) != 0) {
						return fmt.Errorf("verify: state %s input %0*b: symbolic output %s bit %d wrong (want value %s)",
							f.States[st], f.NI, in, f.SymOuts[j].Name, b, f.SymOuts[j].Values[v])
					}
				}
			}
			base += enc.Bits
		}
		return nil
	}

	forEachSym := func(fn func(symVals []int) error) error {
		symVals := make([]int, len(f.SymIns))
		var rec func(j int) error
		rec = func(j int) error {
			if j == len(f.SymIns) {
				return fn(symVals)
			}
			for v := 0; v < len(f.SymIns[j].Values); v++ {
				symVals[j] = v
				if err := rec(j + 1); err != nil {
					return err
				}
			}
			return nil
		}
		return rec(0)
	}

	if f.NI <= opt.MaxExhaustiveInputs && symCount <= 64 {
		for st := range f.States {
			if opt.Ctx != nil {
				if err := opt.Ctx.Err(); err != nil {
					return err
				}
			}
			for in := uint64(0); in < 1<<uint(f.NI); in++ {
				inp := in
				if err := forEachSym(func(sv []int) error { return check(inp, sv, st) }); err != nil {
					return err
				}
			}
		}
		return nil
	}
	rng := rand.New(rand.NewSource(opt.Seed + 7))
	symVals := make([]int, len(f.SymIns))
	for st := range f.States {
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				return err
			}
		}
		for t := 0; t < opt.Samples; t++ {
			in := rng.Uint64() & ((1 << uint(f.NI)) - 1)
			for j := range symVals {
				symVals[j] = rng.Intn(len(f.SymIns[j].Values))
			}
			if err := check(in, symVals, st); err != nil {
				return err
			}
		}
	}
	return nil
}

// EquivalentFSM is a convenience: encode, minimize and check in one step.
func EquivalentFSM(f *kiss.FSM, asg encoding.Assignment, opt Options) error {
	e, err := mvmin.EncodePLA(f, asg)
	if err != nil {
		return err
	}
	min := e.Minimize(espresso.Options{Ctx: opt.Ctx})
	if opt.Ctx != nil {
		if err := opt.Ctx.Err(); err != nil {
			return err
		}
	}
	return Equivalent(f, asg, min, opt)
}
