package verify

import (
	"testing"

	"nova/internal/constraint"
	"nova/internal/encode"
	"nova/internal/encoding"
	"nova/internal/espresso"
	"nova/internal/kiss"
	"nova/internal/mvmin"
)

func counterFSM(t *testing.T) *kiss.FSM {
	t.Helper()
	f := kiss.New("mod4", 1, 1)
	names := []string{"c0", "c1", "c2", "c3"}
	out := []string{"0", "0", "1", "1"}
	for i := 0; i < 4; i++ {
		f.MustAddRow("0", names[i], names[(i+1)%4], out[(i+1)%4])
		f.MustAddRow("1", names[i], names[(i+3)%4], out[(i+3)%4])
	}
	return f
}

func TestSimulate(t *testing.T) {
	f := counterFSM(t)
	exp := Simulate(f, 0, nil, 0) // input 0 in state c0 -> c1, out 0
	if exp.Next != 1 || exp.Out[0] != '0' {
		t.Fatalf("exp = %+v", exp)
	}
	// Count down -> c3; state registration order is c0,c1,c3,c2, so the
	// index of c3 is 2.
	exp = Simulate(f, 1, nil, 0)
	if exp.Next != f.StateIndex("c3") || exp.Out[0] != '1' {
		t.Fatalf("exp = %+v", exp)
	}
}

func TestSimulateUnspecified(t *testing.T) {
	f := kiss.New("p", 1, 1)
	f.MustAddRow("0", "a", "b", "1")
	f.MustAddRow("1", "b", "a", "0")
	exp := Simulate(f, 1, nil, 0) // (1, a) unspecified
	if exp.Next != -1 || exp.Out[0] != '-' {
		t.Fatalf("exp = %+v, want unspecified", exp)
	}
}

func TestEquivalenceGoodEncoding(t *testing.T) {
	f := counterFSM(t)
	asg := encoding.Assignment{States: encoding.Encoding{Bits: 2, Codes: []uint64{0, 1, 3, 2}}}
	if err := EquivalentFSM(f, asg, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestEquivalenceDetectsCorruption(t *testing.T) {
	f := counterFSM(t)
	asg := encoding.Assignment{States: encoding.Encoding{Bits: 2, Codes: []uint64{0, 1, 3, 2}}}
	e, err := mvmin.EncodePLA(f, asg)
	if err != nil {
		t.Fatal(err)
	}
	min := e.Minimize(espresso.Options{})
	if err := Equivalent(f, asg, min, Options{}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the cover: drop one cube. The machine must now misbehave.
	min.Cubes = min.Cubes[1:]
	if err := Equivalent(f, asg, min, Options{}); err == nil {
		t.Fatal("corrupted cover should not verify")
	}
}

func TestEquivalenceAllEncoders(t *testing.T) {
	f := counterFSM(t)
	p, err := mvmin.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	ics := p.Constraints(p.Minimize(espresso.Options{})).States
	n := f.NumStates()
	algos := map[string]encoding.Encoding{
		"iexact":  encode.IExact(n, ics, encode.ExactOptions{}).Enc,
		"ihybrid": encode.IHybrid(n, ics, 0, encode.HybridOptions{}).Enc,
		"igreedy": encode.IGreedy(n, ics, 0).Enc,
	}
	for name, enc := range algos {
		if len(enc.Codes) == 0 {
			t.Fatalf("%s returned no encoding", name)
		}
		asg := encoding.Assignment{States: enc}
		if err := EquivalentFSM(f, asg, Options{}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestEquivalenceWithSymbolicInput(t *testing.T) {
	f := kiss.New("sym", 1, 1)
	f.AddSymbolicInput("cmd", "go", "stop", "turn")
	f.MustAddRow("-", "idle", "run", "0", "go")
	f.MustAddRow("-", "idle", "idle", "0", "stop")
	f.MustAddRow("-", "idle", "turning", "0", "turn")
	f.MustAddRow("0", "run", "run", "1", "-")
	f.MustAddRow("1", "run", "idle", "0", "-")
	f.MustAddRow("-", "turning", "idle", "1", "-")
	asg := encoding.Assignment{
		States: encoding.Encoding{Bits: 2, Codes: []uint64{0, 1, 2}},
		SymIns: []encoding.Encoding{{Bits: 2, Codes: []uint64{0, 1, 2}}},
	}
	if err := EquivalentFSM(f, asg, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestSatisfiedConstraintsHelp(t *testing.T) {
	// Cross-check encode.Satisfied against the PLA-level effect: when the
	// constraint {a,b} is satisfied, the two rows merge; verify this
	// indirectly via cube counts on a crafted FSM.
	f := kiss.New("pair", 1, 1)
	f.MustAddRow("0", "a", "d", "1")
	f.MustAddRow("0", "b", "d", "1")
	f.MustAddRow("0", "c", "a", "0")
	f.MustAddRow("0", "d", "a", "0")
	f.MustAddRow("1", "a", "a", "0")
	f.MustAddRow("1", "b", "b", "0")
	f.MustAddRow("1", "c", "c", "1")
	f.MustAddRow("1", "d", "c", "1")
	// a=0, d=1, b=2, c=3. Good: {a,b}={0,2} adjacent, {c,d}={1,3} adjacent.
	good := encoding.Assignment{States: encoding.Encoding{Bits: 2, Codes: []uint64{0, 1, 2, 3}}}
	// Bad: {a,b} diagonal.
	bad := encoding.Assignment{States: encoding.Encoding{Bits: 2, Codes: []uint64{0, 1, 3, 2}}}
	ab := constraint.MustFromString("1010")
	if !encode.Satisfied(good.States, ab) || encode.Satisfied(bad.States, ab) {
		t.Fatal("constraint satisfaction labels wrong")
	}
	gm, err := mvmin.Measure(f, good, espresso.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bm, err := mvmin.Measure(f, bad, espresso.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gm.Cubes > bm.Cubes {
		t.Fatalf("satisfying encoding has more cubes (%d) than violating one (%d)", gm.Cubes, bm.Cubes)
	}
	if err := EquivalentFSM(f, good, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := EquivalentFSM(f, bad, Options{}); err != nil {
		t.Fatal(err)
	}
}
