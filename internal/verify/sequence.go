package verify

import (
	"fmt"
	"math/rand"

	"nova/internal/cube"
	"nova/internal/encoding"
	"nova/internal/kiss"
)

// Trajectory checking: beyond per-transition equivalence, run the symbolic
// machine and the encoded machine side by side on an input stream from the
// reset state and compare the full output trace. This catches encoding
// errors that only manifest along reachable paths.

// StepResult is one step of a trajectory.
type StepResult struct {
	Input  uint64
	State  int
	Next   int
	Out    []byte
	SymOut []int
}

// RunSequence drives both machines for len(inputs) steps starting at the
// reset state (state 0 when none is declared), comparing next-state codes
// and outputs at every step. Steps whose symbolic behaviour is unspecified
// terminate the run (the machines are free to diverge afterwards). The
// trace of executed steps is returned.
func RunSequence(f *kiss.FSM, asg encoding.Assignment, cov *cube.Cover, inputs []uint64, symIns [][]int) ([]StepResult, error) {
	state := f.Reset
	if state < 0 {
		state = 0
	}
	nin := f.NI + asg.InputBits() + asg.States.Bits
	sb := asg.States.Bits
	var trace []StepResult
	for step, in := range inputs {
		var sv []int
		if symIns != nil {
			sv = symIns[step]
		} else {
			sv = make([]int, len(f.SymIns))
		}
		exp := Simulate(f, in, sv, state)
		if exp.Next < 0 {
			break // unspecified: stop the trajectory
		}
		point := in
		shift := uint(f.NI)
		for j, v := range sv {
			point |= asg.SymIns[j].Codes[v] << shift
			shift += uint(asg.SymIns[j].Bits)
		}
		point |= asg.States.Codes[state] << shift
		got := EvalCover(cov, nin, point)
		want := asg.States.Codes[exp.Next]
		for b := 0; b < sb; b++ {
			if got[b] != (want&(1<<uint(b)) != 0) {
				return trace, fmt.Errorf("verify: step %d state %s: encoded next-state bit %d diverges", step, f.States[state], b)
			}
		}
		for o := 0; o < f.NO; o++ {
			switch exp.Out[o] {
			case '1':
				if !got[sb+o] {
					return trace, fmt.Errorf("verify: step %d state %s: output %d low", step, f.States[state], o)
				}
			case '0':
				if got[sb+o] {
					return trace, fmt.Errorf("verify: step %d state %s: output %d high", step, f.States[state], o)
				}
			}
		}
		trace = append(trace, StepResult{Input: in, State: state, Next: exp.Next, Out: exp.Out, SymOut: exp.SymOut})
		state = exp.Next
	}
	return trace, nil
}

// RandomWalk drives RunSequence with a seeded random input stream of the
// given length.
func RandomWalk(f *kiss.FSM, asg encoding.Assignment, cov *cube.Cover, steps int, seed int64) ([]StepResult, error) {
	rng := rand.New(rand.NewSource(seed))
	inputs := make([]uint64, steps)
	var symIns [][]int
	if len(f.SymIns) > 0 {
		symIns = make([][]int, steps)
	}
	for i := range inputs {
		if f.NI > 0 {
			inputs[i] = rng.Uint64() & ((1 << uint(f.NI)) - 1)
		}
		if symIns != nil {
			sv := make([]int, len(f.SymIns))
			for j := range sv {
				sv[j] = rng.Intn(len(f.SymIns[j].Values))
			}
			symIns[i] = sv
		}
	}
	return RunSequence(f, asg, cov, inputs, symIns)
}
