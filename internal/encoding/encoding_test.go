package encoding

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAndLen(t *testing.T) {
	e := New(5, 3)
	if e.Len() != 5 || e.Bits != 3 {
		t.Fatalf("e = %+v", e)
	}
	for _, c := range e.Codes {
		if c != 0 {
			t.Fatal("codes not zeroed")
		}
	}
}

func TestDistinct(t *testing.T) {
	e := Encoding{Bits: 2, Codes: []uint64{0, 1, 2, 3}}
	if !e.Distinct() {
		t.Fatal("distinct codes reported duplicate")
	}
	e.Codes[3] = 1
	if e.Distinct() {
		t.Fatal("duplicate not detected")
	}
}

func TestCodeString(t *testing.T) {
	e := Encoding{Bits: 4, Codes: []uint64{0b0101}}
	// Bit 0 first.
	if got := e.CodeString(0); got != "1010" {
		t.Fatalf("CodeString = %q", got)
	}
	if !strings.Contains(e.String(), "1010") {
		t.Fatalf("String = %q", e.String())
	}
}

func TestCopyIndependent(t *testing.T) {
	e := Encoding{Bits: 2, Codes: []uint64{1, 2}}
	c := e.Copy()
	c.Codes[0] = 3
	if e.Codes[0] != 1 {
		t.Fatal("Copy aliases")
	}
}

func TestAssignmentBits(t *testing.T) {
	a := Assignment{
		States: Encoding{Bits: 3, Codes: []uint64{0, 1, 2}},
		SymIns: []Encoding{{Bits: 2, Codes: []uint64{0, 1}}, {Bits: 1, Codes: []uint64{0, 1}}},
	}
	if a.TotalBits() != 6 || a.InputBits() != 3 {
		t.Fatalf("bits: total=%d input=%d", a.TotalBits(), a.InputBits())
	}
}

func TestValidate(t *testing.T) {
	ok := Assignment{States: Encoding{Bits: 2, Codes: []uint64{0, 1, 2}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	dup := Assignment{States: Encoding{Bits: 2, Codes: []uint64{0, 1, 1}}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate codes must fail")
	}
	wide := Assignment{States: Encoding{Bits: 2, Codes: []uint64{0, 5}}}
	if err := wide.Validate(); err == nil {
		t.Fatal("code exceeding width must fail")
	}
	badSym := Assignment{
		States: Encoding{Bits: 1, Codes: []uint64{0, 1}},
		SymIns: []Encoding{{Bits: 1, Codes: []uint64{1, 1}}},
	}
	if err := badSym.Validate(); err == nil {
		t.Fatal("duplicate symbolic codes must fail")
	}
}

// Property: CodeString round-trips bit i of the code to position i.
func TestCodeStringProperty(t *testing.T) {
	f := func(code uint16) bool {
		e := Encoding{Bits: 16, Codes: []uint64{uint64(code)}}
		s := e.CodeString(0)
		for i := 0; i < 16; i++ {
			want := byte('0')
			if code&(1<<uint(i)) != 0 {
				want = '1'
			}
			if s[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
