// Package encoding defines the result types shared between the encoding
// algorithms and the translation/verification layers: the code assignment
// for one symbolic variable and for a whole FSM.
package encoding

import (
	"fmt"
	"strings"
)

// Encoding assigns a Bits-wide binary code to each of a symbolic variable's
// values. Codes[i] holds the code of value i in its low Bits bits.
type Encoding struct {
	Bits  int
	Codes []uint64
}

// New returns an all-zero encoding of n values in bits bits.
func New(n, bits int) Encoding {
	return Encoding{Bits: bits, Codes: make([]uint64, n)}
}

// Len returns the number of encoded values.
func (e Encoding) Len() int { return len(e.Codes) }

// Copy returns an independent copy.
func (e Encoding) Copy() Encoding {
	return Encoding{Bits: e.Bits, Codes: append([]uint64(nil), e.Codes...)}
}

// Distinct reports whether all codes are pairwise distinct.
func (e Encoding) Distinct() bool {
	seen := make(map[uint64]bool, len(e.Codes))
	for _, c := range e.Codes {
		if seen[c] {
			return false
		}
		seen[c] = true
	}
	return true
}

// CodeString renders the code of value i as Bits characters, bit 0 first
// (matching the face package's coordinate order).
func (e Encoding) CodeString(i int) string {
	var b strings.Builder
	for bit := 0; bit < e.Bits; bit++ {
		if e.Codes[i]&(1<<uint(bit)) != 0 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// String renders the encoding as {code0, code1, …}.
func (e Encoding) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i := range e.Codes {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.CodeString(i))
	}
	b.WriteByte('}')
	return b.String()
}

// Assignment is a complete FSM encoding: the state encoding plus one
// encoding per symbolic input and per symbolic output variable.
type Assignment struct {
	States  Encoding
	SymIns  []Encoding
	SymOuts []Encoding
}

// TotalBits returns state bits plus all symbolic-input bits: the paper's
// "#bits" column for examples with symbolic inputs.
func (a Assignment) TotalBits() int {
	t := a.States.Bits
	for _, e := range a.SymIns {
		t += e.Bits
	}
	return t
}

// InputBits returns the encoded symbolic-input width only.
func (a Assignment) InputBits() int {
	t := 0
	for _, e := range a.SymIns {
		t += e.Bits
	}
	return t
}

// OutputBits returns the encoded symbolic-output width only.
func (a Assignment) OutputBits() int {
	t := 0
	for _, e := range a.SymOuts {
		t += e.Bits
	}
	return t
}

// Validate checks that every encoding has distinct codes that fit in its
// declared width.
func (a Assignment) Validate() error {
	check := func(what string, e Encoding) error {
		if e.Bits <= 0 && len(e.Codes) > 1 {
			return fmt.Errorf("encoding: %s has %d values in %d bits", what, len(e.Codes), e.Bits)
		}
		if e.Bits > 64 {
			return fmt.Errorf("encoding: %s uses %d bits; codes are limited to 64 bits (use the multiple-valued 1-hot cover cardinality for wider one-hot measurements)", what, e.Bits)
		}
		if e.Bits < 64 {
			for i, c := range e.Codes {
				if c >= 1<<uint(e.Bits) {
					return fmt.Errorf("encoding: %s code %d (%#x) exceeds %d bits", what, i, c, e.Bits)
				}
			}
		}
		if !e.Distinct() {
			return fmt.Errorf("encoding: %s codes are not distinct", what)
		}
		return nil
	}
	if err := check("states", a.States); err != nil {
		return err
	}
	for i, e := range a.SymIns {
		if err := check(fmt.Sprintf("symbolic input %d", i), e); err != nil {
			return err
		}
	}
	for i, e := range a.SymOuts {
		if err := check(fmt.Sprintf("symbolic output %d", i), e); err != nil {
			return err
		}
	}
	return nil
}
