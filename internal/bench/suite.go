// Package bench provides the benchmark FSM suite of the paper's Table I
// (plus the Table V extras). The original MCNC KISS2 files are not
// available offline, so the suite contains:
//
//   - semantic reconstructions where the machine is defined by its name
//     (shiftreg: a 3-bit shift register; modulo12: a mod-12 counter);
//   - deterministic synthetic machines matched to each benchmark's
//     published statistics (#inputs, #outputs, #states, #terms), generated
//     with per-name seeds and a clustered transition structure so that
//     multiple-valued minimization finds meaningful input constraints, as
//     the real benchmarks do.
//
// The dk* examples are modeled with one symbolic proper input (the paper
// encodes their inputs together with the states: the '*' rows of Tables
// II-IV), with 2^ni values matching the original binary input width.
//
// All machines are fully deterministic (seeded), so every experiment is
// reproducible run to run.
package bench

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"nova/internal/kiss"
)

// Entry is one benchmark machine.
type Entry struct {
	Name string
	F    *kiss.FSM
	// TableV marks membership in the Table V (Cappuccino/Cream) subset.
	TableV bool
	// Huge marks the time-intensive machines (scf, tbk) that long-running
	// experiments may skip under -short.
	Huge bool
}

// spec describes how to synthesize one benchmark.
type spec struct {
	name   string
	ni     int // binary inputs
	sym    int // values of the single symbolic input (0 = none)
	no     int
	ns     int
	terms  int  // target number of rows
	tableV bool //nolint:unused // set in the table below
	huge   bool
	make   func() *kiss.FSM // semantic construction override
}

// Table I statistics (with the iofsm/physrec/scud/do1 shapes inferred from
// the paper's area figures where the statistics table is not legible, and
// tbk scaled from 1569 to 256 rows to keep the substrate minimizer within
// a laptop budget — documented in DESIGN.md).
var specs = []spec{
	{name: "bbara", ni: 4, no: 2, ns: 10, terms: 60},
	{name: "bbsse", ni: 7, no: 7, ns: 16, terms: 56},
	{name: "bbtas", ni: 2, no: 2, ns: 6, terms: 24, tableV: true},
	{name: "beecount", ni: 3, no: 4, ns: 7, terms: 28},
	{name: "cse", ni: 7, no: 7, ns: 16, terms: 91, tableV: true},
	{name: "dk14", sym: 8, no: 5, ns: 7, terms: 56, tableV: true},
	{name: "dk15", sym: 8, no: 5, ns: 4, terms: 32, tableV: true},
	{name: "dk16", sym: 4, no: 3, ns: 27, terms: 108, tableV: true},
	{name: "dk17", sym: 4, no: 3, ns: 8, terms: 32, tableV: true},
	{name: "dk27", sym: 2, no: 2, ns: 7, terms: 14, tableV: true},
	{name: "dk512", sym: 2, no: 3, ns: 15, terms: 30, tableV: true},
	{name: "donfile", ni: 2, no: 1, ns: 24, terms: 96},
	{name: "ex1", ni: 9, no: 19, ns: 20, terms: 138},
	{name: "ex2", ni: 2, no: 2, ns: 19, terms: 72},
	{name: "ex3", ni: 2, no: 2, ns: 10, terms: 36},
	{name: "ex5", ni: 2, no: 2, ns: 9, terms: 32},
	{name: "ex6", ni: 5, no: 8, ns: 8, terms: 34},
	{name: "iofsm", ni: 5, no: 6, ns: 10, terms: 36},
	{name: "keyb", ni: 7, no: 2, ns: 19, terms: 170},
	{name: "mark1", ni: 5, no: 16, ns: 15, terms: 22},
	{name: "physrec", ni: 12, no: 7, ns: 11, terms: 38},
	{name: "planet", ni: 7, no: 19, ns: 48, terms: 115},
	{name: "s1", ni: 8, no: 6, ns: 20, terms: 107, tableV: true},
	{name: "sand", ni: 11, no: 9, ns: 32, terms: 184, tableV: true},
	{name: "scf", ni: 27, no: 56, ns: 121, terms: 166, huge: true},
	{name: "scud", ni: 7, no: 6, ns: 8, terms: 120},
	{name: "shiftreg", ni: 1, no: 1, ns: 8, terms: 16, tableV: true, make: shiftreg},
	{name: "styr", ni: 9, no: 10, ns: 30, terms: 166, tableV: true},
	{name: "tbk", ni: 6, no: 3, ns: 32, terms: 256, huge: true},
	{name: "train11", ni: 2, no: 1, ns: 11, terms: 25, tableV: true},
	// Table V extras not in Table I.
	{name: "lion", ni: 2, no: 1, ns: 4, terms: 11, tableV: true},
	{name: "lion9", ni: 2, no: 1, ns: 9, terms: 25, tableV: true},
	{name: "modulo12", ni: 1, no: 1, ns: 12, terms: 24, tableV: true, make: modulo12},
	{name: "tav", ni: 4, no: 4, ns: 4, terms: 49, tableV: true},
	{name: "do1", ni: 2, no: 1, ns: 8, terms: 20, tableV: true},
}

var (
	once  sync.Once
	suite []Entry
	byNm  map[string]*Entry
)

func build() {
	byNm = map[string]*Entry{}
	for _, sp := range specs {
		var f *kiss.FSM
		if sp.make != nil {
			f = sp.make()
		} else {
			f = synthesize(sp)
		}
		f.Name = sp.name
		if err := f.Validate(); err != nil {
			panic(fmt.Sprintf("bench: %s: %v", sp.name, err))
		}
		suite = append(suite, Entry{Name: sp.name, F: f, TableV: sp.tableV, Huge: sp.huge})
		byNm[sp.name] = &suite[len(suite)-1]
	}
}

// Suite returns every benchmark entry in Table order (built once).
func Suite() []Entry {
	once.Do(build)
	return suite
}

// TableI returns the 30 machines of Table I (everything except the
// Table V extras).
func TableI() []Entry {
	var out []Entry
	extras := map[string]bool{"lion": true, "lion9": true, "modulo12": true, "tav": true, "do1": true}
	for _, e := range Suite() {
		if !extras[e.Name] {
			out = append(out, e)
		}
	}
	return out
}

// TableV returns the Table V subset.
func TableV() []Entry {
	var out []Entry
	for _, e := range Suite() {
		if e.TableV {
			out = append(out, e)
		}
	}
	return out
}

// Get returns a named benchmark, or nil.
func Get(name string) *kiss.FSM {
	once.Do(build)
	if e, ok := byNm[name]; ok {
		return e.F
	}
	return nil
}

// Names returns all benchmark names.
func Names() []string {
	var out []string
	for _, e := range Suite() {
		out = append(out, e.Name)
	}
	return out
}

// ByStates returns the Table I entries sorted by increasing state count
// (the x-axis order of the paper's plots).
func ByStates() []Entry {
	out := append([]Entry(nil), TableI()...)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := out[i].F.NumStates(), out[j].F.NumStates()
		if si != sj {
			return si < sj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// seedFor derives a stable per-name seed.
func seedFor(name string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// splitInputSpace returns m disjoint input cubes (strings over 0/1/-) that
// jointly cover the ni-input space, by repeated halving of the widest cube.
func splitInputSpace(ni, m int) []string {
	cubes := []string{strings.Repeat("-", ni)}
	for len(cubes) < m {
		// Split the cube with the most dashes (first such).
		best, dash := -1, -1
		for i, c := range cubes {
			d := strings.Count(c, "-")
			if d > dash {
				best, dash = i, d
			}
		}
		if dash <= 0 {
			break // space exhausted
		}
		c := cubes[best]
		pos := strings.IndexByte(c, '-')
		a := c[:pos] + "0" + c[pos+1:]
		b := c[:pos] + "1" + c[pos+1:]
		cubes = append(cubes[:best], append([]string{a, b}, cubes[best+1:]...)...)
	}
	return cubes
}

// synthesize builds a deterministic clustered machine matching the spec:
// states are grouped into behavioural clusters; within a cluster, states
// frequently share (next state, output) reactions to the same input cube,
// which is precisely what makes multiple-valued minimization merge their
// rows and emit input constraints.
func synthesize(sp spec) *kiss.FSM {
	rng := rand.New(rand.NewSource(seedFor(sp.name)))
	f := kiss.New(sp.name, sp.ni, sp.no)
	var symName []string
	if sp.sym > 0 {
		for v := 0; v < sp.sym; v++ {
			symName = append(symName, fmt.Sprintf("v%d", v))
		}
		f.AddSymbolicInput("in", symName...)
	}
	states := make([]string, sp.ns)
	for i := range states {
		states[i] = fmt.Sprintf("s%d", i)
		f.State(states[i]) // fix index order
	}
	f.SetReset("s0")

	// Number of rows per state.
	groups := make([]int, sp.ns)
	base := sp.terms / sp.ns
	rem := sp.terms - base*sp.ns
	maxG := 1 << uint(sp.ni)
	if sp.sym > 0 {
		maxG = sp.sym
	}
	for i := range groups {
		groups[i] = base
		if i < rem {
			groups[i]++
		}
		if groups[i] < 1 {
			groups[i] = 1
		}
		if groups[i] > maxG {
			groups[i] = maxG
		}
	}

	nClusters := sp.ns/3 + 1
	cluster := make([]int, sp.ns)
	for i := range cluster {
		cluster[i] = rng.Intn(nClusters)
	}
	// Shared per-(cluster, group-index) behaviour. Next states are drawn
	// from a small pool so several clusters funnel into the same targets.
	maxGroups := 0
	for _, g := range groups {
		if g > maxGroups {
			maxGroups = g
		}
	}
	poolSize := sp.ns/4 + 2
	pool := make([]int, poolSize)
	for i := range pool {
		pool[i] = rng.Intn(sp.ns)
	}
	sharedNext := make([][]int, nClusters)
	sharedOut := make([][]string, nClusters)
	for c := 0; c < nClusters; c++ {
		sharedNext[c] = make([]int, maxGroups)
		sharedOut[c] = make([]string, maxGroups)
		for j := 0; j < maxGroups; j++ {
			sharedNext[c][j] = pool[rng.Intn(poolSize)]
			sharedOut[c][j] = randomOut(rng, sp.no)
		}
	}

	for si := 0; si < sp.ns; si++ {
		g := groups[si]
		var inCubes []string
		if sp.sym > 0 {
			perm := rng.Perm(sp.sym)
			for _, v := range perm[:g] {
				inCubes = append(inCubes, symName[v])
			}
		} else {
			inCubes = splitInputSpace(sp.ni, g)
		}
		for j, in := range inCubes {
			next := sharedNext[cluster[si]][j]
			out := sharedOut[cluster[si]][j]
			if rng.Float64() > 0.7 {
				next = rng.Intn(sp.ns)
			}
			if rng.Float64() > 0.7 {
				out = randomOut(rng, sp.no)
			}
			if sp.sym > 0 {
				f.MustAddRow("", states[si], states[next], out, in)
			} else {
				f.MustAddRow(in, states[si], states[next], out)
			}
		}
	}
	return f
}

func randomOut(rng *rand.Rand, no int) string {
	b := make([]byte, no)
	for i := range b {
		if rng.Intn(3) == 0 {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// shiftreg is the exact 3-bit serial shift register of the MCNC suite:
// 8 states (the register contents), serial input, serial output (the bit
// shifted out), 16 fully specified transitions.
func shiftreg() *kiss.FSM {
	f := kiss.New("shiftreg", 1, 1)
	name := func(v int) string { return fmt.Sprintf("s%d%d%d", v>>2&1, v>>1&1, v&1) }
	for v := 0; v < 8; v++ {
		f.State(name(v))
	}
	for v := 0; v < 8; v++ {
		outBit := v >> 2 & 1
		for in := 0; in < 2; in++ {
			next := (v<<1)&7 | in
			f.MustAddRow(fmt.Sprintf("%d", in), name(v), name(next), fmt.Sprintf("%d", outBit))
		}
	}
	f.SetReset(name(0))
	return f
}

// modulo12 is a modulo-12 counter with an enable input; the output pulses
// on wrap-around. 24 fully specified transitions.
func modulo12() *kiss.FSM {
	f := kiss.New("modulo12", 1, 1)
	name := func(v int) string { return fmt.Sprintf("c%d", v) }
	for v := 0; v < 12; v++ {
		f.State(name(v))
	}
	for v := 0; v < 12; v++ {
		next := (v + 1) % 12
		wrap := "0"
		if next == 0 {
			wrap = "1"
		}
		f.MustAddRow("1", name(v), name(next), wrap)
		f.MustAddRow("0", name(v), name(v), "0")
	}
	f.SetReset(name(0))
	return f
}
