package bench

import (
	"testing"

	"nova/internal/verify"
)

func TestSuiteShape(t *testing.T) {
	s := Suite()
	if len(s) != 35 {
		t.Fatalf("suite has %d entries, want 35", len(s))
	}
	if len(TableI()) != 30 {
		t.Fatalf("Table I has %d entries, want 30", len(TableI()))
	}
	for _, e := range s {
		if e.F == nil {
			t.Fatalf("%s: nil FSM", e.Name)
		}
		if err := e.F.Validate(); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if e.F.Name != e.Name {
			t.Fatalf("%s: FSM name %q", e.Name, e.F.Name)
		}
	}
}

func TestSuiteStatsMatchSpecs(t *testing.T) {
	cases := map[string]struct{ ni, sym, no, ns int }{
		"dk14":     {0, 1, 5, 7},
		"dk16":     {0, 1, 3, 27},
		"planet":   {7, 0, 19, 48},
		"scf":      {27, 0, 56, 121},
		"shiftreg": {1, 0, 1, 8},
		"modulo12": {1, 0, 1, 12},
		"train11":  {2, 0, 1, 11},
	}
	for name, want := range cases {
		f := Get(name)
		if f == nil {
			t.Fatalf("missing %s", name)
		}
		st := f.Stats()
		if st.Inputs != want.ni || st.SymIns != want.sym || st.Outputs != want.no || st.States != want.ns {
			t.Fatalf("%s: stats %+v, want %+v", name, st, want)
		}
	}
}

func TestSuiteDeterministicGeneration(t *testing.T) {
	// Generating a spec twice (fresh build path) must give identical rows;
	// Suite caching aside, the per-name seeding must be stable.
	a := Get("ex3")
	b := Get("ex3")
	if a != b {
		t.Fatal("suite should cache")
	}
	if a.String() == "" {
		t.Fatal("empty machine")
	}
}

func TestSuiteDeterministicMachines(t *testing.T) {
	for _, e := range Suite() {
		if e.Huge {
			continue
		}
		if ok, why := e.F.Deterministic(); !ok {
			t.Fatalf("%s is nondeterministic: %s", e.Name, why)
		}
	}
}

func TestShiftregSemantics(t *testing.T) {
	f := Get("shiftreg")
	// From state s011, input 1 -> s111, output is the MSB (0).
	st := f.StateIndex("s011")
	exp := verify.Simulate(f, 1, nil, st)
	if exp.Next != f.StateIndex("s111") || exp.Out[0] != '0' {
		t.Fatalf("shiftreg transition wrong: %+v", exp)
	}
	st = f.StateIndex("s100")
	exp = verify.Simulate(f, 0, nil, st)
	if exp.Next != f.StateIndex("s000") || exp.Out[0] != '1' {
		t.Fatalf("shiftreg MSB-out wrong: %+v", exp)
	}
}

func TestModulo12Semantics(t *testing.T) {
	f := Get("modulo12")
	// Counting from c11 wraps to c0 with a pulse.
	st := f.StateIndex("c11")
	exp := verify.Simulate(f, 1, nil, st)
	if exp.Next != f.StateIndex("c0") || exp.Out[0] != '1' {
		t.Fatalf("wrap transition wrong: %+v", exp)
	}
	// Disabled: stays put.
	exp = verify.Simulate(f, 0, nil, st)
	if exp.Next != st || exp.Out[0] != '0' {
		t.Fatalf("hold transition wrong: %+v", exp)
	}
}

func TestByStatesOrdering(t *testing.T) {
	ord := ByStates()
	for i := 1; i < len(ord); i++ {
		if ord[i-1].F.NumStates() > ord[i].F.NumStates() {
			t.Fatal("ByStates not sorted")
		}
	}
	if ord[len(ord)-1].Name != "scf" {
		t.Fatalf("largest should be scf, got %s", ord[len(ord)-1].Name)
	}
}

func TestSplitInputSpace(t *testing.T) {
	for ni := 1; ni <= 4; ni++ {
		for m := 1; m <= 1<<uint(ni); m++ {
			cubes := splitInputSpace(ni, m)
			if len(cubes) != m {
				t.Fatalf("ni=%d m=%d: got %d cubes", ni, m, len(cubes))
			}
			// Disjoint and covering: count minterms.
			covered := map[int]int{}
			for _, c := range cubes {
				for v := 0; v < 1<<uint(ni); v++ {
					match := true
					for i := 0; i < ni; i++ {
						bit := byte('0')
						if v&(1<<uint(i)) != 0 {
							bit = '1'
						}
						if c[i] != '-' && c[i] != bit {
							match = false
						}
					}
					if match {
						covered[v]++
					}
				}
			}
			for v := 0; v < 1<<uint(ni); v++ {
				if covered[v] != 1 {
					t.Fatalf("ni=%d m=%d: minterm %d covered %d times", ni, m, v, covered[v])
				}
			}
		}
	}
}

func TestTermCountsNearTargets(t *testing.T) {
	// Synthetic machines should land close to the published #terms.
	cases := map[string]int{"dk14": 56, "bbtas": 24, "donfile": 96, "keyb": 170, "planet": 115}
	for name, want := range cases {
		f := Get(name)
		got := f.NumTerms()
		if got < want-want/10 || got > want+want/10 {
			t.Fatalf("%s: %d terms, want ~%d", name, got, want)
		}
	}
}
