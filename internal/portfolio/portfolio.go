// Package portfolio is the hedged multi-candidate racing engine behind
// nova's portfolio encoding mode: a roster of candidates (one encoding
// attempt each) races over the shared bounded pool, every candidate
// publishing its finished cost into one atomic best-(cost, index) bound.
// Candidates that provably cannot win — their sound cost lower bound is
// already beaten under the deterministic pick order — are pruned before
// launch or canceled mid-flight, and the race joins on a deterministic
// pick: the lowest cost wins, ties broken by the lowest roster index.
//
// Determinism is the package's contract, mirroring internal/sched and
// the speculative searches: the pick depends only on the (cost, index)
// pairs of the successful candidates, each candidate's own computation is
// deterministic for its inputs, and pruning/cancellation is applied only
// to candidates whose outcome could not change the pick — a pruned
// candidate's cost is at best (Lower, index), which the bound already
// lexicographically beats. Serial pools (one worker) therefore return the
// exact winner a fully parallel race returns, byte for byte; scheduling
// affects only wall-clock time and which losers got as far as running.
//
// The package knows nothing about FSMs: candidates are closures producing
// (value, cost, error), so the racing logic is testable with stubs and
// reusable for any "cheapest answer wins" workload.
package portfolio

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"nova/internal/obs"
	"nova/internal/sched"
)

// Candidate is one roster member of a race.
type Candidate[T any] struct {
	// Label names the candidate in telemetry ("ihybrid", "iexact@3", ...).
	Label string
	// Lower is a sound lower bound on any cost Run can report: Run must
	// never return a cost below it. The tighter the bound, the earlier
	// the race can prune or cancel this candidate; 0 is always sound for
	// non-negative costs (and disables pruning in practice).
	Lower int64
	// Run computes the candidate under ctx and returns its value and
	// cost. A canceled ctx means the race proved the candidate cannot
	// win; Run should stop promptly and return any error.
	Run func(ctx context.Context) (T, int64, error)
}

// Outcome reports how one candidate fared.
type Outcome[T any] struct {
	// Value and Cost are valid when Err is nil and the candidate ran.
	Value T
	Cost  int64
	// Err is the candidate's own failure (including cancellation by the
	// race); it never aborts the siblings.
	Err error
	// Pruned marks a candidate skipped before launch: a finished sibling
	// had already made winning impossible.
	Pruned bool
	// Launched marks a candidate that actually ran (to completion or
	// cancellation).
	Launched bool
}

// Options tunes one race.
type Options struct {
	// HedgeDelay staggers the backups: candidate 0 launches immediately,
	// the rest only after the delay elapses or the primary completes,
	// whichever is first. Zero launches the whole roster at once. The
	// delay affects wall-clock only, never the pick.
	HedgeDelay time.Duration
	// Max caps how many roster members race (0 = all).
	Max int
	// Metrics, when non-nil, receives the portfolio.* counters.
	Metrics *obs.Metrics
}

// The bound packs (cost, index) into one uint64 so a CAS-min maintains
// the lexicographic minimum atomically: cost in the high bits, index in
// the low bits, smaller packed value == better (cost, index) pair.
const (
	indexBits = 20
	// MaxCandidates is the widest roster a race accepts (the index field
	// of the packed bound).
	MaxCandidates = 1<<indexBits - 1
	maxCost       = int64(1)<<(63-indexBits) - 1
)

// Bound is the shared best-(cost, index) bound of one race: the cheapest
// finished candidate, ties held by the lowest index. The zero value is an
// empty bound.
type Bound struct{ packed atomic.Uint64 }

func packBound(cost int64, index int) uint64 {
	if cost < 0 {
		cost = 0
	}
	if cost > maxCost {
		cost = maxCost
	}
	return uint64(cost)<<indexBits | uint64(index&MaxCandidates)
}

// Observe publishes a finished candidate's cost, keeping the
// lexicographic minimum of every (cost, index) observed.
func (b *Bound) Observe(cost int64, index int) {
	p := packBound(cost, index) + 1 // +1 so packed 0 means "empty"
	for {
		cur := b.packed.Load()
		if cur != 0 && cur <= p {
			return
		}
		if b.packed.CompareAndSwap(cur, p) {
			return
		}
	}
}

// Best returns the current best (cost, index); ok is false while no
// candidate has finished.
func (b *Bound) Best() (cost int64, index int, ok bool) {
	p := b.packed.Load()
	if p == 0 {
		return 0, 0, false
	}
	p--
	return int64(p >> indexBits), int(p & MaxCandidates), true
}

// Prunable reports whether a candidate with the given sound cost lower
// bound and roster index can no longer win the deterministic pick: some
// finished candidate's (cost, index) lexicographically beats the best
// this one could still achieve, (lower, index). Pruning on a true return
// never changes the race winner.
func (b *Bound) Prunable(lower int64, index int) bool {
	cost, bi, ok := b.Best()
	if !ok {
		return false
	}
	return cost < lower || (cost == lower && bi < index)
}

// Race runs the candidates over the pool and returns every outcome plus
// the winner's index (-1 when no candidate succeeded). The pick is
// deterministic: lowest cost first, ties to the lowest index; candidates
// are pruned or canceled only when that pick can no longer involve them.
// Candidate errors (including cancellations) stay in their Outcome and
// never abort siblings; the caller decides what a fully failed race
// means. Race returns when every launched candidate has returned.
func Race[T any](ctx context.Context, pool *sched.Pool, cands []Candidate[T], opt Options) ([]Outcome[T], int) {
	n := len(cands)
	if opt.Max > 0 && opt.Max < n {
		n = opt.Max
	}
	if n > MaxCandidates {
		n = MaxCandidates
	}
	out := make([]Outcome[T], len(cands))
	if n == 0 {
		return out, -1
	}
	m := opt.Metrics
	var bound Bound
	g := pool.Group(ctx)
	ctxs := make([]context.Context, n)
	cancels := make([]context.CancelFunc, n)
	for i := 0; i < n; i++ {
		ctxs[i], cancels[i] = context.WithCancel(g.Context())
	}
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	// running guards the loser-cancel sweep: a finished candidate walks
	// the still-running set and cancels everyone the new bound proves out.
	var mu sync.Mutex
	running := make([]bool, n)
	sweep := func() {
		mu.Lock()
		for j := 0; j < n; j++ {
			if running[j] && bound.Prunable(cands[j].Lower, j) {
				m.Add("portfolio.canceled", 1)
				cancels[j]()
			}
		}
		mu.Unlock()
	}

	launch := func(i int, done chan<- struct{}) {
		if bound.Prunable(cands[i].Lower, i) {
			out[i].Pruned = true
			m.Add("portfolio.pruned", 1)
			if done != nil {
				close(done)
			}
			return
		}
		mu.Lock()
		running[i] = true
		mu.Unlock()
		m.Add("portfolio.launched", 1)
		g.Go(func(context.Context) error {
			v, cost, err := cands[i].Run(ctxs[i])
			out[i] = Outcome[T]{Value: v, Cost: cost, Err: err, Launched: true}
			mu.Lock()
			running[i] = false
			mu.Unlock()
			if err == nil {
				bound.Observe(cost, i)
				sweep()
			}
			if done != nil {
				close(done)
			}
			return nil
		})
	}

	if n == 1 || opt.HedgeDelay <= 0 {
		for i := 0; i < n; i++ {
			launch(i, nil)
		}
	} else {
		// Hedge: the primary runs alone until it completes or the delay
		// elapses; then the backups join the race. On a one-worker pool
		// the primary runs inline, so the delay never adds wall-clock.
		done0 := make(chan struct{})
		launch(0, done0)
		t := time.NewTimer(opt.HedgeDelay)
		select {
		case <-done0:
		case <-t.C:
		case <-ctx.Done():
		}
		t.Stop()
		for i := 1; i < n; i++ {
			launch(i, nil)
		}
	}
	g.Wait()

	win := -1
	for i := 0; i < n; i++ {
		o := &out[i]
		if o.Err != nil || !o.Launched {
			continue
		}
		if win < 0 || o.Cost < out[win].Cost {
			win = i
		}
	}
	if win >= 0 {
		m.Add("portfolio.won", 1)
	}
	return out, win
}
