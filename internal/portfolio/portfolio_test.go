package portfolio

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"nova/internal/obs"
	"nova/internal/sched"
)

// fixed returns a candidate that always succeeds with the given cost.
func fixed(cost int64) Candidate[int64] {
	return Candidate[int64]{
		Run: func(context.Context) (int64, int64, error) { return cost, cost, nil },
	}
}

func TestBoundPackRoundTrip(t *testing.T) {
	var b Bound
	if _, _, ok := b.Best(); ok {
		t.Fatal("empty bound reports a best")
	}
	b.Observe(0, 0) // cost 0 must be representable despite the +1 sentinel
	if c, i, ok := b.Best(); !ok || c != 0 || i != 0 {
		t.Fatalf("Best() = (%d,%d,%t), want (0,0,true)", c, i, ok)
	}
	var b2 Bound
	b2.Observe(maxCost+5, 3) // clamps, stays sound
	if c, i, ok := b2.Best(); !ok || c != maxCost || i != 3 {
		t.Fatalf("clamped Best() = (%d,%d,%t)", c, i, ok)
	}
	b2.Observe(-7, 2) // negative clamps to 0
	if c, _, _ := b2.Best(); c != 0 {
		t.Fatalf("negative Observe gave cost %d", c)
	}
}

// TestBoundLexicographicMin checks that Observe keeps the (cost, index)
// lexicographic minimum: lower cost always wins, equal cost keeps the
// lower index regardless of arrival order.
func TestBoundLexicographicMin(t *testing.T) {
	var b Bound
	b.Observe(10, 5)
	b.Observe(10, 2) // same cost, lower index: takes over
	if c, i, _ := b.Best(); c != 10 || i != 2 {
		t.Fatalf("Best() = (%d,%d), want (10,2)", c, i)
	}
	b.Observe(10, 7) // same cost, higher index: ignored
	if _, i, _ := b.Best(); i != 2 {
		t.Fatalf("higher index displaced the bound")
	}
	b.Observe(9, 9) // lower cost: wins despite higher index
	if c, i, _ := b.Best(); c != 9 || i != 9 {
		t.Fatalf("Best() = (%d,%d), want (9,9)", c, i)
	}
}

func TestBoundPrunable(t *testing.T) {
	var b Bound
	if b.Prunable(0, 3) {
		t.Fatal("empty bound pruned a candidate")
	}
	b.Observe(10, 2)
	cases := []struct {
		lower int64
		index int
		want  bool
	}{
		{11, 5, true},  // can at best cost 11 > 10: out
		{10, 5, true},  // ties at 10, but index 2 < 5 holds the tie: out
		{10, 1, false}, // ties at 10 and index 1 < 2 would win the tie: keep
		{9, 5, false},  // could strictly beat the bound: keep
		{0, 7, false},  // trivial lower bound never prunes
	}
	for _, c := range cases {
		if got := b.Prunable(c.lower, c.index); got != c.want {
			t.Errorf("Prunable(%d, %d) = %t, want %t", c.lower, c.index, got, c.want)
		}
	}
}

// TestRacePicksLowestCost checks the deterministic pick on serial and
// parallel pools: lowest cost wins, ties go to the lowest index.
func TestRacePicksLowestCost(t *testing.T) {
	cands := []Candidate[int64]{fixed(30), fixed(10), fixed(20), fixed(10)}
	for _, workers := range []int{1, 4} {
		out, win := Race(context.Background(), sched.New(workers), cands, Options{})
		if win != 1 {
			t.Fatalf("workers=%d: winner %d, want 1 (cost tie broken by index)", workers, win)
		}
		if out[win].Cost != 10 || out[win].Value != 10 {
			t.Fatalf("workers=%d: winning outcome %+v", workers, out[win])
		}
		for i, o := range out {
			if !o.Launched && !o.Pruned {
				t.Fatalf("workers=%d: candidate %d neither launched nor pruned", workers, i)
			}
		}
	}
}

// TestRaceFailuresLose checks that candidate errors only lose the race,
// and an all-failed race reports no winner while keeping every error.
func TestRaceFailuresLose(t *testing.T) {
	boom := errors.New("boom")
	failing := Candidate[int64]{Run: func(context.Context) (int64, int64, error) { return 0, 0, boom }}
	out, win := Race(context.Background(), sched.New(2), []Candidate[int64]{failing, fixed(42)}, Options{})
	if win != 1 || out[0].Err != boom {
		t.Fatalf("win=%d out[0].Err=%v", win, out[0].Err)
	}
	out, win = Race(context.Background(), sched.New(2), []Candidate[int64]{failing, failing}, Options{})
	if win != -1 {
		t.Fatalf("all-failed race reported winner %d", win)
	}
	for i, o := range out {
		if o.Err != boom {
			t.Fatalf("outcome %d lost its error: %+v", i, o)
		}
	}
}

// TestRacePrunesAtLaunch: on a serial pool candidates run in roster
// order, so a tight early success must prune later candidates whose
// lower bound cannot beat it — without changing the winner.
func TestRacePrunesAtLaunch(t *testing.T) {
	var ran atomic.Int64
	counted := func(cost, lower int64) Candidate[int64] {
		return Candidate[int64]{
			Lower: lower,
			Run: func(context.Context) (int64, int64, error) {
				ran.Add(1)
				return cost, cost, nil
			},
		}
	}
	m := &obs.Metrics{}
	cands := []Candidate[int64]{
		counted(5, 5),  // wins immediately at its own lower bound
		counted(5, 5),  // ties at best; index 0 holds the tie: prunable
		counted(4, 6),  // lower bound 6 > 5: prunable (cost field never used)
		counted(3, 2),  // could still beat 5: must run
	}
	out, win := Race(context.Background(), sched.New(1), cands, Options{Metrics: m})
	if win != 3 || out[3].Cost != 3 {
		t.Fatalf("win=%d out=%+v", win, out)
	}
	if !out[1].Pruned || !out[2].Pruned {
		t.Fatalf("prunable candidates ran: %+v", out)
	}
	if got := ran.Load(); got != 2 {
		t.Fatalf("%d candidates ran, want 2", got)
	}
	if c := m.Counters()["portfolio.pruned"]; c != 2 {
		t.Fatalf("portfolio.pruned = %d, want 2", c)
	}
}

// TestRaceCancelsLosers: a parallel race cancels a slow candidate whose
// lower bound a finished sibling has beaten.
func TestRaceCancelsLosers(t *testing.T) {
	slowStarted := make(chan struct{})
	slow := Candidate[int64]{
		Lower: 100, // provably worse than the fast sibling's 10
		Run: func(ctx context.Context) (int64, int64, error) {
			close(slowStarted)
			select {
			case <-ctx.Done():
				return 0, 0, ctx.Err()
			case <-time.After(30 * time.Second):
				return 100, 100, nil
			}
		},
	}
	fast := Candidate[int64]{
		Run: func(context.Context) (int64, int64, error) {
			<-slowStarted // guarantee the slow candidate is mid-flight
			return 10, 10, nil
		},
	}
	start := time.Now()
	out, win := Race(context.Background(), sched.New(4), []Candidate[int64]{slow, fast}, Options{})
	if win != 1 {
		t.Fatalf("winner %d, want 1", win)
	}
	if out[0].Err == nil {
		t.Fatalf("slow loser finished instead of being canceled: %+v", out[0])
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("race took %v; loser cancellation did not fire", elapsed)
	}
}

// TestRaceHedgeDelayLaunchesBackups: with a hedging delay the backups
// still launch (and can win) once the primary completes.
func TestRaceHedgeDelayLaunchesBackups(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cands := []Candidate[int64]{fixed(50), fixed(20), fixed(30)}
		start := time.Now()
		out, win := Race(context.Background(), sched.New(workers), cands, Options{HedgeDelay: time.Hour})
		if win != 1 {
			t.Fatalf("workers=%d: winner %d, want 1", workers, win)
		}
		for i, o := range out {
			if !o.Launched {
				t.Fatalf("workers=%d: backup %d never launched", workers, i)
			}
		}
		// The primary completes instantly, so the hour-long delay must
		// not be served out.
		if elapsed := time.Since(start); elapsed > time.Minute {
			t.Fatalf("hedge delay was served in full: %v", elapsed)
		}
	}
}

// TestRaceMaxCaps checks the roster cap: candidates past Max never run.
func TestRaceMaxCaps(t *testing.T) {
	var ran atomic.Int64
	count := Candidate[int64]{Run: func(context.Context) (int64, int64, error) {
		ran.Add(1)
		return 1, 1, nil
	}}
	out, win := Race(context.Background(), sched.New(2), []Candidate[int64]{count, count, count, count}, Options{Max: 2})
	if win < 0 || win > 1 {
		t.Fatalf("winner %d outside the cap", win)
	}
	if got := ran.Load(); got != 2 {
		t.Fatalf("%d candidates ran, want 2", got)
	}
	for i := 2; i < 4; i++ {
		if out[i].Launched || out[i].Pruned {
			t.Fatalf("capped candidate %d has outcome %+v", i, out[i])
		}
	}
}

// TestRaceCanceledContext: a dead context fails the in-flight candidates
// but already-finished ones still decide a winner.
func TestRaceCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cands := []Candidate[int64]{
		fixed(40),
		{Run: func(ctx context.Context) (int64, int64, error) {
			cancel() // dies after the primary already finished
			<-ctx.Done()
			return 0, 0, ctx.Err()
		}},
	}
	out, win := Race(ctx, sched.New(1), cands, Options{})
	if win != 0 {
		t.Fatalf("winner %d, want the finished candidate 0 (outcomes %+v)", win, out)
	}
	if out[1].Err == nil {
		t.Fatal("canceled candidate reported success")
	}
}

// TestRaceEmpty covers the degenerate rosters.
func TestRaceEmpty(t *testing.T) {
	out, win := Race[int64](context.Background(), sched.New(1), nil, Options{})
	if win != -1 || len(out) != 0 {
		t.Fatalf("empty race: win=%d len=%d", win, len(out))
	}
}
