package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nova"
)

// RequestRecord is one request in the flight recorder: everything needed
// to answer "which request was slow (or failed) and why" after the fact,
// without having had tracing globally enabled. Served as JSON at
// GET /debug/requests.
type RequestRecord struct {
	ID       string    `json:"id,omitempty"`
	Endpoint string    `json:"endpoint"`
	Time     time.Time `json:"time"` // wall-clock arrival
	Status   int       `json:"status"`
	// Cache is how the content-addressed path answered: "hit" (served
	// from cache), "miss" (this request led the engine run), "follower"
	// (shared another request's singleflight run), or "" (no cache path,
	// e.g. /v1/verify).
	Cache string `json:"cache,omitempty"`
	// Machine is the cache-key digest prefix — the content address of
	// the KISS2 source × options, so identical requests correlate.
	Machine   string `json:"machine,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`
	ErrorKind string `json:"error_kind,omitempty"`
	// The latency split: admission queue wait, engine time (led runs
	// only), and handler total.
	QueueMicros  int64 `json:"queue_us"`
	EncodeMicros int64 `json:"encode_us,omitempty"`
	TotalMicros  int64 `json:"total_us"`
	// Phases is the per-phase self-time table of the engine run, present
	// when the request opted into tracing (?trace=1) or asked for
	// include_telemetry.
	Phases []nova.WirePhase `json:"phases,omitempty"`
}

// failed reports whether the record belongs in the failure ring.
func (r *RequestRecord) failed() bool {
	return r.Status >= 400 || r.Status == 0 || r.ErrorKind != ""
}

// recorder is the bounded slow/error flight recorder: one fixed-size set
// of the slowest requests seen and one ring of the most recent failures.
// It is lock-cheap by design: once the slow set is full, a successful
// request no slower than the set's floor (an atomic) returns without
// taking the mutex — the steady-state path of a healthy server under
// load. Traced requests bypass the floor so an explicit ?trace=1 is
// always findable at /debug/requests afterwards.
type recorder struct {
	cap int
	// floor is the slow set's admission threshold in microseconds once
	// the set is full; -1 while it still has room.
	floor atomic.Int64

	mu    sync.Mutex
	slow  []RequestRecord
	fails []RequestRecord // ring, oldest at next
	next  int
}

// newRecorder returns a recorder keeping the n slowest and n most recent
// failed requests. n <= 0 disables recording (consider becomes a no-op
// and snapshots are empty).
func newRecorder(n int) *recorder {
	rc := &recorder{cap: n}
	rc.floor.Store(-1)
	return rc
}

// consider offers one finished request to the recorder.
func (rc *recorder) consider(rec RequestRecord) {
	if rc == nil || rc.cap <= 0 {
		return
	}
	failed := rec.failed()
	// Lock-free fast path: healthy, not slower than the full slow set's
	// floor, and not explicitly traced — nothing to record.
	if !failed && rec.Phases == nil && rec.TotalMicros <= rc.floor.Load() {
		return
	}
	rc.mu.Lock()
	if failed {
		if len(rc.fails) < rc.cap {
			rc.fails = append(rc.fails, rec)
		} else {
			rc.fails[rc.next] = rec
			rc.next = (rc.next + 1) % rc.cap
		}
	}
	if len(rc.slow) < rc.cap {
		rc.slow = append(rc.slow, rec)
		if len(rc.slow) == rc.cap {
			rc.floor.Store(rc.slowFloorLocked())
		}
	} else {
		mi := 0
		for i := range rc.slow {
			if rc.slow[i].TotalMicros < rc.slow[mi].TotalMicros {
				mi = i
			}
		}
		if rec.TotalMicros > rc.slow[mi].TotalMicros || rec.Phases != nil {
			rc.slow[mi] = rec
			rc.floor.Store(rc.slowFloorLocked())
		}
	}
	rc.mu.Unlock()
}

// slowFloorLocked returns the smallest total in the slow set.
func (rc *recorder) slowFloorLocked() int64 {
	floor := rc.slow[0].TotalMicros
	for _, r := range rc.slow[1:] {
		if r.TotalMicros < floor {
			floor = r.TotalMicros
		}
	}
	return floor
}

// RecorderSnapshot is the GET /debug/requests payload.
type RecorderSnapshot struct {
	// Slowest lists the slowest requests seen, slowest first.
	Slowest []RequestRecord `json:"slowest"`
	// RecentFailures lists the most recent failed requests, newest first.
	RecentFailures []RequestRecord `json:"recent_failures"`
}

// snapshot copies the recorder's state, sorted for presentation. The
// optional id filter keeps only records of that request ID (the
// companion of the ?trace=1 opt-in: trace a request, then fetch its
// phase table by ID).
func (rc *recorder) snapshot(id string) RecorderSnapshot {
	snap := RecorderSnapshot{Slowest: []RequestRecord{}, RecentFailures: []RequestRecord{}}
	if rc == nil || rc.cap <= 0 {
		return snap
	}
	rc.mu.Lock()
	snap.Slowest = append(snap.Slowest, rc.slow...)
	// Unroll the ring newest-first: entries before next are older.
	for i := 0; i < len(rc.fails); i++ {
		j := (rc.next - 1 - i + 2*len(rc.fails)) % len(rc.fails)
		if len(rc.fails) < rc.cap {
			// Not yet a ring: plain append order, newest at the end.
			j = len(rc.fails) - 1 - i
		}
		snap.RecentFailures = append(snap.RecentFailures, rc.fails[j])
	}
	rc.mu.Unlock()
	sort.SliceStable(snap.Slowest, func(i, j int) bool {
		return snap.Slowest[i].TotalMicros > snap.Slowest[j].TotalMicros
	})
	if id != "" {
		snap.Slowest = filterByID(snap.Slowest, id)
		snap.RecentFailures = filterByID(snap.RecentFailures, id)
	}
	return snap
}

func filterByID(recs []RequestRecord, id string) []RequestRecord {
	out := recs[:0:0]
	for _, r := range recs {
		if r.ID == id {
			out = append(out, r)
		}
	}
	if out == nil {
		out = []RequestRecord{}
	}
	return out
}
