package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nova"
)

const quickFSM = `
.i 1
.o 1
.s 4
.r c0
0 c0 c1 0
1 c0 c3 1
0 c1 c2 1
1 c1 c0 0
0 c2 c3 1
1 c2 c1 0
0 c3 c0 0
1 c3 c2 1
.e
`

func encodeBody(t *testing.T, rq nova.Request) *bytes.Reader {
	t.Helper()
	b, err := json.Marshal(rq)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

func post(s *Server, target string, body *bytes.Reader) *httptest.ResponseRecorder {
	r := httptest.NewRequest(http.MethodPost, target, body)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}

// TestEncodeCacheHitIsByteIdentical is the acceptance criterion of the
// serving layer: repeating an identical POST /v1/encode returns the
// cached bytes verbatim — hit counter up, no second engine run.
func TestEncodeCacheHitIsByteIdentical(t *testing.T) {
	s := New(Config{})
	rq := nova.Request{KISS2: quickFSM, Name: "quick", Algorithm: nova.IGreedy}

	first := post(s, "/v1/encode", encodeBody(t, rq))
	if first.Code != http.StatusOK {
		t.Fatalf("first POST: %d %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-Cache"); got != "MISS" {
		t.Fatalf("first X-Cache = %q", got)
	}
	second := post(s, "/v1/encode", encodeBody(t, rq))
	if second.Code != http.StatusOK {
		t.Fatalf("second POST: %d %s", second.Code, second.Body)
	}
	if got := second.Header().Get("X-Cache"); got != "HIT" {
		t.Fatalf("second X-Cache = %q", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatalf("cached replay differs:\n%s\n%s", first.Body, second.Body)
	}

	vars := s.Vars()
	if vars["cache.hits"] != 1 {
		t.Fatalf("cache.hits = %d, want 1", vars["cache.hits"])
	}
	if vars["engine.encodes"] != 1 {
		t.Fatalf("engine ran %d times, want 1", vars["engine.encodes"])
	}

	// The served body is a usable wire Response whose assignment verifies
	// against the machine it encodes.
	var rp nova.Response
	if err := json.Unmarshal(second.Body.Bytes(), &rp); err != nil {
		t.Fatal(err)
	}
	if rp.Machine != "quick" || rp.Area <= 0 {
		t.Fatalf("response %+v", rp)
	}
	f, err := nova.ParseKISSString(quickFSM)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := rp.Assignment()
	if err != nil {
		t.Fatal(err)
	}
	if err := nova.Verify(f, asg); err != nil {
		t.Fatalf("served assignment fails verify: %v", err)
	}
}

// TestEncodeSingleflightCollapse holds one encode open while identical
// requests pile up: exactly one engine run serves them all.
func TestEncodeSingleflightCollapse(t *testing.T) {
	const concurrent = 4
	s := New(Config{MaxInflight: concurrent + 1})
	started := make(chan struct{})
	release := make(chan struct{})
	realEncode := s.encode
	s.encode = func(ctx context.Context, f *nova.FSM, opt nova.Options) (*nova.Result, error) {
		started <- struct{}{}
		<-release
		return realEncode(ctx, f, opt)
	}
	rq := nova.Request{KISS2: quickFSM, Algorithm: nova.IGreedy}

	var wg sync.WaitGroup
	bodies := make([][]byte, concurrent)
	for i := range bodies {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := post(s, "/v1/encode", encodeBody(t, rq))
			if w.Code != http.StatusOK {
				t.Errorf("request %d: %d %s", i, w.Code, w.Body)
			}
			bodies[i] = w.Body.Bytes()
		}()
	}
	<-started // the leader is inside the engine
	// Wait until every other request joined the leader's flight.
	for s.flights.Shared() < concurrent-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := s.encodes.Load(); n != 1 {
		t.Fatalf("engine ran %d times for %d identical requests", n, concurrent)
	}
	for i := 1; i < concurrent; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("request %d got different bytes", i)
		}
	}
}

// TestEncodeMidRequestCancellation cancels the client while the engine
// is running; the handler must return promptly with the 499 accounting
// status and the engine context must be dead.
func TestEncodeMidRequestCancellation(t *testing.T) {
	s := New(Config{})
	engineCtxDead := make(chan error, 1)
	s.encode = func(ctx context.Context, f *nova.FSM, opt nova.Options) (*nova.Result, error) {
		<-ctx.Done()
		engineCtxDead <- ctx.Err()
		return nil, fmt.Errorf("nova: canceled: %w", nova.ErrCanceled)
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := httptest.NewRequest(http.MethodPost, "/v1/encode", encodeBody(t, nova.Request{KISS2: quickFSM}))
	r = r.WithContext(ctx)
	w := httptest.NewRecorder()

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeHTTP(w, r)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler did not return after cancellation")
	}
	if err := <-engineCtxDead; err == nil {
		t.Fatal("engine context survived the client hangup")
	}
	if w.Code != statusClientClosedRequest {
		t.Fatalf("status = %d, want %d", w.Code, statusClientClosedRequest)
	}
	if s.Vars()["cache.entries"] != 0 {
		t.Fatal("a canceled run was cached")
	}
}

// TestEncodeTimeoutParam drives the per-request deadline: a tiny
// ?timeout= on a slow encode must answer 504.
func TestEncodeTimeoutParam(t *testing.T) {
	s := New(Config{})
	s.encode = func(ctx context.Context, f *nova.FSM, opt nova.Options) (*nova.Result, error) {
		<-ctx.Done()
		return nil, fmt.Errorf("nova: canceled: %w", nova.ErrCanceled)
	}
	w := post(s, "/v1/encode?timeout=10ms", encodeBody(t, nova.Request{KISS2: quickFSM}))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", w.Code, w.Body)
	}
	var rp nova.Response
	if err := json.Unmarshal(w.Body.Bytes(), &rp); err != nil {
		t.Fatal(err)
	}
	if rp.ErrorKind != nova.ErrKindCanceled {
		t.Fatalf("error_kind = %q", rp.ErrorKind)
	}

	// A malformed timeout is a 400 before any engine work.
	w = post(s, "/v1/encode?timeout=bogus", encodeBody(t, nova.Request{KISS2: quickFSM}))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad timeout: status = %d", w.Code)
	}
}

// TestSaturationAnswers429 fills the only admission slot and requires
// the next request to bounce with 429 + Retry-After instead of queueing.
func TestSaturationAnswers429(t *testing.T) {
	s := New(Config{MaxInflight: 1, QueueWait: -1})
	started := make(chan struct{})
	release := make(chan struct{})
	s.encode = func(ctx context.Context, f *nova.FSM, opt nova.Options) (*nova.Result, error) {
		close(started)
		<-release
		return nil, fmt.Errorf("nova: canceled: %w", nova.ErrCanceled)
	}
	go post(s, "/v1/encode", encodeBody(t, nova.Request{KISS2: quickFSM}))
	<-started

	w := post(s, "/v1/encode", encodeBody(t, nova.Request{KISS2: quickFSM}))
	close(release)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if s.Vars()["http.rejected.saturated"] != 1 {
		t.Fatal("saturation rejection not counted")
	}
}

// TestDrainRefusesNewFinishesInflight pins the graceful-drain contract:
// after Drain, healthz and new work answer 503, but a request already in
// flight completes normally.
func TestDrainRefusesNewFinishesInflight(t *testing.T) {
	s := New(Config{MaxInflight: 2})
	started := make(chan struct{})
	release := make(chan struct{})
	realEncode := s.encode
	s.encode = func(ctx context.Context, f *nova.FSM, opt nova.Options) (*nova.Result, error) {
		close(started)
		<-release
		return realEncode(ctx, f, opt)
	}

	inflight := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		inflight <- post(s, "/v1/encode", encodeBody(t, nova.Request{KISS2: quickFSM, Algorithm: nova.IGreedy}))
	}()
	<-started

	s.Drain()
	if !s.Draining() {
		t.Fatal("Draining() = false after Drain")
	}

	// Load balancers see the drain on healthz…
	hw := httptest.NewRecorder()
	s.ServeHTTP(hw, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if hw.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", hw.Code)
	}
	// …new work is refused with Retry-After…
	nw := post(s, "/v1/encode", encodeBody(t, nova.Request{KISS2: quickFSM}))
	if nw.Code != http.StatusServiceUnavailable || nw.Header().Get("Retry-After") == "" {
		t.Fatalf("new work while draining: %d, Retry-After %q", nw.Code, nw.Header().Get("Retry-After"))
	}
	// …and the in-flight request still completes.
	close(release)
	w := <-inflight
	if w.Code != http.StatusOK {
		t.Fatalf("in-flight request died in the drain: %d %s", w.Code, w.Body)
	}
}

// TestEncodeBadRequests maps malformed inputs onto 400s.
func TestEncodeBadRequests(t *testing.T) {
	s := New(Config{})
	cases := []struct {
		name string
		body string
	}{
		{"bad json", "{"},
		{"empty kiss2", `{}`},
		{"malformed kiss2", `{"kiss2": ".i nope"}`},
		{"unknown algorithm", `{"kiss2": "` + strings.ReplaceAll(strings.TrimSpace(quickFSM), "\n", `\n`) + `", "algorithm": "bogus"}`},
	}
	for _, tc := range cases {
		w := post(s, "/v1/encode", bytes.NewReader([]byte(tc.body)))
		if w.Code != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400; body %s", tc.name, w.Code, w.Body)
		}
		var rp nova.Response
		if err := json.Unmarshal(w.Body.Bytes(), &rp); err != nil {
			t.Fatalf("%s: error body is not a Response: %v", tc.name, err)
		}
		if rp.ErrorKind != nova.ErrKindBadRequest || rp.Error == "" {
			t.Fatalf("%s: error fields %+v", tc.name, rp)
		}
	}
	if s.encodes.Load() != 0 {
		t.Fatal("a bad request reached the engine")
	}
}

// TestBatchPartialResults posts a batch with one bad item: the sibling
// succeeds, the bad item carries its error inline, nothing aborts.
func TestBatchPartialResults(t *testing.T) {
	s := New(Config{})
	bq := BatchRequest{Requests: []nova.Request{
		{KISS2: quickFSM, Name: "good", Algorithm: nova.IGreedy},
		{KISS2: quickFSM, Name: "bad", Algorithm: "bogus"},
	}}
	b, err := json.Marshal(bq)
	if err != nil {
		t.Fatal(err)
	}
	w := post(s, "/v1/encode/batch", bytes.NewReader(b))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var out BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Responses) != 2 {
		t.Fatalf("%d responses for 2 requests", len(out.Responses))
	}
	var good, bad nova.Response
	if err := json.Unmarshal(out.Responses[0], &good); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(out.Responses[1], &bad); err != nil {
		t.Fatal(err)
	}
	if good.Error != "" || good.Area <= 0 {
		t.Fatalf("good item: %+v", good)
	}
	if bad.ErrorKind != nova.ErrKindBadRequest || bad.Machine != "bad" {
		t.Fatalf("bad item: %+v", bad)
	}

	// The batch warmed the cache: the same machine as a point request is
	// now a hit.
	pw := post(s, "/v1/encode", encodeBody(t, nova.Request{KISS2: quickFSM, Name: "good", Algorithm: nova.IGreedy}))
	if got := pw.Header().Get("X-Cache"); got != "HIT" {
		t.Fatalf("point request after batch: X-Cache = %q", got)
	}
}

// TestBatchBounds rejects empty and oversized batches.
func TestBatchBounds(t *testing.T) {
	s := New(Config{MaxBatch: 2})
	for _, body := range []string{
		`{"requests": []}`,
		`{"requests": [{}, {}, {}]}`,
	} {
		w := post(s, "/v1/encode/batch", bytes.NewReader([]byte(body)))
		if w.Code != http.StatusBadRequest {
			t.Fatalf("body %s: status %d, want 400", body, w.Code)
		}
	}
}

// TestVerifyEndpoint round-trips a served encoding through /v1/verify
// and checks that a wrong code answers ok=false (not an HTTP error).
func TestVerifyEndpoint(t *testing.T) {
	s := New(Config{})
	ew := post(s, "/v1/encode", encodeBody(t, nova.Request{KISS2: quickFSM, Algorithm: nova.IGreedy}))
	if ew.Code != http.StatusOK {
		t.Fatalf("encode: %d", ew.Code)
	}
	var rp nova.Response
	if err := json.Unmarshal(ew.Body.Bytes(), &rp); err != nil {
		t.Fatal(err)
	}

	vq := nova.VerifyRequest{KISS2: quickFSM, States: rp.States}
	b, _ := json.Marshal(vq)
	vw := post(s, "/v1/verify", bytes.NewReader(b))
	if vw.Code != http.StatusOK {
		t.Fatalf("verify: %d %s", vw.Code, vw.Body)
	}
	var vr nova.VerifyResponse
	if err := json.Unmarshal(vw.Body.Bytes(), &vr); err != nil {
		t.Fatal(err)
	}
	if !vr.OK {
		t.Fatalf("served encoding does not verify: %+v", vr)
	}

	// Break the code table: duplicate codes cannot implement the machine.
	vq.States = &nova.WireEncoding{Bits: rp.States.Bits, Codes: make([]string, len(rp.States.Codes))}
	for i := range vq.States.Codes {
		vq.States.Codes[i] = rp.States.Codes[0]
	}
	b, _ = json.Marshal(vq)
	vw = post(s, "/v1/verify", bytes.NewReader(b))
	if vw.Code != http.StatusOK {
		t.Fatalf("verify mismatch: %d", vw.Code)
	}
	if err := json.Unmarshal(vw.Body.Bytes(), &vr); err != nil {
		t.Fatal(err)
	}
	if vr.OK || vr.Error == "" {
		t.Fatalf("duplicate codes verified: %+v", vr)
	}

	// A malformed verify request is still a 400.
	vw = post(s, "/v1/verify", bytes.NewReader([]byte(`{"kiss2": ""}`)))
	if vw.Code != http.StatusBadRequest {
		t.Fatalf("malformed verify: %d", vw.Code)
	}
}

// TestHealthzAndVars smoke-checks the two GET endpoints.
func TestHealthzAndVars(t *testing.T) {
	s := New(Config{})
	hw := httptest.NewRecorder()
	s.ServeHTTP(hw, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if hw.Code != http.StatusOK {
		t.Fatalf("healthz: %d", hw.Code)
	}

	post(s, "/v1/encode", encodeBody(t, nova.Request{KISS2: quickFSM}))
	vw := httptest.NewRecorder()
	s.ServeHTTP(vw, httptest.NewRequest(http.MethodGet, "/debug/vars", nil))
	if vw.Code != http.StatusOK {
		t.Fatalf("vars: %d", vw.Code)
	}
	var payload struct {
		Nova map[string]int64 `json:"nova"`
	}
	if err := json.Unmarshal(vw.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"http.requests", "cache.misses", "engine.encodes", "http.latency./v1/encode.count"} {
		if _, ok := payload.Nova[key]; !ok {
			t.Fatalf("/debug/vars lost %q: %v", key, payload.Nova)
		}
	}
}

// TestBodyBound refuses request bodies over the configured limit.
func TestBodyBound(t *testing.T) {
	s := New(Config{MaxBodyBytes: 128})
	big := nova.Request{KISS2: quickFSM + strings.Repeat("# pad\n", 100)}
	w := post(s, "/v1/encode", encodeBody(t, big))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("oversized body: status = %d, want 400", w.Code)
	}
}
