//go:build !race

package serve

// raceEnabled is false in a regular build; see race_enabled_test.go.
const raceEnabled = false
