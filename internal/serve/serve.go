// Package serve is the network serving layer of the reproduction: an
// HTTP/JSON front end over the concurrent encoding engine, designed for
// heavy repeated traffic.
//
//	POST /v1/encode        one machine     (nova.Request  -> nova.Response)
//	POST /v1/encode/batch  many machines   (BatchRequest  -> BatchResponse)
//	POST /v1/verify        check a code    (nova.VerifyRequest -> nova.VerifyResponse)
//	GET  /v1/healthz       liveness / drain state
//	GET  /debug/vars       counters, cache and latency metrics (expvar-style JSON)
//	GET  /debug/pprof/     runtime profiles
//
// Three mechanisms make the layer production-shaped:
//
//  1. Content-addressed result caching. NOVA encodings are pure
//     functions of the KISS2 source and the result-determining options,
//     so responses are cached under nova.Request.CacheKey (a SHA-256 of
//     the canonical machine text and normalized options) in a sharded,
//     byte-bounded LRU; repeated requests are served byte-identical
//     without a second engine run, and concurrent identical requests
//     collapse onto one run (singleflight).
//  2. Admission control with priority-aware load shedding. A bounded
//     semaphore caps concurrent engine work — cache hits bypass it, so
//     cached requests are served even under pressure. A saturated server
//     answers 429 + Retry-After instead of queueing without bound, and
//     sheds selectively: low-criticality requests (X-Nova-Priority: low)
//     shed immediately, expensive searches (iexact, portfolio, best,
//     iovariant) shed before cheap heuristics queue, and high-criticality
//     requests always get the full queue wait. Every request runs under a
//     deadline (?timeout= up to the configured cap, else the server
//     default), and every response carries X-Nova-Retry-Safe: encodes
//     are pure, so retrying is always side-effect free.
//  3. Graceful drain. Drain flips the server into draining mode:
//     /v1/healthz reports 503 (so load balancers stop routing), new work
//     is refused with 503 + Retry-After, and in-flight requests finish
//     normally (the process owner pairs this with http.Server.Shutdown).
//  4. Deterministic fault injection (Config.FaultInjection, off by
//     default): seeded per-request draws inject latency, 503s and
//     dropped connections on the POST endpoints, so client retry, hedge
//     and breaker paths are testable without flakiness. Disabled, the
//     middleware is provably absent — handlers are registered unwrapped.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"nova"
	"nova/internal/obs"
	"nova/internal/sched"
)

// Config sizes a Server. Zero values select the documented defaults.
type Config struct {
	// CacheBytes bounds the result cache payload (default 64 MiB).
	CacheBytes int64
	// MaxInflight caps concurrently admitted requests (default
	// sched.PoolSize(0, 0), i.e. GOMAXPROCS).
	MaxInflight int
	// QueueWait is how long an arriving request may wait for an
	// admission slot before the 429 (default 100ms; negative = reject
	// immediately).
	QueueWait time.Duration
	// DefaultTimeout is the per-request deadline when the client sends
	// no ?timeout= (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the client-requested ?timeout= (default 2m).
	MaxTimeout time.Duration
	// MaxBodyBytes bounds a request body (default 4 MiB).
	MaxBodyBytes int64
	// MaxBatch bounds the machines of one batch request (default 64).
	MaxBatch int
	// Parallelism and Intra set the per-encode worker knobs
	// (nova.Options.Parallelism / IntraParallelism). The default
	// Parallelism is 1: under concurrent traffic, one worker per encode
	// maximizes throughput, and admission — not per-run fan-out — owns
	// the machine. Raise it (or Intra) for latency-sensitive, low-QPS
	// deployments; sched.PoolSize(Parallelism, Intra) workers per run
	// times MaxInflight bounds total engine goroutines.
	Parallelism int
	Intra       int
	// Tracer receives the server's request/cache metrics; a fresh tracer
	// is created when nil. Expose it with obs.PublishExpvar or read
	// /debug/vars.
	Tracer *obs.Tracer
	// Logger, when non-nil, receives one structured warning per failed
	// request — and, with AccessLog, one access line per request.
	Logger *slog.Logger
	// AccessLog emits one structured Info line per admitted request to
	// Logger: request ID, endpoint, status, cache state, machine hash,
	// and the queue/encode/total latency split.
	AccessLog bool
	// RecorderSize caps each ring of the slow/error flight recorder
	// served at GET /debug/requests (the N slowest and the N most recent
	// failed requests). 0 selects the default 32; negative disables the
	// recorder.
	RecorderSize int
	// DisableRequestObs turns off the per-request observability
	// decoration: request IDs, the flight recorder, the access log, and
	// the ?trace=1 opt-in. RED metrics and the drain accounting stay on
	// (they are plain counters with no per-request heap cost). The
	// disabled path performs no per-request observability allocation —
	// guarded by TestRequestObsDisabledAllocFree.
	DisableRequestObs bool
	// FaultInjection, when non-nil, arms the deterministic fault-
	// injection middleware on the POST endpoints (see FaultConfig). Nil —
	// the default — registers the handlers unwrapped: the disabled
	// middleware is a structural no-op, not a rate check.
	FaultInjection *FaultConfig
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = sched.PoolSize(0, 0)
	}
	if c.QueueWait == 0 {
		c.QueueWait = 100 * time.Millisecond
	}
	if c.QueueWait < 0 {
		c.QueueWait = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	if c.Tracer == nil {
		c.Tracer = obs.New()
	}
	if c.RecorderSize == 0 {
		c.RecorderSize = 32
	}
	if c.RecorderSize < 0 {
		c.RecorderSize = 0
	}
	return c
}

// encodeFunc / verifyFunc are the engine entry points, fields so the
// httptest suite can substitute deterministic stubs.
type encodeFunc func(ctx context.Context, f *nova.FSM, opt nova.Options) (*nova.Result, error)
type verifyFunc func(ctx context.Context, f *nova.FSM, asg nova.Assignment) error

// Server is the HTTP serving layer. Create with New; it implements
// http.Handler.
type Server struct {
	cfg      Config
	cache    *Cache
	flights  flights
	sem      chan struct{}
	pool     *sched.Pool // batch fan-out, sized like the admission bound
	recorder *recorder   // slow/error flight recorder (GET /debug/requests)

	draining atomic.Bool
	inflight atomic.Int64
	encodes  atomic.Int64 // actual engine runs (cache misses that ran)

	// Drain accounting: every request admitted past the semaphore ends
	// as exactly one of completed (2xx/3xx), failed (4xx/5xx) or
	// canceled (client gone / nothing written), so a final snapshot
	// always satisfies admitted == completed + failed + canceled.
	admitted  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64

	ridPrefix string // per-process request-ID prefix
	ridSeq    atomic.Uint64

	fault *faultInjector // nil = disabled (handlers registered unwrapped)

	mux    *http.ServeMux
	encode encodeFunc
	verify verifyFunc
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		cache:     NewCache(cfg.CacheBytes),
		sem:       make(chan struct{}, cfg.MaxInflight),
		pool:      sched.New(cfg.MaxInflight),
		recorder:  newRecorder(cfg.RecorderSize),
		ridPrefix: newRIDPrefix(),
		encode:    nova.EncodeContext,
		verify:    nova.VerifyContext,
	}
	if cfg.FaultInjection != nil {
		s.fault = newFaultInjector(*cfg.FaultInjection, s.Metrics())
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/encode", s.withFaults(s.admittedH("/v1/encode", s.handleEncode)))
	mux.HandleFunc("POST /v1/encode/batch", s.withFaults(s.admittedH("/v1/encode/batch", s.handleBatch)))
	mux.HandleFunc("POST /v1/verify", s.withFaults(s.admittedH("/v1/verify", s.handleVerify)))
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/vars", s.handleVars)
	mux.HandleFunc("GET /debug/requests", s.handleRequests)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain flips the server into draining mode: healthz reports 503, new
// requests are refused with 503 + Retry-After, in-flight requests finish
// normally. It never blocks; pair it with http.Server.Shutdown, which
// waits for the in-flight connections.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Metrics returns the server's counter set (also visible at /debug/vars).
func (s *Server) Metrics() *obs.Metrics { return s.cfg.Tracer.Metrics() }

// Tracer returns the server's tracer, for expvar publication or span
// streaming.
func (s *Server) Tracer() *obs.Tracer { return s.cfg.Tracer }

// Vars merges every server counter into one flat map: HTTP counters and
// latency histograms, cache statistics, engine-run and singleflight
// totals, and the inflight/draining gauges. This is the /debug/vars
// payload (under the "nova" key).
func (s *Server) Vars() map[string]int64 {
	out := s.Metrics().Vars()
	if out == nil {
		out = make(map[string]int64)
	}
	cs := s.cache.Stats()
	out["cache.hits"] = cs.Hits
	out["cache.misses"] = cs.Misses
	out["cache.evictions"] = cs.Evictions
	out["cache.bytes"] = cs.Bytes
	out["cache.entries"] = cs.Entries
	out["engine.encodes"] = s.encodes.Load()
	out["flight.leaders"] = s.flights.Leads()
	out["flight.shared"] = s.flights.Shared()
	out["http.inflight"] = s.inflight.Load()
	out["serve.admitted"] = s.admitted.Load()
	out["serve.completed"] = s.completed.Load()
	out["serve.failed"] = s.failed.Load()
	out["serve.canceled"] = s.canceled.Load()
	if s.draining.Load() {
		out["server.draining"] = 1
	}
	return out
}

// admittedH wraps an endpoint with drain refusal, the per-request
// deadline, the request-scoped observability (request IDs, RED metrics,
// flight recorder, access log) and the body bound. Engine capacity is
// NOT taken here: the handlers acquire a slot (acquireSlot) only when
// real engine work is needed, so cache hits and malformed requests are
// served even when every slot is busy. The reqObs record lives on this
// frame's stack and is threaded to the handler by pointer; its
// per-endpoint metric names were pre-concatenated at registration, so
// the request path builds no strings beyond the (opt-in) request ID.
func (s *Server) admittedH(endpoint string, h func(http.ResponseWriter, *http.Request, *reqObs)) http.HandlerFunc {
	ep := endpointKeysOf(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		m := s.Metrics()
		m.Add("http.requests", 1)
		m.Add(ep.requests, 1)
		var ro reqObs
		ro.endpoint = ep.name
		ro.start = time.Now()
		ro.pri = priorityOf(r)
		if !s.cfg.DisableRequestObs {
			ro.id = s.requestID(r)
			w.Header().Set("X-Request-Id", ro.id)
			ro.trace = traceRequested(r)
		}
		// Retry-safety metadata: every nova endpoint is a pure function
		// of its request (responses are content-addressed), so a retry
		// can never duplicate a side effect. Stated per response for
		// clients and proxies that decide replays generically.
		w.Header().Set("X-Nova-Retry-Safe", "1")
		if s.draining.Load() {
			m.Add("http.rejected.draining", 1)
			m.Add(shedKey(ro.pri), 1)
			s.refuse(w, &ro, http.StatusServiceUnavailable, "5", "server draining")
			return
		}
		s.admitted.Add(1)
		n := s.inflight.Add(1)
		m.Max("http.inflight_max", n)
		start := time.Now()
		defer func() {
			s.inflight.Add(-1)
			ro.total = time.Since(start)
			m.ObserveDur(ep.latency, ro.total)
			s.finishObs(ep, &ro)
		}()

		d, err := requestTimeout(r, s.cfg)
		if err != nil {
			s.writeError(w, &ro, http.StatusBadRequest, fmt.Errorf("%w: %v", nova.ErrBadOptions, err))
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		r = r.WithContext(ctx)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		h(w, r, &ro)
	}
}

// acquireSlot takes an engine slot under the priority shedding policy.
// The fast path (a free slot) admits everyone. Under saturation:
//
//   - low-priority requests shed immediately — they are the first load
//     dropped under pressure;
//   - expensive work (iexact, portfolio, best, iovariant) at normal
//     priority sheds without queueing — the searches with heavy-tailed
//     latency go first, cheap heuristics keep flowing;
//   - everything else (cheap work, and high priority regardless of
//     cost) waits up to cfg.QueueWait for a slot.
//
// A false return means the request was shed (or its client left): the
// saturation counters are already ticked and the caller answers with
// the overloaded error. Callers that got true release with releaseSlot.
func (s *Server) acquireSlot(ctx context.Context, pri priority, cost costClass) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	default:
	}
	shed := func() bool {
		if ctx.Err() != nil {
			return false // client gone: accounted as canceled, not shed
		}
		m := s.Metrics()
		m.Add("http.rejected.saturated", 1)
		m.Add(shedKey(pri), 1)
		return false
	}
	if s.cfg.QueueWait <= 0 || pri == priLow || (cost == costExpensive && pri != priHigh) {
		return shed()
	}
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return true
	case <-t.C:
		return shed()
	case <-ctx.Done():
		return false
	}
}

func (s *Server) releaseSlot() { <-s.sem }

// overloadedErr is the typed refusal acquireSlot's callers return: the
// wire kind is ErrKindOverloaded, the status 429, and writeError adds
// the Retry-After header. A dead client context turns into the canceled
// error instead, so the 499 accounting stays truthful.
func overloadedErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", nova.ErrCanceled, err)
	}
	return fmt.Errorf("%w: no engine capacity, load shed", nova.ErrOverloaded)
}

// requestTimeout resolves the per-request deadline from ?timeout=.
func requestTimeout(r *http.Request, cfg Config) (time.Duration, error) {
	q := r.URL.Query().Get("timeout")
	if q == "" {
		return cfg.DefaultTimeout, nil
	}
	d, err := time.ParseDuration(q)
	if err != nil {
		return 0, fmt.Errorf("timeout %q: %v", q, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("timeout %q must be positive", q)
	}
	if d > cfg.MaxTimeout {
		d = cfg.MaxTimeout
	}
	return d, nil
}

// handleEncode serves POST /v1/encode.
func (s *Server) handleEncode(w http.ResponseWriter, r *http.Request, ro *reqObs) {
	var rq nova.Request
	if err := json.NewDecoder(r.Body).Decode(&rq); err != nil {
		s.writeError(w, ro, http.StatusBadRequest, fmt.Errorf("%w: body: %v", nova.ErrBadOptions, err))
		return
	}
	body, hit, err := s.encodeCached(r.Context(), &rq, ro, ro.pri)
	if err != nil {
		s.writeError(w, ro, statusOf(r.Context(), err), err)
		return
	}
	state := "MISS"
	if hit {
		state = "HIT"
	}
	// The ?trace=1 phase table travels as a header: the body is the
	// cached artifact and must stay byte-identical across replays.
	if ro.wantTrace() && len(ro.phases) > 0 {
		if pb, err := json.Marshal(ro.phases); err == nil {
			w.Header().Set("X-Nova-Phases", string(pb))
		}
	}
	s.writeBody(w, ro, http.StatusOK, body, state)
}

// encodeCached is the content-addressed path shared by the single and
// batch endpoints: cache lookup, then a singleflight-collapsed engine
// run whose marshaled Response is cached for the next identical request.
// ro (nil for the batch fan-out's per-item calls) receives the request's
// cache interaction, engine time and — for ?trace=1 leaders — the phase
// table. A request-scoped trace never reaches the cached body: the
// tracer is request-local and the snapshot is stripped before marshal,
// so traced and untraced requests share byte-identical cache entries.
//
// The engine slot is taken here, after the cache lookup: cache hits
// cost no capacity and are served even under saturation; a cache miss
// pays admission under the priority shedding policy and can come back
// with the overloaded error.
func (s *Server) encodeCached(ctx context.Context, rq *nova.Request, ro *reqObs, pri priority) (body []byte, hit bool, err error) {
	key, err := rq.CacheKey()
	if err != nil {
		return nil, false, err
	}
	ro.setRequest(key, rq)
	if b, ok := s.cache.Get(key); ok {
		ro.setCache("hit")
		return b, true, nil
	}
	t0 := time.Now()
	if !s.acquireSlot(ctx, pri, costOf(rq.Algorithm)) {
		return nil, false, overloadedErr(ctx)
	}
	defer s.releaseSlot()
	ro.setQueue(time.Since(t0))
	led := false
	b, joined, err := s.flights.Do(ctx, key, func() ([]byte, error) {
		led = true
		f, err := rq.Machine()
		if err != nil {
			return nil, err
		}
		opt := rq.Options()
		opt.Parallelism = s.cfg.Parallelism
		opt.IntraParallelism = s.cfg.Intra
		if rq.IncludeTelemetry || ro.wantTrace() {
			opt.Tracer = obs.New()
		}
		s.encodes.Add(1)
		t0 := time.Now()
		res, err := s.encode(ctx, f, opt)
		ro.setEncode(time.Since(t0))
		if err != nil {
			return nil, err
		}
		if opt.Tracer != nil {
			ro.setPhases(nova.WirePhasesOf(res.Telemetry))
			if !rq.IncludeTelemetry {
				res.Telemetry = nil // request-scoped trace: keep it out of the cached body
			}
		}
		b, err := json.Marshal(nova.ResponseOf(f, res))
		if err != nil {
			return nil, err
		}
		s.cache.Put(key, b)
		return b, nil
	})
	switch {
	case led:
		ro.setCache("miss")
	case joined:
		ro.setCache("follower")
	}
	return b, false, err
}

// BatchRequest / BatchResponse are the wire envelope of
// POST /v1/encode/batch. Responses[i] answers Requests[i]; a failed
// machine carries its error inline (the nova.Response error fields) and
// never aborts its siblings — the same partial-results contract as
// nova.EncodeAll.
type BatchRequest struct {
	Requests []nova.Request `json:"requests"`
}

type BatchResponse struct {
	Responses []json.RawMessage `json:"responses"`
}

// handleBatch serves POST /v1/encode/batch: the items fan out over the
// server's bounded pool and each one goes through the cached single-
// encode path, so a batch warms the cache for later point requests and
// vice versa. Per-item observation is nil — reqObs is single-goroutine
// by design; the batch is observed as one request.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, ro *reqObs) {
	var bq BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&bq); err != nil {
		s.writeError(w, ro, http.StatusBadRequest, fmt.Errorf("%w: body: %v", nova.ErrBadOptions, err))
		return
	}
	if len(bq.Requests) == 0 {
		s.writeError(w, ro, http.StatusBadRequest, fmt.Errorf("%w: empty batch", nova.ErrBadOptions))
		return
	}
	if len(bq.Requests) > s.cfg.MaxBatch {
		s.writeError(w, ro, http.StatusBadRequest,
			fmt.Errorf("%w: batch of %d exceeds the %d-machine bound", nova.ErrBadOptions, len(bq.Requests), s.cfg.MaxBatch))
		return
	}
	out := BatchResponse{Responses: make([]json.RawMessage, len(bq.Requests))}
	g := s.pool.Group(r.Context())
	for i := range bq.Requests {
		g.Go(func(ctx context.Context) error {
			rq := &bq.Requests[i]
			body, _, err := s.encodeCached(ctx, rq, nil, ro.pri)
			if err != nil {
				if errors.Is(err, nova.ErrCanceled) && ctx.Err() != nil {
					return err // whole batch canceled: stop the siblings
				}
				body, merr := json.Marshal(nova.ErrorResponse(rq.Name, rq.Algorithm, err))
				if merr != nil {
					return merr
				}
				out.Responses[i] = body
				return nil
			}
			out.Responses[i] = body
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		s.writeError(w, ro, statusOf(r.Context(), err), err)
		return
	}
	s.writeJSON(w, ro, http.StatusOK, out)
}

// handleVerify serves POST /v1/verify. A verification mismatch is a
// successful request whose answer is "no": 200 with ok=false.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request, ro *reqObs) {
	var vq nova.VerifyRequest
	if err := json.NewDecoder(r.Body).Decode(&vq); err != nil {
		s.writeError(w, ro, http.StatusBadRequest, fmt.Errorf("%w: body: %v", nova.ErrBadOptions, err))
		return
	}
	f, err := vq.Machine()
	if err != nil {
		s.writeError(w, ro, http.StatusBadRequest, err)
		return
	}
	asg, err := vq.Assignment()
	if err != nil {
		s.writeError(w, ro, http.StatusBadRequest, err)
		return
	}
	t0 := time.Now()
	if !s.acquireSlot(r.Context(), ro.pri, costCheap) {
		err := overloadedErr(r.Context())
		s.writeError(w, ro, statusOf(r.Context(), err), err)
		return
	}
	ro.setQueue(time.Since(t0))
	err = s.verify(r.Context(), f, asg)
	s.releaseSlot()
	if err != nil {
		if errors.Is(err, nova.ErrCanceled) {
			s.writeError(w, ro, statusOf(r.Context(), err), err)
			return
		}
		s.writeJSON(w, ro, http.StatusOK, nova.VerifyResponse{APIVersion: nova.WireVersion, OK: false, Error: err.Error(), ErrorKind: nova.ErrorKindOf(err)})
		return
	}
	s.writeJSON(w, ro, http.StatusOK, nova.VerifyResponse{APIVersion: nova.WireVersion, OK: true})
}

// handleHealthz serves GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "5")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleVars serves GET /debug/vars in expvar's JSON shape, with every
// server counter under the "nova" key.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{"nova": s.Vars()}) //nolint:errcheck // best-effort diagnostics
}

// handleMetrics serves GET /metrics: the same counters and histograms as
// /debug/vars in Prometheus text exposition (see prom.go).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeProm(w)
}

// handleRequests serves GET /debug/requests: the flight recorder's
// slowest requests and most recent failures, optionally filtered to one
// request ID (?id=...).
func (s *Server) handleRequests(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.recorder.snapshot(r.URL.Query().Get("id"))) //nolint:errcheck // best-effort diagnostics
}

// statusOf maps an engine error onto its HTTP status. Deadline expiry of
// the request's own context is a server-side timeout (504); every other
// cancellation means the client is gone and the status is moot.
func statusOf(ctx context.Context, err error) int {
	switch {
	case errors.Is(err, nova.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, nova.ErrBadOptions):
		return http.StatusBadRequest
	case errors.Is(err, nova.ErrGaveUp), errors.Is(err, nova.ErrUnencodable):
		return http.StatusUnprocessableEntity
	case errors.Is(err, nova.ErrCanceled), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return http.StatusGatewayTimeout
		}
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// statusClientClosedRequest is nginx's conventional code for "client
// hung up first"; the client never sees it, the access metrics do.
const statusClientClosedRequest = 499

func (s *Server) refuse(w http.ResponseWriter, ro *reqObs, status int, retryAfter, msg string) {
	w.Header().Set("Retry-After", retryAfter)
	s.writeError(w, ro, status, fmt.Errorf("%w: %s", nova.ErrOverloaded, msg))
}

func (s *Server) writeError(w http.ResponseWriter, ro *reqObs, status int, err error) {
	s.Metrics().Add("http.status."+strconv.Itoa(status), 1)
	kind := nova.ErrorKindOf(err)
	if kind == "" {
		kind = nova.ErrKindInternal
	}
	if kind == nova.ErrKindOverloaded && w.Header().Get("Retry-After") == "" {
		w.Header().Set("Retry-After", "1")
	}
	ro.setOutcome(status, kind)
	if s.cfg.Logger != nil {
		s.cfg.Logger.Warn("request failed", "status", status, "err", err, "id", requestIDOf(ro))
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	b, merr := json.Marshal(&nova.Response{Error: err.Error(), ErrorKind: kind})
	if merr != nil {
		return
	}
	w.Write(append(b, '\n')) //nolint:errcheck // client may be gone
}

// requestIDOf is ro.id, nil-safe for log sites.
func requestIDOf(ro *reqObs) string {
	if ro == nil {
		return ""
	}
	return ro.id
}

func (s *Server) writeJSON(w http.ResponseWriter, ro *reqObs, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		s.writeError(w, ro, http.StatusInternalServerError, err)
		return
	}
	s.writeBody(w, ro, status, b, "")
}

func (s *Server) writeBody(w http.ResponseWriter, ro *reqObs, status int, b []byte, cacheState string) {
	s.Metrics().Add("http.status."+strconv.Itoa(status), 1)
	ro.setOutcome(status, "")
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if cacheState != "" {
		w.Header().Set("X-Cache", cacheState)
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(status)
	w.Write(b) //nolint:errcheck // client may be gone
}
