package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"nova"
)

func TestCacheGetPut(t *testing.T) {
	c := NewCache(1 << 20)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on an empty cache")
	}
	c.Put("a", []byte("payload"))
	got, ok := c.Get("a")
	if !ok || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// Overwrite in place keeps one entry.
	c.Put("a", []byte("other"))
	got, _ = c.Get("a")
	if !bytes.Equal(got, []byte("other")) {
		t.Fatalf("overwrite lost: %q", got)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Bytes != int64(len("other")) {
		t.Fatalf("bytes gauge = %d, want %d", st.Bytes, len("other"))
	}
}

func TestCacheEvictsColdEntries(t *testing.T) {
	// Budget of 64 bytes per shard (16 shards x 64). Values of 32 bytes:
	// a shard holds at most two, so a third key landing on the same shard
	// evicts that shard's coldest.
	c := NewCache(16 * 64)
	val := bytes.Repeat([]byte("x"), 32)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("key-%d", i), val)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions after overfilling every shard")
	}
	if st.Bytes > 16*64 {
		t.Fatalf("cache holds %d bytes, budget is %d", st.Bytes, 16*64)
	}
	if st.Entries == 0 {
		t.Fatal("eviction emptied the cache")
	}
}

func TestCacheLRUOrder(t *testing.T) {
	// One shard total: budget for two 32-byte values. Touching "a" makes
	// "b" the eviction victim when "c" arrives.
	c := NewCache(64)
	c.shardBudget = 64 // single logical budget; keys may still spread, so pin one shard
	val := bytes.Repeat([]byte("v"), 32)

	// Use keys that land on the same shard by construction: find three
	// keys sharing a shard.
	keys := sameShardKeys(c, 3)
	c.Put(keys[0], val)
	c.Put(keys[1], val)
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("warm entry missing")
	}
	c.Put(keys[2], val) // must evict keys[1], the cold one
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("cold entry survived over the warm one")
	}
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("warm entry evicted")
	}
	if _, ok := c.Get(keys[2]); !ok {
		t.Fatal("new entry missing")
	}
}

// sameShardKeys returns n distinct keys hashing to one shard of c.
func sameShardKeys(c *Cache, n int) []string {
	want := c.shard("seed-key")
	keys := []string{"seed-key"}
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if c.shard(k) == want {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestCacheRejectsOversizedValue(t *testing.T) {
	c := NewCache(16 * 8) // 8 bytes per shard
	c.Put("big", bytes.Repeat([]byte("x"), 9))
	if _, ok := c.Get("big"); ok {
		t.Fatal("value over the shard budget was admitted")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats after rejected put: %+v", st)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				c.Put(key, []byte(key))
				if v, ok := c.Get(key); ok && string(v) != key {
					t.Errorf("key %s holds %q", key, v)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestFlightsCollapse(t *testing.T) {
	var fs flights
	const followers = 4
	started := make(chan struct{})
	release := make(chan struct{})
	var runs int

	var wg sync.WaitGroup
	results := make([][]byte, followers+1)
	leaderDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(leaderDone)
		b, shared, err := fs.Do(context.Background(), "k", func() ([]byte, error) {
			runs++
			close(started)
			<-release
			return []byte("answer"), nil
		})
		if err != nil || shared {
			t.Errorf("leader: shared=%v err=%v", shared, err)
		}
		results[0] = b
	}()
	<-started
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, shared, err := fs.Do(context.Background(), "k", func() ([]byte, error) {
				t.Error("follower ran fn")
				return nil, nil
			})
			if err != nil || !shared {
				t.Errorf("follower: shared=%v err=%v", shared, err)
			}
			results[i] = b
		}()
	}
	// Followers must be registered before the leader finishes; poll the
	// shared counter rather than sleeping.
	for fs.Shared() < followers {
		select {
		case <-leaderDone:
			t.Fatal("leader finished before the followers joined")
		default:
			runtime.Gosched()
		}
	}
	close(release)
	wg.Wait()
	if runs != 1 {
		t.Fatalf("fn ran %d times", runs)
	}
	for i, b := range results {
		if string(b) != "answer" {
			t.Fatalf("caller %d got %q", i, b)
		}
	}
	if fs.Shared() != followers {
		t.Fatalf("Shared() = %d, want %d", fs.Shared(), followers)
	}
}

func TestFlightsLeaderCancelDoesNotPoisonFollowers(t *testing.T) {
	var fs flights
	started := make(chan struct{})
	release := make(chan struct{})
	canceled := fmt.Errorf("wrapped: %w", nova.ErrCanceled)

	go func() {
		fs.Do(context.Background(), "k", func() ([]byte, error) {
			close(started)
			<-release
			return nil, canceled
		})
	}()
	<-started

	got := make(chan error, 1)
	go func() {
		b, _, err := fs.Do(context.Background(), "k", func() ([]byte, error) {
			// The follower takes over after the leader's cancellation.
			return []byte("recovered"), nil
		})
		if string(b) != "recovered" {
			got <- fmt.Errorf("follower got %q, err %v", b, err)
			return
		}
		got <- err
	}()
	// Ensure the follower joined the doomed flight before releasing it.
	for fs.Shared() < 1 {
		runtime.Gosched()
	}
	close(release)
	if err := <-got; err != nil {
		t.Fatalf("follower inherited the leader's cancellation: %v", err)
	}
}

func TestFlightsFollowerContextCancellation(t *testing.T) {
	var fs flights
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)

	go func() {
		fs.Do(context.Background(), "k", func() ([]byte, error) {
			close(started)
			<-release
			return []byte("late"), nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := fs.Do(ctx, "k", func() ([]byte, error) { return nil, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("dead follower waited anyway: %v", err)
	}
}
