package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"nova"
)

// reqObs accumulates the observable facts of one admitted request as it
// moves through the handler chain: identity, timing split (queue wait vs
// engine time vs handler total), cache interaction, outcome. It lives on
// the wrapper's stack and is threaded to the handlers by pointer, so the
// request path performs no per-request observability allocation beyond
// the (opt-in) request-ID string; everything it feeds — RED histograms,
// drain accounting, the flight recorder, the access log — happens once,
// in Server.finishObs, after the handler returned.
type reqObs struct {
	id       string
	endpoint string
	start    time.Time     // wall-clock arrival
	queue    time.Duration // admission wait
	encode   time.Duration // engine time (only when this request led a run)
	total    time.Duration // handler time (post-admission)
	status   int           // final HTTP status (0 = nothing written)
	errKind  string        // nova wire error kind of a failed request
	cache    string        // "hit", "miss", "follower", "" (no cache path)
	machine  string        // cache-key digest prefix (content address)
	algo     string        // requested algorithm
	pri      priority      // X-Nova-Priority criticality class
	trace    bool          // per-request trace opt-in (?trace=1 / header)
	phases   []nova.WirePhase
}

// setRequest stamps the content identity once the cache key is known.
// Nil-safe: the batch fan-out passes nil for its per-item calls.
func (ro *reqObs) setRequest(key string, rq *nova.Request) {
	if ro == nil {
		return
	}
	if len(key) > 12 {
		key = key[:12]
	}
	ro.machine = key
	ro.algo = string(rq.Algorithm)
}

// setQueue records how long the request waited for its engine slot.
// Nil-safe: the batch fan-out passes nil for its per-item calls.
func (ro *reqObs) setQueue(d time.Duration) {
	if ro == nil {
		return
	}
	ro.queue = d
}

// setCache records how the cache answered ("hit", "miss", "follower").
func (ro *reqObs) setCache(state string) {
	if ro == nil {
		return
	}
	ro.cache = state
}

// setEncode records the engine wall time of a led run.
func (ro *reqObs) setEncode(d time.Duration) {
	if ro == nil {
		return
	}
	ro.encode = d
}

// wantTrace reports whether the request opted into per-request tracing.
func (ro *reqObs) wantTrace() bool { return ro != nil && ro.trace }

// setPhases attaches the per-phase self-time table of a traced run.
func (ro *reqObs) setPhases(phases []nova.WirePhase) {
	if ro == nil {
		return
	}
	ro.phases = phases
}

// setOutcome records the response status (and error kind, for failures).
// writeBody/writeError call it so every exit path is accounted exactly
// once — the last write wins, matching what the client saw.
func (ro *reqObs) setOutcome(status int, errKind string) {
	if ro == nil {
		return
	}
	ro.status = status
	ro.errKind = errKind
}

// requestID returns the caller-supplied X-Request-ID when it is sane, or
// a fresh process-unique ID (random server prefix + sequence number).
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" && validRequestID(id) {
		return id
	}
	return s.ridPrefix + "-" + strconv.FormatUint(s.ridSeq.Add(1), 10)
}

// validRequestID bounds caller-supplied IDs: printable ASCII, no spaces,
// at most 64 bytes — enough for every tracing convention, and safe to
// echo into headers and log lines.
func validRequestID(id string) bool {
	if len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' {
			return false
		}
	}
	return true
}

// newRIDPrefix draws the per-process request-ID prefix.
func newRIDPrefix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "novad"
	}
	return hex.EncodeToString(b[:])
}

// traceRequested reports the per-request trace opt-in: ?trace=1 or the
// X-Nova-Trace: 1 header. The query string is only parsed when it can
// possibly match, keeping the common path allocation-free.
func traceRequested(r *http.Request) bool {
	if r.Header.Get("X-Nova-Trace") == "1" {
		return true
	}
	if !strings.Contains(r.URL.RawQuery, "trace=") {
		return false
	}
	return r.URL.Query().Get("trace") == "1"
}

// finishObs settles one admitted request: the RED metrics (queue-wait
// and engine-time histograms, error-kind counters), the drain accounting
// (admitted == completed + failed + canceled), the flight recorder, and
// the structured access log. The total-latency histogram is observed by
// the caller (it predates this layer and keeps its key).
func (s *Server) finishObs(ep *endpointKeys, ro *reqObs) {
	m := s.Metrics()
	m.ObserveDur(ep.queue, ro.queue)
	if ro.encode > 0 {
		m.ObserveDur(ep.encode, ro.encode)
	}
	switch {
	case ro.status == 0 || ro.status == statusClientClosedRequest:
		s.canceled.Add(1)
	case ro.status < 400:
		s.completed.Add(1)
	default:
		s.failed.Add(1)
	}
	if ro.errKind != "" {
		m.Add(ep.errors+ro.errKind, 1)
	}
	if s.cfg.DisableRequestObs {
		return
	}
	s.recorder.consider(RequestRecord{
		ID:           ro.id,
		Endpoint:     ro.endpoint,
		Time:         ro.start,
		Status:       ro.status,
		Cache:        ro.cache,
		Machine:      ro.machine,
		Algorithm:    ro.algo,
		ErrorKind:    ro.errKind,
		QueueMicros:  ro.queue.Microseconds(),
		EncodeMicros: ro.encode.Microseconds(),
		TotalMicros:  ro.total.Microseconds(),
		Phases:       ro.phases,
	})
	if s.cfg.AccessLog && s.cfg.Logger != nil {
		s.cfg.Logger.LogAttrs(context.Background(), slog.LevelInfo, "request",
			slog.String("id", ro.id),
			slog.String("endpoint", ro.endpoint),
			slog.Int("status", ro.status),
			slog.String("cache", ro.cache),
			slog.String("machine", ro.machine),
			slog.String("algorithm", ro.algo),
			slog.String("error_kind", ro.errKind),
			slog.Int64("queue_us", ro.queue.Microseconds()),
			slog.Int64("encode_us", ro.encode.Microseconds()),
			slog.Int64("total_us", ro.total.Microseconds()),
		)
	}
}

// endpointKeys pre-concatenates the per-endpoint metric names once at
// mux registration, so the per-request path performs no string building
// (the seed built "http.requests."+endpoint on every request; this layer
// must not add to that, so it removes it instead).
type endpointKeys struct {
	name     string // "/v1/encode"
	requests string // "http.requests./v1/encode"
	latency  string // "http.latency./v1/encode"
	queue    string // "http.queue_wait./v1/encode"
	encode   string // "http.encode./v1/encode"
	errors   string // "http.errors./v1/encode." (kind appended on failures)
}

func endpointKeysOf(endpoint string) *endpointKeys {
	return &endpointKeys{
		name:     endpoint,
		requests: "http.requests." + endpoint,
		latency:  "http.latency." + endpoint,
		queue:    "http.queue_wait." + endpoint,
		encode:   "http.encode." + endpoint,
		errors:   "http.errors." + endpoint + ".",
	}
}
