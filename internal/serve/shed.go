package serve

import (
	"net/http"

	"nova"
)

// priority is the criticality class a request declares with the
// X-Nova-Priority header. It only matters under saturation: it decides
// who sheds first, never who computes faster.
type priority uint8

const (
	priNormal priority = iota // default: queue up to QueueWait, expensive work sheds
	priLow                    // best-effort: first to shed, never queues
	priHigh                   // critical: always gets the full queue wait
)

// priorityOf reads the X-Nova-Priority header ("low", "normal", "high";
// anything else, including absence, is normal). Header lookup only — no
// per-request allocation.
func priorityOf(r *http.Request) priority {
	switch r.Header.Get("X-Nova-Priority") {
	case "low":
		return priLow
	case "high":
		return priHigh
	}
	return priNormal
}

// String returns the wire spelling (also the counter-key suffix).
func (p priority) String() string {
	switch p {
	case priLow:
		return "low"
	case priHigh:
		return "high"
	}
	return "normal"
}

// shedKeys pre-concatenates the serve.shed.<priority> counter names so
// the shed path builds no strings.
var shedKeys = [3]string{
	priNormal: "serve.shed.normal",
	priLow:    "serve.shed.low",
	priHigh:   "serve.shed.high",
}

func shedKey(p priority) string {
	if int(p) < len(shedKeys) {
		return shedKeys[p]
	}
	return shedKeys[priNormal]
}

// costClass splits the algorithms by latency profile for the shedding
// policy. The searches with heavy-tailed runtime (branch-and-bound
// iexact, the multi-algorithm portfolio/best races, and the annealing
// iovariant) are expensive; the one-pass heuristics and baselines are
// cheap. An absent algorithm defaults to best, hence expensive.
type costClass uint8

const (
	costCheap costClass = iota
	costExpensive
)

func costOf(alg nova.Algorithm) costClass {
	switch alg {
	case "", nova.IExact, nova.Best, nova.Portfolio, nova.IOVariant:
		return costExpensive
	}
	return costCheap
}
