package serve

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"nova/internal/obs"
)

// Prometheus text exposition (version 0.0.4), stdlib-only: the server's
// counters and histograms rendered as cumulative _bucket/_sum/_count
// series. The data comes from the very same obs.Metrics the /debug/vars
// endpoint reads — one source of truth, two formats — and the bucket
// edges come from obs.BucketLabel, shared with the Vars() bucket series,
// so the two views can never disagree about an edge.
//
// Name scheme: the dotted internal names map onto a small set of stable
// families with labels (endpoint, stage, code, kind, role, outcome);
// any counter without a dedicated family is still exported, as
// nova_counter{name="<dotted>"}, so nothing visible at /debug/vars is
// missing from /metrics.

// promSeries is one sample line: rendered label set and value.
type promSeries struct {
	labels string // `{endpoint="/v1/encode"}` or ""
	value  int64
}

// promFamily is one metric family: a TYPE and its series. Histogram
// families hold their obs.Hist values instead of scalar series.
type promFamily struct {
	typ    string // counter | gauge | histogram | untyped
	help   string
	series []promSeries
	hists  []promHist
}

type promHist struct {
	labels string // without the le label; "" for none
	h      obs.Hist
}

// promState accumulates families keyed by name during a render.
type promState map[string]*promFamily

func (ps promState) add(name, typ, help, labels string, v int64) {
	f := ps[name]
	if f == nil {
		f = &promFamily{typ: typ, help: help}
		ps[name] = f
	}
	f.series = append(f.series, promSeries{labels: labels, value: v})
}

func (ps promState) addHist(name, help, labels string, h obs.Hist) {
	f := ps[name]
	if f == nil {
		f = &promFamily{typ: "histogram", help: help}
		ps[name] = f
	}
	f.hists = append(f.hists, promHist{labels: labels, h: h})
}

// promLabel renders one escaped label pair.
func promLabel(key, val string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return key + `="` + r.Replace(val) + `"`
}

func promLabels(pairs ...string) string {
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

// promSanitize maps a dotted internal name onto a legal metric name.
func promSanitize(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// latencyStage classifies a histogram name into the request-duration
// family: http.latency.<ep> (total), http.queue_wait.<ep> (queue),
// http.encode.<ep> (encode). Other names return ok=false.
func latencyStage(name string) (endpoint, stage string, ok bool) {
	for _, p := range []struct{ prefix, stage string }{
		{"http.latency.", "total"},
		{"http.queue_wait.", "queue"},
		{"http.encode.", "encode"},
	} {
		if strings.HasPrefix(name, p.prefix) {
			return name[len(p.prefix):], p.stage, true
		}
	}
	return "", "", false
}

// promCounterFamily maps one dotted counter onto its family. The
// fallthrough family nova_counter{name=...} keeps /metrics a superset of
// the /debug/vars counters even for names this table predates.
func (ps promState) addCounter(key string, v int64) {
	switch {
	case key == "http.requests":
		ps.add("nova_http_requests_total", "counter", "Requests arriving at the admitted endpoints.", "", v)
	case strings.HasPrefix(key, "http.requests."):
		ps.add("nova_http_endpoint_requests_total", "counter", "Requests per endpoint.",
			promLabels(promLabel("endpoint", key[len("http.requests."):])), v)
	case strings.HasPrefix(key, "http.status."):
		ps.add("nova_http_responses_total", "counter", "Responses by HTTP status code.",
			promLabels(promLabel("code", key[len("http.status."):])), v)
	case strings.HasPrefix(key, "http.errors."):
		// http.errors.<endpoint>.<kind> — the kind is the last dot field.
		rest := key[len("http.errors."):]
		i := strings.LastIndexByte(rest, '.')
		if i <= 0 {
			ps.add("nova_counter", "untyped", "Unclassified counters (name label is the /debug/vars key).",
				promLabels(promLabel("name", key)), v)
			return
		}
		ps.add("nova_http_request_errors_total", "counter", "Failed requests by endpoint and wire error kind.",
			promLabels(promLabel("endpoint", rest[:i]), promLabel("kind", rest[i+1:])), v)
	case strings.HasPrefix(key, "http.rejected."):
		ps.add("nova_http_rejected_total", "counter", "Requests refused before admission.",
			promLabels(promLabel("reason", key[len("http.rejected."):])), v)
	case key == "http.inflight_max":
		ps.add("nova_http_inflight_max", "gauge", "High-water mark of concurrently admitted requests.", "", v)
	default:
		ps.add("nova_counter", "untyped", "Unclassified counters (name label is the /debug/vars key).",
			promLabels(promLabel("name", key)), v)
	}
}

// writeProm renders the full exposition. Families and series emit in
// sorted order so the output is deterministic, and every # TYPE line
// precedes all series of its family by construction.
func (s *Server) writeProm(w io.Writer) {
	ps := promState{}
	m := s.Metrics()
	for key, v := range m.Counters() {
		ps.addCounter(key, v)
	}
	for name, h := range m.Histograms() {
		if ep, stage, ok := latencyStage(name); ok {
			ps.addHist("nova_http_request_duration_microseconds",
				"Request latency split by stage: queue (admission wait), encode (engine time of led runs), total (handler time).",
				promLabels(promLabel("endpoint", ep), promLabel("stage", stage)), h)
			continue
		}
		ps.addHist("nova_"+promSanitize(name), "Histogram "+name+".", "", h)
	}

	cs := s.cache.Stats()
	ps.add("nova_cache_hits_total", "counter", "Result-cache hits.", "", cs.Hits)
	ps.add("nova_cache_misses_total", "counter", "Result-cache misses.", "", cs.Misses)
	ps.add("nova_cache_evictions_total", "counter", "Result-cache LRU evictions.", "", cs.Evictions)
	ps.add("nova_cache_bytes", "gauge", "Result-cache payload bytes held.", "", cs.Bytes)
	ps.add("nova_cache_entries", "gauge", "Result-cache entries held.", "", cs.Entries)
	ps.add("nova_singleflight_requests_total", "counter", "Cache-miss runs by singleflight role.",
		promLabels(promLabel("role", "leader")), s.flights.Leads())
	ps.add("nova_singleflight_requests_total", "counter", "Cache-miss runs by singleflight role.",
		promLabels(promLabel("role", "follower")), s.flights.Shared())
	ps.add("nova_engine_encodes_total", "counter", "Engine runs actually executed (cache misses that led).", "", s.encodes.Load())
	ps.add("nova_http_admitted_total", "counter", "Requests admitted past the semaphore.", "", s.admitted.Load())
	for _, oc := range []struct {
		name string
		v    int64
	}{
		{"completed", s.completed.Load()},
		{"failed", s.failed.Load()},
		{"canceled", s.canceled.Load()},
	} {
		ps.add("nova_http_admitted_outcomes_total", "counter", "Admitted requests by final outcome.",
			promLabels(promLabel("outcome", oc.name)), oc.v)
	}
	ps.add("nova_http_inflight", "gauge", "Requests currently admitted.", "", s.inflight.Load())
	var draining int64
	if s.draining.Load() {
		draining = 1
	}
	ps.add("nova_server_draining", "gauge", "1 while the server refuses new work (drain).", "", draining)

	names := make([]string, 0, len(ps))
	for name := range ps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := ps[name]
		fmt.Fprintf(w, "# HELP %s %s\n", name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ)
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		for _, se := range f.series {
			fmt.Fprintf(w, "%s%s %d\n", name, se.labels, se.value)
		}
		sort.Slice(f.hists, func(i, j int) bool { return f.hists[i].labels < f.hists[j].labels })
		for _, ph := range f.hists {
			writePromHist(w, name, ph)
		}
	}
}

// writePromHist emits one histogram's cumulative buckets, sum and count.
// Bucket edges are obs.BucketLabel — the exact edges /debug/vars renders
// as <name>.le.<bound>. Trailing all-zero buckets collapse into +Inf.
func writePromHist(w io.Writer, name string, ph promHist) {
	sep, close_ := "{", "}"
	if ph.labels != "" {
		// splice le into the existing label set
		sep, close_ = ph.labels[:len(ph.labels)-1]+",", "}"
	}
	var cum int64
	last := 0
	for i, n := range ph.h.Buckets {
		if n != 0 {
			last = i
		}
	}
	for i := 0; i <= last && i < obs.NumBuckets-1; i++ {
		cum += ph.h.Buckets[i]
		fmt.Fprintf(w, "%s_bucket%sle=\"%s\"%s %d\n", name, sep, obs.BucketLabel(i), close_, cum)
	}
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"%s %d\n", name, sep, close_, ph.h.Count)
	fmt.Fprintf(w, "%s_sum%s %d\n", name, ph.labels, ph.h.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, ph.labels, ph.h.Count)
}
