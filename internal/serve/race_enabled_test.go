//go:build race

package serve

// raceEnabled reports whether the test binary was built with the race
// detector. AllocsPerRun counts are noise there (the race runtime
// allocates on its own schedule), so the zero-alloc guards skip
// themselves; the non-race runs keep them enforced.
const raceEnabled = true
