package serve

// Stress test of the sharded result cache, meant to run under -race:
// concurrent writers insert across every shard while the byte budget
// forces evictions, readers replay hot keys, and the invariants hold
// throughout — replayed bytes are exactly what was inserted, the byte
// gauge never exceeds the budget, and no entry is lost except to
// eviction.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheConcurrentEvictionStress(t *testing.T) {
	const (
		writers    = 8
		readers    = 4
		keysPerW   = 400
		valBytes   = 256
		budget     = cacheShards * 8 * valBytes // ~8 entries per shard: constant evictions
		hotEntries = 16
	)
	c := NewCache(budget)

	// Every key's value is derived from the key, so a replay can be
	// checked without tracking inserts: mutation or cross-key mixups
	// surface as content mismatches.
	valueOf := func(key string) []byte {
		v := make([]byte, valBytes)
		copy(v, key)
		return v
	}
	keyOf := func(w, i int) string { return fmt.Sprintf("writer-%d-key-%d", w, i) }

	// Hot keys are re-Put and re-Get continuously from every worker: the
	// LRU promotion path and the overwrite path run against evictions.
	hot := make([]string, hotEntries)
	for i := range hot {
		hot[i] = fmt.Sprintf("hot-%d", i)
		c.Put(hot[i], valueOf(hot[i]))
	}

	var bad atomic.Int64
	check := func(key string, val []byte) {
		want := valueOf(key)
		if len(val) != len(want) {
			bad.Add(1)
			return
		}
		for i := range val {
			if val[i] != want[i] {
				bad.Add(1)
				return
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < keysPerW; i++ {
				key := keyOf(w, i)
				c.Put(key, valueOf(key))
				// Immediately replay this writer's own insert and a hot
				// key; both may have been evicted (ok) but must never
				// come back with foreign bytes.
				if val, ok := c.Get(key); ok {
					check(key, val)
				}
				h := hot[i%hotEntries]
				c.Put(h, valueOf(h))
				if val, ok := c.Get(h); ok {
					check(h, val)
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < writers*keysPerW; i++ {
				key := keyOf(i%writers, i%keysPerW)
				if val, ok := c.Get(key); ok {
					check(key, val)
				}
			}
		}()
	}
	wg.Wait()

	if n := bad.Load(); n != 0 {
		t.Fatalf("%d replays returned corrupted or foreign bytes", n)
	}
	st := c.Stats()
	if st.Bytes > budget {
		t.Fatalf("cache holds %d bytes over the %d budget", st.Bytes, budget)
	}
	if st.Entries == 0 {
		t.Fatal("stress run left the cache empty")
	}
	if st.Evictions == 0 {
		t.Fatal("budget never forced an eviction — the stress did not stress")
	}

	// Post-quiescence accounting: the byte gauge equals the sum of the
	// live values, and every surviving key still replays its own bytes.
	var live int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for key, el := range s.m {
			ent := el.Value.(*cacheEntry)
			if ent.key != key {
				t.Errorf("shard map key %q indexes entry %q", key, ent.key)
			}
			live += int64(len(ent.val))
		}
		s.mu.Unlock()
	}
	if live != st.Bytes {
		t.Fatalf("byte gauge %d != %d live bytes (lost-update in eviction accounting)", st.Bytes, live)
	}
	for i := range hot {
		if val, ok := c.Get(hot[i]); ok {
			check(hot[i], val)
		}
	}
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d post-quiescence replays corrupted", n)
	}
}
