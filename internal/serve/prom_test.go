package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"nova"
)

// promScrape parses a text exposition into sample values keyed by the
// full series string ("name{labels}"), verifying well-formedness as it
// goes: every sample's family has a # TYPE line above it, HELP comes
// before TYPE, and no family is declared twice.
func promScrape(t *testing.T, body string) map[string]int64 {
	t.Helper()
	typed := map[string]string{} // family -> type
	helped := map[string]bool{}
	samples := map[string]int64{}
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, _ := strings.Cut(rest, " ")
			helped[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, _ := strings.Cut(rest, " ")
			if _, dup := typed[name]; dup {
				t.Fatalf("family %s declared twice", name)
			}
			if !helped[name] {
				t.Fatalf("family %s has TYPE before HELP", name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "untyped":
			default:
				t.Fatalf("family %s has bad type %q", name, typ)
			}
			typed[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment %q", line)
		}
		// A sample: name[{labels}] value
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample %q", line)
		}
		series, valstr := line[:i], line[i+1:]
		v, err := strconv.ParseInt(valstr, 10, 64)
		if err != nil {
			t.Fatalf("sample %q: value %q: %v", line, valstr, err)
		}
		name := series
		if j := strings.IndexByte(series, '{'); j >= 0 {
			name = series[:j]
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unbalanced labels in %q", line)
			}
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suf); ok && typed[f] == "histogram" {
				family = f
			}
		}
		if _, ok := typed[family]; !ok {
			t.Fatalf("sample %q emitted before (or without) its # TYPE", line)
		}
		if _, dup := samples[series]; dup {
			t.Fatalf("series %q emitted twice", series)
		}
		samples[series] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestMetricsExposition drives mixed traffic and scrapes /metrics: the
// exposition must be well formed, cover the RED families, and agree
// with /debug/vars — one source of truth, two formats.
func TestMetricsExposition(t *testing.T) {
	s := New(Config{})
	rq := nova.Request{KISS2: quickFSM, Name: "quick", Algorithm: nova.IGreedy}
	body, _ := json.Marshal(rq)
	if w := post(s, "/v1/encode", bytes.NewReader(body)); w.Code != http.StatusOK {
		t.Fatalf("miss: %d %s", w.Code, w.Body)
	}
	if w := post(s, "/v1/encode", bytes.NewReader(body)); w.Code != http.StatusOK {
		t.Fatalf("hit: %d", w.Code)
	}
	if w := post(s, "/v1/encode", bytes.NewReader([]byte("{"))); w.Code != http.StatusBadRequest {
		t.Fatalf("bad: %d", w.Code)
	}

	mw := get(s, "/metrics", nil)
	if mw.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", mw.Code)
	}
	if ct := mw.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	samples := promScrape(t, mw.Body.String())

	wants := map[string]int64{
		`nova_http_requests_total`:                                                 3,
		`nova_http_endpoint_requests_total{endpoint="/v1/encode"}`:                 3,
		`nova_http_responses_total{code="200"}`:                                    2,
		`nova_http_responses_total{code="400"}`:                                    1,
		`nova_http_request_errors_total{endpoint="/v1/encode",kind="bad_request"}`: 1,
		`nova_cache_hits_total`:                                                    1,
		`nova_cache_misses_total`:                                                  1,
		`nova_engine_encodes_total`:                                                1,
		`nova_singleflight_requests_total{role="leader"}`:                          1,
		`nova_singleflight_requests_total{role="follower"}`:                        0,
		`nova_http_admitted_total`:                                                 3,
		`nova_http_admitted_outcomes_total{outcome="completed"}`:                   2,
		`nova_http_admitted_outcomes_total{outcome="failed"}`:                      1,
		`nova_http_admitted_outcomes_total{outcome="canceled"}`:                    0,
		`nova_http_inflight`:                                                       0,
		`nova_server_draining`:                                                     0,
	}
	for series, want := range wants {
		got, ok := samples[series]
		if !ok {
			t.Fatalf("series %s missing", series)
		}
		if got != want {
			t.Fatalf("%s = %d, want %d", series, got, want)
		}
	}

	// The latency family covers all three stages for the hit endpoint.
	for _, stage := range []string{"total", "queue", "encode"} {
		series := fmt.Sprintf(`nova_http_request_duration_microseconds_count{endpoint="/v1/encode",stage="%s"}`, stage)
		if _, ok := samples[series]; !ok {
			t.Fatalf("latency stage %s missing (have %d series)", stage, len(samples))
		}
	}
	// Histogram invariants: the +Inf bucket equals _count, and the
	// cumulative buckets never decrease.
	tot := `{endpoint="/v1/encode",stage="total"`
	inf := samples[`nova_http_request_duration_microseconds_bucket`+tot+`,le="+Inf"}`]
	cnt := samples[`nova_http_request_duration_microseconds_count`+tot+`}`]
	if inf != cnt || cnt != 3 {
		t.Fatalf("+Inf bucket %d vs count %d (want 3)", inf, cnt)
	}

	// Consistency with /debug/vars: same counters, different format.
	vars := s.Vars()
	pairs := []struct {
		series string
		key    string
	}{
		{`nova_http_requests_total`, "http.requests"},
		{`nova_cache_hits_total`, "cache.hits"},
		{`nova_engine_encodes_total`, "engine.encodes"},
		{`nova_singleflight_requests_total{role="leader"}`, "flight.leaders"},
		{`nova_http_admitted_total`, "serve.admitted"},
		{`nova_http_request_duration_microseconds_count` + tot + `}`, "http.latency./v1/encode.count"},
		{`nova_http_request_duration_microseconds_sum` + tot + `}`, "http.latency./v1/encode.sum"},
	}
	for _, p := range pairs {
		if samples[p.series] != vars[p.key] {
			t.Fatalf("%s = %d but vars[%s] = %d", p.series, samples[p.series], p.key, vars[p.key])
		}
	}

	// The untyped fallthrough keeps /metrics a superset of the counter
	// keys: http.status.200 has a dedicated family, pool.tasks does not
	// and must surface as nova_counter{name="pool.tasks"} when non-zero.
	for key, v := range s.Metrics().Counters() {
		switch {
		case strings.HasPrefix(key, "http."):
			continue // mapped families, checked above
		default:
			series := `nova_counter{name="` + key + `"}`
			if samples[series] != v {
				t.Fatalf("counter %s lost in exposition: want %d, series %q has %d",
					key, v, series, samples[series])
			}
		}
	}
}

// TestMetricsBucketEdgesMatchVars pins the shared-edge contract
// (satellite: one source of truth for bucket boundaries): every
// <name>.le.<bound> series in Vars() appears in the exposition as a
// _bucket sample with the same le label and value.
func TestMetricsBucketEdgesMatchVars(t *testing.T) {
	s := New(Config{})
	rq := nova.Request{KISS2: quickFSM, Name: "quick", Algorithm: nova.IGreedy}
	if w := post(s, "/v1/encode", encodeBody(t, rq)); w.Code != http.StatusOK {
		t.Fatalf("encode: %d", w.Code)
	}
	mw := get(s, "/metrics", nil)
	samples := promScrape(t, mw.Body.String())

	found := 0
	for key, v := range s.Metrics().Vars() {
		name, bound, ok := strings.Cut(key, ".le.")
		if !ok {
			continue
		}
		if bound == "+Inf" {
			continue // vars emits the last bucket only when non-empty; prom always emits +Inf
		}
		var series string
		if ep, stage, ok := latencyStage(name); ok {
			series = fmt.Sprintf(`nova_http_request_duration_microseconds_bucket{endpoint=%q,stage=%q,le=%q}`, ep, stage, bound)
		} else {
			series = fmt.Sprintf(`nova_%s_bucket{le=%q}`, promSanitize(name), bound)
		}
		got, there := samples[series]
		if !there {
			t.Fatalf("vars bucket %s has no exposition series %s", key, series)
		}
		if got != v {
			t.Fatalf("bucket %s: vars %d, exposition %d", key, v, got)
		}
		found++
	}
	if found == 0 {
		t.Fatal("no .le. bucket series in vars — nothing compared")
	}
}
