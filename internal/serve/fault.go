package serve

import (
	"net/http"
	"sync/atomic"
	"time"

	"nova/internal/obs"
)

// FaultConfig arms the deterministic fault-injection middleware on the
// POST endpoints. Faults are drawn per request from a seeded splitmix64
// stream indexed by arrival order, so a given (seed, request sequence)
// replays the exact same fault schedule — the property the chaos suite
// and the client's retry tests rely on. Rates are probabilities in
// [0, 1]; draws are evaluated in order latency, error, drop, and the
// injected faults tick the fault.injected.<kind> counters.
//
// This is a test and soak-tool surface: novad gates it behind the
// -fault-inject flag / NOVAD_FAULT_INJECT env and refuses it silently
// in normal operation.
type FaultConfig struct {
	// Seed selects the fault schedule (0 is a valid, fixed schedule).
	Seed uint64
	// LatencyRate injects Latency of extra delay before the handler.
	LatencyRate float64
	Latency     time.Duration
	// ErrorRate answers 503 + Retry-After without reaching the handler,
	// simulating a failing upstream.
	ErrorRate float64
	// DropRate aborts the connection mid-request without a response,
	// simulating a crashed peer or a cut network path.
	DropRate float64
}

type faultInjector struct {
	cfg FaultConfig
	m   *obs.Metrics
	seq atomic.Uint64
}

func newFaultInjector(cfg FaultConfig, m *obs.Metrics) *faultInjector {
	return &faultInjector{cfg: cfg, m: m}
}

// withFaults arms h with the fault middleware. With fault injection
// disabled (the default) it returns h itself — the registered handler
// chain is structurally identical to a build without this file, which
// is what TestFaultInjectionDisabledIsNoOp pins.
func (s *Server) withFaults(h http.HandlerFunc) http.HandlerFunc {
	if s.fault == nil {
		return h
	}
	return s.fault.wrap(h)
}

func (fi *faultInjector) wrap(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Three independent uniform draws from one per-request stream.
		st := splitmix64(fi.cfg.Seed ^ (fi.seq.Add(1) * 0x9e3779b97f4a7c15))
		var u [3]float64
		for i := range u {
			var v uint64
			v, st = nextRand(st)
			u[i] = float64(v>>11) / (1 << 53)
		}
		if u[0] < fi.cfg.LatencyRate && fi.cfg.Latency > 0 {
			fi.m.Add("fault.injected.latency", 1)
			select {
			case <-time.After(fi.cfg.Latency):
			case <-r.Context().Done():
			}
		}
		if u[1] < fi.cfg.ErrorRate {
			fi.m.Add("fault.injected.error", 1)
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"injected fault","error_kind":"internal"}` + "\n")) //nolint:errcheck
			return
		}
		if u[2] < fi.cfg.DropRate {
			fi.m.Add("fault.injected.drop", 1)
			// The canonical way to abort the connection without writing a
			// response: net/http recovers this sentinel and closes the
			// stream, so the client sees EOF, not a status.
			panic(http.ErrAbortHandler)
		}
		h(w, r)
	}
}

// splitmix64 seeds/advances the per-request PRNG state (Vigna's
// splitmix64 finalizer — tiny, seedable, statistically fine for fault
// scheduling).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// nextRand draws the next value from a splitmix64 stream.
func nextRand(state uint64) (value, next uint64) {
	next = state + 0x9e3779b97f4a7c15
	z := next
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31), next
}
