package serve

// End-to-end portfolio serving: a portfolio request runs the race,
// returns the winner metadata, and different spellings of the same
// normalized roster share one cache entry.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"nova"
)

func TestEncodePortfolioEndToEnd(t *testing.T) {
	s := New(Config{})
	rq := nova.Request{KISS2: quickFSM, Name: "quick", Algorithm: nova.Portfolio}
	w := post(s, "/v1/encode", encodeBody(t, rq))
	if w.Code != http.StatusOK {
		t.Fatalf("POST: %d %s", w.Code, w.Body)
	}
	var rp nova.Response
	if err := json.Unmarshal(w.Body.Bytes(), &rp); err != nil {
		t.Fatal(err)
	}
	if rp.Algorithm != nova.Portfolio {
		t.Fatalf("algorithm %q, want portfolio", rp.Algorithm)
	}
	if rp.Winner == "" || rp.Winner == nova.Portfolio {
		t.Fatalf("winner %q, want a concrete roster algorithm", rp.Winner)
	}
	f, err := nova.ParseKISSString(quickFSM)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := rp.Assignment()
	if err != nil {
		t.Fatal(err)
	}
	if err := nova.Verify(f, asg); err != nil {
		t.Fatalf("served portfolio assignment fails verify: %v", err)
	}

	// A different spelling of the same race — the default roster implied
	// by an empty config instead of the named algorithm — must hit the
	// same cache entry byte for byte.
	other := nova.Request{KISS2: quickFSM, Name: "quick", Portfolio: &nova.WirePortfolio{}}
	hit := post(s, "/v1/encode", encodeBody(t, other))
	if hit.Code != http.StatusOK {
		t.Fatalf("second POST: %d %s", hit.Code, hit.Body)
	}
	if got := hit.Header().Get("X-Cache"); got != "HIT" {
		t.Fatalf("normalized respelling missed the cache: X-Cache = %q", got)
	}
	if !bytes.Equal(w.Body.Bytes(), hit.Body.Bytes()) {
		t.Fatal("cached portfolio replay differs")
	}
	if n := s.encodes.Load(); n != 1 {
		t.Fatalf("engine ran %d times for one normalized race", n)
	}

	// A custom roster is a different race: a miss, and its own winner.
	custom := nova.Request{KISS2: quickFSM, Name: "quick", Portfolio: &nova.WirePortfolio{
		Roster: []nova.WireCandidate{{Algorithm: nova.IGreedy}},
	}}
	cw := post(s, "/v1/encode", encodeBody(t, custom))
	if cw.Code != http.StatusOK {
		t.Fatalf("custom roster POST: %d %s", cw.Code, cw.Body)
	}
	if got := cw.Header().Get("X-Cache"); got != "MISS" {
		t.Fatalf("custom roster reused the default roster's entry: X-Cache = %q", got)
	}
	var crp nova.Response
	if err := json.Unmarshal(cw.Body.Bytes(), &crp); err != nil {
		t.Fatal(err)
	}
	if crp.Winner != nova.IGreedy {
		t.Fatalf("one-candidate roster winner %q, want igreedy", crp.Winner)
	}
}

// TestEncodePortfolioBadRoster: wire validation turns a bad roster into
// a 400 before any engine work.
func TestEncodePortfolioBadRoster(t *testing.T) {
	s := New(Config{})
	rq := nova.Request{KISS2: quickFSM, Portfolio: &nova.WirePortfolio{
		Roster: []nova.WireCandidate{{Algorithm: "bogus"}},
	}}
	w := post(s, "/v1/encode", encodeBody(t, rq))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", w.Code, w.Body)
	}
	if s.encodes.Load() != 0 {
		t.Fatal("a bad roster reached the engine")
	}
}
