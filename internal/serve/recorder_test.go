package serve

import (
	"testing"

	"nova"
)

func slowRec(id string, totalMicros int64) RequestRecord {
	return RequestRecord{ID: id, Endpoint: "/v1/encode", Status: 200, TotalMicros: totalMicros}
}

func failRec(id string, status int) RequestRecord {
	return RequestRecord{ID: id, Endpoint: "/v1/encode", Status: status, ErrorKind: "internal"}
}

// TestRecorderSlowSet fills the slow set past capacity and checks it
// keeps exactly the slowest requests, served slowest-first.
func TestRecorderSlowSet(t *testing.T) {
	rc := newRecorder(3)
	for i, us := range []int64{10, 50, 20, 40, 30, 5} {
		rc.consider(slowRec("r"+string(rune('a'+i)), us))
	}
	snap := rc.snapshot("")
	if len(snap.Slowest) != 3 {
		t.Fatalf("slowest holds %d, want 3", len(snap.Slowest))
	}
	got := []int64{snap.Slowest[0].TotalMicros, snap.Slowest[1].TotalMicros, snap.Slowest[2].TotalMicros}
	if got[0] != 50 || got[1] != 40 || got[2] != 30 {
		t.Fatalf("slowest totals %v, want [50 40 30]", got)
	}
	if len(snap.RecentFailures) != 0 {
		t.Fatalf("failures %v for healthy traffic", snap.RecentFailures)
	}
}

// TestRecorderFloorFastPath checks the steady-state fast path: once the
// slow set is full, a healthy request at or under the floor must be
// rejected without changing the set — and without the mutex, which the
// alloc guard in TestRequestObsDisabledAllocFree leans on.
func TestRecorderFloorFastPath(t *testing.T) {
	rc := newRecorder(2)
	rc.consider(slowRec("a", 100))
	if rc.floor.Load() != -1 {
		t.Fatal("floor set before the slow set filled")
	}
	rc.consider(slowRec("b", 200))
	if got := rc.floor.Load(); got != 100 {
		t.Fatalf("floor = %d, want 100", got)
	}
	rc.consider(slowRec("c", 100)) // == floor: rejected
	snap := rc.snapshot("")
	for _, r := range snap.Slowest {
		if r.ID == "c" {
			t.Fatal("at-floor request displaced a slow entry")
		}
	}
	rc.consider(slowRec("d", 150)) // above floor: replaces the 100
	if got := rc.floor.Load(); got != 150 {
		t.Fatalf("floor after replacement = %d, want 150", got)
	}
}

// TestRecorderFailureRing wraps the failure ring and checks newest-first
// order in the snapshot.
func TestRecorderFailureRing(t *testing.T) {
	rc := newRecorder(3)
	for _, id := range []string{"f1", "f2", "f3", "f4", "f5"} {
		rc.consider(failRec(id, 500))
	}
	snap := rc.snapshot("")
	if len(snap.RecentFailures) != 3 {
		t.Fatalf("failures %d, want 3", len(snap.RecentFailures))
	}
	for i, want := range []string{"f5", "f4", "f3"} {
		if snap.RecentFailures[i].ID != want {
			t.Fatalf("failures[%d] = %q, want %q (%v)", i, snap.RecentFailures[i].ID, want, snap.RecentFailures)
		}
	}
}

// TestRecorderTracedBypassesFloor: an explicitly traced request must be
// findable afterwards even when it was faster than the slow floor.
func TestRecorderTracedBypassesFloor(t *testing.T) {
	rc := newRecorder(2)
	rc.consider(slowRec("a", 1000))
	rc.consider(slowRec("b", 2000))
	traced := slowRec("t", 1)
	traced.Phases = []nova.WirePhase{{Name: "espresso.minimize", Count: 1, TotalMicros: 1}}
	rc.consider(traced)
	snap := rc.snapshot("t")
	if len(snap.Slowest) != 1 || snap.Slowest[0].ID != "t" {
		t.Fatalf("traced request not recorded: %+v", snap)
	}
	if len(snap.Slowest[0].Phases) != 1 {
		t.Fatal("phase table lost")
	}
}

// TestRecorderStatusZeroIsFailure: a request that wrote nothing (client
// gone) lands in the failure ring.
func TestRecorderStatusZeroIsFailure(t *testing.T) {
	rc := newRecorder(2)
	rc.consider(RequestRecord{ID: "gone", Endpoint: "/v1/encode", Status: 0})
	snap := rc.snapshot("")
	if len(snap.RecentFailures) != 1 || snap.RecentFailures[0].ID != "gone" {
		t.Fatalf("canceled request not in failures: %+v", snap)
	}
}

// TestRecorderDisabled: size <= 0 must be inert.
func TestRecorderDisabled(t *testing.T) {
	rc := newRecorder(0)
	rc.consider(slowRec("a", 100))
	rc.consider(failRec("b", 500))
	snap := rc.snapshot("")
	if len(snap.Slowest) != 0 || len(snap.RecentFailures) != 0 {
		t.Fatalf("disabled recorder recorded: %+v", snap)
	}
	var nilRC *recorder
	nilRC.consider(slowRec("a", 1)) // must not panic
	if s := nilRC.snapshot(""); s.Slowest == nil || s.RecentFailures == nil {
		t.Fatal("nil recorder snapshot must have empty (non-nil) slices for JSON")
	}
}

// TestRecorderIDFilter narrows a snapshot to one request ID.
func TestRecorderIDFilter(t *testing.T) {
	rc := newRecorder(4)
	rc.consider(slowRec("a", 10))
	rc.consider(slowRec("b", 20))
	rc.consider(failRec("b", 500))
	snap := rc.snapshot("b")
	// The failure also occupies a slow slot (the set had room), so the
	// filter returns both of b's records — and none of a's.
	if len(snap.Slowest) != 2 {
		t.Fatalf("slowest filter: %+v", snap.Slowest)
	}
	for _, r := range snap.Slowest {
		if r.ID != "b" {
			t.Fatalf("filter leaked %+v", r)
		}
	}
	if len(snap.RecentFailures) != 1 || snap.RecentFailures[0].ID != "b" {
		t.Fatalf("failures filter: %+v", snap.RecentFailures)
	}
	if s := rc.snapshot("zzz"); len(s.Slowest) != 0 || s.Slowest == nil {
		t.Fatalf("no-match filter should be empty non-nil: %+v", s.Slowest)
	}
}
