package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nova"
)

func get(s *Server, target string, hdr map[string]string) *httptest.ResponseRecorder {
	r := httptest.NewRequest(http.MethodGet, target, nil)
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}

// TestRequestIDEchoAndGenerate pins the request-ID contract: a sane
// caller-supplied X-Request-ID is echoed verbatim, a hostile one is
// replaced, and an absent one gets a fresh process-unique ID.
func TestRequestIDEchoAndGenerate(t *testing.T) {
	s := New(Config{})
	rq := nova.Request{KISS2: quickFSM, Algorithm: nova.IGreedy}
	body, _ := json.Marshal(rq)

	r := httptest.NewRequest(http.MethodPost, "/v1/encode", bytes.NewReader(body))
	r.Header.Set("X-Request-Id", "trace-abc.123")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if got := w.Header().Get("X-Request-Id"); got != "trace-abc.123" {
		t.Fatalf("client ID not echoed: %q", got)
	}

	r = httptest.NewRequest(http.MethodPost, "/v1/encode", bytes.NewReader(body))
	r.Header.Set("X-Request-Id", "bad id\twith control chars")
	w = httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if got := w.Header().Get("X-Request-Id"); !strings.HasPrefix(got, s.ridPrefix+"-") {
		t.Fatalf("hostile ID not replaced by a generated one: %q (prefix %q)", got, s.ridPrefix)
	}

	w = post(s, "/v1/encode", bytes.NewReader(body))
	first := w.Header().Get("X-Request-Id")
	w = post(s, "/v1/encode", bytes.NewReader(body))
	second := w.Header().Get("X-Request-Id")
	if first == "" || first == second {
		t.Fatalf("generated IDs not unique: %q, %q", first, second)
	}
}

func TestValidRequestID(t *testing.T) {
	cases := []struct {
		id string
		ok bool
	}{
		{"abc-123", true},
		{"0f3a/span:7", true},
		{strings.Repeat("x", 64), true},
		{strings.Repeat("x", 65), false},
		{"has space", false},
		{"quote\"inject", false},
		{"ctrl\x01", false},
		{"utf8-héllo", false},
	}
	for _, c := range cases {
		if got := validRequestID(c.id); got != c.ok {
			t.Fatalf("validRequestID(%q) = %t, want %t", c.id, got, c.ok)
		}
	}
}

// TestTraceOptIn pins the per-request trace contract: ?trace=1 on a
// cache miss returns the phase table in the X-Nova-Phases header while
// the body stays byte-identical to an untraced request — traced and
// untraced requests share one cache entry, and the trace never enters
// the cached artifact.
func TestTraceOptIn(t *testing.T) {
	s := New(Config{})
	rq := nova.Request{KISS2: quickFSM, Name: "quick", Algorithm: nova.IGreedy}
	body, _ := json.Marshal(rq)

	// Traced MISS: phases in the header, none in the body.
	tw := post(s, "/v1/encode?trace=1", bytes.NewReader(body))
	if tw.Code != http.StatusOK {
		t.Fatalf("traced POST: %d %s", tw.Code, tw.Body)
	}
	if tw.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("X-Cache = %q", tw.Header().Get("X-Cache"))
	}
	ph := tw.Header().Get("X-Nova-Phases")
	if ph == "" {
		t.Fatal("traced miss returned no X-Nova-Phases header")
	}
	var phases []nova.WirePhase
	if err := json.Unmarshal([]byte(ph), &phases); err != nil || len(phases) == 0 {
		t.Fatalf("phase header %q: %v", ph, err)
	}
	if bytes.Contains(tw.Body.Bytes(), []byte(`"telemetry"`)) {
		t.Fatal("request-scoped trace leaked into the response body")
	}

	// Untraced replay: byte-identical HIT.
	uw := post(s, "/v1/encode", bytes.NewReader(body))
	if uw.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("untraced X-Cache = %q", uw.Header().Get("X-Cache"))
	}
	if !bytes.Equal(tw.Body.Bytes(), uw.Body.Bytes()) {
		t.Fatal("traced and untraced bodies differ — the trace entered the cached artifact")
	}

	// Traced HIT: served from cache, no engine run, hence no phase table.
	hw := post(s, "/v1/encode?trace=1", bytes.NewReader(body))
	if hw.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("traced replay X-Cache = %q", hw.Header().Get("X-Cache"))
	}
	if hw.Header().Get("X-Nova-Phases") != "" {
		t.Fatal("cache hit fabricated a phase table")
	}
	if s.encodes.Load() != 1 {
		t.Fatalf("engine ran %d times", s.encodes.Load())
	}

	// The header spelling of the opt-in works too.
	rq2 := nova.Request{KISS2: quickFSM, Name: "quick2", Algorithm: nova.IGreedy}
	b2, _ := json.Marshal(rq2)
	r := httptest.NewRequest(http.MethodPost, "/v1/encode", bytes.NewReader(b2))
	r.Header.Set("X-Nova-Trace", "1")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Header().Get("X-Nova-Phases") == "" {
		t.Fatal("X-Nova-Trace header did not enable the trace")
	}
}

// TestIncludeTelemetryBodyHasPhases: the explicit include_telemetry
// request keeps its in-body snapshot, now with the phase table.
func TestIncludeTelemetryBodyHasPhases(t *testing.T) {
	s := New(Config{})
	rq := nova.Request{KISS2: quickFSM, Name: "quick", Algorithm: nova.IGreedy, IncludeTelemetry: true}
	w := post(s, "/v1/encode", encodeBody(t, rq))
	if w.Code != http.StatusOK {
		t.Fatalf("POST: %d %s", w.Code, w.Body)
	}
	var rp nova.Response
	if err := json.Unmarshal(w.Body.Bytes(), &rp); err != nil {
		t.Fatal(err)
	}
	if rp.Telemetry == nil || len(rp.Telemetry.Phases) == 0 {
		t.Fatalf("telemetry body lacks phases: %+v", rp.Telemetry)
	}
	for _, p := range rp.Telemetry.Phases {
		if p.Name == "" || p.Count <= 0 {
			t.Fatalf("malformed phase %+v", p)
		}
	}
}

// TestDebugRequestsEndpoint drives real traffic and reads the flight
// recorder back: a slow (traced) success in slowest, a failure in
// recent_failures, and the ?id= filter narrowing to one request.
func TestDebugRequestsEndpoint(t *testing.T) {
	s := New(Config{})
	rq := nova.Request{KISS2: quickFSM, Name: "quick", Algorithm: nova.IGreedy}
	body, _ := json.Marshal(rq)

	r := httptest.NewRequest(http.MethodPost, "/v1/encode?trace=1", bytes.NewReader(body))
	r.Header.Set("X-Request-Id", "req-slow")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("encode: %d %s", w.Code, w.Body)
	}
	fw := post(s, "/v1/encode", bytes.NewReader([]byte("{")))
	if fw.Code != http.StatusBadRequest {
		t.Fatalf("bad request: %d", fw.Code)
	}
	failID := fw.Header().Get("X-Request-Id")

	dw := get(s, "/debug/requests", nil)
	if dw.Code != http.StatusOK {
		t.Fatalf("/debug/requests: %d", dw.Code)
	}
	var snap RecorderSnapshot
	if err := json.Unmarshal(dw.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Slowest) == 0 {
		t.Fatal("no slowest entries after traffic")
	}
	var slow *RequestRecord
	for i := range snap.Slowest {
		if snap.Slowest[i].ID == "req-slow" {
			slow = &snap.Slowest[i]
		}
	}
	if slow == nil {
		t.Fatalf("traced request missing from slowest: %+v", snap.Slowest)
	}
	if slow.Endpoint != "/v1/encode" || slow.Status != http.StatusOK || slow.Cache != "miss" {
		t.Fatalf("slow record %+v", slow)
	}
	if slow.Machine == "" || slow.Algorithm != string(nova.IGreedy) {
		t.Fatalf("slow record identity %+v", slow)
	}
	if len(slow.Phases) == 0 {
		t.Fatal("traced record lost its phase table")
	}
	if slow.TotalMicros <= 0 {
		t.Fatalf("total_us = %d", slow.TotalMicros)
	}
	if len(snap.RecentFailures) == 0 {
		t.Fatal("failure not recorded")
	}
	f := snap.RecentFailures[0]
	if f.ID != failID || f.Status != http.StatusBadRequest || f.ErrorKind != nova.ErrKindBadRequest {
		t.Fatalf("failure record %+v (want id %q)", f, failID)
	}

	// The ?id= filter pairs with ?trace=1: fetch one request's record.
	iw := get(s, "/debug/requests?id=req-slow", nil)
	var one RecorderSnapshot
	if err := json.Unmarshal(iw.Body.Bytes(), &one); err != nil {
		t.Fatal(err)
	}
	if len(one.Slowest) != 1 || one.Slowest[0].ID != "req-slow" || len(one.RecentFailures) != 0 {
		t.Fatalf("id filter: %+v", one)
	}
}

// TestDrainAccountingIdentity is the graceful-drain observability
// contract: under concurrent mixed-outcome traffic with a drain flipped
// mid-flight, the final snapshot satisfies
// admitted == completed + failed + canceled exactly.
func TestDrainAccountingIdentity(t *testing.T) {
	s := New(Config{MaxInflight: 8})
	block := make(chan struct{})
	realEncode := s.encode
	s.encode = func(ctx context.Context, f *nova.FSM, opt nova.Options) (*nova.Result, error) {
		select {
		case <-block:
		case <-ctx.Done():
			return nil, fmt.Errorf("nova: canceled: %w", nova.ErrCanceled)
		}
		return realEncode(ctx, f, opt)
	}

	var wg sync.WaitGroup
	// Successes (each a distinct machine name so they never collapse),
	// held in flight until the drain has flipped.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rq := nova.Request{KISS2: quickFSM, Name: fmt.Sprintf("m%d", i), Algorithm: nova.IGreedy}
			post(s, "/v1/encode", encodeBody(t, rq))
		}()
	}
	// A canceled client: hangs up while its encode blocks.
	wg.Add(1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		defer wg.Done()
		r := httptest.NewRequest(http.MethodPost, "/v1/encode",
			encodeBody(t, nova.Request{KISS2: quickFSM, Name: "doomed"}))
		s.ServeHTTP(httptest.NewRecorder(), r.WithContext(ctx))
	}()
	// Wait until all four blocking requests are admitted and in flight.
	for s.inflight.Load() < 4 {
		time.Sleep(time.Millisecond)
	}
	// Failures: malformed bodies answer 400 after admission (the
	// remaining slots are free, so these are admitted, not bounced).
	for i := 0; i < 3; i++ {
		post(s, "/v1/encode", bytes.NewReader([]byte("{")))
	}
	// Drain mid-flight, then let everything settle.
	s.Drain()
	cancel()
	close(block)
	wg.Wait()

	vars := s.Vars()
	adm, com, fld, can := vars["serve.admitted"], vars["serve.completed"], vars["serve.failed"], vars["serve.canceled"]
	if adm == 0 {
		t.Fatal("nothing admitted")
	}
	if adm != com+fld+can {
		t.Fatalf("accounting identity broken: admitted %d != completed %d + failed %d + canceled %d",
			adm, com, fld, can)
	}
	if can == 0 {
		t.Fatal("the canceled client was not accounted as canceled")
	}
	if fld == 0 {
		t.Fatal("the failed requests were not accounted")
	}
}

// TestRequestObsDisabledAllocFree is the alloc-parity guard for the
// disabled path: with DisableRequestObs, settling a request (RED
// histograms + drain accounting, no recorder/log/ID) performs zero
// per-request heap allocations. The recorder's steady-state fast path
// (healthy request under the slow floor) is likewise allocation-free.
func TestRequestObsDisabledAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are unreliable under the race detector")
	}
	s := New(Config{DisableRequestObs: true})
	ep := endpointKeysOf("/v1/encode")
	settle := func() {
		ro := reqObs{
			endpoint: ep.name,
			status:   http.StatusOK,
			queue:    3 * time.Microsecond,
			encode:   40 * time.Microsecond,
			total:    50 * time.Microsecond,
		}
		s.finishObs(ep, &ro)
	}
	settle() // warm the histogram map entries
	if n := testing.AllocsPerRun(200, settle); n != 0 {
		t.Fatalf("disabled-path finishObs allocates %.1f per request, want 0", n)
	}

	rc := newRecorder(2)
	rc.consider(slowRec("a", 1000))
	rc.consider(slowRec("b", 2000))
	if n := testing.AllocsPerRun(200, func() {
		rc.consider(RequestRecord{Endpoint: "/v1/encode", Status: http.StatusOK, TotalMicros: 5})
	}); n != 0 {
		t.Fatalf("recorder fast path allocates %.1f per request, want 0", n)
	}
}

// TestDisableRequestObsEndToEnd checks the disabled mode over HTTP: no
// request ID header, empty flight recorder, but RED metrics and the
// drain accounting still live.
func TestDisableRequestObsEndToEnd(t *testing.T) {
	s := New(Config{DisableRequestObs: true})
	rq := nova.Request{KISS2: quickFSM, Algorithm: nova.IGreedy}
	w := post(s, "/v1/encode", encodeBody(t, rq))
	if w.Code != http.StatusOK {
		t.Fatalf("POST: %d %s", w.Code, w.Body)
	}
	if got := w.Header().Get("X-Request-Id"); got != "" {
		t.Fatalf("disabled mode still issued a request ID %q", got)
	}
	var snap RecorderSnapshot
	dw := get(s, "/debug/requests", nil)
	if err := json.Unmarshal(dw.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Slowest) != 0 || len(snap.RecentFailures) != 0 {
		t.Fatalf("disabled mode recorded requests: %+v", snap)
	}
	vars := s.Vars()
	if vars["serve.admitted"] != 1 || vars["serve.completed"] != 1 {
		t.Fatalf("drain accounting off in disabled mode: %v", vars)
	}
	if vars["http.queue_wait./v1/encode.count"] != 1 {
		t.Fatalf("RED histograms off in disabled mode: %v", vars)
	}
}

// TestAccessLogLine checks the structured access log: one Info line per
// request carrying the ID and the latency split.
func TestAccessLogLine(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	s := New(Config{AccessLog: true, Logger: logger})
	rq := nova.Request{KISS2: quickFSM, Algorithm: nova.IGreedy}
	body, _ := json.Marshal(rq)
	r := httptest.NewRequest(http.MethodPost, "/v1/encode", bytes.NewReader(body))
	r.Header.Set("X-Request-Id", "log-me")
	s.ServeHTTP(httptest.NewRecorder(), r)

	line := buf.String()
	for _, want := range []string{"msg=request", "id=log-me", "endpoint=/v1/encode", "status=200", "cache=miss", "total_us="} {
		if !strings.Contains(line, want) {
			t.Fatalf("access log line %q lacks %q", line, want)
		}
	}
}
