package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"nova"
)

// servingGlossaryKeys parses the "Serving counter glossary" table of
// docs/OBSERVABILITY.md into exact keys and placeholder prefixes,
// following the doc's conventions: `a.b` / `.c` means a.b and a.c, and
// a `<placeholder>` truncates the key to its literal prefix.
func servingGlossaryKeys(t *testing.T) (exact map[string]bool, prefixes []string) {
	t.Helper()
	data, err := os.ReadFile("../../docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	_, sec, ok := strings.Cut(string(data), "### Serving counter glossary")
	if !ok {
		t.Fatal("docs/OBSERVABILITY.md lost its Serving counter glossary section")
	}
	if i := strings.Index(sec, "\n## "); i >= 0 {
		sec = sec[:i]
	}
	span := regexp.MustCompile("`([^`]+)`")
	exact = make(map[string]bool)
	for _, line := range strings.Split(sec, "\n") {
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		cell, _, ok := strings.Cut(strings.TrimPrefix(line, "| "), " |")
		if !ok {
			continue
		}
		var prev string
		for _, m := range span.FindAllStringSubmatch(cell, -1) {
			key := m[1]
			if strings.HasPrefix(key, ".") {
				if prev == "" {
					t.Fatalf("glossary row %q: leading-dot shorthand without a previous key", line)
				}
				key = prev[:strings.LastIndexByte(prev, '.')] + key
			} else {
				prev = key
			}
			if i := strings.IndexByte(key, '<'); i >= 0 {
				if key[:i] == "" {
					t.Fatalf("glossary key %q is all placeholder", key)
				}
				prefixes = append(prefixes, key[:i])
				continue
			}
			exact[key] = true
		}
	}
	if len(exact)+len(prefixes) == 0 {
		t.Fatal("no keys parsed from the serving glossary")
	}
	return exact, prefixes
}

// servingPrefixes are the Vars() namespaces owned by the serving layer;
// keys outside them belong to the engine glossary (guarded by the
// root-package doc-drift test).
var servingPrefixes = []string{"http.", "cache.", "engine.", "flight.", "serve.", "server.", "fault."}

// TestServingGlossaryMatchesVars is the doc-drift guard for the serving
// counter glossary: after real mixed traffic (miss, hit, failure,
// refusal, drain) every key the doc lists must appear in Vars(), and
// every serving-namespace key Vars() reports must be documented.
func TestServingGlossaryMatchesVars(t *testing.T) {
	exact, prefixes := servingGlossaryKeys(t)

	// A latency-only injector with rate 1 makes every request tick
	// fault.injected.latency, so the fault.* glossary rows stay honest
	// without perturbing the scripted outcomes below.
	s := New(Config{FaultInjection: &FaultConfig{LatencyRate: 1, Latency: time.Microsecond}})
	rq := nova.Request{KISS2: quickFSM, Name: "quick", Algorithm: nova.IGreedy}
	body, _ := json.Marshal(rq)
	if w := post(s, "/v1/encode", bytes.NewReader(body)); w.Code != http.StatusOK {
		t.Fatalf("miss: %d %s", w.Code, w.Body)
	}
	if w := post(s, "/v1/encode", bytes.NewReader(body)); w.Code != http.StatusOK {
		t.Fatalf("hit: %d", w.Code)
	}
	if w := post(s, "/v1/encode", bytes.NewReader([]byte("{"))); w.Code != http.StatusBadRequest {
		t.Fatalf("bad body: %d", w.Code)
	}
	// Draining refusals tick http.rejected.draining and server.draining,
	// so even those rows stay honest.
	s.Drain()
	if w := post(s, "/v1/encode", bytes.NewReader(body)); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining refusal: %d", w.Code)
	}

	got := s.Vars()
	hasPrefix := func(key string, ps []string) bool {
		for _, p := range ps {
			if strings.HasPrefix(key, p) {
				return true
			}
		}
		return false
	}

	// Forward: documented => present.
	var missing []string
	for key := range exact {
		if _, ok := got[key]; !ok {
			missing = append(missing, key)
		}
	}
	for _, p := range prefixes {
		found := false
		for key := range got {
			if strings.HasPrefix(key, p) {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, p+"<...>")
		}
	}
	if len(missing) > 0 {
		t.Errorf("serving glossary documents counters Vars() never produced: %v\n"+
			"(either the counter was removed — update docs/OBSERVABILITY.md — or the test traffic no longer reaches it)", missing)
	}

	// Reverse: every serving-namespace key => documented.
	var undocumented []string
	for key := range got {
		if !hasPrefix(key, servingPrefixes) {
			continue
		}
		if !exact[key] && !hasPrefix(key, prefixes) {
			undocumented = append(undocumented, key)
		}
	}
	if len(undocumented) > 0 {
		t.Errorf("Vars() produced serving counters missing from the docs/OBSERVABILITY.md serving glossary: %v", undocumented)
	}
}
