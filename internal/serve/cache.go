package serve

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// cacheShards is the shard count of the result cache: enough to keep
// lock contention negligible at the server's admission bound without
// fragmenting the byte budget into uselessly small slices.
const cacheShards = 16

// Cache is a sharded, size-bounded, content-addressed result cache: keys
// are the hex digests of nova.Request.CacheKey, values the marshaled
// Response bytes. Each shard keeps an LRU list under its own mutex and
// owns an equal slice of the byte budget; inserting over budget evicts
// from the shard's cold end. Values are treated as immutable — callers
// must not modify returned slices.
type Cache struct {
	shardBudget int64 // byte budget per shard
	seed        maphash.Seed
	shards      [cacheShards]cacheShard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	bytes     atomic.Int64 // current total payload bytes (gauge)
}

type cacheShard struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	m     map[string]*list.Element
	bytes int64 // payload bytes held by this shard
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache returns a cache bounded to roughly maxBytes of payload.
// maxBytes <= 0 selects 64 MiB.
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	budget := maxBytes / cacheShards
	if budget < 1 {
		budget = 1
	}
	c := &Cache{shardBudget: budget, seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].m = make(map[string]*list.Element)
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)%cacheShards]
}

// Get returns the cached bytes for key and whether they were present,
// promoting a hit to the warm end of its shard.
func (c *Cache) Get(key string) ([]byte, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.m[key]
	var val []byte
	if ok {
		s.ll.MoveToFront(el)
		val = el.Value.(*cacheEntry).val // read under the lock: Put may overwrite
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return val, true
}

// Put stores val under key, evicting cold entries of the shard while it
// is over its slice of the byte budget. A value larger than the whole
// shard budget is not admitted (it would evict everything else to keep
// one entry).
func (c *Cache) Put(key string, val []byte) {
	if int64(len(val)) > c.shardBudget {
		return
	}
	s := c.shard(key)
	var delta, evicted int64
	s.mu.Lock()
	if el, ok := s.m[key]; ok {
		ent := el.Value.(*cacheEntry)
		delta = int64(len(val)) - int64(len(ent.val))
		ent.val = val
		s.ll.MoveToFront(el)
	} else {
		s.m[key] = s.ll.PushFront(&cacheEntry{key: key, val: val})
		delta = int64(len(val))
	}
	s.bytes += delta
	for s.bytes > c.shardBudget {
		el := s.ll.Back()
		if el == nil {
			break
		}
		ent := el.Value.(*cacheEntry)
		s.ll.Remove(el)
		delete(s.m, ent.key)
		s.bytes -= int64(len(ent.val))
		delta -= int64(len(ent.val))
		evicted++
	}
	s.mu.Unlock()
	c.bytes.Add(delta)
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// CacheStats is a point-in-time summary of the cache counters.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Bytes     int64 // current payload bytes (gauge)
	Entries   int64
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Bytes:     c.bytes.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += int64(len(s.m))
		s.mu.Unlock()
	}
	return st
}
