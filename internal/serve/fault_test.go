package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"nova"
)

// TestFaultInjectionDisabledIsNoOp is the no-op proof: with
// FaultInjection nil (the default), withFaults returns the handler it
// was given — the same function value, so the registered chain contains
// no middleware frame, no rate check, no per-request draw. Stronger
// than any alloc or latency guard: the disabled path is structurally
// absent.
func TestFaultInjectionDisabledIsNoOp(t *testing.T) {
	s := New(Config{})
	if s.fault != nil {
		t.Fatal("fault injector armed without FaultInjection config")
	}
	h := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {})
	if got := s.withFaults(h); reflect.ValueOf(got).Pointer() != reflect.ValueOf(h).Pointer() {
		t.Fatal("withFaults wrapped the handler although fault injection is disabled")
	}
}

// TestFaultInjectionError: rate-1 error injection answers 503 +
// Retry-After before the handler runs, and ticks the counter.
func TestFaultInjectionError(t *testing.T) {
	s := New(Config{FaultInjection: &FaultConfig{Seed: 7, ErrorRate: 1}})
	rq, _ := json.Marshal(nova.Request{KISS2: quickFSM, Algorithm: nova.IGreedy})
	w := post(s, "/v1/encode", bytes.NewReader(rq))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("injected 503 without Retry-After")
	}
	if s.encodes.Load() != 0 {
		t.Fatal("injected error still reached the engine")
	}
	if got := s.Vars()["fault.injected.error"]; got != 1 {
		t.Fatalf("fault.injected.error = %d, want 1", got)
	}
	// GET endpoints stay clean: health checks and metrics scrapes are
	// never faulted, so chaos runs can still observe the server.
	hw := httptest.NewRecorder()
	s.ServeHTTP(hw, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if hw.Code != http.StatusOK {
		t.Fatalf("healthz faulted: %d", hw.Code)
	}
}

// TestFaultInjectionDrop: rate-1 drop injection aborts the request with
// http.ErrAbortHandler (net/http closes the connection; the client sees
// EOF, not a response).
func TestFaultInjectionDrop(t *testing.T) {
	s := New(Config{FaultInjection: &FaultConfig{Seed: 7, DropRate: 1}})
	rq, _ := json.Marshal(nova.Request{KISS2: quickFSM, Algorithm: nova.IGreedy})
	defer func() {
		if r := recover(); r != http.ErrAbortHandler {
			t.Fatalf("recovered %v, want http.ErrAbortHandler", r)
		}
		if got := s.Vars()["fault.injected.drop"]; got != 1 {
			t.Fatalf("fault.injected.drop = %d, want 1", got)
		}
	}()
	post(s, "/v1/encode", bytes.NewReader(rq))
	t.Fatal("dropped request still answered")
}

// TestFaultInjectionLatency: rate-1 latency injection delays but does
// not fail the request.
func TestFaultInjectionLatency(t *testing.T) {
	const delay = 30 * time.Millisecond
	s := New(Config{FaultInjection: &FaultConfig{Seed: 7, LatencyRate: 1, Latency: delay}})
	rq, _ := json.Marshal(nova.Request{KISS2: quickFSM, Algorithm: nova.IGreedy})
	start := time.Now()
	w := post(s, "/v1/encode", bytes.NewReader(rq))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	if d := time.Since(start); d < delay {
		t.Fatalf("request took %v, want >= %v of injected latency", d, delay)
	}
	if got := s.Vars()["fault.injected.latency"]; got != 1 {
		t.Fatalf("fault.injected.latency = %d, want 1", got)
	}
}

// TestFaultScheduleDeterministic: two servers with the same seed and
// rates inject the identical fault sequence over a serial request
// stream — the property that makes chaos tests reproducible.
func TestFaultScheduleDeterministic(t *testing.T) {
	run := func(seed uint64) []int {
		s := New(Config{FaultInjection: &FaultConfig{Seed: seed, ErrorRate: 0.4}})
		rq, _ := json.Marshal(nova.Request{KISS2: quickFSM, Algorithm: nova.IGreedy})
		var codes []int
		for i := 0; i < 32; i++ {
			codes = append(codes, post(s, "/v1/encode", bytes.NewReader(rq)).Code)
		}
		return codes
	}
	a, b := run(11), run(11)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different fault schedules:\n%v\n%v", a, b)
	}
	faulted := 0
	for _, c := range a {
		if c == http.StatusServiceUnavailable {
			faulted++
		}
	}
	if faulted == 0 || faulted == len(a) {
		t.Fatalf("rate-0.4 schedule injected %d/%d faults — draw looks degenerate", faulted, len(a))
	}
	if c := run(12); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced the identical schedule")
	}
}
