package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"nova"
)

func postPri(s *Server, target, pri string, body []byte) *httptest.ResponseRecorder {
	r := httptest.NewRequest(http.MethodPost, target, bytes.NewReader(body))
	if pri != "" {
		r.Header.Set("X-Nova-Priority", pri)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}

// blockOneSlot fills the server's only engine slot with a blocked
// encode and returns the release func. MaxInflight must be 1.
func blockOneSlot(t *testing.T, s *Server) (release func()) {
	t.Helper()
	started := make(chan struct{}, 1)
	releaseC := make(chan struct{})
	realEncode := s.encode
	s.encode = func(ctx context.Context, f *nova.FSM, opt nova.Options) (*nova.Result, error) {
		select {
		case started <- struct{}{}:
		default: // later (post-release) encodes run unblocked
			return realEncode(ctx, f, opt)
		}
		<-releaseC
		return realEncode(ctx, f, opt)
	}
	go post(s, "/v1/encode", encodeBody(t, nova.Request{KISS2: quickFSM, Name: "blocker", Algorithm: nova.IGreedy}))
	<-started
	return func() { close(releaseC) }
}

// TestShedLowPriorityImmediately: under saturation a low-priority
// request sheds without queueing even though QueueWait would allow a
// long wait, and the shed is typed (429 + Retry-After + overloaded).
func TestShedLowPriorityImmediately(t *testing.T) {
	s := New(Config{MaxInflight: 1, QueueWait: 10 * time.Second})
	release := blockOneSlot(t, s)
	defer release()

	rq, _ := json.Marshal(nova.Request{KISS2: quickFSM, Name: "low", Algorithm: nova.IGreedy})
	start := time.Now()
	w := postPri(s, "/v1/encode", "low", rq)
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("low-priority shed queued for %v", d)
	}
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("shed without Retry-After")
	}
	var rp nova.Response
	if err := json.Unmarshal(w.Body.Bytes(), &rp); err != nil {
		t.Fatal(err)
	}
	if rp.ErrorKind != nova.ErrKindOverloaded {
		t.Fatalf("error_kind = %q, want %q", rp.ErrorKind, nova.ErrKindOverloaded)
	}
	if got := s.Vars()["serve.shed.low"]; got != 1 {
		t.Fatalf("serve.shed.low = %d, want 1", got)
	}
}

// TestShedExpensiveBeforeCheap: under saturation, expensive work at
// normal priority sheds immediately while cheap work at the same
// priority queues and completes once a slot frees.
func TestShedExpensiveBeforeCheap(t *testing.T) {
	s := New(Config{MaxInflight: 1, QueueWait: 30 * time.Second})
	release := blockOneSlot(t, s)

	// Expensive (iexact) at normal priority: shed now.
	exp, _ := json.Marshal(nova.Request{KISS2: quickFSM, Name: "exp", Algorithm: nova.IExact})
	if w := postPri(s, "/v1/encode", "", exp); w.Code != http.StatusTooManyRequests {
		t.Fatalf("expensive under saturation: %d, want 429", w.Code)
	}
	if got := s.Vars()["serve.shed.normal"]; got != 1 {
		t.Fatalf("serve.shed.normal = %d, want 1", got)
	}

	// Cheap (igreedy) at normal priority: queues, then completes.
	cheap, _ := json.Marshal(nova.Request{KISS2: quickFSM, Name: "cheap", Algorithm: nova.IGreedy})
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- postPri(s, "/v1/encode", "", cheap) }()
	time.Sleep(10 * time.Millisecond) // let it park in the queue
	release()
	select {
	case w := <-done:
		if w.Code != http.StatusOK {
			t.Fatalf("queued cheap request: %d %s", w.Code, w.Body)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("queued cheap request never completed")
	}
}

// TestHighPriorityExpensiveQueues: the criticality header buys
// expensive work the full queue wait instead of the immediate shed.
func TestHighPriorityExpensiveQueues(t *testing.T) {
	s := New(Config{MaxInflight: 1, QueueWait: 30 * time.Second})
	release := blockOneSlot(t, s)

	exp, _ := json.Marshal(nova.Request{KISS2: quickFSM, Name: "crit", Algorithm: nova.IExact})
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- postPri(s, "/v1/encode", "high", exp) }()
	time.Sleep(10 * time.Millisecond)
	release()
	select {
	case w := <-done:
		if w.Code != http.StatusOK {
			t.Fatalf("high-priority expensive request: %d %s", w.Code, w.Body)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("high-priority request never completed")
	}
}

// TestCacheHitServedUnderSaturation: cached responses cost no engine
// slot, so even a low-priority request is answered from cache while the
// server is saturated — the "cheap/cached admitted under pressure" half
// of the shedding contract.
func TestCacheHitServedUnderSaturation(t *testing.T) {
	s := New(Config{MaxInflight: 1, QueueWait: -1})
	rq, _ := json.Marshal(nova.Request{KISS2: quickFSM, Name: "warm", Algorithm: nova.IGreedy})
	if w := postPri(s, "/v1/encode", "", rq); w.Code != http.StatusOK {
		t.Fatalf("warmup: %d %s", w.Code, w.Body)
	}

	release := blockOneSlot(t, s)
	defer release()
	w := postPri(s, "/v1/encode", "low", rq)
	if w.Code != http.StatusOK {
		t.Fatalf("cached request under saturation: %d %s", w.Code, w.Body)
	}
	if got := w.Header().Get("X-Cache"); got != "HIT" {
		t.Fatalf("X-Cache = %q, want HIT", got)
	}
}

// TestRetrySafeHeader: every response — success, client error, refusal —
// states its retry safety (all nova endpoints are pure).
func TestRetrySafeHeader(t *testing.T) {
	s := New(Config{})
	rq, _ := json.Marshal(nova.Request{KISS2: quickFSM, Algorithm: nova.IGreedy})
	if w := postPri(s, "/v1/encode", "", rq); w.Header().Get("X-Nova-Retry-Safe") != "1" {
		t.Fatal("success response lost X-Nova-Retry-Safe")
	}
	if w := postPri(s, "/v1/encode", "", []byte("{")); w.Header().Get("X-Nova-Retry-Safe") != "1" {
		t.Fatal("400 response lost X-Nova-Retry-Safe")
	}
	s.Drain()
	if w := postPri(s, "/v1/encode", "", rq); w.Header().Get("X-Nova-Retry-Safe") != "1" {
		t.Fatal("drain refusal lost X-Nova-Retry-Safe")
	}
}

// TestBatchShedsPerItem: a saturated server sheds a batch's expensive
// items inline (the overloaded error in that item's slot) without
// failing the whole batch — the partial-results contract extends to
// load shedding.
func TestBatchShedsPerItem(t *testing.T) {
	s := New(Config{MaxInflight: 1, QueueWait: -1})
	// Warm one item so it is served from cache even under saturation.
	warm, _ := json.Marshal(nova.Request{KISS2: quickFSM, Name: "warm", Algorithm: nova.IGreedy})
	if w := postPri(s, "/v1/encode", "", warm); w.Code != http.StatusOK {
		t.Fatalf("warmup: %d %s", w.Code, w.Body)
	}
	release := blockOneSlot(t, s)
	defer release()

	bq, _ := json.Marshal(BatchRequest{Requests: []nova.Request{
		{KISS2: quickFSM, Name: "warm", Algorithm: nova.IGreedy},
		{KISS2: quickFSM, Name: "cold", Algorithm: nova.IExact},
	}})
	w := postPri(s, "/v1/encode/batch", "", bq)
	if w.Code != http.StatusOK {
		t.Fatalf("batch status = %d: %s", w.Code, w.Body)
	}
	var out BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	var cached, shed nova.Response
	if err := json.Unmarshal(out.Responses[0], &cached); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(out.Responses[1], &shed); err != nil {
		t.Fatal(err)
	}
	if cached.Error != "" || cached.Area <= 0 {
		t.Fatalf("cached item should have been served: %+v", cached)
	}
	if shed.ErrorKind != nova.ErrKindOverloaded {
		t.Fatalf("cold expensive item: error_kind = %q, want %q (%+v)", shed.ErrorKind, nova.ErrKindOverloaded, shed)
	}
	if !nova.RetryableKind(shed.ErrorKind) {
		t.Fatal("the shed item's kind must be retryable")
	}
}

// TestPriorityOf pins the header parsing (unknown values are normal).
func TestPriorityOf(t *testing.T) {
	cases := []struct {
		hdr  string
		want priority
	}{
		{"", priNormal}, {"low", priLow}, {"high", priHigh},
		{"normal", priNormal}, {"HIGH", priNormal}, {"urgent", priNormal},
	}
	for _, c := range cases {
		r := httptest.NewRequest(http.MethodPost, "/v1/encode", nil)
		if c.hdr != "" {
			r.Header.Set("X-Nova-Priority", c.hdr)
		}
		if got := priorityOf(r); got != c.want {
			t.Fatalf("priorityOf(%q) = %v, want %v", c.hdr, got, c.want)
		}
		if fmt.Sprint(c.want) == "" {
			t.Fatalf("priority %d has no name", c.want)
		}
	}
}

// TestCostOf pins the algorithm cost classes the shed policy uses.
func TestCostOf(t *testing.T) {
	expensive := []nova.Algorithm{"", nova.IExact, nova.Best, nova.Portfolio, nova.IOVariant}
	for _, alg := range expensive {
		if costOf(alg) != costExpensive {
			t.Fatalf("costOf(%q) should be expensive", alg)
		}
	}
	cheap := []nova.Algorithm{nova.IGreedy, nova.IHybrid, nova.IOHybrid, nova.KISS, nova.OneHot, nova.Random, nova.MustangP}
	for _, alg := range cheap {
		if costOf(alg) != costCheap {
			t.Fatalf("costOf(%q) should be cheap", alg)
		}
	}
}
