package serve

import (
	"context"
	"errors"
	"sync"

	"nova"
)

// flights collapses concurrent identical requests: the first caller for
// a key becomes the leader and runs fn; every other caller blocks on the
// leader's completion and shares its bytes. Two wrinkles distinguish it
// from the textbook singleflight:
//
//   - A follower whose own context dies stops waiting immediately (the
//     leader keeps running for the others).
//   - A leader that fails with nova.ErrCanceled (its client hung up or
//     its deadline fired) must not poison the followers: each live
//     follower retries, and the first one through the lock becomes the
//     new leader.
type flights struct {
	mu sync.Mutex
	m  map[string]*flight

	// shared counts follower joins, leads counts runs actually led (for
	// the singleflight metrics: leader/follower split).
	shared int64
	leads  int64
}

type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// Do runs fn once per key among concurrent callers. It returns fn's
// bytes, whether this caller shared another caller's run, and the error.
func (fs *flights) Do(ctx context.Context, key string, fn func() ([]byte, error)) ([]byte, bool, error) {
	joined := false
	for {
		fs.mu.Lock()
		if fs.m == nil {
			fs.m = make(map[string]*flight)
		}
		if fl, ok := fs.m[key]; ok {
			fs.shared++
			fs.mu.Unlock()
			joined = true
			select {
			case <-fl.done:
				if fl.err != nil && errors.Is(fl.err, nova.ErrCanceled) && ctx.Err() == nil {
					continue // leader canceled but we are alive: take over
				}
				return fl.val, true, fl.err
			case <-ctx.Done():
				return nil, true, ctx.Err()
			}
		}
		fl := &flight{done: make(chan struct{})}
		fs.m[key] = fl
		fs.leads++
		fs.mu.Unlock()
		fl.val, fl.err = fn()
		fs.mu.Lock()
		delete(fs.m, key)
		fs.mu.Unlock()
		close(fl.done)
		return fl.val, joined, fl.err
	}
}

// Shared reports how many calls joined another caller's flight so far.
func (fs *flights) Shared() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.shared
}

// Leads reports how many flights were actually led (one per engine run
// that went through the singleflight, takeovers included).
func (fs *flights) Leads() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.leads
}
