package encode

import (
	"math/rand"

	"nova/internal/constraint"
	"nova/internal/encoding"
	"nova/internal/face"
)

// SpannedFace returns the smallest face containing the codes of the members
// of set s under encoding e (the face the constraint's multiple-valued
// literal translates to in the encoded PLA).
func SpannedFace(e encoding.Encoding, s constraint.Set) face.Face {
	var and, or uint64
	first := true
	for _, m := range s.Members() {
		c := e.Codes[m]
		if first {
			and, or = c, c
			first = false
			continue
		}
		and &= c
		or |= c
	}
	x := and ^ or
	return face.Face{Val: and &^ x, X: x, K: e.Bits}
}

// Satisfied reports whether encoding e satisfies input constraint s: the
// face spanned by the member codes contains the code of no non-member.
func Satisfied(e encoding.Encoding, s constraint.Set) bool {
	f := SpannedFace(e, s)
	for i := 0; i < s.N(); i++ {
		if s.Has(i) {
			continue
		}
		if f.HasVertex(e.Codes[i]) {
			return false
		}
	}
	return true
}

// OCSatisfied reports whether e satisfies the output covering edge: the
// code of U covers the code of V bitwise and differs from it.
func OCSatisfied(e encoding.Encoding, edge OCEdge) bool {
	cu, cv := e.Codes[edge.U], e.Codes[edge.V]
	return cv&^cu == 0 && cu != cv
}

// Result reports the outcome of an encoding algorithm on one symbolic
// variable.
type Result struct {
	Enc encoding.Encoding
	// Satisfied and Unsatisfied partition the (normalized) input
	// constraints according to the final encoding.
	Satisfied, Unsatisfied []constraint.Constraint
	// WSat and WUnsat are the corresponding total weights.
	WSat, WUnsat int
	// SatisfiedOC counts satisfied output covering edges (iohybrid only).
	SatisfiedOC, TotalOC int
	// Work is the number of face-assignment attempts spent.
	Work int
	// GaveUp is set when a work budget fired before the search space was
	// exhausted (the result may be feasible but unproven).
	GaveUp bool
	// Err is set when the run was cut short by context cancellation (the
	// ctx.Err() observed); the rest of the Result is then partial and
	// must not be used as an encoding.
	Err error
	// Proven is set by IExact when the returned encoding length is a
	// proven minimum: no smaller dimension's search was cut short by the
	// work budget.
	Proven bool
}

// score fills the satisfaction fields of a Result from the encoding.
func score(r *Result, ics []constraint.Constraint) {
	r.Satisfied, r.Unsatisfied = nil, nil
	r.WSat, r.WUnsat = 0, 0
	for _, ic := range ics {
		if Satisfied(r.Enc, ic.Set) {
			r.Satisfied = append(r.Satisfied, ic)
			r.WSat += ic.Weight
		} else {
			r.Unsatisfied = append(r.Unsatisfied, ic)
			r.WUnsat += ic.Weight
		}
	}
}

// MinLength returns the minimum encoding length for n symbols:
// ceil(log2 n), at least 1.
func MinLength(n int) int {
	b, p := 0, 1
	for p < n {
		p <<= 1
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// RandomEncoding returns a random injective encoding of n symbols in the
// given number of bits, drawn from rng.
func RandomEncoding(n, bits int, rng *rand.Rand) encoding.Encoding {
	e := encoding.New(n, bits)
	space := 1 << uint(bits)
	if bits >= 31 || space < n {
		// Degenerate widths: fall back to sequential codes.
		for i := range e.Codes {
			e.Codes[i] = uint64(i)
		}
		return e
	}
	perm := rng.Perm(space)
	for i := 0; i < n; i++ {
		e.Codes[i] = uint64(perm[i])
	}
	return e
}
