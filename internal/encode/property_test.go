package encode

import (
	"math/rand"
	"testing"

	"nova/internal/constraint"
)

// randomInstance draws a random constraint instance over n symbols.
func randomInstance(rng *rand.Rand, n, m int) []constraint.Constraint {
	var ics []constraint.Constraint
	for i := 0; i < m; i++ {
		s := constraint.NewSet(n)
		card := 2 + rng.Intn(n-1)
		perm := rng.Perm(n)
		for _, x := range perm[:card] {
			s.Add(x)
		}
		ics = append(ics, constraint.Constraint{Set: s, Weight: 1 + rng.Intn(5)})
	}
	return ics
}

// Property: on random instances every algorithm returns distinct codes and
// reports satisfaction truthfully.
func TestAlgorithmsReportTruthfully(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(8)
		ics := randomInstance(rng, n, 1+rng.Intn(6))
		check := func(name string, r Result) {
			t.Helper()
			if !r.Enc.Distinct() {
				t.Fatalf("trial %d %s: duplicate codes", trial, name)
			}
			for _, ic := range r.Satisfied {
				if !Satisfied(r.Enc, ic.Set) {
					t.Fatalf("trial %d %s: claims %s satisfied, is not", trial, name, ic.Set)
				}
			}
			for _, ic := range r.Unsatisfied {
				if Satisfied(r.Enc, ic.Set) {
					t.Fatalf("trial %d %s: claims %s unsatisfied, is satisfied", trial, name, ic.Set)
				}
			}
			norm := constraint.Normalize(ics)
			if r.WSat+r.WUnsat != constraint.TotalWeight(norm) {
				t.Fatalf("trial %d %s: weights %d+%d != %d", trial, name, r.WSat, r.WUnsat, constraint.TotalWeight(norm))
			}
		}
		check("ihybrid", IHybrid(n, ics, 0, HybridOptions{}))
		check("igreedy", IGreedy(n, ics, 0))
		check("satisfyall", SatisfyAll(n, ics))
	}
}

// Property: iexact, when it completes, satisfies everything with a length
// no larger than SatisfyAll needed and no smaller than the minimum.
func TestIExactOptimalityEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(5)
		ics := randomInstance(rng, n, 1+rng.Intn(4))
		ex := IExact(n, ics, ExactOptions{MaxWork: 400_000})
		if ex.GaveUp {
			continue
		}
		if len(ex.Unsatisfied) != 0 {
			t.Fatalf("trial %d: iexact left %v unsatisfied", trial, ex.Unsatisfied)
		}
		if ex.Enc.Bits < MinLength(n) {
			t.Fatalf("trial %d: bits %d below minimum", trial, ex.Enc.Bits)
		}
		all := SatisfyAll(n, ics)
		if ex.Enc.Bits > all.Enc.Bits {
			t.Fatalf("trial %d: exact length %d above the projection heuristic's %d",
				trial, ex.Enc.Bits, all.Enc.Bits)
		}
	}
}

// Property: SatisfyAll always satisfies every constraint.
func TestSatisfyAllTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(10)
		ics := randomInstance(rng, n, 1+rng.Intn(8))
		r := SatisfyAll(n, ics)
		if len(r.Unsatisfied) != 0 {
			t.Fatalf("trial %d: unsatisfied %v", trial, r.Unsatisfied)
		}
		if !r.Enc.Distinct() {
			t.Fatalf("trial %d: duplicate codes", trial)
		}
	}
}

// Property: giving ihybrid more bits never lowers the satisfied weight.
func TestIHybridMonotoneInBits(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(6)
		ics := randomInstance(rng, n, 2+rng.Intn(5))
		prev := -1
		for bits := MinLength(n); bits <= MinLength(n)+3; bits++ {
			r := IHybrid(n, ics, bits, HybridOptions{})
			if r.WSat < prev {
				t.Fatalf("trial %d: wsat dropped from %d to %d at %d bits", trial, prev, r.WSat, bits)
			}
			prev = r.WSat
		}
	}
}

// Property: the one-hot-like guarantee — projection to n bits satisfies
// every instance (Proposition 4.2.1 iterated).
func TestProjectionConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(7)
		ics := randomInstance(rng, n, 2+rng.Intn(6))
		r := IHybrid(n, ics, n+len(ics), HybridOptions{})
		if len(r.Unsatisfied) != 0 {
			t.Fatalf("trial %d: projection did not converge: %v", trial, r.Unsatisfied)
		}
	}
}

// Property: OutEncoder satisfies every acyclic covering instance.
func TestOutEncoderRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(8)
		var oc []OCEdge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(4) == 0 {
					oc = append(oc, OCEdge{U: u, V: v}) // u > v keeps it acyclic
				}
			}
		}
		e := OutEncoder(n, oc, 0)
		if !e.Distinct() {
			t.Fatalf("trial %d: duplicate codes", trial)
		}
		for _, edge := range oc {
			if !OCSatisfied(e, edge) {
				t.Fatalf("trial %d: edge %+v unsatisfied in %s", trial, edge, e)
			}
		}
	}
}
