package encode

import (
	"reflect"
	"sync"
	"testing"

	"nova/internal/constraint"
)

// TestConcurrentIHybridIndependence runs the same hybrid search from many
// goroutines over a shared constraint slice and requires every run to
// return the serial result. The parallel encoding engine fans searches
// over shared problem data exactly this way, so under -race (make verify)
// this pins the searches down to per-call state only — no hidden shared
// scratch, which is also the contract the espresso arena pool relies on.
func TestConcurrentIHybridIndependence(t *testing.T) {
	var ics []constraint.Constraint
	for _, v := range []string{"1110000", "0111000", "0000111", "1000110", "0000011", "0011000"} {
		ics = append(ics, constraint.Constraint{Set: constraint.MustFromString(v), Weight: 1})
	}
	opt := HybridOptions{Seed: 5}
	base := IHybrid(7, ics, 4, opt)
	if base.Err != nil {
		t.Fatalf("serial IHybrid failed: %v", base.Err)
	}
	const workers = 8
	results := make([]Result, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = IHybrid(7, ics, 4, opt)
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if !reflect.DeepEqual(r, base) {
			t.Fatalf("concurrent run %d diverged from serial:\ngot  %+v\nwant %+v", i, r, base)
		}
	}
}
