package encode

import (
	"math/rand"
	"testing"

	"nova/internal/constraint"
	"nova/internal/encoding"
)

func paperIC(weights ...int) []constraint.Constraint {
	vecs := []string{"1110000", "0111000", "0000111", "1000110", "0000011", "0011000"}
	var ics []constraint.Constraint
	for i, v := range vecs {
		w := 1
		if i < len(weights) {
			w = weights[i]
		}
		ics = append(ics, constraint.Constraint{Set: constraint.MustFromString(v), Weight: w})
	}
	return ics
}

func checkAllSatisfied(t *testing.T, e encoding.Encoding, ics []constraint.Constraint) {
	t.Helper()
	if !e.Distinct() {
		t.Fatalf("codes not distinct: %s", e)
	}
	for _, ic := range ics {
		if !Satisfied(e, ic.Set) {
			t.Fatalf("constraint %s unsatisfied under %s", ic.Set, e)
		}
	}
}

func TestIExactPaperExample(t *testing.T) {
	// Example 3.1.1 / 3.4.2.1: the instance is feasible in dimension 4 and
	// infeasible below (mincube_dim = 4 already).
	res := IExact(7, paperIC(), ExactOptions{})
	if res.GaveUp {
		t.Fatal("iexact gave up on the paper example")
	}
	if res.Enc.Bits != 4 {
		t.Fatalf("iexact found %d bits, want 4", res.Enc.Bits)
	}
	checkAllSatisfied(t, res.Enc, paperIC())
	if res.WUnsat != 0 || len(res.Unsatisfied) != 0 {
		t.Fatal("iexact must satisfy everything")
	}
}

func TestIExactNoConstraints(t *testing.T) {
	res := IExact(4, nil, ExactOptions{})
	if res.GaveUp {
		t.Fatal("gave up with no constraints")
	}
	if res.Enc.Bits != 2 {
		t.Fatalf("bits = %d, want 2", res.Enc.Bits)
	}
	if !res.Enc.Distinct() {
		t.Fatal("codes not distinct")
	}
}

func TestIExactSingleConstraint(t *testing.T) {
	ics := []constraint.Constraint{{Set: constraint.MustFromString("1100"), Weight: 1}}
	res := IExact(4, ics, ExactOptions{})
	if res.GaveUp || res.Enc.Bits != 2 {
		t.Fatalf("gaveUp=%v bits=%d, want feasible in 2", res.GaveUp, res.Enc.Bits)
	}
	checkAllSatisfied(t, res.Enc, ics)
}

func TestIExactConflictNeedsMoreBits(t *testing.T) {
	// Three pairwise overlapping 2-sets over 3 states cannot all be faces
	// of a 2-cube; dimension 3 is needed (e.g. codes on a 3-cube).
	ics := []constraint.Constraint{
		{Set: constraint.MustFromString("110"), Weight: 1},
		{Set: constraint.MustFromString("011"), Weight: 1},
		{Set: constraint.MustFromString("101"), Weight: 1},
	}
	res := IExact(3, ics, ExactOptions{})
	if res.GaveUp {
		t.Fatal("gave up")
	}
	checkAllSatisfied(t, res.Enc, ics)
	if res.Enc.Bits < 3 {
		t.Fatalf("bits = %d; three mutually overlapping pairs need 3", res.Enc.Bits)
	}
}

func TestIHybridPaperExample41(t *testing.T) {
	// Example 4.1: weights 4,2,3,5,1,1; with #bits=4 the projection phase
	// satisfies everything.
	ics := paperIC(4, 2, 3, 5, 1, 1)
	res := IHybrid(7, ics, 4, HybridOptions{})
	if res.Enc.Bits > 4 {
		t.Fatalf("bits = %d, want <= 4", res.Enc.Bits)
	}
	checkAllSatisfied(t, res.Enc, ics)
}

func TestIHybridMinimumLength(t *testing.T) {
	// On the minimum length (3 bits for 7 states) not everything fits;
	// the heavier constraints should be preferred.
	ics := paperIC(4, 2, 3, 5, 1, 1)
	res := IHybrid(7, ics, 0, HybridOptions{})
	if res.Enc.Bits != 3 {
		t.Fatalf("bits = %d, want 3", res.Enc.Bits)
	}
	if !res.Enc.Distinct() {
		t.Fatal("codes not distinct")
	}
	// Every constraint reported satisfied must actually be satisfied.
	for _, ic := range res.Satisfied {
		if !Satisfied(res.Enc, ic.Set) {
			t.Fatalf("reported-satisfied constraint %s is not", ic.Set)
		}
	}
	// The single heaviest constraint is always satisfiable alone.
	if res.WSat < 5 {
		t.Fatalf("WSat = %d; the weight-5 constraint should be satisfied", res.WSat)
	}
	if res.WSat+res.WUnsat != 16 {
		t.Fatalf("weights don't add up: %d + %d", res.WSat, res.WUnsat)
	}
}

func TestIHybridProjectionGuarantee(t *testing.T) {
	// With #bits = #states every input constraint must be satisfied
	// (project_code satisfies at least one more per added dimension).
	ics := paperIC(4, 2, 3, 5, 1, 1)
	res := IHybrid(7, ics, 7, HybridOptions{})
	checkAllSatisfied(t, res.Enc, ics)
}

func TestIHybridNoConstraints(t *testing.T) {
	res := IHybrid(5, nil, 0, HybridOptions{})
	if res.Enc.Bits != 3 || !res.Enc.Distinct() {
		t.Fatalf("bits=%d distinct=%v", res.Enc.Bits, res.Enc.Distinct())
	}
}

func TestIGreedyPaperExample(t *testing.T) {
	ics := paperIC(4, 2, 3, 5, 1, 1)
	res := IGreedy(7, ics, 0)
	if res.Enc.Bits != 3 {
		t.Fatalf("bits = %d, want 3", res.Enc.Bits)
	}
	if !res.Enc.Distinct() {
		t.Fatal("codes not distinct")
	}
	for _, ic := range res.Satisfied {
		if !Satisfied(res.Enc, ic.Set) {
			t.Fatalf("reported-satisfied constraint %s is not", ic.Set)
		}
	}
	if res.WSat == 0 {
		t.Fatal("greedy satisfied nothing at all")
	}
}

func TestIGreedyLargerSpace(t *testing.T) {
	ics := paperIC(4, 2, 3, 5, 1, 1)
	res := IGreedy(7, ics, 4)
	if res.Enc.Bits != 4 || !res.Enc.Distinct() {
		t.Fatalf("bits=%d distinct=%v", res.Enc.Bits, res.Enc.Distinct())
	}
	res3 := IGreedy(7, ics, 3)
	if res.WSat < res3.WSat {
		t.Fatalf("more space should not hurt greedy: %d < %d", res.WSat, res3.WSat)
	}
}

func TestSatisfiedSemantics(t *testing.T) {
	// States 0,1 at codes 00,01: face x0... constraint {0,1} spans 0x;
	// code 10 of state 2 is outside, 11 of state 3 outside: satisfied.
	e := encoding.Encoding{Bits: 2, Codes: []uint64{0b00, 0b10, 0b01, 0b11}}
	if !Satisfied(e, constraint.MustFromString("1100")) {
		t.Fatal("constraint {0,1} should be satisfied")
	}
	// {0,3} spans the whole square: unsatisfied.
	if Satisfied(e, constraint.MustFromString("1001")) {
		t.Fatal("constraint {0,3} spans everything: unsatisfied")
	}
}

func TestOutEncoder(t *testing.T) {
	// Chain: 2 covers 1, 3 covers 2.
	oc := []OCEdge{{U: 1, V: 0}, {U: 2, V: 1}}
	e := OutEncoder(4, oc, 2)
	if !e.Distinct() {
		t.Fatal("codes not distinct")
	}
	for _, edge := range oc {
		if !OCSatisfied(e, edge) {
			t.Fatalf("edge %+v unsatisfied: %s", edge, e)
		}
	}
}

func TestOutEncoderWideDag(t *testing.T) {
	// State 0 covers everything else: code(0) must be the OR of all.
	var oc []OCEdge
	for v := 1; v < 6; v++ {
		oc = append(oc, OCEdge{U: 0, V: v})
	}
	e := OutEncoder(6, oc, 3)
	for _, edge := range oc {
		if !OCSatisfied(e, edge) {
			t.Fatalf("edge %+v unsatisfied: %s", edge, e)
		}
	}
}

func TestIOHybridPaperExample6221(t *testing.T) {
	// Example 6.2.2.1: 8 states; solution exists in 3 bits.
	mk := constraint.MustFromString
	p := IOProblem{
		N: 8,
		IC: []constraint.Constraint{
			{Set: mk("01010101"), Weight: 1},
			{Set: mk("00110000"), Weight: 1},
			{Set: mk("00001100"), Weight: 2},
			{Set: mk("00000011"), Weight: 1},
			{Set: mk("00110000"), Weight: 3},
			{Set: mk("00001100"), Weight: 1},
			{Set: mk("00000011"), Weight: 1},
		},
		ICo: []constraint.Constraint{{Set: mk("01010101"), Weight: 1}},
		Clusters: []Cluster{
			{State: 0, OC: []OCEdge{{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}, {6, 0}, {7, 0}}, W: 4},
			{State: 1, IC: []constraint.Constraint{{Set: mk("00110000"), Weight: 1}}, OC: []OCEdge{{5, 1}}, W: 1},
			{State: 2, IC: []constraint.Constraint{{Set: mk("00001100"), Weight: 2}}, OC: []OCEdge{{6, 2}}, W: 2},
			{State: 3, IC: []constraint.Constraint{{Set: mk("00000011"), Weight: 1}}, OC: []OCEdge{{7, 3}}, W: 1},
			{State: 4, OC: []OCEdge{{5, 4}, {6, 4}, {7, 4}}, W: 1},
			{State: 5, IC: []constraint.Constraint{{Set: mk("00110000"), Weight: 3}}, W: 3},
			{State: 6, IC: []constraint.Constraint{{Set: mk("00001100"), Weight: 1}}, W: 1},
			{State: 7, IC: []constraint.Constraint{{Set: mk("00000011"), Weight: 1}}, W: 1},
		},
	}
	res := IOHybrid(p, 3, HybridOptions{})
	if res.Enc.Bits != 3 || !res.Enc.Distinct() {
		t.Fatalf("bits=%d distinct=%v", res.Enc.Bits, res.Enc.Distinct())
	}
	// The published solution satisfies all input constraints and all
	// output edges; our heuristic must at least satisfy all ICs and some
	// OC weight.
	if res.WUnsat != 0 {
		t.Fatalf("input constraints unsatisfied: %v", res.Unsatisfied)
	}
	if res.SatisfiedOC == 0 {
		t.Fatal("no output covering edge satisfied")
	}
	// Check the published solution really is a solution to the instance
	// (sanity of the test fixture itself).
	pub := encoding.Encoding{Bits: 3, Codes: []uint64{
		0b000, 0b010, 0b001, 0b011, 0b100, 0b110, 0b101, 0b111,
	}}
	for _, ic := range constraint.Normalize(p.IC) {
		if !Satisfied(pub, ic.Set) {
			t.Fatalf("published solution violates IC %s", ic.Set)
		}
	}
	for _, cl := range p.Clusters {
		for _, e := range cl.OC {
			if !OCSatisfied(pub, e) {
				t.Fatalf("published solution violates OC %+v", e)
			}
		}
	}
}

func TestIOVariantRuns(t *testing.T) {
	mk := constraint.MustFromString
	p := IOProblem{
		N: 4,
		IC: []constraint.Constraint{
			{Set: mk("1100"), Weight: 2},
			{Set: mk("0011"), Weight: 1},
		},
		Clusters: []Cluster{
			{State: 0, IC: []constraint.Constraint{{Set: mk("1100"), Weight: 2}}, OC: []OCEdge{{1, 0}}, W: 2},
			{State: 2, IC: []constraint.Constraint{{Set: mk("0011"), Weight: 1}}, W: 1},
		},
	}
	res := IOVariant(p, 2, HybridOptions{})
	if !res.Enc.Distinct() {
		t.Fatal("codes not distinct")
	}
}

func TestIOHybridNoIC(t *testing.T) {
	p := IOProblem{
		N: 4,
		Clusters: []Cluster{
			{State: 0, OC: []OCEdge{{1, 0}, {2, 0}}, W: 2},
		},
	}
	res := IOHybrid(p, 2, HybridOptions{})
	if !res.Enc.Distinct() {
		t.Fatal("codes not distinct")
	}
	if res.SatisfiedOC != 2 {
		t.Fatalf("out_encoder satisfied %d/2 edges", res.SatisfiedOC)
	}
}

func TestRandomEncodingDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(20)
		e := RandomEncoding(n, MinLength(n), rng)
		if !e.Distinct() {
			t.Fatalf("n=%d: duplicate codes", n)
		}
	}
}

func TestMinLength(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 121: 7}
	for n, want := range cases {
		if got := MinLength(n); got != want {
			t.Fatalf("MinLength(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSpannedFace(t *testing.T) {
	e := encoding.Encoding{Bits: 4, Codes: []uint64{0b0000, 0b1010, 0b1000, 0b1100}}
	f := SpannedFace(e, constraint.MustFromString("0110"))
	// codes 1010 and 1000 differ in bit 1: face 10x0 in bit-0-first terms.
	if f.Level() != 1 || !f.HasVertex(0b1010) || !f.HasVertex(0b1000) || f.HasVertex(0b0000) {
		t.Fatalf("spanned face wrong: %s", f)
	}
}
