package encode

import (
	"nova/internal/constraint"
	"nova/internal/encoding"
)

// SatisfyAll returns an encoding satisfying every input constraint, in the
// manner of KISS [9]: it starts from the natural codes at the minimum
// length and repeatedly applies the dimension-raising projection step
// (Proposition 4.2.1), which satisfies at least one more constraint per
// added dimension. Like KISS it guarantees complete satisfaction by a
// heuristic that does not always achieve the minimum necessary length —
// no bounded-backtracking stage is run at the minimum length, so the
// resulting lengths are generally longer than ihybrid's.
func SatisfyAll(n int, ics []constraint.Constraint) Result {
	ics = constraint.Normalize(ics)
	bits := MinLength(n)
	enc := encoding.New(n, bits)
	for i := range enc.Codes {
		enc.Codes[i] = uint64(i)
	}
	var sic, ric []constraint.Constraint
	for _, ic := range ics {
		if Satisfied(enc, ic.Set) {
			sic = append(sic, ic)
		} else {
			ric = append(ric, ic)
		}
	}
	for len(ric) > 0 {
		bits++
		enc, sic, ric = projectCode(enc, sic, ric, bits)
	}
	var res Result
	res.Enc = enc
	score(&res, ics)
	return res
}
