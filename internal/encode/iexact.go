package encode

import (
	"context"

	"nova/internal/constraint"
	"nova/internal/obs"
)

// ExactOptions tunes iexact_code.
type ExactOptions struct {
	// Ctx, when non-nil, is polled at the backtracking work tick and
	// between primary-level-vector searches; cancellation aborts the run
	// with Result.Err set to the context error.
	Ctx context.Context
	// MaxK bounds the largest hypercube dimension tried; 0 means
	// mincube_dim + KWindow (the trivial upper bound #(S) of Section
	// 3.3.1 is unreachable within any practical budget anyway).
	MaxK int
	// KWindow is the number of dimensions above the mincube_dim lower
	// bound explored when MaxK is 0; 0 means 8.
	KWindow int
	// MaxWork bounds the number of face-assignment attempts; the budget
	// is split evenly across the explored dimensions so the search is not
	// starved at the (often infeasible) smallest dimensions. 0 means
	// 5,000,000. When every dimension fails within its share the returned
	// Result has GaveUp set (the paper's iexact likewise fails to
	// complete on the hardest examples).
	MaxWork int
	// Fanout, when active, fans the primary-level-vector searches of a
	// dimension out across pool workers with a shared best-index bound;
	// results stay byte-identical to the serial search (see Fanout).
	Fanout Fanout
	// NoPrune disables the search-tree pruning added on top of the
	// seed searcher: second-placement symmetry breaking and the
	// failed-embedding memo. For A/B comparison and the equivalence
	// suite.
	NoPrune bool
}

// IExact implements iexact_code (Section III): find an encoding of n
// symbols satisfying every input constraint while minimizing the encoding
// length. It answers the embedding decision problem for increasing cube
// dimensions starting at the mincube_dim lower bound; for each dimension
// it enumerates the primary level vectors in increasing slack order and
// runs the pos_equiv backtracking for each.
//
// A constructive full-satisfaction encoding (the projection coding of
// Proposition 4.2.1 iterated) provides an upper bound: when the exhaustive
// search cannot settle the dimensions below the bound within the work
// budget, the constructive encoding is returned with Proven=false — the
// counterpart of the paper's "**: not minimal" entries. GaveUp is reserved
// for instances with no encoding at all within the 64-bit code limit.
func IExact(n int, ics []constraint.Constraint, opt ExactOptions) (res Result) {
	sctx, sp := obs.Span(opt.Ctx, "search.iexact")
	opt.Ctx = sctx
	m := obs.MetricsFrom(opt.Ctx)
	defer func() {
		if sp != nil {
			sp.SetInt("work", int64(res.Work))
			sp.SetInt("bits", int64(res.Enc.Bits))
		}
		sp.End()
	}()
	// Preprocess without a code length: iexact explores many dimensions,
	// and its lo>hi level-window check already skips the dimensions a
	// constraint cannot fit, so no infeasible filter applies here.
	ics, _ = prepConstraints(opt.Ctx, 0, ics, true)
	if opt.MaxWork <= 0 {
		opt.MaxWork = 5_000_000
	}
	if opt.KWindow <= 0 {
		opt.KWindow = 8
	}
	upper := SatisfyAll(n, ics)
	g := constraint.BuildGraph(n, ics)
	mincube := g.MinCubeDim()
	if opt.MaxK <= 0 || opt.MaxK > 64 {
		// No cap at the state count: the subposet-equivalence conditions
		// often admit solutions only with slack dimensions (the paper's
		// iexact reports e.g. 8 bits for the 7-state dk14 and 11 for the
		// 24-state donfile).
		opt.MaxK = mincube + opt.KWindow
		if opt.MaxK > 64 {
			opt.MaxK = 64
		}
	}
	// Dimensions at or above the constructive bound need no search.
	if len(upper.Unsatisfied) == 0 && upper.Enc.Bits <= 64 && opt.MaxK >= upper.Enc.Bits {
		opt.MaxK = upper.Enc.Bits - 1
	}
	perK := opt.MaxWork
	if span := opt.MaxK - mincube + 1; span > 1 {
		perK = opt.MaxWork / span
	}
	if perK < 1 {
		perK = 1
	}
	totalWork := 0
	anyBudget := false
	for k := mincube; k <= opt.MaxK; k++ {
		kWork := 0
		// Primary constraints: category-1 non-singletons get a level from
		// the primary level vector; levels range over
		// [ceil(log2 #(ic)), k-1].
		var primaries []*constraint.Node
		for _, nd := range g.Primaries() {
			if nd.Set.Card() > 1 {
				primaries = append(primaries, nd)
			}
		}
		lo := make([]int, len(primaries))
		hi := make([]int, len(primaries))
		feasible := true
		for i, nd := range primaries {
			lo[i] = minLevel(nd)
			hi[i] = k - 1
			if lo[i] > hi[i] {
				feasible = false
			}
		}
		if !feasible {
			continue
		}
		// Enumerate the primary level vectors by increasing total slack
		// over the minimum levels: low-slack vectors are both the most
		// likely to embed tightly and the ones the area metric prefers.
		// The vector list is capped; each vector receives an equal work
		// slice with two geometrically growing retry rounds.
		const maxVectors = 4096
		vectors, truncated := slackVectors(lo, hi, maxVectors)
		slice := perK / (2 * len(vectors))
		if slice < 2000 {
			slice = 2000
		}
		kBudget := truncated
		for round := 0; round < 2 && kWork < perK; round++ {
			var work int
			var roundBudget bool
			var winner *searcher
			var err error
			if opt.Fanout.active() && len(vectors) > 1 {
				work, roundBudget, winner, err = iexactRoundSpec(opt, m, g, k, primaries, vectors, slice, perK, kWork)
			} else {
				work, roundBudget, winner, err = iexactRoundSerial(opt, m, g, k, primaries, vectors, slice, perK, kWork)
			}
			kWork += work
			totalWork += work
			if err != nil {
				res.Err = err
				res.Work = totalWork
				return res
			}
			if winner != nil {
				res.Enc = winner.extract()
				res.Work = totalWork
				// Minimal iff every smaller dimension was exhausted.
				res.Proven = !anyBudget
				score(&res, ics)
				return res
			}
			if roundBudget {
				kBudget = true
			} else if !truncated {
				// Every vector exhausted within its slice: dimension k is
				// proven infeasible.
				kBudget = false
				break
			}
			slice *= 8
		}
		if kBudget {
			anyBudget = true
		}
	}
	if err := ctxErr(opt.Ctx); err != nil {
		res.Err = err
		res.Work = totalWork
		return res
	}
	// Exhaustive search below the bound failed (or ran out of budget):
	// fall back to the constructive encoding.
	if len(upper.Unsatisfied) == 0 && upper.Enc.Bits <= 64 {
		res = upper
		res.Work = totalWork
		res.Proven = !anyBudget // minimal iff all smaller dims exhausted
		return res
	}
	res.Work = totalWork
	res.GaveUp = true
	return res
}

// slackVectors lists level vectors within [lo, hi] ordered by increasing
// total slack Σ(v[i]-lo[i]); within a slack tier, balanced vectors (small
// maximum per-position slack) come first — uniform extra level is the
// common shape of feasible embeddings. The list is capped at max vectors;
// truncated reports whether the space was cut off.
func slackVectors(lo, hi []int, max int) (out [][]int, truncated bool) {
	n := len(lo)
	if n == 0 {
		return [][]int{{}}, false
	}
	maxSlack := 0
	for i := range lo {
		maxSlack += hi[i] - lo[i]
	}
	v := make([]int, n)
	for s := 0; s <= maxSlack && !truncated; s++ {
		// cap = the maximum slack any single position may take; growing it
		// from the balanced minimum emits balanced vectors first.
		minCap := (s + n - 1) / n
		for cap := minCap; cap <= s && !truncated; cap++ {
			var rec func(i, slack int, hitCap bool) bool
			rec = func(i, slack int, hitCap bool) bool {
				if len(out) >= max {
					return false
				}
				if i == n {
					if slack == 0 && (hitCap || cap == 0) {
						out = append(out, append([]int(nil), v...))
					}
					return true
				}
				for d := 0; d <= slack && d <= cap && lo[i]+d <= hi[i]; d++ {
					v[i] = lo[i] + d
					if !rec(i+1, slack-d, hitCap || d == cap) {
						return false
					}
				}
				return true
			}
			if !rec(0, s, false) {
				truncated = true
			}
			if cap == 0 {
				break // slack 0 has a single vector
			}
		}
	}
	return out, truncated
}

// nextLex advances v to the next vector in lexicographic order within the
// per-position bounds [lo[i], hi[i]]; it returns false after the last one.
func nextLex(v, lo, hi []int) bool {
	for i := len(v) - 1; i >= 0; i-- {
		if v[i] < hi[i] {
			v[i]++
			for j := i + 1; j < len(v); j++ {
				v[j] = lo[j]
			}
			return true
		}
	}
	return false
}
