package encode

import (
	"fmt"
	"testing"

	"nova/internal/constraint"
)

func paperConstraints() []constraint.Constraint {
	var ics []constraint.Constraint
	for _, v := range []string{"1110000", "0111000", "0000111", "1000110", "0000011", "0011000"} {
		ics = append(ics, constraint.Constraint{Set: constraint.MustFromString(v), Weight: 1})
	}
	return ics
}

// TestVerdictUsable pins the budget-transfer rules: an exhaustive
// verdict answers any probe whose budget would not have fired first,
// while a budget-truncated verdict only answers a probe with the exact
// same cap (a larger budget might have gone on to succeed).
func TestVerdictUsable(t *testing.T) {
	cases := []struct {
		name    string
		v       searchVerdict
		maxWork int
		want    bool
	}{
		{"exhaustive unbounded probe", searchVerdict{work: 50}, 0, true},
		{"exhaustive within budget", searchVerdict{work: 50}, 50, true},
		{"exhaustive over budget", searchVerdict{work: 50}, 49, false},
		{"budget same cap", searchVerdict{budget: true, cap: 100, work: 100}, 100, true},
		{"budget larger cap", searchVerdict{budget: true, cap: 100, work: 100}, 200, false},
		{"budget smaller cap", searchVerdict{budget: true, cap: 100, work: 100}, 50, false},
		{"budget unbounded probe", searchVerdict{budget: true, cap: 100, work: 100}, 0, false},
	}
	for _, c := range cases {
		if got := c.v.usable(c.maxWork); got != c.want {
			t.Errorf("%s: usable(%d) = %v, want %v", c.name, c.maxWork, got, c.want)
		}
	}
}

// TestSearchMemoLRU exercises the sharded LRU: the cap is enforced
// across inserts (with slot reuse through the free list), a re-put of a
// live key refreshes rather than duplicates, and SetSearchMemoCap(0)
// restores the default.
func TestSearchMemoLRU(t *testing.T) {
	searchMemoReset()
	SetSearchMemoCap(searchMemoShards) // one entry per shard
	defer func() {
		SetSearchMemoCap(0)
		searchMemoReset()
	}()

	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		searchMemo.put(key, searchVerdict{work: i})
		// The entry just inserted is at its shard's front and must be
		// present.
		if v, ok := searchMemo.get(key); !ok || v.work != i {
			t.Fatalf("just-inserted key %q missing (ok=%v work=%d)", key, ok, v.work)
		}
	}
	if n := searchMemo.len(); n > searchMemoShards {
		t.Fatalf("memo holds %d entries, cap is %d", n, searchMemoShards)
	}

	// Re-putting a live key must not duplicate it or alter the count.
	before := searchMemo.len()
	searchMemo.put("k199", searchVerdict{work: 1})
	if n := searchMemo.len(); n != before {
		t.Fatalf("re-put changed entry count %d -> %d", before, n)
	}
	// The original verdict wins: put of an existing key refreshes
	// recency only.
	if v, ok := searchMemo.get("k199"); ok && v.work != 199 {
		t.Fatalf("re-put overwrote verdict: work=%d, want 199", v.work)
	}

	SetSearchMemoCap(0)
	for i := 0; i < 100; i++ {
		searchMemo.put(fmt.Sprintf("d%d", i), searchVerdict{})
	}
	if n := searchMemo.len(); n <= searchMemoShards {
		t.Fatalf("default cap not restored: %d entries after 100 inserts", n)
	}
}

// TestSemiexactRunMemoReplay runs the same embedding problem twice and
// checks the replay is observationally identical to the live run: same
// verdict, same encoding, and every searcher tally restored.
func TestSemiexactRunMemoReplay(t *testing.T) {
	searchMemoReset()
	defer searchMemoReset()
	ics := paperConstraints()

	live := semiexactRun(nil, 7, ics, 4, 0, nil, false, "search.semiexact")
	if live.s.memoHit {
		t.Fatal("first run hit a memo that was just reset")
	}
	if !live.ok {
		t.Fatal("paper instance at k=4 should embed")
	}

	replay := semiexactRun(nil, 7, ics, 4, 0, nil, false, "search.semiexact")
	if !replay.s.memoHit {
		t.Fatal("second identical run missed the memo")
	}
	if replay.ok != live.ok || replay.work != live.work {
		t.Fatalf("replay verdict (ok=%v work=%d) != live (ok=%v work=%d)",
			replay.ok, replay.work, live.ok, live.work)
	}
	ls, rs := live.s, replay.s
	if rs.work != ls.work || rs.backtracks != ls.backtracks ||
		rs.checksOK != ls.checksOK || rs.checksFail != ls.checksFail ||
		rs.symPruned != ls.symPruned || rs.budget != ls.budget || rs.solved != ls.solved {
		t.Fatalf("replay tallies diverge: live=%+v replay=%+v", ls, rs)
	}
	le, re := live.enc, replay.enc
	if le.Bits != re.Bits || len(le.Codes) != len(re.Codes) {
		t.Fatalf("replay encoding shape differs: %v vs %v", le, re)
	}
	for i := range le.Codes {
		if le.Codes[i] != re.Codes[i] {
			t.Fatalf("replay code %d differs: %x vs %x", i, le.Codes[i], re.Codes[i])
		}
	}
	// The replayed encoding is a copy — mutating it must not poison the
	// cached entry.
	re.Codes[0] ^= 1
	again := semiexactRun(nil, 7, ics, 4, 0, nil, false, "search.semiexact")
	if again.enc.Codes[0] != le.Codes[0] {
		t.Fatal("mutating a replayed encoding corrupted the memo entry")
	}
}

// TestMemoBudgetRegimes checks the cap-compatibility rules end to end: a
// budget-truncated entry replays only at the exact same cap, and a
// noPrune run neither probes nor records.
func TestMemoBudgetRegimes(t *testing.T) {
	searchMemoReset()
	defer searchMemoReset()
	ics := paperConstraints()

	// maxWork=3 cannot solve the paper instance: a budget verdict.
	first := semiexactRun(nil, 7, ics, 4, 3, nil, false, "search.semiexact")
	if first.ok || !first.s.budget {
		t.Fatalf("expected a budget failure, got ok=%v budget=%v", first.ok, first.s.budget)
	}

	// Same cap: replayed.
	same := semiexactRun(nil, 7, ics, 4, 3, nil, false, "search.semiexact")
	if !same.s.memoHit {
		t.Fatal("same-cap probe missed the budget verdict")
	}
	// Larger cap: must run live (and succeed, overwriting nothing — put
	// keeps the first entry, but the probe rejects it via usable).
	larger := semiexactRun(nil, 7, ics, 4, 0, nil, false, "search.semiexact")
	if larger.s.memoHit {
		t.Fatal("unbounded probe replayed a budget-truncated verdict")
	}
	if !larger.ok {
		t.Fatal("unbounded run should embed the paper instance")
	}

	// noPrune runs bypass the memo entirely.
	searchMemoReset()
	np := semiexactRun(nil, 7, ics, 4, 0, nil, true, "search.semiexact")
	if np.s.memoHit {
		t.Fatal("noPrune run consulted the memo")
	}
	if n := searchMemo.len(); n != 0 {
		t.Fatalf("noPrune run recorded %d memo entries", n)
	}
}

// TestChainKeyDiscriminates makes sure the key covers every input that
// changes the searcher's behavior.
func TestChainKeyDiscriminates(t *testing.T) {
	ics := paperConstraints()
	base := chainKey(7, 4, ics, nil)
	if k := chainKey(7, 3, ics, nil); k == base {
		t.Fatal("cube dimension not keyed")
	}
	if k := chainKey(8, 4, ics, nil); k == base {
		t.Fatal("symbol count not keyed")
	}
	if k := chainKey(7, 4, ics[:5], nil); k == base {
		t.Fatal("constraint list not keyed")
	}
	if k := chainKey(7, 4, ics, []OCEdge{{U: 1, V: 2}}); k == base {
		t.Fatal("output covering edges not keyed")
	}
	rev := []OCEdge{{U: 2, V: 1}}
	if chainKey(7, 4, ics, rev) == chainKey(7, 4, ics, []OCEdge{{U: 1, V: 2}}) {
		t.Fatal("edge direction not keyed")
	}
}
