package encode

import (
	"testing"

	"nova/internal/constraint"
)

func TestSlackVectorsOrderAndCompleteness(t *testing.T) {
	lo := []int{1, 1}
	hi := []int{3, 3}
	vecs, truncated := slackVectors(lo, hi, 1000)
	if truncated {
		t.Fatal("tiny space must not truncate")
	}
	if len(vecs) != 9 {
		t.Fatalf("got %d vectors, want 9", len(vecs))
	}
	slack := func(v []int) int { return v[0] - 1 + v[1] - 1 }
	for i := 1; i < len(vecs); i++ {
		if slack(vecs[i-1]) > slack(vecs[i]) {
			t.Fatalf("slack not nondecreasing: %v", vecs)
		}
	}
	if vecs[0][0] != 1 || vecs[0][1] != 1 {
		t.Fatalf("first vector %v, want minimum levels", vecs[0])
	}
	// Balanced-first within a tier: slack 2 must start with (2,2).
	for i, v := range vecs {
		if slack(v) == 2 {
			if v[0] != 2 || v[1] != 2 {
				t.Fatalf("slack-2 tier starts with %v at %d, want (2,2)", v, i)
			}
			break
		}
	}
	// No duplicates.
	seen := map[[2]int]bool{}
	for _, v := range vecs {
		k := [2]int{v[0], v[1]}
		if seen[k] {
			t.Fatalf("duplicate vector %v", v)
		}
		seen[k] = true
	}
}

func TestSlackVectorsTruncation(t *testing.T) {
	lo := []int{0, 0, 0, 0, 0}
	hi := []int{4, 4, 4, 4, 4}
	vecs, truncated := slackVectors(lo, hi, 10)
	if !truncated {
		t.Fatal("expected truncation")
	}
	if len(vecs) != 10 {
		t.Fatalf("got %d vectors, want 10", len(vecs))
	}
}

func TestSlackVectorsEmpty(t *testing.T) {
	vecs, truncated := slackVectors(nil, nil, 10)
	if truncated || len(vecs) != 1 || len(vecs[0]) != 0 {
		t.Fatalf("empty instance: %v %v", vecs, truncated)
	}
}

func TestIExactProvenOnEasyInstance(t *testing.T) {
	// The paper instance completes exhaustively: minimality is proven.
	res := IExact(7, paperIC(), ExactOptions{})
	if res.GaveUp || !res.Proven {
		t.Fatalf("gaveUp=%v proven=%v", res.GaveUp, res.Proven)
	}
	if res.Enc.Bits != 4 {
		t.Fatalf("bits = %d", res.Enc.Bits)
	}
}

func TestIExactConstructiveFallback(t *testing.T) {
	// A dense instance under a starvation budget: the constructive upper
	// bound must be returned, satisfying everything, unproven.
	var ics []constraint.Constraint
	for _, v := range []string{"1101", "1011", "0111", "1100", "1010", "0110", "0101", "0011"} {
		ics = append(ics, constraint.Constraint{Set: constraint.MustFromString(v), Weight: 1})
	}
	res := IExact(4, ics, ExactOptions{MaxWork: 50})
	if res.GaveUp {
		t.Fatal("constructive fallback missing")
	}
	if len(res.Unsatisfied) != 0 {
		t.Fatalf("fallback left %v unsatisfied", res.Unsatisfied)
	}
	if res.Proven {
		t.Fatal("a starved search cannot prove minimality")
	}
	// With a real budget the same instance completes at 4 bits.
	full := IExact(4, ics, ExactOptions{MaxWork: 2_000_000})
	if full.GaveUp || full.Enc.Bits > res.Enc.Bits {
		t.Fatalf("full search worse than fallback: %d > %d", full.Enc.Bits, res.Enc.Bits)
	}
	checkAllSatisfied(t, full.Enc, ics)
}

func TestIExactSemanticConditions(t *testing.T) {
	// The triangle instance of three mutually overlapping pairs: a
	// semantic solution exists at 3 bits (codes 000, 011, 101 span
	// pairwise faces excluding the third).
	ics := []constraint.Constraint{
		{Set: constraint.MustFromString("110"), Weight: 1},
		{Set: constraint.MustFromString("011"), Weight: 1},
		{Set: constraint.MustFromString("101"), Weight: 1},
	}
	res := IExact(3, ics, ExactOptions{})
	if res.GaveUp {
		t.Fatal("gave up")
	}
	checkAllSatisfied(t, res.Enc, ics)
	if res.Enc.Bits != 3 {
		t.Fatalf("bits = %d, want 3", res.Enc.Bits)
	}
}
