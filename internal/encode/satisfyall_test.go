package encode

import (
	"testing"

	"nova/internal/constraint"
)

// TestSatisfyAllNoConstraints returns natural codes at the minimum
// length when there is nothing to satisfy.
func TestSatisfyAllNoConstraints(t *testing.T) {
	res := SatisfyAll(5, nil)
	if res.Enc.Bits != MinLength(5) {
		t.Fatalf("bits = %d, want %d", res.Enc.Bits, MinLength(5))
	}
	for i, c := range res.Enc.Codes {
		if c != uint64(i) {
			t.Fatalf("code[%d] = %d, want natural %d", i, c, i)
		}
	}
	if res.WUnsat != 0 {
		t.Fatalf("WUnsat = %d with no constraints", res.WUnsat)
	}
}

// TestSatisfyAllCompleteSatisfaction is the KISS guarantee: every input
// constraint is satisfied, whatever length that takes.
func TestSatisfyAllCompleteSatisfaction(t *testing.T) {
	ics := paperIC(3, 1, 2, 1, 1, 1)
	res := SatisfyAll(7, ics)
	checkAllSatisfied(t, res.Enc, ics)
	if res.WUnsat != 0 || len(res.Unsatisfied) != 0 {
		t.Fatalf("SatisfyAll left WUnsat=%d Unsatisfied=%v", res.WUnsat, res.Unsatisfied)
	}
	if res.Enc.Bits < MinLength(7) {
		t.Fatalf("bits = %d below the minimum length %d", res.Enc.Bits, MinLength(7))
	}
}

// TestSatisfyAllAlreadySatisfied keeps the minimum length when the
// natural codes already embed every constraint: {0,1} is the face 00-
// under 2-bit natural codes.
func TestSatisfyAllAlreadySatisfied(t *testing.T) {
	ics := []constraint.Constraint{{Set: constraint.MustFromString("1100"), Weight: 1}}
	res := SatisfyAll(4, ics)
	if res.Enc.Bits != 2 {
		t.Fatalf("bits = %d, want 2 (natural codes already satisfy {0,1})", res.Enc.Bits)
	}
	checkAllSatisfied(t, res.Enc, ics)
}

// TestSatisfyAllRaisesDimension forces the projection loop: constraints
// that natural codes cannot embed at the minimum length must add
// dimensions, one satisfied constraint (at least) per added bit.
func TestSatisfyAllRaisesDimension(t *testing.T) {
	// {0,3} and {1,2} are not faces of the 2-bit natural assignment, and
	// not simultaneously embeddable with {0,1} without extra dimensions.
	ics := []constraint.Constraint{
		{Set: constraint.MustFromString("1001"), Weight: 2},
		{Set: constraint.MustFromString("0110"), Weight: 1},
		{Set: constraint.MustFromString("1100"), Weight: 1},
	}
	res := SatisfyAll(4, ics)
	checkAllSatisfied(t, res.Enc, ics)
	if res.Enc.Bits <= 2 {
		t.Fatalf("bits = %d, expected the projection loop to raise the length", res.Enc.Bits)
	}
	// The per-dimension guarantee of Proposition 4.2.1 bounds the growth:
	// at most one added bit per initially unsatisfied constraint.
	if res.Enc.Bits > 2+len(ics) {
		t.Fatalf("bits = %d, more than one added dimension per constraint", res.Enc.Bits)
	}
}

// TestSatisfyAllNormalizes checks duplicate constraints merge (Normalize)
// rather than each forcing its own projection step.
func TestSatisfyAllNormalizes(t *testing.T) {
	ics := []constraint.Constraint{
		{Set: constraint.MustFromString("1001"), Weight: 1},
		{Set: constraint.MustFromString("1001"), Weight: 1},
	}
	res := SatisfyAll(4, ics)
	checkAllSatisfied(t, res.Enc, ics)
	if res.Enc.Bits > 3 {
		t.Fatalf("bits = %d, duplicate constraint forced extra dimensions", res.Enc.Bits)
	}
	if res.WSat != 2 {
		t.Fatalf("WSat = %d, want merged weight 2", res.WSat)
	}
}
