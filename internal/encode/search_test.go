package encode

import (
	"testing"

	"nova/internal/constraint"
	"nova/internal/face"
)

func paperGraph() *constraint.Graph {
	var ics []constraint.Constraint
	for _, v := range []string{"1110000", "0111000", "0000111", "1000110", "0000011", "0011000"} {
		ics = append(ics, constraint.Constraint{Set: constraint.MustFromString(v), Weight: 1})
	}
	return constraint.BuildGraph(7, ics)
}

// TestPosEquivPaperInstance mirrors Example 3.4.2.1: pos_equiv(IG, 4, (2,
// 2,2,2)) finds a complete assignment.
func TestPosEquivPaperInstance(t *testing.T) {
	g := paperGraph()
	s := newSearcher(g, 4)
	s.allLevels = true
	s.levels = map[*constraint.Node]int{}
	for _, nd := range g.Primaries() {
		if nd.Set.Card() > 1 {
			s.levels[nd] = 2
		}
	}
	if !s.solve(nil) {
		t.Fatal("pos_equiv failed on the paper instance at k=4, levels (2,2,2,2)")
	}
	if s.assignedCount() != len(g.Nodes) {
		t.Fatalf("assigned %d of %d nodes", s.assignedCount(), len(g.Nodes))
	}
	enc := s.extract()
	if !enc.Distinct() {
		t.Fatalf("codes not distinct: %s", enc)
	}
	// Every original constraint must be satisfied by the extracted codes.
	for _, nd := range g.Nodes {
		if nd.Original && !Satisfied(enc, nd.Set) {
			t.Fatalf("constraint %s unsatisfied", nd.Set)
		}
	}
	// Faces must respect the level vector for primaries.
	for nd, l := range s.levels {
		f, as := s.faceOf(nd)
		if !as {
			t.Fatalf("primary %s unassigned", nd.Set)
		}
		if got := f.Level(); got != l {
			t.Fatalf("primary %s at level %d, want %d", nd.Set, got, l)
		}
	}
}

// TestVerifyRejections exercises the individual rejection conditions.
func TestVerifyRejections(t *testing.T) {
	g := paperGraph()
	s := newSearcher(g, 4)
	s.allLevels = true

	big := g.Lookup(constraint.MustFromString("1110000")) // 3 states

	// Cardinality: a level-1 face (2 vertices) cannot host 3 states.
	if s.verify(big, face.FromString("x000")) {
		t.Fatal("cardinality condition not enforced")
	}
	// Injectivity: the universe face is taken.
	if s.verify(big, face.Full(4)) {
		t.Fatal("injectivity not enforced")
	}
	// Place the first constraint, then check the semantic conditions
	// against a singleton: a state outside the constraint must not take a
	// vertex inside its face, and a member state must take one inside.
	if _, ok := s.place(big, face.FromString("x0x0")); !ok {
		t.Fatal("placing the first primary failed")
	}
	outsider := g.Lookup(constraint.MustFromString("0000100")) // state 5 ∉ {1,2,3}
	if s.verify(outsider, face.FromString("0000")) {
		t.Fatal("non-member vertex inside a constraint face not rejected")
	}
	member := g.Lookup(constraint.MustFromString("0100000")) // state 2 ∈ {1,2,3}
	if s.verify(member, face.FromString("0001")) {
		t.Fatal("member vertex outside the constraint face not rejected")
	}
	if !s.verify(member, face.FromString("0000")) {
		t.Fatal("member vertex inside the face should be accepted")
	}
	// Two non-singleton faces with disjoint sets may overlap under the
	// semantic conditions (violations surface when codes are placed).
	disjoint := g.Lookup(constraint.MustFromString("0000111"))
	if !s.verify(disjoint, face.FromString("x0xx")) {
		t.Fatal("auxiliary face overlap should be admitted")
	}
}

// TestPlaceForcesCat2 checks the fixpoint propagation of category-2
// intersections (0110000 = 0111000 ∩ 1110000 in the paper example).
func TestPlaceForcesCat2(t *testing.T) {
	g := paperGraph()
	s := newSearcher(g, 4)
	s.allLevels = true
	a := g.Lookup(constraint.MustFromString("0111000"))
	b := g.Lookup(constraint.MustFromString("1110000"))
	if _, ok := s.place(a, face.FromString("x0x0")); !ok {
		t.Fatal("place a failed")
	}
	if _, ok := s.place(b, face.FromString("x00x")); !ok {
		t.Fatal("place b failed")
	}
	mid := g.Lookup(constraint.MustFromString("0110000"))
	f, as := s.faceOf(mid)
	if !as {
		t.Fatal("category-2 node not forced")
	}
	if f.String() != "x000" {
		t.Fatalf("forced face = %s, want x000", f)
	}
}

// TestUndoRestoresState verifies that backtracking cleans up forced
// assignments too.
func TestUndoRestoresState(t *testing.T) {
	g := paperGraph()
	s := newSearcher(g, 4)
	s.allLevels = true
	a := g.Lookup(constraint.MustFromString("0111000"))
	b := g.Lookup(constraint.MustFromString("1110000"))
	if _, ok := s.place(a, face.FromString("x0x0")); !ok {
		t.Fatal("place a failed")
	}
	before := s.assignedCount()
	tr, ok := s.place(b, face.FromString("x00x"))
	if !ok {
		t.Fatal("place b failed")
	}
	if s.assignedCount() <= before+1 {
		t.Fatal("expected forced assignments beyond b itself")
	}
	s.undo(tr)
	if s.assignedCount() != before {
		t.Fatalf("undo left %d assigned, want %d", s.assignedCount(), before)
	}
	if _, as := s.faceOf(b); as {
		t.Fatal("b still assigned after undo")
	}
}

// TestFeasibleLevels checks the level policy: singletons at level 0,
// primaries at the vector's level (or minimum), cat-3 below the father.
func TestFeasibleLevels(t *testing.T) {
	g := paperGraph()
	s := newSearcher(g, 4)
	s.allLevels = true
	prim := g.Lookup(constraint.MustFromString("1110000"))
	if ls := s.feasibleLevels(prim, nil); len(ls) != 1 || ls[0] != 2 {
		t.Fatalf("primary min levels = %v, want [2]", ls)
	}
	s.levels = map[*constraint.Node]int{prim: 3}
	if ls := s.feasibleLevels(prim, nil); len(ls) != 1 || ls[0] != 3 {
		t.Fatalf("primary vector levels = %v, want [3]", ls)
	}
	// cat-3 node 0011000 under father 0111000 placed at level 2: levels
	// 1 (all levels mode) only, since min level of a 2-set is 1.
	fa := g.Lookup(constraint.MustFromString("0111000"))
	if _, ok := s.place(fa, face.FromString("x0x0")); !ok {
		t.Fatal("place failed")
	}
	c3 := g.Lookup(constraint.MustFromString("0011000"))
	if c3.Cat() != constraint.Cat3 {
		t.Fatalf("0011000 category = %d", c3.Cat())
	}
	if ls := s.feasibleLevels(c3, nil); len(ls) != 1 || ls[0] != 1 {
		t.Fatalf("cat3 levels = %v, want [1]", ls)
	}
}

// TestCandidatesWithinFather ensures cat-3 candidate faces stay inside the
// father's face.
func TestCandidatesWithinFather(t *testing.T) {
	g := paperGraph()
	s := newSearcher(g, 4)
	s.allLevels = true
	fa := g.Lookup(constraint.MustFromString("0111000"))
	ff := face.FromString("x0x0")
	if _, ok := s.place(fa, ff); !ok {
		t.Fatal("place failed")
	}
	c3 := g.Lookup(constraint.MustFromString("0011000"))
	n := 0
	s.candidates(c3, func(f face.Face) bool {
		if !ff.Contains(f) {
			t.Fatalf("candidate %s escapes father %s", f, ff)
		}
		n++
		return true
	})
	if n == 0 {
		t.Fatal("no candidates generated")
	}
}

// TestBudgetAborts checks that the work bound fires and is reported.
func TestBudgetAborts(t *testing.T) {
	g := paperGraph()
	s := newSearcher(g, 4)
	s.allLevels = true
	s.maxWork = 3
	if s.solve(nil) {
		t.Fatal("3 work units cannot solve the paper instance")
	}
	if !s.budget {
		t.Fatal("budget flag not set")
	}
}

// TestMinLevelHelper checks the ceil(log2) helper on node cardinalities.
func TestMinLevelHelper(t *testing.T) {
	g := paperGraph()
	cases := map[string]int{
		"1110000": 2, // card 3
		"0011000": 1, // card 2
		"0000010": 0, // card 1
	}
	for v, want := range cases {
		nd := g.Lookup(constraint.MustFromString(v))
		if got := minLevel(nd); got != want {
			t.Fatalf("minLevel(%s) = %d, want %d", v, got, want)
		}
	}
}

// TestNextLex checks the primary level vector enumeration order of
// Example 3.3.1.2.
func TestNextLex(t *testing.T) {
	lo := []int{2, 2, 2, 2}
	hi := []int{3, 3, 3, 3}
	v := append([]int(nil), lo...)
	var seq [][4]int
	seq = append(seq, [4]int{v[0], v[1], v[2], v[3]})
	for nextLex(v, lo, hi) {
		seq = append(seq, [4]int{v[0], v[1], v[2], v[3]})
	}
	if len(seq) != 16 {
		t.Fatalf("%d vectors, want 16", len(seq))
	}
	if seq[1] != [4]int{2, 2, 2, 3} || seq[2] != [4]int{2, 2, 3, 2} {
		t.Fatalf("lexicographic order wrong: %v", seq[:4])
	}
	if seq[15] != [4]int{3, 3, 3, 3} {
		t.Fatalf("last vector %v", seq[15])
	}
}
