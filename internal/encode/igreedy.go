package encode

import (
	"sort"

	"nova/internal/constraint"
	"nova/internal/encoding"
	"nova/internal/face"
)

// IGreedy implements igreedy_code (Section V): a fast one-pass heuristic
// for a given code length. It computes all intersections of the input
// constraints and encodes going upwards from the deepest of them, giving
// priority to common subconstraints; earlier choices are never undone, so
// some encoding space may remain unused. bits <= 0 selects the minimum
// code length.
func IGreedy(n int, ics []constraint.Constraint, bits int) Result {
	// Preprocessing without a code length: merge/drop only. The
	// infeasible filter would be unsound here — tryNode may legitimately
	// claim the full cube for a constraint covering every placed state.
	ics = constraint.Preprocess(0, ics).ICs
	if bits <= 0 {
		bits = MinLength(n)
	}
	k := bits
	g := constraint.BuildGraph(n, ics)

	var res Result
	// Deepest first: increasing cardinality; heavier and lexicographically
	// smaller constraints first within a level.
	nodes := make([]*constraint.Node, 0, len(g.Nodes))
	for _, nd := range g.Nodes {
		if nd != g.Universe && nd.Set.Card() >= 2 {
			nodes = append(nodes, nd)
		}
	}
	sort.SliceStable(nodes, func(i, j int) bool {
		ci, cj := nodes[i].Set.Card(), nodes[j].Set.Card()
		if ci != cj {
			return ci < cj
		}
		if nodes[i].Weight != nodes[j].Weight {
			return nodes[i].Weight > nodes[j].Weight
		}
		return nodes[i].Set.String() < nodes[j].Set.String()
	})

	st := &greedyState{n: n, k: k, codes: make([]int64, n)}
	for i := range st.codes {
		st.codes[i] = -1
	}
	for _, nd := range nodes {
		st.tryNode(nd)
		res.Work += st.work
		st.work = 0
	}
	st.placeRemaining()

	res.Enc = encoding.New(n, k)
	for i, c := range st.codes {
		res.Enc.Codes[i] = uint64(c)
	}
	score(&res, ics)
	return res
}

// greedyState tracks the partial greedy encoding: per-state codes (-1 when
// unplaced), the claimed faces of the satisfied constraints, and the used
// vertices.
type greedyState struct {
	n, k  int
	codes []int64
	sat   []claim
	used  map[uint64]bool
	work  int
}

type claim struct {
	set constraint.Set
	f   face.Face
}

func (st *greedyState) isUsed(v uint64) bool { return st.used != nil && st.used[v] }

func (st *greedyState) use(v uint64) {
	if st.used == nil {
		st.used = map[uint64]bool{}
	}
	st.used[v] = true
}

// tryNode attempts to claim a face for the node's constraint and place its
// unplaced member states inside it; on any failure the node is skipped and
// all partial placements are rolled back.
func (st *greedyState) tryNode(nd *constraint.Node) {
	members := nd.Set.Members()
	// Supercube of already-placed members.
	var and, or uint64
	placedAny := false
	unplaced := make([]int, 0, len(members))
	for _, m := range members {
		if st.codes[m] < 0 {
			unplaced = append(unplaced, m)
			continue
		}
		c := uint64(st.codes[m])
		if !placedAny {
			and, or, placedAny = c, c, true
		} else {
			and &= c
			or |= c
		}
	}
	ml := minLevel(nd)
	for l := ml; l <= st.k; l++ {
		gen := face.NewGen(st.k, l)
		for f, ok := gen.Next(); ok; f, ok = gen.Next() {
			st.work++
			if placedAny {
				sc := face.Face{Val: and &^ (and ^ or), X: and ^ or, K: st.k}
				if !f.Contains(sc) {
					continue
				}
			}
			if st.faceOK(nd.Set, f) && st.placeMembers(nd, f, unplaced) {
				st.sat = append(st.sat, claim{set: nd.Set.Copy(), f: f})
				return
			}
		}
	}
}

// faceOK checks a candidate face for constraint set s against the placed
// codes and the claimed faces.
func (st *greedyState) faceOK(s constraint.Set, f face.Face) bool {
	// Placed non-members must be outside; placed members inside (the
	// supercube check covers members, but keep it for safety with -1s).
	for i := 0; i < st.n; i++ {
		if st.codes[i] < 0 {
			continue
		}
		in := f.HasVertex(uint64(st.codes[i]))
		if s.Has(i) && !in {
			return false
		}
		if !s.Has(i) && in {
			return false
		}
	}
	for _, cl := range st.sat {
		switch {
		case !s.Intersects(cl.set):
			if f.Intersects(cl.f) {
				return false
			}
		case s.SubsetOf(cl.set):
			if !cl.f.Contains(f) {
				return false
			}
		case cl.set.SubsetOf(s):
			if !f.Contains(cl.f) {
				return false
			}
		default:
			h, ok := f.Intersect(cl.f)
			if !ok || h.Cardinality() < s.IntersectCard(cl.set) {
				return false
			}
		}
	}
	return true
}

// placeMembers places the unplaced member states on free vertices of f
// consistent with every claimed face; it returns false (rolling back) when
// some member cannot be placed.
func (st *greedyState) placeMembers(nd *constraint.Node, f face.Face, unplaced []int) bool {
	var placed []int
	ok := true
	for _, m := range unplaced {
		v, found := st.findVertex(m, f)
		if !found {
			ok = false
			break
		}
		st.codes[m] = int64(v)
		st.use(v)
		placed = append(placed, m)
	}
	if !ok {
		for _, m := range placed {
			delete(st.used, uint64(st.codes[m]))
			st.codes[m] = -1
		}
		return false
	}
	return true
}

// findVertex returns a free vertex of f admissible for state m: inside
// every claimed face whose set contains m, outside every claimed face
// whose set does not.
func (st *greedyState) findVertex(m int, f face.Face) (uint64, bool) {
	var out uint64
	found := false
	f.Vertices(func(v uint64) {
		if found || st.isUsed(v) {
			return
		}
		for _, cl := range st.sat {
			if cl.set.Has(m) != cl.f.HasVertex(v) {
				return
			}
		}
		out, found = v, true
	})
	return out, found
}

// placeRemaining assigns codes to states left unplaced: first vertices
// admissible w.r.t. the claimed faces, then any free vertex.
func (st *greedyState) placeRemaining() {
	full := face.Full(st.k)
	for m := 0; m < st.n; m++ {
		if st.codes[m] >= 0 {
			continue
		}
		if v, ok := st.findVertex(m, full); ok {
			st.codes[m] = int64(v)
			st.use(v)
			continue
		}
		for v := uint64(0); v < 1<<uint(st.k); v++ {
			if !st.isUsed(v) {
				st.codes[m] = int64(v)
				st.use(v)
				break
			}
		}
	}
}
