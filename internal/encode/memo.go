package encode

import (
	"hash/maphash"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"nova/internal/constraint"
	"nova/internal/encoding"
)

// The search memo caches embedding-run verdicts keyed by the exact
// problem content: symbol count, cube dimension, the constraint sets
// handed to the searcher (in order) and, for iexact vector runs, the
// canonical graph key plus the dimension vector. Keys are
// content-exact, so a hit can never be wrong about the verdict — but a
// bounded search's verdict also depends on the work budget, so each
// entry records the budget regime it was produced under and is replayed
// only into a compatible probe (see searchVerdict.usable).
//
// Replays restore every searcher tally (work, backtracks, face checks),
// so a memo hit is observationally identical to re-running the search:
// counters and Result fields read "as if executed". Entries produced by
// speculative runs are sound to reuse — the searcher is deterministic
// given the key and budget, so the adopted and discarded branches would
// have produced the same verdict.
//
// Like the cube package's tautology memo, the cache is a process-global
// sharded LRU bounded by SetSearchMemoCap.

// searchMemoShards is the number of independently locked LRU shards.
const searchMemoShards = 16

// DefaultSearchMemoCap is the default global entry bound. Entries carry
// the winning code vector (a handful of words), so the memo stays small
// even when full.
const DefaultSearchMemoCap = 1 << 14

var searchMemoCap atomic.Int64

func init() { searchMemoCap.Store(DefaultSearchMemoCap) }

// SetSearchMemoCap bounds the process-wide failed-embedding memo at n
// entries (spread evenly over the internal shards). n <= 0 restores the
// default. The bound applies lazily: shards evict on their next insert.
func SetSearchMemoCap(n int) {
	if n <= 0 {
		n = DefaultSearchMemoCap
	}
	searchMemoCap.Store(int64(n))
}

func searchShardCap() int {
	c := int(searchMemoCap.Load()) / searchMemoShards
	if c < 1 {
		c = 1
	}
	return c
}

// searchVerdict is one memoized embedding run.
type searchVerdict struct {
	ok     bool // embedding found
	budget bool // run stopped on its work budget
	cap    int  // the maxWork the run was produced under (0 = unbounded)
	work       int
	backtracks int
	checksOK   int
	checksFail int
	symPruned  int
	// codes/bits hold the found encoding when ok.
	codes []uint64
	bits  int
}

// usable reports whether a stored verdict answers a probe with the
// given work budget. An exhaustive verdict (search space fully
// explored) transfers to any budget that would not have fired first; a
// budget verdict is only the answer for the exact same cap, since a
// larger budget might have gone on to succeed.
func (v *searchVerdict) usable(maxWork int) bool {
	if v.budget {
		return maxWork > 0 && maxWork == v.cap
	}
	return maxWork <= 0 || v.work <= maxWork
}

var searchMemoSeed = maphash.MakeSeed()

var searchMemo = func() *embedMemo {
	m := &embedMemo{}
	for i := range m.shards {
		m.shards[i].init()
	}
	return m
}()

type embedMemo struct {
	shards [searchMemoShards]embedShard
}

type embedShard struct {
	mu      sync.Mutex
	m       map[string]int32
	entries []embedEntry
	head    int32
	tail    int32
	free    int32
}

type embedEntry struct {
	key        string
	prev, next int32
	v          searchVerdict
}

func (sh *embedShard) init() {
	sh.m = make(map[string]int32)
	sh.head, sh.tail, sh.free = -1, -1, -1
}

func (sh *embedShard) unlink(i int32) {
	e := &sh.entries[i]
	if e.prev >= 0 {
		sh.entries[e.prev].next = e.next
	} else {
		sh.head = e.next
	}
	if e.next >= 0 {
		sh.entries[e.next].prev = e.prev
	} else {
		sh.tail = e.prev
	}
}

func (sh *embedShard) pushFront(i int32) {
	e := &sh.entries[i]
	e.prev, e.next = -1, sh.head
	if sh.head >= 0 {
		sh.entries[sh.head].prev = i
	}
	sh.head = i
	if sh.tail < 0 {
		sh.tail = i
	}
}

// get looks key up and, on a hit, refreshes its recency and returns a
// copy of the verdict (the codes slice is shared — callers must not
// mutate it; extract copies before handing it out).
func (m *embedMemo) get(key string) (searchVerdict, bool) {
	sh := &m.shards[maphash.String(searchMemoSeed, key)&(searchMemoShards-1)]
	sh.mu.Lock()
	i, ok := sh.m[key]
	var v searchVerdict
	if ok {
		v = sh.entries[i].v
		if sh.head != i {
			sh.unlink(i)
			sh.pushFront(i)
		}
	}
	sh.mu.Unlock()
	return v, ok
}

// put records a verdict, evicting the least recently used entry of the
// shard when it is at capacity.
func (m *embedMemo) put(key string, v searchVerdict) {
	sh := &m.shards[maphash.String(searchMemoSeed, key)&(searchMemoShards-1)]
	sh.mu.Lock()
	if i, ok := sh.m[key]; ok {
		if sh.head != i {
			sh.unlink(i)
			sh.pushFront(i)
		}
		sh.mu.Unlock()
		return
	}
	cap := searchShardCap()
	for len(sh.m) >= cap && sh.tail >= 0 {
		victim := sh.tail
		sh.unlink(victim)
		delete(sh.m, sh.entries[victim].key)
		sh.entries[victim] = embedEntry{key: "", next: sh.free}
		sh.free = victim
	}
	var i int32
	if sh.free >= 0 {
		i = sh.free
		sh.free = sh.entries[i].next
	} else {
		sh.entries = append(sh.entries, embedEntry{})
		i = int32(len(sh.entries) - 1)
	}
	sh.entries[i] = embedEntry{key: key, v: v}
	sh.m[key] = i
	sh.pushFront(i)
	sh.mu.Unlock()
}

func (m *embedMemo) len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// searchMemoReset drops every cached entry (tests only).
func searchMemoReset() {
	for i := range searchMemo.shards {
		sh := &searchMemo.shards[i]
		sh.mu.Lock()
		sh.init()
		sh.entries = nil
		sh.mu.Unlock()
	}
}

// chainKey builds the memo key of a semiexact run: symbol count, cube
// dimension, the constraint set keys in hand-over order, and the output
// covering edges. Weights are excluded — the searcher never reads them.
func chainKey(n, k int, sic []constraint.Constraint, oc []OCEdge) string {
	var b strings.Builder
	b.Grow(16 + len(sic)*(n/4+2) + len(oc)*8)
	b.WriteString("C|")
	b.WriteString(strconv.Itoa(n))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(k))
	for _, c := range sic {
		b.WriteByte('|')
		b.WriteString(c.Set.Key())
	}
	if len(oc) > 0 {
		b.WriteByte(';')
		for _, e := range oc {
			b.WriteString(strconv.Itoa(e.U))
			b.WriteByte('>')
			b.WriteString(strconv.Itoa(e.V))
			b.WriteByte(',')
		}
	}
	return b.String()
}

// vectorKey builds the memo key of an iexact dimension-vector run: the
// canonical graph content, cube dimension, and the level vector.
func vectorKey(g *constraint.Graph, k int, dimvect []int) string {
	var b strings.Builder
	ck := g.CanonKey()
	b.Grow(8 + len(ck) + len(dimvect)*3)
	b.WriteString("V|")
	b.WriteString(ck)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(k))
	b.WriteByte('|')
	for _, d := range dimvect {
		b.WriteString(strconv.Itoa(d))
		b.WriteByte(',')
	}
	return b.String()
}

// recordSearch stores a finished run in the memo. Canceled runs are
// never recorded — their tallies reflect where cancellation landed, not
// the problem.
func recordSearch(key string, s *searcher, enc encoding.Encoding, ok bool) {
	if s.canceled || s.memoHit {
		return
	}
	v := searchVerdict{
		ok:         ok,
		budget:     s.budget,
		cap:        s.maxWork,
		work:       s.work,
		backtracks: s.backtracks,
		checksOK:   s.checksOK,
		checksFail: s.checksFail,
		symPruned:  s.symPruned,
	}
	if ok {
		v.codes = append([]uint64(nil), enc.Codes...)
		v.bits = enc.Bits
	}
	searchMemo.put(key, v)
}

// replaySearcher builds a searcher presenting a memoized run's
// observable state: all tallies restored, flushMetrics and extract
// behave exactly as the original run's would have. It carries no graph —
// only flushMetrics and extract may be called on it.
func replaySearcher(v searchVerdict) *searcher {
	return &searcher{
		maxWork:    v.cap,
		work:       v.work,
		backtracks: v.backtracks,
		checksOK:   v.checksOK,
		checksFail: v.checksFail,
		symPruned:  v.symPruned,
		budget:     v.budget,
		solved:     v.ok,
		memoHit:    true,
		memoHits:   1,
		memoEnc:    encoding.Encoding{Bits: v.bits, Codes: v.codes},
	}
}
