package encode

import (
	"math/rand"
	"testing"

	"nova/internal/constraint"
)

// Edge cases across the encoding algorithms.

func TestIHybridSingleState(t *testing.T) {
	r := IHybrid(1, nil, 0, HybridOptions{})
	if r.Enc.Bits != 1 || len(r.Enc.Codes) != 1 {
		t.Fatalf("single state: %+v", r.Enc)
	}
}

func TestIHybridTwoStates(t *testing.T) {
	r := IHybrid(2, nil, 0, HybridOptions{})
	if r.Enc.Bits != 1 || !r.Enc.Distinct() {
		t.Fatalf("two states: %+v", r.Enc)
	}
}

func TestIGreedyNoConstraints(t *testing.T) {
	r := IGreedy(5, nil, 0)
	if !r.Enc.Distinct() || r.Enc.Bits != 3 {
		t.Fatalf("greedy without constraints: %+v", r.Enc)
	}
}

func TestIExactUniverseConstraintIgnored(t *testing.T) {
	// The universe and singleton constraints are trivially satisfied and
	// must be dropped by normalization.
	ics := []constraint.Constraint{
		{Set: constraint.Universe(4), Weight: 5},
		{Set: constraint.Singleton(4, 2), Weight: 5},
	}
	r := IExact(4, ics, ExactOptions{})
	if r.GaveUp || r.Enc.Bits != 2 {
		t.Fatalf("trivial constraints: gaveUp=%v bits=%d", r.GaveUp, r.Enc.Bits)
	}
}

func TestSatisfyAllEmpty(t *testing.T) {
	r := SatisfyAll(6, nil)
	if r.Enc.Bits != 3 || !r.Enc.Distinct() {
		t.Fatalf("%+v", r.Enc)
	}
}

func TestOutEncoderNoEdges(t *testing.T) {
	e := OutEncoder(5, nil, 0)
	if !e.Distinct() || e.Bits < 3 {
		t.Fatalf("%+v", e)
	}
}

func TestOutEncoderSelfLoopIgnoredGracefully(t *testing.T) {
	// A cyclic (hence unsatisfiable) covering requirement must still
	// yield distinct codes.
	e := OutEncoder(3, []OCEdge{{U: 0, V: 1}, {U: 1, V: 0}}, 0)
	if !e.Distinct() {
		t.Fatal("codes not distinct under cyclic covering")
	}
}

func TestIOHybridEmptyProblem(t *testing.T) {
	r := IOHybrid(IOProblem{N: 4}, 0, HybridOptions{})
	if !r.Enc.Distinct() || r.Enc.Bits != 2 {
		t.Fatalf("%+v", r.Enc)
	}
}

func TestProjectCodePreservesWidth(t *testing.T) {
	ics := []constraint.Constraint{{Set: constraint.MustFromString("1100"), Weight: 1}}
	r := IHybrid(4, ics, 6, HybridOptions{})
	if r.Enc.Bits > 6 {
		t.Fatalf("bits %d exceed requested 6", r.Enc.Bits)
	}
	if r.WUnsat != 0 {
		t.Fatal("single constraint should be satisfied")
	}
}

func TestSpannedFaceSingleton(t *testing.T) {
	e := RandomEncoding(4, 2, rand.New(rand.NewSource(9)))
	f := SpannedFace(e, constraint.Singleton(4, 1))
	if f.Level() != 0 || !f.HasVertex(e.Codes[1]) {
		t.Fatalf("singleton span wrong: %+v", f)
	}
}
