package encode

import (
	"context"
	"math/rand"
	"sort"

	"nova/internal/constraint"
	"nova/internal/encoding"
	"nova/internal/obs"
)

// HybridOptions tunes ihybrid_code / iohybrid_code.
type HybridOptions struct {
	// MaxWork is the paper's max_work bound on the number of partial
	// encoding assignments tried per semiexact_code call; 0 means 40,000.
	MaxWork int
	// Seed drives the random fallback encoding of the pathological case
	// where every semiexact call fails.
	Seed int64
	// Ctx, when non-nil, is polled at the bounded-backtracking work tick
	// and between semiexact_code calls; cancellation aborts the run with
	// Result.Err set to the context error.
	Ctx context.Context
	// Fanout, when active, speculates the next semiexact link of the
	// greedy acceptance chain on spare pool workers; results stay
	// byte-identical to the serial chain (see Fanout).
	Fanout Fanout
	// NoPrune disables the search-tree pruning added on top of the
	// seed searcher: second-placement symmetry breaking, the
	// failed-embedding memo, and the infeasible-constraint skip. For
	// A/B comparison and the equivalence suite.
	NoPrune bool
}

func (o *HybridOptions) defaults() {
	if o.MaxWork <= 0 {
		o.MaxWork = 40_000
	}
}

// semiexact runs semiexact_code (Section 4.1): pos_equiv on the given
// constraint set, restricted to minimum-level faces for the primary
// constraints and bounded by max_work (and by ctx, which may be nil). It
// returns the found encoding and whether all the given constraints were
// satisfied.
func semiexact(ctx context.Context, n int, sic []constraint.Constraint, cubeDim, maxWork int, oc []OCEdge, noPrune bool) (encoding.Encoding, bool, int) {
	out := semiexactRun(ctx, n, sic, cubeDim, maxWork, oc, noPrune, "search.semiexact")
	out.s.flushMetrics(obs.MetricsFrom(ctx))
	return out.enc, out.ok, out.work
}

// prepConstraints runs constraint preprocessing under its own span (so
// phase tables attribute its cost honestly), publishes the
// merge/infeasibility counters, and returns the normalized list plus
// the searchable subset: with pruning on, constraints no proper face of
// the cubeDim-cube can host are removed from the search schedule — each
// would fail after exactly one face probe (see constraint.Preprocess) —
// while remaining in the full list for satisfaction accounting. With
// noPrune (or cubeDim <= 0) the searchable list is the full list.
func prepConstraints(ctx context.Context, cubeDim int, ics []constraint.Constraint, noPrune bool) (all, searchable []constraint.Constraint) {
	_, sp := obs.Span(ctx, "encode.preprocess")
	p := constraint.Preprocess(cubeDim, ics)
	m := obs.MetricsFrom(ctx)
	if p.Merged > 0 {
		m.Add("search.constraints.merged", int64(p.Merged))
	}
	if len(p.Infeasible) > 0 {
		m.Add("search.constraints.infeasible", int64(len(p.Infeasible)))
	}
	if sp != nil {
		sp.SetInt("constraints", int64(len(p.ICs)))
		sp.SetInt("merged", int64(p.Merged))
		sp.SetInt("infeasible", int64(len(p.Infeasible)))
		sp.End()
	}
	all = p.ICs
	if noPrune || len(p.Infeasible) == 0 {
		return all, all
	}
	searchable = make([]constraint.Constraint, 0, len(all)-len(p.Infeasible))
	for _, c := range all {
		if !p.Infeasible[c.Set.Key()] {
			searchable = append(searchable, c)
		}
	}
	return all, searchable
}

// mergeRejects rebuilds the rejected-constraint list in the order of
// the full normalized list: the chain's rejects plus the infeasible
// constraints that never entered the chain. The unpruned chain would
// have rejected each skipped constraint at its weight-sorted position
// (its single candidate face, the full cube, is reserved by the
// universe), so the merged list matches the unpruned ric exactly.
func mergeRejects(all, searchable, ric []constraint.Constraint) []constraint.Constraint {
	if len(all) == len(searchable) {
		return ric
	}
	rejected := make(map[string]bool, len(ric))
	for _, c := range ric {
		rejected[c.Set.Key()] = true
	}
	inSearch := make(map[string]bool, len(searchable))
	for _, c := range searchable {
		inSearch[c.Set.Key()] = true
	}
	out := make([]constraint.Constraint, 0, len(ric)+len(all)-len(searchable))
	for _, c := range all {
		if !inSearch[c.Set.Key()] || rejected[c.Set.Key()] {
			out = append(out, c)
		}
	}
	return out
}

// ctxErr returns the context's error, tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// IHybrid implements ihybrid_code (Section IV): maximize the total weight
// of satisfied input constraints on the minimum code length by a greedy
// cycle of bounded semiexact_code calls, then raise the encoding length up
// to bits with project_code, which satisfies at least one more constraint
// per added dimension. bits <= 0 selects the minimum length (no projection
// phase); bits larger than the minimum enables projection.
func IHybrid(n int, ics []constraint.Constraint, bits int, opt HybridOptions) Result {
	opt.defaults()
	cubeDim := MinLength(n)
	ics, searchable := prepConstraints(opt.Ctx, cubeDim, ics, opt.NoPrune)
	if bits <= 0 {
		bits = cubeDim
	}
	var res Result

	// ics is sorted by decreasing weight; the chain accepts greedily.
	chain := semiexactChain(opt, n, searchable, cubeDim)
	res.Work += chain.work
	if chain.err != nil {
		res.Err = chain.err
		return res
	}
	sic, ric := chain.sic, mergeRejects(ics, searchable, chain.ric)
	enc, have := chain.enc, chain.have
	if err := ctxErr(opt.Ctx); err != nil {
		res.Err = err
		return res
	}
	if !have {
		// Rare pathological situation: even a single constraint failed.
		// Start from a random encoding so project_code can work.
		rng := rand.New(rand.NewSource(opt.Seed + 1))
		enc = RandomEncoding(n, cubeDim, rng)
		if len(ics) == 0 {
			// No constraints at all: natural binary codes.
			for i := range enc.Codes {
				enc.Codes[i] = uint64(i)
			}
		}
	}
	for len(ric) > 0 && cubeDim < bits {
		cubeDim++
		enc, sic, ric = projectCode(enc, sic, ric, cubeDim)
	}
	res.Enc = enc
	score(&res, ics)
	return res
}

// projectCode implements project_code (Section 4.2): add one dimension and
// raise into it the states of the highest-weight unsatisfied constraint
// (guaranteeing its satisfaction by Proposition 4.2.1, while preserving
// every satisfied constraint), preferring raise sets that also satisfy
// further unsatisfied constraints — states occurring often in unsatisfied
// constraints are raised first.
func projectCode(enc encoding.Encoding, sic, ric []constraint.Constraint, newBits int) (encoding.Encoding, []constraint.Constraint, []constraint.Constraint) {
	if len(ric) == 0 {
		return pad(enc, nil, newBits), sic, ric
	}
	n := enc.Len()
	// Candidate order: decreasing weight (Normalize's order is kept).
	target := ric[0]
	raise := make([]bool, n)
	for _, m := range target.Set.Members() {
		raise[m] = true
	}
	check := func(r []bool) (bad bool, extra int) {
		e := pad(enc, r, newBits)
		for _, c := range sic {
			if !Satisfied(e, c.Set) {
				return true, 0
			}
		}
		if !Satisfied(e, target.Set) {
			return true, 0
		}
		for _, c := range ric[1:] {
			if Satisfied(e, c.Set) {
				extra++
			}
		}
		return false, extra
	}
	_, bestExtra := check(raise)
	// Greedy improvement: try to fold in further unsatisfied constraints,
	// most frequent states first.
	freq := make([]int, n)
	for _, c := range ric {
		for _, m := range c.Set.Members() {
			freq[m]++
		}
	}
	order := make([]int, 0, len(ric)-1)
	for i := 1; i < len(ric); i++ {
		order = append(order, i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		fa, fb := 0, 0
		for _, m := range ric[order[a]].Set.Members() {
			fa += freq[m]
		}
		for _, m := range ric[order[b]].Set.Members() {
			fb += freq[m]
		}
		return fa > fb
	})
	for _, i := range order {
		trial := append([]bool(nil), raise...)
		for _, m := range ric[i].Set.Members() {
			trial[m] = true
		}
		if bad, extra := check(trial); !bad && extra > bestExtra {
			raise, bestExtra = trial, extra
		}
	}
	e := pad(enc, raise, newBits)
	var nsic, nric []constraint.Constraint
	nsic = append(nsic, sic...)
	for _, c := range ric {
		if Satisfied(e, c.Set) {
			nsic = append(nsic, c)
		} else {
			nric = append(nric, c)
		}
	}
	return e, nsic, nric
}

// pad widens enc to newBits bits, setting the new top bit for the states
// with raise[i] true (raise may be nil).
func pad(enc encoding.Encoding, raise []bool, newBits int) encoding.Encoding {
	e := encoding.New(enc.Len(), newBits)
	copy(e.Codes, enc.Codes)
	if raise != nil {
		for i := range e.Codes {
			if raise[i] {
				e.Codes[i] |= 1 << uint(newBits-1)
			}
		}
	}
	return e
}
