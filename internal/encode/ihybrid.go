package encode

import (
	"context"
	"math/rand"
	"sort"

	"nova/internal/constraint"
	"nova/internal/encoding"
	"nova/internal/obs"
)

// HybridOptions tunes ihybrid_code / iohybrid_code.
type HybridOptions struct {
	// MaxWork is the paper's max_work bound on the number of partial
	// encoding assignments tried per semiexact_code call; 0 means 40,000.
	MaxWork int
	// Seed drives the random fallback encoding of the pathological case
	// where every semiexact call fails.
	Seed int64
	// Ctx, when non-nil, is polled at the bounded-backtracking work tick
	// and between semiexact_code calls; cancellation aborts the run with
	// Result.Err set to the context error.
	Ctx context.Context
	// Fanout, when active, speculates the next semiexact link of the
	// greedy acceptance chain on spare pool workers; results stay
	// byte-identical to the serial chain (see Fanout).
	Fanout Fanout
}

func (o *HybridOptions) defaults() {
	if o.MaxWork <= 0 {
		o.MaxWork = 40_000
	}
}

// semiexact runs semiexact_code (Section 4.1): pos_equiv on the given
// constraint set, restricted to minimum-level faces for the primary
// constraints and bounded by max_work (and by ctx, which may be nil). It
// returns the found encoding and whether all the given constraints were
// satisfied.
func semiexact(ctx context.Context, n int, sic []constraint.Constraint, cubeDim, maxWork int, oc []OCEdge) (encoding.Encoding, bool, int) {
	out := semiexactRun(ctx, n, sic, cubeDim, maxWork, oc, "search.semiexact")
	out.s.flushMetrics(obs.MetricsFrom(ctx))
	return out.enc, out.ok, out.work
}

// ctxErr returns the context's error, tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// IHybrid implements ihybrid_code (Section IV): maximize the total weight
// of satisfied input constraints on the minimum code length by a greedy
// cycle of bounded semiexact_code calls, then raise the encoding length up
// to bits with project_code, which satisfies at least one more constraint
// per added dimension. bits <= 0 selects the minimum length (no projection
// phase); bits larger than the minimum enables projection.
func IHybrid(n int, ics []constraint.Constraint, bits int, opt HybridOptions) Result {
	opt.defaults()
	ics = constraint.Normalize(ics)
	cubeDim := MinLength(n)
	if bits <= 0 {
		bits = cubeDim
	}
	var res Result

	// ics is sorted by decreasing weight; the chain accepts greedily.
	chain := semiexactChain(opt, n, ics, cubeDim)
	res.Work += chain.work
	if chain.err != nil {
		res.Err = chain.err
		return res
	}
	sic, ric := chain.sic, chain.ric
	enc, have := chain.enc, chain.have
	if err := ctxErr(opt.Ctx); err != nil {
		res.Err = err
		return res
	}
	if !have {
		// Rare pathological situation: even a single constraint failed.
		// Start from a random encoding so project_code can work.
		rng := rand.New(rand.NewSource(opt.Seed + 1))
		enc = RandomEncoding(n, cubeDim, rng)
		if len(ics) == 0 {
			// No constraints at all: natural binary codes.
			for i := range enc.Codes {
				enc.Codes[i] = uint64(i)
			}
		}
	}
	for len(ric) > 0 && cubeDim < bits {
		cubeDim++
		enc, sic, ric = projectCode(enc, sic, ric, cubeDim)
	}
	res.Enc = enc
	score(&res, ics)
	return res
}

// projectCode implements project_code (Section 4.2): add one dimension and
// raise into it the states of the highest-weight unsatisfied constraint
// (guaranteeing its satisfaction by Proposition 4.2.1, while preserving
// every satisfied constraint), preferring raise sets that also satisfy
// further unsatisfied constraints — states occurring often in unsatisfied
// constraints are raised first.
func projectCode(enc encoding.Encoding, sic, ric []constraint.Constraint, newBits int) (encoding.Encoding, []constraint.Constraint, []constraint.Constraint) {
	if len(ric) == 0 {
		return pad(enc, nil, newBits), sic, ric
	}
	n := enc.Len()
	// Candidate order: decreasing weight (Normalize's order is kept).
	target := ric[0]
	raise := make([]bool, n)
	for _, m := range target.Set.Members() {
		raise[m] = true
	}
	check := func(r []bool) (bad bool, extra int) {
		e := pad(enc, r, newBits)
		for _, c := range sic {
			if !Satisfied(e, c.Set) {
				return true, 0
			}
		}
		if !Satisfied(e, target.Set) {
			return true, 0
		}
		for _, c := range ric[1:] {
			if Satisfied(e, c.Set) {
				extra++
			}
		}
		return false, extra
	}
	_, bestExtra := check(raise)
	// Greedy improvement: try to fold in further unsatisfied constraints,
	// most frequent states first.
	freq := make([]int, n)
	for _, c := range ric {
		for _, m := range c.Set.Members() {
			freq[m]++
		}
	}
	order := make([]int, 0, len(ric)-1)
	for i := 1; i < len(ric); i++ {
		order = append(order, i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		fa, fb := 0, 0
		for _, m := range ric[order[a]].Set.Members() {
			fa += freq[m]
		}
		for _, m := range ric[order[b]].Set.Members() {
			fb += freq[m]
		}
		return fa > fb
	})
	for _, i := range order {
		trial := append([]bool(nil), raise...)
		for _, m := range ric[i].Set.Members() {
			trial[m] = true
		}
		if bad, extra := check(trial); !bad && extra > bestExtra {
			raise, bestExtra = trial, extra
		}
	}
	e := pad(enc, raise, newBits)
	var nsic, nric []constraint.Constraint
	nsic = append(nsic, sic...)
	for _, c := range ric {
		if Satisfied(e, c.Set) {
			nsic = append(nsic, c)
		} else {
			nric = append(nric, c)
		}
	}
	return e, nsic, nric
}

// pad widens enc to newBits bits, setting the new top bit for the states
// with raise[i] true (raise may be nil).
func pad(enc encoding.Encoding, raise []bool, newBits int) encoding.Encoding {
	e := encoding.New(enc.Len(), newBits)
	copy(e.Codes, enc.Codes)
	if raise != nil {
		for i := range e.Codes {
			if raise[i] {
				e.Codes[i] |= 1 << uint(newBits-1)
			}
		}
	}
	return e
}
