package encode

import (
	"context"
	"sync/atomic"

	"nova/internal/constraint"
	"nova/internal/encoding"
	"nova/internal/obs"
	"nova/internal/sched"
)

// Fanout enables intra-problem speculation in the encoding searches:
// with a multi-worker pool attached, IExact fans the primary-level-vector
// searches of one dimension out across workers (with a shared atomic
// best-index bound and cancellation of losing vectors), and the greedy
// semiexact chains of IHybrid / IOHybrid speculate the next link under
// both the accept and the reject hypothesis of the current one.
//
// Every speculative path is replayed against the serial schedule before
// its outcome is adopted, so results — including work accounting, budget
// flags, and tie-breaking (the lowest-index success wins) — are
// byte-identical to the serial search. The zero Fanout disables
// speculation.
type Fanout struct {
	// Pool supplies the workers. nil or a single-worker pool keeps the
	// searches strictly serial.
	Pool *sched.Pool
}

func (f Fanout) active() bool { return f.Pool != nil && f.Pool.Workers() > 1 }

// specOut is the outcome of one semiexact run: the searcher retains the
// work/telemetry tallies, which are flushed only if the run is adopted.
type specOut struct {
	enc  encoding.Encoding
	ok   bool
	work int
	s    *searcher
}

// semiexactRun is the engine behind semiexact: one pos_equiv run without
// the metric flush, so speculative runs can be discarded without
// perturbing the run's counters. spanName distinguishes speculative
// executions ("search.speculate") from on-schedule ones
// ("search.semiexact") in traces.
//
// Unless noPrune, the run is memoized at whole-run granularity: the
// probe happens before the intersection-closure graph is even built, so
// a hit skips BuildGraph and the search entirely. Only pruning-enabled
// runs probe or record — the memo then never mixes the two searcher
// behaviors. Speculative runs may record: the searcher is deterministic
// given (key, budget), so a discarded branch's verdict is the verdict.
func semiexactRun(ctx context.Context, n int, sic []constraint.Constraint, cubeDim, maxWork int, oc []OCEdge, noPrune bool, spanName string) specOut {
	sctx, sp := obs.Span(ctx, spanName)
	sp.SetInt("constraints", int64(len(sic)))
	var key string
	if !noPrune {
		key = chainKey(n, cubeDim, sic, oc)
		if v, ok := searchMemo.get(key); ok && v.usable(maxWork) {
			s := replaySearcher(v)
			if sp != nil {
				sp.SetInt("memo_hit", 1)
				sp.SetInt("work", int64(s.work))
				sp.End()
			}
			out := specOut{ok: v.ok, work: s.work, s: s}
			if v.ok {
				out.enc = s.extract()
			}
			return out
		}
	}
	g := constraint.BuildGraph(n, sic)
	s := newSearcher(g, cubeDim)
	s.allLevels = false
	s.maxWork = maxWork
	s.oc = oc
	s.noPrune = noPrune
	s.ctx = sctx
	ok := s.solve(nil)
	s.solved = ok
	if sp != nil {
		sp.SetInt("work", int64(s.work))
		sp.End()
	}
	out := specOut{ok: ok, work: s.work, s: s}
	if ok {
		out.enc = s.extract()
	}
	if !noPrune {
		s.memoMisses = 1
		recordSearch(key, s, out.enc, ok)
	}
	return out
}

// chainResult is what the stage-1 greedy semiexact cycle produces.
type chainResult struct {
	enc  encoding.Encoding
	have bool
	sic  []constraint.Constraint
	ric  []constraint.Constraint
	work int
	err  error
}

// semiexactChain runs the greedy acceptance cycle shared by IHybrid and
// ioEncode stage 1: for each constraint in order, a bounded semiexact
// over the accepted set plus the candidate; accept on success. With an
// active Fanout it speculates each next link while the current one runs.
func semiexactChain(opt HybridOptions, n int, ics []constraint.Constraint, cubeDim int) chainResult {
	if opt.Fanout.active() && len(ics) > 1 {
		return semiexactChainSpec(opt, n, ics, cubeDim)
	}
	var r chainResult
	for _, ic := range ics {
		if err := ctxErr(opt.Ctx); err != nil {
			r.err = err
			return r
		}
		e, ok, w := semiexact(opt.Ctx, n, append(append([]constraint.Constraint(nil), r.sic...), ic), cubeDim, opt.MaxWork, nil, opt.NoPrune)
		r.work += w
		if ok {
			r.enc, r.have = e, true
			r.sic = append(r.sic, ic)
		} else {
			r.ric = append(r.ric, ic)
		}
	}
	return r
}

// spec is one in-flight speculative semiexact run.
type spec struct {
	cancel context.CancelFunc
	done   chan specOut // buffered: the task never blocks on delivery
}

// launch starts a speculative run on the group if a spare worker slot is
// free (speculation is never worth running inline — it would serialize
// ahead of the decision that may discard it). Returns nil when skipped.
func launch(g *sched.Group, m *obs.Metrics, n int, sic []constraint.Constraint, cubeDim, maxWork int, noPrune bool) *spec {
	sctx, cancel := context.WithCancel(g.Context())
	sp := &spec{cancel: cancel, done: make(chan specOut, 1)}
	accepted := g.TryGo(func(context.Context) error {
		m.Add("search.spec_branches", 1)
		sp.done <- semiexactRun(sctx, n, sic, cubeDim, maxWork, nil, noPrune, "search.speculate")
		return nil
	})
	if !accepted {
		cancel()
		m.Add("search.spec_skipped", 1)
		return nil
	}
	return sp
}

// semiexactChainSpec is semiexactChain with rolling two-way speculation:
// while link i runs, the two possible versions of link i+1 (under the
// accept and the reject hypothesis for link i) are launched on spare
// workers; the matching one is adopted, the loser canceled. Adopted runs
// received the exact constraint sets the serial chain would have built,
// and their searchers are deterministic (constant work bound, context
// only canceled on loss), so the chain's results — encoding, accept/
// reject partition, and work totals — are byte-identical to serial.
func semiexactChainSpec(opt HybridOptions, n int, ics []constraint.Constraint, cubeDim int) chainResult {
	m := obs.MetricsFrom(opt.Ctx)
	g := opt.Fanout.Pool.Group(opt.Ctx)
	var r chainResult

	// withCand builds the serial chain's trial set: a fresh slice of the
	// accepted constraints followed by the candidates.
	withCand := func(sic []constraint.Constraint, cands ...constraint.Constraint) []constraint.Constraint {
		out := append([]constraint.Constraint(nil), sic...)
		return append(out, cands...)
	}

	var cur *spec // speculative run matching the serial schedule for link i
	var inflight []*spec
	cancelAll := func() {
		for _, sp := range inflight {
			if sp != nil {
				sp.cancel()
			}
		}
		g.Wait() // done channels are buffered; tasks cannot leak
	}
	defer cancelAll()

	for i, ic := range ics {
		if err := ctxErr(opt.Ctx); err != nil {
			r.err = err
			return r
		}
		// Speculate link i+1 under both hypotheses before resolving link
		// i, so the speculative runs overlap with the on-schedule one.
		var onAccept, onReject *spec
		if i+1 < len(ics) {
			onAccept = launch(g, m, n, withCand(r.sic, ic, ics[i+1]), cubeDim, opt.MaxWork, opt.NoPrune)
			onReject = launch(g, m, n, withCand(r.sic, ics[i+1]), cubeDim, opt.MaxWork, opt.NoPrune)
			inflight = append(inflight, onAccept, onReject)
		}
		var out specOut
		if cur != nil {
			out = <-cur.done
			m.Add("search.spec_adopted", 1)
		} else {
			out = semiexactRun(opt.Ctx, n, withCand(r.sic, ic), cubeDim, opt.MaxWork, nil, opt.NoPrune, "search.semiexact")
		}
		out.s.flushMetrics(m) // adopted runs only: discarded ones never count
		r.work += out.work
		var next *spec
		if out.ok {
			r.enc, r.have = out.enc, true
			r.sic = append(r.sic, ic)
			next = onAccept
			if onReject != nil {
				onReject.cancel()
			}
		} else {
			r.ric = append(r.ric, ic)
			next = onReject
			if onAccept != nil {
				onAccept.cancel()
			}
		}
		cur = next
	}
	return r
}

// vecOutcome is the standalone result of one speculatively searched
// primary level vector in IExact.
type vecOutcome struct {
	s      *searcher
	ok     bool
	pruned bool // skipped: a lower-index vector had already succeeded
}

// iexactRoundSerial runs one retry round of IExact's per-dimension
// vector loop on the serial schedule. It returns the work consumed, the
// round's budget flag, the winning searcher (nil if none), and any
// context error.
func iexactRoundSerial(opt ExactOptions, m *obs.Metrics, g *constraint.Graph, k int,
	primaries []*constraint.Node, vectors [][]int, slice, perK, kWork int) (work int, roundBudget bool, winner *searcher, err error) {
	for _, dimvect := range vectors {
		if err = ctxErr(opt.Ctx); err != nil {
			return work, roundBudget, nil, err
		}
		w := slice
		if rem := perK - kWork - work; w > rem {
			w = rem
		}
		if w <= 0 {
			return work, true, nil, nil
		}
		s := runVector(opt.Ctx, g, k, primaries, dimvect, w, opt.NoPrune)
		s.flushMetrics(m)
		work += s.work
		if s.solved {
			return work, roundBudget, s, nil
		}
		if s.budget {
			roundBudget = true
		}
	}
	return work, roundBudget, nil, nil
}

// runVector runs one primary-level-vector search with the given work cap.
// Unless noPrune, runs are memoized by (graph content, k, level vector);
// a hit returns a replayed searcher whose observable state matches the
// original run's (see replaySearcher).
func runVector(ctx context.Context, g *constraint.Graph, k int,
	primaries []*constraint.Node, dimvect []int, maxWork int, noPrune bool) *searcher {
	var key string
	if !noPrune {
		key = vectorKey(g, k, dimvect)
		if v, ok := searchMemo.get(key); ok && v.usable(maxWork) {
			return replaySearcher(v)
		}
	}
	s := newSearcher(g, k)
	s.allLevels = true
	s.maxWork = maxWork
	s.noPrune = noPrune
	s.ctx = ctx
	s.levels = map[*constraint.Node]int{}
	for i, nd := range primaries {
		s.levels[nd] = dimvect[i]
	}
	s.solved = s.solve(nil)
	if !noPrune {
		s.memoMisses = 1
		var enc encoding.Encoding
		if s.solved {
			enc = s.extract()
		}
		recordSearch(key, s, enc, s.solved)
	}
	return s
}

// iexactRoundSpec is iexactRoundSerial with the vectors fanned out
// across the pool in chunks of the worker count. Each chunk's vectors
// run concurrently with the full slice as their work cap and a shared
// atomic best-index bound: the first (lowest-index) success cancels the
// higher-index vectors, and later vectors skip themselves when a better
// index already won — exactly the work the serial early-exit skips.
//
// Adoption replays the serial schedule over the standalone outcomes in
// index order: an outcome is adopted verbatim when the serial work cap
// would not have cut it short; otherwise the serial search would have
// burned its cap and stopped at exactly cap+1 ticks (verify increments
// the tick before testing the bound and the unwind performs no further
// verify calls), which is accounted without re-running. Cancelled or
// skipped outcomes below the adoption point are re-run serially — a
// corner only reachable when a budget truncation hides the winner.
func iexactRoundSpec(opt ExactOptions, m *obs.Metrics, g *constraint.Graph, k int,
	primaries []*constraint.Node, vectors [][]int, slice, perK, kWork int) (work int, roundBudget bool, winner *searcher, err error) {
	pool := opt.Fanout.Pool
	fan := pool.Workers()
	for base := 0; base < len(vectors); base += fan {
		end := base + fan
		if end > len(vectors) {
			end = len(vectors)
		}
		chunk := vectors[base:end]
		n := len(chunk)

		outcomes := make([]vecOutcome, n)
		var best atomic.Int64
		best.Store(int64(n))
		grp := pool.Group(opt.Ctx)
		cancels := make([]context.CancelFunc, n)
		ctxs := make([]context.Context, n)
		for i := range chunk {
			ctxs[i], cancels[i] = context.WithCancel(grp.Context())
		}
		for i := range chunk {
			i := i
			grp.Go(func(context.Context) error {
				if int64(i) >= best.Load() {
					outcomes[i].pruned = true
					m.Add("search.bound_pruned", 1)
					return nil
				}
				m.Add("search.spec_branches", 1)
				sctx, sp := obs.Span(ctxs[i], "search.speculate")
				s := runVector(sctx, g, k, primaries, chunk[i], slice, opt.NoPrune)
				if sp != nil {
					sp.SetInt("work", int64(s.work))
					sp.End()
				}
				outcomes[i] = vecOutcome{s: s, ok: s.solved}
				if s.solved && !s.canceled {
					for {
						b := best.Load()
						if int64(i) >= b {
							break
						}
						if best.CompareAndSwap(b, int64(i)) {
							for j := i + 1; j < n; j++ {
								cancels[j]()
							}
							break
						}
					}
				}
				return nil
			})
		}
		grp.Wait()
		for _, c := range cancels {
			c()
		}

		// Serial-schedule replay over the chunk.
		for i := 0; i < n; i++ {
			if err = ctxErr(opt.Ctx); err != nil {
				return work, roundBudget, nil, err
			}
			w := slice
			if rem := perK - kWork - work; w > rem {
				w = rem
			}
			if w <= 0 {
				return work, true, nil, nil
			}
			o := outcomes[i]
			if o.s == nil || o.pruned || o.s.canceled {
				// Not usable standalone (skipped, or canceled by a winner
				// the budget later truncated): run it on-schedule.
				s := runVector(opt.Ctx, g, k, primaries, chunk[i], w, opt.NoPrune)
				s.flushMetrics(m)
				work += s.work
				if s.solved {
					return work, roundBudget, s, nil
				}
				if s.budget {
					roundBudget = true
				}
				continue
			}
			if o.s.work <= w && !o.s.budget {
				// The serial cap would not have interfered: adopt verbatim.
				o.s.flushMetrics(m)
				work += o.s.work
				if o.ok {
					return work, roundBudget, o.s, nil
				}
				continue
			}
			// The standalone run outran the serial cap w (< slice): the
			// serial search stops at exactly w+1 ticks with the budget
			// flag set.
			o.s.flushMetrics(m)
			m.Add("search.spec_truncated", 1)
			work += w + 1
			roundBudget = true
		}
	}
	return work, roundBudget, nil, nil
}
