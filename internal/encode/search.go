// Package encode implements NOVA's encoding algorithms: the exact face
// hypercube embedding iexact_code (Section III), the bounded-backtracking
// semiexact_code and the projection coding project_code combined in
// ihybrid_code (Section IV), the fast igreedy_code (Section V), and the
// input/output constraint satisfaction algorithms iohybrid_code,
// iovariant_code and out_encoder built on symbolic minimization
// (Section VI).
package encode

import (
	"context"
	"errors"
	"math/bits"

	"nova/internal/constraint"
	"nova/internal/encoding"
	"nova/internal/face"
	"nova/internal/obs"
)

// ErrBudget is returned when a search exceeds its work bound rather than
// proving infeasibility.
var ErrBudget = errors.New("encode: work budget exhausted")

// ctxCheckInterval is how many work ticks pass between context polls in
// the backtracking inner loop: frequent enough that cancellation lands
// within microseconds, rare enough that the poll cost is invisible next
// to the consistency checks themselves.
const ctxCheckInterval = 64

// OCEdge is an output covering constraint: the code of U must cover the
// code of V bitwise, and differ from it (edge (u,v) of the symbolic
// minimization graph G).
type OCEdge struct{ U, V int }

// faceKey identifies a face for injectivity checks.
type faceKey struct{ val, x uint64 }

func keyOf(f face.Face) faceKey { return faceKey{f.Val &^ f.X, f.X} }

// orbitKey is the canonical signature of a face's orbit under the
// stabilizer of {full cube, f0} in the k-cube's automorphism group,
// where f0 is the first placed face in canonical position (Val=0,
// X=lowMask(l)). The stabilizer is exactly the pairs (π, t) of a
// coordinate permutation π preserving f0's free-coordinate set X0
// setwise and a translation t ⊆ X0; two faces are related by such a
// map iff they agree on (free coordinates inside X0, total free
// coordinates, fixed-1 coordinates outside X0) — the permutation moves
// coordinates within/outside X0 independently, and the translation
// clears any fixed-value pattern inside X0.
type orbitKey struct{ a, b, c uint8 }

func orbitKeyOf(f face.Face, x0 uint64) orbitKey {
	return orbitKey{
		uint8(bits.OnesCount64(f.X & x0)),
		uint8(bits.OnesCount64(f.X)),
		uint8(bits.OnesCount64(f.Val &^ f.X &^ x0)),
	}
}

// orbitKey2 is the third-placement analogue of orbitKey: the signature
// of a candidate face's orbit under the stabilizer of {full cube, f0,
// f1}, where f0 is canonical and f1 is the second placed face. The
// coordinates split into six classes by (inside/outside X0) × (free /
// fixed-0 / fixed-1 in f1); a permutation moving coordinates only
// within a class, together with a translation supported on class 0
// (free in both faces), fixes both placed faces. Per class the key
// records how many of the candidate's coordinates are free and how many
// are fixed at 1 — except class 0, where translations reach every value
// pattern and only the free count matters. Faces agreeing on the key
// are related by such a map, so their subtrees are isomorphic.
type orbitKey2 [6]uint16

func orbit2KeyOf(f face.Face, cls *[6]uint64) orbitKey2 {
	var key orbitKey2
	b1 := f.Val &^ f.X
	for i, m := range cls {
		nx := uint16(bits.OnesCount64(f.X & m))
		if i == 0 {
			key[i] = nx << 8
			continue
		}
		key[i] = nx<<8 | uint16(bits.OnesCount64(b1&m))
	}
	return key
}

// lowMask returns the mask of the l lowest coordinates.
func lowMask(l int) uint64 { return (uint64(1) << uint(l)) - 1 }

// searcher holds the state of one pos_equiv run: the input graph, the cube
// dimension, the chosen levels of the primary constraints, the incremental
// assignment with its undo trail, and the work accounting.
type searcher struct {
	g *constraint.Graph
	k int

	// level of the face to use per cat-1 non-singleton node (the primary
	// level vector); nil selects the minimum feasible level everywhere.
	levels map[*constraint.Node]int

	// allLevels lets cat-3 constraints range over every feasible level
	// (true for iexact); false restricts them to the minimum level
	// (semiexact).
	allLevels bool

	// noPrune disables the pruning added on top of the seed searcher
	// (second-placement orbit breaking; the run-level memo and the
	// infeasible-constraint skip are gated by the same flag in their
	// callers). The first-placement break predates the flag and stays on.
	noPrune bool

	maxWork int  // 0 = unbounded
	work    int
	budget  bool // set when the work bound fired
	solved  bool // set by runVector: solve's verdict, kept with the searcher

	// Telemetry accumulated in plain ints (the searcher is single-owner);
	// flushMetrics pushes the totals into a run's obs.Metrics, if any.
	backtracks int // solution-path undos in solve
	checksOK   int // checkFace probes that passed
	checksFail int // checkFace probes that failed
	symPruned  int // candidate faces skipped by the orbit break

	// Memo bookkeeping. A replayed searcher (memoHit) carries no graph:
	// only flushMetrics and extract may be called on it. memoEnc holds
	// the memoized encoding; memoHits/memoMisses feed the counters.
	memoHit    bool
	memoHits   int
	memoMisses int
	memoEnc    encoding.Encoding

	// ctx, when non-nil, is polled every ctxCheckInterval work ticks;
	// cancellation aborts the search like an exhausted budget, with
	// canceled set so callers can tell the two apart.
	ctx      context.Context
	canceled bool

	// The assignment, indexed by Node.Index: aface[i] is node i's face,
	// valid iff ahave[i]. alist is the set of assigned nodes in
	// insertion order (universe first) — the searcher's verdicts are
	// independent of iteration order, so unassign swap-removes through
	// apos. single caches Card()==1 per node.
	aface  []face.Face
	ahave  []bool
	apos   []int32
	alist  []*constraint.Node
	single []bool
	used   map[faceKey]*constraint.Node

	oc         []OCEdge
	singletons []*constraint.Node // per symbol

	// Scratch buffers reused across next_to_code calls. Both are consumed
	// before the search recurses (nextToCode returns a single node, and
	// its level probes are read immediately), so plain reuse is safe.
	lvbuf    []int
	candsBuf []*constraint.Node

	// orbitBuf / orbitBuf2 are the seen-orbit sets of the second- and
	// third-placement breaks. Only one solve frame can ever observe a
	// given assignment count at a time (deeper frames see more
	// assignments, and each frame clears its buffer on entry), so one
	// buffer per depth suffices.
	orbitBuf  map[orbitKey]bool
	orbitBuf2 map[orbitKey2]bool
}

func newSearcher(g *constraint.Graph, k int) *searcher {
	nn := len(g.Nodes)
	s := &searcher{
		g:      g,
		k:      k,
		aface:  make([]face.Face, nn),
		ahave:  make([]bool, nn),
		apos:   make([]int32, nn),
		single: make([]bool, nn),
		alist:  make([]*constraint.Node, 0, nn),
		used:   make(map[faceKey]*constraint.Node, nn),
	}
	s.singletons = make([]*constraint.Node, g.N)
	for i, nd := range g.Nodes {
		if nd.Set.Card() == 1 {
			s.single[i] = true
			s.singletons[nd.Set.Members()[0]] = nd
		}
	}
	// The universe is pre-assigned the full face.
	s.assign(g.Universe, face.Full(k))
	return s
}

// minLevel returns ceil(log2(card(nd))), the minimum feasible face level.
func minLevel(nd *constraint.Node) int {
	c := nd.Set.Card()
	l, p := 0, 1
	for p < c {
		p <<= 1
		l++
	}
	return l
}

// assign records nd -> f without verification.
func (s *searcher) assign(nd *constraint.Node, f face.Face) {
	i := nd.Index
	s.aface[i] = f
	s.ahave[i] = true
	s.apos[i] = int32(len(s.alist))
	s.alist = append(s.alist, nd)
	s.used[keyOf(f)] = nd
}

func (s *searcher) unassign(nd *constraint.Node) {
	i := nd.Index
	if !s.ahave[i] {
		return
	}
	s.ahave[i] = false
	delete(s.used, keyOf(s.aface[i]))
	p := s.apos[i]
	last := len(s.alist) - 1
	if int(p) != last {
		moved := s.alist[last]
		s.alist[p] = moved
		s.apos[moved.Index] = p
	}
	s.alist = s.alist[:last]
}

// faceOf returns nd's assigned face, if any (tests and reporting).
func (s *searcher) faceOf(nd *constraint.Node) (face.Face, bool) {
	if nd == nil || !s.ahave[nd.Index] {
		return face.Face{}, false
	}
	return s.aface[nd.Index], true
}

// assignedCount returns the number of assigned nodes, universe included.
func (s *searcher) assignedCount() int { return len(s.alist) }

// verify implements the incremental correctness checks of Section 3.4.3
// for a face f proposed for nd, against every assigned node:
//
//	input poset:  the single father's face must include f (guaranteed by
//	              construction for categories 1 and 3: candidates are
//	              generated inside the father's face); category-2 faces are
//	              the exact intersection of their fathers' faces (place).
//	face poset:   (1) injectivity; (2) face inclusion implies proper set
//	              inclusion, both directions; (3) faces that intersect must
//	              have intersecting constraints.
//
// plus the cardinality condition #(ic) <= #(f(ic)) and the output covering
// relations for iohybrid.
func (s *searcher) verify(nd *constraint.Node, f face.Face) bool {
	s.work++
	if s.maxWork > 0 && s.work > s.maxWork {
		s.budget = true
		return false
	}
	if s.ctx != nil && s.work%ctxCheckInterval == 0 && s.ctx.Err() != nil {
		s.canceled = true
		return false
	}
	return s.checkFace(nd, f)
}

// stopped reports whether the search must unwind now: the work budget
// fired or the context was canceled.
func (s *searcher) stopped() bool { return s.budget || s.canceled }

// checkFace is verify's condition check without the work accounting (the
// forward check probes many faces and must not burn budget or set the
// budget flag). It tallies pass/fail so runs can report the
// face-constraint satisfaction ratio.
func (s *searcher) checkFace(nd *constraint.Node, f face.Face) bool {
	ok := s.checkFaceConds(nd, f)
	if ok {
		s.checksOK++
	} else {
		s.checksFail++
	}
	return ok
}

func (s *searcher) checkFaceConds(nd *constraint.Node, f face.Face) bool {
	if f.Cardinality() < nd.Set.Card() {
		return false
	}
	// Injectivity. (Two different constraints sharing a face always break
	// the final encoding — some differing member's code would sit in a
	// face whose constraint excludes it — so rejecting early is sound.)
	if _, dup := s.used[keyOf(f)]; dup {
		return false
	}
	ndSingle := s.single[nd.Index]
	rel := s.g.Rel[nd.Index*len(s.g.Nodes):]
	for _, jc := range s.alist {
		j := jc.Index
		jcSingle := s.single[j]
		// The defining condition of FACE HYPERCUBE EMBEDDING relates
		// constraint faces to state codes: f(ic) ∩ f(s) ≠ Φ ⇔ s ∈ ic.
		// Between two non-singleton faces no relation is required — the
		// auxiliary closure faces may overlap as long as the eventually
		// placed codes respect every original constraint, which the
		// singleton checks below enforce.
		if !ndSingle && !jcSingle {
			continue
		}
		nonempty := f.Intersects(s.aface[j])
		r := rel[j]
		if r&constraint.RelIntersects == 0 {
			if nonempty {
				return false
			}
			continue
		}
		// A singleton inside a constraint must lie inside its face: the
		// father-chain generation guarantees it for ancestors, and for
		// non-ancestors membership still requires the vertex inside.
		if ndSingle && !jcSingle && r&constraint.RelSubset != 0 && !nonempty {
			return false
		}
		if jcSingle && !ndSingle && r&constraint.RelSuperset != 0 && !nonempty {
			return false
		}
	}
	// Output covering constraints between encoded singletons. Codes are
	// the Val vertices of the singleton faces.
	if len(s.oc) > 0 && !s.ocOK(nd, f) {
		return false
	}
	return true
}

// ocOK checks the active output covering edges assuming nd gets face f.
func (s *searcher) ocOK(nd *constraint.Node, f face.Face) bool {
	codeOf := func(sym int) (uint64, bool) {
		sg := s.singletons[sym]
		if sg == nd {
			return f.Val, true
		}
		if s.ahave[sg.Index] {
			return s.aface[sg.Index].Val, true
		}
		return 0, false
	}
	if nd.Set.Card() != 1 {
		return true
	}
	for _, e := range s.oc {
		cu, okU := codeOf(e.U)
		cv, okV := codeOf(e.V)
		if !okU || !okV {
			continue
		}
		if cv&^cu != 0 || cu == cv {
			return false
		}
	}
	return true
}

// trail records one assignment step for undo: the selected node plus the
// forced category-2 nodes assigned alongside it.
type trail struct {
	nodes []*constraint.Node
}

func (s *searcher) undo(t trail) {
	for _, nd := range t.nodes {
		s.unassign(nd)
	}
}

// place assigns f to nd after verification, then propagates forced
// category-2 assignments to fixpoint. It returns the undo trail and true,
// or an empty trail and false when any step fails (the partial work is
// rolled back).
func (s *searcher) place(nd *constraint.Node, f face.Face) (trail, bool) {
	var t trail
	if !s.verify(nd, f) {
		return trail{}, false
	}
	s.assign(nd, f)
	t.nodes = append(t.nodes, nd)
	// Forced assignments: any unassigned non-singleton cat-2 node whose
	// fathers are all assigned receives the intersection of its fathers'
	// faces (D(ic) of assign_face, taken to fixpoint). Singletons are not
	// forced: they are selected and enumerated as vertices inside their
	// fathers' intersection, so the backtracking can revisit the choice.
	for {
		var next *constraint.Node
		for _, cand := range s.g.Nodes {
			if s.ahave[cand.Index] || cand.Cat() != constraint.Cat2 || s.single[cand.Index] {
				continue
			}
			ready := true
			for _, fa := range cand.Fathers {
				if !s.ahave[fa.Index] {
					ready = false
					break
				}
			}
			if ready {
				next = cand
				break
			}
		}
		if next == nil {
			break
		}
		fi := s.aface[next.Fathers[0].Index]
		okI := true
		for _, fa := range next.Fathers[1:] {
			fi, okI = fi.Intersect(s.aface[fa.Index])
			if !okI {
				break
			}
		}
		if !okI {
			s.undo(t)
			return trail{}, false
		}
		if !s.verify(next, fi) {
			s.undo(t)
			return trail{}, false
		}
		s.assign(next, fi)
		t.nodes = append(t.nodes, next)
	}
	// Forward check: every unassigned singleton whose fathers are all
	// assigned must still have at least one feasible vertex; otherwise
	// this branch is dead and pruning now avoids deep thrashing. Probing
	// is bounded: singletons whose fathers' intersection spans more than
	// 2^forwardCheckMaxLevel vertices are skipped (plenty of room there,
	// and enumerating the vertices would dominate the search).
	const forwardCheckMaxLevel = 6
	for _, sg := range s.singletons {
		if sg == nil || s.ahave[sg.Index] {
			continue
		}
		fi, ready := face.Full(s.k), true
		for _, fa := range sg.Fathers {
			if !s.ahave[fa.Index] {
				ready = false
				break
			}
			var ok bool
			fi, ok = fi.Intersect(s.aface[fa.Index])
			if !ok {
				// All fathers assigned with an empty intersection: the
				// singleton has nowhere to go.
				s.undo(t)
				return trail{}, false
			}
		}
		if !ready || fi.Level() > forwardCheckMaxLevel {
			continue
		}
		feasible := false
		stop := false
		fi.Vertices(func(v uint64) {
			if stop {
				return
			}
			if s.checkFace(sg, face.Vertex(s.k, v)) {
				feasible = true
				stop = true
			}
		})
		if !feasible {
			s.undo(t)
			return trail{}, false
		}
	}
	return t, true
}

// selectable reports whether nd can be chosen by next_to_code now:
// categories 1 and 3 with an assigned father, plus singletons of category
// 2 once every father is assigned (they are enumerated as vertices of the
// fathers' intersection rather than forced).
func (s *searcher) selectable(nd *constraint.Node) bool {
	if s.ahave[nd.Index] {
		return false
	}
	switch nd.Cat() {
	case constraint.Cat1:
		return true
	case constraint.Cat3:
		return s.ahave[nd.Fathers[0].Index]
	case constraint.Cat2:
		if !s.single[nd.Index] {
			return false
		}
		for _, fa := range nd.Fathers {
			if !s.ahave[fa.Index] {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// feasibleLevels appends the candidate face levels for nd to buf[:0],
// best (largest) first, respecting the primary level vector for cat-1
// constraints and the father's face for cat-3 constraints. Callers pass
// a scratch buffer (stack array or the searcher's lvbuf) so the hot
// next_to_code probes never allocate; the returned slice is only valid
// until buf's next reuse.
func (s *searcher) feasibleLevels(nd *constraint.Node, buf []int) []int {
	out := buf[:0]
	if nd.Set.Card() == 1 {
		return append(out, 0) // states take vertices
	}
	ml := minLevel(nd)
	switch nd.Cat() {
	case constraint.Cat1:
		if s.levels != nil {
			if l, ok := s.levels[nd]; ok {
				return append(out, l)
			}
		}
		return append(out, ml)
	case constraint.Cat3:
		fl := s.aface[nd.Fathers[0].Index].Level()
		if !s.allLevels {
			if ml <= fl-1 {
				return append(out, ml)
			}
			return nil
		}
		for l := ml; l <= fl-1; l++ {
			out = append(out, l)
		}
		return out
	}
	return nil
}

// shares reports whether two nodes share a child.
func shares(a, b *constraint.Node) bool {
	for _, ca := range a.Children {
		for _, cb := range b.Children {
			if ca == cb {
				return true
			}
		}
	}
	return false
}

// nextToCode implements the priority branching scheme of Section 3.4.1,
// with lic the most recently selected node (nil at the start, in which
// case the cat-1 node of largest minimum level is taken).
func (s *searcher) nextToCode(lic *constraint.Node) *constraint.Node {
	cands := s.candsBuf[:0]
	for _, nd := range s.g.Nodes {
		if s.selectable(nd) {
			cands = append(cands, nd)
		}
	}
	s.candsBuf = cands
	if len(cands) == 0 {
		return nil
	}
	maxFeasible := func(nd *constraint.Node) int {
		ls := s.feasibleLevels(nd, s.lvbuf)
		s.lvbuf = ls[:0]
		if len(ls) == 0 {
			return -1
		}
		best := ls[0]
		for _, l := range ls {
			if l > best {
				best = l
			}
		}
		return best
	}
	if lic == nil {
		best := cands[0]
		for _, nd := range cands[1:] {
			if maxFeasible(nd) > maxFeasible(best) {
				best = nd
			}
		}
		return best
	}
	cur := s.aface[lic.Index].Level()
	canLevel := func(nd *constraint.Node, l int) bool {
		ls := s.feasibleLevels(nd, s.lvbuf)
		s.lvbuf = ls[:0]
		for _, fl := range ls {
			if fl == l {
				return true
			}
		}
		return false
	}
	// Branches 1-4: same level as f(lic).
	type pred func(nd *constraint.Node) bool
	branches := []pred{
		func(nd *constraint.Node) bool {
			return nd.Cat() == constraint.Cat1 && canLevel(nd, cur) && shares(nd, lic)
		},
		func(nd *constraint.Node) bool { return nd.Cat() == constraint.Cat1 && canLevel(nd, cur) },
		func(nd *constraint.Node) bool { return canLevel(nd, cur) && shares(nd, lic) },
		func(nd *constraint.Node) bool { return canLevel(nd, cur) },
	}
	for _, br := range branches {
		for _, nd := range cands {
			if br(nd) {
				return nd
			}
		}
	}
	// Branches 5-6: maximum level below f(lic)'s, cat-1 first.
	pick := func(cat1Only bool) *constraint.Node {
		var best *constraint.Node
		bestL := -1
		for _, nd := range cands {
			if cat1Only && nd.Cat() != constraint.Cat1 {
				continue
			}
			ls := s.feasibleLevels(nd, s.lvbuf)
			s.lvbuf = ls[:0]
			for _, l := range ls {
				if l < cur && l > bestL {
					best, bestL = nd, l
				}
			}
		}
		return best
	}
	if nd := pick(true); nd != nil {
		return nd
	}
	if nd := pick(false); nd != nil {
		return nd
	}
	// Fall back: any selectable node (levels above the current one).
	return cands[0]
}

// candidates enumerates the faces to try for nd, in the paper's genface
// order (x-patterns lexicographic, then values). Category-3 faces are
// generated inside the father's face; singletons are vertices of the
// intersection of their assigned fathers' faces.
func (s *searcher) candidates(nd *constraint.Node, emit func(face.Face) bool) {
	if nd.Set.Card() == 1 {
		// Intersection of all assigned fathers' faces (the universe face
		// for category 1).
		fi := s.aface[nd.Fathers[0].Index]
		ok := true
		for _, fa := range nd.Fathers[1:] {
			if s.ahave[fa.Index] {
				fi, ok = fi.Intersect(s.aface[fa.Index])
				if !ok {
					return
				}
			}
		}
		stop := false
		fi.Vertices(func(v uint64) {
			if stop {
				return
			}
			if !emit(face.Vertex(s.k, v)) {
				stop = true
			}
		})
		return
	}
	// The level slices here must survive the recursion inside emit (the
	// search re-enters nextToCode and its scratch buffers), so each
	// candidates frame keeps its own stack buffer instead of s.lvbuf.
	var lb [16]int
	switch nd.Cat() {
	case constraint.Cat1:
		for _, l := range s.feasibleLevels(nd, lb[:0]) {
			g := face.NewGen(s.k, l)
			for f, ok := g.Next(); ok; f, ok = g.Next() {
				if !emit(f) {
					return
				}
			}
		}
	case constraint.Cat3:
		ff := s.aface[nd.Fathers[0].Index]
		// Free coordinate positions of the father's face.
		var free []int
		for i := 0; i < s.k; i++ {
			if ff.X&(1<<uint(i)) != 0 {
				free = append(free, i)
			}
		}
		m := len(free)
		for _, l := range s.feasibleLevels(nd, lb[:0]) {
			g := face.NewGen(m, l)
			for sub, ok := g.Next(); ok; sub, ok = g.Next() {
				// Map the m-dimensional subface into the father's face.
				f := face.Face{Val: ff.Val, K: s.k}
				for j, pos := range free {
					bit := uint64(1) << uint(j)
					switch {
					case sub.X&bit != 0:
						f.X |= 1 << uint(pos)
					case sub.Val&bit != 0:
						f.Val |= 1 << uint(pos)
					}
				}
				if !emit(f) {
					return
				}
			}
		}
	}
}

// solve runs the backtracking search to completion. It returns true when
// every node of the input graph is assigned a face consistently.
//
// Symmetry breaking, first placement: the very first constraint placed
// (only the universe assigned) may take only the first verifying face of
// its level — every face of a given level is equivalent under the
// automorphisms of the k-cube (coordinate permutations and XOR
// translations), so any solution can be remapped to one using that face.
// XOR translations do not preserve bitwise output covering, so the break
// is disabled when OC edges are active.
//
// Symmetry breaking, second placement (disabled by noPrune): with the
// first placed face f0 in its canonical position, the automorphisms
// fixing {full cube, f0} still act on the second face's candidates;
// candidates sharing an orbitKey are interchangeable, so only the first
// of each orbit is explored. All verdicts (verify, place, subtree
// success) are invariant under the stabilizer, so skipping the rest of
// an orbit never loses a solution — though the *work spent* in
// isomorphic subtrees is not identical, so under a binding budget the
// pruned search may give up elsewhere than the unpruned one.
//
// Symmetry breaking, third placement (disabled by noPrune): the same
// argument one level deeper with the stabilizer of {full cube, f0, f1}
// (orbitKey2), where f1 is whatever face was placed second — chosen or
// forced, it only matters that the automorphisms fix it. The group is
// smaller, but the third placement still fans out widely enough for the
// orbits to collapse many isomorphic subtrees.
func (s *searcher) solve(lic *constraint.Node) bool {
	nd := s.nextToCode(lic)
	if nd == nil {
		return len(s.alist) == len(s.g.Nodes)
	}
	first := len(s.alist) == 1 && len(s.oc) == 0 // only the universe placed
	var orbitSeen map[orbitKey]bool
	var x0 uint64
	var orbit2Seen map[orbitKey2]bool
	var cls2 [6]uint64
	if !s.noPrune && len(s.oc) == 0 && len(s.alist) == 2 {
		// Second placement: alist is {universe, f0's node}. The orbit
		// argument needs f0 canonical (guaranteed by genface order via
		// the first-placement break; checked defensively — forced
		// assignments or a non-first surviving candidate void it).
		f0 := s.aface[s.alist[1].Index]
		if f0.Val&^f0.X == 0 && f0.X == lowMask(f0.Level()) {
			x0 = f0.X
			if s.orbitBuf == nil {
				s.orbitBuf = make(map[orbitKey]bool, 64)
			}
			for k := range s.orbitBuf {
				delete(s.orbitBuf, k)
			}
			orbitSeen = s.orbitBuf
		}
	}
	if !s.noPrune && len(s.oc) == 0 && len(s.alist) == 3 {
		// Third placement: f0 must again be canonical; f1 is arbitrary.
		f0 := s.aface[s.alist[1].Index]
		if f0.Val&^f0.X == 0 && f0.X == lowMask(f0.Level()) {
			f1 := s.aface[s.alist[2].Index]
			full := lowMask(s.k)
			fx0, x1 := f0.X, f1.X
			v1 := f1.Val &^ f1.X
			cls2[0] = fx0 & x1
			cls2[1] = fx0 &^ x1 &^ v1
			cls2[2] = fx0 &^ x1 & v1
			cls2[3] = x1 &^ fx0
			cls2[4] = full &^ fx0 &^ x1 &^ v1
			cls2[5] = (full &^ fx0 &^ x1) & v1
			if s.orbitBuf2 == nil {
				s.orbitBuf2 = make(map[orbitKey2]bool, 64)
			}
			for k := range s.orbitBuf2 {
				delete(s.orbitBuf2, k)
			}
			orbit2Seen = s.orbitBuf2
		}
	}
	found := false
	s.candidates(nd, func(f face.Face) bool {
		if orbitSeen != nil {
			ok := orbitKeyOf(f, x0)
			if orbitSeen[ok] {
				s.symPruned++
				return true
			}
			orbitSeen[ok] = true
		}
		if orbit2Seen != nil {
			k2 := orbit2KeyOf(f, &cls2)
			if orbit2Seen[k2] {
				s.symPruned++
				return true
			}
			orbit2Seen[k2] = true
		}
		t, ok := s.place(nd, f)
		if !ok {
			return !s.stopped() // stop enumerating when the budget fired or the context was canceled
		}
		if s.solve(nd) {
			found = true
			return false
		}
		s.undo(t)
		s.backtracks++
		if first {
			return false // symmetry: other faces of this level are isomorphic
		}
		return !s.stopped()
	})
	return found
}

// flushMetrics adds the searcher's accumulated tallies to m (nil-safe).
// Call once per search run, after solve returns. Replayed (memo-hit)
// searchers flush the original run's tallies, so counters read "as if
// executed"; the memo.hit/miss counters record the cache behavior on
// top.
func (s *searcher) flushMetrics(m *obs.Metrics) {
	if m == nil {
		return
	}
	m.SearchWork.Add(int64(s.work))
	m.SearchBacktracks.Add(int64(s.backtracks))
	m.SearchChecksOK.Add(int64(s.checksOK))
	m.SearchChecksFail.Add(int64(s.checksFail))
	if s.symPruned > 0 {
		m.Add("search.symmetry.pruned", int64(s.symPruned))
	}
	if s.memoHits > 0 {
		m.Add("search.memo.hit", int64(s.memoHits))
	}
	if s.memoMisses > 0 {
		m.Add("search.memo.miss", int64(s.memoMisses))
	}
}

// extract returns the encoding defined by the singleton faces: the code of
// symbol i is the Val vertex of f({i}).
func (s *searcher) extract() encoding.Encoding {
	if s.memoHit {
		return encoding.Encoding{Bits: s.memoEnc.Bits, Codes: append([]uint64(nil), s.memoEnc.Codes...)}
	}
	e := encoding.New(s.g.N, s.k)
	for i, sg := range s.singletons {
		e.Codes[i] = s.aface[sg.Index].Val
	}
	return e
}

// Faces returns a copy of the face assignment keyed by constraint vector,
// for reporting and tests.
func (s *searcher) Faces() map[string]face.Face {
	out := make(map[string]face.Face, len(s.alist))
	for _, nd := range s.alist {
		out[nd.Set.String()] = s.aface[nd.Index]
	}
	return out
}
