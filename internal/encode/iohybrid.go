package encode

import (
	"math/rand"
	"sort"

	"nova/internal/constraint"
	"nova/internal/encoding"
)

// Cluster groups the constraints associated with one next state by
// symbolic minimization (Section 6.2): OC_i, the output covering edges
// into state State; IC_i, the companion input constraints of state State
// in FinalP; and the gain W obtained when the whole cluster is satisfied.
type Cluster struct {
	State int
	IC    []constraint.Constraint
	OC    []OCEdge
	W     int
}

// IOProblem is an ordered face hypercube embedding instance: the symbols to
// encode, all input constraints (including the output-only companion set
// IC_o), and the clustered output constraints.
type IOProblem struct {
	N        int
	IC       []constraint.Constraint // complete input constraint set
	ICo      []constraint.Constraint // constraints related to proper outputs only
	Clusters []Cluster
}

// TotalOC returns the number of output covering edges over all clusters.
func (p IOProblem) TotalOC() int {
	t := 0
	for _, cl := range p.Clusters {
		t += len(cl.OC)
	}
	return t
}

// IOHybrid implements iohybrid_code (Section 6.2.1), the input-biased
// algorithm: satisfy as many input constraints as possible at the minimum
// length (cycle of semiexact_code), then greedily add whole output-
// constraint clusters in decreasing weight (io_semiexact_code), then raise
// the length toward bits with project_code for the leftover input
// constraints. When there are no input constraints at all the dedicated
// out_encoder runs instead.
func IOHybrid(p IOProblem, bits int, opt HybridOptions) Result {
	return ioEncode(p, bits, opt, false)
}

// IOVariant implements iovariant_code (Section 6.2.2): the i-th cluster is
// accepted only if both IC_i and OC_i are satisfiable together. The paper
// reports iohybrid_code outperforms this variant; both are provided for
// the ablation study.
func IOVariant(p IOProblem, bits int, opt HybridOptions) Result {
	return ioEncode(p, bits, opt, true)
}

func ioEncode(p IOProblem, bits int, opt HybridOptions, variant bool) Result {
	opt.defaults()
	cubeDim := MinLength(p.N)
	allIC, icSearchable := prepConstraints(opt.Ctx, cubeDim, p.IC, opt.NoPrune)
	if bits <= 0 {
		bits = cubeDim
	}
	var res Result
	res.TotalOC = p.TotalOC()
	if len(allIC) == 0 {
		enc := OutEncoder(p.N, allOC(p), bits)
		res.Enc = enc
		score(&res, allIC)
		res.SatisfiedOC = countOC(enc, allOC(p))
		return res
	}

	// Stage 1: input constraints. iohybrid cycles over the whole IC set
	// (minus the infeasible-at-cubeDim skips, which rejoin the rejects);
	// iovariant over the output-only companion set IC_o, unfiltered —
	// its chain feeds the cluster acceptance test, not the reject list.
	stage1 := icSearchable
	if variant {
		stage1 = constraint.Normalize(p.ICo)
	}
	chain := semiexactChain(opt, p.N, stage1, cubeDim)
	res.Work += chain.work
	if chain.err != nil {
		res.Err = chain.err
		return res
	}
	sic, ric := chain.sic, chain.ric
	if !variant {
		ric = mergeRejects(allIC, icSearchable, chain.ric)
	}
	enc, have := chain.enc, chain.have

	// Stage 2: clusters in decreasing weight.
	clusters := append([]Cluster(nil), p.Clusters...)
	sort.SliceStable(clusters, func(i, j int) bool { return clusters[i].W > clusters[j].W })
	var soc []OCEdge
	for _, cl := range clusters {
		if len(cl.OC) == 0 && !variant {
			continue
		}
		if err := ctxErr(opt.Ctx); err != nil {
			res.Err = err
			return res
		}
		trialOC := append(append([]OCEdge(nil), soc...), cl.OC...)
		trialIC := sic
		if variant {
			trialIC = append(append([]constraint.Constraint(nil), sic...), notIn(cl.IC, sic)...)
		}
		e, ok, w := semiexact(opt.Ctx, p.N, trialIC, cubeDim, opt.MaxWork, trialOC, opt.NoPrune)
		res.Work += w
		if ok {
			enc, have = e, true
			soc = trialOC
			if variant {
				sic = trialIC
				ric = subtract(ric, cl.IC)
			}
		} else if variant {
			ric = append(ric, notIn(cl.IC, ric)...)
		}
	}

	if !have {
		rng := rand.New(rand.NewSource(opt.Seed + 1))
		enc = RandomEncoding(p.N, cubeDim, rng)
	}

	// Stage 3: projection for leftover input constraints.
	for len(ric) > 0 && cubeDim < bits {
		cubeDim++
		enc, sic, ric = projectCode(enc, sic, ric, cubeDim)
	}
	res.Enc = enc
	score(&res, allIC)
	res.SatisfiedOC = countOC(enc, allOC(p))
	return res
}

func allOC(p IOProblem) []OCEdge {
	var out []OCEdge
	for _, cl := range p.Clusters {
		out = append(out, cl.OC...)
	}
	return out
}

func countOC(e encoding.Encoding, oc []OCEdge) int {
	n := 0
	for _, edge := range oc {
		if OCSatisfied(e, edge) {
			n++
		}
	}
	return n
}

// notIn returns the constraints of a that are not (set-)present in b.
func notIn(a, b []constraint.Constraint) []constraint.Constraint {
	var out []constraint.Constraint
	for _, c := range a {
		found := false
		for _, d := range b {
			if c.Set.Equal(d.Set) {
				found = true
				break
			}
		}
		if !found {
			out = append(out, c)
		}
	}
	return out
}

// subtract removes from a every constraint whose set appears in b.
func subtract(a, b []constraint.Constraint) []constraint.Constraint {
	var out []constraint.Constraint
	for _, c := range a {
		found := false
		for _, d := range b {
			if c.Set.Equal(d.Set) {
				found = true
				break
			}
		}
		if !found {
			out = append(out, c)
		}
	}
	return out
}

// OutEncoder implements out_encoder: an encoding satisfying a set of
// output covering edges only (used when IC = Φ). States are processed in
// reverse topological order of the covering DAG; each state's code is the
// bitwise OR of the codes it must cover, disambiguated within the smallest
// sufficient width (grown beyond bits when needed).
func OutEncoder(n int, oc []OCEdge, bits int) encoding.Encoding {
	if bits <= 0 {
		bits = MinLength(n)
	}
	covers := make([][]int, n) // covers[u] = list of v with u > v
	indeg := make([]int, n)    // number of states u must cover
	pred := make([][]int, n)   // pred[v] = states covering v
	for _, e := range oc {
		covers[e.U] = append(covers[e.U], e.V)
		indeg[e.U]++
		pred[e.V] = append(pred[e.V], e.U)
	}
	// Reverse topological order: states covering nothing first.
	order := make([]int, 0, n)
	deg := append([]int(nil), indeg...)
	queue := []int{}
	for i := 0; i < n; i++ {
		if deg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, u := range pred[v] {
			deg[u]--
			if deg[u] == 0 {
				queue = append(queue, u)
			}
		}
	}
	if len(order) < n {
		// Cyclic covering requirements are unsatisfiable; fall back to
		// natural codes for the remainder.
		seen := map[int]bool{}
		for _, v := range order {
			seen[v] = true
		}
		for i := 0; i < n; i++ {
			if !seen[i] {
				order = append(order, i)
			}
		}
	}
	w := bits
	codes := make([]uint64, n)
	usedBy := map[uint64]int{}
	for i := range codes {
		codes[i] = ^uint64(0) // unassigned marker
	}
	for _, u := range order {
		var base uint64
		for _, v := range covers[u] {
			if codes[v] != ^uint64(0) {
				base |= codes[v]
			}
		}
		assigned := false
		for !assigned {
			for c := base; c < 1<<uint(w); c++ {
				if c&base != base {
					continue
				}
				if _, taken := usedBy[c]; taken {
					continue
				}
				codes[u] = c
				usedBy[c] = u
				assigned = true
				break
			}
			if !assigned {
				w++ // widen and retry; previously assigned codes remain valid
			}
		}
	}
	e := encoding.New(n, w)
	copy(e.Codes, codes)
	return e
}
