package experiments

import (
	"strings"
	"testing"

	"nova"
	"nova/internal/bench"
)

func smallOpts() RunOpts {
	return RunOpts{Only: []string{"bbtas", "dk27", "shiftreg", "lion"}, Seed: 1}
}

func TestTableI(t *testing.T) {
	r := NewRunner(smallOpts())
	rows := r.TableI()
	// lion is a Table V extra, so Table I keeps the other three.
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	text := FormatTableI(rows)
	for _, want := range []string{"bbtas", "dk27", "shiftreg", "#states"} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
}

func TestTableIIAndCache(t *testing.T) {
	r := NewRunner(smallOpts())
	rows, err := r.TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.IHybrid.Cubes <= 0 || row.IGreedy.Cubes <= 0 || row.OneHotCubes <= 0 {
			t.Fatalf("degenerate row %+v", row)
		}
		if !row.IExact.GaveUp && row.IExact.Bits < row.IHybrid.Bits {
			t.Fatalf("%s: iexact found fewer bits than the minimum-length ihybrid", row.Name)
		}
	}
	// A second call must hit the memo (fast path, same values).
	rows2, err := r.TableII()
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != rows2[i] {
			t.Fatal("cache returned different values")
		}
	}
	if s := FormatTableII(rows); !strings.Contains(s, "ihybrid") {
		t.Fatal("format missing header")
	}
}

func TestTableIIIRelations(t *testing.T) {
	r := NewRunner(smallOpts())
	rows, err := r.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.RandomBestArea > row.RandomAvgArea {
			t.Fatalf("%s: best random above average", row.Name)
		}
		if row.KISS.Bits < row.NovaIH.Bits {
			t.Fatalf("%s: KISS used fewer bits than minimum-length NOVA", row.Name)
		}
	}
	_ = FormatTableIII(rows)
}

func TestTableIVBestIsMin(t *testing.T) {
	r := NewRunner(smallOpts())
	rows, err := r.TableIV()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.NovaBest.Area > row.IOHybrid.Area || row.NovaBest.Area > row.NovaIH.Area {
			t.Fatalf("%s: NOVA best is not the minimum", row.Name)
		}
	}
	_ = FormatTableIV(rows)
}

func TestTableV(t *testing.T) {
	r := NewRunner(smallOpts())
	rows, err := r.TableV()
	if err != nil {
		t.Fatal(err)
	}
	// All four small machines are Table V members.
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	_ = FormatTableV(rows)
}

func TestTableVI(t *testing.T) {
	r := NewRunner(smallOpts())
	rows, err := r.TableVI()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.CLength < nova.MinLength(bench.Get(row.Name).NumStates()) {
			t.Fatalf("%s: clength %d below minimum", row.Name, row.CLength)
		}
		if row.ExCLength > 0 && row.CLength < row.ExCLength {
			t.Fatalf("%s: heuristic length %d beats exact %d", row.Name, row.CLength, row.ExCLength)
		}
	}
	_ = FormatTableVI(rows)
}

func TestTableVII(t *testing.T) {
	r := NewRunner(smallOpts())
	rows, err := r.TableVII()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.MustangCubes <= 0 || row.NovaCubes <= 0 || row.NovaLits < 0 {
			t.Fatalf("degenerate row %+v", row)
		}
		if row.BestVariant == "" {
			t.Fatalf("%s: no winning variant recorded", row.Name)
		}
	}
	_ = FormatTableVII(rows)
}

func TestFigures(t *testing.T) {
	r := NewRunner(smallOpts())
	for i, fn := range []func() ([]RatioPoint, error){r.FigureVIII, r.FigureIX, r.FigureX} {
		pts, err := fn()
		if err != nil {
			t.Fatalf("figure %d: %v", i+8, err)
		}
		if len(pts) == 0 {
			t.Fatalf("figure %d: empty", i+8)
		}
		for j := 1; j < len(pts); j++ {
			if pts[j-1].States > pts[j].States {
				t.Fatalf("figure %d: not ordered by states", i+8)
			}
		}
		for _, p := range pts {
			for k, v := range p.Ratios {
				if v <= 0 {
					t.Fatalf("figure %d: ratio %s = %f", i+8, k, v)
				}
			}
		}
		if s := FormatFigure("T", pts); !strings.Contains(s, pts[0].Name) {
			t.Fatalf("figure %d: format missing rows", i+8)
		}
	}
}

func TestAblationWeightOrder(t *testing.T) {
	d, a, err := AblationWeightOrder(bench.Get("bbtas"))
	if err != nil {
		t.Fatal(err)
	}
	if d < 0 || a < 0 {
		t.Fatalf("negative weights d=%d a=%d", d, a)
	}
}

func TestRunOptsFiltering(t *testing.T) {
	opts := RunOpts{SkipHuge: true}
	for _, e := range opts.entries() {
		if e.Huge {
			t.Fatalf("huge entry %s not skipped", e.Name)
		}
	}
	opts = RunOpts{Only: []string{"bbtas"}}
	if got := opts.entries(); len(got) != 1 || got[0].Name != "bbtas" {
		t.Fatalf("Only filter wrong: %v", got)
	}
}
