package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nova"
)

// PhaseRow is the per-machine row of the phase table: total traced time
// plus the self-time of each pipeline stage, classified by span-name
// prefix (espresso.*, search.*, symbolic.*, mvmin.*, encode.preprocess;
// everything else — the nova.encode / nova.finish envelopes — lands in
// Other). Self times exclude nested child spans, so the stage columns
// partition Total up to clock skew.
type PhaseRow struct {
	Machine    string
	Total      time.Duration
	Preprocess time.Duration
	Espresso   time.Duration
	Search     time.Duration
	Symbolic   time.Duration
	Mvmin      time.Duration
	Other      time.Duration
	// A few headline counters for the table footer.
	Counters map[string]int64
}

// PhaseTable summarizes every machine tracer of an observing runner,
// sorted by machine name. It returns nil when the runner was built
// without RunOpts.Observe/TraceWriter.
func (r *Runner) PhaseTable() []PhaseRow {
	if !r.observing() {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.tracers))
	for n := range r.tracers {
		names = append(names, n)
	}
	tr := make(map[string]*nova.Tracer, len(r.tracers))
	for n, t := range r.tracers {
		tr[n] = t
	}
	r.mu.Unlock()
	sort.Strings(names)

	rows := make([]PhaseRow, 0, len(names))
	for _, n := range names {
		rows = append(rows, phaseRow(n, tr[n].Snapshot()))
	}
	return rows
}

func phaseRow(machine string, snap *nova.TelemetrySnapshot) PhaseRow {
	row := PhaseRow{Machine: machine, Total: snap.Root, Counters: snap.Counters}
	for _, p := range snap.Phases {
		switch {
		case strings.HasPrefix(p.Name, "encode.preprocess"):
			row.Preprocess += p.Self
		case strings.HasPrefix(p.Name, "espresso."):
			row.Espresso += p.Self
		case strings.HasPrefix(p.Name, "search."):
			row.Search += p.Self
		case strings.HasPrefix(p.Name, "symbolic."):
			row.Symbolic += p.Self
		case strings.HasPrefix(p.Name, "mvmin."):
			row.Mvmin += p.Self
		default:
			row.Other += p.Self
		}
	}
	return row
}

// FormatPhaseTable renders the rows as an aligned text table with a
// footer of aggregate counters (tautology memo hit rate, searcher
// backtracks and check satisfaction ratio, arena reuse, pool activity).
func FormatPhaseTable(rows []PhaseRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %10s %10s %10s %10s\n",
		"machine", "total", "preproc", "espresso", "search", "symbolic", "mvmin", "other")
	var sum PhaseRow
	agg := map[string]int64{}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10s %10s %10s %10s %10s %10s %10s\n",
			r.Machine, ms(r.Total), ms(r.Preprocess), ms(r.Espresso), ms(r.Search), ms(r.Symbolic), ms(r.Mvmin), ms(r.Other))
		sum.Total += r.Total
		sum.Preprocess += r.Preprocess
		sum.Espresso += r.Espresso
		sum.Search += r.Search
		sum.Symbolic += r.Symbolic
		sum.Mvmin += r.Mvmin
		sum.Other += r.Other
		for k, v := range r.Counters {
			agg[k] += v
		}
	}
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %10s %10s %10s %10s\n",
		"TOTAL", ms(sum.Total), ms(sum.Preprocess), ms(sum.Espresso), ms(sum.Search), ms(sum.Symbolic), ms(sum.Mvmin), ms(sum.Other))

	b.WriteString("\ncounters:\n")
	fmt.Fprintf(&b, "  espresso iterations      %d\n", agg["espresso.iterations"])
	fmt.Fprintf(&b, "  tautology calls          %d (memo hit rate %s)\n",
		agg["tautology.calls"], ratio(agg["tautology.memo_hits"], agg["tautology.memo_lookups"]))
	fmt.Fprintf(&b, "  arena gets               %d (reuse rate %s)\n",
		agg["arena.gets"], ratio(agg["arena.reuses"], agg["arena.gets"]))
	fmt.Fprintf(&b, "  searcher work            %d (backtracks %d)\n",
		agg["search.work"], agg["search.backtracks"])
	fmt.Fprintf(&b, "  search pruning           %d merged / %d symmetry pruned / memo hit rate %s\n",
		agg["search.constraints.merged"], agg["search.symmetry.pruned"],
		ratio(agg["search.memo.hit"], agg["search.memo.hit"]+agg["search.memo.miss"]))
	fmt.Fprintf(&b, "  face checks              %d ok / %d fail (satisfaction %s)\n",
		agg["search.checks_ok"], agg["search.checks_fail"],
		ratio(agg["search.checks_ok"], agg["search.checks_ok"]+agg["search.checks_fail"]))
	fmt.Fprintf(&b, "  pool tasks               %d spawned / %d inline\n",
		agg["pool.tasks"], agg["pool.inline"])
	var outcomes []string
	for k, v := range agg {
		if strings.HasPrefix(k, "algo.") {
			outcomes = append(outcomes, fmt.Sprintf("%s=%d", strings.TrimPrefix(k, "algo."), v))
		}
	}
	if len(outcomes) > 0 {
		sort.Strings(outcomes)
		fmt.Fprintf(&b, "  algorithm outcomes       %s\n", strings.Join(outcomes, " "))
	}
	return b.String()
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}

func ratio(num, den int64) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}
