// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VII): Tables I-VII and the plot series of Tables
// VIII-X. Each experiment takes the benchmark suite, runs the relevant
// encoders through the public nova API, and returns printable rows.
// Results are cached per (machine, algorithm, bits), so combined tables
// reuse work; the whole harness is deterministic.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"nova"
	"nova/internal/baseline"
	"nova/internal/bench"
	"nova/internal/constraint"
	"nova/internal/encode"
	"nova/internal/espresso"
	"nova/internal/kiss"
	"nova/internal/mlopt"
	"nova/internal/mvmin"
	"nova/internal/obs"
	"nova/internal/symbolic"
)

// RunOpts configures a harness run.
type RunOpts struct {
	// Ctx, when non-nil, cancels in-flight encodes between tables and
	// inside the searches; canceled runs surface the error of the
	// offending machine.
	Ctx context.Context
	// SkipHuge drops the time-intensive machines (scf, tbk).
	SkipHuge bool
	// Only restricts the run to the named machines (nil = all).
	Only []string
	// Seed drives the random baselines.
	Seed int64
	// FastMinimize uses the faster single-pass espresso loop.
	FastMinimize bool
	// ExactBudget bounds iexact's face-assignment attempts per machine.
	ExactBudget int
	// Parallel bounds worker goroutines (0 = GOMAXPROCS).
	Parallel int
	// Intra, when at least 2, turns on intra-problem parallelism inside
	// every encode (forked unate recursion in the minimizer, speculative
	// fan-out in the searches) with that worker bound. Results are
	// bit-identical to serial runs; see nova.Options.IntraParallelism.
	Intra int
	// Observe attaches a per-machine telemetry tracer to every encode, so
	// PhaseTable can report the espresso/search/symbolic time breakdown.
	Observe bool
	// TraceWriter, when non-nil (implies observation), additionally
	// streams every span of every machine as JSON lines, tagged with the
	// machine name in the "trace" field.
	TraceWriter io.Writer
}

func (o RunOpts) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

func (o RunOpts) entries() []bench.Entry {
	var out []bench.Entry
	want := map[string]bool{}
	for _, n := range o.Only {
		want[n] = true
	}
	for _, e := range bench.Suite() {
		if o.SkipHuge && e.Huge {
			continue
		}
		if len(want) > 0 && !want[e.Name] {
			continue
		}
		out = append(out, e)
	}
	return out
}

func (o RunOpts) tableI(list []bench.Entry) []bench.Entry {
	extras := map[string]bool{"lion": true, "lion9": true, "modulo12": true, "tav": true, "do1": true}
	var out []bench.Entry
	for _, e := range list {
		if !extras[e.Name] {
			out = append(out, e)
		}
	}
	return out
}

// Machines returns the benchmark machines this run covers (after the
// SkipHuge / Only filtering), in suite order.
func (o RunOpts) Machines() []*kiss.FSM {
	entries := o.entries()
	out := make([]*kiss.FSM, len(entries))
	for i, e := range entries {
		out[i] = e.F
	}
	return out
}

// Runner caches per-machine results across tables.
type Runner struct {
	Opts RunOpts
	mu   sync.Mutex
	memo map[string]*nova.Result
	// gaveUp marks memo keys whose run ended in ErrGaveUp: the memoized
	// Result is the partial one and the tables render a "-" entry.
	gaveUp map[string]bool

	// Per-machine tracers (observing runs only), plus the shared
	// line-locked trace writer they stream to.
	tracers map[string]*nova.Tracer
	traceW  io.Writer
}

// NewRunner returns a caching harness runner.
func NewRunner(opts RunOpts) *Runner {
	r := &Runner{Opts: opts, memo: map[string]*nova.Result{}, gaveUp: map[string]bool{}}
	if opts.Observe || opts.TraceWriter != nil {
		r.tracers = map[string]*nova.Tracer{}
		if opts.TraceWriter != nil {
			r.traceW = obs.LockedWriter(opts.TraceWriter)
		}
	}
	return r
}

// observing reports whether this runner attaches tracers to its encodes.
func (r *Runner) observing() bool { return r.tracers != nil }

// tracerFor returns (creating on first use) the tracer of one machine.
func (r *Runner) tracerFor(name string) *nova.Tracer {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.tracers[name]; ok {
		return t
	}
	t := nova.NewTracer()
	t.SetLabel(name)
	if r.traceW != nil {
		t.SetWriter(r.traceW)
	}
	r.tracers[name] = t
	return t
}

func (o RunOpts) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o RunOpts) novaOptions(alg nova.Algorithm, bits int) nova.Options {
	return nova.Options{
		Algorithm:    alg,
		Bits:         bits,
		Seed:         o.Seed,
		FastMinimize: o.FastMinimize,
		MaxWork:      exactWorkFor(alg, o),
		// The harness already fans out across machines (forEach), so
		// each encode runs serially to keep the total worker count at
		// RunOpts.Parallel. Intra-problem parallelism, when requested,
		// widens the per-encode pool from the inside instead.
		Parallelism:      1,
		IntraParallelism: o.Intra,
	}
}

// Run returns the (cached) result of one algorithm on one machine. An
// iexact give-up is not an error here: the partial result is cached and
// returned (with the give-up recorded in the runner) so the tables can
// render their "-" entries.
func (r *Runner) Run(f *kiss.FSM, alg nova.Algorithm, bits int) (*nova.Result, error) {
	k := fmt.Sprintf("%s/%s/%d", f.Name, alg, bits)
	r.mu.Lock()
	if res, ok := r.memo[k]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()
	opt := r.Opts.novaOptions(alg, bits)
	if r.observing() {
		opt.Tracer = r.tracerFor(f.Name)
	}
	res, err := nova.EncodeContext(r.Opts.ctx(), f, opt)
	if err != nil && !errors.Is(err, nova.ErrGaveUp) {
		return nil, err
	}
	r.mu.Lock()
	r.memo[k] = res
	if err != nil {
		r.gaveUp[k] = true
	}
	r.mu.Unlock()
	return res, nil
}

// gaveUpAt reports whether the memoized run of (machine, algorithm,
// bits) ended in ErrGaveUp.
func (r *Runner) gaveUpAt(name string, alg nova.Algorithm, bits int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gaveUp[fmt.Sprintf("%s/%s/%d", name, alg, bits)]
}

// Memoized returns the cached result of (machine, algorithm, bits) from
// an earlier Run/Prewarm, or nil — the hook the machine-readable
// reporters (novabench -json) use to serialize already-computed results
// through the wire types without re-encoding.
func (r *Runner) Memoized(name string, alg nova.Algorithm, bits int) *nova.Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.memo[fmt.Sprintf("%s/%s/%d", name, alg, bits)]
}

// Prewarm encodes every benchmark machine of the run with each of the
// given algorithms through the batch API, filling the cache so the table
// builders afterwards only read memoized results. Per-machine failures
// (EncodeAll's partial-results contract: a gave-up or unencodable
// machine) leave that machine to the per-table path; only cancellation
// aborts the prewarm.
func (r *Runner) Prewarm(ctx context.Context, algs ...nova.Algorithm) error {
	entries := r.Opts.entries()
	if r.observing() {
		// Per-machine tracers need per-machine EncodeContext calls: the
		// batch API would record the whole sweep under one tracer and
		// blur the attribution PhaseTable depends on. Fan out with the
		// same worker bound instead.
		for _, alg := range algs {
			if _, err := forEach(entries, r.Opts.workers(), func(e bench.Entry) (struct{}, error) {
				_, err := r.Run(e.F, alg, 0)
				return struct{}{}, err
			}); err != nil {
				return err
			}
		}
		return nil
	}
	fsms := make([]*kiss.FSM, len(entries))
	for i, e := range entries {
		fsms[i] = e.F
	}
	for _, alg := range algs {
		opt := r.Opts.novaOptions(alg, 0)
		opt.Parallelism = r.Opts.Parallel
		results, err := nova.EncodeAll(ctx, fsms, opt)
		if err != nil && errors.Is(err, nova.ErrCanceled) {
			return err
		}
		// Attribute give-ups machine by machine: EncodeAll wraps each
		// per-machine error with the machine's name, so a gave-up partial
		// result is memoized with its flag and the tables still render
		// "-" for it.
		var branches []error
		if u, ok := err.(interface{ Unwrap() []error }); ok {
			branches = u.Unwrap()
		} else if err != nil {
			branches = []error{err}
		}
		gaveUp := func(name string) bool {
			for _, b := range branches {
				if errors.Is(b, nova.ErrGaveUp) && strings.HasPrefix(b.Error(), name+": ") {
					return true
				}
			}
			return false
		}
		r.mu.Lock()
		for i, res := range results {
			if res != nil {
				k := fmt.Sprintf("%s/%s/%d", fsms[i].Name, alg, 0)
				r.memo[k] = res
				if gaveUp(fsms[i].Name) {
					r.gaveUp[k] = true
				}
			}
		}
		r.mu.Unlock()
	}
	return nil
}

func exactWorkFor(alg nova.Algorithm, o RunOpts) int {
	if alg == nova.IExact && o.ExactBudget > 0 {
		return o.ExactBudget
	}
	return 0
}

// forEach runs fn over the entries with bounded parallelism, preserving
// order in the output slice; the first error aborts.
func forEach[T any](list []bench.Entry, workers int, fn func(bench.Entry) (T, error)) ([]T, error) {
	out := make([]T, len(list))
	errs := make([]error, len(list))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, e := range list {
		wg.Add(1)
		go func(i int, e bench.Entry) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = fn(e)
		}(i, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ---------------------------------------------------------------- Table I

// StatRow is one row of Table I.
type StatRow struct {
	Name                                   string
	Inputs, SymIns, Outputs, States, Terms int
}

// TableI returns the benchmark statistics.
func (r *Runner) TableI() []StatRow {
	var rows []StatRow
	for _, e := range r.Opts.tableI(r.Opts.entries()) {
		st := e.F.Stats()
		rows = append(rows, StatRow{e.Name, st.Inputs, st.SymIns, st.Outputs, st.States, st.Terms})
	}
	return rows
}

// FormatTableI renders Table I.
func FormatTableI(rows []StatRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE I — STATISTICS OF BENCHMARK EXAMPLES\n")
	fmt.Fprintf(&b, "%-10s %6s %7s %8s %7s %7s\n", "EXAMPLE", "#in", "#symin", "#out", "#states", "#terms")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %6d %7d %8d %7d %7d\n", r.Name, r.Inputs, r.SymIns, r.Outputs, r.States, r.Terms)
	}
	return b.String()
}

// --------------------------------------------------------------- Table II

// Cell is one algorithm's outcome on one machine.
type Cell struct {
	Bits, Cubes, Area int
	GaveUp            bool
}

func cell(res *nova.Result) Cell {
	return Cell{Bits: res.Bits, Cubes: res.Cubes, Area: res.Area}
}

// RowII is one row of Table II.
type RowII struct {
	Name                     string
	IExact, IHybrid, IGreedy Cell
	OneHotCubes              int
}

// TableII compares iexact, ihybrid and igreedy, with the 1-hot product-term
// count as reference.
func (r *Runner) TableII() ([]RowII, error) {
	return forEach(r.Opts.tableI(r.Opts.entries()), r.Opts.workers(), func(e bench.Entry) (RowII, error) {
		row := RowII{Name: e.Name}
		ex, err := r.Run(e.F, nova.IExact, 0)
		if err != nil {
			return row, err
		}
		row.IExact = cell(ex)
		row.IExact.GaveUp = r.gaveUpAt(e.F.Name, nova.IExact, 0)
		hy, err := r.Run(e.F, nova.IHybrid, 0)
		if err != nil {
			return row, err
		}
		row.IHybrid = cell(hy)
		gr, err := r.Run(e.F, nova.IGreedy, 0)
		if err != nil {
			return row, err
		}
		row.IGreedy = cell(gr)
		row.OneHotCubes, err = r.oneHotCubes(e.F)
		if err != nil {
			return row, err
		}
		return row, nil
	})
}

// oneHotCubes returns the product-term cardinality of the 1-hot encoding:
// the cardinality of the minimized multiple-valued cover, which equals the
// minimized 1-hot PLA's and is computable for any state count (the 121-
// state scf exceeds the 64-bit code words an explicit 1-hot would need).
func (r *Runner) oneHotCubes(f *kiss.FSM) (int, error) {
	k := f.Name + "/onehot-cubes"
	r.mu.Lock()
	if res, ok := r.memo[k]; ok {
		r.mu.Unlock()
		return res.Cubes, nil
	}
	r.mu.Unlock()
	p, err := mvmin.Build(f)
	if err != nil {
		return 0, err
	}
	cubes := p.OneHotCubes(espresso.Options{SkipReduce: r.Opts.FastMinimize})
	r.mu.Lock()
	r.memo[k] = &nova.Result{Cubes: cubes}
	r.mu.Unlock()
	return cubes, nil
}

// FormatTableII renders Table II.
func FormatTableII(rows []RowII) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE II — COMPARISONS OF iexact, ihybrid, igreedy\n")
	fmt.Fprintf(&b, "%-10s | %5s %6s %6s | %5s %6s %6s | %5s %6s %6s | %6s\n",
		"EXAMPLE", "bits", "cubes", "area", "bits", "cubes", "area", "bits", "cubes", "area", "1-hot")
	fmt.Fprintf(&b, "%-10s | %19s | %19s | %19s |\n", "", "iexact", "ihybrid", "igreedy")
	for _, r := range rows {
		ex := fmt.Sprintf("%5d %6d %6d", r.IExact.Bits, r.IExact.Cubes, r.IExact.Area)
		if r.IExact.GaveUp {
			ex = fmt.Sprintf("%5s %6s %6s", "-", "-", "-")
		}
		fmt.Fprintf(&b, "%-10s | %s | %5d %6d %6d | %5d %6d %6d | %6d\n",
			r.Name, ex,
			r.IHybrid.Bits, r.IHybrid.Cubes, r.IHybrid.Area,
			r.IGreedy.Bits, r.IGreedy.Cubes, r.IGreedy.Area,
			r.OneHotCubes)
	}
	return b.String()
}

// -------------------------------------------------------------- Table III

// RowIII is one row of Table III.
type RowIII struct {
	Name           string
	NovaIH         Cell // best of ihybrid/igreedy
	KISS           Cell
	RandomBestArea int
	RandomAvgArea  int
}

// TableIII compares best-of(ihybrid, igreedy) with KISS and random
// assignments.
func (r *Runner) TableIII() ([]RowIII, error) {
	return forEach(r.Opts.tableI(r.Opts.entries()), r.Opts.workers(), func(e bench.Entry) (RowIII, error) {
		row := RowIII{Name: e.Name}
		hy, err := r.Run(e.F, nova.IHybrid, 0)
		if err != nil {
			return row, err
		}
		gr, err := r.Run(e.F, nova.IGreedy, 0)
		if err != nil {
			return row, err
		}
		row.NovaIH = cell(hy)
		if gr.Area < hy.Area {
			row.NovaIH = cell(gr)
		}
		ki, err := r.Run(e.F, nova.KISS, 0)
		if err != nil {
			return row, err
		}
		row.KISS = cell(ki)
		rd, err := r.Run(e.F, nova.Random, 0)
		if err != nil {
			return row, err
		}
		row.RandomBestArea = rd.Area
		row.RandomAvgArea = rd.RandomAvgArea
		return row, nil
	})
}

// FormatTableIII renders Table III with the paper's TOTAL/% footer.
func FormatTableIII(rows []RowIII) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE III — COMPARISONS OF ihybrid/igreedy WITH KISS AND RANDOM\n")
	fmt.Fprintf(&b, "%-10s | %5s %6s %6s | %5s %6s %6s | %9s %9s\n",
		"EXAMPLE", "bits", "cubes", "area", "bits", "cubes", "area", "rnd-best", "rnd-avg")
	fmt.Fprintf(&b, "%-10s | %19s | %19s |\n", "", "ihybrid/igreedy", "KISS-style")
	tn, tk, tb, ta := 0, 0, 0, 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s | %5d %6d %6d | %5d %6d %6d | %9d %9d\n",
			r.Name, r.NovaIH.Bits, r.NovaIH.Cubes, r.NovaIH.Area,
			r.KISS.Bits, r.KISS.Cubes, r.KISS.Area,
			r.RandomBestArea, r.RandomAvgArea)
		tn += r.NovaIH.Area
		tk += r.KISS.Area
		tb += r.RandomBestArea
		ta += r.RandomAvgArea
	}
	fmt.Fprintf(&b, "%-10s | %12s %6d | %12s %6d | %9d %9d\n", "TOTAL", "", tn, "", tk, tb, ta)
	if tb > 0 {
		fmt.Fprintf(&b, "%-10s | %12s %5d%% | %12s %5d%% | %8d%% %8d%%\n", "%", "",
			100*tn/tb, "", 100*tk/tb, 100, 100*ta/tb)
	}
	return b.String()
}

// -------------------------------------------------------------- Table IV

// RowIV is one row of Table IV.
type RowIV struct {
	Name           string
	IOHybrid       Cell
	NovaIH         Cell // best of ihybrid/igreedy
	NovaBest       Cell // best of all NOVA algorithms
	RandomBestArea int
	RandomAvgArea  int
}

// TableIV compares iohybrid, ihybrid/igreedy and best-of-NOVA with random.
func (r *Runner) TableIV() ([]RowIV, error) {
	return forEach(r.Opts.tableI(r.Opts.entries()), r.Opts.workers(), func(e bench.Entry) (RowIV, error) {
		row := RowIV{Name: e.Name}
		io, err := r.Run(e.F, nova.IOHybrid, 0)
		if err != nil {
			return row, err
		}
		row.IOHybrid = cell(io)
		hy, err := r.Run(e.F, nova.IHybrid, 0)
		if err != nil {
			return row, err
		}
		gr, err := r.Run(e.F, nova.IGreedy, 0)
		if err != nil {
			return row, err
		}
		row.NovaIH = cell(hy)
		if gr.Area < hy.Area {
			row.NovaIH = cell(gr)
		}
		row.NovaBest = row.NovaIH
		if row.IOHybrid.Area < row.NovaBest.Area {
			row.NovaBest = row.IOHybrid
		}
		rd, err := r.Run(e.F, nova.Random, 0)
		if err != nil {
			return row, err
		}
		row.RandomBestArea = rd.Area
		row.RandomAvgArea = rd.RandomAvgArea
		return row, nil
	})
}

// FormatTableIV renders Table IV.
func FormatTableIV(rows []RowIV) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE IV — COMPARISONS OF iohybrid, ihybrid/igreedy, BEST OF NOVA WITH RANDOM\n")
	fmt.Fprintf(&b, "%-10s | %5s %6s %6s | %5s %6s %6s | %5s %6s %6s | %9s %9s\n",
		"EXAMPLE", "bits", "cubes", "area", "bits", "cubes", "area", "bits", "cubes", "area", "rnd-best", "rnd-avg")
	fmt.Fprintf(&b, "%-10s | %19s | %19s | %19s |\n", "", "iohybrid", "ihybrid/igreedy", "NOVA best")
	tio, tih, tbest, trb, tra := 0, 0, 0, 0, 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s | %5d %6d %6d | %5d %6d %6d | %5d %6d %6d | %9d %9d\n",
			r.Name, r.IOHybrid.Bits, r.IOHybrid.Cubes, r.IOHybrid.Area,
			r.NovaIH.Bits, r.NovaIH.Cubes, r.NovaIH.Area,
			r.NovaBest.Bits, r.NovaBest.Cubes, r.NovaBest.Area,
			r.RandomBestArea, r.RandomAvgArea)
		tio += r.IOHybrid.Area
		tih += r.NovaIH.Area
		tbest += r.NovaBest.Area
		trb += r.RandomBestArea
		tra += r.RandomAvgArea
	}
	fmt.Fprintf(&b, "%-10s | %12s %6d | %12s %6d | %12s %6d | %9d %9d\n", "TOTAL", "", tio, "", tih, "", tbest, trb, tra)
	if trb > 0 {
		fmt.Fprintf(&b, "%-10s | %12s %5d%% | %12s %5d%% | %12s %5d%% | %8d%% %8d%%\n", "%", "",
			100*tio/trb, "", 100*tih/trb, "", 100*tbest/trb, 100, 100*tra/trb)
	}
	return b.String()
}

// --------------------------------------------------------------- Table V

// RowV is one row of Table V.
type RowV struct {
	Name     string
	IOHybrid Cell
	Cream    Cell
}

// TableV compares iohybrid with the Cappuccino/Cream-style baseline on the
// Table V subset.
func (r *Runner) TableV() ([]RowV, error) {
	var list []bench.Entry
	for _, e := range r.Opts.entries() {
		if e.TableV {
			list = append(list, e)
		}
	}
	return forEach(list, r.Opts.workers(), func(e bench.Entry) (RowV, error) {
		row := RowV{Name: e.Name}
		io, err := r.Run(e.F, nova.IOHybrid, 0)
		if err != nil {
			return row, err
		}
		row.IOHybrid = cell(io)
		cr, err := creamResult(e.F, r.Opts)
		if err != nil {
			return row, err
		}
		row.Cream = cr
		return row, nil
	})
}

// FormatTableV renders Table V.
func FormatTableV(rows []RowV) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE V — COMPARISONS OF iohybrid WITH CAPPUCCINO/CREAM (stand-in)\n")
	fmt.Fprintf(&b, "%-10s | %5s %6s %6s | %5s %6s %6s\n",
		"EXAMPLE", "bits", "cubes", "area", "bits", "cubes", "area")
	fmt.Fprintf(&b, "%-10s | %19s | %19s\n", "", "iohybrid", "cream-style")
	ti, tc := 0, 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s | %5d %6d %6d | %5d %6d %6d\n",
			r.Name, r.IOHybrid.Bits, r.IOHybrid.Cubes, r.IOHybrid.Area,
			r.Cream.Bits, r.Cream.Cubes, r.Cream.Area)
		ti += r.IOHybrid.Area
		tc += r.Cream.Area
	}
	fmt.Fprintf(&b, "%-10s | %12s %6d | %12s %6d\n", "TOTAL", "", ti, "", tc)
	if tc > 0 {
		fmt.Fprintf(&b, "%-10s | %12s %5d%% | %12s %5d%%\n", "%", "", 100*ti/tc, "", 100)
	}
	return b.String()
}

// --------------------------------------------------------------- Table VI

// RowVI is one row of Table VI: ihybrid statistics.
type RowVI struct {
	Name         string
	WSat, WUnsat int
	CLength      int // length at which ihybrid satisfies every constraint
	ExCLength    int // iexact's minimum length (-1 when it gave up)
	Millis       int64
}

// TableVI reports the ihybrid statistics (satisfied/unsatisfied constraint
// weight at minimum length, full-satisfaction length, exact length, time).
func (r *Runner) TableVI() ([]RowVI, error) {
	return forEach(r.Opts.tableI(r.Opts.entries()), r.Opts.workers(), func(e bench.Entry) (RowVI, error) {
		row := RowVI{Name: e.Name}
		p, err := mvmin.Build(e.F)
		if err != nil {
			return row, err
		}
		cs := p.Constraints(p.Minimize(espresso.Options{SkipReduce: r.Opts.FastMinimize}))
		// Time a fresh minimum-length ihybrid encoding run (the paper's
		// "time" column measures the encoding step).
		start := time.Now()
		hy := encode.IHybrid(e.F.NumStates(), cs.States, 0, encode.HybridOptions{Seed: r.Opts.Seed})
		row.Millis = time.Since(start).Milliseconds()
		row.WSat, row.WUnsat = hy.WSat, hy.WUnsat
		// Full satisfaction length: ihybrid with #bits = #states.
		full := encode.IHybrid(e.F.NumStates(), cs.States, e.F.NumStates(), encode.HybridOptions{Seed: r.Opts.Seed})
		row.CLength = full.Enc.Bits
		ex, err := r.Run(e.F, nova.IExact, 0)
		if err != nil {
			return row, err
		}
		if r.gaveUpAt(e.F.Name, nova.IExact, 0) {
			row.ExCLength = -1
		} else {
			row.ExCLength = ex.Assignment.States.Bits
		}
		return row, nil
	})
}

// FormatTableVI renders Table VI.
func FormatTableVI(rows []RowVI) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE VI — STATISTICS OF ihybrid\n")
	fmt.Fprintf(&b, "%-10s %6s %7s %8s %11s %9s\n", "EXAMPLE", "wsat", "wunsat", "clength", "ex-clength", "time(ms)")
	for _, r := range rows {
		ex := fmt.Sprintf("%d", r.ExCLength)
		if r.ExCLength < 0 {
			ex = "?"
		}
		fmt.Fprintf(&b, "%-10s %6d %7d %8d %11s %9d\n", r.Name, r.WSat, r.WUnsat, r.CLength, ex, r.Millis)
	}
	return b.String()
}

// -------------------------------------------------------------- Table VII

// RowVII is one row of Table VII.
type RowVII struct {
	Name         string
	MustangCubes int // best (minimum) over -p/-n/-pt/-nt
	NovaCubes    int // best NOVA two-level result at minimum length
	MustangLits  int // best multilevel literals over the four variants
	NovaLits     int // literals of the best NOVA two-level result
	RandomLits   int // literals of the best-area random assignment
	BestVariant  string
}

// TableVII compares MUSTANG and NOVA in two-level cubes and multilevel
// factored literals, with the random baseline's literals.
func (r *Runner) TableVII() ([]RowVII, error) {
	return forEach(r.Opts.tableI(r.Opts.entries()), r.Opts.workers(), func(e bench.Entry) (RowVII, error) {
		row := RowVII{Name: e.Name, MustangCubes: 1 << 30, MustangLits: 1 << 30}
		variants := []nova.Algorithm{nova.MustangP, nova.MustangN, nova.MustangPT, nova.MustangNT}
		for _, v := range variants {
			res, err := r.Run(e.F, v, 0)
			if err != nil {
				return row, err
			}
			if res.Cubes < row.MustangCubes {
				row.MustangCubes = res.Cubes
				row.BestVariant = string(v)
			}
			lits, err := literalsOf(e.F, res, r.Opts)
			if err != nil {
				return row, err
			}
			if lits < row.MustangLits {
				row.MustangLits = lits
			}
		}
		best, err := r.Run(e.F, nova.Best, 0)
		if err != nil {
			return row, err
		}
		row.NovaCubes = best.Cubes
		row.NovaLits, err = literalsOf(e.F, best, r.Opts)
		if err != nil {
			return row, err
		}
		rd, err := r.Run(e.F, nova.Random, 0)
		if err != nil {
			return row, err
		}
		row.RandomLits, err = literalsOf(e.F, rd, r.Opts)
		if err != nil {
			return row, err
		}
		return row, nil
	})
}

// FormatTableVII renders Table VII with the TOTAL/% footer.
func FormatTableVII(rows []RowVII) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE VII — TWO-LEVEL AND MULTILEVEL RESULTS OF MUSTANG AND NOVA\n")
	fmt.Fprintf(&b, "%-10s %9s %9s %9s %9s %9s\n", "EXAMPLE", "MUS#cube", "NOVA#cube", "MUS#lit", "NOVA#lit", "RND#lit")
	tmc, tnc, tml, tnl, trl := 0, 0, 0, 0, 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %9d %9d %9d %9d %9d\n",
			r.Name, r.MustangCubes, r.NovaCubes, r.MustangLits, r.NovaLits, r.RandomLits)
		tmc += r.MustangCubes
		tnc += r.NovaCubes
		tml += r.MustangLits
		tnl += r.NovaLits
		trl += r.RandomLits
	}
	fmt.Fprintf(&b, "%-10s %9d %9d %9d %9d %9d\n", "TOTAL", tmc, tnc, tml, tnl, trl)
	if tnc > 0 && tnl > 0 {
		fmt.Fprintf(&b, "%-10s %8d%% %8d%% %8d%% %8d%% %8d%%\n", "%",
			100*tmc/tnc, 100, 100*tml/tnl, 100, 100*trl/tnl)
	}
	return b.String()
}

// ------------------------------------------------------ Figures VIII/IX/X

// RatioPoint is one x-axis point of the plot tables: ratios over the best
// NOVA area, examples ordered by increasing state count.
type RatioPoint struct {
	Name   string
	States int
	Ratios map[string]float64
}

// FigureVIII returns the KISS/NOVA and best-random/NOVA area ratio series.
func (r *Runner) FigureVIII() ([]RatioPoint, error) {
	return r.ratioSeries(func(e bench.Entry, novaArea int) (map[string]float64, error) {
		ki, err := r.Run(e.F, nova.KISS, 0)
		if err != nil {
			return nil, err
		}
		rd, err := r.Run(e.F, nova.Random, 0)
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"KISS/NOVA":   float64(ki.Area) / float64(novaArea),
			"Random/NOVA": float64(rd.Area) / float64(novaArea),
		}, nil
	})
}

// FigureIX returns the ihybrid/NOVA and iohybrid/NOVA area ratio series.
func (r *Runner) FigureIX() ([]RatioPoint, error) {
	return r.ratioSeries(func(e bench.Entry, novaArea int) (map[string]float64, error) {
		hy, err := r.Run(e.F, nova.IHybrid, 0)
		if err != nil {
			return nil, err
		}
		gr, err := r.Run(e.F, nova.IGreedy, 0)
		if err != nil {
			return nil, err
		}
		io, err := r.Run(e.F, nova.IOHybrid, 0)
		if err != nil {
			return nil, err
		}
		ih := hy.Area
		if gr.Area < ih {
			ih = gr.Area
		}
		return map[string]float64{
			"Ihybrid/Nova":  float64(ih) / float64(novaArea),
			"Iohybrid/Nova": float64(io.Area) / float64(novaArea),
		}, nil
	})
}

// FigureX returns the MUSTANG/NOVA cube and literal ratio series.
func (r *Runner) FigureX() ([]RatioPoint, error) {
	rows, err := r.TableVII()
	if err != nil {
		return nil, err
	}
	byName := map[string]RowVII{}
	for _, row := range rows {
		byName[row.Name] = row
	}
	var pts []RatioPoint
	for _, e := range r.Opts.tableI(r.Opts.entries()) {
		row, ok := byName[e.Name]
		if !ok || row.NovaCubes == 0 || row.NovaLits == 0 {
			continue
		}
		pts = append(pts, RatioPoint{
			Name:   e.Name,
			States: e.F.NumStates(),
			Ratios: map[string]float64{
				"MUSTANG/NOVA cubes":    float64(row.MustangCubes) / float64(row.NovaCubes),
				"MUSTANG/NOVA literals": float64(row.MustangLits) / float64(row.NovaLits),
			},
		})
	}
	sortPoints(pts)
	return pts, nil
}

func (r *Runner) ratioSeries(fn func(e bench.Entry, novaArea int) (map[string]float64, error)) ([]RatioPoint, error) {
	pts, err := forEach(r.Opts.tableI(r.Opts.entries()), r.Opts.workers(), func(e bench.Entry) (RatioPoint, error) {
		best, err := r.Run(e.F, nova.Best, 0)
		if err != nil {
			return RatioPoint{}, err
		}
		ratios, err := fn(e, best.Area)
		if err != nil {
			return RatioPoint{}, err
		}
		return RatioPoint{Name: e.Name, States: e.F.NumStates(), Ratios: ratios}, nil
	})
	if err != nil {
		return nil, err
	}
	sortPoints(pts)
	return pts, nil
}

func sortPoints(pts []RatioPoint) {
	sort.SliceStable(pts, func(i, j int) bool {
		if pts[i].States != pts[j].States {
			return pts[i].States < pts[j].States
		}
		return pts[i].Name < pts[j].Name
	})
}

// FormatFigure renders a ratio-series plot table.
func FormatFigure(title string, pts []RatioPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (examples by increasing #states; ratios over best NOVA)\n", title)
	if len(pts) == 0 {
		return b.String()
	}
	var series []string
	for k := range pts[0].Ratios {
		series = append(series, k)
	}
	sort.Strings(series)
	fmt.Fprintf(&b, "%-10s %7s", "EXAMPLE", "#states")
	for _, s := range series {
		fmt.Fprintf(&b, " %22s", s)
	}
	fmt.Fprintln(&b)
	for _, p := range pts {
		fmt.Fprintf(&b, "%-10s %7d", p.Name, p.States)
		for _, s := range series {
			fmt.Fprintf(&b, " %22.2f", p.Ratios[s])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// ----------------------------------------------------------------- shared

// literalsOf runs the multilevel stand-in on the minimized encoded cover.
func literalsOf(f *kiss.FSM, res *nova.Result, opts RunOpts) (int, error) {
	e, err := mvmin.EncodePLA(f, res.Assignment)
	if err != nil {
		return 0, err
	}
	min := e.Minimize(espresso.Options{SkipReduce: opts.FastMinimize})
	return mlopt.OptimizedLiterals(min, e.NIn, mlopt.Options{}), nil
}

// creamResult measures the Cappuccino/Cream-style baseline.
func creamResult(f *kiss.FSM, opts RunOpts) (Cell, error) {
	asg, err := baseline.Cream(f, symbolic.Options{Min: espresso.Options{SkipReduce: opts.FastMinimize}})
	if err != nil {
		return Cell{}, err
	}
	m, err := mvmin.Measure(f, asg, espresso.Options{SkipReduce: opts.FastMinimize})
	if err != nil {
		return Cell{}, err
	}
	return Cell{Bits: m.Bits, Cubes: m.Cubes, Area: m.Area}, nil
}

// Ablations (design choices called out in DESIGN.md).

// AblationWeightOrder compares ihybrid's decreasing-weight constraint
// acceptance against increasing-weight order on one machine, returning the
// satisfied weights (decreasing first).
func AblationWeightOrder(f *kiss.FSM) (desc, asc int, err error) {
	p, err := mvmin.Build(f)
	if err != nil {
		return 0, 0, err
	}
	cs := p.Constraints(p.Minimize(espresso.Options{}))
	ics := constraint.Normalize(cs.States)
	rd := encode.IHybrid(f.NumStates(), ics, 0, encode.HybridOptions{})
	// Reverse order: invert weights, then restore for scoring.
	rev := make([]constraint.Constraint, len(ics))
	for i := range ics {
		rev[i] = ics[len(ics)-1-i]
	}
	ra := ihybridInOrder(f.NumStates(), rev, ics)
	return rd.WSat, ra, nil
}

// ihybridInOrder runs the ihybrid acceptance loop over a fixed order and
// scores against the true weights.
func ihybridInOrder(n int, order, score []constraint.Constraint) int {
	var sic []constraint.Constraint
	cube := encode.MinLength(n)
	var enc = encode.IHybrid(n, nil, 0, encode.HybridOptions{}).Enc
	for _, ic := range order {
		r := encode.IHybrid(n, append(append([]constraint.Constraint(nil), sic...), ic), cube, encode.HybridOptions{})
		if r.WUnsat == 0 {
			sic = append(sic, ic)
			enc = r.Enc
		}
	}
	w := 0
	for _, ic := range score {
		if encode.Satisfied(enc, ic.Set) {
			w += ic.Weight
		}
	}
	return w
}
