package experiments

import (
	"strings"
	"testing"
)

// Formatting tests: the table renderers must produce the paper's footers
// and stable column layout without running the pipeline.

func TestFormatTableIIIFooter(t *testing.T) {
	rows := []RowIII{
		{Name: "a", NovaIH: Cell{Bits: 3, Cubes: 10, Area: 100}, KISS: Cell{Bits: 5, Cubes: 11, Area: 200}, RandomBestArea: 150, RandomAvgArea: 180},
		{Name: "b", NovaIH: Cell{Bits: 4, Cubes: 20, Area: 300}, KISS: Cell{Bits: 6, Cubes: 22, Area: 400}, RandomBestArea: 350, RandomAvgArea: 420},
	}
	out := FormatTableIII(rows)
	if !strings.Contains(out, "TOTAL") || !strings.Contains(out, "%") {
		t.Fatalf("footer missing:\n%s", out)
	}
	// NOVA total 400 over random best 500 = 80%.
	if !strings.Contains(out, "80%") {
		t.Fatalf("percentage wrong:\n%s", out)
	}
	if !strings.Contains(out, "120%") { // KISS 600/500
		t.Fatalf("KISS percentage wrong:\n%s", out)
	}
}

func TestFormatTableIVFooter(t *testing.T) {
	rows := []RowIV{{
		Name:           "a",
		IOHybrid:       Cell{Bits: 3, Cubes: 9, Area: 90},
		NovaIH:         Cell{Bits: 3, Cubes: 10, Area: 100},
		NovaBest:       Cell{Bits: 3, Cubes: 9, Area: 90},
		RandomBestArea: 120, RandomAvgArea: 130,
	}}
	out := FormatTableIV(rows)
	if !strings.Contains(out, "75%") { // 90/120
		t.Fatalf("iohybrid percentage wrong:\n%s", out)
	}
}

func TestFormatTableIIGaveUpDash(t *testing.T) {
	rows := []RowII{{
		Name:        "x",
		IExact:      Cell{GaveUp: true},
		IHybrid:     Cell{Bits: 3, Cubes: 5, Area: 50},
		IGreedy:     Cell{Bits: 3, Cubes: 6, Area: 60},
		OneHotCubes: 7,
	}}
	out := FormatTableII(rows)
	if !strings.Contains(out, "-") {
		t.Fatalf("gave-up dash missing:\n%s", out)
	}
}

func TestFormatTableVI(t *testing.T) {
	rows := []RowVI{{Name: "m", WSat: 5, WUnsat: 2, CLength: 6, ExCLength: -1, Millis: 42}}
	out := FormatTableVI(rows)
	if !strings.Contains(out, "?") {
		t.Fatalf("unknown exact length must render as ?:\n%s", out)
	}
	if !strings.Contains(out, "42") {
		t.Fatalf("time column missing:\n%s", out)
	}
}

func TestFormatFigureEmpty(t *testing.T) {
	if out := FormatFigure("T", nil); !strings.Contains(out, "T") {
		t.Fatalf("title missing: %q", out)
	}
}

func TestFormatTableVFooter(t *testing.T) {
	rows := []RowV{
		{Name: "a", IOHybrid: Cell{Area: 70}, Cream: Cell{Area: 100}},
	}
	out := FormatTableV(rows)
	if !strings.Contains(out, "70%") {
		t.Fatalf("percentage wrong:\n%s", out)
	}
}

func TestFormatTableVIIFooter(t *testing.T) {
	rows := []RowVII{
		{Name: "a", MustangCubes: 12, NovaCubes: 10, MustangLits: 22, NovaLits: 20, RandomLits: 26},
	}
	out := FormatTableVII(rows)
	if !strings.Contains(out, "120%") || !strings.Contains(out, "130%") {
		t.Fatalf("percentages wrong:\n%s", out)
	}
}
