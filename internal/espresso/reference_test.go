package espresso

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nova/internal/cube"
)

// Differential suite: the heuristic minimizer is checked, on a large batch
// of random small multiple-valued functions, against an independent
// truth-table reference (pure minterm enumeration with single-cube
// containment only — none of the unate-recursion machinery under test) and
// against the exact Quine-McCluskey-style minimizer of exact.go. A
// function is kept small (total parts <= 10), so its minterm space is
// enumerable in microseconds.

// refFunc is one randomly drawn function: structure, on-set, don't-cares.
type refFunc struct {
	s      *cube.Structure
	on, dc *cube.Cover
}

// randRefFunc draws a random function with 2-3 variables of 2-4 parts
// each, at most 10 parts total.
func randRefFunc(rng *rand.Rand) refFunc {
	for {
		nv := 2 + rng.Intn(2)
		sizes := make([]int, nv)
		total := 0
		for i := range sizes {
			sizes[i] = 2 + rng.Intn(3)
			total += sizes[i]
		}
		if total > 10 {
			continue
		}
		s := cube.NewStructure(sizes...)
		on := cube.NewCover(s)
		for i, n := 0, 1+rng.Intn(6); i < n; i++ {
			on.Add(randRefCube(rng, s))
		}
		dc := cube.NewCover(s)
		for i, n := 0, rng.Intn(3); i < n; i++ {
			dc.Add(randRefCube(rng, s))
		}
		return refFunc{s, on, dc}
	}
}

// randRefCube draws a non-empty cube: each part set with probability 1/2,
// every variable forced to keep at least one part.
func randRefCube(rng *rand.Rand, s *cube.Structure) cube.Cube {
	c := s.NewCube()
	for v := 0; v < s.NumVars(); v++ {
		for p := 0; p < s.Size(v); p++ {
			if rng.Intn(2) == 1 {
				s.Set(c, v, p)
			}
		}
		if s.VarEmpty(c, v) {
			s.Set(c, v, rng.Intn(s.Size(v)))
		}
	}
	return c
}

// eachMinterm enumerates every minterm of the whole space (not just a
// cover's) and calls fn with a reusable minterm cube.
func eachMinterm(s *cube.Structure, fn func(cube.Cube)) {
	m := s.NewCube()
	var rec func(v int)
	rec = func(v int) {
		if v == s.NumVars() {
			fn(m)
			return
		}
		for p := 0; p < s.Size(v); p++ {
			s.Set(m, v, p)
			rec(v + 1)
			s.Clear(m, v, p)
		}
	}
	rec(0)
}

// checkAgainstReference verifies one minimization result by truth table:
//
//  1. equivalence — min covers every on-minterm, and every minterm of min
//     is an on- or dc-minterm (min ⊆ on∪dc);
//  2. irredundancy — every cube of min owns at least one on-minterm that
//     no other cube of min and no dc cube covers... i.e. dropping any cube
//     changes the function.
//
// It reports the first violated property, or "" when min passes.
func checkAgainstReference(f refFunc, min *cube.Cover) string {
	bad := ""
	owners := make([]int, len(min.Cubes)) // on-minterms privately owned
	eachMinterm(f.s, func(m cube.Cube) {
		if bad != "" {
			return
		}
		isOn := f.on.ContainsCube(m)
		isDc := f.dc.ContainsCube(m)
		inMin := false
		holder, holders := -1, 0
		for i, c := range min.Cubes {
			if cube.Contains(c, m) {
				inMin = true
				holder = i
				holders++
			}
		}
		switch {
		case isOn && !isDc && !inMin:
			// A care on-minterm must survive; on∩dc minterms are free
			// (the don't-care set dominates, matching the minimizer's
			// convention for overlapping specifications).
			bad = "on-minterm " + f.s.String(m) + " not covered by the minimized cover"
		case inMin && !isOn && !isDc:
			bad = "minimized cover asserts off-minterm " + f.s.String(m)
		}
		if isOn && !isDc && holders == 1 {
			owners[holder]++
		}
	})
	if bad != "" {
		return bad
	}
	for i, n := range owners {
		if n == 0 {
			return "cube " + f.s.String(min.Cubes[i]) + " is redundant (owns no private on-minterm)"
		}
	}
	return ""
}

// minimizeRef runs the minimizer with the settings the encoder uses.
func minimizeRef(f refFunc) *cube.Cover {
	return Minimize(f.on, f.dc, Options{MakeSparse: false})
}

// TestDifferentialReference sweeps >= 1000 random functions (reduced under
// -short) through Minimize and validates every result against the truth
// table, against the package's own tautology-based Verify, and — on a
// sample — against the exact Quine-McCluskey minimum cover.
func TestDifferentialReference(t *testing.T) {
	count := 1200
	if testing.Short() {
		count = 150
	}
	idx := 0
	check := func(seed int64) bool {
		idx++
		rng := rand.New(rand.NewSource(seed))
		f := randRefFunc(rng)
		min := minimizeRef(f)
		if msg := checkAgainstReference(f, min); msg != "" {
			t.Errorf("seed %d: %s\non-set:\n%sdc-set:\n%sminimized:\n%s",
				seed, msg, f.on, f.dc, min)
			return false
		}
		if !Verify(min, f.on, f.dc) {
			t.Errorf("seed %d: Verify disagrees with the truth-table reference", seed)
			return false
		}
		// Exact differential on a sample: the QM minimum cover can never
		// use more cubes than the heuristic result.
		if idx%7 == 0 {
			if exact := ExactCubeCount(f.on, f.dc, ExactOptions{MaxPrimes: 2000, MaxNodes: 1 << 16}); exact >= 0 {
				if exact > min.Len() {
					t.Errorf("seed %d: exact minimum %d exceeds heuristic %d — exact minimizer broken",
						seed, exact, min.Len())
					return false
				}
				if min.Len() > 3*exact+2 {
					t.Errorf("seed %d: heuristic %d cubes vs exact %d — lost all minimization quality",
						seed, min.Len(), exact)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: count,
		Values:   nil,
		Rand:     rand.New(rand.NewSource(20260806)),
	}
	if err := quick.Check(func(seed int64) bool { return check(seed) }, cfg); err != nil {
		t.Fatalf("differential suite failed: %v", err)
	}
}

// TestDifferentialKnownShapes pins a few hand-picked shapes that exercise
// the terminal cases of the recursion: tautological on-sets, single-cube
// covers, and covers whose don't-care set swallows everything.
func TestDifferentialKnownShapes(t *testing.T) {
	s := cube.NewStructure(2, 3, 2)

	full := cube.NewCover(s)
	full.Add(s.FullCube())
	fullMin := Minimize(full, nil, Options{})
	if fullMin.Len() != 1 || !s.IsFull(fullMin.Cubes[0]) {
		t.Fatalf("universe function not minimized to the universe cube:\n%s", fullMin)
	}

	// Two halves of a binary variable merge into the universe.
	halves := cube.NewCover(s)
	a := s.FullCube()
	s.Clear(a, 0, 0)
	b := s.FullCube()
	s.Clear(b, 0, 1)
	halves.Add(a)
	halves.Add(b)
	if m := Minimize(halves, nil, Options{}); m.Len() != 1 {
		t.Fatalf("x + x' did not merge to the universe:\n%s", m)
	}

	// A function whose dc-set covers the whole space needs at most one
	// cube — IRREDUNDANT may drop even that one, since every on-minterm
	// is also a don't-care.
	dcAll := cube.NewCover(s)
	dcAll.Add(s.FullCube())
	onOne := cube.NewCover(s)
	onOne.Add(randRefCube(rand.New(rand.NewSource(1)), s))
	if m := Minimize(onOne, dcAll, Options{}); m.Len() > 1 {
		t.Fatalf("dc = universe left %d cubes:\n%s", m.Len(), m)
	}
}
