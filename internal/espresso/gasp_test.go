package espresso

import (
	"math/rand"
	"testing"

	"nova/internal/cube"
)

func TestMaxReduce(t *testing.T) {
	// f = a + b' (parse sets part indices: "01" = value 1). Reducing the
	// cube a against the rest {b'} lowers it to a·b: the part a·b' is
	// covered by the rest.
	s := cube.NewStructure(2, 2, 1)
	a := parse(s, "01", "11", "1")
	rest := cube.NewCover(s)
	rest.Add(parse(s, "11", "10", "1"))
	ar := cube.GetArena(s)
	r := maxReduce(s, a, rest, ar)
	cube.PutArena(ar)
	if s.Test(r, 0, 0) || !s.Test(r, 0, 1) {
		t.Fatalf("variable a changed: %s", s.String(r))
	}
	if s.VarCount(r, 1) != 1 || !s.Test(r, 1, 1) {
		t.Fatalf("b not lowered to value 1: %s", s.String(r))
	}
}

func TestLastGaspFindsMerge(t *testing.T) {
	// A cover stuck in a local minimum that last_gasp can improve:
	// f = ab' + a'b' + b (3 cubes) — reduce/merge gives b + b' = 1? Use a
	// shape where two reduced cubes merge: f over one 4-valued MV var:
	// {v0,v1} + {v1,v2} + {v2,v3}: reduced {v0,v1}->{v0}, {v2,v3}->{v3},
	// middle covers v1,v2; merging the reduced outer cubes fails; instead
	// craft: f = {v0,v1} + {v1,v2}: no gain possible (2 cubes minimal if
	// {v0,v1,v2} not an implicant... it is! expand would get it.)
	// Direct check: LastGasp returns false on an already minimal cover.
	s := cube.NewStructure(2, 2, 1)
	f := cube.NewCover(s)
	f.Add(parse(s, "01", "10", "1"))
	f.Add(parse(s, "10", "01", "1"))
	dc := cube.NewCover(s)
	if LastGasp(f, dc) {
		t.Fatal("last_gasp claimed improvement on minimal XOR")
	}
	if f.Len() != 2 {
		t.Fatal("last_gasp changed a cover it did not improve")
	}
}

func TestLastGaspPreservesFunction(t *testing.T) {
	s := cube.NewStructure(2, 2, 3, 2)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		on, dc := randomOnDc(s, rng)
		f := Minimize(on, dc, Options{})
		g := f.Copy()
		LastGasp(g, dc)
		if !Verify(g, on, dc) {
			t.Fatalf("trial %d: last_gasp broke equivalence", trial)
		}
		if g.Len() > f.Len() {
			t.Fatalf("trial %d: last_gasp grew the cover", trial)
		}
	}
}

func TestMakeSparseLowersOutputs(t *testing.T) {
	// Two cubes both asserting output 0 over overlapping regions: the
	// overlap-only assertion can be lowered from one of them.
	s := cube.NewStructure(2, 2)
	f := cube.NewCover(s)
	f.Add(parse(s, "11", "11")) // universe asserting both outputs
	f.Add(parse(s, "01", "10")) // a' asserting output 0 redundantly
	dc := cube.NewCover(s)
	MakeSparse(f, dc)
	// The second cube's output-0 assertion is covered by the first cube:
	// it must be lowered, emptying the cube, which is then dropped.
	if f.Len() != 1 {
		t.Fatalf("MakeSparse left %d cubes, want 1\n%s", f.Len(), f)
	}
}

func TestMakeSparsePreservesFunction(t *testing.T) {
	s := cube.NewStructure(2, 2, 2, 3)
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 30; trial++ {
		on, dc := randomOnDc(s, rng)
		f := Minimize(on, dc, Options{})
		g := f.Copy()
		MakeSparse(g, dc)
		if !Verify(g, on, dc) {
			t.Fatalf("trial %d: make_sparse broke equivalence", trial)
		}
		// Care entries must not increase.
		parts := func(c *cube.Cover) int {
			n := 0
			for _, q := range c.Cubes {
				n += q.PopCount()
			}
			return n
		}
		if parts(g) > parts(f) {
			t.Fatalf("trial %d: make_sparse raised parts", trial)
		}
	}
}

func TestMinimizeWithGaspOptions(t *testing.T) {
	s := cube.NewStructure(2, 2, 2, 1)
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 20; trial++ {
		on, dc := randomOnDc(s, rng)
		plain := Minimize(on, dc, Options{})
		gasp := Minimize(on, dc, Options{LastGasp: true, MakeSparse: true})
		if !Verify(gasp, on, dc) {
			t.Fatalf("trial %d: gasp options broke equivalence", trial)
		}
		if gasp.Len() > plain.Len() {
			t.Fatalf("trial %d: gasp result larger (%d > %d)", trial, gasp.Len(), plain.Len())
		}
	}
}
