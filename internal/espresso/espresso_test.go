package espresso

import (
	"math/rand"
	"testing"

	"nova/internal/cube"
)

func parse(s *cube.Structure, fields ...string) cube.Cube {
	c := s.NewCube()
	for v, f := range fields {
		for p, ch := range f {
			if ch == '1' {
				s.Set(c, v, p)
			}
		}
	}
	return c
}

func TestMinimizeXor(t *testing.T) {
	// XOR of two binary variables: already minimal with 2 cubes.
	s := cube.NewStructure(2, 2, 1)
	on := cube.NewCover(s)
	on.Add(parse(s, "01", "10", "1"))
	on.Add(parse(s, "10", "01", "1"))
	m := Minimize(on, nil, Options{})
	if m.Len() != 2 {
		t.Fatalf("XOR minimized to %d cubes, want 2", m.Len())
	}
	if !Verify(m, on, nil) {
		t.Fatal("minimized cover is not equivalent")
	}
}

func TestMinimizeMerge(t *testing.T) {
	// f = a'b + ab = b: should merge into one cube.
	s := cube.NewStructure(2, 2, 1)
	on := cube.NewCover(s)
	on.Add(parse(s, "01", "01", "1"))
	on.Add(parse(s, "10", "01", "1"))
	m := Minimize(on, nil, Options{})
	if m.Len() != 1 {
		t.Fatalf("minimized to %d cubes, want 1", m.Len())
	}
	if !Verify(m, on, nil) {
		t.Fatal("not equivalent after merge")
	}
}

func TestMinimizeWithDontCare(t *testing.T) {
	// f on = a'b', dc = a'b: expand should produce the single cube a'.
	s := cube.NewStructure(2, 2, 1)
	on := cube.NewCover(s)
	on.Add(parse(s, "01", "01", "1"))
	dc := cube.NewCover(s)
	dc.Add(parse(s, "01", "10", "1"))
	m := Minimize(on, dc, Options{})
	if m.Len() != 1 {
		t.Fatalf("minimized to %d cubes, want 1", m.Len())
	}
	if got := s.VarCount(m.Cubes[0], 1); got != 2 {
		t.Fatalf("variable b not raised: %s", s.String(m.Cubes[0]))
	}
	if !Verify(m, on, dc) {
		t.Fatal("not a valid cover of (on, dc)")
	}
}

func TestMinimizeMultiValued(t *testing.T) {
	// One 4-valued variable; on-set {v0, v1, v2}: minimal cover is the
	// single MV literal {v0,v1,v2}.
	s := cube.NewStructure(4, 1)
	on := cube.NewCover(s)
	on.Add(parse(s, "1000", "1"))
	on.Add(parse(s, "0100", "1"))
	on.Add(parse(s, "0010", "1"))
	m := Minimize(on, nil, Options{})
	if m.Len() != 1 {
		t.Fatalf("minimized to %d cubes, want 1", m.Len())
	}
	if s.VarCount(m.Cubes[0], 0) != 3 {
		t.Fatalf("MV literal wrong: %s", s.String(m.Cubes[0]))
	}
	if !Verify(m, on, nil) {
		t.Fatal("not equivalent")
	}
}

func TestMinimizeMultiOutput(t *testing.T) {
	// Two outputs sharing a product term: f0 = ab, f1 = ab + a'b'.
	s := cube.NewStructure(2, 2, 2)
	on := cube.NewCover(s)
	on.Add(parse(s, "01", "01", "11")) // ab -> both outputs
	on.Add(parse(s, "10", "10", "01")) // a'b' -> f1
	m := Minimize(on, nil, Options{})
	if m.Len() != 2 {
		t.Fatalf("minimized to %d cubes, want 2", m.Len())
	}
	if !Verify(m, on, nil) {
		t.Fatal("not equivalent")
	}
}

func TestMinimizeFullSpace(t *testing.T) {
	// Covering all four minterms must give the universe cube.
	s := cube.NewStructure(2, 2, 1)
	on := cube.NewCover(s)
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			c := s.NewCube()
			s.Set(c, 0, a)
			s.Set(c, 1, b)
			s.Set(c, 2, 0)
			on.Add(c)
		}
	}
	m := Minimize(on, nil, Options{})
	if m.Len() != 1 {
		t.Fatalf("minimized to %d cubes, want 1", m.Len())
	}
	if !s.IsFull(m.Cubes[0]) {
		t.Fatalf("expected the universe cube, got %s", s.String(m.Cubes[0]))
	}
}

func TestIrredundantRemovesRedundantCube(t *testing.T) {
	// a'b + ab' + (a XOR b redundant middle consensus-ish cube).
	s := cube.NewStructure(2, 2, 1)
	f := cube.NewCover(s)
	f.Add(parse(s, "01", "11", "1")) // a'
	f.Add(parse(s, "10", "11", "1")) // a
	f.Add(parse(s, "11", "01", "1")) // b, redundant
	dc := cube.NewCover(s)
	Irredundant(f, dc)
	if f.Len() != 2 {
		t.Fatalf("irredundant left %d cubes, want 2", f.Len())
	}
}

func TestReduceEnablesBetterExpand(t *testing.T) {
	// Classic espresso behaviour check: reduce must not break covering.
	s := cube.NewStructure(2, 2, 1)
	on := cube.NewCover(s)
	on.Add(parse(s, "11", "01", "1"))
	on.Add(parse(s, "01", "11", "1"))
	f := on.Copy()
	dc := cube.NewCover(s)
	Reduce(f, dc)
	if !Verify(f, on, nil) {
		t.Fatal("reduce broke functional equivalence")
	}
}

// randomOnDc builds a random (on, dc) pair over a mixed structure.
func randomOnDc(s *cube.Structure, rng *rand.Rand) (on, dc *cube.Cover) {
	on = cube.NewCover(s)
	dc = cube.NewCover(s)
	randomCube := func() cube.Cube {
		c := s.NewCube()
		for v := 0; v < s.NumVars(); v++ {
			for p := 0; p < s.Size(v); p++ {
				if rng.Intn(2) == 1 {
					s.Set(c, v, p)
				}
			}
			if s.VarEmpty(c, v) {
				s.Set(c, v, rng.Intn(s.Size(v)))
			}
		}
		return c
	}
	for i := 0; i < 1+rng.Intn(6); i++ {
		on.Add(randomCube())
	}
	for i := 0; i < rng.Intn(3); i++ {
		dc.Add(randomCube())
	}
	return on, dc
}

// Property: Minimize never increases cube count and preserves the function.
func TestMinimizeRandomizedEquivalence(t *testing.T) {
	s := cube.NewStructure(2, 2, 3, 2)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		on, dc := randomOnDc(s, rng)
		m := Minimize(on, dc, Options{})
		if m.Len() > on.Len() {
			t.Fatalf("trial %d: minimize grew the cover %d -> %d", trial, on.Len(), m.Len())
		}
		if !Verify(m, on, dc) {
			t.Fatalf("trial %d: minimized cover not equivalent\non:\n%sdc:\n%sm:\n%s", trial, on, dc, m)
		}
	}
}

// Property: every cube of the result is prime-like — raising any single
// lowered part produces a non-implicant.
func TestMinimizePrimality(t *testing.T) {
	s := cube.NewStructure(2, 2, 2)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		on, dc := randomOnDc(s, rng)
		m := Minimize(on, dc, Options{})
		all := on.Append(dc)
		for _, c := range m.Cubes {
			for v := 0; v < s.NumVars(); v++ {
				for p := 0; p < s.Size(v); p++ {
					if s.Test(c, v, p) {
						continue
					}
					up := c.Copy()
					s.Set(up, v, p)
					if all.CoversCube(up) {
						t.Fatalf("trial %d: cube %s is not prime (part %d/%d can raise)", trial, s.String(c), v, p)
					}
				}
			}
		}
	}
}

func BenchmarkMinimizeRandom16(b *testing.B) {
	s := cube.NewStructure(2, 2, 2, 2, 4, 3)
	rng := rand.New(rand.NewSource(5))
	on, dc := randomOnDc(s, rng)
	for i := 0; i < 8; i++ {
		more, _ := randomOnDc(s, rng)
		on = on.Append(more)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Minimize(on, dc, Options{})
	}
}
