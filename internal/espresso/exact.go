package espresso

import (
	"sort"

	"nova/internal/cube"
)

// Exact two-level minimization for small functions: generate all prime
// implicants by iterated consensus (the multiple-valued generalization of
// Quine-McCluskey) and solve the covering problem exactly by branch and
// bound. Exponential in general — intended as a validation oracle for the
// heuristic minimizer and for exact results on small FSMs.

// ExactOptions bounds the exact minimizer.
type ExactOptions struct {
	// MaxPrimes aborts when the prime set grows beyond this (0 = 50000).
	MaxPrimes int
	// MaxNodes bounds the branch-and-bound search tree (0 = 1 << 20).
	MaxNodes int
}

// Primes returns all prime implicants of the function (on, dc) by iterated
// consensus followed by single-cube containment, starting from the on∪dc
// cubes. It returns nil when MaxPrimes is exceeded.
func Primes(on, dc *cube.Cover, opt ExactOptions) *cube.Cover {
	if opt.MaxPrimes <= 0 {
		opt.MaxPrimes = 50000
	}
	s := on.S
	set := on.Copy().Append(dc).Copy()
	set.SingleCubeContainment()
	// Iterated consensus: add consensus cubes until closure; keep only
	// maximal cubes. The consensus is taken with respect to every variable
	// — for multiple-valued variables, two intersecting cubes can have a
	// consensus strictly larger than either (union of their fields), which
	// restricting to the distance-one conflict variable would miss.
	changed := true
	for changed {
		changed = false
		n := len(set.Cubes)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				for v := 0; v < s.NumVars(); v++ {
					c := s.ConsensusOn(set.Cubes[i], set.Cubes[j], v)
					if c == nil {
						continue
					}
					dominated := false
					for _, q := range set.Cubes {
						if cube.Contains(q, c) {
							dominated = true
							break
						}
					}
					if !dominated {
						set.Add(c)
						changed = true
						if len(set.Cubes) > opt.MaxPrimes {
							return nil
						}
					}
				}
			}
		}
		set.SingleCubeContainment()
	}
	return set
}

// MinimumCover returns a minimum-cardinality cover of (on, dc) using the
// primes and an exact branch-and-bound set cover, or nil when a bound is
// exceeded. Minterm enumeration bounds its use to small spaces.
func MinimumCover(on, dc *cube.Cover, opt ExactOptions) *cube.Cover {
	if opt.MaxNodes <= 0 {
		opt.MaxNodes = 1 << 20
	}
	primes := Primes(on, dc, opt)
	if primes == nil {
		return nil
	}
	s := on.S
	// Enumerate the on-set minterms: each must be covered by a selected
	// prime. Minterms also in the don't-care set are free (the don't-care
	// set dominates, matching the heuristic minimizer's convention for
	// ill-formed overlapping specifications).
	var minterms []cube.Cube
	seen := map[string]bool{}
	on.Minterms(func(m cube.Cube) {
		k := m.Key()
		if seen[k] {
			return
		}
		seen[k] = true
		for _, d := range dc.Cubes {
			if cube.Contains(d, m) {
				return
			}
		}
		minterms = append(minterms, m)
	})
	// Covering matrix: per minterm, the primes containing it.
	covers := make([][]int, len(minterms))
	for i, m := range minterms {
		for pi, p := range primes.Cubes {
			if cube.Contains(p, m) {
				covers[i] = append(covers[i], pi)
			}
		}
		if len(covers[i]) == 0 {
			return nil // should not happen: primes cover on∪dc
		}
	}
	// Order minterms by fewest covering primes (most constrained first).
	order := make([]int, len(minterms))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(covers[order[a]]) < len(covers[order[b]])
	})

	bestLen := len(on.Cubes) + 1
	var best []int
	chosen := map[int]bool{}
	nodes := 0
	var search func(oi int, count int) bool
	search = func(oi, count int) bool {
		nodes++
		if nodes > opt.MaxNodes {
			return false
		}
		if count >= bestLen {
			return true
		}
		// Find the next uncovered minterm.
		for oi < len(order) {
			mi := order[oi]
			coveredAlready := false
			for _, pi := range covers[mi] {
				if chosen[pi] {
					coveredAlready = true
					break
				}
			}
			if !coveredAlready {
				break
			}
			oi++
		}
		if oi == len(order) {
			bestLen = count
			best = best[:0]
			for pi := range chosen {
				best = append(best, pi)
			}
			return true
		}
		mi := order[oi]
		for _, pi := range covers[mi] {
			chosen[pi] = true
			ok := search(oi+1, count+1)
			delete(chosen, pi)
			if !ok {
				return false
			}
		}
		return true
	}
	if !search(0, 0) && best == nil {
		return nil
	}
	if best == nil {
		return nil
	}
	sort.Ints(best)
	out := cube.NewCover(s)
	for _, pi := range best {
		out.Add(primes.Cubes[pi].Copy())
	}
	return out
}

// ExactCubeCount returns the minimum number of product terms implementing
// (on, dc), or -1 when the exact search exceeded its bounds.
func ExactCubeCount(on, dc *cube.Cover, opt ExactOptions) int {
	m := MinimumCover(on, dc, opt)
	if m == nil {
		return -1
	}
	return m.Len()
}
