package espresso

import (
	"nova/internal/cube"
)

// LAST_GASP and MAKE_SPARSE: the espresso loop's escape hatch from local
// minima and its final literal-lowering pass.

// maxReduce returns the maximally reduced version of cube c against the
// cover rest ∪ dc: parts are lowered greedily to fixpoint, keeping c an
// element whose private minterms stay covered. c is not modified.
func maxReduce(s *cube.Structure, c cube.Cube, rest *cube.Cover, a *cube.Arena) cube.Cube {
	r := c.Copy()
	slice := a.NewCube()
	changed := true
	for changed {
		changed = false
		for v := 0; v < s.NumVars(); v++ {
			if s.VarCount(r, v) < 2 {
				continue
			}
			for p := 0; p < s.Size(v); p++ {
				if !s.Test(r, v, p) || s.VarCount(r, v) < 2 {
					continue
				}
				copy(slice, r)
				s.ClearAll(slice, v)
				s.Set(slice, v, p)
				if rest.CoversCubeWith(a, slice) {
					s.Clear(r, v, p)
					changed = true
				}
			}
		}
	}
	a.FreeCube(slice)
	return r
}

// LastGasp implements the last_gasp step: every cube is maximally reduced
// independently (against the rest of the unreduced cover), the reduced
// cubes are pairwise merged by supercube where the merge is an implicant,
// and irredundancy is restored. It reports whether the cover cardinality
// decreased; f is modified in place only when it does.
func LastGasp(f, dc *cube.Cover) bool {
	a := cube.GetArena(f.S)
	ok := lastGaspWith(f, dc, a)
	cube.PutArena(a)
	return ok
}

func lastGaspWith(f, dc *cube.Cover, a *cube.Arena) bool {
	s := f.S
	if len(f.Cubes) < 2 {
		return false
	}
	all := f.Copy().Append(dc)
	reduced := make([]cube.Cube, len(f.Cubes))
	rest := a.NewCover()
	for i, c := range f.Cubes {
		rest.Cubes = rest.Cubes[:0]
		rest.Cubes = append(rest.Cubes, f.Cubes[:i]...)
		rest.Cubes = append(rest.Cubes, f.Cubes[i+1:]...)
		rest.Cubes = append(rest.Cubes, dc.Cubes...)
		reduced[i] = maxReduce(s, c, rest, a)
	}
	a.FreeCover(rest)
	var candidates []cube.Cube
	weights := make([]int, s.Bits())
	var scratch []raiseCand
	for i := 0; i < len(reduced); i++ {
		for j := i + 1; j < len(reduced); j++ {
			m := s.NewCube()
			cube.Or(m, reduced[i], reduced[j])
			if m.Equal(reduced[i]) || m.Equal(reduced[j]) {
				continue
			}
			if all.CoversCubeWith(a, m) {
				scratch = expandCubeWith(s, m, all, weights, a, scratch)
				candidates = append(candidates, m)
			}
		}
	}
	if len(candidates) == 0 {
		return false
	}
	trial := f.Copy()
	trial.Cubes = append(trial.Cubes, candidates...)
	trial.SingleCubeContainment()
	irredundantWith(trial, dc, a)
	if trial.Len() < f.Len() {
		f.Cubes = trial.Cubes
		return true
	}
	return false
}

// MakeSparse is espresso's final pass: output parts (and any
// multiple-valued literal parts) that are redundantly asserted — their
// slice is covered by the rest of the cover plus the don't-care set — are
// lowered, reducing the personality matrix's care entries without
// changing the function or the cube count. Binary input variables are
// left alone (they are already maximally raised by EXPAND); the output
// part is, per this package's convention, the last variable and is always
// processed.
func MakeSparse(f, dc *cube.Cover) {
	a := cube.GetArena(f.S)
	makeSparseWith(f, dc, a)
	cube.PutArena(a)
}

func makeSparseWith(f, dc *cube.Cover, a *cube.Arena) {
	s := f.S
	outVar := s.NumVars() - 1
	rest := a.NewCover()
	slice := a.NewCube()
	for i, c := range f.Cubes {
		rest.Cubes = rest.Cubes[:0]
		rest.Cubes = append(rest.Cubes, f.Cubes[:i]...)
		rest.Cubes = append(rest.Cubes, f.Cubes[i+1:]...)
		rest.Cubes = append(rest.Cubes, dc.Cubes...)
		for v := 0; v < s.NumVars(); v++ {
			if v != outVar && s.Size(v) == 2 {
				continue // binary inputs stay expanded
			}
			for p := 0; p < s.Size(v); p++ {
				// The output variable may be emptied entirely (the cube
				// is then fully redundant and dropped); multiple-valued
				// input literals must keep at least one part.
				if !s.Test(c, v, p) || (v != outVar && s.VarCount(c, v) < 2) {
					continue
				}
				copy(slice, c)
				s.ClearAll(slice, v)
				s.Set(slice, v, p)
				if rest.CoversCubeWith(a, slice) {
					s.Clear(c, v, p)
				}
			}
		}
	}
	a.FreeCube(slice)
	a.FreeCover(rest)
	dropEmpty(f)
}
