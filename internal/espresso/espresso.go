// Package espresso implements a two-level multiple-valued logic minimizer
// in the tradition of ESPRESSO-MV: the EXPAND / IRREDUNDANT / REDUCE
// iteration over positional-notation covers, with implicant checks done by
// unate-recursion tautology of cofactors rather than an explicit off-set.
//
// The minimizer is heuristic: it returns a minimal (irredundant, prime in
// the one-part-at-a-time sense) cover whose cardinality is at a local
// minimum of the espresso loop. It is the substrate NOVA uses to derive
// input constraints (multiple-valued minimization of the symbolic FSM
// cover), to run symbolic minimization, and to measure the product-term
// cardinality of encoded PLAs.
package espresso

import (
	"context"
	"sort"

	"nova/internal/cube"
	"nova/internal/obs"
)

// Options tunes the minimization loop.
type Options struct {
	// Ctx, when non-nil, is polled between the EXPAND / IRREDUNDANT /
	// REDUCE passes; on cancellation Minimize returns the best valid
	// cover found so far instead of iterating further. Callers that need
	// a hard failure must check Ctx.Err() themselves after the call.
	Ctx context.Context
	// MaxIterations bounds the number of expand/irredundant/reduce rounds.
	// Zero selects the default of 16 (the loop normally converges in 2-4).
	MaxIterations int
	// SkipReduce disables the REDUCE/re-EXPAND refinement, yielding a
	// single EXPAND + IRREDUNDANT pass (faster, slightly worse covers).
	SkipReduce bool
	// LastGasp enables the last_gasp escape from local minima after the
	// main loop converges (slower; occasionally saves a cube).
	LastGasp bool
	// MakeSparse lowers redundantly asserted output/multiple-valued parts
	// after minimization (fewer care entries, same cube count).
	MakeSparse bool
	// Fork, when non-nil, parallelizes the unate-recursion branch loops
	// of the tautology checks inside the passes (see cube.Fork). Results
	// are byte-identical to the serial recursion; nil keeps the passes
	// strictly serial.
	Fork *cube.Fork
}

// Minimize returns a minimized cover of the incompletely specified function
// with on-set cover on and don't-care cover dc (dc may be nil or empty).
// The input covers are not modified.
func Minimize(on, dc *cube.Cover, opt Options) *cube.Cover {
	// One scratch arena serves the whole call: every pass recycles cofactor
	// buffers through it and shares its tautology memo across iterations.
	// The backing pool is keyed by structure layout, so repeated calls over
	// equal layouts (the per-candidate evaluation loop) reuse the same
	// buffers and memo without any coordination by the caller.
	a := cube.GetArena(on.S)
	defer cube.PutArena(a)
	if m := obs.MetricsFrom(opt.Ctx); m != nil {
		m.ArenaGets.Add(1)
		if a.Reused() {
			m.ArenaReuses.Add(1)
		}
	}
	return MinimizeWith(on, dc, opt, a)
}

// MinimizeWith is Minimize with caller-provided scratch, for callers that
// run many minimizations over one layout and want to hold a single arena
// (and its tautology memo) across the whole batch.
func MinimizeWith(on, dc *cube.Cover, opt Options, a *cube.Arena) *cube.Cover {
	if opt.MaxIterations <= 0 {
		opt.MaxIterations = 16
	}
	// Telemetry, all nil-safe: with no tracer in opt.Ctx, sctx == opt.Ctx,
	// every span below is the no-op nil span, m is nil, and no extra
	// allocation happens (guarded by the alloc tests at the repo root).
	sctx, msp := obs.Span(opt.Ctx, "espresso.minimize")
	m := obs.MetricsFrom(opt.Ctx)
	var statBase cube.ArenaStats
	if m != nil {
		statBase = a.Stats()
		msp.SetInt("cubes_in", int64(on.Len()))
	}
	if opt.Fork != nil {
		a.SetFork(opt.Fork, opt.Ctx)
		defer a.SetFork(nil, nil)
	}

	f := on.Copy()
	if dc == nil {
		dc = cube.NewCover(on.S)
	}
	f.SingleCubeContainment()
	dropEmpty(f)
	if canceled(opt.Ctx) {
		finishMinimize(msp, m, a, statBase, f)
		return f // the containment-reduced on-set is itself a valid cover
	}

	expandPass(sctx, f, dc, a)
	irredundantPass(sctx, f, dc, a)
	if opt.SkipReduce {
		finishWith(sctx, f, dc, opt, a)
		finishMinimize(msp, m, a, statBase, f)
		return f
	}
	best := f.Copy()
	for iter := 0; iter < opt.MaxIterations; iter++ {
		if canceled(opt.Ctx) {
			break // best is a valid minimized cover at this point
		}
		if m != nil {
			m.EspressoIters.Add(1)
		}
		reducePass(sctx, f, dc, a)
		expandPass(sctx, f, dc, a)
		irredundantPass(sctx, f, dc, a)
		if cost(f) < cost(best) {
			best = f.Copy()
			continue
		}
		if opt.LastGasp && lastGaspPass(sctx, best, dc, a) {
			f = best.Copy()
			continue
		}
		break
	}
	finishWith(sctx, best, dc, opt, a)
	finishMinimize(msp, m, a, statBase, best)
	return best
}

// finishMinimize closes the espresso.minimize span and flushes the
// arena's counter deltas into the run metrics. No-op when untraced.
func finishMinimize(msp *obs.ActiveSpan, m *obs.Metrics, a *cube.Arena, base cube.ArenaStats, f *cube.Cover) {
	if m != nil {
		msp.SetInt("cubes_out", int64(f.Len()))
		d := a.Stats().Sub(base)
		m.TautCalls.Add(d.TautCalls)
		m.TautMemoLookups.Add(d.TautMemoLookups)
		m.TautMemoHits.Add(d.TautMemoHits)
		m.CubesAlloc.Add(d.CubesAlloc)
		m.CubesReused.Add(d.CubesReused)
	}
	msp.End()
}

// The *Pass wrappers put a span (with cube counts in/out) around each
// espresso pass. With no tracer in ctx they compile down to the plain
// pass call: Span returns a nil span whose methods do nothing.
func expandPass(ctx context.Context, f, dc *cube.Cover, a *cube.Arena) {
	_, sp := obs.Span(ctx, "espresso.expand")
	sp.SetInt("cubes_in", int64(f.Len()))
	expandWith(f, dc, a)
	sp.SetInt("cubes_out", int64(f.Len()))
	sp.End()
}

func irredundantPass(ctx context.Context, f, dc *cube.Cover, a *cube.Arena) {
	_, sp := obs.Span(ctx, "espresso.irredundant")
	sp.SetInt("cubes_in", int64(f.Len()))
	irredundantWith(f, dc, a)
	sp.SetInt("cubes_out", int64(f.Len()))
	sp.End()
}

func reducePass(ctx context.Context, f, dc *cube.Cover, a *cube.Arena) {
	_, sp := obs.Span(ctx, "espresso.reduce")
	sp.SetInt("cubes_in", int64(f.Len()))
	reduceWith(f, dc, a)
	sp.SetInt("cubes_out", int64(f.Len()))
	sp.End()
}

func lastGaspPass(ctx context.Context, f, dc *cube.Cover, a *cube.Arena) bool {
	_, sp := obs.Span(ctx, "espresso.lastgasp")
	improved := lastGaspWith(f, dc, a)
	sp.End()
	return improved
}

// canceled reports whether the (possibly nil) context is done.
func canceled(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

func finishWith(ctx context.Context, f, dc *cube.Cover, opt Options, a *cube.Arena) {
	if opt.MakeSparse {
		_, sp := obs.Span(ctx, "espresso.makesparse")
		makeSparseWith(f, dc, a)
		sp.End()
	}
}

// cost orders covers primarily by cube count, secondarily by total set
// parts (fewer is better after cube count ties: more literals lowered).
func cost(f *cube.Cover) int {
	parts := 0
	for _, c := range f.Cubes {
		parts += c.PopCount()
	}
	return f.Len()*1_000_000 + parts
}

func dropEmpty(f *cube.Cover) {
	var kept []cube.Cube
	for _, c := range f.Cubes {
		if !f.S.IsEmpty(c) {
			kept = append(kept, c)
		}
	}
	f.Cubes = kept
}

// Expand raises each cube of f to a prime-like implicant: parts are raised
// one at a time (in an order favouring parts frequently set across the
// cover) and a raise is kept when the expanded cube is still an implicant
// of on∪dc, checked by tautology of the cofactor. Cubes made redundant by
// the expansion of earlier cubes are removed.
func Expand(f, dc *cube.Cover) {
	a := cube.GetArena(f.S)
	expandWith(f, dc, a)
	cube.PutArena(a)
}

func expandWith(f, dc *cube.Cover, a *cube.Arena) {
	s := f.S
	// Snapshot the function: expansion is validated against the original
	// on∪dc, which must not alias the cubes being mutated. The snapshot
	// copies come from the arena and are recycled on exit.
	all := a.NewCover()
	for _, c := range f.Cubes {
		all.Cubes = append(all.Cubes, a.CopyCube(c))
	}
	nOwn := len(all.Cubes)
	all.Cubes = append(all.Cubes, dc.Cubes...)
	// Process larger cubes first: they are more likely to swallow others.
	order := make([]int, len(f.Cubes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return f.Cubes[order[x]].PopCount() > f.Cubes[order[y]].PopCount()
	})

	// Column weights: how often each part is set across the cover. Raising
	// frequently-set parts first heads toward cubes that cover many others.
	weights := make([]int, s.Bits())
	for _, c := range f.Cubes {
		for v := 0; v < s.NumVars(); v++ {
			off := s.Offset(v)
			for p := 0; p < s.Size(v); p++ {
				if s.Test(c, v, p) {
					weights[off+p]++
				}
			}
		}
	}

	covered := make([]bool, len(f.Cubes))
	var scratch []raiseCand
	for _, i := range order {
		if covered[i] {
			continue
		}
		c := f.Cubes[i]
		scratch = expandCubeWith(s, c, all, weights, a, scratch)
		// Single-cube containment against the expanded cube.
		for _, j := range order {
			if j == i || covered[j] {
				continue
			}
			if cube.Contains(c, f.Cubes[j]) {
				covered[j] = true
			}
		}
	}
	var kept []cube.Cube
	for i, c := range f.Cubes {
		if !covered[i] {
			kept = append(kept, c)
		}
	}
	f.Cubes = kept
	for _, c := range all.Cubes[:nOwn] {
		a.FreeCube(c)
	}
	a.FreeCover(all)
}

// raiseCand is one candidate part raise considered by EXPAND.
type raiseCand struct{ v, p, w int }

// expandCubeWith raises the lowered parts of c in place, highest weight
// first, keeping each raise for which c remains an implicant of all. The
// scratch slice is reused across calls and returned for the next one.
func expandCubeWith(s *cube.Structure, c cube.Cube, all *cube.Cover, weights []int, a *cube.Arena, scratch []raiseCand) []raiseCand {
	cands := scratch[:0]
	for v := 0; v < s.NumVars(); v++ {
		off := s.Offset(v)
		for p := 0; p < s.Size(v); p++ {
			if !s.Test(c, v, p) {
				cands = append(cands, raiseCand{v, p, weights[off+p]})
			}
		}
	}
	sort.SliceStable(cands, func(x, y int) bool { return cands[x].w > cands[y].w })
	for _, cd := range cands {
		s.Set(c, cd.v, cd.p)
		if !all.ContainsCube(c) && !all.CoversCubeWith(a, c) {
			s.Clear(c, cd.v, cd.p)
		}
	}
	return cands
}

// Irredundant removes redundant cubes: cubes covered by the union of the
// remaining cubes and the don't-care set. Cubes are examined smallest
// first so large cubes (likely relatively essential) are retained.
func Irredundant(f, dc *cube.Cover) {
	a := cube.GetArena(f.S)
	irredundantWith(f, dc, a)
	cube.PutArena(a)
}

func irredundantWith(f, dc *cube.Cover, a *cube.Arena) {
	order := make([]int, len(f.Cubes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return f.Cubes[order[x]].PopCount() < f.Cubes[order[y]].PopCount()
	})
	removed := make([]bool, len(f.Cubes))
	rest := a.NewCover()
	for _, i := range order {
		rest.Cubes = rest.Cubes[:0]
		for j, c := range f.Cubes {
			if j != i && !removed[j] {
				rest.Cubes = append(rest.Cubes, c)
			}
		}
		rest.Cubes = append(rest.Cubes, dc.Cubes...)
		if rest.CoversCubeWith(a, f.Cubes[i]) {
			removed[i] = true
		}
	}
	a.FreeCover(rest)
	var kept []cube.Cube
	for i, c := range f.Cubes {
		if !removed[i] {
			kept = append(kept, c)
		}
	}
	f.Cubes = kept
}

// Reduce lowers each cube of f to a smaller implicant that still leaves f a
// cover: a set part of a variable (with at least two set parts) is cleared
// when the minterms it alone contributes are covered by the rest of the
// cover plus the don't-care set. Reduction unblocks the next EXPAND.
func Reduce(f, dc *cube.Cover) {
	a := cube.GetArena(f.S)
	reduceWith(f, dc, a)
	cube.PutArena(a)
}

func reduceWith(f, dc *cube.Cover, a *cube.Arena) {
	s := f.S
	// Reduce larger cubes first (mirrors espresso's ordering heuristic).
	order := make([]int, len(f.Cubes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return f.Cubes[order[x]].PopCount() > f.Cubes[order[y]].PopCount()
	})
	rest := a.NewCover()
	slice := a.NewCube()
	for _, i := range order {
		c := f.Cubes[i]
		rest.Cubes = rest.Cubes[:0]
		rest.Cubes = append(rest.Cubes, f.Cubes[:i]...)
		rest.Cubes = append(rest.Cubes, f.Cubes[i+1:]...)
		rest.Cubes = append(rest.Cubes, dc.Cubes...)
		for v := 0; v < s.NumVars(); v++ {
			if s.VarCount(c, v) < 2 {
				continue
			}
			for p := 0; p < s.Size(v); p++ {
				if !s.Test(c, v, p) {
					continue
				}
				if s.VarCount(c, v) < 2 {
					break
				}
				// Slice of c with variable v pinned to part p: the minterms
				// lost if the part is lowered.
				copy(slice, c)
				s.ClearAll(slice, v)
				s.Set(slice, v, p)
				if rest.CoversCubeWith(a, slice) {
					s.Clear(c, v, p)
				}
			}
		}
	}
	a.FreeCube(slice)
	a.FreeCover(rest)
}

// MakePrime expands a single cube to a prime-like implicant of on∪dc.
func MakePrime(s *cube.Structure, c cube.Cube, on, dc *cube.Cover) {
	all := on.Copy().Append(dc)
	weights := make([]int, s.Bits())
	a := cube.GetArena(s)
	expandCubeWith(s, c, all, weights, a, nil)
	cube.PutArena(a)
}

// Verify reports whether cover f is a correct implementation of the
// function (on, dc): f covers on, and f ⊆ on∪dc. It is exact (tautology
// based) and intended for tests.
func Verify(f, on, dc *cube.Cover) bool {
	if dc == nil {
		dc = cube.NewCover(on.S)
	}
	fdc := f.Append(dc)
	for _, c := range on.Cubes {
		if !fdc.CoversCube(c) {
			return false
		}
	}
	ondc := on.Append(dc)
	for _, c := range f.Cubes {
		if !ondc.CoversCube(c) {
			return false
		}
	}
	return true
}
