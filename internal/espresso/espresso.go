// Package espresso implements a two-level multiple-valued logic minimizer
// in the tradition of ESPRESSO-MV: the EXPAND / IRREDUNDANT / REDUCE
// iteration over positional-notation covers, with implicant checks done by
// unate-recursion tautology of cofactors rather than an explicit off-set.
//
// The minimizer is heuristic: it returns a minimal (irredundant, prime in
// the one-part-at-a-time sense) cover whose cardinality is at a local
// minimum of the espresso loop. It is the substrate NOVA uses to derive
// input constraints (multiple-valued minimization of the symbolic FSM
// cover), to run symbolic minimization, and to measure the product-term
// cardinality of encoded PLAs.
package espresso

import (
	"context"
	"sort"

	"nova/internal/cube"
)

// Options tunes the minimization loop.
type Options struct {
	// Ctx, when non-nil, is polled between the EXPAND / IRREDUNDANT /
	// REDUCE passes; on cancellation Minimize returns the best valid
	// cover found so far instead of iterating further. Callers that need
	// a hard failure must check Ctx.Err() themselves after the call.
	Ctx context.Context
	// MaxIterations bounds the number of expand/irredundant/reduce rounds.
	// Zero selects the default of 16 (the loop normally converges in 2-4).
	MaxIterations int
	// SkipReduce disables the REDUCE/re-EXPAND refinement, yielding a
	// single EXPAND + IRREDUNDANT pass (faster, slightly worse covers).
	SkipReduce bool
	// LastGasp enables the last_gasp escape from local minima after the
	// main loop converges (slower; occasionally saves a cube).
	LastGasp bool
	// MakeSparse lowers redundantly asserted output/multiple-valued parts
	// after minimization (fewer care entries, same cube count).
	MakeSparse bool
}

// Minimize returns a minimized cover of the incompletely specified function
// with on-set cover on and don't-care cover dc (dc may be nil or empty).
// The input covers are not modified.
func Minimize(on, dc *cube.Cover, opt Options) *cube.Cover {
	if opt.MaxIterations <= 0 {
		opt.MaxIterations = 16
	}
	f := on.Copy()
	if dc == nil {
		dc = cube.NewCover(on.S)
	}
	f.SingleCubeContainment()
	dropEmpty(f)
	if canceled(opt.Ctx) {
		return f // the containment-reduced on-set is itself a valid cover
	}

	Expand(f, dc)
	Irredundant(f, dc)
	if opt.SkipReduce {
		finish(f, dc, opt)
		return f
	}
	best := f.Copy()
	for iter := 0; iter < opt.MaxIterations; iter++ {
		if canceled(opt.Ctx) {
			break // best is a valid minimized cover at this point
		}
		Reduce(f, dc)
		Expand(f, dc)
		Irredundant(f, dc)
		if cost(f) < cost(best) {
			best = f.Copy()
			continue
		}
		if opt.LastGasp && LastGasp(best, dc) {
			f = best.Copy()
			continue
		}
		break
	}
	finish(best, dc, opt)
	return best
}

// canceled reports whether the (possibly nil) context is done.
func canceled(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

func finish(f, dc *cube.Cover, opt Options) {
	if opt.MakeSparse {
		MakeSparse(f, dc)
	}
}

// cost orders covers primarily by cube count, secondarily by total set
// parts (fewer is better after cube count ties: more literals lowered).
func cost(f *cube.Cover) int {
	parts := 0
	for _, c := range f.Cubes {
		parts += c.PopCount()
	}
	return f.Len()*1_000_000 + parts
}

func dropEmpty(f *cube.Cover) {
	var kept []cube.Cube
	for _, c := range f.Cubes {
		if !f.S.IsEmpty(c) {
			kept = append(kept, c)
		}
	}
	f.Cubes = kept
}

// Expand raises each cube of f to a prime-like implicant: parts are raised
// one at a time (in an order favouring parts frequently set across the
// cover) and a raise is kept when the expanded cube is still an implicant
// of on∪dc, checked by tautology of the cofactor. Cubes made redundant by
// the expansion of earlier cubes are removed.
func Expand(f, dc *cube.Cover) {
	s := f.S
	// Snapshot the function: expansion is validated against the original
	// on∪dc, which must not alias the cubes being mutated.
	all := f.Copy().Append(dc)
	// Process larger cubes first: they are more likely to swallow others.
	order := make([]int, len(f.Cubes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return f.Cubes[order[a]].PopCount() > f.Cubes[order[b]].PopCount()
	})

	// Column weights: how often each part is set across the cover. Raising
	// frequently-set parts first heads toward cubes that cover many others.
	weights := make([]int, s.Bits())
	for _, c := range f.Cubes {
		for v := 0; v < s.NumVars(); v++ {
			off := s.Offset(v)
			for p := 0; p < s.Size(v); p++ {
				if s.Test(c, v, p) {
					weights[off+p]++
				}
			}
		}
	}

	covered := make([]bool, len(f.Cubes))
	for _, i := range order {
		if covered[i] {
			continue
		}
		c := f.Cubes[i]
		expandCube(s, c, all, weights)
		// Single-cube containment against the expanded cube.
		for _, j := range order {
			if j == i || covered[j] {
				continue
			}
			if cube.Contains(c, f.Cubes[j]) {
				covered[j] = true
			}
		}
	}
	var kept []cube.Cube
	for i, c := range f.Cubes {
		if !covered[i] {
			kept = append(kept, c)
		}
	}
	f.Cubes = kept
}

// expandCube raises the lowered parts of c in place, highest weight first,
// keeping each raise for which c remains an implicant of all.
func expandCube(s *cube.Structure, c cube.Cube, all *cube.Cover, weights []int) {
	type cand struct{ v, p, w int }
	var cands []cand
	for v := 0; v < s.NumVars(); v++ {
		off := s.Offset(v)
		for p := 0; p < s.Size(v); p++ {
			if !s.Test(c, v, p) {
				cands = append(cands, cand{v, p, weights[off+p]})
			}
		}
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].w > cands[b].w })
	for _, cd := range cands {
		s.Set(c, cd.v, cd.p)
		if !all.CoversCube(c) {
			s.Clear(c, cd.v, cd.p)
		}
	}
}

// Irredundant removes redundant cubes: cubes covered by the union of the
// remaining cubes and the don't-care set. Cubes are examined smallest
// first so large cubes (likely relatively essential) are retained.
func Irredundant(f, dc *cube.Cover) {
	order := make([]int, len(f.Cubes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return f.Cubes[order[a]].PopCount() < f.Cubes[order[b]].PopCount()
	})
	removed := make([]bool, len(f.Cubes))
	for _, i := range order {
		rest := cube.NewCover(f.S)
		for j, c := range f.Cubes {
			if j != i && !removed[j] {
				rest.Add(c)
			}
		}
		rest = rest.Append(dc)
		if rest.CoversCube(f.Cubes[i]) {
			removed[i] = true
		}
	}
	var kept []cube.Cube
	for i, c := range f.Cubes {
		if !removed[i] {
			kept = append(kept, c)
		}
	}
	f.Cubes = kept
}

// Reduce lowers each cube of f to a smaller implicant that still leaves f a
// cover: a set part of a variable (with at least two set parts) is cleared
// when the minterms it alone contributes are covered by the rest of the
// cover plus the don't-care set. Reduction unblocks the next EXPAND.
func Reduce(f, dc *cube.Cover) {
	s := f.S
	// Reduce larger cubes first (mirrors espresso's ordering heuristic).
	order := make([]int, len(f.Cubes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return f.Cubes[order[a]].PopCount() > f.Cubes[order[b]].PopCount()
	})
	for _, i := range order {
		c := f.Cubes[i]
		rest := f.Without(i).Append(dc)
		for v := 0; v < s.NumVars(); v++ {
			if s.VarCount(c, v) < 2 {
				continue
			}
			for p := 0; p < s.Size(v); p++ {
				if !s.Test(c, v, p) {
					continue
				}
				if s.VarCount(c, v) < 2 {
					break
				}
				// Slice of c with variable v pinned to part p: the minterms
				// lost if the part is lowered.
				slice := c.Copy()
				s.ClearAll(slice, v)
				s.Set(slice, v, p)
				if rest.CoversCube(slice) {
					s.Clear(c, v, p)
				}
			}
		}
	}
}

// MakePrime expands a single cube to a prime-like implicant of on∪dc.
func MakePrime(s *cube.Structure, c cube.Cube, on, dc *cube.Cover) {
	all := on.Copy().Append(dc)
	weights := make([]int, s.Bits())
	expandCube(s, c, all, weights)
}

// Verify reports whether cover f is a correct implementation of the
// function (on, dc): f covers on, and f ⊆ on∪dc. It is exact (tautology
// based) and intended for tests.
func Verify(f, on, dc *cube.Cover) bool {
	if dc == nil {
		dc = cube.NewCover(on.S)
	}
	fdc := f.Append(dc)
	for _, c := range on.Cubes {
		if !fdc.CoversCube(c) {
			return false
		}
	}
	ondc := on.Append(dc)
	for _, c := range f.Cubes {
		if !ondc.CoversCube(c) {
			return false
		}
	}
	return true
}
