package espresso

import (
	"testing"

	"nova/internal/cube"
)

// knownFunction checks Minimize against functions with known minimum
// two-level covers.

func TestKnownMajority(t *testing.T) {
	// 3-input majority: minimum SOP is ab + ac + bc (3 cubes).
	s := cube.NewStructure(2, 2, 2, 1)
	on := cube.NewCover(s)
	for v := 0; v < 8; v++ {
		ones := 0
		for b := 0; b < 3; b++ {
			if v&(1<<uint(b)) != 0 {
				ones++
			}
		}
		if ones < 2 {
			continue
		}
		c := s.NewCube()
		for b := 0; b < 3; b++ {
			s.Set(c, b, (v>>uint(b))&1)
		}
		s.Set(c, 3, 0)
		on.Add(c)
	}
	m := Minimize(on, nil, Options{})
	if m.Len() != 3 {
		t.Fatalf("majority minimized to %d cubes, want 3\n%s", m.Len(), m)
	}
	if !Verify(m, on, nil) {
		t.Fatal("majority cover wrong")
	}
}

func TestKnownParityIsIrreducible(t *testing.T) {
	// 3-input odd parity needs all 4 minterm cubes.
	s := cube.NewStructure(2, 2, 2, 1)
	on := cube.NewCover(s)
	for v := 0; v < 8; v++ {
		ones := 0
		for b := 0; b < 3; b++ {
			if v&(1<<uint(b)) != 0 {
				ones++
			}
		}
		if ones%2 == 0 {
			continue
		}
		c := s.NewCube()
		for b := 0; b < 3; b++ {
			s.Set(c, b, (v>>uint(b))&1)
		}
		s.Set(c, 3, 0)
		on.Add(c)
	}
	m := Minimize(on, nil, Options{})
	if m.Len() != 4 {
		t.Fatalf("parity minimized to %d cubes, want 4", m.Len())
	}
}

func TestKnownDecoder(t *testing.T) {
	// 2-to-4 decoder: 4 outputs, each a single minterm: 4 cubes minimum.
	s := cube.NewStructure(2, 2, 4)
	on := cube.NewCover(s)
	for v := 0; v < 4; v++ {
		c := s.NewCube()
		s.Set(c, 0, v&1)
		s.Set(c, 1, (v>>1)&1)
		s.Set(c, 2, v)
		on.Add(c)
	}
	m := Minimize(on, nil, Options{})
	if m.Len() != 4 {
		t.Fatalf("decoder minimized to %d cubes, want 4", m.Len())
	}
	if !Verify(m, on, nil) {
		t.Fatal("decoder cover wrong")
	}
}

func TestOutputSharing(t *testing.T) {
	// f0 = ab + cd, f1 = ab: the shared term ab must appear once with both
	// output bits, giving a 2-cube multi-output cover.
	s := cube.NewStructure(2, 2, 2, 2, 2)
	mk := func(fields ...string) cube.Cube { return parse(s, fields...) }
	on := cube.NewCover(s)
	on.Add(mk("01", "01", "11", "11", "11")) // ab -> f0 f1
	on.Add(mk("11", "11", "01", "01", "10")) // cd -> f0
	m := Minimize(on, nil, Options{})
	if m.Len() != 2 {
		t.Fatalf("minimized to %d cubes, want 2", m.Len())
	}
	if !Verify(m, on, nil) {
		t.Fatal("cover wrong")
	}
}

func TestSkipReduceStillCorrect(t *testing.T) {
	s := cube.NewStructure(2, 2, 2, 1)
	on := cube.NewCover(s)
	on.Add(parse(s, "01", "01", "11", "1"))
	on.Add(parse(s, "01", "10", "11", "1"))
	on.Add(parse(s, "10", "11", "01", "1"))
	m := Minimize(on, nil, Options{SkipReduce: true})
	if !Verify(m, on, nil) {
		t.Fatal("SkipReduce broke equivalence")
	}
	if m.Len() > on.Len() {
		t.Fatal("SkipReduce grew the cover")
	}
}

func TestVerifyCatchesWrongCover(t *testing.T) {
	s := cube.NewStructure(2, 2, 1)
	on := cube.NewCover(s)
	on.Add(parse(s, "01", "01", "1"))
	wrong := cube.NewCover(s)
	wrong.Add(parse(s, "10", "01", "1")) // different function
	if Verify(wrong, on, nil) {
		t.Fatal("Verify accepted a wrong cover")
	}
	over := cube.NewCover(s)
	over.Add(parse(s, "11", "01", "1")) // covers onset but exceeds on∪dc
	if Verify(over, on, nil) {
		t.Fatal("Verify accepted an over-approximation")
	}
}

func TestMinimizeMVStateGrouping(t *testing.T) {
	// One 6-valued variable: on-set {v0,v1,v2,v3} with one output. The
	// minimum MV cover is a single literal.
	s := cube.NewStructure(6, 1)
	on := cube.NewCover(s)
	for v := 0; v < 4; v++ {
		c := s.NewCube()
		s.Set(c, 0, v)
		s.Set(c, 1, 0)
		on.Add(c)
	}
	m := Minimize(on, nil, Options{})
	if m.Len() != 1 || s.VarCount(m.Cubes[0], 0) != 4 {
		t.Fatalf("MV grouping failed:\n%s", m)
	}
}
