package espresso

import (
	"math/rand"
	"testing"

	"nova/internal/cube"
)

func TestPrimesXor(t *testing.T) {
	// XOR's primes are its two minterm cubes (no consensus merge exists).
	s := cube.NewStructure(2, 2, 1)
	on := cube.NewCover(s)
	on.Add(parse(s, "01", "10", "1"))
	on.Add(parse(s, "10", "01", "1"))
	p := Primes(on, cube.NewCover(s), ExactOptions{})
	if p.Len() != 2 {
		t.Fatalf("XOR has %d primes, want 2\n%s", p.Len(), p)
	}
}

func TestPrimesMajority(t *testing.T) {
	// Majority has exactly three primes: ab, ac, bc.
	s := cube.NewStructure(2, 2, 2, 1)
	on := cube.NewCover(s)
	for v := 0; v < 8; v++ {
		ones := 0
		for b := 0; b < 3; b++ {
			ones += (v >> uint(b)) & 1
		}
		if ones < 2 {
			continue
		}
		c := s.NewCube()
		for b := 0; b < 3; b++ {
			s.Set(c, b, (v>>uint(b))&1)
		}
		s.Set(c, 3, 0)
		on.Add(c)
	}
	p := Primes(on, cube.NewCover(s), ExactOptions{})
	if p.Len() != 3 {
		t.Fatalf("majority has %d primes, want 3\n%s", p.Len(), p)
	}
	m := MinimumCover(on, cube.NewCover(s), ExactOptions{})
	if m.Len() != 3 {
		t.Fatalf("minimum cover %d, want 3", m.Len())
	}
}

func TestMinimumCoverWithDC(t *testing.T) {
	// on = a'b', dc = a'b: minimum is the single cube a'.
	s := cube.NewStructure(2, 2, 1)
	on := cube.NewCover(s)
	on.Add(parse(s, "01", "01", "1"))
	dc := cube.NewCover(s)
	dc.Add(parse(s, "01", "10", "1"))
	m := MinimumCover(on, dc, ExactOptions{})
	if m.Len() != 1 {
		t.Fatalf("minimum = %d cubes, want 1", m.Len())
	}
	if !Verify(m, on, dc) {
		t.Fatal("exact cover invalid")
	}
}

// Property: the heuristic minimizer matches the exact minimum on random
// small functions (or is within one cube — espresso is near-optimal on
// tiny instances, and equality holds in practice; we assert <= +1 to keep
// the property robust).
func TestHeuristicNearExact(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	s := cube.NewStructure(2, 2, 2, 2)
	worst := 0
	for trial := 0; trial < 40; trial++ {
		on, dc := randomOnDc(s, rng)
		exact := ExactCubeCount(on, dc, ExactOptions{})
		if exact < 0 {
			continue
		}
		heur := Minimize(on, dc, Options{}).Len()
		if heur < exact {
			t.Fatalf("trial %d: heuristic %d below exact %d (exact search buggy)", trial, heur, exact)
		}
		if heur-exact > worst {
			worst = heur - exact
		}
		if heur-exact > 1 {
			t.Fatalf("trial %d: heuristic %d vs exact %d", trial, heur, exact)
		}
	}
	t.Logf("worst heuristic gap over exact: %d cubes", worst)
}

func TestExactRespectsBounds(t *testing.T) {
	s := cube.NewStructure(2, 2, 1)
	on := cube.NewCover(s)
	on.Add(parse(s, "01", "10", "1"))
	on.Add(parse(s, "10", "01", "1"))
	if got := ExactCubeCount(on, nil2(s), ExactOptions{MaxNodes: 1}); got != -1 && got != 2 {
		t.Fatalf("bounded exact returned %d", got)
	}
}

func nil2(s *cube.Structure) *cube.Cover { return cube.NewCover(s) }
