//go:build !race

package obs

// raceEnabled is false in a regular build; see race_enabled_test.go.
const raceEnabled = false
