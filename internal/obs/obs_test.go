package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := New()
	ctx := With(context.Background(), tr)

	ctx1, root := Span(ctx, "root")
	_, child := Span(ctx1, "child")
	time.Sleep(time.Millisecond)
	child.End()
	root.End()

	snap := tr.Snapshot()
	if snap.Spans != 2 {
		t.Fatalf("spans = %d, want 2", snap.Spans)
	}
	var rootRec, childRec *SpanRecord
	for i := range tr.spans {
		switch tr.spans[i].Name {
		case "root":
			rootRec = &tr.spans[i]
		case "child":
			childRec = &tr.spans[i]
		}
	}
	if rootRec == nil || childRec == nil {
		t.Fatalf("missing span records: %+v", tr.spans)
	}
	if rootRec.Parent != 0 {
		t.Errorf("root parent = %d, want 0", rootRec.Parent)
	}
	if childRec.Parent != rootRec.ID {
		t.Errorf("child parent = %d, want %d", childRec.Parent, rootRec.ID)
	}
	// Self time of root excludes the child's duration.
	rp := snap.Phase("root")
	if rp == nil {
		t.Fatal("no root phase")
	}
	if rp.Self >= rp.Total {
		t.Errorf("root self %v not smaller than total %v", rp.Self, rp.Total)
	}
	if snap.Root != rootRec.Dur {
		t.Errorf("snapshot root = %v, want %v", snap.Root, rootRec.Dur)
	}
}

func TestSpanNestsAcrossGoroutines(t *testing.T) {
	tr := New()
	ctx := With(context.Background(), tr)
	ctx, root := Span(ctx, "parent")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := Span(ctx, "task")
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	want := root.rec.ID
	n := 0
	for _, r := range tr.spans {
		if r.Name == "task" {
			if r.Parent != want {
				t.Errorf("task parent = %d, want %d", r.Parent, want)
			}
			n++
		}
	}
	if n != 4 {
		t.Fatalf("task spans = %d, want 4", n)
	}
}

func TestNoTracerIsFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		c, sp := Span(ctx, "x")
		sp.SetInt("k", 1)
		sp.End()
		if c != ctx {
			t.Fatal("ctx changed without tracer")
		}
	})
	// Alloc counts are noise under the race detector (its runtime
	// allocates on its own schedule); the non-race runs enforce this.
	if allocs != 0 && !raceEnabled {
		t.Fatalf("no-op Span allocates %v/op, want 0", allocs)
	}
	// nil ctx and nil receivers must not panic.
	if _, sp := Span(nil, "x"); sp != nil { //nolint:staticcheck // nil ctx on purpose
		t.Fatal("nil ctx produced a span")
	}
	From(nil).Emit("x", nil)
	MetricsFrom(nil).Add("x", 1)
	var nilSnap *Tracer
	if nilSnap.Snapshot() != nil {
		t.Fatal("nil tracer snapshot not nil")
	}
}

func TestJSONLinesOutput(t *testing.T) {
	var buf bytes.Buffer
	tr := New()
	tr.SetLabel("m1")
	tr.SetWriter(LockedWriter(&buf))
	ctx := With(context.Background(), tr)
	c, sp := Span(ctx, "phase.a")
	sp.SetInt("cubes_in", 7)
	sp.SetStr("alg", "iexact")
	_, inner := Span(c, "phase.b")
	inner.End()
	sp.End()
	tr.Emit("summary", map[string]any{"area": 128})

	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, rec)
	}
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	// spans stream in End order: b before a.
	if lines[0]["name"] != "phase.b" || lines[1]["name"] != "phase.a" {
		t.Errorf("unexpected order: %v %v", lines[0]["name"], lines[1]["name"])
	}
	if lines[0]["parent"] == nil {
		t.Error("nested span lost its parent")
	}
	if lines[1]["attrs"].(map[string]any)["cubes_in"] != float64(7) {
		t.Errorf("attrs = %v", lines[1]["attrs"])
	}
	for _, l := range lines {
		if l["trace"] != "m1" {
			t.Errorf("line missing trace label: %v", l)
		}
	}
	if lines[2]["type"] != "summary" || lines[2]["area"] != float64(128) {
		t.Errorf("emit record = %v", lines[2])
	}
}

func TestMetricsCounters(t *testing.T) {
	var m Metrics
	m.EspressoIters.Add(3)
	m.TautMemoLookups.Add(10)
	m.TautMemoHits.Add(4)
	m.Add("algo.ok.iexact", 2)
	m.Max("pool.max_depth", 3)
	m.Max("pool.max_depth", 1) // must not lower
	m.Observe("search.work", 100)
	m.Observe("search.work", 3)

	c := m.Counters()
	if c["espresso.iterations"] != 3 || c["tautology.memo_lookups"] != 10 ||
		c["tautology.memo_hits"] != 4 || c["algo.ok.iexact"] != 2 ||
		c["pool.max_depth"] != 3 {
		t.Fatalf("counters = %v", c)
	}
	if _, ok := c["search.backtracks"]; ok {
		t.Error("zero counter should be omitted")
	}

	tr := New()
	tr.m = Metrics{}
	tr.m.Observe("h", 5)
	snap := tr.Snapshot()
	h, ok := snap.Hists["h"]
	if !ok || h.Count != 1 || h.Sum != 5 || h.MaxV != 5 {
		t.Fatalf("hist = %+v ok=%v", h, ok)
	}
}

func TestMetricsRace(t *testing.T) {
	var m Metrics
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.SearchBacktracks.Add(1)
				m.Add("named", 1)
				m.Max("gauge", int64(j))
				m.Observe("hist", int64(j))
				m.Counters()
			}
		}()
	}
	wg.Wait()
	c := m.Counters()
	if c["search.backtracks"] != 800 || c["named"] != 800 || c["gauge"] != 99 {
		t.Fatalf("counters = %v", c)
	}
}
