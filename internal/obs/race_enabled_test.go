//go:build race

package obs

// raceEnabled reports whether the test binary was built with the race
// detector. AllocsPerRun counts are noise there (the race runtime
// allocates on its own schedule), so the zero-alloc guard skips itself;
// the non-race runs keep it enforced.
const raceEnabled = true
