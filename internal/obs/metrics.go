package obs

import (
	"math"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the counter set of one tracer. The fixed fields cover the
// hot counters that explain a NOVA run; they are lock-free atomics so
// worker goroutines update them without contention. Rarer, dynamically
// named tallies (per-algorithm outcomes, pool high-water marks) live in
// the named map behind a mutex. Instrumentation in the single-owner hot
// loops (arena, searcher) accumulates into plain ints and flushes deltas
// here once per phase, so the atomics are off the innermost paths.
type Metrics struct {
	// espresso loop
	EspressoIters atomic.Int64 // EXPAND/IRREDUNDANT/REDUCE round trips

	// tautology memo (hit rate = hits / lookups)
	TautCalls       atomic.Int64
	TautMemoLookups atomic.Int64
	TautMemoHits    atomic.Int64

	// scratch arenas (reuse rate = reuses / gets)
	ArenaGets   atomic.Int64
	ArenaReuses atomic.Int64
	CubesAlloc  atomic.Int64
	CubesReused atomic.Int64

	// encoding searcher (face-constraint satisfaction ratio =
	// checks_ok / (checks_ok + checks_fail))
	SearchWork       atomic.Int64
	SearchBacktracks atomic.Int64
	SearchChecksOK   atomic.Int64
	SearchChecksFail atomic.Int64

	// sched pool
	PoolTasks  atomic.Int64 // tasks run on worker goroutines
	PoolInline atomic.Int64 // tasks run inline (pool full)

	mu    sync.Mutex
	named map[string]int64
	hists map[string]*Hist
}

// Add increments a named counter (e.g. "algo.gaveup.iexact_code").
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.named == nil {
		m.named = make(map[string]int64)
	}
	m.named[name] += delta
	m.mu.Unlock()
}

// Max raises the named counter to v if v is larger (gauge high-water
// marks, e.g. "pool.max_depth").
func (m *Metrics) Max(name string, v int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.named == nil {
		m.named = make(map[string]int64)
	}
	if v > m.named[name] {
		m.named[name] = v
	}
	m.mu.Unlock()
}

// ObserveDur records d into the named log2-bucketed histogram in
// microseconds — the convention for the per-endpoint latency histograms
// of the serving layer ("http.latency.<endpoint>").
func (m *Metrics) ObserveDur(name string, d time.Duration) {
	m.Observe(name, d.Microseconds())
}

// Observe records v into the named log2-bucketed histogram.
func (m *Metrics) Observe(name string, v int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.hists == nil {
		m.hists = make(map[string]*Hist)
	}
	h := m.hists[name]
	if h == nil {
		h = &Hist{}
		m.hists[name] = h
	}
	h.observe(v)
	m.mu.Unlock()
}

// Hist is a power-of-two bucketed histogram: bucket i counts values v
// with bits.Len64(v) == i, i.e. bucket 0 holds v==0, bucket i≥1 holds
// 2^(i-1) <= v < 2^i. Good enough to see searcher work and backtrack
// distributions without per-sample allocation.
type Hist struct {
	Buckets [65]int64
	Count   int64
	Sum     int64
	MaxV    int64
}

// NumBuckets is the bucket count of every Hist.
const NumBuckets = 65

// BucketUpper returns the inclusive upper bound of bucket i: bucket 0
// holds only 0, bucket i≥1 holds values up to 2^i - 1, and the last
// bucket is unbounded (math.MaxInt64, rendered as +Inf). This is the
// single source of truth for bucket edges: the Prometheus exposition
// writer and the /debug/vars bucket series both render the edges it
// returns, so the two views can never drift apart.
func BucketUpper(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i >= NumBuckets-1:
		return math.MaxInt64
	default:
		return 1<<uint(i) - 1
	}
}

// BucketLabel renders bucket i's upper bound for exposition: the decimal
// bound for the finite buckets, "+Inf" for the last.
func BucketLabel(i int) string {
	if i >= NumBuckets-1 {
		return "+Inf"
	}
	return strconv.FormatInt(BucketUpper(i), 10)
}

func (h *Hist) observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.Buckets[bits.Len64(uint64(v))]++
	h.Count++
	h.Sum += v
	if v > h.MaxV {
		h.MaxV = v
	}
}

// Counters returns every non-zero counter — fixed and named — keyed by
// a stable dotted name. Safe to call while the run is in flight.
func (m *Metrics) Counters() map[string]int64 {
	if m == nil {
		return nil
	}
	out := make(map[string]int64)
	put := func(name string, v int64) {
		if v != 0 {
			out[name] = v
		}
	}
	put("espresso.iterations", m.EspressoIters.Load())
	put("tautology.calls", m.TautCalls.Load())
	put("tautology.memo_lookups", m.TautMemoLookups.Load())
	put("tautology.memo_hits", m.TautMemoHits.Load())
	put("arena.gets", m.ArenaGets.Load())
	put("arena.reuses", m.ArenaReuses.Load())
	put("arena.cubes_alloc", m.CubesAlloc.Load())
	put("arena.cubes_reused", m.CubesReused.Load())
	put("search.work", m.SearchWork.Load())
	put("search.backtracks", m.SearchBacktracks.Load())
	put("search.checks_ok", m.SearchChecksOK.Load())
	put("search.checks_fail", m.SearchChecksFail.Load())
	put("pool.tasks", m.PoolTasks.Load())
	put("pool.inline", m.PoolInline.Load())
	m.mu.Lock()
	for k, v := range m.named {
		put(k, v)
	}
	m.mu.Unlock()
	return out
}

// Vars returns every counter plus a flat summary of every histogram —
// <name>.count / .sum / .max and one <name>.le.<bound> series per
// non-empty bucket (cumulative, bounds from BucketLabel, so /debug/vars
// and the Prometheus exposition render identical edges) — the form the
// serving layer exposes under /debug/vars. Counters() stays
// histogram-free so run reports keep their shape.
func (m *Metrics) Vars() map[string]int64 {
	if m == nil {
		return nil
	}
	out := m.Counters()
	m.mu.Lock()
	for k, h := range m.hists {
		out[k+".count"] = h.Count
		out[k+".sum"] = h.Sum
		out[k+".max"] = h.MaxV
		var cum int64
		for i, n := range h.Buckets {
			if n == 0 {
				continue
			}
			cum += n
			out[k+".le."+BucketLabel(i)] = cum
		}
	}
	m.mu.Unlock()
	return out
}

// Histograms returns a point-in-time copy of every named histogram,
// keyed by name. Safe to call while the run is in flight.
func (m *Metrics) Histograms() map[string]Hist {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.hists) == 0 {
		return nil
	}
	out := make(map[string]Hist, len(m.hists))
	for k, h := range m.hists {
		out[k] = *h
	}
	return out
}

// PhaseStat aggregates all spans sharing a name.
type PhaseStat struct {
	Name  string
	Count int
	Total time.Duration // sum of span durations (overlaps included)
	Self  time.Duration // Total minus time in direct child spans
	Min   time.Duration
	Max   time.Duration
}

// Snapshot is a point-in-time summary of a tracer: total wall time,
// every counter, and per-phase span aggregates. Attach it to results
// (Result.Telemetry) after a run.
type Snapshot struct {
	Wall     time.Duration    // tracer lifetime at snapshot
	Root     time.Duration    // sum of root (parentless) span durations
	Counters map[string]int64 // from Metrics.Counters
	Phases   []PhaseStat      // sorted by Self, descending
	Hists    map[string]Hist  // histogram copies
	Spans    int              // number of completed spans
}

// Snapshot summarizes the tracer now. The per-phase self time subtracts
// the duration of *direct* children only, so nested phases (espresso
// passes inside espresso.minimize inside nova.encode) are not double
// counted in phase tables.
func (t *Tracer) Snapshot() *Snapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]SpanRecord, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()

	s := &Snapshot{
		Wall:     time.Since(t.start),
		Counters: t.m.Counters(),
		Spans:    len(spans),
	}

	childTime := make(map[uint64]time.Duration, len(spans))
	for _, r := range spans {
		if r.Parent != 0 {
			childTime[r.Parent] += r.Dur
		} else {
			s.Root += r.Dur
		}
	}
	agg := make(map[string]*PhaseStat)
	for _, r := range spans {
		p := agg[r.Name]
		if p == nil {
			p = &PhaseStat{Name: r.Name, Min: r.Dur, Max: r.Dur}
			agg[r.Name] = p
		}
		p.Count++
		p.Total += r.Dur
		self := r.Dur - childTime[r.ID]
		if self < 0 {
			self = 0
		}
		p.Self += self
		if r.Dur < p.Min {
			p.Min = r.Dur
		}
		if r.Dur > p.Max {
			p.Max = r.Dur
		}
	}
	s.Phases = make([]PhaseStat, 0, len(agg))
	for _, p := range agg {
		s.Phases = append(s.Phases, *p)
	}
	sort.Slice(s.Phases, func(i, j int) bool {
		if s.Phases[i].Self != s.Phases[j].Self {
			return s.Phases[i].Self > s.Phases[j].Self
		}
		return s.Phases[i].Name < s.Phases[j].Name
	})

	t.m.mu.Lock()
	if len(t.m.hists) > 0 {
		s.Hists = make(map[string]Hist, len(t.m.hists))
		for k, h := range t.m.hists {
			s.Hists[k] = *h
		}
	}
	t.m.mu.Unlock()
	return s
}

// Phase returns the named phase aggregate, or nil.
func (s *Snapshot) Phase(name string) *PhaseStat {
	if s == nil {
		return nil
	}
	for i := range s.Phases {
		if s.Phases[i].Name == name {
			return &s.Phases[i]
		}
	}
	return nil
}
