package obs

import (
	"encoding/json"
	"expvar"
	"testing"
	"time"
)

func TestObserveDurAndVars(t *testing.T) {
	tr := New()
	m := tr.Metrics()
	m.Add("cache.hits", 3)
	m.PoolTasks.Add(2)
	m.ObserveDur("http.latency.encode", 1500*time.Microsecond)
	m.ObserveDur("http.latency.encode", 500*time.Microsecond)

	vars := m.Vars()
	if vars["cache.hits"] != 3 || vars["pool.tasks"] != 2 {
		t.Fatalf("counters lost: %v", vars)
	}
	if vars["http.latency.encode.count"] != 2 {
		t.Fatalf("hist count = %d, want 2", vars["http.latency.encode.count"])
	}
	if vars["http.latency.encode.sum"] != 2000 {
		t.Fatalf("hist sum = %d µs, want 2000", vars["http.latency.encode.sum"])
	}
	if vars["http.latency.encode.max"] != 1500 {
		t.Fatalf("hist max = %d µs, want 1500", vars["http.latency.encode.max"])
	}

	// Counters() must stay histogram-free: run reports key on it.
	if _, leaked := m.Counters()["http.latency.encode.count"]; leaked {
		t.Fatal("histogram summary leaked into Counters()")
	}
}

func TestVarsNilMetrics(t *testing.T) {
	var m *Metrics
	if m.Vars() != nil {
		t.Fatal("nil Metrics should return nil Vars")
	}
	m.ObserveDur("x", time.Second) // must not panic
}

func TestPublishExpvarRebinds(t *testing.T) {
	// expvar's registry is process-global, so use a name no other test
	// publishes. Publishing twice must not panic, and the second publish
	// must actually switch the served values to the new tracer.
	const name = "test.obs.rebind"
	a := New()
	a.Metrics().Add("which", 1)
	PublishExpvar(name, a)

	b := New()
	b.Metrics().Add("which", 2)
	PublishExpvar(name, b)

	v := expvar.Get(name)
	if v == nil {
		t.Fatal("expvar name not published")
	}
	var got map[string]int64
	if err := json.Unmarshal([]byte(v.String()), &got); err != nil {
		t.Fatalf("published value is not JSON: %v", err)
	}
	if got["which"] != 2 {
		t.Fatalf("which = %d, want 2 (rebind did not take)", got["which"])
	}
}
