package obs

import (
	"math"
	"strconv"
	"testing"
)

// TestBucketUpper pins the single source of truth for histogram bucket
// edges: bucket 0 holds only 0, bucket i holds values through 2^i - 1,
// and the last bucket is unbounded.
func TestBucketUpper(t *testing.T) {
	cases := []struct {
		i    int
		want int64
	}{
		{-1, 0},
		{0, 0},
		{1, 1},
		{2, 3},
		{3, 7},
		{10, 1023},
		{63, math.MaxInt64}, // 2^63 - 1 happens to equal MaxInt64
		{NumBuckets - 1, math.MaxInt64},
		{NumBuckets + 5, math.MaxInt64},
	}
	for _, c := range cases {
		if got := BucketUpper(c.i); got != c.want {
			t.Fatalf("BucketUpper(%d) = %d, want %d", c.i, got, c.want)
		}
	}
	// The edges must be non-decreasing and consistent with the observe
	// rule (bucket index = bits.Len64): every value lands in the first
	// bucket whose upper bound admits it.
	for i := 1; i < NumBuckets; i++ {
		if BucketUpper(i) < BucketUpper(i-1) {
			t.Fatalf("edges decrease at %d", i)
		}
	}
}

func TestBucketLabel(t *testing.T) {
	if got := BucketLabel(NumBuckets - 1); got != "+Inf" {
		t.Fatalf("last label = %q, want +Inf", got)
	}
	if got := BucketLabel(0); got != "0" {
		t.Fatalf("label(0) = %q", got)
	}
	if got := BucketLabel(4); got != "15" {
		t.Fatalf("label(4) = %q, want 15", got)
	}
}

// TestVarsBucketSeries checks the cumulative <name>.le.<bound> series
// Vars emits for histograms: cumulative counts on BucketLabel edges,
// consistent with .count.
func TestVarsBucketSeries(t *testing.T) {
	var m Metrics
	for _, v := range []int64{0, 1, 2, 3, 100, 100, 5000} {
		m.Observe("lat", v)
	}
	vars := m.Vars()
	if vars["lat.count"] != 7 {
		t.Fatalf("count = %d", vars["lat.count"])
	}
	// v==0 → bucket 0 (le.0); v==1 → le.1; 2,3 → le.3; 100 ×2 → le.127;
	// 5000 → le.8191. Series are cumulative.
	wants := map[string]int64{
		"lat.le.0":    1,
		"lat.le.1":    2,
		"lat.le.3":    4,
		"lat.le.127":  6,
		"lat.le.8191": 7,
	}
	for k, want := range wants {
		if vars[k] != want {
			t.Fatalf("%s = %d, want %d (vars %v)", k, vars[k], want, vars)
		}
	}
	// Cumulative series must be non-decreasing across ascending bounds
	// and top out at the count.
	var last, top int64
	for i := 0; i < NumBuckets-1; i++ {
		k := "lat.le." + BucketLabel(i)
		v, ok := vars[k]
		if !ok {
			continue
		}
		if v < last {
			t.Fatalf("%s = %d decreases below %d", k, v, last)
		}
		last, top = v, v
	}
	if top != vars["lat.count"] {
		t.Fatalf("largest cumulative bucket %d != count %d", top, vars["lat.count"])
	}
}

// TestHistogramsCopy checks Histograms returns an independent snapshot.
func TestHistogramsCopy(t *testing.T) {
	var m *Metrics
	if m.Histograms() != nil {
		t.Fatal("nil metrics should return nil")
	}
	m = &Metrics{}
	if m.Histograms() != nil {
		t.Fatal("no histograms should return nil")
	}
	m.Observe("h", 9)
	snap := m.Histograms()
	h, ok := snap["h"]
	if !ok || h.Count != 1 || h.Sum != 9 {
		t.Fatalf("snapshot %+v", snap)
	}
	m.Observe("h", 9)
	if snap["h"].Count != 1 {
		t.Fatal("snapshot aliases the live histogram")
	}
	if strconv.FormatInt(h.MaxV, 10) != "9" {
		t.Fatalf("max %d", h.MaxV)
	}
}
