// Package obs is the observability layer of the encoding pipeline: span
// style phase tracing, atomic counters and histograms for the hot loops
// (espresso passes, the backtracking searcher, the worker pool), and
// snapshotting for run reports. It is built on the standard library only
// (log/slog, expvar, encoding/json) and is designed around two rules:
//
//  1. Opt-in without global state: a *Tracer travels in a context.Context
//     (obs.With / obs.From) or in an Options field; nothing is recorded
//     unless a caller attached one.
//  2. The disabled path is free: with no tracer in the context, obs.Span
//     returns a nil *ActiveSpan whose methods are no-ops and performs
//     zero allocations, so the hot paths keep their PR-2 benchmark
//     numbers (guarded by TestNoopTracerZeroAlloc).
//
// Spans nest through the context: a span started inside an
// internal/sched worker task parents to the span of the goroutine that
// submitted the task, because the group context derives from the
// submitter's context. Span records are kept in memory for Snapshot and
// optionally streamed as JSON lines (one object per line) to a writer,
// so a trace file can be post-processed into per-phase tables.
package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// Tracer collects spans and counters for one run (or one batch). It is
// safe for concurrent use by the worker goroutines of a run. The zero
// value is not usable; create tracers with New.
type Tracer struct {
	start  time.Time
	nextID atomic.Uint64
	m      Metrics

	mu     sync.Mutex
	label  string
	spans  []SpanRecord
	w      io.Writer
	logger *slog.Logger
}

// New returns an empty tracer whose clock starts now.
func New() *Tracer { return &Tracer{start: time.Now()} }

// SetLabel names the tracer; the label is stamped on every JSON record
// (field "trace"), so several tracers can share one stream.
func (t *Tracer) SetLabel(label string) {
	t.mu.Lock()
	t.label = label
	t.mu.Unlock()
}

// SetWriter streams completed spans (and Emit events) to w as JSON
// lines. Writers shared between tracers must serialize whole lines; wrap
// them with LockedWriter.
func (t *Tracer) SetWriter(w io.Writer) {
	t.mu.Lock()
	t.w = w
	t.mu.Unlock()
}

// SetLogger mirrors completed spans to l at Debug level.
func (t *Tracer) SetLogger(l *slog.Logger) {
	t.mu.Lock()
	t.logger = l
	t.mu.Unlock()
}

// Metrics returns the tracer's counter set.
func (t *Tracer) Metrics() *Metrics { return &t.m }

// With returns a context carrying the tracer. A nil tracer returns ctx
// unchanged.
func With(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// From returns the tracer carried by ctx, or nil. Safe on a nil context.
func From(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// MetricsFrom returns the counter set of the context's tracer, or nil.
// Instrumentation sites nil-check the result once and skip all
// accounting when tracing is off.
func MetricsFrom(ctx context.Context) *Metrics {
	if t := From(ctx); t != nil {
		return &t.m
	}
	return nil
}

// Attr is one span attribute: an int64 or a string value.
type Attr struct {
	Key string
	Int int64
	Str string
}

// SpanRecord is one completed span.
type SpanRecord struct {
	ID     uint64
	Parent uint64 // 0 = root
	Name   string
	Start  time.Duration // offset from the tracer's start
	Dur    time.Duration
	Attrs  []Attr
}

// ActiveSpan is an in-flight span. The nil *ActiveSpan is the no-op
// span: every method is safe and free on it.
type ActiveSpan struct {
	t     *Tracer
	rec   SpanRecord
	begin time.Time
}

// Span starts a span named name under the current span of ctx, returning
// a derived context (carrying the new span for nesting) and the span.
// With no tracer in ctx — or a nil ctx — it returns ctx and nil without
// allocating; end the result unconditionally, End is nil-safe.
func Span(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	t := From(ctx)
	if t == nil {
		return ctx, nil
	}
	sp := &ActiveSpan{t: t, begin: time.Now()}
	sp.rec.ID = t.nextID.Add(1)
	sp.rec.Name = name
	sp.rec.Start = sp.begin.Sub(t.start)
	if parent, _ := ctx.Value(spanKey).(*ActiveSpan); parent != nil {
		sp.rec.Parent = parent.rec.ID
	}
	return context.WithValue(ctx, spanKey, sp), sp
}

// SetInt attaches an integer attribute (cube counts, work ticks, ...).
func (s *ActiveSpan) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.rec.Attrs = append(s.rec.Attrs, Attr{Key: key, Int: v})
}

// SetStr attaches a string attribute (machine name, algorithm, ...).
func (s *ActiveSpan) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.rec.Attrs = append(s.rec.Attrs, Attr{Key: key, Str: v})
}

// End completes the span: the record is stored on the tracer and, when
// configured, written as a JSON line and mirrored to the slog logger.
// End on a nil span is a no-op.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.rec.Dur = time.Since(s.begin)
	t := s.t
	t.mu.Lock()
	t.spans = append(t.spans, s.rec)
	w, logger, label := t.w, t.logger, t.label
	t.mu.Unlock()
	if w != nil {
		writeJSONLine(w, spanJSON(label, s.rec))
	}
	if logger != nil {
		logger.LogAttrs(context.Background(), slog.LevelDebug, "span",
			slog.String("name", s.rec.Name),
			slog.Uint64("id", s.rec.ID),
			slog.Uint64("parent", s.rec.Parent),
			slog.Duration("dur", s.rec.Dur))
	}
}

// Emit writes an arbitrary event record to the trace stream (type typ,
// plus the given fields) — used by the CLI tools for per-machine summary
// lines so a trace file alone can regenerate result tables. Without a
// writer it is a no-op.
func (t *Tracer) Emit(typ string, fields map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	w, label := t.w, t.label
	t.mu.Unlock()
	if w == nil {
		return
	}
	rec := map[string]any{"type": typ, "t_us": time.Since(t.start).Microseconds()}
	if label != "" {
		rec["trace"] = label
	}
	for k, v := range fields {
		rec[k] = v
	}
	writeJSONLine(w, rec)
}

// spanJSON builds the JSON-line representation of a span record.
func spanJSON(label string, r SpanRecord) map[string]any {
	rec := map[string]any{
		"type":     "span",
		"id":       r.ID,
		"name":     r.Name,
		"start_us": r.Start.Microseconds(),
		"dur_us":   r.Dur.Microseconds(),
	}
	if label != "" {
		rec["trace"] = label
	}
	if r.Parent != 0 {
		rec["parent"] = r.Parent
	}
	if len(r.Attrs) > 0 {
		attrs := make(map[string]any, len(r.Attrs))
		for _, a := range r.Attrs {
			if a.Str != "" {
				attrs[a.Key] = a.Str
			} else {
				attrs[a.Key] = a.Int
			}
		}
		rec["attrs"] = attrs
	}
	return rec
}

func writeJSONLine(w io.Writer, rec map[string]any) {
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b = append(b, '\n')
	w.Write(b) //nolint:errcheck // tracing is best-effort by design
}

// lockedWriter serializes whole-line writes from several tracers.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// LockedWriter wraps w so that concurrent writers emit whole lines
// without interleaving; hand the result to several tracers sharing one
// trace file.
func LockedWriter(w io.Writer) io.Writer { return &lockedWriter{w: w} }

// expvar publication — duplicate names panic in expvar, so the registry
// below makes PublishExpvar idempotent per name and rebindable: the
// published Func reads the registry on every call, so re-publishing a
// name really does switch /debug/vars to the new tracer.
var (
	expvarMu  sync.Mutex
	published = map[string]*Tracer{}
)

// PublishExpvar exposes the tracer's counters and histogram summaries
// under the given expvar name (for processes that serve /debug/vars).
// Publishing the same name twice rebinds it to the new tracer instead of
// panicking.
func PublishExpvar(name string, t *Tracer) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	_, again := published[name]
	published[name] = t
	if again {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		expvarMu.Lock()
		cur := published[name]
		expvarMu.Unlock()
		if cur == nil {
			return map[string]int64{}
		}
		return cur.m.Vars()
	}))
}
