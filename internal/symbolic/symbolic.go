// Package symbolic implements the revisited symbolic minimization of
// Section VI-6.1: a per-next-state minimization loop that produces a
// minimal encoding-independent symbolic cover FinalP together with a
// weighted acyclic graph of output covering constraints, and packages the
// companion input constraints into the clustered (IC, OC) instance solved
// by iohybrid_code / iovariant_code.
//
// The two modifications of the paper relative to De Micheli's original
// loop are implemented: (1) every minimization carries a complete
// description of the binary outputs, with all product terms of the input
// cover not committed to the current on/off sets placed in the don't-care
// set; (2) covering relations of the i-th stage are accepted only when the
// minimization actually decreases the on-set cardinality of next state i.
package symbolic

import (
	"sort"

	"nova/internal/constraint"
	"nova/internal/cube"
	"nova/internal/encode"
	"nova/internal/espresso"
	"nova/internal/kiss"
	"nova/internal/mvmin"
	"nova/internal/obs"
)

// Edge is an output covering relation: the code of From must bitwise cover
// the code of To (edge (j, i, w) of the paper's graph G with From=j, To=i).
type Edge struct {
	From, To int
	W        int
}

// Options tunes the symbolic minimization.
type Options struct {
	// Espresso options for the per-state minimizations.
	Min espresso.Options
	// SelectSmallFirst processes next states by increasing on-set size
	// instead of the default decreasing order (ablation hook).
	SelectSmallFirst bool
}

// Output is the result of symbolic minimization.
type Output struct {
	P      *mvmin.Problem
	FinalP *cube.Cover
	Graph  []Edge
	Order  []int // the next-state processing order used
	// Problem is the clustered ordered-face-embedding instance for the
	// state variable.
	Problem encode.IOProblem
	// SymIns carries the input constraints of each symbolic input
	// variable extracted from FinalP.
	SymIns [][]constraint.Constraint
	// InitialCubes / FinalCubes document the gain of the symbolic loop.
	InitialCubes, FinalCubes int
}

// Analyze runs the full symbolic minimization pipeline on the FSM.
func Analyze(f *kiss.FSM, opt Options) (*Output, error) {
	sctx, sp := obs.Span(opt.Min.Ctx, "symbolic.analyze")
	opt.Min.Ctx = sctx
	defer sp.End()
	p, err := mvmin.Build(f)
	if err != nil {
		return nil, err
	}
	// Step 0: disjoint minimization of the symbolic cover.
	c := p.Minimize(opt.Min)
	ns := f.NumStates()
	s := p.S

	out := &Output{P: p, InitialCubes: c.Len()}

	// On_k: implicants of the k-th next state, with binary outputs
	// unchanged. Cubes asserting no next state are pure output cubes.
	onSets := make([][]cube.Cube, ns)
	var pure []cube.Cube
	for _, q := range c.Cubes {
		st := -1
		for j := 0; j < ns; j++ {
			if s.Test(q, p.OutVar, j) {
				st = j
				break
			}
		}
		if st < 0 {
			pure = append(pure, q)
		} else {
			onSets[st] = append(onSets[st], q)
		}
	}

	// Processing order (step 4's "select a symbol").
	order := make([]int, 0, ns)
	for i := 0; i < ns; i++ {
		if len(onSets[i]) > 0 {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		if opt.SelectSmallFirst {
			return len(onSets[order[a]]) < len(onSets[order[b]])
		}
		return len(onSets[order[a]]) > len(onSets[order[b]])
	})
	out.Order = order

	// adjacency: covers[u] = set of v such that u covers v (arc u -> v).
	covers := make([][]bool, ns)
	for i := range covers {
		covers[i] = make([]bool, ns)
	}
	hasPath := func(from, to int) bool {
		if from == to {
			return false
		}
		seen := make([]bool, ns)
		stack := []int{from}
		seen[from] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for v := 0; v < ns; v++ {
				if covers[u][v] && !seen[v] {
					if v == to {
						return true
					}
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		return false
	}

	// The per-state minimization works over a reduced structure: the same
	// input variables, with an output part holding the state-i flag
	// followed by every non-next-state output part (binary outputs and
	// 1-hot symbolic output groups).
	rest := s.Size(p.OutVar) - ns
	redSizes := make([]int, 0, p.OutVar+1)
	for v := 0; v < p.OutVar; v++ {
		redSizes = append(redSizes, s.Size(v))
	}
	redSizes = append(redSizes, 1+rest)
	rs := cube.NewStructure(redSizes...)

	toReduced := func(q cube.Cube, flag bool) cube.Cube {
		r := rs.NewCube()
		for v := 0; v < p.OutVar; v++ {
			for pt := 0; pt < s.Size(v); pt++ {
				if s.Test(q, v, pt) {
					rs.Set(r, v, pt)
				}
			}
		}
		if flag {
			rs.Set(r, p.OutVar, 0)
		}
		for o := 0; o < rest; o++ {
			if s.Test(q, p.OutVar, ns+o) {
				rs.Set(r, p.OutVar, 1+o)
			}
		}
		return r
	}
	fromReduced := func(r cube.Cube, state int) cube.Cube {
		q := s.NewCube()
		for v := 0; v < p.OutVar; v++ {
			for pt := 0; pt < rs.Size(v); pt++ {
				if rs.Test(r, v, pt) {
					s.Set(q, v, pt)
				}
			}
		}
		if state >= 0 && rs.Test(r, p.OutVar, 0) {
			s.Set(q, p.OutVar, state)
		}
		for o := 0; o < rest; o++ {
			if rs.Test(r, p.OutVar, 1+o) {
				s.Set(q, p.OutVar, ns+o)
			}
		}
		return q
	}

	// Global don't-cares translated to the reduced structure once per
	// state (flag handling depends on i).
	gain := make([]int, ns)
	P := cube.NewCover(s)
	for _, q := range pure {
		P.Add(q.Copy())
	}

	// All per-state minimizations run over the same reduced layout: hold
	// one scratch arena across the loop so cofactor buffers and the
	// tautology memo are shared between stages.
	arena := cube.GetArena(rs)
	defer cube.PutArena(arena)

	for _, i := range order {
		on := cube.NewCover(rs)
		for _, q := range onSets[i] {
			on.Add(toReduced(q, true))
		}
		dc := cube.NewCover(rs)
		// Dc_i: On_j for every j with no path i -> j (the flag may be
		// asserted there: j would then have to cover i). The binary
		// outputs of every other product term are in the DC set as well
		// (modification 1: complete description of the binary outputs).
		for j := 0; j < ns; j++ {
			if j == i {
				continue
			}
			free := !hasPath(i, j)
			for _, q := range onSets[j] {
				r := toReduced(q, free)
				if free || !rs.IsEmpty(r) {
					dc.Add(r)
				}
			}
		}
		for _, q := range pure {
			dc.Add(toReduced(q, false))
		}
		// Unspecified-space and per-output don't-cares from the FSM.
		for _, d := range p.Dc.Cubes {
			allNext := true
			for j := 0; j < ns; j++ {
				if !s.Test(d, p.OutVar, j) {
					allNext = false
					break
				}
			}
			r := toReduced(d, allNext)
			if !rs.IsEmpty(r) {
				dc.Add(r)
			}
		}
		mb := espresso.MinimizeWith(on, dc, opt.Min, arena)
		var mi []cube.Cube
		for _, r := range mb.Cubes {
			if rs.Test(r, p.OutVar, 0) {
				mi = append(mi, r)
			}
		}
		if len(mi) < len(onSets[i]) {
			// Accept the stage (modification 2).
			gain[i] = len(onSets[i]) - len(mi)
			seen := map[int]bool{}
			for _, r := range mi {
				for j := 0; j < ns; j++ {
					if j == i || seen[j] || hasPath(i, j) || covers[j][i] {
						continue
					}
					for _, q := range onSets[j] {
						if rs.Intersects(r, toReduced(q, true)) {
							seen[j] = true
							break
						}
					}
				}
			}
			for j := 0; j < ns; j++ {
				if seen[j] {
					covers[j][i] = true
					out.Graph = append(out.Graph, Edge{From: j, To: i, W: gain[i]})
				}
			}
			for _, r := range mb.Cubes {
				P.Add(fromReduced(r, i))
			}
		} else {
			for _, q := range onSets[i] {
				P.Add(q.Copy())
			}
		}
	}

	// Step 10: FinalP = minimize(P). A full expand would need the off-sets
	// implied by G, so the final cleanup is containment + irredundancy
	// against the global DC (never enlarging cubes, hence safe).
	P.SingleCubeContainment()
	espresso.Irredundant(P, p.Dc)
	out.FinalP = P
	out.FinalCubes = P.Len()

	out.Problem = buildIOProblem(p, P, out.Graph, gain)
	for vi := range f.SymIns {
		out.SymIns = append(out.SymIns, varConstraints(p, P, p.SymVars[vi], len(f.SymIns[vi].Values)))
	}
	return out, nil
}

// buildIOProblem clusters the constraints of FinalP per next state.
func buildIOProblem(p *mvmin.Problem, finalP *cube.Cover, graph []Edge, gain []int) encode.IOProblem {
	ns := p.F.NumStates()
	s := p.S
	prob := encode.IOProblem{N: ns}

	perState := make([][]constraint.Constraint, ns)
	for _, q := range finalP.Cubes {
		parts := s.VarParts(q, p.StateVar)
		if len(parts) < 2 || len(parts) == ns {
			continue
		}
		set := constraint.NewSet(ns)
		for _, pt := range parts {
			set.Add(pt)
		}
		ic := constraint.Constraint{Set: set, Weight: 1}
		prob.IC = append(prob.IC, ic)
		st := -1
		for j := 0; j < ns; j++ {
			if s.Test(q, p.OutVar, j) {
				st = j
				break
			}
		}
		if st < 0 {
			prob.ICo = append(prob.ICo, ic)
		} else {
			perState[st] = append(perState[st], ic)
		}
	}

	ocPer := make([][]encode.OCEdge, ns)
	for _, e := range graph {
		ocPer[e.To] = append(ocPer[e.To], encode.OCEdge{U: e.From, V: e.To})
	}
	for i := 0; i < ns; i++ {
		if len(ocPer[i]) == 0 && len(perState[i]) == 0 {
			continue
		}
		w := gain[i]
		if w == 0 {
			w = constraint.TotalWeight(constraint.Normalize(perState[i]))
		}
		prob.Clusters = append(prob.Clusters, encode.Cluster{
			State: i,
			IC:    constraint.Normalize(perState[i]),
			OC:    ocPer[i],
			W:     w,
		})
	}
	return prob
}

// varConstraints extracts the constraints of one symbolic input variable
// from FinalP.
func varConstraints(p *mvmin.Problem, finalP *cube.Cover, v, n int) []constraint.Constraint {
	var raw []constraint.Constraint
	for _, q := range finalP.Cubes {
		parts := p.S.VarParts(q, v)
		if len(parts) < 2 || len(parts) == n {
			continue
		}
		set := constraint.NewSet(n)
		for _, pt := range parts {
			set.Add(pt)
		}
		raw = append(raw, constraint.Constraint{Set: set, Weight: 1})
	}
	return constraint.Normalize(raw)
}

// EncodeIOHybrid is a convenience running the full iohybrid pipeline on an
// FSM: symbolic minimization, state encoding with IOHybrid, symbolic-input
// encoding with IHybrid on the companion constraints.
func EncodeIOHybrid(f *kiss.FSM, bits int, hopt encode.HybridOptions, sopt Options) (*Output, encode.Result, error) {
	out, err := Analyze(f, sopt)
	if err != nil {
		return nil, encode.Result{}, err
	}
	res := encode.IOHybrid(out.Problem, bits, hopt)
	return out, res, nil
}
