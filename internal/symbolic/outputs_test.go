package symbolic

import (
	"testing"

	"nova/internal/encode"
	"nova/internal/kiss"
)

// symOutFSM has a symbolic output "phase" whose values are ripe for
// covering relations: several states assert different phases on the same
// inputs.
func symOutFSM(t *testing.T) *kiss.FSM {
	t.Helper()
	f := kiss.New("symout", 2, 1)
	f.AddSymbolicOutput("phase", "idlep", "fetchp", "execp", "haltp")
	add := func(in, ps, ns, out, ph string) {
		f.MustAddRowSym(in, nil, ps, ns, out, []string{ph})
	}
	add("0-", "s0", "s0", "0", "idlep")
	add("1-", "s0", "s1", "1", "fetchp")
	add("-0", "s1", "s2", "0", "execp")
	add("-1", "s1", "s0", "0", "idlep")
	add("0-", "s2", "s2", "1", "execp")
	add("1-", "s2", "s3", "1", "haltp")
	add("--", "s3", "s3", "0", "haltp")
	return f
}

func TestOutputCoveringShape(t *testing.T) {
	f := symOutFSM(t)
	edges, err := OutputCovering(f, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := len(f.SymOuts[0].Values)
	for _, e := range edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n || e.From == e.To {
			t.Fatalf("bad edge %+v", e)
		}
		if e.W <= 0 {
			t.Fatalf("edge %+v without gain", e)
		}
	}
	// Acyclicity.
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for _, e := range edges {
		adj[e.From][e.To] = true
	}
	color := make([]int, n)
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = 1
		for v := 0; v < n; v++ {
			if adj[u][v] {
				if color[v] == 1 {
					return false
				}
				if color[v] == 0 && !dfs(v) {
					return false
				}
			}
		}
		color[u] = 2
		return true
	}
	for i := 0; i < n; i++ {
		if color[i] == 0 && !dfs(i) {
			t.Fatal("covering graph has a cycle")
		}
	}
}

func TestOutputCoveringBadIndex(t *testing.T) {
	f := symOutFSM(t)
	if _, err := OutputCovering(f, 5, Options{}); err == nil {
		t.Fatal("want error for bad index")
	}
}

func TestEncodeSymbolicOutputs(t *testing.T) {
	f := symOutFSM(t)
	outs, err := EncodeSymbolicOutputs(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("got %d encodings", len(outs))
	}
	enc := outs[0].Enc
	if !enc.Distinct() {
		t.Fatal("codes not distinct")
	}
	for _, e := range outs[0].Edges {
		if !encode.OCSatisfied(enc, encode.OCEdge{U: e.From, V: e.To}) {
			t.Fatalf("covering edge %+v violated by %s", e, enc)
		}
	}
}
