package symbolic

import (
	"fmt"
	"sort"

	"nova/internal/cube"
	"nova/internal/encode"
	"nova/internal/encoding"
	"nova/internal/espresso"
	"nova/internal/kiss"
	"nova/internal/mvmin"
	"nova/internal/obs"
)

// OutputCovering derives output covering constraints for one symbolic
// output variable of the FSM — the extension to symbolically specified
// proper outputs announced in the paper's Section VII. The loop is the
// symbolic minimization of Section 6.1 applied to the values of the chosen
// output variable instead of the next states: value u must cover value v
// bitwise whenever an accepted implicant of v's on-set spills into u's.
//
// The returned edges (From covers To) feed OutEncoder (or the io
// algorithms) to choose the value codes.
func OutputCovering(f *kiss.FSM, which int, opt Options) ([]Edge, error) {
	if which < 0 || which >= len(f.SymOuts) {
		return nil, fmt.Errorf("symbolic: no symbolic output %d", which)
	}
	p, err := mvmin.Build(f)
	if err != nil {
		return nil, err
	}
	c := p.Minimize(opt.Min)
	s := p.S
	base := p.SymOutBase[which]
	count := len(f.SymOuts[which].Values)

	// On-sets per value of the chosen output variable.
	onSets := make([][]cube.Cube, count)
	var other []cube.Cube
	for _, q := range c.Cubes {
		v := -1
		for j := 0; j < count; j++ {
			if s.Test(q, p.OutVar, base+j) {
				v = j
				break
			}
		}
		if v < 0 {
			other = append(other, q)
		} else {
			onSets[v] = append(onSets[v], q)
		}
	}

	order := make([]int, 0, count)
	for i := 0; i < count; i++ {
		if len(onSets[i]) > 0 {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		if opt.SelectSmallFirst {
			return len(onSets[order[a]]) < len(onSets[order[b]])
		}
		return len(onSets[order[a]]) > len(onSets[order[b]])
	})

	covers := make([][]bool, count)
	for i := range covers {
		covers[i] = make([]bool, count)
	}
	hasPath := func(from, to int) bool {
		if from == to {
			return false
		}
		seen := make([]bool, count)
		stack := []int{from}
		seen[from] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for v := 0; v < count; v++ {
				if covers[u][v] && !seen[v] {
					if v == to {
						return true
					}
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		return false
	}

	// Reduced structure: inputs + (flag + every output part outside the
	// chosen group).
	total := s.Size(p.OutVar)
	rest := total - count
	redSizes := make([]int, 0, p.OutVar+1)
	for v := 0; v < p.OutVar; v++ {
		redSizes = append(redSizes, s.Size(v))
	}
	redSizes = append(redSizes, 1+rest)
	rs := cube.NewStructure(redSizes...)

	// restIndex maps output parts outside [base, base+count) to reduced
	// positions 1..rest.
	restIndex := make([]int, total)
	ri := 1
	for pt := 0; pt < total; pt++ {
		if pt >= base && pt < base+count {
			restIndex[pt] = -1
			continue
		}
		restIndex[pt] = ri
		ri++
	}
	toReduced := func(q cube.Cube, flag bool) cube.Cube {
		r := rs.NewCube()
		for v := 0; v < p.OutVar; v++ {
			for pt := 0; pt < s.Size(v); pt++ {
				if s.Test(q, v, pt) {
					rs.Set(r, v, pt)
				}
			}
		}
		if flag {
			rs.Set(r, p.OutVar, 0)
		}
		for pt := 0; pt < total; pt++ {
			if restIndex[pt] > 0 && s.Test(q, p.OutVar, pt) {
				rs.Set(r, p.OutVar, restIndex[pt])
			}
		}
		return r
	}

	// One arena spans every per-value minimization over the reduced layout.
	arena := cube.GetArena(rs)
	defer cube.PutArena(arena)

	var graph []Edge
	for _, i := range order {
		on := cube.NewCover(rs)
		for _, q := range onSets[i] {
			on.Add(toReduced(q, true))
		}
		dc := cube.NewCover(rs)
		for j := 0; j < count; j++ {
			if j == i {
				continue
			}
			free := !hasPath(i, j)
			for _, q := range onSets[j] {
				r := toReduced(q, free)
				if free || !rs.IsEmpty(r) {
					dc.Add(r)
				}
			}
		}
		for _, q := range other {
			r := toReduced(q, false)
			if !rs.IsEmpty(r) {
				dc.Add(r)
			}
		}
		for _, d := range p.Dc.Cubes {
			allGroup := true
			for j := 0; j < count; j++ {
				if !s.Test(d, p.OutVar, base+j) {
					allGroup = false
					break
				}
			}
			r := toReduced(d, allGroup)
			if allGroup || !rs.IsEmpty(r) {
				dc.Add(r)
			}
		}
		mb := espresso.MinimizeWith(on, dc, opt.Min, arena)
		var mi []cube.Cube
		for _, r := range mb.Cubes {
			if rs.Test(r, p.OutVar, 0) {
				mi = append(mi, r)
			}
		}
		if len(mi) >= len(onSets[i]) {
			continue // no gain: no covering relations accepted
		}
		w := len(onSets[i]) - len(mi)
		seen := make([]bool, count)
		for _, r := range mi {
			for j := 0; j < count; j++ {
				if j == i || seen[j] || hasPath(i, j) || covers[j][i] {
					continue
				}
				for _, q := range onSets[j] {
					if rs.Intersects(r, toReduced(q, true)) {
						seen[j] = true
						break
					}
				}
			}
		}
		for j := 0; j < count; j++ {
			if seen[j] {
				covers[j][i] = true
				graph = append(graph, Edge{From: j, To: i, W: w})
			}
		}
	}
	return graph, nil
}

// OutputEncodingResult pairs a symbolic-output encoding with the covering
// edges that drove it.
type OutputEncodingResult struct {
	Enc   encoding.Encoding
	Edges []Edge
}

// EncodeSymbolicOutputs chooses codes for every symbolic output variable:
// covering constraints from OutputCovering are satisfied by OutEncoder.
// The minimum length is used unless the covering DAG forces more bits.
func EncodeSymbolicOutputs(f *kiss.FSM, opt Options) ([]OutputEncodingResult, error) {
	sctx, sp := obs.Span(opt.Min.Ctx, "symbolic.outputs")
	opt.Min.Ctx = sctx
	defer sp.End()
	var out []OutputEncodingResult
	for which := range f.SymOuts {
		edges, err := OutputCovering(f, which, opt)
		if err != nil {
			return nil, err
		}
		var oc []encode.OCEdge
		for _, e := range edges {
			oc = append(oc, encode.OCEdge{U: e.From, V: e.To})
		}
		n := len(f.SymOuts[which].Values)
		enc := encode.OutEncoder(n, oc, 0)
		out = append(out, OutputEncodingResult{Enc: enc, Edges: edges})
	}
	return out, nil
}
