package symbolic

import (
	"testing"

	"nova/internal/encode"
	"nova/internal/encoding"
	"nova/internal/kiss"
	"nova/internal/verify"
)

func symInFSM(t *testing.T) *kiss.FSM {
	t.Helper()
	f := kiss.New("symin", 0, 1)
	f.AddSymbolicInput("op", "a", "b", "c", "d")
	add := func(op, ps, ns, out string) {
		t.Helper()
		if err := f.AddRowSym("", []string{op}, ps, ns, out, nil); err != nil {
			t.Fatal(err)
		}
	}
	add("a", "s0", "s1", "1")
	add("b", "s0", "s1", "1")
	add("c", "s0", "s2", "0")
	add("d", "s0", "s0", "0")
	add("a", "s1", "s2", "0")
	add("b", "s1", "s2", "0")
	add("c", "s1", "s0", "1")
	add("d", "s1", "s1", "0")
	add("-", "s2", "s0", "1")
	return f
}

func TestAnalyzeExtractsSymbolicInputConstraints(t *testing.T) {
	f := symInFSM(t)
	out, err := Analyze(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.SymIns) != 1 {
		t.Fatalf("SymIns groups = %d", len(out.SymIns))
	}
	// Values a and b behave identically in two states: a constraint
	// containing {a,b} must appear.
	found := false
	for _, ic := range out.SymIns[0] {
		if ic.Set.Has(0) && ic.Set.Has(1) {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a constraint grouping values a,b; got %v", out.SymIns[0])
	}
}

func TestEncodeIOHybridWithSymbolicInput(t *testing.T) {
	f := symInFSM(t)
	out, res, err := EncodeIOHybrid(f, 0, encode.HybridOptions{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	si := encode.IHybrid(len(f.SymIns[0].Values), out.SymIns[0], 0, encode.HybridOptions{})
	asg := encoding.Assignment{States: res.Enc, SymIns: []encoding.Encoding{si.Enc}}
	if err := verify.EquivalentFSM(f, asg, verify.Options{}); err != nil {
		t.Fatal(err)
	}
}
