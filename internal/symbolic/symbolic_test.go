package symbolic

import (
	"testing"

	"nova/internal/encode"
	"nova/internal/encoding"
	"nova/internal/kiss"
	"nova/internal/verify"
)

// chainFSM is built so that merging the transitions of several states into
// one implicant is possible if one next-state code covers another: states
// a,b both go to t under input 1, but with different outputs, while under
// input 0 they map to different next states u,v — classic material for
// output covering relations.
func chainFSM(t *testing.T) *kiss.FSM {
	t.Helper()
	f := kiss.New("chain", 2, 2)
	f.MustAddRow("1-", "a", "t", "10")
	f.MustAddRow("1-", "b", "t", "10")
	f.MustAddRow("0-", "a", "u", "01")
	f.MustAddRow("0-", "b", "v", "01")
	f.MustAddRow("--", "t", "a", "00")
	f.MustAddRow("--", "u", "b", "00")
	f.MustAddRow("-1", "v", "a", "11")
	f.MustAddRow("-0", "v", "b", "11")
	return f
}

func TestAnalyzeBasics(t *testing.T) {
	f := chainFSM(t)
	out, err := Analyze(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.FinalP.Len() == 0 {
		t.Fatal("empty FinalP")
	}
	if out.FinalCubes > out.InitialCubes {
		t.Fatalf("symbolic minimization grew the cover: %d -> %d", out.InitialCubes, out.FinalCubes)
	}
	// The covering graph must be acyclic.
	ns := f.NumStates()
	adj := make([][]bool, ns)
	for i := range adj {
		adj[i] = make([]bool, ns)
	}
	for _, e := range out.Graph {
		adj[e.From][e.To] = true
		if e.W <= 0 {
			t.Fatalf("edge %+v has non-positive weight", e)
		}
	}
	var color []int
	color = make([]int, ns)
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = 1
		for v := 0; v < ns; v++ {
			if !adj[u][v] {
				continue
			}
			if color[v] == 1 {
				return false
			}
			if color[v] == 0 && !dfs(v) {
				return false
			}
		}
		color[u] = 2
		return true
	}
	for i := 0; i < ns; i++ {
		if color[i] == 0 && !dfs(i) {
			t.Fatal("covering graph has a cycle")
		}
	}
}

func TestIOProblemShape(t *testing.T) {
	f := chainFSM(t)
	out, err := Analyze(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := out.Problem
	if p.N != f.NumStates() {
		t.Fatalf("N = %d", p.N)
	}
	for _, cl := range p.Clusters {
		if cl.State < 0 || cl.State >= p.N {
			t.Fatalf("bad cluster state %d", cl.State)
		}
		for _, e := range cl.OC {
			if e.V != cl.State {
				t.Fatalf("cluster %d contains foreign edge %+v", cl.State, e)
			}
		}
	}
	// Every graph edge must land in its target's cluster.
	for _, e := range out.Graph {
		found := false
		for _, cl := range p.Clusters {
			if cl.State == e.To {
				for _, oc := range cl.OC {
					if oc.U == e.From {
						found = true
					}
				}
			}
		}
		if !found {
			t.Fatalf("edge %+v missing from clusters", e)
		}
	}
}

func TestEncodeIOHybridEquivalence(t *testing.T) {
	f := chainFSM(t)
	_, res, err := EncodeIOHybrid(f, 0, encode.HybridOptions{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Enc.Distinct() {
		t.Fatal("codes not distinct")
	}
	asg := encoding.Assignment{States: res.Enc}
	if err := verify.EquivalentFSM(f, asg, verify.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectOrderAblation(t *testing.T) {
	f := chainFSM(t)
	a, err := Analyze(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(f, Options{SelectSmallFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	// Different orders may give different (IC, OC) pairs; both must be
	// structurally valid.
	if a.FinalP.Len() == 0 || b.FinalP.Len() == 0 {
		t.Fatal("one of the orders produced an empty cover")
	}
}

func TestAnalyzeFullySpecifiedCounter(t *testing.T) {
	f := kiss.New("mod4", 1, 1)
	names := []string{"c0", "c1", "c2", "c3"}
	out := []string{"0", "0", "1", "1"}
	for i := 0; i < 4; i++ {
		f.MustAddRow("0", names[i], names[(i+1)%4], out[(i+1)%4])
		f.MustAddRow("1", names[i], names[(i+3)%4], out[(i+3)%4])
	}
	o, err := Analyze(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := encode.IOHybrid(o.Problem, 0, encode.HybridOptions{})
	asg := encoding.Assignment{States: res.Enc}
	if err := verify.EquivalentFSM(f, asg, verify.Options{}); err != nil {
		t.Fatal(err)
	}
}
