// Package face implements faces (subcubes) of the Boolean k-cube over the
// alphabet {0,1,x} and their poset operations: inclusion, intersection,
// level, and lexicographic face generation (the paper's genface). A face is
// an element of the k-cube face-poset of Section 3.1.
package face

import (
	"math/bits"
	"strings"
)

// Face is a subcube of the k-cube: X marks the don't-care (x) positions,
// Val holds the 0/1 values on the care positions (bits under X are kept
// zero). Bit 0 is the leftmost (most significant in the paper's string
// rendering) coordinate. K <= 64.
type Face struct {
	Val, X uint64
	K      int
}

// FromString parses a face like "x0x0" (characters 0, 1, x or X).
func FromString(s string) Face {
	f := Face{K: len(s)}
	for i, c := range s {
		switch c {
		case '1':
			f.Val |= 1 << uint(i)
		case 'x', 'X', '-':
			f.X |= 1 << uint(i)
		}
	}
	return f
}

// Vertex returns the level-0 face whose coordinates are the bits of v
// (coordinate i = bit i of v).
func Vertex(k int, v uint64) Face { return Face{Val: v & mask(k), K: k} }

// Full returns the universe face xx…x of dimension k.
func Full(k int) Face { return Face{X: mask(k), K: k} }

func mask(k int) uint64 {
	if k >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(k)) - 1
}

// Level returns the number of x positions.
func (f Face) Level() int { return bits.OnesCount64(f.X) }

// Cardinality returns 2^Level, the number of vertices of the face.
func (f Face) Cardinality() int { return 1 << uint(f.Level()) }

// Equal reports face equality.
func (f Face) Equal(g Face) bool {
	return f.K == g.K && f.X == g.X && f.Val&^f.X == g.Val&^g.X
}

// Contains reports whether f includes g (every vertex of g is in f): g has
// no free coordinate where f is bound, and their values agree on the
// coordinates where f is bound.
func (f Face) Contains(g Face) bool {
	if g.X&^f.X != 0 {
		return false
	}
	return (f.Val^g.Val)&^f.X == 0
}

// Intersects reports whether f and g share a vertex: they agree on all
// common care positions.
func (f Face) Intersects(g Face) bool {
	return (f.Val^g.Val)&^f.X&^g.X == 0
}

// Intersect returns the intersection face and true, or a zero Face and
// false when f and g are disjoint.
func (f Face) Intersect(g Face) (Face, bool) {
	if !f.Intersects(g) {
		return Face{}, false
	}
	x := f.X & g.X
	val := ((f.Val &^ f.X) | (g.Val &^ g.X)) &^ x
	return Face{Val: val, X: x, K: f.K}, true
}

// HasVertex reports whether vertex v (coordinates = bits of v) lies in f.
func (f Face) HasVertex(v uint64) bool {
	return (f.Val^v)&^f.X&mask(f.K) == 0
}

// Vertices calls fn for every vertex of the face in increasing numeric
// order of the free-coordinate pattern. The free positions are walked
// via bit tricks (lowest set bit of X first), so no scratch slice is
// needed — this runs inside the encoder's backtracking inner loop.
func (f Face) Vertices(fn func(uint64)) {
	n := 1 << uint(bits.OnesCount64(f.X))
	for p := 0; p < n; p++ {
		v := f.Val
		x := f.X
		for pp := p; x != 0; pp >>= 1 {
			low := x & -x
			if pp&1 != 0 {
				v |= low
			}
			x &^= low
		}
		fn(v)
	}
}

// String renders the face over {0,1,x}, coordinate 0 first.
func (f Face) String() string {
	var b strings.Builder
	for i := 0; i < f.K; i++ {
		bit := uint64(1) << uint(i)
		switch {
		case f.X&bit != 0:
			b.WriteByte('x')
		case f.Val&bit != 0:
			b.WriteByte('1')
		default:
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Gen enumerates the faces of the k-cube having a fixed level, in the
// paper's order: all combinations of x-position patterns in lexicographic
// order and, within each pattern, all value assignments of the care
// positions in increasing numeric order.
type Gen struct {
	k, level int
	xpos     []int // current x positions (combination), increasing
	val      uint64
	done     bool
	started  bool
}

// NewGen returns a generator of level-`level` faces of the k-cube.
// Level must satisfy 0 <= level <= k.
func NewGen(k, level int) *Gen {
	g := &Gen{k: k, level: level}
	if level > k || k <= 0 {
		g.done = true
		return g
	}
	g.xpos = make([]int, level)
	for i := range g.xpos {
		g.xpos[i] = i
	}
	return g
}

// Next returns the next face, or ok=false when exhausted.
func (g *Gen) Next() (Face, bool) {
	if g.done {
		return Face{}, false
	}
	if !g.started {
		g.started = true
		return g.current(), true
	}
	// Advance value pattern on the care positions.
	careBits := g.k - g.level
	if g.val+1 < 1<<uint(careBits) {
		g.val++
		return g.current(), true
	}
	g.val = 0
	// Advance the x-position combination.
	if !g.nextComb() {
		g.done = true
		return Face{}, false
	}
	return g.current(), true
}

func (g *Gen) nextComb() bool {
	n, r := g.k, g.level
	if r == 0 {
		return false
	}
	i := r - 1
	for i >= 0 && g.xpos[i] == n-r+i {
		i--
	}
	if i < 0 {
		return false
	}
	g.xpos[i]++
	for j := i + 1; j < r; j++ {
		g.xpos[j] = g.xpos[j-1] + 1
	}
	return true
}

func (g *Gen) current() Face {
	var x uint64
	for _, p := range g.xpos {
		x |= 1 << uint(p)
	}
	// Spread the value bits over the care positions, low positions first.
	var val uint64
	vi := 0
	for i := 0; i < g.k; i++ {
		if x&(1<<uint(i)) != 0 {
			continue
		}
		if g.val&(1<<uint(vi)) != 0 {
			val |= 1 << uint(i)
		}
		vi++
	}
	return Face{Val: val, X: x, K: g.k}
}

// Count returns the number of level-l faces of the k-cube: C(k,l)*2^(k-l).
func Count(k, l int) int {
	c := 1
	for i := 0; i < l; i++ {
		c = c * (k - i) / (i + 1)
	}
	return c << uint(k-l)
}
