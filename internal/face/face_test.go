package face

import (
	"testing"
	"testing/quick"
)

func TestFromStringAndString(t *testing.T) {
	f := FromString("x0x0")
	if f.K != 4 || f.Level() != 2 || f.Cardinality() != 4 {
		t.Fatalf("K=%d level=%d card=%d", f.K, f.Level(), f.Cardinality())
	}
	if f.String() != "x0x0" {
		t.Fatalf("String = %q", f.String())
	}
}

func TestContains(t *testing.T) {
	big := FromString("x0x0")
	if !big.Contains(FromString("10x0")) {
		t.Fatal("x0x0 must contain 10x0")
	}
	if !big.Contains(FromString("0000")) {
		t.Fatal("x0x0 must contain 0000")
	}
	if big.Contains(FromString("0001")) {
		t.Fatal("x0x0 must not contain 0001")
	}
	if big.Contains(FromString("xxx0")) {
		t.Fatal("x0x0 must not contain xxx0")
	}
	if !Full(4).Contains(big) {
		t.Fatal("universe contains everything")
	}
}

func TestIntersect(t *testing.T) {
	a := FromString("x0x0")
	b := FromString("1xx0")
	h, ok := a.Intersect(b)
	if !ok {
		t.Fatal("x0x0 and 1xx0 intersect")
	}
	if h.String() != "10x0" {
		t.Fatalf("intersection = %s, want 10x0", h)
	}
	c := FromString("x1x1")
	if _, ok := a.Intersect(c); ok {
		t.Fatal("x0x0 and x1x1 are disjoint")
	}
}

// TestPaperEncodingExample311 verifies the published solution of Example
// 3.1.1: the face of each constraint intersects exactly the singletons of
// its members.
func TestPaperEncodingExample311(t *testing.T) {
	faces := map[string]Face{
		"1110000": FromString("x0x0"),
		"0111000": FromString("1xx0"),
		"0000111": FromString("x1x1"),
		"1000110": FromString("0xxx"),
		"0000011": FromString("x111"),
		"0011000": FromString("1x00"),
	}
	codes := []Face{ // singletons of states 1..7
		FromString("0000"), FromString("1010"), FromString("1000"),
		FromString("1100"), FromString("0101"), FromString("0111"),
		FromString("1111"),
	}
	for vec, f := range faces {
		for s := 0; s < 7; s++ {
			member := vec[s] == '1'
			_, inter := f.Intersect(codes[s])
			if member != inter {
				t.Fatalf("constraint %s face %s: state %d membership=%v intersect=%v",
					vec, f, s+1, member, inter)
			}
		}
	}
}

func TestVertices(t *testing.T) {
	f := FromString("x01x")
	var got []uint64
	f.Vertices(func(v uint64) { got = append(got, v) })
	if len(got) != 4 {
		t.Fatalf("got %d vertices, want 4", len(got))
	}
	for _, v := range got {
		if !f.HasVertex(v) {
			t.Fatalf("vertex %b not in face", v)
		}
	}
}

func TestGenCountsAndOrder(t *testing.T) {
	for k := 1; k <= 4; k++ {
		for l := 0; l <= k; l++ {
			g := NewGen(k, l)
			n := 0
			seen := map[string]bool{}
			for f, ok := g.Next(); ok; f, ok = g.Next() {
				if f.Level() != l || f.K != k {
					t.Fatalf("generated face %s has wrong shape", f)
				}
				if seen[f.String()] {
					t.Fatalf("duplicate face %s", f)
				}
				seen[f.String()] = true
				n++
			}
			if n != Count(k, l) {
				t.Fatalf("Gen(%d,%d) yielded %d faces, want %d", k, l, n, Count(k, l))
			}
		}
	}
}

func TestGenFirstFaces(t *testing.T) {
	g := NewGen(3, 1)
	f, ok := g.Next()
	if !ok || f.String() != "x00" {
		t.Fatalf("first level-1 face of 3-cube = %s, want x00", f)
	}
	f, _ = g.Next()
	if f.String() != "x10" {
		t.Fatalf("second = %s, want x10", f)
	}
}

func TestVertexAndFull(t *testing.T) {
	v := Vertex(4, 0b1010)
	if v.Level() != 0 || !v.HasVertex(0b1010) || v.HasVertex(0b1011) {
		t.Fatal("Vertex wrong")
	}
	if Full(4).Level() != 4 {
		t.Fatal("Full wrong")
	}
}

// Property: intersection is commutative and contained in both operands.
func TestIntersectProperties(t *testing.T) {
	f := func(av, ax, bv, bx uint8) bool {
		a := Face{Val: uint64(av&^ax) & 0x3f, X: uint64(ax) & 0x3f, K: 6}
		b := Face{Val: uint64(bv&^bx) & 0x3f, X: uint64(bx) & 0x3f, K: 6}
		h1, ok1 := a.Intersect(b)
		h2, ok2 := b.Intersect(a)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return h1.Equal(h2) && a.Contains(h1) && b.Contains(h1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Contains is equivalent to intersection equal to the smaller.
func TestContainsIntersectionRelation(t *testing.T) {
	f := func(av, ax, bv, bx uint8) bool {
		a := Face{Val: uint64(av&^ax) & 0x1f, X: uint64(ax) & 0x1f, K: 5}
		b := Face{Val: uint64(bv&^bx) & 0x1f, X: uint64(bx) & 0x1f, K: 5}
		h, ok := a.Intersect(b)
		want := ok && h.Equal(b)
		return a.Contains(b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
