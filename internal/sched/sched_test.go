package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 4
	p := New(workers)
	if p.Workers() != workers {
		t.Fatalf("Workers() = %d, want %d", p.Workers(), workers)
	}
	g := p.Group(context.Background())
	var cur, peak int32
	var mu sync.Mutex
	for i := 0; i < 64; i++ {
		g.Go(func(context.Context) error {
			n := atomic.AddInt32(&cur, 1)
			mu.Lock()
			if n > peak {
				peak = n
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			atomic.AddInt32(&cur, -1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Fatalf("observed %d concurrent tasks, bound is %d", peak, workers)
	}
}

func TestPoolSerialRunsInline(t *testing.T) {
	p := New(1)
	g := p.Group(context.Background())
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		// With one worker every task runs inline on this goroutine, in
		// submission order, so appending without a lock is safe.
		g.Go(func(context.Context) error {
			order = append(order, i)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial pool ran out of order: %v", order)
		}
	}
}

func TestGroupFirstErrorWinsAndCancels(t *testing.T) {
	p := New(2)
	g := p.Group(context.Background())
	boom := errors.New("boom")
	canceledSiblings := int32(0)
	g.Go(func(context.Context) error { return boom })
	for i := 0; i < 8; i++ {
		g.Go(func(ctx context.Context) error {
			select {
			case <-ctx.Done():
				atomic.AddInt32(&canceledSiblings, 1)
			case <-time.After(2 * time.Second):
			}
			return nil
		})
	}
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait() = %v, want %v", err, boom)
	}
	if canceledSiblings == 0 {
		t.Fatal("error did not cancel sibling tasks")
	}
}

func TestGroupParentCancellation(t *testing.T) {
	p := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	g := p.Group(ctx)
	done := make(chan struct{})
	g.Go(func(ctx context.Context) error {
		<-ctx.Done()
		close(done)
		return ctx.Err()
	})
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("task did not observe parent cancellation")
	}
	if err := g.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait() = %v, want context.Canceled", err)
	}
}

func TestNestedGroupsDoNotDeadlock(t *testing.T) {
	p := New(2)
	outer := p.Group(context.Background())
	var total int32
	for i := 0; i < 6; i++ {
		outer.Go(func(ctx context.Context) error {
			inner := p.Group(ctx)
			for j := 0; j < 6; j++ {
				inner.Go(func(context.Context) error {
					atomic.AddInt32(&total, 1)
					return nil
				})
			}
			return inner.Wait()
		})
	}
	finished := make(chan error, 1)
	go func() { finished <- outer.Wait() }()
	select {
	case err := <-finished:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("nested groups deadlocked")
	}
	if total != 36 {
		t.Fatalf("ran %d inner tasks, want 36", total)
	}
}

func TestSplitSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := SplitSeed(42, i)
		if s != SplitSeed(42, i) {
			t.Fatalf("SplitSeed(42, %d) not deterministic", i)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("SplitSeed(42, %d) == SplitSeed(42, %d)", i, prev)
		}
		seen[s] = i
	}
	if SplitSeed(1, 0) == SplitSeed(2, 0) {
		t.Fatal("different base seeds produced the same child")
	}
}

func TestPoolSize(t *testing.T) {
	if got := PoolSize(3, 0); got != 3 {
		t.Fatalf("PoolSize(3, 0) = %d, want 3", got)
	}
	if got := PoolSize(0, 0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("PoolSize(0, 0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	// Intra-problem forks widen the pool so one problem's forks cannot
	// starve the batch workers.
	if got := PoolSize(2, 8); got != 8 {
		t.Fatalf("PoolSize(2, 8) = %d, want 8", got)
	}
	if got := PoolSize(8, 2); got != 8 {
		t.Fatalf("PoolSize(8, 2) = %d, want 8", got)
	}
	if got := PoolSize(-1, 0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("PoolSize(-1, 0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}
