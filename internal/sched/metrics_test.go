package sched

import (
	"context"
	"sync"
	"testing"
)

// TestPoolStatsDeterministic2Worker pins the pool's counters under a
// fully deterministic schedule. With New(2) the sem has capacity 1, so:
// the first Go takes the slot and spawns a worker goroutine; while that
// worker is parked, every further Go finds the pool full and runs inline
// on the submitting goroutine. The inline-fallback counter and the
// queue-depth gauge are therefore exact, not statistical.
func TestPoolStatsDeterministic2Worker(t *testing.T) {
	p := New(2)

	s := p.Stats()
	if s != (PoolStats{}) {
		t.Fatalf("fresh pool stats = %+v, want zeros", s)
	}

	g := p.Group(context.Background())

	started := make(chan struct{})
	release := make(chan struct{})
	// Task 1: takes the only spare slot and parks.
	g.Go(func(context.Context) error {
		close(started)
		<-release
		return nil
	})
	<-started // worker is executing: depth gauge must read 1

	if s := p.Stats(); s.Tasks != 1 || s.Inline != 0 || s.Depth != 1 {
		t.Fatalf("after spawned task: %+v, want Tasks=1 Inline=0 Depth=1", s)
	}

	// Tasks 2..4: pool full, must run inline (and have returned by the
	// time Go returns, so Depth is back to 1 afterwards).
	for i := 0; i < 3; i++ {
		ran := false
		g.Go(func(context.Context) error {
			ran = true
			if d := p.Stats().Depth; d != 2 {
				t.Errorf("depth during inline task = %d, want 2", d)
			}
			return nil
		})
		if !ran {
			t.Fatalf("task %d did not run inline on a full pool", i+2)
		}
	}

	if s := p.Stats(); s.Tasks != 1 || s.Inline != 3 || s.Depth != 1 || s.MaxDepth != 2 {
		t.Fatalf("after inline tasks: %+v, want Tasks=1 Inline=3 Depth=1 MaxDepth=2", s)
	}

	close(release)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Tasks != 1 || s.Inline != 3 || s.Depth != 0 || s.MaxDepth != 2 {
		t.Fatalf("after Wait: %+v, want Tasks=1 Inline=3 Depth=0 MaxDepth=2", s)
	}

	// The histogram samples depth at task START: the parked worker began
	// alone (depth 1); each inline task began alongside it (depth 2).
	// Recording at enqueue time would instead have credited the inline
	// tasks to whatever the queue looked like before they ran.
	s = p.Stats()
	if s.DepthHist[1] != 1 || s.DepthHist[2] != 3 {
		t.Fatalf("depth histogram = %v, want [1]=1 [2]=3", s.DepthHist)
	}
	for i, n := range s.DepthHist {
		if i != 1 && i != 2 && n != 0 {
			t.Fatalf("unexpected histogram bucket [%d]=%d (%v)", i, n, s.DepthHist)
		}
	}
}

// TestPoolStatsSerialPool checks that a Parallelism=1 pool runs every
// task inline and never spawns.
func TestPoolStatsSerialPool(t *testing.T) {
	p := New(1)
	g := p.Group(context.Background())
	for i := 0; i < 5; i++ {
		g.Go(func(context.Context) error { return nil })
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Tasks != 0 || s.Inline != 5 || s.MaxDepth != 1 {
		t.Fatalf("serial pool stats = %+v, want Tasks=0 Inline=5 MaxDepth=1", s)
	}
	if s := p.Stats(); s.DepthHist[1] != 5 {
		t.Fatalf("serial pool depth histogram = %v, want [1]=5", s.DepthHist)
	}
}

// TestTryGoSkipsWhenSaturated pins the speculative-submission contract:
// TryGo spawns when a slot is free and refuses — without running the
// task — when the pool is saturated.
func TestTryGoSkipsWhenSaturated(t *testing.T) {
	p := New(2)
	g := p.Group(context.Background())

	started := make(chan struct{})
	release := make(chan struct{})
	if ok := g.TryGo(func(context.Context) error {
		close(started)
		<-release
		return nil
	}); !ok {
		t.Fatal("TryGo on an idle pool refused the task")
	}
	<-started

	ran := false
	if ok := g.TryGo(func(context.Context) error { ran = true; return nil }); ok {
		t.Fatal("TryGo on a saturated pool accepted the task")
	}
	if ran {
		t.Fatal("refused task ran anyway")
	}

	close(release)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Tasks != 1 || s.Inline != 0 {
		t.Fatalf("stats after TryGo scenario = %+v, want Tasks=1 Inline=0", s)
	}
}

// TestTryGoErrorCancelsGroup checks accepted TryGo tasks share the
// group's first-error-wins and cancellation semantics with Go.
func TestTryGoErrorCancelsGroup(t *testing.T) {
	p := New(2)
	g := p.Group(context.Background())
	if ok := g.TryGo(func(context.Context) error { return context.Canceled }); !ok {
		t.Fatal("TryGo refused on idle pool")
	}
	if err := g.Wait(); err != context.Canceled {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if g.Context().Err() == nil {
		t.Fatal("group context not canceled after task error")
	}
}

// TestPoolStatsRace hammers counters from many groups at once; run with
// -race this proves the accounting introduces no data race, and the
// monotonic totals must still add up exactly.
func TestPoolStatsRace(t *testing.T) {
	p := New(4)
	const groups, tasks = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < groups; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := p.Group(context.Background())
			for j := 0; j < tasks; j++ {
				g.Go(func(context.Context) error {
					_ = p.Stats()
					return nil
				})
			}
			if err := g.Wait(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	s := p.Stats()
	if s.Tasks+s.Inline != groups*tasks {
		t.Fatalf("Tasks+Inline = %d, want %d (stats %+v)", s.Tasks+s.Inline, groups*tasks, s)
	}
	if s.Depth != 0 {
		t.Fatalf("Depth after quiescence = %d, want 0", s.Depth)
	}
	if s.MaxDepth < 1 || s.MaxDepth > 4+groups {
		t.Fatalf("MaxDepth = %d out of plausible range", s.MaxDepth)
	}
	var hist int64
	for _, n := range s.DepthHist {
		hist += n
	}
	if hist != s.Tasks+s.Inline {
		t.Fatalf("depth histogram sums to %d, want Tasks+Inline = %d", hist, s.Tasks+s.Inline)
	}
}
