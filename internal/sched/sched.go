// Package sched provides the concurrent execution engine behind the
// public encoding API: a bounded worker pool shared by every fan-out of
// one encoding run (the three Best candidates, the Random trial batch,
// the per-symbolic-input encodes, and the per-FSM tasks of EncodeAll),
// fork/join groups with first-error-wins semantics, and the deterministic
// seed splitter that makes parallel randomized batches bit-identical to
// their serial counterparts.
//
// The pool never blocks a task submission: when every worker slot is
// busy, Go runs the task inline on the submitting goroutine. Groups may
// therefore nest freely (an EncodeAll task fans out its Best candidates
// through the same pool) without risk of deadlock, and the number of
// concurrently executing tasks stays bounded by the worker count.
package sched

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker pool. The zero value is not usable; use New.
type Pool struct {
	// sem holds one token per spare worker goroutine. Capacity is
	// workers-1: the goroutine that joins a group counts as the last
	// worker, running tasks inline when no spare slot is free.
	sem chan struct{}

	// telemetry — always maintained (a handful of atomic ops per task,
	// well under the cost of the goroutine handoff they annotate).
	tasks    atomic.Int64 // tasks dispatched to spare worker goroutines
	inline   atomic.Int64 // tasks run inline on the submitter (pool full)
	depth    atomic.Int64 // tasks currently executing (gauge)
	maxDepth atomic.Int64 // high-water mark of depth

	// depthHist[d] counts tasks that STARTED executing while d tasks
	// (including themselves) were executing. Recording at task start —
	// not at enqueue — is what makes the histogram reflect the true
	// concurrency of nested intra-problem forks: a task queued behind a
	// busy pool is sampled when it actually runs. Depths beyond the last
	// bucket fold into it.
	depthHist [DepthBuckets]atomic.Int64
}

// DepthBuckets is the size of the pool-depth histogram: one bucket per
// exact concurrency level 0..DepthBuckets-2, the last bucket collecting
// everything deeper.
const DepthBuckets = 16

// PoolStats is a snapshot of a pool's scheduling counters.
type PoolStats struct {
	Tasks    int64 // tasks run on spare worker goroutines
	Inline   int64 // tasks run inline because no slot was free
	Depth    int64 // tasks executing at snapshot time (queue-depth gauge)
	MaxDepth int64 // most tasks ever executing at once

	// DepthHist[d] counts task starts observed at concurrency d (the
	// starting task included); the last bucket folds deeper levels in.
	DepthHist [DepthBuckets]int64
}

// Stats snapshots the pool's counters. Safe to call concurrently with
// task submission; Depth is momentary, the rest are monotonic.
func (p *Pool) Stats() PoolStats {
	s := PoolStats{
		Tasks:    p.tasks.Load(),
		Inline:   p.inline.Load(),
		Depth:    p.depth.Load(),
		MaxDepth: p.maxDepth.Load(),
	}
	for i := range p.depthHist {
		s.DepthHist[i] = p.depthHist[i].Load()
	}
	return s
}

// enter marks a task as executing and maintains the depth high-water
// mark and the start-depth histogram; exit undoes the gauge.
func (p *Pool) enter() {
	d := p.depth.Add(1)
	h := d
	if h >= DepthBuckets {
		h = DepthBuckets - 1
	}
	p.depthHist[h].Add(1)
	for {
		m := p.maxDepth.Load()
		if d <= m || p.maxDepth.CompareAndSwap(m, d) {
			return
		}
	}
}

func (p *Pool) exit() { p.depth.Add(-1) }

// PoolSize resolves the worker bound of one run's pool from the two
// public knobs: the coarse-grained parallelism (0 selects
// runtime.GOMAXPROCS(0)) widened by the intra-problem setting when that
// is larger. It is the single sizing rule shared by the library entry
// points and the serving layer, so server capacity planning and
// intra-parallel forks agree on how many workers a run may occupy.
func PoolSize(parallelism, intra int) int {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if intra > parallelism {
		parallelism = intra
	}
	return parallelism
}

// New returns a pool executing at most workers tasks concurrently.
// workers <= 0 selects runtime.GOMAXPROCS(0); workers == 1 yields a pool
// that runs every task inline on the submitting goroutine, reproducing
// serial execution exactly.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers-1)}
}

// Workers returns the concurrency bound the pool was built with.
func (p *Pool) Workers() int { return cap(p.sem) + 1 }

// SpareSlots reports how many spare worker slots are free at this
// instant. The value is a momentary hint — it can be stale by the time
// the caller acts on it — but it is cheap enough to poll inside a
// recursion to decide whether forking a branch could actually buy
// concurrency right now.
func (p *Pool) SpareSlots() int { return cap(p.sem) - len(p.sem) }

// Group is a fork/join scope over a pool: tasks submitted with Go run
// concurrently (bounded by the pool), Wait joins them, and the first
// error wins — it is returned by Wait and cancels the group's context so
// sibling tasks can stop early.
type Group struct {
	pool   *Pool
	ctx    context.Context
	cancel context.CancelCauseFunc
	wg     sync.WaitGroup

	once sync.Once
	err  error
}

// Group returns a new fork/join scope whose tasks receive a context
// derived from ctx (nil means context.Background()); the context is
// canceled when any task errors or after Wait returns.
func (p *Pool) Group(ctx context.Context) *Group {
	if ctx == nil {
		ctx = context.Background()
	}
	gctx, cancel := context.WithCancelCause(ctx)
	return &Group{pool: p, ctx: gctx, cancel: cancel}
}

// Context returns the group's derived context.
func (g *Group) Context() context.Context { return g.ctx }

// Go submits a task. If a spare worker slot is free the task runs on its
// own goroutine; otherwise it runs inline before Go returns. Either way
// the task's error (if first) is recorded and cancels the group. Go never
// blocks waiting for a slot, so groups may nest without deadlocking.
func (g *Group) Go(fn func(ctx context.Context) error) {
	select {
	case g.pool.sem <- struct{}{}:
		g.pool.tasks.Add(1)
		g.wg.Add(1)
		go func() {
			g.pool.enter()
			defer func() {
				g.pool.exit()
				<-g.pool.sem
				g.wg.Done()
			}()
			g.record(fn(g.ctx))
		}()
	default:
		g.pool.inline.Add(1)
		g.pool.enter()
		g.record(fn(g.ctx))
		g.pool.exit()
	}
}

// TryGo submits a task only if a spare worker slot is free, returning
// whether the task was accepted. Unlike Go it NEVER runs the task inline:
// speculative work (running ahead of a decision that may discard it) is
// pure overhead when it serializes onto the submitter, so a saturated
// pool should skip it rather than absorb it. Accepted tasks behave
// exactly like Go's spawned tasks (counted, joined by Wait, first error
// wins).
func (g *Group) TryGo(fn func(ctx context.Context) error) bool {
	select {
	case g.pool.sem <- struct{}{}:
		g.pool.tasks.Add(1)
		g.wg.Add(1)
		go func() {
			g.pool.enter()
			defer func() {
				g.pool.exit()
				<-g.pool.sem
				g.wg.Done()
			}()
			g.record(fn(g.ctx))
		}()
		return true
	default:
		return false
	}
}

func (g *Group) record(err error) {
	if err == nil {
		return
	}
	g.once.Do(func() {
		g.err = err
		g.cancel(err)
	})
}

// Wait joins every submitted task and returns the first error, if any.
// The group's context is canceled before Wait returns.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.cancel(nil)
	return g.err
}

// SplitSeed derives the i-th child seed from a base seed with a
// splitmix64 finalizer. Children of one base are pairwise distinct for
// i >= 0 and depend only on (seed, i), so a batch of randomized trials
// keyed by trial index produces bit-identical results whether the trials
// run serially or concurrently, in any completion order.
func SplitSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(i+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
