package baseline

import (
	"testing"

	"nova/internal/constraint"
	"nova/internal/encode"
	"nova/internal/kiss"
	"nova/internal/symbolic"
)

func pairFSM(t *testing.T) *kiss.FSM {
	t.Helper()
	f := kiss.New("pair", 1, 1)
	f.MustAddRow("0", "a", "d", "1")
	f.MustAddRow("0", "b", "d", "1")
	f.MustAddRow("0", "c", "a", "0")
	f.MustAddRow("0", "d", "a", "0")
	f.MustAddRow("1", "a", "a", "0")
	f.MustAddRow("1", "b", "b", "0")
	f.MustAddRow("1", "c", "c", "1")
	f.MustAddRow("1", "d", "c", "1")
	return f
}

func TestOneHot(t *testing.T) {
	e := OneHot(5)
	if e.Bits != 5 || !e.Distinct() {
		t.Fatalf("one-hot wrong: %+v", e)
	}
	for i, c := range e.Codes {
		if c != 1<<uint(i) {
			t.Fatalf("code %d = %b", i, c)
		}
	}
	// One-hot satisfies every input constraint.
	for _, v := range []string{"11000", "10101", "01110"} {
		if !encode.Satisfied(e, constraint.MustFromString(v)) {
			t.Fatalf("one-hot fails constraint %s", v)
		}
	}
}

func TestOneHotAssignment(t *testing.T) {
	f := pairFSM(t)
	f.AddSymbolicInput("x", "p", "q")
	for i := range f.Rows {
		f.Rows[i].SymIn = []int{-1}
	}
	a := OneHotAssignment(f)
	if a.States.Bits != 4 || len(a.SymIns) != 1 || a.SymIns[0].Bits != 2 {
		t.Fatalf("assignment shape wrong: %+v", a)
	}
}

func TestRandomAssignments(t *testing.T) {
	f := pairFSM(t)
	batch := RandomAssignments(f, 6, 1)
	if len(batch) != 6 {
		t.Fatalf("batch size %d", len(batch))
	}
	for i, a := range batch {
		if err := a.Validate(); err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if a.States.Bits != 2 {
			t.Fatalf("trial %d: bits %d", i, a.States.Bits)
		}
	}
	// Reproducible per seed.
	again := RandomAssignments(f, 6, 1)
	for i := range batch {
		for j := range batch[i].States.Codes {
			if batch[i].States.Codes[j] != again[i].States.Codes[j] {
				t.Fatal("random batch not reproducible")
			}
		}
	}
	if DefaultRandomTrials(f) != f.NumStates()+len(f.SymIns) {
		t.Fatal("default trials wrong")
	}
}

func TestKISSSatisfiesAll(t *testing.T) {
	ics := []constraint.Constraint{
		{Set: constraint.MustFromString("1100000"), Weight: 1},
		{Set: constraint.MustFromString("0110000"), Weight: 1},
		{Set: constraint.MustFromString("1010000"), Weight: 1},
		{Set: constraint.MustFromString("0001111"), Weight: 2},
	}
	r := KISS(7, ics)
	if len(r.Unsatisfied) != 0 {
		t.Fatalf("KISS left constraints unsatisfied: %v", r.Unsatisfied)
	}
	if !r.Enc.Distinct() {
		t.Fatal("codes not distinct")
	}
	if r.Enc.Bits < encode.MinLength(7) {
		t.Fatalf("bits = %d below minimum", r.Enc.Bits)
	}
}

func TestMustangVariants(t *testing.T) {
	f := pairFSM(t)
	if len(Variants()) != 4 {
		t.Fatal("want 4 variants")
	}
	seen := map[string]bool{}
	for _, v := range Variants() {
		e := Mustang(f, v)
		if !e.Distinct() || e.Bits != 2 {
			t.Fatalf("%s: bad encoding %+v", v, e)
		}
		seen[v.String()] = true
	}
	for _, s := range []string{"-p", "-n", "-pt", "-nt"} {
		if !seen[s] {
			t.Fatalf("missing variant %s", s)
		}
	}
}

func TestMustangWeightsFavorSharedTargets(t *testing.T) {
	f := pairFSM(t)
	// a and b share next state d under input 0: fan-out weights must
	// attract them. State order: a=0, d=1, b=2, c=3.
	w := mustangWeights(f, MustangN)
	if w[0][2] == 0 {
		t.Fatal("states sharing a next state should attract under -n")
	}
	// d and a are both reached (d from a,b; a from c,d): -p weights
	// attract next-state pairs with common sources; a and c share source c
	// and d? check a,c: reached from (c,d) and (c,d): attract.
	wp := mustangWeights(f, MustangP)
	if wp[0][3] == 0 {
		t.Fatal("next states with common sources should attract under -p")
	}
}

func TestWeightedEmbedPlacesHeavyPairsClose(t *testing.T) {
	// 4 states, one dominant pair (0,1): they must land at Hamming
	// distance 1.
	w := [][]int{
		{0, 100, 1, 1},
		{100, 0, 1, 1},
		{1, 1, 0, 1},
		{1, 1, 1, 0},
	}
	e := weightedEmbed(4, 2, w)
	d := e.Codes[0] ^ e.Codes[1]
	if d != 1 && d != 2 {
		t.Fatalf("heavy pair at distance >1: %b", d)
	}
}

func TestCream(t *testing.T) {
	f := pairFSM(t)
	a, err := Cream(f, symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.States.Bits < 2 {
		t.Fatalf("cream bits = %d", a.States.Bits)
	}
}
