// Package baseline implements the comparison encoders of the paper's
// evaluation: the 1-hot encoding, random state assignments (best and
// average of a batch), a KISS-style encoder that satisfies every input
// constraint at a heuristic (non-minimum) code length, a MUSTANG-style
// multilevel-oriented encoder with the -p/-n/-pt/-nt weight functions, and
// a Cappuccino/Cream-style encoder (symbolic minimization followed by
// complete constraint satisfaction at a non-minimum length).
package baseline

import (
	"math/rand"
	"sort"

	"nova/internal/constraint"
	"nova/internal/encode"
	"nova/internal/encoding"
	"nova/internal/kiss"
	"nova/internal/sched"
	"nova/internal/symbolic"
)

// OneHot returns the 1-hot encoding of n symbols (n bits, code i = bit i).
func OneHot(n int) encoding.Encoding {
	e := encoding.New(n, n)
	for i := range e.Codes {
		e.Codes[i] = 1 << uint(i)
	}
	return e
}

// OneHotAssignment one-hot encodes the states and every symbolic input
// and output.
func OneHotAssignment(f *kiss.FSM) encoding.Assignment {
	a := encoding.Assignment{States: OneHot(f.NumStates())}
	for _, v := range f.SymIns {
		a.SymIns = append(a.SymIns, OneHot(len(v.Values)))
	}
	for _, v := range f.SymOuts {
		a.SymOuts = append(a.SymOuts, OneHot(len(v.Values)))
	}
	return a
}

// RandomAssignment returns one random minimum-length assignment of the
// FSM's states and symbolic inputs/outputs, drawn from its own generator
// seeded with seed. Batches key each trial's seed off the trial index
// (sched.SplitSeed), so a batch produces identical assignments whether
// its trials run serially or concurrently.
func RandomAssignment(f *kiss.FSM, seed int64) encoding.Assignment {
	rng := rand.New(rand.NewSource(seed))
	a := encoding.Assignment{
		States: encode.RandomEncoding(f.NumStates(), encode.MinLength(f.NumStates()), rng),
	}
	for _, v := range f.SymIns {
		n := len(v.Values)
		a.SymIns = append(a.SymIns, encode.RandomEncoding(n, encode.MinLength(n), rng))
	}
	for _, v := range f.SymOuts {
		n := len(v.Values)
		a.SymOuts = append(a.SymOuts, encode.RandomEncoding(n, encode.MinLength(n), rng))
	}
	return a
}

// RandomAssignments returns `trials` independent random minimum-length
// assignments of the FSM's states and symbolic inputs. The paper uses
// #states + #symbolic-inputs trials per example. Trial t is drawn from
// seed sched.SplitSeed(seed, t).
func RandomAssignments(f *kiss.FSM, trials int, seed int64) []encoding.Assignment {
	out := make([]encoding.Assignment, 0, trials)
	for t := 0; t < trials; t++ {
		out = append(out, RandomAssignment(f, sched.SplitSeed(seed, t)))
	}
	return out
}

// DefaultRandomTrials is the paper's batch size: number of states plus
// number of symbolic inputs.
func DefaultRandomTrials(f *kiss.FSM) int {
	return f.NumStates() + len(f.SymIns)
}

// KISS satisfies every input constraint in the manner of KISS [9]; see
// encode.SatisfyAll.
func KISS(n int, ics []constraint.Constraint) encode.Result {
	return encode.SatisfyAll(n, ics)
}

// MustangVariant selects one of MUSTANG's four weight functions.
type MustangVariant int

const (
	// MustangP is the fan-in oriented algorithm (-p): pairs of next
	// states reached from common present states attract.
	MustangP MustangVariant = iota
	// MustangN is the fan-out oriented algorithm (-n): pairs of present
	// states with common next states and common asserted outputs attract.
	MustangN
	// MustangPT and MustangNT weight pairs by transition multiplicities
	// instead of mere adjacency (-pt / -nt).
	MustangPT
	MustangNT
)

// String names the variant like MUSTANG's command line.
func (v MustangVariant) String() string {
	switch v {
	case MustangP:
		return "-p"
	case MustangN:
		return "-n"
	case MustangPT:
		return "-pt"
	case MustangNT:
		return "-nt"
	}
	return "?"
}

// Variants lists all four MUSTANG runs of Table VII.
func Variants() []MustangVariant {
	return []MustangVariant{MustangP, MustangN, MustangPT, MustangNT}
}

// Mustang computes a minimum-length state encoding with a MUSTANG-style
// attraction-weight embedding: a weight graph over state pairs is built
// from the transition structure (fan-in or fan-out oriented) and states
// are greedily placed on the hypercube so that heavy pairs land at small
// Hamming distance.
func Mustang(f *kiss.FSM, variant MustangVariant) encoding.Encoding {
	n := f.NumStates()
	w := mustangWeights(f, variant)
	bits := encode.MinLength(n)
	return weightedEmbed(n, bits, w)
}

// mustangWeights builds the pairwise attraction weights.
func mustangWeights(f *kiss.FSM, variant MustangVariant) [][]int {
	n := f.NumStates()
	w := make([][]int, n)
	for i := range w {
		w[i] = make([]int, n)
	}
	bits := encode.MinLength(n)

	// trans[u][t]: number of rows u -> t; outs[u][o]: rows from u
	// asserting output o.
	trans := make([][]int, n)
	outs := make([][]int, n)
	for i := 0; i < n; i++ {
		trans[i] = make([]int, n)
		outs[i] = make([]int, f.NO)
	}
	for _, r := range f.Rows {
		if r.Present < 0 || r.Next < 0 {
			continue
		}
		trans[r.Present][r.Next]++
		for o := 0; o < f.NO; o++ {
			if r.Out[o] == '1' {
				outs[r.Present][o]++
			}
		}
	}
	cnt := func(x int) int {
		if x == 0 {
			return 0
		}
		if variant == MustangPT || variant == MustangNT {
			return x
		}
		return 1
	}
	switch variant {
	case MustangN, MustangNT:
		// Fan-out: present states sharing next states and outputs.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				s := 0
				for t := 0; t < n; t++ {
					s += bits * cnt(trans[u][t]) * cnt(trans[v][t])
				}
				for o := 0; o < f.NO; o++ {
					s += cnt(outs[u][o]) * cnt(outs[v][o])
				}
				w[u][v], w[v][u] = s, s
			}
		}
	case MustangP, MustangPT:
		// Fan-in: next states reached from common present states.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				s := 0
				for src := 0; src < n; src++ {
					s += bits * cnt(trans[src][u]) * cnt(trans[src][v])
				}
				w[u][v], w[v][u] = s, s
			}
		}
	}
	return w
}

// weightedEmbed places n states on the bits-cube greedily: states in
// decreasing total attraction; each takes the free code minimizing the
// weighted Hamming distance to the already-placed states.
func weightedEmbed(n, bits int, w [][]int) encoding.Encoding {
	e := encoding.New(n, bits)
	total := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			total[i] += w[i][j]
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return total[order[a]] > total[order[b]] })

	space := 1 << uint(bits)
	used := make([]bool, space)
	placed := []int{}
	hamming := func(a, b uint64) int {
		x := a ^ b
		c := 0
		for x != 0 {
			c += int(x & 1)
			x >>= 1
		}
		return c
	}
	for _, u := range order {
		bestCode, bestCost := -1, 1<<62
		for c := 0; c < space; c++ {
			if used[c] {
				continue
			}
			cost := 0
			for _, v := range placed {
				cost += w[u][v] * hamming(uint64(c), e.Codes[v])
			}
			if cost < bestCost {
				bestCode, bestCost = c, cost
			}
		}
		e.Codes[u] = uint64(bestCode)
		used[bestCode] = true
		placed = append(placed, u)
	}
	return e
}

// MustangAssignment encodes states with the given variant and symbolic
// inputs with the same machinery applied to a value-cooccurrence weight
// graph (minimum length everywhere, as in Table VII).
func MustangAssignment(f *kiss.FSM, variant MustangVariant) encoding.Assignment {
	a := encoding.Assignment{States: Mustang(f, variant)}
	for vi, v := range f.SymIns {
		n := len(v.Values)
		w := make([][]int, n)
		for i := range w {
			w[i] = make([]int, n)
		}
		// Values leading to the same next state attract.
		for _, r1 := range f.Rows {
			for _, r2 := range f.Rows {
				a1, a2 := r1.SymIn[vi], r2.SymIn[vi]
				if a1 >= 0 && a2 >= 0 && a1 != a2 && r1.Next >= 0 && r1.Next == r2.Next {
					w[a1][a2]++
					w[a2][a1]++
				}
			}
		}
		a.SymIns = append(a.SymIns, weightedEmbed(n, encode.MinLength(n), w))
	}
	return a
}

// Cream is the Cappuccino/Cream-style stand-in of Table V: symbolic
// minimization provides the (IC, OC) pair; the encoder then satisfies
// every input constraint by projection (non-minimum length, like
// Cappuccino's column-based scheme) after seeding the codes with the
// out_encoder solution of the covering graph.
func Cream(f *kiss.FSM, sopt symbolic.Options) (encoding.Assignment, error) {
	out, err := symbolic.Analyze(f, sopt)
	if err != nil {
		return encoding.Assignment{}, err
	}
	n := f.NumStates()
	res := encode.SatisfyAll(n, out.Problem.IC)
	a := encoding.Assignment{States: res.Enc}
	for vi := range f.SymIns {
		sres := encode.SatisfyAll(len(f.SymIns[vi].Values), out.SymIns[vi])
		a.SymIns = append(a.SymIns, sres.Enc)
	}
	return a, nil
}
