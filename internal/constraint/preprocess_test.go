package constraint_test

import (
	"math/rand"
	"testing"

	"nova/internal/constraint"
	"nova/internal/encode"
	"nova/internal/encoding"
)

// randomConstraints builds a list with deliberate duplicates and
// trivial entries, so Preprocess has something to merge and drop.
func randomConstraints(rng *rand.Rand, n, count int) []constraint.Constraint {
	list := make([]constraint.Constraint, 0, count)
	for len(list) < count {
		if len(list) > 0 && rng.Intn(3) == 0 {
			// Duplicate an earlier set with a fresh weight.
			d := list[rng.Intn(len(list))]
			list = append(list, constraint.Constraint{Set: d.Set.Copy(), Weight: 1 + rng.Intn(5)})
			continue
		}
		s := constraint.NewSet(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				s.Add(i)
			}
		}
		list = append(list, constraint.Constraint{Set: s, Weight: 1 + rng.Intn(5)})
	}
	return list
}

// satisfiedWeight is the scoring rule of encode.score restricted to
// weights: the total weight of constraints an encoding satisfies.
// Trivial constraints (cardinality < 2 or = n) always count as
// satisfied, which is exactly why dropping them is sound.
func satisfiedWeight(e encoding.Encoding, list []constraint.Constraint) int {
	w := 0
	for _, c := range list {
		card := c.Set.Card()
		if card < 2 || card == c.Set.N() || encode.Satisfied(e, c.Set) {
			w += c.Weight
		}
	}
	return w
}

// TestPreprocessPreservesSatisfiableWeight is the quick-check property
// of the constraint-merging layer: under ANY encoding, the satisfied
// weight of the preprocessed list equals that of the raw list — merging
// duplicates and dropping trivially satisfied sets never lowers (or
// raises) the total satisfiable weight.
func TestPreprocessPreservesSatisfiableWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(7)
		raw := randomConstraints(rng, n, 1+rng.Intn(12))
		prep := constraint.Preprocess(0, raw)

		if got, want := constraint.TotalWeight(prep.ICs)+trivialWeight(raw), constraint.TotalWeight(raw); got != want {
			t.Fatalf("trial %d: preprocessing lost weight: kept %d + trivial %d != raw %d", trial, constraint.TotalWeight(prep.ICs), trivialWeight(raw), want)
		}
		for probe := 0; probe < 8; probe++ {
			bits := encode.MinLength(n) + rng.Intn(2)
			e := encoding.New(n, bits)
			perm := rng.Perm(1 << uint(bits))
			for i := range e.Codes {
				e.Codes[i] = uint64(perm[i])
			}
			if got, want := satisfiedWeight(e, prep.ICs)+trivialWeight(raw), satisfiedWeight(e, raw); got != want {
				t.Fatalf("trial %d: satisfied weight changed under preprocessing: %d != %d\nraw: %v\nprep: %v",
					trial, got, want, raw, prep.ICs)
			}
		}
	}
}

func trivialWeight(list []constraint.Constraint) int {
	w := 0
	for _, c := range list {
		if card := c.Set.Card(); card < 2 || card == c.Set.N() {
			w += c.Weight
		}
	}
	return w
}

// TestPreprocessCounts pins the merge/drop accounting and the
// infeasibility flags on a hand-built list.
func TestPreprocessCounts(t *testing.T) {
	mk := func(v string, w int) constraint.Constraint {
		return constraint.Constraint{Set: constraint.MustFromString(v), Weight: w}
	}
	list := []constraint.Constraint{
		mk("110000", 3),
		mk("110000", 2), // duplicate: merged, weights folded
		mk("111110", 1), // cardinality 5 > 2^(3-1): infeasible at k=3
		mk("100000", 9), // singleton: dropped
		mk("111111", 9), // universe: dropped
	}
	p := constraint.Preprocess(3, list)
	if p.Merged != 1 || p.Dropped != 2 {
		t.Fatalf("Merged=%d Dropped=%d, want 1 and 2", p.Merged, p.Dropped)
	}
	if len(p.ICs) != 2 {
		t.Fatalf("got %d constraints, want 2: %v", len(p.ICs), p.ICs)
	}
	if p.ICs[0].Weight != 5 {
		t.Fatalf("duplicate weights not folded: %+v", p.ICs[0])
	}
	if len(p.Infeasible) != 1 || !p.Infeasible[constraint.MustFromString("111110").Key()] {
		t.Fatalf("infeasibility flags wrong: %v", p.Infeasible)
	}
	if p2 := constraint.Preprocess(0, list); p2.Infeasible != nil {
		t.Fatalf("k<=0 must not flag infeasibility: %v", p2.Infeasible)
	}
}
