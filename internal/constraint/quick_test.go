package constraint

import (
	"testing"
	"testing/quick"
)

func mkSet(bits uint16) Set {
	s := NewSet(16)
	for i := 0; i < 16; i++ {
		if bits&(1<<uint(i)) != 0 {
			s.Add(i)
		}
	}
	return s
}

// Algebraic laws of the Set type, checked with testing/quick.

func TestSetIntersectionCommutes(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := mkSet(a), mkSet(b)
		return x.Intersect(y).Equal(y.Intersect(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetUnionDistributes(t *testing.T) {
	f := func(a, b, c uint16) bool {
		x, y, z := mkSet(a), mkSet(b), mkSet(c)
		l := x.Intersect(y.Union(z))
		r := x.Intersect(y).Union(x.Intersect(z))
		return l.Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetSubsetIffIntersectSelf(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := mkSet(a), mkSet(b)
		return x.SubsetOf(y) == x.Intersect(y).Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetCardUnionInclusionExclusion(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := mkSet(a), mkSet(b)
		return x.Union(y).Card() == x.Card()+y.Card()-x.Intersect(y).Card()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetStringRoundTrip(t *testing.T) {
	f := func(a uint16) bool {
		x := mkSet(a)
		y, err := FromString(x.String())
		return err == nil && x.Equal(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetKeyInjective(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := mkSet(a), mkSet(b)
		return (x.Key() == y.Key()) == x.Equal(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetIntersectsConsistent(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := mkSet(a), mkSet(b)
		return x.Intersects(y) == !x.Intersect(y).IsEmpty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProperSubsetIrreflexive(t *testing.T) {
	f := func(a uint16) bool {
		x := mkSet(a)
		return !x.ProperSubsetOf(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCopyIndependence(t *testing.T) {
	s := MustFromString("1010")
	c := s.Copy()
	c.Add(1)
	if s.Has(1) {
		t.Fatal("Copy aliases the original")
	}
	s.Remove(0)
	if !c.Has(0) {
		t.Fatal("original mutation leaked into copy")
	}
}
