package constraint

import (
	"testing"
	"testing/quick"
)

// paperIC is the running example of Sections 3.1-3.4: Example 3.1.1.
func paperIC() []Constraint {
	var ics []Constraint
	for _, v := range []string{"1110000", "0111000", "0000111", "1000110", "0000011", "0011000"} {
		ics = append(ics, Constraint{Set: MustFromString(v), Weight: 1})
	}
	return ics
}

func TestSetBasics(t *testing.T) {
	s := MustFromString("1010")
	if s.N() != 4 || s.Card() != 2 {
		t.Fatalf("N=%d Card=%d", s.N(), s.Card())
	}
	if !s.Has(0) || s.Has(1) || !s.Has(2) {
		t.Fatal("membership wrong")
	}
	if s.String() != "1010" {
		t.Fatalf("String = %q", s.String())
	}
	u := Universe(4)
	if !s.SubsetOf(u) || !s.ProperSubsetOf(u) || u.SubsetOf(s) {
		t.Fatal("subset relations wrong")
	}
	if got := s.Intersect(MustFromString("0110")); got.String() != "0010" {
		t.Fatalf("Intersect = %s", got)
	}
	if got := s.Union(MustFromString("0110")); got.String() != "1110" {
		t.Fatalf("Union = %s", got)
	}
}

func TestSetMembers(t *testing.T) {
	s := MustFromString("0110010")
	got := s.Members()
	want := []int{1, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("Members = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
}

func TestClosureMatchesPaperExample312(t *testing.T) {
	// Example 3.1.2: Closure∩[IC] for the running example.
	g := BuildGraph(7, paperIC())
	want := []string{
		"1111111", // universe (added by the graph)
		"1110000", "0111000", "0000111", "1000110", "0000011", "0011000",
		"0110000", "0000110",
		"1000000", "0100000", "0010000", "0001000", "0000100", "0000010", "0000001",
	}
	if len(g.Nodes) != len(want) {
		var got []string
		for _, nd := range g.Nodes {
			got = append(got, nd.Set.String())
		}
		t.Fatalf("closure has %d nodes, want %d\n got: %v", len(g.Nodes), len(want), got)
	}
	for _, w := range want {
		if g.Lookup(MustFromString(w)) == nil {
			t.Fatalf("closure is missing %s", w)
		}
	}
}

func TestFathersMatchPaperExample321(t *testing.T) {
	g := BuildGraph(7, paperIC())
	fathers := func(v string) map[string]bool {
		nd := g.Lookup(MustFromString(v))
		if nd == nil {
			t.Fatalf("missing node %s", v)
		}
		out := map[string]bool{}
		for _, f := range nd.Fathers {
			out[f.Set.String()] = true
		}
		return out
	}
	cases := map[string][]string{
		"1110000": {"1111111"},
		"0111000": {"1111111"},
		"0000111": {"1111111"},
		"1000110": {"1111111"},
		"0011000": {"0111000"},
		"0110000": {"0111000", "1110000"},
		"0000011": {"0000111"},
		"0000110": {"0000111", "1000110"},
		"0010000": {"0011000", "0110000"},
		"0001000": {"0011000"},
		"0100000": {"0110000"},
		"0000010": {"0000011", "0000110"},
		"0000001": {"0000011"},
		// Example 3.2.1 prints "F(0000100) = (1110000, 1000110)", but that
		// line is F(1000000): the sets including state 5 are 0000111 and
		// 1000110, whose intersection 0000110 is the unique minimal
		// superset of {5} — consistent with cat(0000100) = 3 in Example
		// 3.3.1.1. F(1000000) = {1110000, 1000110} matches cat(1000000)=2.
		"0000100": {"0000110"},
		"1000000": {"1110000", "1000110"},
	}
	for v, want := range cases {
		got := fathers(v)
		if len(got) != len(want) {
			t.Fatalf("F(%s) = %v, want %v", v, got, want)
		}
		for _, w := range want {
			if !got[w] {
				t.Fatalf("F(%s) missing %s (got %v)", v, w, got)
			}
		}
	}
}

func TestCategoriesMatchPaperExample3311(t *testing.T) {
	g := BuildGraph(7, paperIC())
	cases := map[string]int{
		"1110000": Cat1, "0111000": Cat1, "0000111": Cat1, "1000110": Cat1,
		"0000110": Cat2, "0110000": Cat2, "0010000": Cat2, "0000010": Cat2, "1000000": Cat2,
		"0011000": Cat3, "0000011": Cat3, "0001000": Cat3,
		"0100000": Cat3, "0000001": Cat3, "0000100": Cat3,
	}
	for v, want := range cases {
		nd := g.Lookup(MustFromString(v))
		if nd == nil {
			t.Fatalf("missing node %s", v)
		}
		if got := nd.Cat(); got != want {
			t.Fatalf("cat(%s) = %d, want %d", v, got, want)
		}
	}
	if g.Universe.Cat() != CatUniverse {
		t.Fatal("universe category wrong")
	}
}

func TestMinCubeDimPaperExample(t *testing.T) {
	// Example 3.3.2.2.1: count_cond1/2 give 3, count_cond3 raises to 4.
	g := BuildGraph(7, paperIC())
	k12 := g.countCond2(g.countCond1())
	if k12 != 3 {
		t.Fatalf("count_cond1+2 = %d, want 3", k12)
	}
	if got := g.MinCubeDim(); got != 4 {
		t.Fatalf("MinCubeDim = %d, want 4", got)
	}
}

func TestNormalize(t *testing.T) {
	ics := []Constraint{
		{Set: MustFromString("1100"), Weight: 2},
		{Set: MustFromString("1100"), Weight: 3},
		{Set: MustFromString("0110"), Weight: 4},
		{Set: MustFromString("1000"), Weight: 9}, // singleton: dropped
		{Set: MustFromString("1111"), Weight: 9}, // universe: dropped
	}
	out := Normalize(ics)
	if len(out) != 2 {
		t.Fatalf("Normalize kept %d, want 2", len(out))
	}
	if out[0].Set.String() != "1100" || out[0].Weight != 5 {
		t.Fatalf("first = %s w=%d", out[0].Set, out[0].Weight)
	}
	if out[1].Set.String() != "0110" || out[1].Weight != 4 {
		t.Fatalf("second = %s w=%d", out[1].Set, out[1].Weight)
	}
	if TotalWeight(out) != 9 {
		t.Fatalf("TotalWeight = %d", TotalWeight(out))
	}
}

func TestGraphWeightsCarried(t *testing.T) {
	ics := []Constraint{
		{Set: MustFromString("1100"), Weight: 5},
		{Set: MustFromString("0110"), Weight: 2},
	}
	g := BuildGraph(4, ics)
	if nd := g.Lookup(MustFromString("1100")); !nd.Original || nd.Weight != 5 {
		t.Fatalf("node weight/original wrong: %+v", nd)
	}
	if nd := g.Lookup(MustFromString("0100")); nd == nil || nd.Original {
		t.Fatal("intersection node should exist and not be original")
	}
}

// Property: the closure is intersection-closed.
func TestClosureIsClosed(t *testing.T) {
	f := func(a, b, c uint8) bool {
		mk := func(x uint8) Set {
			s := NewSet(8)
			for i := 0; i < 8; i++ {
				if x&(1<<uint(i)) != 0 {
					s.Add(i)
				}
			}
			return s
		}
		g := BuildGraph(8, []Constraint{{Set: mk(a | 1)}, {Set: mk(b | 2)}, {Set: mk(c | 4)}})
		for i := 0; i < len(g.Nodes); i++ {
			for j := 0; j < len(g.Nodes); j++ {
				x := g.Nodes[i].Set.Intersect(g.Nodes[j].Set)
				if !x.IsEmpty() && g.Lookup(x) == nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: fathers are minimal proper supersets and children mirror them.
func TestFatherChildConsistency(t *testing.T) {
	g := BuildGraph(7, paperIC())
	for _, nd := range g.Nodes {
		for _, f := range nd.Fathers {
			if !nd.Set.ProperSubsetOf(f.Set) {
				t.Fatalf("father %s does not include %s", f.Set, nd.Set)
			}
			found := false
			for _, c := range f.Children {
				if c == nd {
					found = true
				}
			}
			if !found {
				t.Fatalf("child link missing for %s -> %s", f.Set, nd.Set)
			}
			// Minimality: no closure node strictly between.
			for _, mid := range g.Nodes {
				if mid == nd || mid == f {
					continue
				}
				if nd.Set.ProperSubsetOf(mid.Set) && mid.Set.ProperSubsetOf(f.Set) {
					t.Fatalf("father %s of %s is not minimal (%s between)", f.Set, nd.Set, mid.Set)
				}
			}
		}
	}
}
