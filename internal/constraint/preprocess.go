package constraint

// Prep is the output of Preprocess: the normalized constraint list the
// encoding algorithms consume, plus the bookkeeping the searchers and
// the observability layer want.
type Prep struct {
	// ICs is the preprocessed list: duplicate sets merged with summed
	// weights, trivially satisfied sets dropped, sorted by decreasing
	// weight (Normalize's deterministic order).
	ICs []Constraint
	// Infeasible flags (by Set.Key) the constraints of ICs that no
	// proper face of the k-cube can host; nil when Preprocess ran
	// without a code length (k <= 0). See Preprocess for the argument.
	Infeasible map[string]bool
	// Merged counts the input entries folded into an earlier duplicate
	// (their weights were summed); Dropped counts the trivially
	// satisfied entries removed (cardinality < 2 or = n).
	Merged, Dropped int
}

// Preprocess prepares an input-constraint list for the encoding
// searches. It is Normalize — duplicate sets merged with their weights
// folded, trivially satisfied sets dropped, deterministic
// weight-descending order — plus the pruning metadata of the search
// pipeline:
//
// When a positive code length k is given, constraints with
// #(ic) > 2^(k-1) are flagged infeasible: a face hosting #(ic) states
// needs at least ceil(log2 #(ic)) = k free coordinates, and the only
// level-k face of the k-cube is the full cube, which injectivity
// reserves for the universe constraint. A bounded search on such a
// constraint always fails after a single face probe, so callers can
// reject it without building the intersection-closure graph. Dropping
// the constraint from the *result* would be unsound — its weight still
// counts against WUnsat — so it stays in ICs and is only flagged.
//
// Proper subsumption (A ⊃ B) is deliberately NOT merged: satisfying a
// face for A neither implies nor is implied by satisfying one for B,
// and the weights are per-constraint product-term savings, so folding
// them would change every algorithm's satisfied-weight accounting.
func Preprocess(k int, list []Constraint) Prep {
	p := Prep{ICs: Normalize(list)}
	nontrivial := 0
	for _, c := range list {
		if card := c.Set.Card(); card >= 2 && card != c.Set.N() {
			nontrivial++
		}
	}
	p.Dropped = len(list) - nontrivial
	p.Merged = nontrivial - len(p.ICs)
	if k > 0 {
		for _, c := range p.ICs {
			if log2ceil(c.Set.Card()) >= k {
				if p.Infeasible == nil {
					p.Infeasible = make(map[string]bool)
				}
				p.Infeasible[c.Set.Key()] = true
			}
		}
	}
	return p
}
