// Package constraint implements the input-constraint machinery of NOVA:
// constraint sets (characteristic vectors over the symbols being encoded),
// the intersection closure Closure∩[IC], the input graph IG(V,E) with
// father/child relations, and the constraint categories used by the
// encoding algorithms (Sections 3.1-3.2 of the paper).
package constraint

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Set is a subset of the n symbols {0..n-1} being encoded, the paper's
// characteristic-vector representation of an input constraint.
type Set struct {
	n int
	w []uint64
}

// NewSet returns the empty subset of an n-symbol universe.
func NewSet(n int) Set {
	return Set{n: n, w: make([]uint64, (n+63)/64)}
}

// Universe returns the constraint including all n symbols.
func Universe(n int) Set {
	s := NewSet(n)
	for i := 0; i < n; i++ {
		s.Add(i)
	}
	return s
}

// Singleton returns the constraint {i} in an n-symbol universe.
func Singleton(n, i int) Set {
	s := NewSet(n)
	s.Add(i)
	return s
}

// FromString parses a characteristic vector like "1110000".
func FromString(v string) (Set, error) {
	s := NewSet(len(v))
	for i, c := range v {
		switch c {
		case '1':
			s.Add(i)
		case '0':
		default:
			return Set{}, fmt.Errorf("constraint: invalid character %q in %q", c, v)
		}
	}
	return s, nil
}

// MustFromString is FromString panicking on error, for test literals.
func MustFromString(v string) Set {
	s, err := FromString(v)
	if err != nil {
		panic(err)
	}
	return s
}

// N returns the universe size.
func (s Set) N() int { return s.n }

// Add inserts symbol i.
func (s Set) Add(i int) { s.w[i>>6] |= 1 << uint(i&63) }

// Remove deletes symbol i.
func (s Set) Remove(i int) { s.w[i>>6] &^= 1 << uint(i&63) }

// Has reports whether symbol i is in the set.
func (s Set) Has(i int) bool { return s.w[i>>6]&(1<<uint(i&63)) != 0 }

// Card returns the cardinality #(s).
func (s Set) Card() int {
	n := 0
	for _, w := range s.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set has no members.
func (s Set) IsEmpty() bool {
	for _, w := range s.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// Copy returns an independent copy.
func (s Set) Copy() Set {
	c := Set{n: s.n, w: append([]uint64(nil), s.w...)}
	return c
}

// Equal reports set equality.
func (s Set) Equal(t Set) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.w {
		if s.w[i] != t.w[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports s ⊆ t.
func (s Set) SubsetOf(t Set) bool {
	for i := range s.w {
		if s.w[i]&^t.w[i] != 0 {
			return false
		}
	}
	return true
}

// ProperSubsetOf reports s ⊂ t.
func (s Set) ProperSubsetOf(t Set) bool {
	return s.SubsetOf(t) && !s.Equal(t)
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	r := NewSet(s.n)
	for i := range s.w {
		r.w[i] = s.w[i] & t.w[i]
	}
	return r
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	r := NewSet(s.n)
	for i := range s.w {
		r.w[i] = s.w[i] | t.w[i]
	}
	return r
}

// IntersectCard returns #(s ∩ t) without materializing the intersection.
func (s Set) IntersectCard(t Set) int {
	n := 0
	for i := range s.w {
		n += bits.OnesCount64(s.w[i] & t.w[i])
	}
	return n
}

// Intersects reports whether s ∩ t is nonempty.
func (s Set) Intersects(t Set) bool {
	for i := range s.w {
		if s.w[i]&t.w[i] != 0 {
			return true
		}
	}
	return false
}

// Members returns the symbols of s in increasing order.
func (s Set) Members() []int {
	var out []int
	for i := 0; i < s.n; i++ {
		if s.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// Key returns a canonical map key for the set.
func (s Set) Key() string {
	var b strings.Builder
	for _, w := range s.w {
		fmt.Fprintf(&b, "%016x", w)
	}
	return b.String()
}

// String renders the characteristic vector, e.g. "1110000".
func (s Set) String() string {
	b := make([]byte, s.n)
	for i := 0; i < s.n; i++ {
		if s.Has(i) {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// Constraint is a weighted input constraint: the weight is proportional to
// the number of occurrences of the corresponding product term in the
// multiple-valued minimized cover (the product terms saved by satisfying
// the constraint).
type Constraint struct {
	Set    Set
	Weight int
}

// Normalize deduplicates a list of weighted constraints: equal sets have
// their weights summed; empty, singleton and universe sets are dropped
// (they are trivially satisfied). The result is sorted by decreasing
// weight, ties broken by decreasing cardinality then lexicographic vector,
// so processing order is deterministic.
func Normalize(list []Constraint) []Constraint {
	byKey := map[string]*Constraint{}
	var order []string
	for _, c := range list {
		card := c.Set.Card()
		if card < 2 || card == c.Set.N() {
			continue
		}
		k := c.Set.Key()
		if e, ok := byKey[k]; ok {
			e.Weight += c.Weight
			continue
		}
		cc := Constraint{Set: c.Set.Copy(), Weight: c.Weight}
		byKey[k] = &cc
		order = append(order, k)
	}
	out := make([]Constraint, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		ci, cj := out[i].Set.Card(), out[j].Set.Card()
		if ci != cj {
			return ci > cj
		}
		return out[i].Set.String() > out[j].Set.String()
	})
	return out
}

// TotalWeight sums the weights of a constraint list.
func TotalWeight(list []Constraint) int {
	t := 0
	for _, c := range list {
		t += c.Weight
	}
	return t
}
