package nova

import (
	"fmt"

	"nova/internal/sched"
)

// algorithms is the closed set of Algorithm values the entry points
// accept. The empty string is also accepted everywhere and resolves to
// Best in withDefaults.
var algorithms = map[Algorithm]bool{
	IExact: true, IHybrid: true, IGreedy: true, IOHybrid: true,
	IOVariant: true, Best: true, Portfolio: true, KISS: true,
	OneHot: true, Random: true,
	MustangP: true, MustangN: true, MustangPT: true, MustangNT: true,
}

// Algorithms returns every accepted Algorithm value in a stable order —
// the set the CLI tools and the server validate request algorithms
// against.
func Algorithms() []Algorithm {
	return []Algorithm{
		IExact, IHybrid, IGreedy, IOHybrid, IOVariant, Best, Portfolio,
		KISS, OneHot, Random, MustangP, MustangN, MustangPT, MustangNT,
	}
}

// Validate checks the Options for values no run could honor: an unknown
// algorithm, an encoding length outside [0, 64], or a negative budget or
// worker bound. Every public entry point (Encode, EncodeContext,
// EncodeAll) calls it once up front and returns the failure wrapped so
// that errors.Is(err, ErrBadOptions) matches; zero values are always
// valid and select the documented defaults.
func (o Options) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrBadOptions, fmt.Sprintf(format, args...))
	}
	if o.Algorithm != "" && !algorithms[o.Algorithm] {
		return bad("unknown algorithm %q", o.Algorithm)
	}
	if o.Bits < 0 || o.Bits > 64 {
		return bad("Bits %d outside [0, 64]", o.Bits)
	}
	if o.MaxWork < 0 {
		return bad("MaxWork %d is negative", o.MaxWork)
	}
	if o.SearchMemoCap < 0 {
		return bad("SearchMemoCap %d is negative", o.SearchMemoCap)
	}
	if o.RandomTrials < 0 {
		return bad("RandomTrials %d is negative", o.RandomTrials)
	}
	if o.Parallelism < 0 {
		return bad("Parallelism %d is negative", o.Parallelism)
	}
	if o.IntraParallelism < 0 {
		return bad("IntraParallelism %d is negative", o.IntraParallelism)
	}
	if o.IntraForkCubes < 0 {
		return bad("IntraForkCubes %d is negative", o.IntraForkCubes)
	}
	if o.Portfolio != nil && o.Algorithm != "" && o.Algorithm != Portfolio {
		return bad("Portfolio config set with algorithm %q (want %q or empty)", o.Algorithm, Portfolio)
	}
	if err := o.Portfolio.validate(bad); err != nil {
		return err
	}
	return nil
}

// withDefaults resolves every defaulted zero value to its concrete
// setting in one place: the algorithm and the worker bound. It is the
// single fixup point behind the public entry points — code past it can
// rely on Algorithm being a member of the algorithm set and Parallelism
// being positive. (RandomTrials stays 0 here because its default depends
// on the machine; encodeRandom resolves it.)
func (o Options) withDefaults() Options {
	if o.Algorithm == "" {
		if o.Portfolio != nil {
			o.Algorithm = Portfolio
		} else {
			o.Algorithm = Best
		}
	}
	o.Parallelism = sched.PoolSize(o.Parallelism, 0)
	return o
}
