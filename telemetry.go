package nova

import (
	"nova/internal/obs"

	"nova/internal/sched"
)

// Tracer collects the telemetry of one encoding run (or one EncodeAll
// batch): span-style phase timings and the counters that explain NOVA's
// behavior (espresso iterations, tautology memo hit rate, searcher
// backtracks, pool scheduling). Create one with NewTracer, set it on
// Options.Tracer, and read Result.Telemetry (or Tracer.Snapshot) after
// the run. A Tracer may be shared by several runs to aggregate them;
// there is no global tracer — runs without one record nothing and pay
// nothing.
type Tracer = obs.Tracer

// TelemetrySnapshot summarizes a tracer: wall time, per-phase span
// aggregates (with self times, so nested phases are not double counted),
// and every counter.
type TelemetrySnapshot = obs.Snapshot

// PhaseStat is one phase aggregate of a TelemetrySnapshot.
type PhaseStat = obs.PhaseStat

// NewTracer returns an empty tracer whose clock starts now. Use
// Tracer.SetWriter to stream spans as JSON lines, Tracer.SetLogger to
// mirror them to a log/slog logger, and Tracer.SetLabel to tag the
// stream when several tracers share one writer.
func NewTracer() *Tracer { return obs.New() }

// flushPoolStats folds a run's pool scheduling counters into its
// metrics. Each EncodeContext / EncodeAll call owns a fresh pool, so the
// totals are exactly that run's activity.
func flushPoolStats(m *obs.Metrics, pool *sched.Pool) {
	ps := pool.Stats()
	if ps.Tasks != 0 {
		m.PoolTasks.Add(ps.Tasks)
	}
	if ps.Inline != 0 {
		m.PoolInline.Add(ps.Inline)
	}
	if ps.MaxDepth != 0 {
		m.Max("pool.max_depth", ps.MaxDepth)
	}
}

// outcomeOf classifies a run's error for the per-algorithm tallies.
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return "ok"
	case isGaveUp(err):
		return "gaveup"
	case isCanceled(err):
		return "canceled"
	default:
		return "error"
	}
}
