package nova

import (
	"fmt"

	"nova/internal/cube"
	"nova/internal/obs"
	"nova/internal/sched"
)

// Tracer collects the telemetry of one encoding run (or one EncodeAll
// batch): span-style phase timings and the counters that explain NOVA's
// behavior (espresso iterations, tautology memo hit rate, searcher
// backtracks, pool scheduling). Create one with NewTracer, set it on
// Options.Tracer, and read Result.Telemetry (or Tracer.Snapshot) after
// the run. A Tracer may be shared by several runs to aggregate them;
// there is no global tracer — runs without one record nothing and pay
// nothing.
type Tracer = obs.Tracer

// TelemetrySnapshot summarizes a tracer: wall time, per-phase span
// aggregates (with self times, so nested phases are not double counted),
// and every counter.
type TelemetrySnapshot = obs.Snapshot

// PhaseStat is one phase aggregate of a TelemetrySnapshot.
type PhaseStat = obs.PhaseStat

// NewTracer returns an empty tracer whose clock starts now. Use
// Tracer.SetWriter to stream spans as JSON lines, Tracer.SetLogger to
// mirror them to a log/slog logger, and Tracer.SetLabel to tag the
// stream when several tracers share one writer.
func NewTracer() *Tracer { return obs.New() }

// flushPoolStats folds a run's pool scheduling counters into its
// metrics. Each EncodeContext / EncodeAll call owns a fresh pool, so the
// totals are exactly that run's activity.
func flushPoolStats(m *obs.Metrics, pool *sched.Pool) {
	ps := pool.Stats()
	if ps.Tasks != 0 {
		m.PoolTasks.Add(ps.Tasks)
	}
	if ps.Inline != 0 {
		m.PoolInline.Add(ps.Inline)
	}
	if ps.MaxDepth != 0 {
		m.Max("pool.max_depth", ps.MaxDepth)
	}
	for d, n := range ps.DepthHist {
		if n != 0 {
			m.Add(fmt.Sprintf("pool.depth.%d", d), n)
		}
	}
}

// flushForkStats folds the intra-problem parallelism counters of a run's
// unate-recursion fork into its metrics: how many tautology/complement
// calls dispatched their branches onto the pool, how many branches that
// produced, and the minimizer-style arena counters of the forked child
// branches (which bypass the espresso per-pass flush). A nil fork — every
// run without IntraParallelism — records nothing.
func flushForkStats(m *obs.Metrics, fork *cube.Fork) {
	fs := fork.Stats()
	if fs.TautForks != 0 {
		m.Add("fork.taut_forks", fs.TautForks)
	}
	if fs.CompForks != 0 {
		m.Add("fork.comp_forks", fs.CompForks)
	}
	if fs.TautBranches != 0 {
		m.Add("fork.taut_branches", fs.TautBranches)
	}
	if fs.CompBranches != 0 {
		m.Add("fork.comp_branches", fs.CompBranches)
	}
	if fs.Child.TautCalls != 0 {
		m.TautCalls.Add(fs.Child.TautCalls)
	}
	if fs.Child.TautMemoLookups != 0 {
		m.TautMemoLookups.Add(fs.Child.TautMemoLookups)
	}
	if fs.Child.TautMemoHits != 0 {
		m.TautMemoHits.Add(fs.Child.TautMemoHits)
	}
	if fs.Child.CubesAlloc != 0 {
		m.CubesAlloc.Add(fs.Child.CubesAlloc)
	}
	if fs.Child.CubesReused != 0 {
		m.CubesReused.Add(fs.Child.CubesReused)
	}
}

// outcomeOf classifies a run's error for the per-algorithm tallies.
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return "ok"
	case isGaveUp(err):
		return "gaveup"
	case isCanceled(err):
		return "canceled"
	default:
		return "error"
	}
}
