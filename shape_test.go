package nova_test

// Shape regression tests: the paper's comparative claims, asserted on
// aggregate areas over the fast benchmark subset. Individual machines may
// deviate (they do in the paper too); the totals must not.

import (
	"testing"

	"nova/internal/experiments"
)

func shapeRows(t *testing.T) ([]experiments.RowIV, []experiments.RowIII) {
	t.Helper()
	r := experiments.NewRunner(experiments.RunOpts{Only: fastSubset, Seed: 1})
	rows4, err := r.TableIV()
	if err != nil {
		t.Fatal(err)
	}
	rows3, err := r.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	return rows4, rows3
}

func TestShapeNovaBeatsRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline sweep skipped in -short")
	}
	rows4, rows3 := shapeRows(t)
	var nova4, rndBest, rndAvg, kiss, ih int
	for _, r := range rows4 {
		nova4 += r.NovaBest.Area
		rndBest += r.RandomBestArea
		rndAvg += r.RandomAvgArea
		ih += r.NovaIH.Area
	}
	for _, r := range rows3 {
		kiss += r.KISS.Area
	}
	// Paper: best of NOVA ≈ 77% of best random, ≈ 20% below KISS; the
	// random average above the random best.
	if nova4 >= rndBest {
		t.Fatalf("best of NOVA (%d) not below best random (%d)", nova4, rndBest)
	}
	if rndAvg < rndBest {
		t.Fatalf("random average (%d) below random best (%d)", rndAvg, rndBest)
	}
	if nova4 >= kiss {
		t.Fatalf("best of NOVA (%d) not below KISS (%d)", nova4, kiss)
	}
	if nova4 > ih {
		t.Fatalf("best of NOVA (%d) above its ihybrid/igreedy component (%d)", nova4, ih)
	}
}

func TestShapeIExactAreaNeverWins(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline sweep skipped in -short")
	}
	// Paper (Table II discussion): although iexact satisfies every input
	// constraint, "its final areas are always larger" than ihybrid's. We
	// assert the aggregate (per-machine ties allowed).
	r := experiments.NewRunner(experiments.RunOpts{Only: fastSubset, Seed: 1})
	rows, err := r.TableII()
	if err != nil {
		t.Fatal(err)
	}
	exact, hybrid := 0, 0
	for _, row := range rows {
		if row.IExact.GaveUp {
			continue
		}
		exact += row.IExact.Area
		hybrid += row.IHybrid.Area
		if row.IExact.Bits < row.IHybrid.Bits {
			t.Fatalf("%s: iexact used fewer bits than minimum-length ihybrid", row.Name)
		}
	}
	if exact < hybrid {
		t.Fatalf("iexact total area (%d) below ihybrid (%d): shape inverted", exact, hybrid)
	}
}

func TestShapeMustangLosesOnCubes(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline sweep skipped in -short")
	}
	// Paper Table VII: MUSTANG's best two-level cube count is ~124% of
	// NOVA's in total.
	r := experiments.NewRunner(experiments.RunOpts{Only: fastSubset, Seed: 1})
	rows, err := r.TableVII()
	if err != nil {
		t.Fatal(err)
	}
	mus, nov := 0, 0
	for _, row := range rows {
		mus += row.MustangCubes
		nov += row.NovaCubes
	}
	if mus < nov {
		t.Fatalf("MUSTANG total cubes (%d) below NOVA (%d): shape inverted", mus, nov)
	}
}
