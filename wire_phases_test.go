package nova

import (
	"encoding/json"
	"testing"
	"time"

	"nova/internal/obs"
)

// TestWirePhasesOf pins the snapshot → wire rendering shared by
// Response.Telemetry, the novad flight recorder and the ?trace=1
// opt-in.
func TestWirePhasesOf(t *testing.T) {
	if WirePhasesOf(nil) != nil {
		t.Fatal("nil snapshot should render nil")
	}
	if WirePhasesOf(&TelemetrySnapshot{}) != nil {
		t.Fatal("empty phase table should render nil")
	}
	snap := &TelemetrySnapshot{Phases: []obs.PhaseStat{
		{Name: "espresso.minimize", Count: 3, Total: 1500 * time.Microsecond, Self: 900 * time.Microsecond},
		{Name: "mvmin.build", Count: 1, Total: 200 * time.Microsecond, Self: 200 * time.Microsecond},
	}}
	got := WirePhasesOf(snap)
	if len(got) != 2 {
		t.Fatalf("rendered %d phases", len(got))
	}
	want0 := WirePhase{Name: "espresso.minimize", Count: 3, TotalMicros: 1500, SelfMicros: 900}
	if got[0] != want0 {
		t.Fatalf("phase[0] = %+v, want %+v", got[0], want0)
	}

	// The JSON field names are wire contract.
	b, err := json.Marshal(got[0])
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"name":"espresso.minimize","count":3,"total_us":1500,"self_us":900}`
	if string(b) != want {
		t.Fatalf("wire shape %s, want %s", b, want)
	}
}

// TestResponseTelemetryCarriesPhases: a traced encode's wire Response
// round-trips its phase table.
func TestResponseTelemetryCarriesPhases(t *testing.T) {
	rq := Request{KISS2: "\n.i 1\n.o 1\n.s 2\n.r a\n0 a b 0\n1 a a 1\n0 b a 1\n1 b b 0\n.e\n",
		Name: "tiny", Algorithm: IGreedy, IncludeTelemetry: true}
	f, err := rq.Machine()
	if err != nil {
		t.Fatal(err)
	}
	opt := rq.Options()
	opt.Tracer = NewTracer()
	res, err := Encode(f, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(ResponseOf(f, res))
	if err != nil {
		t.Fatal(err)
	}
	var rp Response
	if err := json.Unmarshal(b, &rp); err != nil {
		t.Fatal(err)
	}
	if rp.Telemetry == nil || len(rp.Telemetry.Phases) == 0 {
		t.Fatalf("telemetry lost its phases: %+v", rp.Telemetry)
	}
	for _, p := range rp.Telemetry.Phases {
		if p.Name == "" || p.Count <= 0 || p.TotalMicros < p.SelfMicros {
			t.Fatalf("malformed wire phase %+v", p)
		}
	}
}
