package client

import (
	"testing"
	"time"
)

// TestBackoffBoundsAndCap: every delay for attempt n lies in
// [d/2, d) with d = min(cap, base<<n), across many draws.
func TestBackoffBoundsAndCap(t *testing.T) {
	base, cap := 100*time.Millisecond, 400*time.Millisecond
	for seed := uint64(0); seed < 8; seed++ {
		bo := newBackoff(base, cap, seed)
		for attempt := 0; attempt < 10; attempt++ {
			d := base << attempt
			if attempt >= 2 { // 100ms<<2 = 400ms = cap
				d = cap
			}
			got := bo.delay(attempt)
			if got < d/2 || got >= d {
				t.Fatalf("seed %d attempt %d: delay %v outside [%v, %v)", seed, attempt, got, d/2, d)
			}
		}
	}
}

// TestBackoffDeterministic: one seed, one exact sequence; different
// seeds, different sequences.
func TestBackoffDeterministic(t *testing.T) {
	seq := func(seed uint64) []time.Duration {
		bo := newBackoff(50*time.Millisecond, 2*time.Second, seed)
		out := make([]time.Duration, 12)
		for i := range out {
			out[i] = bo.delay(i)
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the identical jitter sequence")
	}
}

// TestBackoffHugeAttemptDoesNotOverflow: the shift is clamped, so a
// pathological attempt count still yields a capped delay.
func TestBackoffHugeAttemptDoesNotOverflow(t *testing.T) {
	bo := newBackoff(time.Second, 4*time.Second, 1)
	for _, attempt := range []int{62, 63, 64, 1000} {
		got := bo.delay(attempt)
		if got < 2*time.Second || got >= 4*time.Second {
			t.Fatalf("attempt %d: delay %v escaped the cap window", attempt, got)
		}
	}
}
