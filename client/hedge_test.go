package client

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"nova"
)

// The hedge tests script the race explicitly: the fake clock fires the
// hedge timer only once the primary has entered the transport (so call
// number 0 is always the primary), and channel handshakes in the stub
// transport decide who answers first — deterministic, sleep-free,
// race-clean.

// gateHedgeTimer makes fc's next timer fire as soon as primaryIn is
// closed, pinning the primary-before-hedge transport order.
func gateHedgeTimer(fc *fakeClock, primaryIn <-chan struct{}) {
	fc.after = func(time.Duration) <-chan time.Time {
		ch := make(chan time.Time, 1)
		go func() {
			<-primaryIn
			ch <- time.Time{}
		}()
		return ch
	}
}

// TestHedgeWinsSlowPrimary: the primary hangs until canceled, the
// hedge answers; the call succeeds, client.hedges.won ticks, and the
// loser is canceled rather than leaked.
func TestHedgeWinsSlowPrimary(t *testing.T) {
	primaryIn := make(chan struct{})
	primaryCanceled := make(chan struct{})
	sd := &stubDoer{fn: func(n int, req *http.Request) (*http.Response, error) {
		if n == 0 { // primary: hang until the winner cancels us
			close(primaryIn)
			<-req.Context().Done()
			close(primaryCanceled)
			return nil, req.Context().Err()
		}
		return httpResp(200, okBody, nil), nil
	}}
	c, fc := newTestClient(t, Config{HedgeDelay: 10 * time.Millisecond, MaxRetries: -1}, sd)
	gateHedgeTimer(fc, primaryIn)

	rp, err := c.Encode(context.Background(), nova.Request{KISS2: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Area != 30 {
		t.Fatalf("area = %d, want the hedge's answer", rp.Area)
	}
	select {
	case <-primaryCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("losing primary was never canceled")
	}
	v := c.Vars()
	if v["client.hedges"] != 1 || v["client.hedges.won"] != 1 {
		t.Fatalf("hedges/won = %d/%d, want 1/1", v["client.hedges"], v["client.hedges.won"])
	}
}

// TestHedgeBothFail: when primary and hedge both fail, the attempt
// reports the more informative error and hedges.won stays zero.
func TestHedgeBothFail(t *testing.T) {
	primaryIn := make(chan struct{})
	hedgeDone := make(chan struct{})
	boom := errors.New("primary transport failure")
	sd := &stubDoer{fn: func(n int, _ *http.Request) (*http.Response, error) {
		if n == 0 { // primary: fail only after the hedge has reported
			close(primaryIn)
			<-hedgeDone
			return nil, boom
		}
		defer close(hedgeDone)
		return errResp(503, nova.ErrKindInternal), nil
	}}
	c, fc := newTestClient(t, Config{HedgeDelay: time.Millisecond, MaxRetries: -1, BreakerThreshold: -1}, sd)
	gateHedgeTimer(fc, primaryIn)

	_, err := c.Encode(context.Background(), nova.Request{KISS2: "x"})
	if err == nil {
		t.Fatal("both copies failed yet the call succeeded")
	}
	var ae *APIError
	if !errors.As(err, &ae) && !errors.Is(err, boom) {
		t.Fatalf("surfaced error %v is neither copy's failure", err)
	}
	v := c.Vars()
	if v["client.hedges"] != 1 || v["client.hedges.won"] != 0 {
		t.Fatalf("hedges/won = %d/%d, want 1/0", v["client.hedges"], v["client.hedges.won"])
	}
}

// TestNoHedgeWhenPrimaryFast: if the primary answers before the hedge
// delay elapses, no duplicate is ever sent.
func TestNoHedgeWhenPrimaryFast(t *testing.T) {
	sd := &stubDoer{fn: func(int, *http.Request) (*http.Response, error) {
		return httpResp(200, okBody, nil), nil
	}}
	c, fc := newTestClient(t, Config{HedgeDelay: time.Hour}, sd)
	fc.after = func(time.Duration) <-chan time.Time {
		return make(chan time.Time) // the hedge timer never fires
	}
	if _, err := c.Encode(context.Background(), nova.Request{KISS2: "x"}); err != nil {
		t.Fatal(err)
	}
	if sd.calls() != 1 {
		t.Fatalf("%d requests sent, want 1 (no hedge)", sd.calls())
	}
	if v := c.Vars(); v["client.hedges"] != 0 {
		t.Fatalf("client.hedges = %d, want 0", v["client.hedges"])
	}
}

// TestHedgeFailurePrimaryWins: the hedge fails fast, the primary later
// succeeds — the attempt still succeeds.
func TestHedgeFailurePrimaryWins(t *testing.T) {
	primaryIn := make(chan struct{})
	hedgeDone := make(chan struct{})
	sd := &stubDoer{fn: func(n int, _ *http.Request) (*http.Response, error) {
		if n == 0 {
			close(primaryIn)
			<-hedgeDone
			return httpResp(200, okBody, nil), nil
		}
		defer close(hedgeDone)
		return errResp(503, nova.ErrKindInternal), nil
	}}
	c, fc := newTestClient(t, Config{HedgeDelay: time.Millisecond, MaxRetries: -1, BreakerThreshold: -1}, sd)
	gateHedgeTimer(fc, primaryIn)
	rp, err := c.Encode(context.Background(), nova.Request{KISS2: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Area != 30 {
		t.Fatalf("area = %d, want the primary's answer", rp.Area)
	}
	if v := c.Vars(); v["client.hedges.won"] != 0 {
		t.Fatal("a failed hedge was counted as won")
	}
}
