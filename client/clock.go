package client

import "time"

// clock abstracts the two time operations the retry and hedge
// machinery performs, so the unit tests can substitute a fake that
// records sleeps and fires timers instantly — no test ever sleeps
// through a real backoff.
type clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// sysClock is the production clock.
type sysClock struct{}

func (sysClock) Now() time.Time                         { return time.Now() }
func (sysClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
