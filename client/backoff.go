package client

import (
	"sync"
	"time"
)

// backoff computes capped exponential retry delays with deterministic
// jitter: attempt n gets a delay drawn uniformly from [d/2, d) where
// d = min(cap, base<<n). The jitter values come from a seeded
// splitmix64 stream advanced per draw, so one seed yields one exact
// delay sequence (reproducible tests, replayable incidents) while
// distinct seeds de-synchronize a fleet of clients retrying against
// the same struggling server.
type backoff struct {
	base, cap time.Duration

	mu    sync.Mutex
	state uint64
}

func newBackoff(base, cap time.Duration, seed uint64) *backoff {
	return &backoff{base: base, cap: cap, state: splitmix64(seed)}
}

// delay returns the jittered sleep before retry number attempt
// (0-based: the sleep between the first failure and the second try).
func (b *backoff) delay(attempt int) time.Duration {
	d := b.cap
	// base<<attempt, without shifting into overflow.
	if attempt < 62 {
		if shifted := b.base << attempt; shifted > 0 && shifted < b.cap {
			d = shifted
		}
	}
	b.mu.Lock()
	var v uint64
	v, b.state = nextRand(b.state)
	b.mu.Unlock()
	u := float64(v>>11) / (1 << 53) // uniform in [0, 1)
	half := d / 2
	return half + time.Duration(u*float64(half))
}

// splitmix64 is Vigna's splitmix64 finalizer — the same tiny seedable
// generator the server's fault injector uses (deliberately duplicated:
// the client must not link the serving layer).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// nextRand draws the next value from a splitmix64 stream.
func nextRand(state uint64) (value, next uint64) {
	next = state + 0x9e3779b97f4a7c15
	z := next
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31), next
}
