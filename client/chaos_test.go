package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"nova"
	"nova/internal/serve"
)

// The chaos suite drives the real client against a real novad server
// with the deterministic fault-injection middleware armed: a fixed
// (seed, rates) pair replays the same fault schedule every run, so
// these are reproducible integration tests, not flaky soak tests.

const chaosFSM = `
.i 1
.o 1
.s 4
.r c0
0 c0 c1 0
1 c0 c3 1
0 c1 c2 1
1 c1 c0 0
0 c2 c3 1
1 c2 c1 0
0 c3 c0 0
1 c3 c2 1
`

// chaosWorkload is 50 distinct requests (the name participates in the
// cache key, so each is its own cache entry).
func chaosWorkload() []nova.Request {
	out := make([]nova.Request, 50)
	for i := range out {
		out[i] = nova.Request{
			KISS2:     chaosFSM,
			Name:      fmt.Sprintf("m%02d", i),
			Algorithm: nova.IGreedy,
		}
	}
	return out
}

// runWorkload executes the workload serially through the client's
// retry engine and returns the raw response bodies plus the slowest
// single call.
func runWorkload(t *testing.T, c *Client, rqs []nova.Request) (bodies [][]byte, worst time.Duration) {
	t.Helper()
	for i, rq := range rqs {
		payload, err := json.Marshal(rq)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		body, err := c.call(context.Background(), "/v1/encode", payload)
		if err != nil {
			t.Fatalf("request %d failed through the resilience layer: %v", i, err)
		}
		if d := time.Since(start); d > worst {
			worst = d
		}
		bodies = append(bodies, body)
	}
	return bodies, worst
}

// TestChaosConvergence is the acceptance scenario: against a server
// injecting ~20% faults (errors and dropped connections), the client
// completes 100% of a 50-request workload within its budget, with
// bounded per-call tail latency, and every response is byte-identical
// to the same workload against a fault-free server — retries and
// faults are invisible in the payload.
func TestChaosConvergence(t *testing.T) {
	rqs := chaosWorkload()

	clean := serve.New(serve.Config{})
	cleanSrv := httptest.NewServer(clean)
	defer cleanSrv.Close()
	cleanClient, err := New(Config{BaseURL: cleanSrv.URL, Budget: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := runWorkload(t, cleanClient, rqs)

	faulted := serve.New(serve.Config{FaultInjection: &serve.FaultConfig{
		Seed:      5,
		ErrorRate: 0.12,
		DropRate:  0.08, // ~20% total fault rate
	}})
	faultedSrv := httptest.NewServer(faulted)
	defer faultedSrv.Close()
	c, err := New(Config{
		BaseURL:          faultedSrv.URL,
		Budget:           30 * time.Second,
		MaxRetries:       8,
		BackoffBase:      time.Millisecond,
		BackoffCap:       20 * time.Millisecond,
		Seed:             1,
		BreakerThreshold: -1, // the breaker scenario is tested on its own
	})
	if err != nil {
		t.Fatal(err)
	}
	got, worst := runWorkload(t, c, rqs)

	// The schedule must actually have injected faults, and the client
	// must actually have retried through them — otherwise this test
	// proves nothing.
	sv := faulted.Vars()
	if injected := sv["fault.injected.error"] + sv["fault.injected.drop"]; injected == 0 {
		t.Fatal("fault schedule injected nothing; the chaos run was a clean run")
	}
	if c.Vars()["client.retries"] == 0 {
		t.Fatal("client never retried despite injected faults")
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("response %d differs between faulted and fault-free runs:\n%s\nvs\n%s", i, got[i], want[i])
		}
	}
	// Retries never re-ran the engine: every injected fault fired before
	// the handler, so each of the 50 unique requests encoded exactly once.
	if enc := sv["engine.encodes"]; enc != int64(len(rqs)) {
		t.Fatalf("engine.encodes = %d on the faulted server, want %d (retries must not recompute)", enc, len(rqs))
	}
	if worst > 10*time.Second {
		t.Fatalf("tail latency unbounded: slowest call took %v", worst)
	}
}

// TestChaosBreakerOpensAndRecovers: a fully broken upstream opens the
// breaker after the configured number of consecutive failures, open
// calls fail fast without touching the server, and once the upstream
// heals and the cooldown elapses a half-open probe closes it again.
func TestChaosBreakerOpensAndRecovers(t *testing.T) {
	healthy := serve.New(serve.Config{})
	faulty := serve.New(serve.Config{FaultInjection: &serve.FaultConfig{Seed: 1, ErrorRate: 1}})
	var broken atomic.Bool
	broken.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() {
			faulty.ServeHTTP(w, r)
		} else {
			healthy.ServeHTTP(w, r)
		}
	}))
	defer srv.Close()

	c, err := New(Config{
		BaseURL:          srv.URL,
		MaxRetries:       -1, // isolate the breaker from the retry loop
		BreakerThreshold: 3,
		BreakerCooldown:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rq := nova.Request{KISS2: chaosFSM, Algorithm: nova.IGreedy}

	for i := 0; i < 3; i++ {
		if _, err := c.Encode(ctx, rq); err == nil {
			t.Fatalf("call %d succeeded against a rate-1 fault server", i)
		}
	}
	if c.BreakerState() != "open" {
		t.Fatalf("breaker = %s after 3 consecutive failures, want open", c.BreakerState())
	}
	seen := faulty.Vars()["fault.injected.error"]
	if _, err := c.Encode(ctx, rq); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if faulty.Vars()["fault.injected.error"] != seen {
		t.Fatal("open breaker still sent a request upstream")
	}

	broken.Store(false)
	time.Sleep(150 * time.Millisecond) // outlive the cooldown
	rp, err := c.Encode(ctx, rq)
	if err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if rp.Error != "" || rp.Area <= 0 {
		t.Fatalf("probe answer is not a healthy encode: %+v", rp)
	}
	if c.BreakerState() != "closed" {
		t.Fatalf("breaker = %s after recovery, want closed", c.BreakerState())
	}
	if v := c.Vars(); v["client.breaker.opened"] != 1 || v["client.breaker.rejected"] != 1 {
		t.Fatalf("breaker counters wrong: opened=%d rejected=%d", v["client.breaker.opened"], v["client.breaker.rejected"])
	}
}

// TestChaosHedgingUnderLatency: against a server that randomly stalls
// half its requests, hedging keeps the workload moving and wins at
// least once — the tail-latency mechanism demonstrably engages.
func TestChaosHedgingUnderLatency(t *testing.T) {
	s := serve.New(serve.Config{FaultInjection: &serve.FaultConfig{
		Seed:        3,
		LatencyRate: 0.5,
		Latency:     300 * time.Millisecond,
	}})
	srv := httptest.NewServer(s)
	defer srv.Close()

	c, err := New(Config{
		BaseURL:    srv.URL,
		Budget:     10 * time.Second,
		HedgeDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		rq := nova.Request{KISS2: chaosFSM, Name: fmt.Sprintf("h%02d", i), Algorithm: nova.IGreedy}
		if _, err := c.Encode(context.Background(), rq); err != nil {
			t.Fatalf("hedged request %d failed: %v", i, err)
		}
	}
	v := c.Vars()
	if v["client.hedges"] == 0 {
		t.Fatal("latency injection never triggered a hedge")
	}
	if v["client.hedges.won"] == 0 {
		t.Fatal("no hedge ever won despite 300ms stalls on half the requests")
	}
	if s.Vars()["fault.injected.latency"] == 0 {
		t.Fatal("latency schedule injected nothing")
	}
}

// TestChaosVerifyRoundTrip: an encode's assignment round-trips through
// the verify endpoint via the client, through the same retry engine.
func TestChaosVerifyRoundTrip(t *testing.T) {
	s := serve.New(serve.Config{FaultInjection: &serve.FaultConfig{Seed: 9, ErrorRate: 0.3}})
	srv := httptest.NewServer(s)
	defer srv.Close()
	c, err := New(Config{BaseURL: srv.URL, MaxRetries: 6, BackoffBase: time.Millisecond, BackoffCap: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rp, err := c.Encode(ctx, nova.Request{KISS2: chaosFSM, Algorithm: nova.IGreedy})
	if err != nil {
		t.Fatal(err)
	}
	vp, err := c.Verify(ctx, nova.VerifyRequest{
		KISS2:   chaosFSM,
		States:  rp.States,
		SymIns:  rp.SymIns,
		SymOuts: rp.SymOuts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !vp.OK {
		t.Fatalf("server rejected its own assignment: %+v", vp)
	}
	if vp.APIVersion != nova.WireVersion {
		t.Fatalf("verify response api_version = %d, want %d", vp.APIVersion, nova.WireVersion)
	}
}

// TestChaosBatchThroughFaults: the batch endpoint behind the retry
// engine — whole-batch faults are retried, per-item results intact.
func TestChaosBatchThroughFaults(t *testing.T) {
	s := serve.New(serve.Config{FaultInjection: &serve.FaultConfig{Seed: 13, ErrorRate: 0.3}})
	srv := httptest.NewServer(s)
	defer srv.Close()
	c, err := New(Config{BaseURL: srv.URL, MaxRetries: 6, BackoffBase: time.Millisecond, BackoffCap: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rqs := []nova.Request{
		{KISS2: chaosFSM, Name: "b0", Algorithm: nova.IGreedy},
		{KISS2: chaosFSM, Name: "b1", Algorithm: nova.OneHot},
	}
	out, err := c.EncodeBatch(context.Background(), rqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("batch returned %d responses, want 2", len(out))
	}
	for i, rp := range out {
		if rp.Error != "" || rp.Area <= 0 {
			t.Fatalf("batch item %d unhealthy: %+v", i, rp)
		}
	}
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("healthz through the chaos server: %v", err)
	}
}
