package client

import (
	"sync"
	"time"

	"nova/internal/obs"
)

// breakerState is the circuit breaker's position. The numeric values
// are the wire of the client.breaker.state gauge and are stable.
type breakerState int

const (
	breakerClosed   breakerState = 0
	breakerOpen     breakerState = 1
	breakerHalfOpen breakerState = 2
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a consecutive-failure circuit breaker with half-open
// probes:
//
//	closed --threshold consecutive faults--> open
//	open --cooldown elapsed--> half-open (admits exactly one probe)
//	half-open --probe succeeds--> closed
//	half-open --probe fails--> open (fresh cooldown)
//
// Time is passed in rather than read, so the state machine is pure and
// testable without sleeps. threshold <= 0 disables the breaker: allow
// always answers true and the state stays closed.
type breaker struct {
	threshold int
	cooldown  time.Duration
	m         *obs.Metrics

	mu       sync.Mutex
	state    breakerState
	fails    int
	openedAt time.Time
	probing  bool
}

func newBreaker(threshold int, cooldown time.Duration, m *obs.Metrics) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, m: m}
}

// allow reports whether an attempt may proceed now. Crossing the
// cooldown boundary moves open → half-open and admits the caller as
// the probe; further callers are rejected until the probe reports.
func (b *breaker) allow(now time.Time) bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			b.m.Add("client.breaker.rejected", 1)
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			b.m.Add("client.breaker.rejected", 1)
			return false
		}
		b.probing = true
		return true
	}
}

// onSuccess records a healthy answer: the consecutive count resets and
// a half-open probe's success closes the breaker.
func (b *breaker) onSuccess() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.probing = false
	b.state = breakerClosed
}

// onFailure records a server fault at the given time: a failed
// half-open probe re-opens immediately; in closed state the
// consecutive count trips the breaker at the threshold.
func (b *breaker) onFailure(now time.Time) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.trip(now)
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.trip(now)
	}
}

// trip opens the breaker (mu held).
func (b *breaker) trip(now time.Time) {
	b.state = breakerOpen
	b.openedAt = now
	b.fails = 0
	b.probing = false
	b.m.Add("client.breaker.opened", 1)
}

func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
