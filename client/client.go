// Package client is the Go client for the novad wire API.
//
// On top of plain HTTP it layers the three resilience mechanisms a
// caller of a shedding, occasionally-faulty encode service needs, all
// off by default except retries:
//
//   - Per-request deadline budgets. Config.Budget bounds one logical
//     call end to end — every retry, every hedge, every backoff sleep
//     runs under the same deadline, so a call can never take longer
//     than its budget no matter how many attempts it spends.
//
//   - Capped exponential backoff with deterministic jitter. Attempts
//     that fail with a retryable error (HTTP 429, 503, or a transport/
//     connection error) are retried up to Config.MaxRetries times,
//     sleeping base<<attempt capped at Config.BackoffCap and jittered
//     into [d/2, d) from a seeded stream, so a fleet of clients with
//     distinct seeds does not thunder in lockstep and a test with a
//     fixed seed replays the exact delay sequence. A server-supplied
//     Retry-After overrides a shorter computed delay. Retrying is
//     always safe: every nova endpoint is pure (the server says so
//     per-response via X-Nova-Retry-Safe).
//
//   - Hedged requests. With Config.HedgeDelay > 0, an attempt that has
//     not answered within the delay is raced against a second identical
//     request; the first success wins and the loser's context is
//     canceled. Purely a tail-latency tool — the cost is at most one
//     duplicate request against a content-addressed cache.
//
//   - A consecutive-failure circuit breaker. Config.BreakerThreshold
//     consecutive server faults (429/5xx/transport errors) open the
//     breaker; while open, calls fail fast with ErrBreakerOpen instead
//     of piling onto a struggling server. After Config.BreakerCooldown
//     a single half-open probe is let through: success closes the
//     breaker, failure re-opens it for another cooldown.
//
// Observability mirrors the server's: Vars() exposes monotonic
// counters (client.requests, client.attempts, client.retries,
// client.hedges, client.hedges.won, client.breaker.opened,
// client.breaker.rejected) plus the client.breaker.state gauge
// (0 closed, 1 open, 2 half-open).
//
// Error taxonomy: transport failures come back wrapped but unchanged;
// HTTP-level failures come back as *APIError carrying the status, the
// wire error_kind (one of nova.ErrorKinds) and any Retry-After; a
// breaker rejection is ErrBreakerOpen. All of it matches errors.Is /
// errors.As.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"nova"
	"nova/internal/obs"
)

// Config configures a Client. The zero value of every field except
// BaseURL selects a sensible default; BaseURL is required.
type Config struct {
	// BaseURL roots the server's API, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient issues the requests (default: a plain &http.Client{};
	// per-call deadlines come from Budget and the caller's context, not
	// from http.Client.Timeout, which would cut hedges and retries off
	// mid-flight).
	HTTPClient *http.Client
	// Budget bounds one logical call — all retries, hedges and backoff
	// sleeps included — as a context deadline. 0 means no client-imposed
	// budget (the caller's context still governs).
	Budget time.Duration
	// MaxRetries is the number of re-attempts after the first try
	// (0 = default 3, negative = no retries).
	MaxRetries int
	// BackoffBase and BackoffCap shape the exponential backoff:
	// attempt n sleeps jitter(min(BackoffCap, BackoffBase<<n)).
	// Defaults 50ms and 2s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Seed selects the jitter stream. Clients with distinct seeds
	// de-synchronize; a fixed seed replays an exact delay sequence.
	Seed uint64
	// HedgeDelay launches a duplicate request if an attempt has not
	// answered within the delay (0 = hedging off).
	HedgeDelay time.Duration
	// BreakerThreshold is the consecutive-server-fault count that opens
	// the circuit breaker (0 = default 5, negative = breaker off).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before it
	// admits a half-open probe (default 2s).
	BreakerCooldown time.Duration
	// Priority is sent as X-Nova-Priority on every request ("low" and
	// "high" steer the server's load-shedding policy; anything else is
	// normal).
	Priority string
}

// Client is a resilient novad API client. It is safe for concurrent
// use; the breaker and the metrics are shared across goroutines by
// design (that is what makes the breaker useful).
type Client struct {
	cfg  Config
	base string
	do   func(*http.Request) (*http.Response, error)
	clk  clock
	m    *obs.Metrics
	bk   *breaker
	tr   *obs.Tracer
	bo   *backoff
}

// New validates cfg and returns a ready Client.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("nova client: Config.BaseURL is required")
	}
	u, err := url.Parse(cfg.BaseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("nova client: invalid BaseURL %q", cfg.BaseURL)
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{}
	}
	switch {
	case cfg.MaxRetries == 0:
		cfg.MaxRetries = 3
	case cfg.MaxRetries < 0:
		cfg.MaxRetries = 0
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 2 * time.Second
	}
	if cfg.BackoffCap < cfg.BackoffBase {
		cfg.BackoffCap = cfg.BackoffBase
	}
	switch {
	case cfg.BreakerThreshold == 0:
		cfg.BreakerThreshold = 5
	case cfg.BreakerThreshold < 0:
		cfg.BreakerThreshold = 0 // disabled
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	tr := obs.New()
	m := tr.Metrics()
	return &Client{
		cfg:  cfg,
		base: strings.TrimRight(u.String(), "/"),
		do:   cfg.HTTPClient.Do,
		clk:  sysClock{},
		m:    m,
		tr:   tr,
		bk:   newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, m),
		bo:   newBackoff(cfg.BackoffBase, cfg.BackoffCap, cfg.Seed),
	}, nil
}

// ErrBreakerOpen reports a call rejected locally because the circuit
// breaker is open: recent attempts failed consecutively and the
// cooldown has not elapsed, so the client fails fast instead of adding
// load to a struggling server.
var ErrBreakerOpen = errors.New("nova client: circuit breaker open")

// APIError is a non-2xx answer from the server, decoded from the wire
// error envelope.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Kind is the wire error_kind — one of nova.ErrorKinds, or
	// nova.ErrKindInternal when the body carried none.
	Kind string
	// Message is the server's error text.
	Message string
	// RetryAfter is the parsed Retry-After header (0 if absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("nova client: server answered %d (%s): %s", e.Status, e.Kind, e.Message)
}

// Retryable reports whether the client's retry loop considers this
// failure transient: HTTP 429 or 503 (admission refusals, load sheds,
// injected faults, drains — the statuses the server reserves for "try
// again"), or an overloaded error kind on any status. Deterministic
// failures (bad_request, gave_up, unencodable) are not retryable; the
// identical request would fail identically.
func (e *APIError) Retryable() bool {
	return e.Status == http.StatusTooManyRequests ||
		e.Status == http.StatusServiceUnavailable ||
		e.Kind == nova.ErrKindOverloaded
}

// Encode runs one encode request and returns the decoded response.
// The request's api_version is stamped with nova.WireVersion when
// absent. Failures are *APIError (server answered non-2xx),
// ErrBreakerOpen, or a wrapped transport error.
func (c *Client) Encode(ctx context.Context, rq nova.Request) (*nova.Response, error) {
	if rq.APIVersion == 0 {
		rq.APIVersion = nova.WireVersion
	}
	payload, err := json.Marshal(rq)
	if err != nil {
		return nil, fmt.Errorf("nova client: encoding request: %w", err)
	}
	body, err := c.call(ctx, "/v1/encode", payload)
	if err != nil {
		return nil, err
	}
	rp := new(nova.Response)
	if err := json.Unmarshal(body, rp); err != nil {
		return nil, fmt.Errorf("nova client: decoding response: %w", err)
	}
	return rp, nil
}

// batchRequest / batchResponse mirror the server's batch envelope
// (internal/serve.BatchRequest) — the JSON shapes are the wire
// contract; the Go types are deliberately not shared so the client
// does not link the serving layer.
type batchRequest struct {
	Requests []nova.Request `json:"requests"`
}

type batchResponse struct {
	Responses []json.RawMessage `json:"responses"`
}

// EncodeBatch runs a batch of encode requests in one round trip and
// returns one response per request, in order. Per-item failures travel
// inline (Response.Error / Response.ErrorKind), exactly as on the
// wire; only whole-batch failures (transport, non-2xx status, breaker)
// surface as an error. The retry loop applies to the batch as a whole.
func (c *Client) EncodeBatch(ctx context.Context, rqs []nova.Request) ([]nova.Response, error) {
	stamped := make([]nova.Request, len(rqs))
	copy(stamped, rqs)
	for i := range stamped {
		if stamped[i].APIVersion == 0 {
			stamped[i].APIVersion = nova.WireVersion
		}
	}
	payload, err := json.Marshal(batchRequest{Requests: stamped})
	if err != nil {
		return nil, fmt.Errorf("nova client: encoding batch request: %w", err)
	}
	body, err := c.call(ctx, "/v1/encode/batch", payload)
	if err != nil {
		return nil, err
	}
	var brp batchResponse
	if err := json.Unmarshal(body, &brp); err != nil {
		return nil, fmt.Errorf("nova client: decoding batch response: %w", err)
	}
	out := make([]nova.Response, len(brp.Responses))
	for i, raw := range brp.Responses {
		if err := json.Unmarshal(raw, &out[i]); err != nil {
			return nil, fmt.Errorf("nova client: decoding batch response %d: %w", i, err)
		}
	}
	return out, nil
}

// Verify checks a code assignment against its machine on the server.
// A nil error with OK=false means the assignment failed verification
// (the response carries the mismatch); an error means the check could
// not run.
func (c *Client) Verify(ctx context.Context, vq nova.VerifyRequest) (*nova.VerifyResponse, error) {
	if vq.APIVersion == 0 {
		vq.APIVersion = nova.WireVersion
	}
	payload, err := json.Marshal(vq)
	if err != nil {
		return nil, fmt.Errorf("nova client: encoding verify request: %w", err)
	}
	body, err := c.call(ctx, "/v1/verify", payload)
	if err != nil {
		return nil, err
	}
	vp := new(nova.VerifyResponse)
	if err := json.Unmarshal(body, vp); err != nil {
		return nil, fmt.Errorf("nova client: decoding verify response: %w", err)
	}
	return vp, nil
}

// Healthz probes GET /v1/healthz once — no retries, no hedging, no
// breaker: a health check must report the server as it is right now.
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return fmt.Errorf("nova client: healthz: %w", err)
	}
	resp, err := c.do(req)
	if err != nil {
		return fmt.Errorf("nova client: healthz: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		return &APIError{Status: resp.StatusCode, Kind: nova.ErrKindInternal,
			Message: "healthz answered " + resp.Status}
	}
	return nil
}

// Vars snapshots the client's counters plus the breaker state gauge
// (client.breaker.state: 0 closed, 1 open, 2 half-open).
func (c *Client) Vars() map[string]int64 {
	out := c.m.Vars()
	out["client.breaker.state"] = int64(c.bk.current())
	return out
}

// BreakerState names the breaker's current state: "closed", "open" or
// "half-open".
func (c *Client) BreakerState() string { return c.bk.current().String() }

// call is the retry engine: breaker gate, one (possibly hedged)
// attempt, failure classification, jittered backoff, under the
// call-wide budget.
func (c *Client) call(ctx context.Context, path string, payload []byte) ([]byte, error) {
	if c.cfg.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.Budget)
		defer cancel()
	}
	c.m.Add("client.requests", 1)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if !c.bk.allow(c.clk.Now()) {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last attempt: %v)", ErrBreakerOpen, lastErr)
			}
			return nil, ErrBreakerOpen
		}
		c.m.Add("client.attempts", 1)
		body, err := c.attempt(ctx, path, payload)
		if err == nil {
			c.bk.onSuccess()
			return body, nil
		}
		lastErr = err
		switch {
		case isCtxErr(err):
			// The caller's budget fired, not the server — the breaker
			// learns nothing from it.
		case serverFault(err):
			c.bk.onFailure(c.clk.Now())
		default:
			// A well-formed client-error answer (400, 422...): the server
			// is up and responding, which resets the consecutive count.
			c.bk.onSuccess()
		}
		if !retryable(err) || attempt >= c.cfg.MaxRetries {
			return nil, err
		}
		delay := c.bo.delay(attempt)
		var ae *APIError
		if errors.As(err, &ae) && ae.RetryAfter > delay {
			delay = ae.RetryAfter
		}
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= delay {
			return nil, fmt.Errorf("nova client: budget exhausted after %d attempts: %w", attempt+1, err)
		}
		c.m.Add("client.retries", 1)
		select {
		case <-c.clk.After(delay):
		case <-ctx.Done():
			return nil, fmt.Errorf("nova client: canceled while backing off: %w", context.Cause(ctx))
		}
	}
}

// attempt runs one logical attempt: a single request, or — with
// hedging on — a primary raced against a duplicate launched after
// HedgeDelay. First success wins and cancels the loser; the counters
// record launches (client.hedges) and hedge wins (client.hedges.won).
func (c *Client) attempt(ctx context.Context, path string, payload []byte) ([]byte, error) {
	if c.cfg.HedgeDelay <= 0 {
		return c.send(ctx, path, payload)
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		body   []byte
		err    error
		hedged bool
	}
	ch := make(chan result, 2)
	launch := func(hedged bool) {
		go func() {
			b, err := c.send(actx, path, payload)
			ch <- result{b, err, hedged}
		}()
	}
	launch(false)
	inflight := 1
	hedgeTimer := c.clk.After(c.cfg.HedgeDelay)
	var firstErr error
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				if r.hedged {
					c.m.Add("client.hedges.won", 1)
				}
				return r.body, nil
			}
			inflight--
			if inflight > 0 {
				// The other copy may still win; remember this failure.
				firstErr = r.err
				continue
			}
			if firstErr != nil {
				return nil, preferErr(firstErr, r.err)
			}
			// Primary failed before the hedge launched: hedging buys
			// nothing against an immediate failure — fall back to the
			// retry loop.
			return nil, r.err
		case <-hedgeTimer:
			hedgeTimer = nil // a nil channel never fires again
			c.m.Add("client.hedges", 1)
			launch(true)
			inflight++
		}
	}
}

// send issues one HTTP request and maps the answer: 2xx → body bytes,
// non-2xx → *APIError (kind decoded from the wire envelope, Retry-After
// parsed), transport failure → wrapped error.
func (c *Client) send(ctx context.Context, path string, payload []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("nova client: %s: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	if c.cfg.Priority != "" {
		req.Header.Set("X-Nova-Priority", c.cfg.Priority)
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, fmt.Errorf("nova client: %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("nova client: %s: reading response: %w", path, err)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return body, nil
	}
	ae := &APIError{Status: resp.StatusCode, Kind: nova.ErrKindInternal}
	var rp nova.Response
	if json.Unmarshal(body, &rp) == nil && rp.Error != "" {
		ae.Message = rp.Error
		if rp.ErrorKind != "" {
			ae.Kind = rp.ErrorKind
		}
	} else {
		ae.Message = strings.TrimSpace(string(body))
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 0 {
			ae.RetryAfter = time.Duration(n) * time.Second
		}
	}
	return nil, ae
}

// retryable classifies an attempt failure for the retry loop: server
// answers defer to APIError.Retryable; context cancellations are final
// (the budget is gone); everything else is a transport-level failure
// (connection refused/reset, dropped mid-response) and worth retrying.
func retryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Retryable()
	}
	return !isCtxErr(err)
}

// serverFault reports whether the failure should count against the
// circuit breaker: the server (or the path to it) misbehaved, as
// opposed to the request being bad or the caller's budget firing.
func serverFault(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status == http.StatusTooManyRequests || ae.Status >= 500
	}
	return !isCtxErr(err)
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// preferErr picks the more informative of two hedge failures: a real
// answer beats a cancellation echo.
func preferErr(a, b error) error {
	if isCtxErr(a) && !isCtxErr(b) {
		return b
	}
	return a
}
