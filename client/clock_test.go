package client

import (
	"net/http"
	"sync"
	"time"
)

// fakeClock is the test clock: Now is driven manually (Advance), and
// After records the requested duration, advances Now by it and fires
// instantly — so the retry loop's exact sleep schedule is observable
// while no test ever sleeps. Setting after overrides timer creation
// (e.g. a never-firing hedge timer).
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
	after  func(d time.Duration) <-chan time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func (f *fakeClock) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	f.sleeps = append(f.sleeps, d)
	f.now = f.now.Add(d)
	ov := f.after
	now := f.now
	f.mu.Unlock()
	if ov != nil {
		return ov(d)
	}
	ch := make(chan time.Time, 1)
	ch <- now
	return ch
}

func (f *fakeClock) recorded() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.sleeps...)
}

// stubDoer scripts the transport: fn is called with the 0-based call
// number and the outgoing request.
type stubDoer struct {
	mu sync.Mutex
	n  int
	fn func(n int, req *http.Request) (*http.Response, error)
}

func (s *stubDoer) do(req *http.Request) (*http.Response, error) {
	s.mu.Lock()
	n := s.n
	s.n++
	s.mu.Unlock()
	return s.fn(n, req)
}

func (s *stubDoer) calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
