package client

import (
	"testing"
	"time"

	"nova/internal/obs"
)

// The breaker state machine is pure — time is an argument — so these
// tests walk the full transition graph with literal timestamps and
// never sleep.

func testBreaker(threshold int) (*breaker, *obs.Metrics) {
	m := obs.New().Metrics()
	return newBreaker(threshold, time.Minute, m), m
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, m := testBreaker(3)
	t0 := time.Unix(0, 0)
	for i := 0; i < 2; i++ {
		b.onFailure(t0)
		if b.current() != breakerClosed {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	b.onFailure(t0)
	if b.current() != breakerOpen {
		t.Fatal("breaker closed after reaching the threshold")
	}
	if m.Vars()["client.breaker.opened"] != 1 {
		t.Fatal("opening did not tick client.breaker.opened")
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b, _ := testBreaker(3)
	t0 := time.Unix(0, 0)
	b.onFailure(t0)
	b.onFailure(t0)
	b.onSuccess() // streak broken
	b.onFailure(t0)
	b.onFailure(t0)
	if b.current() != breakerClosed {
		t.Fatal("non-consecutive failures opened the breaker")
	}
}

func TestBreakerCooldownAndProbe(t *testing.T) {
	b, m := testBreaker(1)
	t0 := time.Unix(0, 0)
	b.onFailure(t0)
	if b.current() != breakerOpen {
		t.Fatal("threshold-1 breaker did not open on first failure")
	}
	if b.allow(t0.Add(59 * time.Second)) {
		t.Fatal("open breaker admitted a call inside the cooldown")
	}
	if m.Vars()["client.breaker.rejected"] != 1 {
		t.Fatal("rejection did not tick client.breaker.rejected")
	}
	// Cooldown elapsed: exactly one probe goes through.
	probeAt := t0.Add(61 * time.Second)
	if !b.allow(probeAt) {
		t.Fatal("cooldown elapsed but the probe was rejected")
	}
	if b.current() != breakerHalfOpen {
		t.Fatalf("state = %v during probe, want half-open", b.current())
	}
	if b.allow(probeAt) {
		t.Fatal("half-open breaker admitted a second concurrent call")
	}

	// Probe failure re-opens with a fresh cooldown.
	b.onFailure(probeAt)
	if b.current() != breakerOpen {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if b.allow(probeAt.Add(59 * time.Second)) {
		t.Fatal("re-opened breaker forgot its fresh cooldown")
	}

	// Second probe succeeds and closes.
	again := probeAt.Add(61 * time.Second)
	if !b.allow(again) {
		t.Fatal("second probe rejected")
	}
	b.onSuccess()
	if b.current() != breakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if !b.allow(again) {
		t.Fatal("closed breaker rejected a call")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b, m := testBreaker(0)
	t0 := time.Unix(0, 0)
	for i := 0; i < 100; i++ {
		b.onFailure(t0)
	}
	if !b.allow(t0) || b.current() != breakerClosed {
		t.Fatal("disabled breaker tripped")
	}
	if len(m.Vars()) != 0 {
		t.Fatalf("disabled breaker produced counters: %v", m.Vars())
	}
}

func TestBreakerStateStrings(t *testing.T) {
	cases := map[breakerState]string{
		breakerClosed: "closed", breakerOpen: "open", breakerHalfOpen: "half-open",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
