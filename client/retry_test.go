package client

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"nova"
)

const okBody = `{"api_version":2,"machine":"m","algorithm":"igreedy","bits":2,"cubes":3,"area":30}`

func httpResp(status int, body string, hdr map[string]string) *http.Response {
	h := http.Header{}
	for k, v := range hdr {
		h.Set(k, v)
	}
	return &http.Response{StatusCode: status, Header: h, Body: io.NopCloser(strings.NewReader(body))}
}

func errResp(status int, kind string) *http.Response {
	b, _ := json.Marshal(nova.Response{Error: "scripted failure", ErrorKind: kind})
	return httpResp(status, string(b), nil)
}

// newTestClient builds a Client on a fake clock and a scripted
// transport; no request leaves the process and no sleep is real.
func newTestClient(t *testing.T, cfg Config, sd *stubDoer) (*Client, *fakeClock) {
	t.Helper()
	if cfg.BaseURL == "" {
		cfg.BaseURL = "http://stub.invalid"
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fc := newFakeClock()
	c.clk = fc
	if sd != nil {
		c.do = sd.do
	}
	return c, fc
}

// TestRetrySucceedsAfterRetryableFailures: two 503s then a success;
// the sleeps are exactly the seeded backoff sequence (replayed here
// from an identical backoff stream) and the counters record the story.
func TestRetrySucceedsAfterRetryableFailures(t *testing.T) {
	const seed = 42
	sd := &stubDoer{fn: func(n int, _ *http.Request) (*http.Response, error) {
		if n < 2 {
			return errResp(503, nova.ErrKindOverloaded), nil
		}
		return httpResp(200, okBody, nil), nil
	}}
	c, fc := newTestClient(t, Config{Seed: seed, BackoffBase: 100 * time.Millisecond, BackoffCap: time.Second}, sd)

	rp, err := c.Encode(context.Background(), nova.Request{KISS2: "ignored"})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Area != 30 {
		t.Fatalf("decoded area = %d, want 30", rp.Area)
	}
	want := newBackoff(100*time.Millisecond, time.Second, seed)
	sleeps := fc.recorded()
	if len(sleeps) != 2 {
		t.Fatalf("recorded %d sleeps, want 2: %v", len(sleeps), sleeps)
	}
	for i, got := range sleeps {
		if exp := want.delay(i); got != exp {
			t.Fatalf("sleep %d = %v, want the seeded backoff value %v", i, got, exp)
		}
	}
	v := c.Vars()
	if v["client.attempts"] != 3 || v["client.retries"] != 2 {
		t.Fatalf("attempts/retries = %d/%d, want 3/2", v["client.attempts"], v["client.retries"])
	}
	if c.BreakerState() != "closed" {
		t.Fatalf("breaker = %s after recovery, want closed", c.BreakerState())
	}
}

// TestRetryHonorsRetryAfter: a Retry-After longer than the computed
// backoff wins the sleep.
func TestRetryHonorsRetryAfter(t *testing.T) {
	sd := &stubDoer{fn: func(n int, _ *http.Request) (*http.Response, error) {
		if n == 0 {
			b, _ := json.Marshal(nova.Response{Error: "shed", ErrorKind: nova.ErrKindOverloaded})
			return httpResp(429, string(b), map[string]string{"Retry-After": "7"}), nil
		}
		return httpResp(200, okBody, nil), nil
	}}
	c, fc := newTestClient(t, Config{BackoffBase: time.Millisecond, BackoffCap: 4 * time.Millisecond}, sd)
	if _, err := c.Encode(context.Background(), nova.Request{KISS2: "x"}); err != nil {
		t.Fatal(err)
	}
	sleeps := fc.recorded()
	if len(sleeps) != 1 || sleeps[0] != 7*time.Second {
		t.Fatalf("sleeps = %v, want exactly the server's 7s Retry-After", sleeps)
	}
}

// TestNoRetryOnBadRequest: deterministic failures are final — one
// attempt, a typed *APIError, breaker untouched.
func TestNoRetryOnBadRequest(t *testing.T) {
	sd := &stubDoer{fn: func(int, *http.Request) (*http.Response, error) {
		return errResp(400, nova.ErrKindBadRequest), nil
	}}
	c, fc := newTestClient(t, Config{}, sd)
	_, err := c.Encode(context.Background(), nova.Request{})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error %v is not an *APIError", err)
	}
	if ae.Status != 400 || ae.Kind != nova.ErrKindBadRequest || ae.Retryable() {
		t.Fatalf("unexpected APIError: %+v (retryable=%t)", ae, ae.Retryable())
	}
	if sd.calls() != 1 || len(fc.recorded()) != 0 {
		t.Fatalf("client retried a bad request: %d calls, %v sleeps", sd.calls(), fc.recorded())
	}
	if c.BreakerState() != "closed" {
		t.Fatal("a 400 answer counted against the breaker")
	}
}

// TestRetryExhaustion: MaxRetries bounds the attempts and the last
// error surfaces.
func TestRetryExhaustion(t *testing.T) {
	sd := &stubDoer{fn: func(int, *http.Request) (*http.Response, error) {
		return errResp(503, nova.ErrKindInternal), nil
	}}
	c, _ := newTestClient(t, Config{MaxRetries: 2, BreakerThreshold: -1}, sd)
	_, err := c.Encode(context.Background(), nova.Request{})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 503 {
		t.Fatalf("want the final 503 as *APIError, got %v", err)
	}
	if sd.calls() != 3 {
		t.Fatalf("%d attempts, want 3 (1 try + 2 retries)", sd.calls())
	}
	if got := c.Vars()["client.retries"]; got != 2 {
		t.Fatalf("client.retries = %d, want 2", got)
	}
}

// TestTransportErrorRetries: connection-level failures (no HTTP
// response at all) are retryable.
func TestTransportErrorRetries(t *testing.T) {
	boom := errors.New("connection refused")
	sd := &stubDoer{fn: func(n int, _ *http.Request) (*http.Response, error) {
		if n < 2 {
			return nil, boom
		}
		return httpResp(200, okBody, nil), nil
	}}
	c, _ := newTestClient(t, Config{}, sd)
	if _, err := c.Encode(context.Background(), nova.Request{}); err != nil {
		t.Fatal(err)
	}
	if sd.calls() != 3 {
		t.Fatalf("%d attempts, want 3", sd.calls())
	}
}

// TestBudgetStopsRetrying: when the remaining budget cannot cover the
// next backoff, the call fails immediately instead of sleeping into
// its own deadline.
func TestBudgetStopsRetrying(t *testing.T) {
	sd := &stubDoer{fn: func(int, *http.Request) (*http.Response, error) {
		return errResp(503, nova.ErrKindOverloaded), nil
	}}
	c, fc := newTestClient(t, Config{
		Budget:      50 * time.Millisecond,
		BackoffBase: 10 * time.Second, // any retry would overshoot the budget
		BackoffCap:  10 * time.Second,
	}, sd)
	start := time.Now()
	_, err := c.Encode(context.Background(), nova.Request{})
	if err == nil || !strings.Contains(err.Error(), "budget exhausted") {
		t.Fatalf("err = %v, want a budget-exhausted failure", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatal("budget failure does not wrap the last attempt's *APIError")
	}
	if sd.calls() != 1 || len(fc.recorded()) != 0 {
		t.Fatalf("client slept against a dead budget: %d calls, %v", sd.calls(), fc.recorded())
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("test slept for real")
	}
}

// TestRequestStamping: the outgoing request carries the configured
// priority header and an explicit api_version.
func TestRequestStamping(t *testing.T) {
	var gotPri string
	var gotVersion int
	sd := &stubDoer{fn: func(_ int, req *http.Request) (*http.Response, error) {
		gotPri = req.Header.Get("X-Nova-Priority")
		var rq nova.Request
		if err := json.NewDecoder(req.Body).Decode(&rq); err != nil {
			t.Error(err)
		}
		gotVersion = rq.APIVersion
		return httpResp(200, okBody, nil), nil
	}}
	c, _ := newTestClient(t, Config{Priority: "low"}, sd)
	if _, err := c.Encode(context.Background(), nova.Request{KISS2: "x"}); err != nil {
		t.Fatal(err)
	}
	if gotPri != "low" {
		t.Fatalf("X-Nova-Priority = %q, want low", gotPri)
	}
	if gotVersion != nova.WireVersion {
		t.Fatalf("api_version = %d, want %d", gotVersion, nova.WireVersion)
	}
}

// TestEncodeBatchInlineErrors: per-item failures come back inline, not
// as a call error.
func TestEncodeBatchInlineErrors(t *testing.T) {
	body := `{"responses":[` + okBody + `,{"error":"budget","error_kind":"gave_up"}]}`
	sd := &stubDoer{fn: func(int, *http.Request) (*http.Response, error) {
		return httpResp(200, body, nil), nil
	}}
	c, _ := newTestClient(t, Config{}, sd)
	out, err := c.EncodeBatch(context.Background(), []nova.Request{{KISS2: "a"}, {KISS2: "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Area != 30 || out[1].ErrorKind != nova.ErrKindGaveUp {
		t.Fatalf("batch decode wrong: %+v", out)
	}
}

// TestBreakerInCallLoop: consecutive failed calls open the breaker,
// open calls fail fast without touching the wire, and after the
// cooldown a successful probe closes it again.
func TestBreakerInCallLoop(t *testing.T) {
	healthy := false
	sd := &stubDoer{fn: func(int, *http.Request) (*http.Response, error) {
		if healthy {
			return httpResp(200, okBody, nil), nil
		}
		return errResp(503, nova.ErrKindInternal), nil
	}}
	c, fc := newTestClient(t, Config{
		MaxRetries:       -1, // isolate the breaker from the retry loop
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
	}, sd)
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := c.Encode(ctx, nova.Request{}); err == nil {
			t.Fatal("scripted 503 succeeded")
		}
	}
	if c.BreakerState() != "open" {
		t.Fatalf("breaker = %s after %d consecutive faults, want open", c.BreakerState(), 2)
	}
	wire := sd.calls()
	_, err := c.Encode(ctx, nova.Request{})
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if sd.calls() != wire {
		t.Fatal("open breaker still sent a request")
	}
	v := c.Vars()
	if v["client.breaker.opened"] != 1 || v["client.breaker.rejected"] != 1 || v["client.breaker.state"] != 1 {
		t.Fatalf("breaker counters wrong: %v", v)
	}

	healthy = true
	fc.Advance(61 * time.Second)
	if _, err := c.Encode(ctx, nova.Request{}); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if c.BreakerState() != "closed" {
		t.Fatalf("breaker = %s after successful probe, want closed", c.BreakerState())
	}
}

// TestNewValidation pins Config validation and defaulting.
func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty BaseURL")
	}
	if _, err := New(Config{BaseURL: "::not a url"}); err == nil {
		t.Fatal("New accepted a malformed BaseURL")
	}
	c, err := New(Config{BaseURL: "http://h/"})
	if err != nil {
		t.Fatal(err)
	}
	if c.base != "http://h" {
		t.Fatalf("base = %q, want trailing slash trimmed", c.base)
	}
	if c.cfg.MaxRetries != 3 || c.cfg.BreakerThreshold != 5 {
		t.Fatalf("defaults not applied: %+v", c.cfg)
	}
}
