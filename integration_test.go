package nova_test

// Randomized end-to-end integration tests: random deterministic FSMs are
// pushed through every encoding algorithm and the encoded, minimized
// machine is simulated against the symbolic table. This exercises the
// whole stack (MV minimization, constraint extraction, symbolic
// minimization, the encoders, PLA translation, espresso, simulation).

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"nova"
	"nova/internal/bench"
	"nova/internal/espresso"
	"nova/internal/mvmin"
	"nova/internal/verify"
)

// randomFSM builds a random deterministic, fully specified machine.
func randomFSM(rng *rand.Rand, ni, no, ns int) *nova.FSM {
	f := nova.NewFSM("rand", ni, no)
	names := make([]string, ns)
	for i := range names {
		names[i] = fmt.Sprintf("q%d", i)
	}
	for s := 0; s < ns; s++ {
		// Partition the input space by the first bit patterns.
		for v := 0; v < 1<<uint(ni); v++ {
			in := make([]byte, ni)
			for b := 0; b < ni; b++ {
				if v&(1<<uint(b)) != 0 {
					in[b] = '1'
				} else {
					in[b] = '0'
				}
			}
			out := make([]byte, no)
			for b := range out {
				out[b] = byte('0' + rng.Intn(2))
			}
			f.MustAddRow(string(in), names[s], names[rng.Intn(ns)], string(out))
		}
	}
	return f
}

func TestRandomFSMsAllAlgorithms(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep skipped in -short")
	}
	rng := rand.New(rand.NewSource(2026))
	algs := []nova.Algorithm{
		nova.IHybrid, nova.IGreedy, nova.IOHybrid, nova.IOVariant,
		nova.KISS, nova.OneHot, nova.MustangP, nova.MustangNT, nova.Random,
	}
	for trial := 0; trial < 8; trial++ {
		ni := 1 + rng.Intn(2)
		no := 1 + rng.Intn(3)
		ns := 3 + rng.Intn(6)
		f := randomFSM(rng, ni, no, ns)
		if ok, why := f.Deterministic(); !ok {
			t.Fatalf("trial %d: generator produced nondeterministic FSM: %s", trial, why)
		}
		for _, alg := range algs {
			res, err := nova.Encode(f, nova.Options{Algorithm: alg, Seed: int64(trial)})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}
			if err := nova.Verify(f, res.Assignment); err != nil {
				t.Fatalf("trial %d %s: equivalence failed: %v\n%s", trial, alg, err, f)
			}
		}
	}
}

func TestRandomFSMsIExact(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep skipped in -short")
	}
	rng := rand.New(rand.NewSource(4052))
	for trial := 0; trial < 5; trial++ {
		f := randomFSM(rng, 1, 1, 3+rng.Intn(4))
		res, err := nova.Encode(f, nova.Options{Algorithm: nova.IExact, MaxWork: 500_000})
		if errors.Is(err, nova.ErrGaveUp) {
			continue // budget exhausted is a legal outcome
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.WUnsat != 0 {
			t.Fatalf("trial %d: iexact left weight %d unsatisfied", trial, res.WUnsat)
		}
		if err := nova.Verify(f, res.Assignment); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestBenchmarkMachinesEndToEnd verifies the actual suite machines (the
// small and mid ones) under the three main NOVA algorithms.
func TestBenchmarkMachinesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep skipped in -short")
	}
	names := []string{"bbtas", "dk27", "lion", "shiftreg", "modulo12", "train11", "beecount", "dk15"}
	for _, name := range names {
		f := bench.Get(name)
		for _, alg := range []nova.Algorithm{nova.IHybrid, nova.IGreedy, nova.IOHybrid} {
			res, err := nova.Encode(f, nova.Options{Algorithm: alg})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, alg, err)
			}
			if err := nova.Verify(f, res.Assignment); err != nil {
				t.Fatalf("%s/%s: %v", name, alg, err)
			}
		}
	}
}

// TestSuiteConstraintQuality checks that the synthetic generator actually
// produces machines with nontrivial input constraints (otherwise the
// encoding comparison would be vacuous).
func TestSuiteConstraintQuality(t *testing.T) {
	withConstraints := 0
	checked := 0
	for _, e := range bench.Suite() {
		if e.Huge {
			continue
		}
		checked++
		ics, _, err := nova.Constraints(e.F)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if len(ics) > 0 {
			withConstraints++
		}
	}
	if withConstraints*10 < checked*8 {
		t.Fatalf("only %d of %d machines produced input constraints", withConstraints, checked)
	}
}

// TestRandomWalkOnBenchmarks drives the encoded machines along random
// input trajectories from reset, comparing output traces step by step.
func TestRandomWalkOnBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("walks skipped in -short")
	}
	for _, name := range []string{"shiftreg", "modulo12", "bbtas", "dk27"} {
		f := bench.Get(name)
		res, err := nova.Encode(f, nova.Options{Algorithm: nova.IHybrid})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		e, err := mvmin.EncodePLA(f, res.Assignment)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cov := e.Minimize(espresso.Options{})
		trace, err := verify.RandomWalk(f, res.Assignment, cov, 300, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(trace) == 0 {
			t.Fatalf("%s: empty trace", name)
		}
	}
}
