package nova

import (
	"strings"
	"testing"
)

const quickFSM = `
.i 1
.o 1
.s 4
.r c0
0 c0 c1 0
1 c0 c3 1
0 c1 c2 1
1 c1 c0 0
0 c2 c3 1
1 c2 c1 0
0 c3 c0 0
1 c3 c2 1
.e
`

func parseQuick(t *testing.T) *FSM {
	t.Helper()
	f, err := ParseKISSString(quickFSM)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestEncodeAllAlgorithms(t *testing.T) {
	f := parseQuick(t)
	algs := []Algorithm{IExact, IHybrid, IGreedy, IOHybrid, IOVariant, Best, KISS, OneHot, Random,
		MustangP, MustangN, MustangPT, MustangNT}
	for _, alg := range algs {
		res, err := Encode(f, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Cubes <= 0 || res.Area <= 0 {
			t.Fatalf("%s: degenerate result %+v", alg, res)
		}
		if !res.Assignment.States.Distinct() {
			t.Fatalf("%s: duplicate codes", alg)
		}
		if err := Verify(f, res.Assignment); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
}

func TestEncodeDefaultsToBest(t *testing.T) {
	f := parseQuick(t)
	res, err := Encode(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != Best {
		t.Fatalf("algorithm = %s", res.Algorithm)
	}
}

func TestBestIsNoWorseThanComponents(t *testing.T) {
	f := parseQuick(t)
	best, err := Encode(f, Options{Algorithm: Best})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{IHybrid, IGreedy, IOHybrid} {
		r, err := Encode(f, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if best.Area > r.Area {
			t.Fatalf("best area %d worse than %s's %d", best.Area, alg, r.Area)
		}
	}
}

func TestOneHotShape(t *testing.T) {
	f := parseQuick(t)
	res, err := Encode(f, Options{Algorithm: OneHot})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bits != 4 {
		t.Fatalf("one-hot bits = %d", res.Bits)
	}
	for i, c := range res.Assignment.States.Codes {
		if c != 1<<uint(i) {
			t.Fatalf("code %d = %b", i, c)
		}
	}
}

func TestRandomReportsAverage(t *testing.T) {
	f := parseQuick(t)
	res, err := Encode(f, Options{Algorithm: Random, RandomTrials: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.RandomAvgArea < res.Area {
		t.Fatalf("avg %d below best %d", res.RandomAvgArea, res.Area)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	f := parseQuick(t)
	a, err := Encode(f, Options{Algorithm: Random, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(f, Options{Algorithm: Random, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Area != b.Area || a.RandomAvgArea != b.RandomAvgArea {
		t.Fatal("random baseline is not reproducible for a fixed seed")
	}
}

func TestKeepPLA(t *testing.T) {
	f := parseQuick(t)
	res, err := Encode(f, Options{Algorithm: IHybrid, KeepPLA: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.PLA == nil {
		t.Fatal("no PLA attached")
	}
	if len(res.PLA.Rows) != res.Cubes {
		t.Fatalf("PLA rows %d != cubes %d", len(res.PLA.Rows), res.Cubes)
	}
	if !strings.Contains(res.PLA.String(), ".i 3") {
		t.Fatalf("PLA header wrong:\n%s", res.PLA)
	}
}

func TestConstraintsAPI(t *testing.T) {
	f := parseQuick(t)
	states, symIns, err := Constraints(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(symIns) != 0 {
		t.Fatal("no symbolic inputs expected")
	}
	for _, ic := range states {
		if ic.Set.N() != 4 || ic.Weight < 1 {
			t.Fatalf("bad constraint %+v", ic)
		}
	}
}

func TestEncodeUnknownAlgorithm(t *testing.T) {
	f := parseQuick(t)
	if _, err := Encode(f, Options{Algorithm: "bogus"}); err == nil {
		t.Fatal("want error")
	}
}

func TestBitsAboveMinimumHelpsSatisfaction(t *testing.T) {
	// With more bits, ihybrid's projection phase can only improve (or
	// keep) the satisfied constraint weight.
	f := parseQuick(t)
	minRes, err := Encode(f, Options{Algorithm: IHybrid})
	if err != nil {
		t.Fatal(err)
	}
	bigRes, err := Encode(f, Options{Algorithm: IHybrid, Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if bigRes.WSat < minRes.WSat {
		t.Fatalf("more bits lost satisfaction: %d < %d", bigRes.WSat, minRes.WSat)
	}
}

func TestMinLength(t *testing.T) {
	if MinLength(4) != 2 || MinLength(5) != 3 {
		t.Fatal("MinLength wrong")
	}
}

func TestSymbolicInputEndToEnd(t *testing.T) {
	f := NewFSM("sym", 1, 1)
	f.AddSymbolicInput("op", "add", "sub", "nop", "jmp")
	f.MustAddRow("-", "fetch", "exec", "0", "add")
	f.MustAddRow("-", "fetch", "exec", "0", "sub")
	f.MustAddRow("-", "fetch", "fetch", "0", "nop")
	f.MustAddRow("-", "fetch", "jump", "0", "jmp")
	f.MustAddRow("0", "exec", "fetch", "1", "-")
	f.MustAddRow("1", "exec", "exec", "0", "-")
	f.MustAddRow("-", "jump", "fetch", "1", "-")
	for _, alg := range []Algorithm{IHybrid, IOHybrid, OneHot, Random, KISS} {
		res, err := Encode(f, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(res.Assignment.SymIns) != 1 {
			t.Fatalf("%s: symbolic input not encoded", alg)
		}
		if err := Verify(f, res.Assignment); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
}
