# Tier-1 verification lives behind `make verify`: vet, build, the test
# suite, and the race detector over the concurrent encoding engine.

GO ?= go

.PHONY: all build test vet race verify bench smoke

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

verify: vet build test race

bench:
	$(GO) test -run NONE -bench . -benchtime 1x .

# End-to-end smoke of the novad serving layer: cache replay is
# byte-identical, counters move, SIGTERM drains.
smoke:
	bash scripts/server_smoke.sh
