# Tier-1 verification lives behind `make verify`: vet, build, the test
# suite, and the race detector over the concurrent encoding engine.

GO ?= go

.PHONY: all build test vet race verify bench smoke

all: verify

build:
	$(GO) build ./...

# -shuffle=on randomizes test (and subtest-source) execution order so
# order-dependent tests cannot hide behind file ordering; failures print
# the shuffle seed for replay with -shuffle=<seed>.
test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -shuffle=on ./...

verify: vet build test race

bench:
	$(GO) test -run NONE -bench . -benchtime 1x .

# End-to-end smoke of the novad serving layer: cache replay is
# byte-identical, counters move, SIGTERM drains.
smoke:
	bash scripts/server_smoke.sh
