package nova

// The wire-stable request/response API: one pair of JSON-tagged types
// shared by the library, the CLI tools (novabench -json) and the novad
// server, so every serialization of an encode goes through the same
// schema. The field names below are a compatibility contract — add new
// fields freely, never rename or repurpose existing ones.
//
// Scheduling knobs (Options.Parallelism and friends) are deliberately
// absent from Request: by the package's determinism guarantee they never
// change the computed Result, only wall-clock time, so they belong to
// the side running the request (CLI flag, server config) rather than to
// the wire. The same property makes content-addressed caching of
// responses sound: Request.CacheKey fingerprints exactly the inputs that
// determine the Response bytes.

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"time"
)

// WireVersion is the wire schema revision this build speaks: the value
// stamped on every Response and the only Request api_version accepted
// (absent counts as current). The revision covers field meanings, the
// error-kind enum and the cache-key discipline; adding fields does not
// bump it, renaming or repurposing one does.
const WireVersion = 2

// Request is one encode request on the wire.
type Request struct {
	// APIVersion is the wire schema revision the client wrote the request
	// against. Absent (0) means the current revision (WireVersion); any
	// other value than WireVersion is rejected up front with an error
	// matching both ErrBadOptions and ErrUnsupportedVersion.
	APIVersion int `json:"api_version,omitempty"`
	// KISS2 is the machine as KISS2 text (the canonical source form).
	KISS2 string `json:"kiss2"`
	// Name optionally overrides the machine name used in the Response.
	Name string `json:"name,omitempty"`
	// Algorithm is the encoding algorithm ("" = best); see Algorithms.
	Algorithm Algorithm `json:"algorithm,omitempty"`
	// Bits, MaxWork, Seed and RandomTrials mirror the Options fields of
	// the same names (zero values select the documented defaults).
	Bits         int   `json:"bits,omitempty"`
	MaxWork      int   `json:"max_work,omitempty"`
	Seed         int64 `json:"seed,omitempty"`
	RandomTrials int   `json:"random_trials,omitempty"`
	// FastMinimize skips the REDUCE refinement of the final minimization.
	FastMinimize bool `json:"fast_minimize,omitempty"`
	// IncludePLA attaches the minimized encoded PLA text to the Response.
	IncludePLA bool `json:"include_pla,omitempty"`
	// IncludeTelemetry attaches a telemetry summary to the Response.
	IncludeTelemetry bool `json:"include_telemetry,omitempty"`
	// Portfolio configures the portfolio race (Algorithm "portfolio", or
	// an empty Algorithm with this field set). The normalized roster —
	// defaults resolved, truncated to max_candidates — is part of the
	// cache key; the hedging delay is a scheduling knob and is not.
	Portfolio *WirePortfolio `json:"portfolio,omitempty"`
}

// WirePortfolio is the portfolio race configuration on the wire.
type WirePortfolio struct {
	// Roster lists the candidates in pick-priority order; empty selects
	// the library default roster.
	Roster []WireCandidate `json:"roster,omitempty"`
	// MaxCandidates truncates the roster (0 = race everyone).
	MaxCandidates int `json:"max_candidates,omitempty"`
	// HedgeDelayMS delays the backup candidates' launch (milliseconds).
	HedgeDelayMS int64 `json:"hedge_delay_ms,omitempty"`
}

// WireCandidate is one roster member on the wire.
type WireCandidate struct {
	Algorithm Algorithm `json:"algorithm"`
	SeedSplit int       `json:"seed_split,omitempty"`
}

// Config translates the wire portfolio into the Options field.
func (wp *WirePortfolio) Config() *PortfolioConfig {
	if wp == nil {
		return nil
	}
	pc := &PortfolioConfig{
		MaxCandidates: wp.MaxCandidates,
		HedgeDelay:    time.Duration(wp.HedgeDelayMS) * time.Millisecond,
	}
	for _, c := range wp.Roster {
		pc.Roster = append(pc.Roster, PortfolioCandidate{Algorithm: c.Algorithm, SeedSplit: c.SeedSplit})
	}
	return pc
}

// Version resolves the request's schema revision: an absent api_version
// is read as the current WireVersion, so pre-versioning clients keep
// working unchanged.
func (rq *Request) Version() int {
	if rq.APIVersion == 0 {
		return WireVersion
	}
	return rq.APIVersion
}

// checkVersion rejects a request written against a schema revision this
// build does not speak.
func (rq *Request) checkVersion() error {
	if v := rq.Version(); v != WireVersion {
		return fmt.Errorf("%w: %w: api_version %d (this build speaks %d)",
			ErrBadOptions, ErrUnsupportedVersion, v, WireVersion)
	}
	return nil
}

// Machine parses the request's KISS2 text (applying the Name override).
// Failures wrap ErrBadOptions: a malformed machine is a bad request, not
// an engine failure.
func (rq *Request) Machine() (*FSM, error) {
	if err := rq.checkVersion(); err != nil {
		return nil, err
	}
	if rq.KISS2 == "" {
		return nil, fmt.Errorf("%w: empty kiss2 source", ErrBadOptions)
	}
	f, err := ParseKISSString(rq.KISS2)
	if err != nil {
		return nil, errors.Join(ErrBadOptions, err)
	}
	if rq.Name != "" {
		f.Name = rq.Name
	}
	return f, nil
}

// Options translates the wire fields into an Options value. Scheduling
// knobs are left zero; the caller owns them.
func (rq *Request) Options() Options {
	return Options{
		Algorithm:    rq.Algorithm,
		Bits:         rq.Bits,
		MaxWork:      rq.MaxWork,
		Seed:         rq.Seed,
		RandomTrials: rq.RandomTrials,
		FastMinimize: rq.FastMinimize,
		KeepPLA:      rq.IncludePLA,
		Portfolio:    rq.Portfolio.Config(),
	}
}

// Validate checks the request without running it: the KISS2 source must
// parse and the option fields must pass Options.Validate. The parsed
// machine is returned so callers validate and parse in one step.
func (rq *Request) Validate() (*FSM, error) {
	f, err := rq.Machine()
	if err != nil {
		return nil, err
	}
	if err := rq.Options().Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// cacheKeyVersion stamps every cache key; bump it whenever the Response
// schema or the encoding pipeline changes observably, so stale caches
// can never serve bytes produced by an older layout. v2: WireTelemetry
// grew the per-phase table (telemetry-carrying bodies changed shape).
// v3: Response bodies are stamped with api_version.
const cacheKeyVersion = "nova-wire-v3"

// CacheKey returns the content address of the request: a SHA-256 hex
// digest of the canonical machine text (re-emitted from the parsed FSM,
// so formatting, comments and row order quirks of the source do not
// split the cache) and of every result-determining option. Requests with
// equal keys produce byte-identical Responses; scheduling knobs are
// excluded by construction.
func (rq *Request) CacheKey() (string, error) {
	f, err := rq.Validate()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	io.WriteString(h, cacheKeyVersion)
	io.WriteString(h, "\nname=")
	io.WriteString(h, f.Name)
	io.WriteString(h, "\n")
	io.WriteString(h, f.String())
	alg := rq.Algorithm
	if alg == "" {
		if rq.Portfolio != nil {
			alg = Portfolio
		} else {
			alg = Best
		}
	}
	fmt.Fprintf(h, "alg=%s bits=%d maxwork=%d seed=%d trials=%d fast=%t pla=%t telemetry=%t\n",
		alg, rq.Bits, rq.MaxWork, rq.Seed, rq.RandomTrials,
		rq.FastMinimize, rq.IncludePLA, rq.IncludeTelemetry)
	if alg == Portfolio {
		// The normalized roster — defaults resolved, MaxCandidates
		// folded in — is result-determining; the hedging delay is
		// scheduling-only and deliberately absent, so hedged and
		// unhedged races share cache entries.
		pc := rq.Portfolio.Config().normalized()
		io.WriteString(h, "portfolio=")
		for i, c := range pc.Roster {
			if i > 0 {
				io.WriteString(h, ",")
			}
			io.WriteString(h, c.label())
		}
		io.WriteString(h, "\n")
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// WireEncoding is one symbolic variable's code table on the wire.
// Codes[i] is the code of value i rendered bit 0 first (the same order
// Encoding.CodeString uses); Values, when present, names the symbols in
// parallel.
type WireEncoding struct {
	Var    string   `json:"var,omitempty"`
	Bits   int      `json:"bits"`
	Codes  []string `json:"codes"`
	Values []string `json:"values,omitempty"`
}

// Decode parses the code table back into an Encoding.
func (we WireEncoding) Decode() (Encoding, error) {
	e := Encoding{Bits: we.Bits, Codes: make([]uint64, len(we.Codes))}
	for i, s := range we.Codes {
		if len(s) != we.Bits {
			return Encoding{}, fmt.Errorf("%w: code %q of %s has %d bits, want %d",
				ErrBadOptions, s, we.Var, len(s), we.Bits)
		}
		var c uint64
		for bit, ch := range s {
			switch ch {
			case '1':
				c |= 1 << uint(bit)
			case '0':
			default:
				return Encoding{}, fmt.Errorf("%w: code %q of %s has invalid character %q",
					ErrBadOptions, s, we.Var, ch)
			}
		}
		e.Codes[i] = c
	}
	return e, nil
}

// wireEncodingOf renders one variable's encoding for the wire.
func wireEncodingOf(name string, values []string, e Encoding) WireEncoding {
	we := WireEncoding{Var: name, Bits: e.Bits, Codes: make([]string, e.Len())}
	for i := range we.Codes {
		we.Codes[i] = e.CodeString(i)
	}
	if len(values) == e.Len() {
		we.Values = append([]string(nil), values...)
	}
	return we
}

// Error kinds of a Response: the closed enum of wire strings a response's
// error_kind field may carry. The set is part of the wire compatibility
// contract — clients may switch exhaustively over it (treating unknown
// strings as ErrKindInternal for forward compatibility), and additions
// require a note in docs/API.md. ErrorKinds returns the full set.
const (
	// ErrKindBadRequest: the request itself is unusable (malformed body,
	// unparsable KISS2, invalid options). Retrying cannot help.
	ErrKindBadRequest = "bad_request"
	// ErrKindUnsupportedVersion: the request's api_version names a schema
	// revision the server does not speak. Retrying cannot help.
	ErrKindUnsupportedVersion = "unsupported_version"
	// ErrKindGaveUp: iexact exhausted its work budget. Deterministic —
	// retrying the identical request reproduces it.
	ErrKindGaveUp = "gave_up"
	// ErrKindUnencodable: no two-level implementation exists for the
	// machine. Deterministic.
	ErrKindUnencodable = "unencodable"
	// ErrKindCanceled: the request's deadline fired or its client hung up
	// before the run finished. Retrying with a larger budget may succeed.
	ErrKindCanceled = "canceled"
	// ErrKindOverloaded: the server refused the request to protect itself
	// (admission saturation, load shedding, drain). Always retryable —
	// these responses carry a Retry-After header.
	ErrKindOverloaded = "overloaded"
	// ErrKindInternal: everything else. The catch-all for faults the enum
	// does not name; also what clients should map unknown kinds to.
	ErrKindInternal = "internal"
)

// ErrorKinds returns the closed enum of Response error kinds in stable
// order. New kinds are appended, never renamed — the API snapshot gate
// and the docs/API.md table both pin this set.
func ErrorKinds() []string {
	return []string{
		ErrKindBadRequest, ErrKindUnsupportedVersion, ErrKindGaveUp,
		ErrKindUnencodable, ErrKindCanceled, ErrKindOverloaded,
		ErrKindInternal,
	}
}

// ErrorKindOf classifies err for the wire ("" for nil). The unsupported-
// version check precedes the bad-request one because ErrUnsupportedVersion
// always travels joined with ErrBadOptions.
func ErrorKindOf(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrUnsupportedVersion):
		return ErrKindUnsupportedVersion
	case errors.Is(err, ErrBadOptions):
		return ErrKindBadRequest
	case errors.Is(err, ErrGaveUp):
		return ErrKindGaveUp
	case errors.Is(err, ErrUnencodable):
		return ErrKindUnencodable
	case errors.Is(err, ErrCanceled):
		return ErrKindCanceled
	case errors.Is(err, ErrOverloaded):
		return ErrKindOverloaded
	default:
		return ErrKindInternal
	}
}

// RetryableKind reports whether a request that failed with the given
// error kind is worth retrying: the failure is a transient server or
// timing condition, not a property of the request. Every nova endpoint is
// idempotent (encodes are pure functions of the request), so retrying is
// always *safe*; this reports whether it can *help*. Unknown kinds
// (future servers) report false — the conservative reading of a closed
// enum.
func RetryableKind(kind string) bool {
	switch kind {
	case ErrKindOverloaded, ErrKindCanceled, ErrKindInternal:
		return true
	}
	return false
}

// WireTelemetry is the telemetry summary of one run on the wire.
type WireTelemetry struct {
	WallMicros int64            `json:"wall_us"`
	Spans      int              `json:"spans"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	// Phases is the per-phase span table (self times subtract direct
	// children, so sibling phases partition their parent).
	Phases []WirePhase `json:"phases,omitempty"`
}

// WirePhase is one phase aggregate on the wire: how often the phase ran
// and where its time went. The same rendering is used by
// Response.Telemetry, the novad flight recorder (/debug/requests) and
// the per-request trace opt-in.
type WirePhase struct {
	Name        string `json:"name"`
	Count       int    `json:"count"`
	TotalMicros int64  `json:"total_us"`
	SelfMicros  int64  `json:"self_us"`
}

// WirePhasesOf renders a telemetry snapshot's phase table for the wire
// (nil snapshot or empty table → nil).
func WirePhasesOf(snap *TelemetrySnapshot) []WirePhase {
	if snap == nil || len(snap.Phases) == 0 {
		return nil
	}
	out := make([]WirePhase, len(snap.Phases))
	for i, p := range snap.Phases {
		out[i] = WirePhase{
			Name:        p.Name,
			Count:       p.Count,
			TotalMicros: p.Total.Microseconds(),
			SelfMicros:  p.Self.Microseconds(),
		}
	}
	return out
}

// Response is one encode result (or failure) on the wire.
type Response struct {
	// APIVersion is the wire schema revision the response was rendered
	// under (WireVersion for everything this build emits).
	APIVersion int       `json:"api_version,omitempty"`
	Machine    string    `json:"machine,omitempty"`
	Algorithm  Algorithm `json:"algorithm,omitempty"`
	// Bits / Cubes / Area are the paper's cost columns: total encoding
	// length, product terms, PLA area.
	Bits  int `json:"bits,omitempty"`
	Cubes int `json:"cubes,omitempty"`
	Area  int `json:"area,omitempty"`
	// WSat / WUnsat are the satisfied and unsatisfied input-constraint
	// weights; SatisfiedOC / TotalOC the output covering edges.
	WSat        int `json:"w_sat,omitempty"`
	WUnsat      int `json:"w_unsat,omitempty"`
	SatisfiedOC int `json:"oc_satisfied,omitempty"`
	TotalOC     int `json:"oc_total,omitempty"`
	// RandomAvgArea is the batch average for the random baseline.
	RandomAvgArea int `json:"random_avg_area,omitempty"`
	// Winner / WinnerSeedSplit identify the roster member whose cover a
	// portfolio run returned (absent for every other algorithm).
	Winner          Algorithm `json:"winner,omitempty"`
	WinnerSeedSplit int       `json:"winner_seed_split,omitempty"`
	// States / SymIns / SymOuts carry the code assignment.
	States  *WireEncoding  `json:"states,omitempty"`
	SymIns  []WireEncoding `json:"sym_ins,omitempty"`
	SymOuts []WireEncoding `json:"sym_outs,omitempty"`
	// PLA is the minimized encoded implementation in espresso format
	// (Request.IncludePLA only).
	PLA string `json:"pla,omitempty"`
	// Telemetry is the run summary (Request.IncludeTelemetry only).
	Telemetry *WireTelemetry `json:"telemetry,omitempty"`
	// Error / ErrorKind report a failed encode; every other field except
	// Machine and Algorithm is zero then. ErrorKind is one of the ErrKind
	// constants.
	Error     string `json:"error,omitempty"`
	ErrorKind string `json:"error_kind,omitempty"`
}

// ResponseOf renders a successful Result for the wire. The FSM supplies
// the state and symbolic value names.
func ResponseOf(f *FSM, res *Result) *Response {
	rp := &Response{
		APIVersion:      WireVersion,
		Algorithm:       res.Algorithm,
		Bits:            res.Bits,
		Cubes:           res.Cubes,
		Area:            res.Area,
		WSat:            res.WSat,
		WUnsat:          res.WUnsat,
		SatisfiedOC:     res.SatisfiedOC,
		TotalOC:         res.TotalOC,
		RandomAvgArea:   res.RandomAvgArea,
		Winner:          res.Winner,
		WinnerSeedSplit: res.WinnerSeedSplit,
	}
	if f != nil {
		rp.Machine = f.Name
	}
	st := wireEncodingOf("states", stateNames(f), res.Assignment.States)
	rp.States = &st
	for vi, e := range res.Assignment.SymIns {
		name, values := symVar(f, vi, false)
		rp.SymIns = append(rp.SymIns, wireEncodingOf(name, values, e))
	}
	for vi, e := range res.Assignment.SymOuts {
		name, values := symVar(f, vi, true)
		rp.SymOuts = append(rp.SymOuts, wireEncodingOf(name, values, e))
	}
	if res.PLA != nil {
		rp.PLA = res.PLA.String()
	}
	if res.Telemetry != nil {
		rp.Telemetry = &WireTelemetry{
			WallMicros: res.Telemetry.Wall.Microseconds(),
			Spans:      res.Telemetry.Spans,
			Counters:   res.Telemetry.Counters,
			Phases:     WirePhasesOf(res.Telemetry),
		}
	}
	return rp
}

// ErrorResponse renders a failed encode for the wire.
func ErrorResponse(machine string, alg Algorithm, err error) *Response {
	return &Response{
		APIVersion: WireVersion,
		Machine:    machine,
		Algorithm:  alg,
		Error:      err.Error(),
		ErrorKind:  ErrorKindOf(err),
	}
}

// Assignment reconstructs the code assignment carried by the Response,
// for feeding a served encoding back into Verify.
func (rp *Response) Assignment() (Assignment, error) {
	var asg Assignment
	if rp.States == nil {
		return asg, fmt.Errorf("%w: response carries no state encoding", ErrBadOptions)
	}
	var err error
	if asg.States, err = rp.States.Decode(); err != nil {
		return asg, err
	}
	for _, we := range rp.SymIns {
		e, err := we.Decode()
		if err != nil {
			return asg, err
		}
		asg.SymIns = append(asg.SymIns, e)
	}
	for _, we := range rp.SymOuts {
		e, err := we.Decode()
		if err != nil {
			return asg, err
		}
		asg.SymOuts = append(asg.SymOuts, e)
	}
	return asg, nil
}

// VerifyRequest asks the server to check that an assignment implements a
// machine (POST /v1/verify). The assignment fields use the same wire
// encoding as Response, so a served Response can be fed back verbatim.
type VerifyRequest struct {
	// APIVersion follows the same versioning contract as Request.
	APIVersion int            `json:"api_version,omitempty"`
	KISS2      string         `json:"kiss2"`
	Name       string         `json:"name,omitempty"`
	States     *WireEncoding  `json:"states"`
	SymIns     []WireEncoding `json:"sym_ins,omitempty"`
	SymOuts    []WireEncoding `json:"sym_outs,omitempty"`
}

// Machine parses the verify request's KISS2 text (rejecting unsupported
// api_version values the same way Request does).
func (vq *VerifyRequest) Machine() (*FSM, error) {
	rq := Request{APIVersion: vq.APIVersion, KISS2: vq.KISS2, Name: vq.Name}
	return rq.Machine()
}

// Assignment reconstructs the code assignment under test.
func (vq *VerifyRequest) Assignment() (Assignment, error) {
	rp := Response{States: vq.States, SymIns: vq.SymIns, SymOuts: vq.SymOuts}
	return rp.Assignment()
}

// VerifyResponse reports a verification outcome on the wire.
type VerifyResponse struct {
	APIVersion int    `json:"api_version,omitempty"`
	OK         bool   `json:"ok"`
	Error      string `json:"error,omitempty"`
	ErrorKind  string `json:"error_kind,omitempty"`
}

// stateNames returns the FSM's state names, or nil.
func stateNames(f *FSM) []string {
	if f == nil {
		return nil
	}
	return f.States
}

// symVar names the vi-th symbolic input (or output) variable.
func symVar(f *FSM, vi int, out bool) (string, []string) {
	if f == nil {
		return "", nil
	}
	vars := f.SymIns
	if out {
		vars = f.SymOuts
	}
	if vi >= len(vars) {
		return "", nil
	}
	return vars[vi].Name, vars[vi].Values
}
