package nova_test

// Tests of the telemetry subsystem: the no-op tracer must be free on the
// hot paths (the alloc guards below back the "within noise of the PR-2
// numbers" requirement), tracing must not perturb results (determinism
// holds bit-for-bit with a tracer attached), and an emitted trace must be
// valid JSON lines whose root spans account for the run's wall time.

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"nova"
	"nova/internal/bench"
	"nova/internal/cube"
	"nova/internal/espresso"
	"nova/internal/mvmin"
	"nova/internal/obs"
)

// TestNoopSpanZeroAlloc pins the core guarantee of the obs API: a Span
// call on a context carrying no tracer allocates nothing, including the
// nil-span attribute and End calls sprinkled through the pipeline.
func TestNoopSpanZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are noise under the race detector (its runtime allocates); enforced by the non-race runs")
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sctx, sp := obs.Span(ctx, "test.phase")
		sp.SetInt("k", 1)
		sp.SetStr("s", "v")
		sp.End()
		_ = sctx
	})
	if allocs != 0 {
		t.Fatalf("no-op Span allocates %.1f per call, want 0", allocs)
	}
	if m := obs.MetricsFrom(ctx); m != nil {
		t.Fatal("MetricsFrom(plain ctx) != nil")
	}
}

// TestTautologyZeroAllocWithTelemetry replays the BenchmarkTautology
// kernel (rest-cover CoversCube on planet) and requires the baseline 0
// allocs/op to survive the arena stat counters added for telemetry.
func TestTautologyZeroAllocWithTelemetry(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are noise under the race detector (its runtime allocates); enforced by the non-race runs")
	}
	p, err := mvmin.Build(bench.Get("planet"))
	if err != nil {
		t.Fatal(err)
	}
	rest := cube.NewCover(p.S)
	for k, c := range p.On.Cubes {
		if k != 0 {
			rest.Add(c)
		}
	}
	for _, c := range p.Dc.Cubes {
		rest.Add(c)
	}
	target := p.On.Cubes[0]
	allocs := testing.AllocsPerRun(50, func() {
		benchSinkBool = rest.CoversCube(target)
	})
	if allocs != 0 {
		t.Fatalf("tautology kernel allocates %.1f per call, want 0", allocs)
	}
}

var benchSinkBool bool

// TestMinimizeAllocParityWithoutTracer runs the full ESPRESSO loop (the
// BenchmarkExpand/BenchmarkTableII hot path) twice — once with a nil Ctx
// and once with a plain context carrying no tracer — and requires the
// allocation counts to be identical: the instrumented path must cost
// nothing when tracing is off.
func TestMinimizeAllocParityWithoutTracer(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are noise under the race detector (its runtime allocates); enforced by the non-race runs")
	}
	p, err := mvmin.Build(bench.Get("planet"))
	if err != nil {
		t.Fatal(err)
	}
	// A held (non-pooled) arena keeps sync.Pool GC churn out of the
	// measurement; the memo reaches steady state during the warm-up run
	// AllocsPerRun performs before counting. The minimum of three
	// measurements discards stray runtime allocations (GC bookkeeping)
	// that land in individual runs.
	a := cube.NewArena(p.S)
	measure := func(opt espresso.Options) float64 {
		best := testing.AllocsPerRun(5, func() {
			f := p.On.Copy()
			espresso.MinimizeWith(f, p.Dc, opt, a)
		})
		for i := 0; i < 2; i++ {
			if v := testing.AllocsPerRun(5, func() {
				f := p.On.Copy()
				espresso.MinimizeWith(f, p.Dc, opt, a)
			}); v < best {
				best = v
			}
		}
		return best
	}
	bare := measure(espresso.Options{})
	withCtx := measure(espresso.Options{Ctx: context.Background()})
	if bare != withCtx {
		t.Fatalf("allocs/run with plain ctx = %.1f, without = %.1f; instrumentation must be free when disabled", withCtx, bare)
	}
}

// TestSerialParallelIdenticalWithTracing re-runs the PR-1 determinism
// guarantee with a tracer attached to both sides: tracing must never
// change a Result.
func TestSerialParallelIdenticalWithTracing(t *testing.T) {
	for _, name := range []string{"bbtas", "train11", "beecount"} {
		t.Run(name, func(t *testing.T) {
			f := bench.Get(name)
			opt := nova.Options{Algorithm: nova.Best, Seed: 7, Parallelism: 1, Tracer: nova.NewTracer()}
			serial, err := nova.Encode(f, opt)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			opt.Parallelism = 4
			opt.Tracer = nova.NewTracer()
			par, err := nova.Encode(f, opt)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if serial.Telemetry == nil || par.Telemetry == nil {
				t.Fatal("Result.Telemetry not populated with a tracer set")
			}
			// The snapshots legitimately differ (timings, scheduling);
			// everything else must be bit-identical.
			serial.Telemetry, par.Telemetry = nil, nil
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("parallel result differs from serial with tracing on:\nserial:   %+v\nparallel: %+v", serial, par)
			}
		})
	}
}

// TestTelemetrySnapshotContents checks the snapshot attached to a traced
// Result: phases and counters present, and absent entirely by default.
func TestTelemetrySnapshotContents(t *testing.T) {
	f := bench.Get("bbara")
	plain, err := nova.Encode(f, nova.Options{Algorithm: nova.IHybrid})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Telemetry != nil {
		t.Fatal("Result.Telemetry != nil without a tracer")
	}

	res, err := nova.Encode(f, nova.Options{Algorithm: nova.IHybrid, Tracer: nova.NewTracer()})
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Telemetry
	if snap == nil {
		t.Fatal("Result.Telemetry == nil with a tracer set")
	}
	for _, phase := range []string{"nova.encode", "espresso.minimize", "search.ihybrid", "mvmin.minimize"} {
		if snap.Phase(phase) == nil {
			t.Errorf("snapshot missing phase %q", phase)
		}
	}
	for _, key := range []string{"espresso.iterations", "tautology.calls", "arena.gets", "search.work", "algo.ok.ihybrid"} {
		if snap.Counters[key] == 0 {
			t.Errorf("counter %q is zero", key)
		}
	}
	if snap.Counters["tautology.memo_hits"] > snap.Counters["tautology.memo_lookups"] {
		t.Error("memo hits exceed memo lookups")
	}
}

// TestTraceJSONLinesAndWallCoverage streams a trace, requires every line
// to parse as JSON with the tracer's label, and requires the root spans
// to account for at least 90% of the tracer's wall time (the acceptance
// bar for per-phase attribution).
func TestTraceJSONLinesAndWallCoverage(t *testing.T) {
	var buf bytes.Buffer
	tracer := nova.NewTracer()
	tracer.SetLabel("bbara")
	tracer.SetWriter(&buf)
	res, err := nova.EncodeContext(context.Background(), bench.Get("bbara"),
		nova.Options{Algorithm: nova.Best, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}

	spans, roots := 0, 0
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("invalid JSON line %q: %v", line, err)
		}
		if rec["trace"] != "bbara" {
			t.Fatalf("line missing trace label: %q", line)
		}
		if rec["type"] == "span" {
			spans++
			if _, nested := rec["parent"]; !nested {
				roots++
			}
		}
	}
	if spans == 0 {
		t.Fatal("trace stream contains no spans")
	}
	if roots == 0 {
		t.Fatal("trace stream contains no root span")
	}

	snap := res.Telemetry
	if snap.Spans != spans {
		t.Fatalf("snapshot has %d spans, stream has %d", snap.Spans, spans)
	}
	if snap.Root <= 0 || snap.Wall <= 0 {
		t.Fatalf("degenerate snapshot: root %v, wall %v", snap.Root, snap.Wall)
	}
	if cov := float64(snap.Root) / float64(snap.Wall); cov < 0.9 || cov > 1.1 {
		t.Fatalf("root spans cover %.1f%% of wall time %v, want within 10%%", 100*cov, snap.Wall)
	}
}
