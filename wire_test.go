package nova

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestOptionsValidate(t *testing.T) {
	good := []Options{
		{},
		{Algorithm: IExact, Bits: 64, MaxWork: 10, RandomTrials: 3},
		{Parallelism: 8, IntraParallelism: 4, IntraForkCubes: 100},
	}
	for _, o := range good {
		if err := o.Validate(); err != nil {
			t.Fatalf("Validate(%+v) = %v, want nil", o, err)
		}
	}
	bad := []Options{
		{Algorithm: "bogus"},
		{Bits: -1},
		{Bits: 65},
		{MaxWork: -1},
		{RandomTrials: -1},
		{Parallelism: -1},
		{IntraParallelism: -1},
		{IntraForkCubes: -1},
	}
	for _, o := range bad {
		err := o.Validate()
		if !errors.Is(err, ErrBadOptions) {
			t.Fatalf("Validate(%+v) = %v, want ErrBadOptions", o, err)
		}
	}
}

func TestValidateCalledByEntryPoints(t *testing.T) {
	f := parseQuick(t)
	if _, err := Encode(f, Options{Bits: -1}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("Encode: %v, want ErrBadOptions", err)
	}
	if _, err := EncodeAll(t.Context(), []*FSM{f}, Options{Algorithm: "nope"}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("EncodeAll: %v, want ErrBadOptions", err)
	}
}

func TestAlgorithmsCoversValidationSet(t *testing.T) {
	listed := Algorithms()
	if len(listed) != len(algorithms) {
		t.Fatalf("Algorithms() has %d entries, validation set %d", len(listed), len(algorithms))
	}
	for _, alg := range listed {
		if !algorithms[alg] {
			t.Fatalf("%q listed but not accepted", alg)
		}
		if err := (Options{Algorithm: alg}).Validate(); err != nil {
			t.Fatalf("%q rejected: %v", alg, err)
		}
	}
}

func TestRequestValidate(t *testing.T) {
	rq := Request{KISS2: quickFSM, Name: "renamed"}
	f, err := rq.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "renamed" {
		t.Fatalf("Name override lost: %q", f.Name)
	}
	for _, bad := range []Request{
		{},                                    // empty source
		{KISS2: ".i bogus"},                   // malformed source
		{KISS2: quickFSM, Algorithm: "bogus"}, // bad option
		{KISS2: quickFSM, Bits: -2},           // bad option
	} {
		if _, err := bad.Validate(); !errors.Is(err, ErrBadOptions) {
			t.Fatalf("Validate(%+v) = %v, want ErrBadOptions", bad, err)
		}
	}
}

func TestCacheKeyCanonicalizesSource(t *testing.T) {
	rq := Request{KISS2: quickFSM}
	key, err := rq.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if len(key) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", key)
	}

	// Formatting quirks of the source must not split the cache: extra
	// blank lines and comments parse to the same machine.
	noisy := Request{KISS2: "# a comment\n\n" + quickFSM + "\n\n"}
	noisyKey, err := noisy.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if noisyKey != key {
		t.Fatal("cosmetic source changes changed the cache key")
	}

	// "" and Best are the same algorithm and must share a key.
	bestKey, err := (&Request{KISS2: quickFSM, Algorithm: Best}).CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if bestKey != key {
		t.Fatal("empty algorithm and Best produced different keys")
	}

	// Every result-determining field must change the key.
	variants := []Request{
		{KISS2: quickFSM, Algorithm: IGreedy},
		{KISS2: quickFSM, Bits: 3},
		{KISS2: quickFSM, MaxWork: 99},
		{KISS2: quickFSM, Seed: 2},
		{KISS2: quickFSM, RandomTrials: 4},
		{KISS2: quickFSM, FastMinimize: true},
		{KISS2: quickFSM, IncludePLA: true},
		{KISS2: quickFSM, IncludeTelemetry: true},
		{KISS2: quickFSM, Name: "other"},
	}
	seen := map[string]int{key: -1}
	for i, v := range variants {
		k, err := v.CacheKey()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("variants %d and %d collide", prev, i)
		}
		seen[k] = i
	}
}

func TestWireEncodingRoundTrip(t *testing.T) {
	f := parseQuick(t)
	res, err := Encode(f, Options{Algorithm: IHybrid})
	if err != nil {
		t.Fatal(err)
	}
	rp := ResponseOf(f, res)
	if rp.Machine != f.Name || rp.Area != res.Area || rp.Cubes != res.Cubes {
		t.Fatalf("cost columns lost: %+v", rp)
	}
	if rp.States == nil || len(rp.States.Codes) != 4 {
		t.Fatalf("state table wrong: %+v", rp.States)
	}

	// Through JSON and back, the assignment must still verify.
	data, err := json.Marshal(rp)
	if err != nil {
		t.Fatal(err)
	}
	var back Response
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	asg, err := back.Assignment()
	if err != nil {
		t.Fatal(err)
	}
	if asg.States.Bits != res.Assignment.States.Bits {
		t.Fatalf("bits %d != %d", asg.States.Bits, res.Assignment.States.Bits)
	}
	for i, c := range asg.States.Codes {
		if c != res.Assignment.States.Codes[i] {
			t.Fatalf("code %d: %b != %b", i, c, res.Assignment.States.Codes[i])
		}
	}
	if err := Verify(f, asg); err != nil {
		t.Fatalf("round-tripped assignment fails verify: %v", err)
	}
}

func TestWireEncodingDecodeRejectsBadCodes(t *testing.T) {
	for _, we := range []WireEncoding{
		{Var: "states", Bits: 2, Codes: []string{"001"}}, // wrong width
		{Var: "states", Bits: 2, Codes: []string{"0x"}},  // bad character
	} {
		if _, err := we.Decode(); !errors.Is(err, ErrBadOptions) {
			t.Fatalf("Decode(%+v) = %v, want ErrBadOptions", we, err)
		}
	}
}

func TestResponseJSONTagsAreStable(t *testing.T) {
	// The wire schema is a compatibility contract: these exact key names
	// must appear in a fully-populated serialized Response. Renaming one
	// is a breaking change; this test is the tripwire.
	f := parseQuick(t)
	f.Name = "quick"
	res, err := Encode(f, Options{Algorithm: Random, KeepPLA: true, RandomTrials: 2})
	if err != nil {
		t.Fatal(err)
	}
	res.Telemetry = &TelemetrySnapshot{Spans: 1}
	rp := ResponseOf(f, res)
	// Random leaves the constraint columns zero; fill them so omitempty
	// cannot hide a renamed tag from the scan below.
	rp.WSat, rp.WUnsat, rp.SatisfiedOC, rp.TotalOC = 1, 1, 1, 1
	data, err := json.Marshal(rp)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"machine"`, `"algorithm"`, `"bits"`, `"cubes"`, `"area"`,
		`"w_sat"`, `"oc_satisfied"`, `"oc_total"`, `"random_avg_area"`,
		`"states"`, `"codes"`, `"pla"`, `"telemetry"`, `"wall_us"`, `"spans"`,
	} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("serialized Response lost %s:\n%s", key, data)
		}
	}
}

func TestErrorKindOf(t *testing.T) {
	cases := map[string]error{
		"":                 nil,
		ErrKindBadRequest:  ErrBadOptions,
		ErrKindGaveUp:      ErrGaveUp,
		ErrKindUnencodable: ErrUnencodable,
		ErrKindCanceled:    ErrCanceled,
		ErrKindInternal:    errors.New("boom"),
	}
	for want, err := range cases {
		if got := ErrorKindOf(err); got != want {
			t.Fatalf("ErrorKindOf(%v) = %q, want %q", err, got, want)
		}
	}
	rp := ErrorResponse("m", IExact, ErrGaveUp)
	if rp.Error == "" || rp.ErrorKind != ErrKindGaveUp || rp.Machine != "m" {
		t.Fatalf("ErrorResponse wrong: %+v", rp)
	}
}

func TestVerifyRequestRoundTrip(t *testing.T) {
	f := parseQuick(t)
	res, err := Encode(f, Options{Algorithm: IGreedy})
	if err != nil {
		t.Fatal(err)
	}
	rp := ResponseOf(f, res)
	vq := VerifyRequest{KISS2: quickFSM, States: rp.States, SymIns: rp.SymIns, SymOuts: rp.SymOuts}
	vf, err := vq.Machine()
	if err != nil {
		t.Fatal(err)
	}
	asg, err := vq.Assignment()
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(vf, asg); err != nil {
		t.Fatalf("served assignment fails verify: %v", err)
	}
}
