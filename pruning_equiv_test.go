package nova_test

// Equivalence suite for the search pruning: constraint preprocessing,
// hypercube symmetry breaking and the failed-embedding memo must not
// change what any algorithm produces — only how fast it gets there. The
// sweep compares a default (pruned) run against DisableSearchPruning on
// every suite machine and algorithm, checking the quality outcomes
// (area, cube count, encoding length, constraint satisfaction) and
// give-up parity.
//
// Quality is compared rather than full byte-identity: under a binding
// work budget the pruned searcher spends its work units on different
// nodes than the exhaustive one, so a budgeted run may legally walk to a
// different — equally valid — encoding. The serial==parallel identity
// tests in parallel_test.go pin byte determinism with pruning on.

import (
	"errors"
	"testing"

	"nova"
	"nova/internal/bench"
)

func TestPruningPreservesQuality(t *testing.T) {
	algs := []nova.Algorithm{nova.IExact, nova.IHybrid, nova.IOHybrid, nova.IGreedy}
	for _, name := range parallelSuite {
		for _, alg := range algs {
			t.Run(name+"/"+string(alg), func(t *testing.T) {
				t.Parallel()
				f := bench.Get(name)
				opt := nova.Options{Algorithm: alg, Seed: 7, MaxWork: 200_000, Parallelism: 1}
				pruned, prunedErr := nova.Encode(f, opt)
				opt.DisableSearchPruning = true
				plain, plainErr := nova.Encode(f, opt)

				if errors.Is(prunedErr, nova.ErrGaveUp) != errors.Is(plainErr, nova.ErrGaveUp) {
					t.Fatalf("give-up parity broken: pruned err=%v, unpruned err=%v", prunedErr, plainErr)
				}
				if (prunedErr == nil) != (plainErr == nil) {
					t.Fatalf("error parity broken: pruned err=%v, unpruned err=%v", prunedErr, plainErr)
				}
				if prunedErr != nil && !errors.Is(prunedErr, nova.ErrGaveUp) {
					t.Skipf("both runs failed identically: %v", prunedErr)
				}

				if pruned.Area != plain.Area || pruned.Cubes != plain.Cubes || pruned.Bits != plain.Bits {
					t.Fatalf("pruning changed the outcome:\npruned:   area=%d cubes=%d bits=%d\nunpruned: area=%d cubes=%d bits=%d",
						pruned.Area, pruned.Cubes, pruned.Bits, plain.Area, plain.Cubes, plain.Bits)
				}
				if pruned.WSat != plain.WSat || pruned.WUnsat != plain.WUnsat {
					t.Fatalf("pruning changed constraint satisfaction: pruned %d/%d, unpruned %d/%d",
						pruned.WSat, pruned.WUnsat, plain.WSat, plain.WUnsat)
				}
			})
		}
	}
}
