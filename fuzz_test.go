package nova

// Fuzz target for the wire request decoder: arbitrary JSON bodies (the
// exact bytes novad reads off the network) must never panic the decode /
// validate / cache-key path, and every accepted request must produce a
// stable, well-formed cache key.

import (
	"encoding/json"
	"testing"
)

func FuzzDecodeRequest(f *testing.F) {
	quick := `.i 1\n.o 1\n.s 4\n.r c0\n0 c0 c1 0\n1 c0 c3 1\n0 c1 c2 1\n1 c1 c0 0\n0 c2 c3 1\n1 c2 c1 0\n0 c3 c0 0\n1 c3 c2 1\n.e`
	for _, seed := range []string{
		// The server smoke payload shape.
		`{"kiss2": "` + quick + `", "name": "quick4", "algorithm": "ihybrid"}`,
		// Every option field populated.
		`{"kiss2": "` + quick + `", "algorithm": "iexact", "bits": 3, "seed": 9,
		  "max_work": 1000, "random_trials": 2, "fast_minimize": true,
		  "include_pla": true, "include_telemetry": true, "name": "x"}`,
		// Portfolio rosters: default, custom, truncated, hedged.
		`{"kiss2": "` + quick + `", "algorithm": "portfolio"}`,
		`{"kiss2": "` + quick + `", "portfolio": {"roster": [
		   {"algorithm": "ihybrid"}, {"algorithm": "iohybrid", "seed_split": 2}],
		   "max_candidates": 1, "hedge_delay_ms": 5}}`,
		`{"kiss2": "` + quick + `", "portfolio": {}}`,
		// Near-miss shapes the decoder must reject without panicking.
		`{"kiss2": ""}`,
		`{"kiss2": ".i bogus"}`,
		`{"kiss2": "` + quick + `", "algorithm": "bogus"}`,
		`{"kiss2": "` + quick + `", "portfolio": {"roster": [{"algorithm": "portfolio"}]}}`,
		`{"portfolio": {"roster": null}}`,
		`{`,
		`[]`,
		`{"kiss2": 7}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var rq Request
		if err := json.Unmarshal(data, &rq); err != nil {
			return // malformed JSON only needs to not panic
		}
		fsm, err := rq.Validate()
		if err != nil {
			return // rejected requests only need to not panic
		}
		if fsm == nil {
			t.Fatalf("Validate accepted a request without a machine: %s", data)
		}
		// Accepted requests must key the cache: a 64-hex digest, the same
		// on every call (the serving layer relies on key stability for
		// singleflight collapse and cache replay).
		key, err := rq.CacheKey()
		if err != nil {
			t.Fatalf("validated request has no cache key: %v\n%s", err, data)
		}
		if len(key) != 64 {
			t.Fatalf("cache key %q is not a sha256 hex digest", key)
		}
		again, err := rq.CacheKey()
		if err != nil || again != key {
			t.Fatalf("cache key unstable: %q then %q (err %v)", key, again, err)
		}
		// The derived options must pass the same validation the engine
		// runs — wire acceptance may not be looser than Options.Validate.
		if verr := rq.Options().Validate(); verr != nil {
			t.Fatalf("accepted request derives invalid options: %v\n%s", verr, data)
		}
	})
}
