package nova

import "errors"

// Sentinel errors returned (wrapped) by the encoding entry points. Match
// them with errors.Is; the wrapping message names the algorithm and the
// variable (state or symbolic input) that failed.
var (
	// ErrGaveUp reports that iexact exhausted its work budget without
	// settling the instance. The partial *Result returned alongside it
	// holds whatever the run had settled; match the condition with
	// errors.Is(err, ErrGaveUp).
	ErrGaveUp = errors.New("nova: gave up within the work budget")

	// ErrUnencodable reports that no two-level implementation can be
	// produced for the machine at all — for example a code assignment
	// that would need more than 64 bits, or an invalid assignment.
	ErrUnencodable = errors.New("nova: machine not encodable")

	// ErrCanceled reports that the context passed to EncodeContext /
	// EncodeAll was canceled or its deadline expired before the run
	// finished. The underlying context error (context.Canceled or
	// context.DeadlineExceeded) is joined in, so errors.Is matches both.
	ErrCanceled = errors.New("nova: encoding canceled")

	// ErrBadOptions reports an Options value (or a wire Request) that no
	// run could honor — an unknown algorithm, an out-of-range encoding
	// length, a negative budget. It is returned by Options.Validate and,
	// wrapped, by every public entry point before any work starts.
	ErrBadOptions = errors.New("nova: bad options")

	// ErrUnsupportedVersion reports a wire Request whose api_version field
	// names a schema revision this build does not speak. It always travels
	// joined with ErrBadOptions (an unsupported version is a bad request),
	// but matches separately under errors.Is so clients can distinguish
	// "upgrade me" from "fix your request". The wire kind is
	// ErrKindUnsupportedVersion.
	ErrUnsupportedVersion = errors.New("nova: unsupported wire api_version")

	// ErrOverloaded reports that a serving layer refused the request to
	// protect itself: admission saturation, priority load shedding, or a
	// graceful drain. The request itself is fine — retrying after a
	// backoff (these responses carry a Retry-After header) is the right
	// reaction. The wire kind is ErrKindOverloaded.
	ErrOverloaded = errors.New("nova: server overloaded")
)

// canceledErr wraps a context error so that both nova.ErrCanceled and the
// original context sentinel match under errors.Is.
func canceledErr(cause error) error {
	return errors.Join(ErrCanceled, cause)
}

func isGaveUp(err error) bool   { return errors.Is(err, ErrGaveUp) }
func isCanceled(err error) bool { return errors.Is(err, ErrCanceled) }
