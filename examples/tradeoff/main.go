// Tradeoff reproduces the paper's code-length discussion (Section VII,
// Table II): satisfying more input constraints by lengthening the code
// does not pay off in PLA area — the columns added to the PLA outweigh
// the product terms saved. The sweep runs ihybrid from the minimum length
// upward on a benchmark machine and prints constraint satisfaction,
// product terms and area per length.
package main

import (
	"fmt"
	"log"

	"nova"
	"nova/internal/bench"
)

func main() {
	name := "ex5"
	fsm := bench.Get(name)
	if fsm == nil {
		log.Fatalf("unknown benchmark %s", name)
	}
	fmt.Printf("machine %s: %d states, minimum length %d\n\n",
		name, fsm.NumStates(), nova.MinLength(fsm.NumStates()))

	min := nova.MinLength(fsm.NumStates())
	fmt.Printf("%5s %10s %12s %7s %7s\n", "bits", "wsat", "wunsat", "cubes", "area")
	bestBits, bestArea := 0, 1<<62
	for bits := min; bits <= fsm.NumStates(); bits++ {
		res, err := nova.Encode(fsm, nova.Options{Algorithm: nova.IHybrid, Bits: bits})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d %10d %12d %7d %7d\n", res.Bits, res.WSat, res.WUnsat, res.Cubes, res.Area)
		if res.Area < bestArea {
			bestBits, bestArea = res.Bits, res.Area
		}
		if res.WUnsat == 0 {
			fmt.Printf("\nall input constraints satisfied at %d bits\n", res.Bits)
			break
		}
	}
	fmt.Printf("best area %d at %d bits — the minimum-length region wins, as the paper observes\n",
		bestArea, bestBits)
}
