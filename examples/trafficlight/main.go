// Trafficlight builds a highway/farm-road traffic-light controller — the
// classic FSM synthesis example — programmatically, encodes it with every
// NOVA algorithm and the paper's baselines, and compares the resulting
// two-level implementations.
package main

import (
	"fmt"
	"log"

	"nova"
)

func controller() *nova.FSM {
	// Inputs: c = car waiting on the farm road, t = long-timer expired,
	// s = short-timer expired.
	// Outputs: highway {green,yellow,red} and farm {green,yellow,red},
	// one-hot per light, plus a timer-start pulse.
	f := nova.NewFSM("traffic", 3, 7)
	//             cts   present  next     HG HY HR FG FY FR ST
	f.MustAddRow("0--", "hgreen", "hgreen", "1000010")
	f.MustAddRow("-0-", "hgreen", "hgreen", "1000010")
	f.MustAddRow("11-", "hgreen", "hyellow", "0100011")
	f.MustAddRow("--0", "hyellow", "hyellow", "0100010")
	f.MustAddRow("--1", "hyellow", "fgreen", "0011001")
	f.MustAddRow("1-0", "fgreen", "fgreen", "0011000")
	f.MustAddRow("0--", "fgreen", "fyellow", "0010101")
	f.MustAddRow("--1", "fgreen", "fyellow", "0010101")
	f.MustAddRow("1-1", "fgreen", "fyellow", "0010101")
	f.MustAddRow("--0", "fyellow", "fyellow", "0010100")
	f.MustAddRow("--1", "fyellow", "hgreen", "1000011")
	f.SetReset("hgreen")
	return f
}

func main() {
	fsm := controller()
	if ok, why := fsm.Deterministic(); !ok {
		log.Fatalf("controller table is nondeterministic: %s", why)
	}
	fmt.Printf("traffic-light controller: %d states, %d inputs, %d outputs, %d rows\n\n",
		fsm.NumStates(), fsm.Stats().Inputs, fsm.Stats().Outputs, fsm.NumTerms())

	algorithms := []nova.Algorithm{
		nova.IExact, nova.IHybrid, nova.IGreedy, nova.IOHybrid,
		nova.KISS, nova.OneHot, nova.Random, nova.MustangN,
	}
	fmt.Printf("%-12s %6s %7s %7s %28s\n", "algorithm", "bits", "cubes", "area", "codes")
	for _, alg := range algorithms {
		res, err := nova.Encode(fsm, nova.Options{Algorithm: alg, Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		codes := ""
		for i := range fsm.States {
			if i > 0 {
				codes += " "
			}
			codes += res.Assignment.States.CodeString(i)
		}
		fmt.Printf("%-12s %6d %7d %7d %28s\n", alg, res.Bits, res.Cubes, res.Area, codes)
		if err := nova.Verify(fsm, res.Assignment); err != nil {
			log.Fatalf("%s: equivalence check failed: %v", alg, err)
		}
	}
	fmt.Println("\nall encodings verified against the symbolic table")
}
