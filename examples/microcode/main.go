// Microcode demonstrates the symbolic proper-output extension (the future
// work of the paper's Section VII): a control FSM emits a symbolic
// micro-operation, and NOVA chooses its value codes from output covering
// constraints derived by symbolic minimization, alongside the state codes.
package main

import (
	"fmt"
	"log"

	"nova"
)

func sequencer() *nova.FSM {
	f := nova.NewFSM("microseq", 2, 1)
	f.AddSymbolicOutput("uop", "unop", "uload", "ustore", "ualu", "ubranch")
	add := func(in, ps, ns, out, op string) {
		if err := f.AddRowSym(in, nil, ps, ns, out, []string{op}); err != nil {
			log.Fatal(err)
		}
	}
	add("00", "ifetch", "ifetch", "0", "unop")
	add("01", "ifetch", "opread", "0", "uload")
	add("1-", "ifetch", "branch", "0", "ubranch")
	add("-0", "opread", "execute", "0", "ualu")
	add("-1", "opread", "wback", "0", "ualu")
	add("0-", "execute", "wback", "1", "ualu")
	add("1-", "execute", "execute", "0", "ualu")
	add("--", "wback", "ifetch", "1", "ustore")
	add("-1", "branch", "ifetch", "0", "unop")
	add("-0", "branch", "branch", "0", "ubranch")
	f.SetReset("ifetch")
	return f
}

func main() {
	fsm := sequencer()
	st := fsm.Stats()
	fmt.Printf("microcode sequencer: %d states, %d outputs + symbolic %q (%d values)\n\n",
		st.States, st.Outputs, fsm.SymOuts[0].Name, len(fsm.SymOuts[0].Values))

	res, err := nova.Encode(fsm, nova.Options{Algorithm: nova.IOHybrid, KeepPLA: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("state codes:")
	for i, name := range fsm.States {
		fmt.Printf("  %-10s %s\n", name, res.Assignment.States.CodeString(i))
	}
	fmt.Printf("micro-op codes (%d bits instead of %d one-hot lines):\n",
		res.Assignment.SymOuts[0].Bits, len(fsm.SymOuts[0].Values))
	for i, name := range fsm.SymOuts[0].Values {
		fmt.Printf("  %-10s %s\n", name, res.Assignment.SymOuts[0].CodeString(i))
	}
	fmt.Printf("\nproduct terms: %d, PLA area: %d\n", res.Cubes, res.Area)

	oh, err := nova.Encode(fsm, nova.Options{Algorithm: nova.OneHot})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1-hot reference:  %d product terms, PLA area: %d\n", oh.Cubes, oh.Area)

	if err := nova.Verify(fsm, res.Assignment); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nverified: encoded machine matches the symbolic table")
}
