// Quickstart: parse a KISS2 state transition table, encode it with NOVA,
// and print the code assignment and the minimized PLA.
package main

import (
	"fmt"
	"log"

	"nova"
)

// A small decade-counter-style controller in KISS2 format.
const table = `
.i 2
.o 2
.s 5
.r idle
0- idle  idle  00
1- idle  load  01
-0 load  run   01
-1 load  idle  00
00 run   run   10
01 run   done  10
1- run   idle  00
-- done  flush 11
0- flush idle  00
1- flush load  01
.e
`

func main() {
	fsm, err := nova.ParseKISSString(table)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine %q: %d states, %d transitions\n\n", "quickstart", fsm.NumStates(), fsm.NumTerms())

	// The input constraints NOVA derives by multiple-valued minimization:
	// groups of states an encoding should place on a face of the cube.
	ics, _, err := nova.Constraints(fsm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("input constraints (state groups to embed on faces):")
	for _, ic := range ics {
		fmt.Printf("  %s  weight %d\n", ic.Set, ic.Weight)
	}

	// Encode with the best of NOVA's algorithms and keep the final PLA.
	res, err := nova.Encode(fsm, nova.Options{Algorithm: nova.Best, KeepPLA: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest algorithm: %s\n", res.Algorithm)
	fmt.Println("state codes:")
	for i, name := range fsm.States {
		fmt.Printf("  %-8s %s\n", name, res.Assignment.States.CodeString(i))
	}
	fmt.Printf("product terms: %d, PLA area: %d\n\n", res.Cubes, res.Area)
	fmt.Println("minimized encoded PLA (espresso format):")
	fmt.Print(res.PLA)

	// End-to-end check: the encoded machine is simulated against the
	// symbolic table on every (input, state) pair.
	if err := nova.Verify(fsm, res.Assignment); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nverified: encoded machine is equivalent to the table")
}
