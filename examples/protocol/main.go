// Protocol encodes a bus-interface FSM whose command input is symbolic
// (multiple-valued), demonstrating NOVA's joint encoding of states and
// symbolic proper inputs — the paper's class-D/class-A machinery with an
// extra multiple-valued input variable (the dk* benchmarks are run the
// same way).
package main

import (
	"fmt"
	"log"

	"nova"
)

func busFSM() *nova.FSM {
	// One binary input: ready. One symbolic input: the bus command.
	// Outputs: ack, drive, dir.
	f := nova.NewFSM("bus", 1, 3)
	f.AddSymbolicInput("cmd", "read", "write", "burst", "idlecmd")

	//            rdy  present  next    ado   cmd
	f.MustAddRow("-", "idle", "raddr", "000", "read")
	f.MustAddRow("-", "idle", "waddr", "000", "write")
	f.MustAddRow("-", "idle", "raddr", "000", "burst")
	f.MustAddRow("-", "idle", "idle", "000", "idlecmd")
	f.MustAddRow("0", "raddr", "raddr", "010", "-")
	f.MustAddRow("1", "raddr", "rdata", "011", "-")
	f.MustAddRow("0", "waddr", "waddr", "010", "-")
	f.MustAddRow("1", "waddr", "wdata", "010", "-")
	f.MustAddRow("0", "rdata", "rdata", "011", "-")
	f.MustAddRow("1", "rdata", "idle", "111", "-")
	f.MustAddRow("0", "wdata", "wdata", "010", "-")
	f.MustAddRow("1", "wdata", "idle", "110", "-")
	f.SetReset("idle")
	return f
}

func main() {
	fsm := busFSM()
	st := fsm.Stats()
	fmt.Printf("bus protocol FSM: %d states, %d binary input, %d symbolic input (%d values), %d outputs\n\n",
		st.States, st.Inputs, st.SymIns, len(fsm.SymIns[0].Values), st.Outputs)

	// Both the states and the symbolic command get constraints.
	stateICs, symICs, err := nova.Constraints(fsm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("state constraints:")
	for _, ic := range stateICs {
		fmt.Printf("  %s  weight %d\n", ic.Set, ic.Weight)
	}
	fmt.Println("command constraints:")
	for _, ic := range symICs[0] {
		fmt.Printf("  %s  weight %d\n", ic.Set, ic.Weight)
	}

	res, err := nova.Encode(fsm, nova.Options{Algorithm: nova.IOHybrid})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\niohybrid encoding (%d total bits):\n", res.Bits)
	fmt.Println("  states:")
	for i, name := range fsm.States {
		fmt.Printf("    %-8s %s\n", name, res.Assignment.States.CodeString(i))
	}
	fmt.Println("  command values:")
	for i, name := range fsm.SymIns[0].Values {
		fmt.Printf("    %-8s %s\n", name, res.Assignment.SymIns[0].CodeString(i))
	}
	fmt.Printf("product terms: %d, PLA area: %d\n", res.Cubes, res.Area)

	// Compare against leaving the command one-hot.
	oh, err := nova.Encode(fsm, nova.Options{Algorithm: nova.OneHot})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1-hot everything:  %d terms, area %d\n", oh.Cubes, oh.Area)

	if err := nova.Verify(fsm, res.Assignment); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nverified: encoded machine is equivalent to the table")
}
