package nova

import "testing"

// End-to-end tests of the symbolic proper-output extension (the future
// work announced in Section VII): symbolic outputs are encoded via
// output-covering analysis and verified by simulation.

func symOutMachine(t *testing.T) *FSM {
	t.Helper()
	f := NewFSM("micro", 2, 1)
	f.AddSymbolicOutput("aluop", "nopop", "addop", "subop", "mulop")
	add := func(in, ps, ns, out, op string) {
		t.Helper()
		if err := f.AddRowSym(in, nil, ps, ns, out, []string{op}); err != nil {
			t.Fatal(err)
		}
	}
	add("00", "fetch", "decode", "0", "nopop")
	add("01", "fetch", "decode", "0", "nopop")
	add("1-", "fetch", "fetch", "1", "nopop")
	add("-0", "decode", "alu1", "0", "addop")
	add("-1", "decode", "alu2", "0", "subop")
	add("0-", "alu1", "fetch", "1", "addop")
	add("1-", "alu1", "alu2", "0", "mulop")
	add("--", "alu2", "fetch", "1", "mulop")
	return f
}

func TestSymbolicOutputEndToEnd(t *testing.T) {
	f := symOutMachine(t)
	for _, alg := range []Algorithm{IHybrid, IGreedy, IOHybrid, OneHot, Random, KISS, MustangN} {
		res, err := Encode(f, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(res.Assignment.SymOuts) != 1 {
			t.Fatalf("%s: symbolic output not encoded", alg)
		}
		if !res.Assignment.SymOuts[0].Distinct() {
			t.Fatalf("%s: duplicate output codes", alg)
		}
		if err := Verify(f, res.Assignment); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
}

func TestSymbolicOutputAreaModel(t *testing.T) {
	f := symOutMachine(t)
	res, err := Encode(f, Options{Algorithm: IHybrid})
	if err != nil {
		t.Fatal(err)
	}
	outBits := res.Assignment.SymOuts[0].Bits
	wantArea := (2*(2+res.Assignment.States.Bits) + res.Assignment.States.Bits + 1 + outBits) * res.Cubes
	if res.Area != wantArea {
		t.Fatalf("area %d, want %d (symbolic output bits must count as outputs)", res.Area, wantArea)
	}
}

func TestSymbolicOutputBeatsOneHotOutputs(t *testing.T) {
	// Encoded symbolic outputs use fewer PLA columns than 1-hot outputs;
	// with comparable cube counts the area should not be worse.
	f := symOutMachine(t)
	enc, err := Encode(f, Options{Algorithm: Best})
	if err != nil {
		t.Fatal(err)
	}
	oh, err := Encode(f, Options{Algorithm: OneHot})
	if err != nil {
		t.Fatal(err)
	}
	if enc.Area > oh.Area {
		t.Fatalf("encoded outputs area %d worse than 1-hot %d", enc.Area, oh.Area)
	}
}
