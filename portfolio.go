package nova

// Portfolio mode: instead of picking one algorithm up front, race a
// roster of algorithm×seed candidates over the run's pool and keep the
// cheapest cover. The racing engine lives in internal/portfolio; this
// file owns the public configuration surface, the roster normalization
// shared with the wire layer, and the translation of roster members into
// race candidates.

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"nova/internal/encode"
	"nova/internal/kiss"
	"nova/internal/obs"
	"nova/internal/portfolio"
	"nova/internal/sched"
)

// PortfolioCandidate is one roster member of a portfolio run: an
// algorithm plus an optional seed split for restart diversity.
type PortfolioCandidate struct {
	// Algorithm is any non-portfolio member of Algorithms().
	Algorithm Algorithm
	// SeedSplit, when nonzero, derives this candidate's seed as
	// sched.SplitSeed(Options.Seed, SeedSplit), so several restarts of
	// one randomized searcher explore different tie-breaks while the
	// whole run stays a pure function of Options.Seed. Zero keeps
	// Options.Seed unchanged.
	SeedSplit int
}

// label renders the candidate for telemetry and cache keys: the
// algorithm name, "@split" appended for seed-split restarts.
func (c PortfolioCandidate) label() string {
	if c.SeedSplit == 0 {
		return string(c.Algorithm)
	}
	return string(c.Algorithm) + "@" + strconv.Itoa(c.SeedSplit)
}

// PortfolioConfig configures Algorithm Portfolio. The zero value (and a
// nil Options.Portfolio) selects the default roster with no hedging
// delay.
type PortfolioConfig struct {
	// Roster lists the candidates in pick-priority order: the winner is
	// the lowest final cover cost (PLA area), ties broken by the lowest
	// roster index. Empty selects DefaultRoster.
	Roster []PortfolioCandidate
	// MaxCandidates truncates the roster (0 = race everyone). It is part
	// of the result-determining inputs: a truncated roster is a
	// different race.
	MaxCandidates int
	// HedgeDelay staggers the backups: the first candidate launches
	// immediately, the rest after the delay (or as soon as the primary
	// completes). Purely a scheduling knob — by the determinism rule it
	// never changes the returned cover, only wall-clock and how much
	// speculative work the race burns — so it is excluded from the wire
	// cache key.
	HedgeDelay time.Duration
}

// DefaultRoster is the roster a portfolio run races when none is given:
// the three main NOVA searchers plus the fast greedy heuristic, then
// seed-split restarts of the two randomized-fallback searchers.
func DefaultRoster() []PortfolioCandidate {
	return []PortfolioCandidate{
		{Algorithm: IHybrid},
		{Algorithm: IOHybrid},
		{Algorithm: IExact},
		{Algorithm: IGreedy},
		{Algorithm: IHybrid, SeedSplit: 1},
		{Algorithm: IOHybrid, SeedSplit: 2},
	}
}

// normalized resolves the config the race actually runs: the default
// roster when none was given, truncated to MaxCandidates. The wire cache
// key hashes exactly this roster, so requests that race the same
// candidates share cache entries regardless of how they spelled the
// config.
func (pc *PortfolioConfig) normalized() PortfolioConfig {
	out := PortfolioConfig{}
	if pc != nil {
		out = *pc
	}
	if len(out.Roster) == 0 {
		out.Roster = DefaultRoster()
	}
	if out.MaxCandidates > 0 && out.MaxCandidates < len(out.Roster) {
		out.Roster = out.Roster[:out.MaxCandidates]
	}
	out.MaxCandidates = 0 // folded into the roster above
	return out
}

// validate is the Options.Validate leg for the portfolio fields.
func (pc *PortfolioConfig) validate(bad func(format string, args ...any) error) error {
	if pc == nil {
		return nil
	}
	if len(pc.Roster) > portfolio.MaxCandidates {
		return bad("portfolio roster of %d exceeds %d candidates", len(pc.Roster), portfolio.MaxCandidates)
	}
	for i, c := range pc.Roster {
		if c.Algorithm == Portfolio {
			return bad("portfolio roster[%d] cannot nest the portfolio algorithm", i)
		}
		if c.Algorithm == "" || !algorithms[c.Algorithm] {
			return bad("portfolio roster[%d] has unknown algorithm %q", i, c.Algorithm)
		}
		if c.SeedSplit < 0 {
			return bad("portfolio roster[%d] SeedSplit %d is negative", i, c.SeedSplit)
		}
	}
	if pc.MaxCandidates < 0 {
		return bad("portfolio MaxCandidates %d is negative", pc.MaxCandidates)
	}
	if pc.HedgeDelay < 0 {
		return bad("portfolio HedgeDelay %v is negative", pc.HedgeDelay)
	}
	return nil
}

// areaLowerBound is a sound lower bound on the PLA area any encoding of
// f can cost: every variable needs at least its minimum code length, and
// when at least two distinct states appear as next states the minimized
// cover cannot be empty (distinct codes leave at most one state at
// code 0, so some specified transition drives a 1). The race uses it to
// prune candidates a finished sibling has already made pointless; a
// loose bound only costs pruning opportunities, never correctness.
func areaLowerBound(f *FSM) int64 {
	inBits, outBits := 0, 0
	for _, v := range f.SymIns {
		inBits += encode.MinLength(len(v.Values))
	}
	for _, v := range f.SymOuts {
		outBits += encode.MinLength(len(v.Values))
	}
	cubes := 0
	next := 0
	for _, used := range f.NextStateUsage() {
		if used > 0 {
			next++
		}
	}
	if next >= 2 {
		cubes = 1
	}
	return int64(kiss.Area(f.NI+inBits, encode.MinLength(f.NumStates()), f.NO+outBits, cubes))
}

// encodePortfolio races the roster over the run's pool under a shared
// best-cost bound and returns the deterministic winner: the candidate
// with the smallest final area, ties broken by roster order. Candidate
// failures (a gave-up iexact, an unencodable baseline) only lose the
// race; the run fails when every candidate failed. When the context
// dies mid-race the already-finished candidates still decide a winner —
// the hedged-serving "best cover within the deadline" behavior — and
// only a race with no finished candidate at all returns ErrCanceled.
func encodePortfolio(ctx context.Context, eng *engine, f *FSM, opt Options) (*Result, error) {
	pc := opt.Portfolio.normalized()
	lower := areaLowerBound(f)
	m := obs.MetricsFrom(ctx)
	cands := make([]portfolio.Candidate[*Result], len(pc.Roster))
	for i, c := range pc.Roster {
		o := opt
		o.Algorithm = c.Algorithm
		o.Portfolio = nil
		if c.SeedSplit != 0 {
			o.Seed = sched.SplitSeed(opt.Seed, c.SeedSplit)
		}
		label := c.label()
		cands[i] = portfolio.Candidate[*Result]{
			Label: label,
			Lower: lower,
			Run: func(ctx context.Context) (*Result, int64, error) {
				sctx, sp := obs.Span(ctx, "portfolio.candidate")
				sp.SetStr("candidate", label)
				r, err := encodeWith(sctx, eng, f, o)
				if sp != nil {
					sp.SetStr("outcome", outcomeOf(err))
					if r != nil {
						sp.SetInt("area", int64(r.Area))
					}
					sp.End()
				}
				if err != nil {
					return nil, 0, err
				}
				return r, int64(r.Area), nil
			},
		}
	}
	out, win := portfolio.Race(ctx, eng.pool, cands, portfolio.Options{
		HedgeDelay: pc.HedgeDelay,
		Metrics:    m,
	})
	if win < 0 {
		if err := ctx.Err(); err != nil {
			return nil, canceledErr(err)
		}
		errs := make([]error, 0, len(out))
		for i, o := range out {
			if o.Err != nil {
				errs = append(errs, fmt.Errorf("%s: %w", pc.Roster[i].label(), o.Err))
			}
		}
		return nil, fmt.Errorf("nova: portfolio: every candidate failed: %w", errors.Join(errs...))
	}
	res := out[win].Value
	res.Algorithm = Portfolio
	res.Winner = pc.Roster[win].Algorithm
	res.WinnerSeedSplit = pc.Roster[win].SeedSplit
	m.Add("portfolio.winner."+pc.Roster[win].label(), 1)
	return res, nil
}
