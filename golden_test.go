package nova_test

// Golden regression corpus: the encoded-PLA product-term and literal
// counts of every benchmark FSM and every example FSM are pinned to
// testdata/golden/encoded.golden. Perf work on the minimizer hot path
// (arenas, word-parallel pruning, memoization) must not change what the
// minimizer produces; this test fails on any drift. Regenerate
// deliberately with
//
//	go test -run TestGoldenEncodedPLA -update
//
// and review the diff like any other behaviour change.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nova"
	"nova/internal/bench"
)

var update = flag.Bool("update", false, "rewrite golden files")

const goldenFile = "testdata/golden/encoded.golden"

// goldenFastSubset bounds the -short run to seconds.
var goldenFastSubset = map[string]bool{
	"bbtas": true, "dk27": true, "shiftreg": true, "train11": true,
	"ex3": true, "beecount": true, "dk15": true, "lion": true,
	"traffic": true, "bus": true, "quickstart": true, "microseq": true,
}

// exampleFSMs rebuilds the machines of examples/ (the tables are pinned
// here so the corpus does not depend on running main packages).
func exampleFSMs(t testing.TB) []*nova.FSM {
	traffic := nova.NewFSM("traffic", 3, 7)
	traffic.MustAddRow("0--", "hgreen", "hgreen", "1000010")
	traffic.MustAddRow("-0-", "hgreen", "hgreen", "1000010")
	traffic.MustAddRow("11-", "hgreen", "hyellow", "0100011")
	traffic.MustAddRow("--0", "hyellow", "hyellow", "0100010")
	traffic.MustAddRow("--1", "hyellow", "fgreen", "0011001")
	traffic.MustAddRow("1-0", "fgreen", "fgreen", "0011000")
	traffic.MustAddRow("0--", "fgreen", "fyellow", "0010101")
	traffic.MustAddRow("--1", "fgreen", "fyellow", "0010101")
	traffic.MustAddRow("1-1", "fgreen", "fyellow", "0010101")
	traffic.MustAddRow("--0", "fyellow", "fyellow", "0010100")
	traffic.MustAddRow("--1", "fyellow", "hgreen", "1000011")
	traffic.SetReset("hgreen")

	bus := nova.NewFSM("bus", 1, 3)
	bus.AddSymbolicInput("cmd", "read", "write", "burst", "idlecmd")
	bus.MustAddRow("-", "idle", "raddr", "000", "read")
	bus.MustAddRow("-", "idle", "waddr", "000", "write")
	bus.MustAddRow("-", "idle", "raddr", "000", "burst")
	bus.MustAddRow("-", "idle", "idle", "000", "idlecmd")
	bus.MustAddRow("0", "raddr", "raddr", "010", "-")
	bus.MustAddRow("1", "raddr", "rdata", "011", "-")
	bus.MustAddRow("0", "waddr", "waddr", "010", "-")
	bus.MustAddRow("1", "waddr", "wdata", "010", "-")
	bus.MustAddRow("0", "rdata", "rdata", "011", "-")
	bus.MustAddRow("1", "rdata", "idle", "111", "-")
	bus.MustAddRow("0", "wdata", "wdata", "010", "-")
	bus.MustAddRow("1", "wdata", "idle", "110", "-")
	bus.SetReset("idle")

	quick, err := nova.ParseKISSString(`
.i 2
.o 2
.s 5
.r idle
0- idle  idle  00
1- idle  load  01
-0 load  run   01
-1 load  idle  00
00 run   run   10
01 run   done  10
1- run   idle  00
-- done  flush 11
0- flush idle  00
1- flush load  01
.e
`)
	if err != nil {
		t.Fatalf("quickstart table: %v", err)
	}
	quick.Name = "quickstart"

	micro := nova.NewFSM("microseq", 2, 1)
	micro.AddSymbolicOutput("uop", "unop", "uload", "ustore", "ualu", "ubranch")
	madd := func(in, ps, ns, out, op string) {
		if err := micro.AddRowSym(in, nil, ps, ns, out, []string{op}); err != nil {
			t.Fatalf("microseq table: %v", err)
		}
	}
	madd("00", "ifetch", "ifetch", "0", "unop")
	madd("01", "ifetch", "opread", "0", "uload")
	madd("1-", "ifetch", "branch", "0", "ubranch")
	madd("-0", "opread", "execute", "0", "ualu")
	madd("-1", "opread", "wback", "0", "ualu")
	madd("0-", "execute", "wback", "1", "ualu")
	madd("1-", "execute", "execute", "0", "ualu")
	madd("--", "wback", "ifetch", "1", "ustore")
	madd("-1", "branch", "ifetch", "0", "unop")
	madd("-0", "branch", "branch", "0", "ubranch")
	micro.SetReset("ifetch")

	return []*nova.FSM{traffic, bus, quick, micro}
}

// goldenLine measures one machine under the pinned configuration:
// ihybrid at the minimum length with seed 1, serial (the determinism
// guarantee makes Parallelism irrelevant to the result).
func goldenLine(t testing.TB, f *nova.FSM) string {
	res, err := nova.Encode(f, nova.Options{Algorithm: nova.IHybrid, Seed: 1, KeepPLA: true, Parallelism: 1})
	if err != nil {
		t.Fatalf("%s: encode: %v", f.Name, err)
	}
	inLits, outLits := 0, 0
	for _, r := range res.PLA.Rows {
		inLits += len(r.In) - strings.Count(r.In, "-")
		outLits += strings.Count(r.Out, "1")
	}
	return fmt.Sprintf("%-12s bits=%d cubes=%d inlits=%d outlits=%d area=%d",
		f.Name, res.Bits, res.Cubes, inLits, outLits, res.Area)
}

func TestGoldenEncodedPLA(t *testing.T) {
	var machines []*nova.FSM
	for _, e := range bench.Suite() {
		machines = append(machines, e.F)
	}
	machines = append(machines, exampleFSMs(t)...)

	want := map[string]string{}
	var order []string
	if data, err := os.ReadFile(goldenFile); err == nil {
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line == "" {
				continue
			}
			name := strings.Fields(line)[0]
			want[name] = line
			order = append(order, name)
		}
	} else if !*update {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	_ = order

	got := map[string]string{}
	for _, f := range machines {
		if testing.Short() && !*update && !goldenFastSubset[f.Name] {
			continue
		}
		got[f.Name] = goldenLine(t, f)
	}

	if *update {
		var b strings.Builder
		b.WriteString("# Encoded-PLA regression corpus: ihybrid, seed 1, minimum length.\n")
		b.WriteString("# Regenerate with: go test -run TestGoldenEncodedPLA -update\n")
		for _, f := range machines {
			b.WriteString(got[f.Name])
			b.WriteByte('\n')
		}
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d machines)", goldenFile, len(machines))
		return
	}

	for _, f := range machines {
		g, ok := got[f.Name]
		if !ok {
			continue // skipped under -short
		}
		w, ok := want[f.Name]
		if !ok {
			t.Errorf("%s: missing from golden file (regenerate with -update)", f.Name)
			continue
		}
		if g != w {
			t.Errorf("%s: minimization drift\n  golden: %s\n  got:    %s", f.Name, w, g)
		}
	}
}
