module nova

go 1.22
