//go:build !race

package nova_test

// raceEnabled is false in a regular build; see race_enabled_test.go.
const raceEnabled = false
