package main

// The -portfolio mode: quality-vs-wallclock rows for the portfolio
// encoder over the Table II/IV/VI machines. For every machine the
// portfolio race (Parallelism >= 4) is timed against each single roster
// algorithm run alone; the snapshot records whether the race matched the
// best single-algorithm cover and how its wall-clock compares to the
// fastest roster member. The rows land in the same BENCH_<date>.json the
// -json mode writes, under the "portfolio" key.

import (
	"context"
	"fmt"
	"time"

	"nova"
	"nova/internal/experiments"
)

// portfolioRow is one machine's quality-vs-wallclock measurement.
type portfolioRow struct {
	Machine string `json:"machine"`
	// Winner is the roster member whose cover the race returned
	// ("algorithm" or "algorithm@split" for a seed-split restart).
	Winner string `json:"winner"`
	Area   int    `json:"area"`
	Cubes  int    `json:"cubes"`
	// BestSingle* describe the best cover any single roster algorithm
	// found on its own with the same options.
	BestSingleAlgorithm string `json:"best_single_algorithm"`
	BestSingleArea      int    `json:"best_single_area"`
	// AreaVsBestSingle is Area / BestSingleArea; the acceptance bar is
	// <= 1.0 (the race never returns a worse cover than its members).
	AreaVsBestSingle float64 `json:"area_vs_best_single"`
	PortfolioNs      int64   `json:"portfolio_ns"`
	// FastestSingle* describe the quickest standalone roster algorithm —
	// the wall-clock the portfolio's hedging is paying against.
	FastestSingleAlgorithm string  `json:"fastest_single_algorithm"`
	FastestSingleNs        int64   `json:"fastest_single_ns"`
	WallclockVsFastest     float64 `json:"wallclock_vs_fastest"`
}

// portfolioOptions is the option set every portfolio-vs-singles
// measurement runs under: parallel enough for the race to overlap
// candidates (the quality-vs-wallclock comparison assumes Parallelism
// >= 4), same seed and budget on both sides.
func portfolioOptions(o experiments.RunOpts) nova.Options {
	par := o.Parallel
	if par < 4 {
		par = 4
	}
	return nova.Options{
		Seed:         o.Seed,
		FastMinimize: o.FastMinimize,
		MaxWork:      o.ExactBudget,
		Parallelism:  par,
	}
}

// measurePortfolio builds the quality-vs-wallclock rows: one portfolio
// race and one standalone run per distinct roster algorithm, per
// machine, all timed.
func measurePortfolio(opts experiments.RunOpts) ([]portfolioRow, error) {
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	base := portfolioOptions(opts)
	// The standalone comparison covers each distinct base algorithm of
	// the roster once; seed-split restarts are portfolio-internal.
	var singles []nova.Algorithm
	seen := map[nova.Algorithm]bool{}
	for _, c := range nova.DefaultRoster() {
		if !seen[c.Algorithm] {
			seen[c.Algorithm] = true
			singles = append(singles, c.Algorithm)
		}
	}
	var rows []portfolioRow
	for _, f := range opts.Machines() {
		opt := base
		opt.Algorithm = nova.Portfolio
		start := time.Now()
		res, err := nova.EncodeContext(ctx, f, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: portfolio: %w", f.Name, err)
		}
		row := portfolioRow{
			Machine:     f.Name,
			Winner:      string(res.Winner),
			Area:        res.Area,
			Cubes:       res.Cubes,
			PortfolioNs: time.Since(start).Nanoseconds(),
		}
		if res.WinnerSeedSplit != 0 {
			row.Winner = fmt.Sprintf("%s@%d", res.Winner, res.WinnerSeedSplit)
		}
		for _, alg := range singles {
			opt := base
			opt.Algorithm = alg
			start := time.Now()
			single, err := nova.EncodeContext(ctx, f, opt)
			if err != nil {
				// A gave-up candidate loses the race; it drops out of the
				// standalone comparison the same way.
				continue
			}
			ns := time.Since(start).Nanoseconds()
			if row.BestSingleArea == 0 || single.Area < row.BestSingleArea {
				row.BestSingleAlgorithm = string(alg)
				row.BestSingleArea = single.Area
			}
			if row.FastestSingleNs == 0 || ns < row.FastestSingleNs {
				row.FastestSingleAlgorithm = string(alg)
				row.FastestSingleNs = ns
			}
		}
		if row.BestSingleArea > 0 {
			row.AreaVsBestSingle = float64(row.Area) / float64(row.BestSingleArea)
		}
		if row.FastestSingleNs > 0 {
			row.WallclockVsFastest = float64(row.PortfolioNs) / float64(row.FastestSingleNs)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
