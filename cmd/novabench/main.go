// Command novabench regenerates the tables and figures of the NOVA paper's
// evaluation (Section VII) on the built-in benchmark suite.
//
// Usage:
//
//	novabench [-table N] [-only name,name] [-skip-huge] [-fast] [-seed S]
//	          [-json] [-portfolio] [-count N] [-phase-table] [-trace out.json]
//	          [-cpuprofile f] [-memprofile f]
//	novabench -compare OLD.json,NEW.json [-area-tol 0] [-time-tol 25]
//	novabench -serve-url http://host:8089 [-client-alg igreedy] [-client-hedge 20ms]
//	          [-client-priority low|high] [-only name,name] [-skip-huge] [-count N]
//
// -serve-url switches novabench into a client-mode load generator: the
// benchmark corpus is sent to a running novad through the resilient
// nova/client package (retries, optional hedging, circuit breaker) and
// the run report includes the client's resilience counters. Pair it
// with novad -fault-inject for reproducible chaos runs.
//
// With no -table flag every experiment runs in order. Table numbers follow
// the paper: 1-7 are Tables I-VII, 8-10 are the plot series the paper
// prints as Tables VIII-X.
//
// -compare diffs two BENCH_<date>.json snapshots (written by -json /
// -portfolio) and exits 1 when the candidate regressed: encoded area
// grown past -area-tol percent on any machine/algorithm pair, or table
// wall-clock grown past -time-tol percent. CI runs it non-blocking
// against the committed baseline.
//
// -phase-table prints a per-machine breakdown of where the wall time went
// (espresso / search / symbolic / mvmin) after the tables, -trace streams
// every pipeline phase as JSON lines, and -cpuprofile/-memprofile write
// runtime/pprof profiles of the whole sweep.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"nova"
	"nova/internal/experiments"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	table := flag.Int("table", 0, "table/figure to regenerate (1..10, 0 = all)")
	only := flag.String("only", "", "comma-separated benchmark names to restrict to")
	skipHuge := flag.Bool("skip-huge", false, "skip the time-intensive machines (scf, tbk)")
	fast := flag.Bool("fast", false, "use the faster single-pass minimizer")
	seed := flag.Int64("seed", 1, "seed for the random baselines")
	par := flag.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS)")
	intra := flag.Int("intra", 0, "intra-problem parallelism per encode (0/1 = serial inside each problem)")
	jsonSnap := flag.Bool("json", false, "measure tables II/IV/VI serial vs intra-parallel and write BENCH_<date>.json")
	pfSnap := flag.Bool("portfolio", false, "measure the portfolio race vs single algorithms and write BENCH_<date>.json (combines with -json)")
	count := flag.Int("count", 1, "repetitions per -json table measurement; the snapshot reports the mean (what -compare reads) and the min")
	exactBudget := flag.Int("exact-budget", 1_500_000, "iexact work budget per machine (0 = library default)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this long (0 = no limit)")
	phaseTable := flag.Bool("phase-table", false, "print a per-machine phase time breakdown after the tables")
	tracePath := flag.String("trace", "", "write a JSON-lines phase trace to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the sweep to this file")
	serveURL := flag.String("serve-url", "", "drive a running novad at this URL instead of encoding in-process (client-mode load generator; honors -only, -skip-huge, -count)")
	clientAlg := flag.String("client-alg", "igreedy", "algorithm requested per machine in -serve-url mode")
	clientHedge := flag.Duration("client-hedge", 0, "hedge delay in -serve-url mode (0 = hedging off)")
	clientPriority := flag.String("client-priority", "", "X-Nova-Priority in -serve-url mode (low or high)")
	compare := flag.String("compare", "", "OLD.json,NEW.json: diff two BENCH snapshots and exit 1 on area/wall-clock regressions")
	areaTol := flag.Float64("area-tol", 0, "allowed area growth in percent before -compare fails (encodes are deterministic; default 0)")
	timeTol := flag.Float64("time-tol", 25, "allowed table wall-clock growth in percent before -compare fails")
	flag.Parse()

	if *compare != "" {
		return compareMain(*compare, *areaTol, *timeTol)
	}

	// ^C (or the -timeout deadline) cancels in-flight encodes promptly:
	// the context reaches the backtracking searches and espresso loops.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *serveURL != "" {
		cf := clientFlags{
			url:       *serveURL,
			algorithm: *clientAlg,
			skipHuge:  *skipHuge,
			hedge:     *clientHedge,
			priority:  *clientPriority,
			budget:    2 * time.Minute,
			count:     *count,
		}
		if *only != "" {
			cf.only = strings.Split(*only, ",")
		}
		return clientMain(ctx, cf)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "novabench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "novabench:", err)
			}
		}()
	}

	opts := experiments.RunOpts{
		Ctx:          ctx,
		SkipHuge:     *skipHuge,
		Seed:         *seed,
		FastMinimize: *fast,
		Parallel:     *par,
		Intra:        *intra,
		ExactBudget:  *exactBudget,
		Observe:      *phaseTable,
	}
	if *only != "" {
		opts.Only = strings.Split(*only, ",")
	}
	if *jsonSnap || *pfSnap {
		name, err := writeBenchJSON(opts, *intra, *count, *jsonSnap, *pfSnap)
		if err != nil {
			return fail(err)
		}
		fmt.Println("wrote", name)
		return 0
	}
	var traceFile *os.File
	var traceBuf *bufio.Writer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return fail(err)
		}
		traceFile, traceBuf = f, bufio.NewWriter(f)
		opts.TraceWriter = traceBuf
	}
	r := experiments.NewRunner(opts)

	// The phase table and the trace flush are deferred so that an
	// interrupted sweep still reports whatever it measured. Order
	// matters: the telemetry snapshot (inside PhaseTable) is taken
	// first, then the partial results are flushed — the trace file
	// always ends as valid, complete JSON lines.
	defer func() {
		if *phaseTable {
			if rows := r.PhaseTable(); len(rows) > 0 {
				fmt.Println("PHASE TABLE — self time per pipeline stage")
				fmt.Println(experiments.FormatPhaseTable(rows))
			}
		}
		if traceBuf != nil {
			traceBuf.Flush()
			traceFile.Close()
		}
	}()

	// Fill the result cache through the concurrent batch API: the tables
	// below then mostly read memoized results. iexact is left to the
	// per-table path: a give-up there is just a per-machine entry in the
	// joined batch error, but the tables want their own budgeted runs and
	// render a "-" entry for machines that still give up.
	if *table != 1 {
		prewarm := []nova.Algorithm{nova.IHybrid, nova.IGreedy, nova.IOHybrid, nova.KISS, nova.Random}
		if err := r.Prewarm(ctx, prewarm...); err != nil {
			return fail(fmt.Errorf("prewarm: %w", err))
		}
	}

	run := func(n int) error {
		start := time.Now()
		var out string
		var err error
		switch n {
		case 1:
			out = experiments.FormatTableI(r.TableI())
		case 2:
			var rows []experiments.RowII
			rows, err = r.TableII()
			out = experiments.FormatTableII(rows)
		case 3:
			var rows []experiments.RowIII
			rows, err = r.TableIII()
			out = experiments.FormatTableIII(rows)
		case 4:
			var rows []experiments.RowIV
			rows, err = r.TableIV()
			out = experiments.FormatTableIV(rows)
		case 5:
			var rows []experiments.RowV
			rows, err = r.TableV()
			out = experiments.FormatTableV(rows)
		case 6:
			var rows []experiments.RowVI
			rows, err = r.TableVI()
			out = experiments.FormatTableVI(rows)
		case 7:
			var rows []experiments.RowVII
			rows, err = r.TableVII()
			out = experiments.FormatTableVII(rows)
		case 8:
			var pts []experiments.RatioPoint
			pts, err = r.FigureVIII()
			out = experiments.FormatFigure("TABLE VIII — SUMMARY OF NOVA vs KISS AND RANDOM", pts)
		case 9:
			var pts []experiments.RatioPoint
			pts, err = r.FigureIX()
			out = experiments.FormatFigure("TABLE IX — ihybrid AND iohybrid OVER BEST OF NOVA", pts)
		case 10:
			var pts []experiments.RatioPoint
			pts, err = r.FigureX()
			out = experiments.FormatFigure("TABLE X — MUSTANG OVER NOVA (cubes AND literals)", pts)
		default:
			return fmt.Errorf("unknown table %d", n)
		}
		if err != nil {
			return err
		}
		fmt.Println(out)
		fmt.Printf("[table %d regenerated in %v]\n\n", n, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if *table != 0 {
		if err := run(*table); err != nil {
			return fail(err)
		}
		return 0
	}
	for n := 1; n <= 10; n++ {
		if err := run(n); err != nil {
			return fail(err)
		}
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "novabench:", err)
	return 1
}
