// Command novabench regenerates the tables and figures of the NOVA paper's
// evaluation (Section VII) on the built-in benchmark suite.
//
// Usage:
//
//	novabench [-table N] [-only name,name] [-skip-huge] [-fast] [-seed S]
//
// With no -table flag every experiment runs in order. Table numbers follow
// the paper: 1-7 are Tables I-VII, 8-10 are the plot series the paper
// prints as Tables VIII-X.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"nova"
	"nova/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "table/figure to regenerate (1..10, 0 = all)")
	only := flag.String("only", "", "comma-separated benchmark names to restrict to")
	skipHuge := flag.Bool("skip-huge", false, "skip the time-intensive machines (scf, tbk)")
	fast := flag.Bool("fast", false, "use the faster single-pass minimizer")
	seed := flag.Int64("seed", 1, "seed for the random baselines")
	par := flag.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS)")
	exactBudget := flag.Int("exact-budget", 1_500_000, "iexact work budget per machine (0 = library default)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this long (0 = no limit)")
	flag.Parse()

	// ^C (or the -timeout deadline) cancels in-flight encodes promptly:
	// the context reaches the backtracking searches and espresso loops.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := experiments.RunOpts{
		Ctx:          ctx,
		SkipHuge:     *skipHuge,
		Seed:         *seed,
		FastMinimize: *fast,
		Parallel:     *par,
		ExactBudget:  *exactBudget,
	}
	if *only != "" {
		opts.Only = strings.Split(*only, ",")
	}
	r := experiments.NewRunner(opts)

	// Fill the result cache through the concurrent batch API: the tables
	// below then mostly read memoized results. iexact is left to the
	// per-table path because its give-up on the hardest machines would
	// abort a batch; the tables render it as a "-" entry instead.
	if *table != 1 {
		prewarm := []nova.Algorithm{nova.IHybrid, nova.IGreedy, nova.IOHybrid, nova.KISS, nova.Random}
		if err := r.Prewarm(ctx, prewarm...); err != nil {
			fmt.Fprintln(os.Stderr, "novabench: prewarm:", err)
			os.Exit(1)
		}
	}

	run := func(n int) error {
		start := time.Now()
		var out string
		var err error
		switch n {
		case 1:
			out = experiments.FormatTableI(r.TableI())
		case 2:
			var rows []experiments.RowII
			rows, err = r.TableII()
			out = experiments.FormatTableII(rows)
		case 3:
			var rows []experiments.RowIII
			rows, err = r.TableIII()
			out = experiments.FormatTableIII(rows)
		case 4:
			var rows []experiments.RowIV
			rows, err = r.TableIV()
			out = experiments.FormatTableIV(rows)
		case 5:
			var rows []experiments.RowV
			rows, err = r.TableV()
			out = experiments.FormatTableV(rows)
		case 6:
			var rows []experiments.RowVI
			rows, err = r.TableVI()
			out = experiments.FormatTableVI(rows)
		case 7:
			var rows []experiments.RowVII
			rows, err = r.TableVII()
			out = experiments.FormatTableVII(rows)
		case 8:
			var pts []experiments.RatioPoint
			pts, err = r.FigureVIII()
			out = experiments.FormatFigure("TABLE VIII — SUMMARY OF NOVA vs KISS AND RANDOM", pts)
		case 9:
			var pts []experiments.RatioPoint
			pts, err = r.FigureIX()
			out = experiments.FormatFigure("TABLE IX — ihybrid AND iohybrid OVER BEST OF NOVA", pts)
		case 10:
			var pts []experiments.RatioPoint
			pts, err = r.FigureX()
			out = experiments.FormatFigure("TABLE X — MUSTANG OVER NOVA (cubes AND literals)", pts)
		default:
			return fmt.Errorf("unknown table %d", n)
		}
		if err != nil {
			return err
		}
		fmt.Println(out)
		fmt.Printf("[table %d regenerated in %v]\n\n", n, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if *table != 0 {
		if err := run(*table); err != nil {
			fmt.Fprintln(os.Stderr, "novabench:", err)
			os.Exit(1)
		}
		return
	}
	for n := 1; n <= 10; n++ {
		if err := run(n); err != nil {
			fmt.Fprintln(os.Stderr, "novabench:", err)
			os.Exit(1)
		}
	}
}
