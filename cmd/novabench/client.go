package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"nova"
	"nova/client"
	"nova/internal/bench"
)

// clientFlags are the -serve-url load-generator knobs.
type clientFlags struct {
	url       string
	algorithm string
	only      []string
	skipHuge  bool
	hedge     time.Duration
	priority  string
	budget    time.Duration
	count     int
}

// clientMain is novabench's client mode: instead of encoding
// in-process it drives a running novad with the benchmark corpus
// through the resilient nova/client — a reproducible load generator
// for chaos and soak testing (pair it with novad -fault-inject). Each
// machine is one encode request; repetitions after the first should be
// served from the daemon's content-addressed cache. The run report
// includes the client's resilience counters, so an operator sees how
// many retries, hedges and breaker events the workload cost.
func clientMain(ctx context.Context, cf clientFlags) int {
	c, err := client.New(client.Config{
		BaseURL:    cf.url,
		Budget:     cf.budget,
		MaxRetries: 5,
		HedgeDelay: cf.hedge,
		Priority:   cf.priority,
	})
	if err != nil {
		return fail(err)
	}
	if err := c.Healthz(ctx); err != nil {
		return fail(fmt.Errorf("server not healthy: %w", err))
	}

	only := map[string]bool{}
	for _, name := range cf.only {
		only[name] = true
	}
	var entries []bench.Entry
	for _, e := range bench.Suite() {
		if cf.skipHuge && e.Huge {
			continue
		}
		if len(only) > 0 && !only[e.Name] {
			continue
		}
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		return fail(fmt.Errorf("no benchmark machines match -only %s", strings.Join(cf.only, ",")))
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "machine\tbits\tcubes\tarea\tlatency")
	failures := 0
	start := time.Now()
	for rep := 0; rep < cf.count; rep++ {
		for _, e := range entries {
			rq := nova.Request{
				KISS2:     e.F.String(),
				Name:      e.Name,
				Algorithm: nova.Algorithm(cf.algorithm),
			}
			t0 := time.Now()
			rp, err := c.Encode(ctx, rq)
			lat := time.Since(t0).Round(time.Millisecond)
			if err != nil {
				failures++
				fmt.Fprintf(w, "%s\t-\t-\t-\t%v\t%v\n", e.Name, lat, err)
				continue
			}
			if rep == 0 {
				fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%v\n", e.Name, rp.Bits, rp.Cubes, rp.Area, lat)
			}
		}
	}
	w.Flush()

	requests := cf.count * len(entries)
	fmt.Printf("\n%d requests against %s in %v (%d failed)\n",
		requests, cf.url, time.Since(start).Round(time.Millisecond), failures)
	vars := c.Vars()
	keys := make([]string, 0, len(vars))
	for k := range vars {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("client counters:")
	for _, k := range keys {
		fmt.Printf("  %-28s %d\n", k, vars[k])
	}
	fmt.Println("breaker:", c.BreakerState())
	if failures > 0 {
		return 1
	}
	return 0
}
