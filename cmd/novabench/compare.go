package main

// The -compare mode: diff two BENCH_<date>.json snapshots and fail (exit
// 1) on regressions — encoded area growing past -area-tol, or table
// wall-clock growing past -time-tol. Area regressions are the signal
// (encodes are deterministic, so any growth is a real quality change);
// wall-clock carries scheduling noise, hence the generous default
// tolerance and the non-blocking CI job that runs this against the
// committed baseline.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"nova"
)

// compareReport is the outcome of one snapshot diff: human-readable
// lines for everything compared, plus the subset that regressed.
type compareReport struct {
	lines       []string
	regressions []string
}

func (r *compareReport) notef(format string, args ...any) {
	r.lines = append(r.lines, fmt.Sprintf(format, args...))
}

func (r *compareReport) regressf(format string, args ...any) {
	s := fmt.Sprintf(format, args...)
	r.lines = append(r.lines, "REGRESSION "+s)
	r.regressions = append(r.regressions, s)
}

func readSnapshot(path string) (*benchSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap benchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

// pctDelta is the growth of cur over base in percent (positive = worse
// for costs like area and wall-clock).
func pctDelta(base, cur int64) float64 {
	if base <= 0 {
		return 0
	}
	return float64(cur-base) / float64(base) * 100
}

// compareSnapshots diffs new against old. Sections absent from either
// snapshot are skipped with a note: the committed baseline may predate
// -portfolio, and a tables-only baseline still gates the table timings.
func compareSnapshots(oldSnap, newSnap *benchSnapshot, areaTolPct, timeTolPct float64) *compareReport {
	r := &compareReport{}
	r.notef("baseline %s (%s) vs candidate %s (%s)",
		oldSnap.Date, oldSnap.GoVersion, newSnap.Date, newSnap.GoVersion)

	compareTables(r, oldSnap.Tables, newSnap.Tables, timeTolPct)
	compareResults(r, oldSnap.Results, newSnap.Results, areaTolPct)
	comparePortfolio(r, oldSnap.Portfolio, newSnap.Portfolio, areaTolPct)
	return r
}

func compareTables(r *compareReport, oldT, newT []tableBench, timeTolPct float64) {
	if len(oldT) == 0 || len(newT) == 0 {
		r.notef("tables: skipped (baseline has %d, candidate has %d)", len(oldT), len(newT))
		return
	}
	base := make(map[string]tableBench, len(oldT))
	for _, tb := range oldT {
		base[tb.Table] = tb
	}
	for _, tb := range newT {
		ob, ok := base[tb.Table]
		if !ok {
			r.notef("%s: new table, no baseline", tb.Table)
			continue
		}
		for _, m := range []struct {
			name      string
			base, cur int64
		}{
			{"serial", ob.SerialNsOp, tb.SerialNsOp},
			{"intra", ob.IntraNsOp, tb.IntraNsOp},
		} {
			d := pctDelta(m.base, m.cur)
			if d > timeTolPct {
				r.regressf("%s %s wall-clock %+.1f%% (%.3fs -> %.3fs, tol %.0f%%)",
					tb.Table, m.name, d, float64(m.base)/1e9, float64(m.cur)/1e9, timeTolPct)
			} else {
				r.notef("%s %s wall-clock %+.1f%% (%.3fs -> %.3fs)",
					tb.Table, m.name, d, float64(m.base)/1e9, float64(m.cur)/1e9)
			}
		}
	}
}

func compareResults(r *compareReport, oldR, newR []nova.Response, areaTolPct float64) {
	if len(oldR) == 0 || len(newR) == 0 {
		r.notef("results: skipped (baseline has %d, candidate has %d)", len(oldR), len(newR))
		return
	}
	base := make(map[string]nova.Response, len(oldR))
	for _, resp := range oldR {
		if resp.Error == "" {
			base[resp.Machine+"/"+string(resp.Algorithm)] = resp
		}
	}
	keys := make([]string, 0, len(newR))
	byKey := make(map[string]nova.Response, len(newR))
	for _, resp := range newR {
		if resp.Error != "" {
			continue
		}
		k := resp.Machine + "/" + string(resp.Algorithm)
		keys = append(keys, k)
		byKey[k] = resp
	}
	sort.Strings(keys)
	worse, better, same := 0, 0, 0
	for _, k := range keys {
		ob, ok := base[k]
		if !ok {
			continue
		}
		resp := byKey[k]
		d := pctDelta(int64(ob.Area), int64(resp.Area))
		switch {
		case d > areaTolPct:
			worse++
			r.regressf("%s area %+.1f%% (%d -> %d, tol %.1f%%)", k, d, ob.Area, resp.Area, areaTolPct)
		case resp.Area < ob.Area:
			better++
		default:
			same++
		}
	}
	r.notef("results: %d compared, %d improved, %d unchanged, %d regressed",
		worse+better+same, better, same, worse)
}

func comparePortfolio(r *compareReport, oldP, newP []portfolioRow, areaTolPct float64) {
	if len(oldP) == 0 || len(newP) == 0 {
		r.notef("portfolio: skipped (baseline has %d, candidate has %d)", len(oldP), len(newP))
		return
	}
	base := make(map[string]portfolioRow, len(oldP))
	for _, row := range oldP {
		base[row.Machine] = row
	}
	for _, row := range newP {
		ob, ok := base[row.Machine]
		if !ok {
			continue
		}
		d := pctDelta(int64(ob.Area), int64(row.Area))
		if d > areaTolPct {
			r.regressf("portfolio %s area %+.1f%% (%d -> %d, tol %.1f%%)",
				row.Machine, d, ob.Area, row.Area, areaTolPct)
		} else {
			r.notef("portfolio %s area %+.1f%% (%d -> %d, winner %s -> %s)",
				row.Machine, d, ob.Area, row.Area, ob.Winner, row.Winner)
		}
	}
}

// compareMain implements -compare OLD.json,NEW.json. Exit status 0 means
// no regression past the tolerances; 1 means regressions (listed on
// stdout); 2 means the snapshots could not be read.
func compareMain(arg string, areaTolPct, timeTolPct float64) int {
	oldPath, newPath, ok := strings.Cut(arg, ",")
	if !ok || oldPath == "" || newPath == "" {
		fmt.Fprintln(os.Stderr, "novabench: -compare wants OLD.json,NEW.json")
		return 2
	}
	oldSnap, err := readSnapshot(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "novabench:", err)
		return 2
	}
	newSnap, err := readSnapshot(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "novabench:", err)
		return 2
	}
	r := compareSnapshots(oldSnap, newSnap, areaTolPct, timeTolPct)
	for _, line := range r.lines {
		fmt.Println(line)
	}
	if len(r.regressions) > 0 {
		fmt.Printf("FAIL: %d regression(s)\n", len(r.regressions))
		return 1
	}
	fmt.Println("OK: no regressions past tolerance")
	return 0
}
