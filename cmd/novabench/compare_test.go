package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nova"
)

func writeSnap(t *testing.T, dir, name string, snap benchSnapshot) string {
	t.Helper()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func baseSnapshot() benchSnapshot {
	return benchSnapshot{
		Date: "2026-08-01",
		Tables: []tableBench{
			{Table: "table-2", SerialNsOp: 1_000_000_000, IntraNsOp: 800_000_000},
		},
		Results: []nova.Response{
			{Machine: "dk14", Algorithm: nova.IGreedy, Area: 480, Cubes: 20},
			{Machine: "lion", Algorithm: nova.IExact, Area: 72, Cubes: 8},
			{Machine: "broken", Algorithm: nova.IGreedy, Error: "gave up", ErrorKind: nova.ErrKindGaveUp},
		},
		Portfolio: []portfolioRow{
			{Machine: "dk14", Winner: "ihybrid", Area: 460},
		},
	}
}

// TestCompareNoRegression: identical snapshots (and improvements) pass.
func TestCompareNoRegression(t *testing.T) {
	oldSnap := baseSnapshot()
	newSnap := baseSnapshot()
	newSnap.Results[0].Area = 470             // improvement
	newSnap.Tables[0].IntraNsOp = 900_000_000 // +12.5%, inside the 25% tolerance
	r := compareSnapshots(&oldSnap, &newSnap, 0, 25)
	if len(r.regressions) != 0 {
		t.Fatalf("unexpected regressions: %v", r.regressions)
	}
}

// TestCompareAreaRegression: any area growth past the tolerance fails,
// and the failed baseline entry (Error set) is excluded from the diff.
func TestCompareAreaRegression(t *testing.T) {
	oldSnap := baseSnapshot()
	newSnap := baseSnapshot()
	newSnap.Results[1].Area = 80 // +11% on lion/iexact
	r := compareSnapshots(&oldSnap, &newSnap, 0, 25)
	if len(r.regressions) != 1 {
		t.Fatalf("regressions = %v, want exactly the area one", r.regressions)
	}
	if !strings.Contains(r.regressions[0], "lion/iexact") || !strings.Contains(r.regressions[0], "72 -> 80") {
		t.Fatalf("regression line %q", r.regressions[0])
	}
	// A generous tolerance absorbs it.
	if r := compareSnapshots(&oldSnap, &newSnap, 15, 25); len(r.regressions) != 0 {
		t.Fatalf("tolerance not applied: %v", r.regressions)
	}
}

// TestCompareWallclockRegression: table time growth past -time-tol fails.
func TestCompareWallclockRegression(t *testing.T) {
	oldSnap := baseSnapshot()
	newSnap := baseSnapshot()
	newSnap.Tables[0].SerialNsOp = 1_400_000_000 // +40%
	r := compareSnapshots(&oldSnap, &newSnap, 0, 25)
	if len(r.regressions) != 1 || !strings.Contains(r.regressions[0], "table-2 serial") {
		t.Fatalf("regressions = %v", r.regressions)
	}
}

// TestComparePortfolioRegression: the hedged race losing quality fails.
func TestComparePortfolioRegression(t *testing.T) {
	oldSnap := baseSnapshot()
	newSnap := baseSnapshot()
	newSnap.Portfolio[0].Area = 500
	r := compareSnapshots(&oldSnap, &newSnap, 0, 25)
	if len(r.regressions) != 1 || !strings.Contains(r.regressions[0], "portfolio dk14") {
		t.Fatalf("regressions = %v", r.regressions)
	}
}

// TestCompareSkipsMissingSections: a tables-only baseline (like the
// committed one, which predates -json carrying results) still compares
// the tables and skips the rest instead of failing.
func TestCompareSkipsMissingSections(t *testing.T) {
	oldSnap := benchSnapshot{Tables: []tableBench{{Table: "table-2", SerialNsOp: 1e9, IntraNsOp: 1e9}}}
	newSnap := baseSnapshot()
	r := compareSnapshots(&oldSnap, &newSnap, 0, 25)
	if len(r.regressions) != 0 {
		t.Fatalf("missing sections regressed: %v", r.regressions)
	}
	joined := strings.Join(r.lines, "\n")
	for _, want := range []string{"results: skipped", "portfolio: skipped", "table-2 serial wall-clock"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("report lacks %q:\n%s", want, joined)
		}
	}
}

// TestCompareMainExitCodes drives the CLI entry: 0 clean, 1 regression,
// 2 unreadable input.
func TestCompareMainExitCodes(t *testing.T) {
	dir := t.TempDir()
	oldSnap := baseSnapshot()
	newSnap := baseSnapshot()
	oldPath := writeSnap(t, dir, "old.json", oldSnap)
	cleanPath := writeSnap(t, dir, "clean.json", newSnap)
	newSnap.Results[0].Area = 9999
	badPath := writeSnap(t, dir, "bad.json", newSnap)

	if code := compareMain(oldPath+","+cleanPath, 0, 25); code != 0 {
		t.Fatalf("clean compare exited %d", code)
	}
	if code := compareMain(oldPath+","+badPath, 0, 25); code != 1 {
		t.Fatalf("regressed compare exited %d, want 1", code)
	}
	if code := compareMain(oldPath+","+filepath.Join(dir, "missing.json"), 0, 25); code != 2 {
		t.Fatalf("missing file exited %d, want 2", code)
	}
	if code := compareMain("justone.json", 0, 25); code != 2 {
		t.Fatalf("malformed arg exited %d, want 2", code)
	}
	// The committed baseline must stay parseable by this tool.
	if _, err := readSnapshot("../../BENCH_2026-08-06.json"); err != nil {
		t.Fatalf("committed baseline unreadable: %v", err)
	}
}
