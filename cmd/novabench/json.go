package main

// The -json mode: a machine-readable performance snapshot comparing the
// serial pipeline against the intra-parallel one (forked unate recursion
// plus speculative search fan-out) on the paper's core tables. The
// snapshot lands in BENCH_<date>.json next to the working directory, one
// file per day, suitable for archiving as a CI artifact.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"nova"
	"nova/internal/experiments"
)

// tableBench is one serial-vs-intra measurement of a table regeneration.
// With -count > 1 the ns_per_op fields hold the mean over the
// repetitions (so -compare keeps firing on means without schema
// changes) and the _min fields record the best single repetition.
type tableBench struct {
	Table        string  `json:"table"`
	SerialNsOp   int64   `json:"serial_ns_per_op"`
	SerialAllocs uint64  `json:"serial_allocs_per_op"`
	IntraNsOp    int64   `json:"intra_ns_per_op"`
	IntraAllocs  uint64  `json:"intra_allocs_per_op"`
	Speedup      float64 `json:"speedup_vs_serial"`
	AllocRatio   float64 `json:"intra_alloc_ratio"`
	Count        int     `json:"count,omitempty"`
	SerialNsMin  int64   `json:"serial_ns_per_op_min,omitempty"`
	IntraNsMin   int64   `json:"intra_ns_per_op_min,omitempty"`
}

type benchSnapshot struct {
	Date         string       `json:"date"`
	GoVersion    string       `json:"go_version"`
	NumCPU       int          `json:"num_cpu"`
	GOMAXPROCS   int          `json:"gomaxprocs"`
	IntraWorkers int          `json:"intra_workers"`
	Note         string       `json:"note"`
	Tables       []tableBench `json:"tables"`
	// Results carries the encode outcomes of the measured sweep through
	// the wire-stable nova.Response schema — the same serialization the
	// novad server emits, so downstream tooling parses one format.
	Results []nova.Response `json:"results,omitempty"`
	// Portfolio holds the -portfolio quality-vs-wallclock rows: the
	// hedged race against each single roster algorithm per machine.
	Portfolio []portfolioRow `json:"portfolio,omitempty"`
}

// measure runs fn once and reports its wall time and allocation count.
// One table regeneration is the "op": seconds of work, so a single run
// is a stable enough sample for a daily snapshot (and the encodes inside
// are deterministic — only scheduling varies between runs).
func measure(fn func() error) (ns int64, allocs uint64, err error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := fn(); err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed.Nanoseconds(), after.Mallocs - before.Mallocs, nil
}

// regenerate runs one table on a fresh runner (fresh result cache: the
// measurement must redo the encodes, not read memoized results). The
// runner is parked in *keep, so the caller can serialize its memoized
// results after the measurement.
func regenerate(opts experiments.RunOpts, table int, keep **experiments.Runner) func() error {
	return func() error {
		r := experiments.NewRunner(opts)
		if keep != nil {
			*keep = r
		}
		var err error
		switch table {
		case 2:
			_, err = r.TableII()
		case 4:
			_, err = r.TableIV()
		case 6:
			_, err = r.TableVI()
		default:
			err = fmt.Errorf("unsupported table %d", table)
		}
		return err
	}
}

// wireResults renders every memoized encode of the runner through the
// wire-stable Response type, in suite order with a fixed algorithm
// order, so the snapshot is deterministic.
func wireResults(opts experiments.RunOpts, r *experiments.Runner) []nova.Response {
	if r == nil {
		return nil
	}
	algs := []nova.Algorithm{nova.IExact, nova.IHybrid, nova.IGreedy, nova.IOHybrid}
	var out []nova.Response
	for _, f := range opts.Machines() {
		for _, alg := range algs {
			res := r.Memoized(f.Name, alg, 0)
			if res == nil {
				continue
			}
			out = append(out, *nova.ResponseOf(f, res))
		}
	}
	return out
}

// writeBenchJSON writes BENCH_<date>.json with the requested sections:
// withTables measures tables II, IV and VI serially and with
// intra-problem parallelism (count repetitions each, reporting mean and
// min); withPortfolio adds the portfolio quality-vs-wallclock rows over
// the same machines.
func writeBenchJSON(opts experiments.RunOpts, intraWorkers, count int, withTables, withPortfolio bool) (string, error) {
	if intraWorkers < 2 {
		intraWorkers = 8
	}
	if count < 1 {
		count = 1
	}
	snap := benchSnapshot{
		Date:         time.Now().Format("2006-01-02"),
		GoVersion:    runtime.Version(),
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		IntraWorkers: intraWorkers,
		Note: "speedup_vs_serial is wall-clock and needs spare CPUs to exceed 1.0; " +
			"on a host without them the intra run matches serial within noise while " +
			"staying byte-identical. allocs are process-wide Mallocs deltas per regeneration. " +
			"with -count > 1 the ns_per_op fields are means over the repetitions and " +
			"*_min the best single one; the process-global memos (tautology, failed " +
			"embeddings) stay warm across repetitions and tables, so later runs measure " +
			"the cached regime — exactly what a long-lived server sees. " +
			"portfolio rows compare the hedged race against each roster algorithm run " +
			"alone: area_vs_best_single <= 1.0 is the quality bar, wallclock_vs_fastest " +
			"needs spare CPUs to approach 1.0.",
	}
	if withPortfolio {
		rows, err := measurePortfolio(opts)
		if err != nil {
			return "", fmt.Errorf("portfolio: %w", err)
		}
		snap.Portfolio = rows
	}
	if withTables {
		if err := measureTables(opts, intraWorkers, count, &snap); err != nil {
			return "", err
		}
	}
	name := "BENCH_" + snap.Date + ".json"
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	if err := os.WriteFile(name, data, 0o644); err != nil {
		return "", err
	}
	return name, nil
}

// repeatMeasure runs the measurement count times and reports the mean
// and minimum wall time plus the mean allocation count. Each repetition
// regenerates on a fresh runner (fresh result cache), but the
// process-global memos stay warm — repetitions after the first measure
// the steady state.
func repeatMeasure(fn func() error, count int) (mean, min int64, allocs uint64, err error) {
	var sumNs, sumAllocs uint64
	for i := 0; i < count; i++ {
		ns, al, err := measure(fn)
		if err != nil {
			return 0, 0, 0, err
		}
		sumNs += uint64(ns)
		sumAllocs += al
		if i == 0 || ns < min {
			min = ns
		}
	}
	return int64(sumNs / uint64(count)), min, sumAllocs / uint64(count), nil
}

// measureTables fills the serial-vs-intra table measurements of the
// snapshot, count repetitions per cell.
func measureTables(opts experiments.RunOpts, intraWorkers, count int, snap *benchSnapshot) error {
	serialOpts := opts
	serialOpts.Intra = 0
	intraOpts := opts
	intraOpts.Intra = intraWorkers
	seen := make(map[string]bool)
	for _, table := range []int{2, 4, 6} {
		var runner *experiments.Runner
		sNs, sMin, sAllocs, err := repeatMeasure(regenerate(serialOpts, table, &runner), count)
		if err != nil {
			return fmt.Errorf("table %d serial: %w", table, err)
		}
		// Tables share machines; keep the first Response per
		// machine/algorithm pair so the snapshot has no duplicates.
		// (runner is the last repetition's — encodes are deterministic,
		// so every repetition memoized the same results.)
		for _, resp := range wireResults(serialOpts, runner) {
			key := resp.Machine + "/" + string(resp.Algorithm)
			if seen[key] {
				continue
			}
			seen[key] = true
			snap.Results = append(snap.Results, resp)
		}
		iNs, iMin, iAllocs, err := repeatMeasure(regenerate(intraOpts, table, nil), count)
		if err != nil {
			return fmt.Errorf("table %d intra: %w", table, err)
		}
		tb := tableBench{
			Table:        fmt.Sprintf("table-%d", table),
			SerialNsOp:   sNs,
			SerialAllocs: sAllocs,
			IntraNsOp:    iNs,
			IntraAllocs:  iAllocs,
		}
		if count > 1 {
			tb.Count = count
			tb.SerialNsMin = sMin
			tb.IntraNsMin = iMin
		}
		if iNs > 0 {
			tb.Speedup = float64(sNs) / float64(iNs)
		}
		if sAllocs > 0 {
			tb.AllocRatio = float64(iAllocs) / float64(sAllocs)
		}
		snap.Tables = append(snap.Tables, tb)
	}
	return nil
}
