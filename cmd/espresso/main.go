// Command espresso exposes the built-in two-level minimizer on .pla
// files, in the manner of the original tool NOVA shells out to.
//
// Usage:
//
//	espresso [-fast] [-exact] [-verify] file.pla   ("-" reads stdin)
//
// The input is a type-fd PLA ('1' = on-set, '-' = don't-care in the
// output field). The minimized cover is written to stdout in the same
// format. -exact runs the exact minimizer (prime generation + branch and
// bound; small inputs only); -verify checks the result against the input
// function by exact tautology-based containment.
package main

import (
	"flag"
	"fmt"
	"os"

	"nova/internal/espresso"
	"nova/internal/kiss"
)

func main() {
	fast := flag.Bool("fast", false, "skip the REDUCE refinement")
	exact := flag.Bool("exact", false, "exact minimization (small inputs only)")
	doVerify := flag.Bool("verify", false, "verify equivalence of the result")
	summary := flag.Bool("s", false, "print a cube-count summary to stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: espresso [flags] file.pla  (use - for stdin)")
		flag.Usage()
		os.Exit(2)
	}
	in := os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	pla, err := kiss.ParsePLA(in)
	if err != nil {
		fail(err)
	}
	onPLA, dcPLA := pla.Split()
	on, dc := onPLA.OnSet(), dcPLA.OnSet()

	var min = on
	if *exact {
		min = espresso.MinimumCover(on, dc, espresso.ExactOptions{})
		if min == nil {
			fail(fmt.Errorf("exact minimization exceeded its bounds; rerun without -exact"))
		}
	} else {
		min = espresso.Minimize(on, dc, espresso.Options{SkipReduce: *fast})
	}
	if *doVerify {
		if !espresso.Verify(min, on, dc) {
			fail(fmt.Errorf("internal error: minimized cover is not equivalent"))
		}
		fmt.Fprintln(os.Stderr, "# verified: minimized cover equivalent to input")
	}
	out, err := kiss.FromCover(min, pla.NI, pla.NO)
	if err != nil {
		fail(err)
	}
	if *summary {
		fmt.Fprintf(os.Stderr, "# %d terms in, %d terms out\n", len(pla.Rows), len(out.Rows))
	}
	if err := out.Write(os.Stdout); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "espresso:", err)
	os.Exit(1)
}
