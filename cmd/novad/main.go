// Command novad serves NOVA encodings over HTTP/JSON with
// content-addressed result caching.
//
// Usage:
//
//	novad [-addr :8089] [-cache-mb 64] [-max-inflight N] [-queue-wait 100ms]
//	      [-timeout 30s] [-max-timeout 2m] [-parallel 1] [-intra 0]
//	      [-grace 30s] [-recorder 32] [-access-log] [-no-request-obs] [-v]
//	      [-fault-inject "seed=5,error=0.1,drop=0.05"]
//
// -fault-inject (or the NOVAD_FAULT_INJECT environment variable) arms
// the deterministic fault-injection middleware for chaos testing and
// soak runs; see docs/SERVING.md. Left unset — the default — the
// middleware is structurally absent from the handler chain.
//
// Endpoints, cache semantics and capacity knobs are documented in
// docs/SERVING.md; the observability surface (GET /metrics Prometheus
// exposition, GET /debug/requests flight recorder, request IDs, the
// ?trace=1 opt-in) in docs/OBSERVABILITY.md. On SIGTERM (or SIGINT) the
// daemon drains gracefully: it stops accepting work (healthz reports 503
// so load balancers fall away), finishes the in-flight requests within
// the -grace budget, then prints a final telemetry snapshot to stderr —
// in which admitted == completed + failed + canceled accounts for every
// admitted request — and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"nova/internal/obs"
	"nova/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8089", "listen address")
	cacheMB := flag.Int64("cache-mb", 64, "result cache budget in MiB")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently served requests (0 = GOMAXPROCS)")
	queueWait := flag.Duration("queue-wait", 100*time.Millisecond, "how long a request may wait for an admission slot before 429")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline (override per request with ?timeout=)")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "cap on the client-requested ?timeout=")
	parallel := flag.Int("parallel", 1, "worker goroutines per encode (1 = serial per request; admission owns the machine)")
	intra := flag.Int("intra", 0, "intra-problem parallelism per encode (0/1 = off)")
	grace := flag.Duration("grace", 30*time.Second, "drain budget for in-flight requests on SIGTERM")
	recorder := flag.Int("recorder", 32, "flight-recorder depth: keep the N slowest and N most recent failed requests at /debug/requests (negative = off)")
	accessLog := flag.Bool("access-log", false, "log one structured line per request (request ID, status, cache state, latency split)")
	noReqObs := flag.Bool("no-request-obs", false, "disable per-request observability (request IDs, flight recorder, access log, ?trace=1)")
	verbose := flag.Bool("v", false, "log every failed request and print the final counter report")
	faultSpec := flag.String("fault-inject", "",
		"arm deterministic fault injection for chaos testing, e.g. \"seed=5,error=0.1,drop=0.05,latency=50ms,latency-rate=0.2\" (default: $NOVAD_FAULT_INJECT; never arm in production)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	tracer := obs.New()
	if *faultSpec == "" {
		*faultSpec = os.Getenv("NOVAD_FAULT_INJECT")
	}
	fault, err := parseFaultSpec(*faultSpec)
	if err != nil {
		logger.Error("bad -fault-inject spec", "err", err)
		return 2
	}
	cfg := serve.Config{
		CacheBytes:        *cacheMB << 20,
		MaxInflight:       *maxInflight,
		QueueWait:         *queueWait,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		Parallelism:       *parallel,
		Intra:             *intra,
		Tracer:            tracer,
		RecorderSize:      *recorder,
		AccessLog:         *accessLog,
		DisableRequestObs: *noReqObs,
		FaultInjection:    fault,
	}
	if *verbose || *accessLog {
		cfg.Logger = logger
	}
	if fault != nil {
		logger.Warn("FAULT INJECTION ARMED — this instance deliberately fails requests",
			"seed", fault.Seed, "error_rate", fault.ErrorRate,
			"drop_rate", fault.DropRate, "latency_rate", fault.LatencyRate,
			"latency", fault.Latency)
	}
	s := serve.New(cfg)
	obs.PublishExpvar("nova", tracer)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// SIGTERM/SIGINT: stop accepting, finish in-flight, flush telemetry.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		logger.Info("draining", "grace", *grace)
		s.Drain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		done <- httpSrv.Shutdown(shutdownCtx)
	}()

	logger.Info("novad listening", "addr", *addr,
		"max_inflight", cfg.MaxInflight, "cache_mb", *cacheMB)
	err = httpSrv.ListenAndServe()
	if !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serve failed", "err", err)
		return 1
	}
	if err := <-done; err != nil {
		logger.Error("drain incomplete", "err", err)
	}
	flushSnapshot(s, *verbose)
	logger.Info("drained; exiting")
	return 0
}

// flushSnapshot prints the final counter set to stderr so an operator
// (or the CI smoke job) sees what the process did before it exited.
func flushSnapshot(s *serve.Server, verbose bool) {
	vars := s.Vars()
	keys := make([]string, 0, len(vars))
	for k := range vars {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintln(os.Stderr, "final telemetry snapshot:")
	for _, k := range keys {
		if verbose || vars[k] != 0 {
			fmt.Fprintf(os.Stderr, "  %-32s %d\n", k, vars[k])
		}
	}
}
