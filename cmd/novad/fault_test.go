package main

import (
	"testing"
	"time"
)

func TestParseFaultSpec(t *testing.T) {
	fc, err := parseFaultSpec("seed=5,error=0.1,drop=0.05,latency=50ms,latency-rate=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if fc.Seed != 5 || fc.ErrorRate != 0.1 || fc.DropRate != 0.05 ||
		fc.Latency != 50*time.Millisecond || fc.LatencyRate != 0.2 {
		t.Fatalf("parsed config wrong: %+v", fc)
	}

	if fc, err := parseFaultSpec(""); fc != nil || err != nil {
		t.Fatalf("empty spec: got (%v, %v), want (nil, nil)", fc, err)
	}
	if fc, err := parseFaultSpec("   "); fc != nil || err != nil {
		t.Fatalf("blank spec: got (%v, %v), want (nil, nil)", fc, err)
	}

	bad := []string{
		"error",             // not key=value
		"error=1.5",         // rate out of range
		"error=-0.1",        // negative rate
		"seed=x",            // not an integer
		"latency=fast",      // not a duration
		"frobnicate=1",      // unknown key
		"seed=5",            // arms nothing
		"latency=50ms",      // latency without a rate arms nothing
		"latency-rate=0.5",  // rate without a latency arms nothing
		"error=0.0,drop=0q", // second field malformed
	}
	for _, spec := range bad {
		if _, err := parseFaultSpec(spec); err == nil {
			t.Errorf("parseFaultSpec(%q) accepted a bad spec", spec)
		}
	}
}
