package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"nova/internal/serve"
)

// parseFaultSpec parses the -fault-inject / NOVAD_FAULT_INJECT spec: a
// comma-separated key=value list with keys
//
//	seed=N            schedule seed (default 0, a valid fixed schedule)
//	error=R           probability of an injected 503 per request
//	drop=R            probability of an aborted connection per request
//	latency=D         injected delay (time.Duration syntax)
//	latency-rate=R    probability of the injected delay per request
//
// Rates are in [0, 1]. An empty spec returns (nil, nil): fault
// injection stays structurally absent from the handler chain.
func parseFaultSpec(spec string) (*serve.FaultConfig, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	fc := &serve.FaultConfig{}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("field %q is not key=value", field)
		}
		rate := func() (float64, error) {
			r, err := strconv.ParseFloat(val, 64)
			if err != nil || r < 0 || r > 1 {
				return 0, fmt.Errorf("%s=%q is not a rate in [0, 1]", key, val)
			}
			return r, nil
		}
		var err error
		switch key {
		case "seed":
			fc.Seed, err = strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("seed=%q is not an unsigned integer", val)
			}
		case "error":
			if fc.ErrorRate, err = rate(); err != nil {
				return nil, err
			}
		case "drop":
			if fc.DropRate, err = rate(); err != nil {
				return nil, err
			}
		case "latency":
			fc.Latency, err = time.ParseDuration(val)
			if err != nil || fc.Latency < 0 {
				return nil, fmt.Errorf("latency=%q is not a duration", val)
			}
		case "latency-rate":
			if fc.LatencyRate, err = rate(); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("unknown field %q (want seed, error, drop, latency, latency-rate)", key)
		}
	}
	if fc.ErrorRate == 0 && fc.DropRate == 0 && (fc.LatencyRate == 0 || fc.Latency == 0) {
		return nil, fmt.Errorf("spec %q arms no fault (all rates zero)", spec)
	}
	return fc, nil
}
