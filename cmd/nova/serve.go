package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"time"

	"nova/internal/obs"
	"nova/internal/serve"
)

// serveMain is the -serve passthrough: the serving layer with default
// settings on one address. The novad daemon exposes the full knob set
// (cache budget, admission bound, deadlines, drain grace).
func serveMain(ctx context.Context, addr string) int {
	s := serve.New(serve.Config{})
	obs.PublishExpvar("nova", s.Tracer())
	httpSrv := &http.Server{Addr: addr, Handler: s, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		<-ctx.Done()
		s.Drain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx) //nolint:errcheck // best-effort drain on ^C
	}()
	fmt.Fprintf(os.Stderr, "nova: serving on %s (metrics at /metrics; use novad for capacity knobs)\n", addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return fail(err)
	}
	return 0
}
