// Command nova encodes a finite state machine for a two-level (PLA)
// implementation, in the manner of the original NOVA tool.
//
// Usage:
//
//	nova [-e algorithm] [-bits N] [-pla] [-verify] [-stats] [-v] [-trace out.json] file.kiss2
//	nova -serve :8089
//
// The input is a KISS2 state transition table ("-" reads stdin). The tool
// prints the code assignment and the product-term count and PLA area of
// the minimized encoded machine; -pla additionally prints the encoded PLA
// in espresso format, and -verify simulates the encoded machine against
// the symbolic table. -trace streams every pipeline phase as JSON lines
// to a file, and -v prints a structured run report (phase times and hot
// counters) to stderr.
//
// -serve starts the HTTP/JSON serving layer on the given address with
// default settings instead of encoding a file — a convenience
// passthrough to the novad daemon, which exposes the capacity and cache
// knobs (see cmd/novad and docs/SERVING.md).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"

	"nova"
)

func main() {
	os.Exit(run())
}

func run() int {
	alg := flag.String("e", "best", "encoding algorithm: iexact, ihybrid, igreedy, iohybrid, iovariant, best, portfolio, kiss, onehot, random, mustang-p, mustang-n, mustang-pt, mustang-nt")
	bits := flag.Int("bits", 0, "encoding length (0 = minimum)")
	pla := flag.Bool("pla", false, "print the minimized encoded PLA")
	doVerify := flag.Bool("verify", false, "verify the encoded machine against the symbolic table")
	stats := flag.Bool("stats", false, "print machine statistics and input constraints")
	seed := flag.Int64("seed", 1, "seed for the random algorithm")
	trials := flag.Int("random-trials", 0, "batch size for -e random (0 = #states + #symbolic inputs)")
	maxWork := flag.Int("max-work", 0, "bounded-backtracking work budget (0 = default)")
	fast := flag.Bool("fast", false, "faster single-pass minimization")
	par := flag.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	timeout := flag.Duration("timeout", 0, "abort the encode after this long (0 = no limit)")
	tracePath := flag.String("trace", "", "write a JSON-lines phase trace to this file")
	verbose := flag.Bool("v", false, "print a structured run report (phases + counters) to stderr")
	serveAddr := flag.String("serve", "", "serve the HTTP/JSON encode API on this address instead of encoding a file (see novad for the full knob set)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *serveAddr != "" {
		return serveMain(ctx, *serveAddr)
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: nova [flags] file.kiss2  (use - for stdin)")
		flag.Usage()
		return 2
	}
	in := os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		in = f
	}
	fsm, err := nova.ParseKISS(in)
	if err != nil {
		return fail(err)
	}

	// Telemetry: -trace and -v both want a tracer; -trace additionally
	// streams the spans as JSON lines.
	var tracer *nova.Tracer
	if *tracePath != "" || *verbose {
		tracer = nova.NewTracer()
		tracer.SetLabel(fsm.Name)
		if *tracePath != "" {
			tf, err := os.Create(*tracePath)
			if err != nil {
				return fail(err)
			}
			bw := bufio.NewWriter(tf)
			tracer.SetWriter(bw)
			defer func() {
				bw.Flush()
				tf.Close()
			}()
		}
	}

	if *stats {
		st := fsm.Stats()
		fmt.Printf("machine: %d inputs, %d symbolic inputs, %d outputs, %d states, %d terms\n",
			st.Inputs, st.SymIns, st.Outputs, st.States, st.Terms)
		ics, _, err := nova.ConstraintsContext(ctx, fsm)
		if err != nil {
			return fail(err)
		}
		fmt.Printf("input constraints (%d):\n", len(ics))
		for _, ic := range ics {
			fmt.Printf("  %s  (weight %d)\n", ic.Set, ic.Weight)
		}
	}

	res, err := nova.EncodeContext(ctx, fsm, nova.Options{
		Algorithm:    nova.Algorithm(*alg),
		Bits:         *bits,
		Seed:         *seed,
		KeepPLA:      *pla,
		RandomTrials: *trials,
		MaxWork:      *maxWork,
		FastMinimize: *fast,
		Parallelism:  *par,
		Tracer:       tracer,
	})
	// The snapshot and summary record go out even on failure: an
	// interrupted or gave-up run still leaves a valid trace.
	defer emitSummary(tracer, res, *verbose)
	switch {
	case errors.Is(err, nova.ErrGaveUp):
		fmt.Println("iexact: gave up within the work budget (try ihybrid)")
		return 1
	case err != nil:
		return fail(err)
	}

	fmt.Printf("algorithm: %s\n", res.Algorithm)
	if res.Winner != "" {
		if res.WinnerSeedSplit != 0 {
			fmt.Printf("winner:    %s@%d\n", res.Winner, res.WinnerSeedSplit)
		} else {
			fmt.Printf("winner:    %s\n", res.Winner)
		}
	}
	fmt.Printf("codes (%d bits):\n", res.Assignment.States.Bits)
	for i, name := range fsm.States {
		fmt.Printf("  %-12s %s\n", name, res.Assignment.States.CodeString(i))
	}
	for vi, enc := range res.Assignment.SymIns {
		fmt.Printf("symbolic input %s (%d bits):\n", fsm.SymIns[vi].Name, enc.Bits)
		for i, v := range fsm.SymIns[vi].Values {
			fmt.Printf("  %-12s %s\n", v, enc.CodeString(i))
		}
	}
	fmt.Printf("product terms: %d\n", res.Cubes)
	fmt.Printf("PLA area:      %d\n", res.Area)
	if res.WSat+res.WUnsat > 0 {
		fmt.Printf("constraints:   weight %d satisfied, %d unsatisfied\n", res.WSat, res.WUnsat)
	}
	if res.TotalOC > 0 {
		fmt.Printf("covering:      %d/%d output covering edges satisfied\n", res.SatisfiedOC, res.TotalOC)
	}
	if *pla && res.PLA != nil {
		fmt.Println()
		fmt.Print(res.PLA)
	}
	if *doVerify {
		if err := nova.VerifyContext(ctx, fsm, res.Assignment); err != nil {
			return fail(fmt.Errorf("verification FAILED: %v", err))
		}
		fmt.Println("verified: encoded machine matches the symbolic table")
	}
	return 0
}

// emitSummary appends the run summary record to the trace stream and,
// with -v, prints the phase/counter report to stderr.
func emitSummary(tracer *nova.Tracer, res *nova.Result, verbose bool) {
	if tracer == nil {
		return
	}
	snap := tracer.Snapshot()
	fields := map[string]any{
		"wall_us": snap.Wall.Microseconds(),
		"root_us": snap.Root.Microseconds(),
		"spans":   snap.Spans,
	}
	if res != nil {
		fields["area"] = res.Area
		fields["cubes"] = res.Cubes
		fields["bits"] = res.Bits
	}
	tracer.Emit("summary", fields)
	if !verbose {
		return
	}
	fmt.Fprintf(os.Stderr, "run report: wall %v, %d spans\n", snap.Wall, snap.Spans)
	fmt.Fprintf(os.Stderr, "%-22s %6s %12s %12s\n", "phase", "count", "total", "self")
	for _, p := range snap.Phases {
		fmt.Fprintf(os.Stderr, "%-22s %6d %12v %12v\n", p.Name, p.Count, p.Total, p.Self)
	}
	if len(snap.Counters) > 0 {
		fmt.Fprintln(os.Stderr, "counters:")
		keys := make([]string, 0, len(snap.Counters))
		for k := range snap.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(os.Stderr, "  %-24s %d\n", k, snap.Counters[k])
		}
	}
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "nova:", err)
	return 1
}
