// Command nova encodes a finite state machine for a two-level (PLA)
// implementation, in the manner of the original NOVA tool.
//
// Usage:
//
//	nova [-e algorithm] [-bits N] [-pla] [-verify] [-stats] file.kiss2
//
// The input is a KISS2 state transition table ("-" reads stdin). The tool
// prints the code assignment and the product-term count and PLA area of
// the minimized encoded machine; -pla additionally prints the encoded PLA
// in espresso format, and -verify simulates the encoded machine against
// the symbolic table.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"nova"
)

func main() {
	alg := flag.String("e", "best", "encoding algorithm: iexact, ihybrid, igreedy, iohybrid, iovariant, best, kiss, onehot, random, mustang-p, mustang-n, mustang-pt, mustang-nt")
	bits := flag.Int("bits", 0, "encoding length (0 = minimum)")
	pla := flag.Bool("pla", false, "print the minimized encoded PLA")
	doVerify := flag.Bool("verify", false, "verify the encoded machine against the symbolic table")
	stats := flag.Bool("stats", false, "print machine statistics and input constraints")
	seed := flag.Int64("seed", 1, "seed for the random algorithm")
	trials := flag.Int("random-trials", 0, "batch size for -e random (0 = #states + #symbolic inputs)")
	maxWork := flag.Int("max-work", 0, "bounded-backtracking work budget (0 = default)")
	fast := flag.Bool("fast", false, "faster single-pass minimization")
	par := flag.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	timeout := flag.Duration("timeout", 0, "abort the encode after this long (0 = no limit)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: nova [flags] file.kiss2  (use - for stdin)")
		flag.Usage()
		os.Exit(2)
	}
	in := os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	fsm, err := nova.ParseKISS(in)
	if err != nil {
		fail(err)
	}

	if *stats {
		st := fsm.Stats()
		fmt.Printf("machine: %d inputs, %d symbolic inputs, %d outputs, %d states, %d terms\n",
			st.Inputs, st.SymIns, st.Outputs, st.States, st.Terms)
		ics, _, err := nova.ConstraintsContext(ctx, fsm)
		if err != nil {
			fail(err)
		}
		fmt.Printf("input constraints (%d):\n", len(ics))
		for _, ic := range ics {
			fmt.Printf("  %s  (weight %d)\n", ic.Set, ic.Weight)
		}
	}

	res, err := nova.EncodeContext(ctx, fsm, nova.Options{
		Algorithm:    nova.Algorithm(*alg),
		Bits:         *bits,
		Seed:         *seed,
		KeepPLA:      *pla,
		RandomTrials: *trials,
		MaxWork:      *maxWork,
		FastMinimize: *fast,
		Parallelism:  *par,
	})
	switch {
	case errors.Is(err, nova.ErrGaveUp):
		fmt.Println("iexact: gave up within the work budget (try ihybrid)")
		os.Exit(1)
	case err != nil:
		fail(err)
	}

	fmt.Printf("algorithm: %s\n", res.Algorithm)
	fmt.Printf("codes (%d bits):\n", res.Assignment.States.Bits)
	for i, name := range fsm.States {
		fmt.Printf("  %-12s %s\n", name, res.Assignment.States.CodeString(i))
	}
	for vi, enc := range res.Assignment.SymIns {
		fmt.Printf("symbolic input %s (%d bits):\n", fsm.SymIns[vi].Name, enc.Bits)
		for i, v := range fsm.SymIns[vi].Values {
			fmt.Printf("  %-12s %s\n", v, enc.CodeString(i))
		}
	}
	fmt.Printf("product terms: %d\n", res.Cubes)
	fmt.Printf("PLA area:      %d\n", res.Area)
	if res.WSat+res.WUnsat > 0 {
		fmt.Printf("constraints:   weight %d satisfied, %d unsatisfied\n", res.WSat, res.WUnsat)
	}
	if res.TotalOC > 0 {
		fmt.Printf("covering:      %d/%d output covering edges satisfied\n", res.SatisfiedOC, res.TotalOC)
	}
	if *pla && res.PLA != nil {
		fmt.Println()
		fmt.Print(res.PLA)
	}
	if *doVerify {
		if err := nova.VerifyContext(ctx, fsm, res.Assignment); err != nil {
			fail(fmt.Errorf("verification FAILED: %v", err))
		}
		fmt.Println("verified: encoded machine matches the symbolic table")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "nova:", err)
	os.Exit(1)
}
