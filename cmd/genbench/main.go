// Command genbench writes the built-in benchmark suite to a directory as
// KISS2 files (one .kiss2 per machine), so the machines can be inspected,
// versioned, or fed to other tools (including cmd/nova).
//
// Usage:
//
//	genbench [-dir benchmarks]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"nova/internal/bench"
)

func main() {
	dir := flag.String("dir", "benchmarks", "output directory")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fail(err)
	}
	for _, e := range bench.Suite() {
		path := filepath.Join(*dir, e.Name+".kiss2")
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		if err := e.F.Write(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		st := e.F.Stats()
		fmt.Printf("%-12s %2d in %2d symin %2d out %3d states %4d terms -> %s\n",
			e.Name, st.Inputs, st.SymIns, st.Outputs, st.States, st.Terms, path)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "genbench:", err)
	os.Exit(1)
}
