package nova

// Wire-layer tests for the portfolio request surface: the roster
// normalization baked into the cache key, the scheduling-knob exclusion,
// and the winner metadata on responses.

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func portfolioKey(t *testing.T, rq Request) string {
	t.Helper()
	k, err := rq.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestCacheKeyPortfolioNormalization: every spelling of the same race
// shares one cache entry — the explicit algorithm vs. the implied one,
// the default roster vs. the default roster written out, and a
// MaxCandidates truncation vs. the truncated roster spelled explicitly.
func TestCacheKeyPortfolioNormalization(t *testing.T) {
	defaultRoster := func() []WireCandidate {
		var ws []WireCandidate
		for _, c := range DefaultRoster() {
			ws = append(ws, WireCandidate{Algorithm: c.Algorithm, SeedSplit: c.SeedSplit})
		}
		return ws
	}

	implied := Request{KISS2: quickFSM, Portfolio: &WirePortfolio{}}
	named := Request{KISS2: quickFSM, Algorithm: Portfolio}
	spelled := Request{KISS2: quickFSM, Algorithm: Portfolio, Portfolio: &WirePortfolio{Roster: defaultRoster()}}
	base := portfolioKey(t, implied)
	if portfolioKey(t, named) != base {
		t.Fatal("explicit portfolio algorithm and implied config split the cache")
	}
	if portfolioKey(t, spelled) != base {
		t.Fatal("default roster written out split the cache")
	}

	capped := Request{KISS2: quickFSM, Portfolio: &WirePortfolio{Roster: defaultRoster(), MaxCandidates: 3}}
	explicit := Request{KISS2: quickFSM, Portfolio: &WirePortfolio{Roster: defaultRoster()[:3]}}
	if portfolioKey(t, capped) != portfolioKey(t, explicit) {
		t.Fatal("MaxCandidates truncation and the explicit truncated roster split the cache")
	}
	if portfolioKey(t, capped) == base {
		t.Fatal("truncated roster shares the full roster's key")
	}

	// HedgeDelay is scheduling-only: by the determinism rule it cannot
	// change the returned cover, so it must not split the cache.
	hedged := Request{KISS2: quickFSM, Portfolio: &WirePortfolio{HedgeDelayMS: 250}}
	if portfolioKey(t, hedged) != base {
		t.Fatal("hedge delay split the cache")
	}

	// A genuinely different roster is a different race.
	other := Request{KISS2: quickFSM, Portfolio: &WirePortfolio{
		Roster: []WireCandidate{{Algorithm: IGreedy}, {Algorithm: IHybrid, SeedSplit: 4}},
	}}
	if portfolioKey(t, other) == base {
		t.Fatal("a custom roster shares the default roster's key")
	}

	// A plain Best request must not collide with the portfolio keys.
	if portfolioKey(t, Request{KISS2: quickFSM}) == base {
		t.Fatal("portfolio and Best requests share a key")
	}
}

// TestWirePortfolioConfig: the JSON shape maps onto PortfolioConfig
// field by field, and a nil wire config stays a nil nova config.
func TestWirePortfolioConfig(t *testing.T) {
	var nilWP *WirePortfolio
	if nilWP.Config() != nil {
		t.Fatal("nil WirePortfolio produced a config")
	}
	wp := &WirePortfolio{
		Roster:        []WireCandidate{{Algorithm: IExact}, {Algorithm: IHybrid, SeedSplit: 2}},
		MaxCandidates: 5,
		HedgeDelayMS:  40,
	}
	pc := wp.Config()
	if len(pc.Roster) != 2 || pc.Roster[1].Algorithm != IHybrid || pc.Roster[1].SeedSplit != 2 {
		t.Fatalf("roster lost in translation: %+v", pc.Roster)
	}
	if pc.MaxCandidates != 5 || pc.HedgeDelay != 40*time.Millisecond {
		t.Fatalf("scalar fields lost: %+v", pc)
	}

	rq := Request{KISS2: quickFSM, Portfolio: wp}
	opt := rq.Options()
	if opt.Portfolio == nil || opt.Portfolio.HedgeDelay != 40*time.Millisecond {
		t.Fatalf("Request.Options dropped the portfolio config: %+v", opt.Portfolio)
	}

	// Round-trip the request through JSON: the roster survives.
	data, err := json.Marshal(rq)
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Portfolio == nil || len(back.Portfolio.Roster) != 2 || back.Portfolio.HedgeDelayMS != 40 {
		t.Fatalf("request round trip lost the portfolio: %+v", back.Portfolio)
	}
}

// TestResponseWinnerFields: a portfolio response carries the winner
// metadata under stable JSON keys.
func TestResponseWinnerFields(t *testing.T) {
	f := parseQuick(t)
	res, err := Encode(f, Options{Algorithm: Portfolio, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rp := ResponseOf(f, res)
	if rp.Algorithm != Portfolio || rp.Winner != res.Winner {
		t.Fatalf("winner metadata lost: %+v", rp)
	}
	rp.WinnerSeedSplit = 3 // force the omitempty field to serialize
	data, err := json.Marshal(rp)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"winner"`, `"winner_seed_split"`} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("serialized Response lost %s:\n%s", key, data)
		}
	}
	// Non-portfolio responses omit the winner entirely.
	plain, err := Encode(f, Options{Algorithm: IGreedy})
	if err != nil {
		t.Fatal(err)
	}
	data, err = json.Marshal(ResponseOf(f, plain))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"winner"`) {
		t.Fatalf("plain response serialized a winner:\n%s", data)
	}
}

// TestRequestValidatePortfolio: the wire validation path rejects the
// same bad configs the Options path does.
func TestRequestValidatePortfolio(t *testing.T) {
	bad := Request{KISS2: quickFSM, Portfolio: &WirePortfolio{
		Roster: []WireCandidate{{Algorithm: Portfolio}},
	}}
	if _, err := bad.Validate(); err == nil {
		t.Fatal("wire validation accepted a nested portfolio roster")
	}
	conflict := Request{KISS2: quickFSM, Algorithm: IExact, Portfolio: &WirePortfolio{}}
	if _, err := conflict.Validate(); err == nil {
		t.Fatal("wire validation accepted a conflicting algorithm + portfolio config")
	}
}
